package seldon_test

import (
	"bytes"
	"testing"

	"seldon/internal/core"
	"seldon/internal/corpus"
	"seldon/internal/dataflow"
	"seldon/internal/eval"
	"seldon/internal/propgraph"
	"seldon/internal/pyparse"
	"seldon/internal/spec"
	"seldon/internal/taint"
)

// TestEndToEndPipeline drives the full production flow the binaries
// compose: generate a corpus, extract per-file propagation graphs,
// serialize and reload the union (the propdump hand-off), learn
// specifications, persist and reload them (the seldon -out / taintcheck
// -spec hand-off), run the taint analyzer, and classify the reports.
func TestEndToEndPipeline(t *testing.T) {
	c := corpus.Generate(corpus.Config{Files: 160, Seed: 21})
	seed := corpus.ExperimentSeed()

	// Extraction phase.
	var graphs []*propgraph.Graph
	for _, f := range c.Files {
		mod, err := pyparse.Parse(f.Name, f.Source)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		graphs = append(graphs, dataflow.AnalyzeModule(mod, dataflow.Options{}))
	}
	union := propgraph.Union(graphs...)

	// Serialization hand-off.
	var buf bytes.Buffer
	if err := union.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := propgraph.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(reloaded.Events) != len(union.Events) || reloaded.NumEdges() != union.NumEdges() {
		t.Fatalf("serialization changed the graph: %d/%d events, %d/%d edges",
			len(reloaded.Events), len(union.Events), reloaded.NumEdges(), union.NumEdges())
	}

	// Learning phase, over the RELOADED graph.
	res := core.Learn(reloaded, seed, core.Config{})
	entries := res.LearnedEntries(seed)
	if len(entries) == 0 {
		t.Fatal("nothing learned")
	}

	// Specification hand-off through the textual format.
	merged := res.LearnedSpec(seed)
	parsed, err := spec.Parse(merged.Format())
	if err != nil {
		t.Fatalf("spec round trip: %v", err)
	}
	if parsed.Len() != merged.Len() {
		t.Fatalf("spec round trip lost entries: %d vs %d", parsed.Len(), merged.Len())
	}

	// Analysis phase with the reloaded spec on the reloaded graph.
	reports := taint.Analyze(reloaded, parsed)
	if len(reports) == 0 {
		t.Fatal("no taint reports")
	}

	// Classification: the learned spec must surface true vulnerabilities.
	counts := eval.ClassifySample(reports, c.Flows, c.Truth, 25, 1)
	if counts[eval.TrueVulnerability] == 0 {
		t.Errorf("no true vulnerabilities in sample: %v", counts)
	}

	// Learned specs must be dominated by true roles.
	pr := eval.SamplePrecision(entries, c.Truth, 50, 1)
	if p := pr.Overall().Precision(); p < 0.5 {
		t.Errorf("overall precision = %v, want >= 0.5", p)
	}
}

// TestPipelineDeterminism re-runs the full pipeline and requires
// bit-identical outcomes.
func TestPipelineDeterminism(t *testing.T) {
	run := func() (int, int, float64) {
		c := corpus.Generate(corpus.Config{Files: 80, Seed: 5})
		seed := corpus.ExperimentSeed()
		res := core.LearnFromSources(c.FileMap(), seed, core.Config{})
		entries := res.LearnedEntries(seed)
		var graphs []*propgraph.Graph
		for _, f := range c.Files {
			g, _ := dataflow.AnalyzeSource(f.Name, f.Source)
			graphs = append(graphs, g)
		}
		reports := taint.Analyze(propgraph.Union(graphs...), res.LearnedSpec(seed))
		score := 0.0
		for _, e := range entries {
			score += e.Score
		}
		return len(entries), len(reports), score
	}
	e1, r1, s1 := run()
	e2, r2, s2 := run()
	if e1 != e2 || r1 != r2 || s1 != s2 {
		t.Errorf("pipeline not deterministic: (%d,%d,%v) vs (%d,%d,%v)",
			e1, r1, s1, e2, r2, s2)
	}
}
