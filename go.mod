module seldon

go 1.22
