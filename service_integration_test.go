package seldon_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"seldon/internal/core"
	"seldon/internal/corpus"
	"seldon/internal/obs"
	"seldon/internal/propgraph"
	"seldon/internal/service"
	"seldon/internal/specio"
	"seldon/internal/taint"
)

// TestServeLearnedSpecs drives the serving flow the binaries compose:
// learn specifications from a corpus (seldon), persist them as a spec
// store (-o), reload the store, boot the service on a random port
// (seldond -specs specs.json -addr :0), and check a request end-to-end —
// asserting the service returns exactly the findings the taintcheck
// pipeline reports for the same input, and that request counters and
// latency timers land in the /metrics snapshot.
func TestServeLearnedSpecs(t *testing.T) {
	// Learning phase (seldon -generate 60 -o specs.json).
	c := corpus.Generate(corpus.Config{Files: 60, Seed: 7})
	files := c.FileMap()
	seed := corpus.ExperimentSeed()
	res := core.LearnFromSources(files, seed, core.Config{Workers: 1})
	learned := res.LearnedSpec(seed)
	meta := specio.Meta{
		CorpusFingerprint: specio.Fingerprint(files),
		CorpusFiles:       len(files),
		Events:            res.Graph.ComputeStats().Events,
		SeedEntries:       seed.Len(),
		LearnedEntries:    learned.Len() - seed.Len(),
		Generator:         "seldon",
	}
	storePath := filepath.Join(t.TempDir(), "specs.json")
	if err := specio.Save(storePath, learned, meta); err != nil {
		t.Fatal(err)
	}

	// The store is byte-stable: a second save is identical.
	first, err := os.ReadFile(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := specio.Save(storePath, learned, meta); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("two consecutive saves of the spec store differ")
	}

	// Serving phase (seldond -specs specs.json -addr :0).
	loaded, loadedMeta, err := specio.Load(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if !specio.Equal(loaded, learned) {
		t.Fatal("store round trip changed the learned spec")
	}
	if loadedMeta != meta {
		t.Fatalf("store meta round trip: %+v != %+v", loadedMeta, meta)
	}
	reg := obs.New()
	srv := service.New(service.Config{Spec: loaded, Meta: loadedMeta, Metrics: reg})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	httpSrv, errc, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		shctx, shcancel := context.WithTimeout(ctx, 5*time.Second)
		defer shcancel()
		httpSrv.Shutdown(shctx)
		<-errc
	}()
	base := "http://" + httpSrv.Addr

	// A request the learned specification must flag: the corpus seed
	// lists flask.request.args.get() as source and os.system() as sink.
	const input = `from flask import request
import os

def handler():
    cmd = request.args.get('cmd')
    os.system(cmd)
`
	resp, err := http.Post(base+"/v1/check?filename=app.py", "text/x-python", strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check status = %d", resp.StatusCode)
	}
	var out service.CheckResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}

	// Reference: the taintcheck pipeline over the same single file with
	// the same store.
	fe := core.AnalyzeFiles(map[string]string{"app.py": input}, core.Config{Workers: 1})
	want := taint.Analyze(propgraph.Union(fe.Graphs...), loaded)
	if len(want) == 0 {
		t.Fatal("reference pipeline found nothing — corpus seed changed?")
	}
	if out.Total != len(want) || len(out.Findings) != len(want) {
		t.Fatalf("service found %d flows, taintcheck pipeline %d", out.Total, len(want))
	}
	for i, w := range want {
		got := out.Findings[i]
		if got.Source != w.SourceRep || got.Sink != w.SinkRep ||
			got.Category != string(w.Category) ||
			got.SourcePos != w.SourcePos.String() || got.SinkPos != w.SinkPos.String() {
			t.Errorf("finding %d: service %+v != pipeline %+v", i, got, w)
		}
	}

	// The spec lookup serves the learned entries with provenance.
	sresp, err := http.Get(base + "/v1/specs?role=sink")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var specs service.SpecsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&specs); err != nil {
		t.Fatal(err)
	}
	if specs.Count != len(loaded.Sinks) || specs.Meta.CorpusFingerprint != meta.CorpusFingerprint {
		t.Errorf("specs = count %d (want %d), meta %+v", specs.Count, len(loaded.Sinks), specs.Meta)
	}

	// Service latency and request counters are visible in /metrics.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters[service.CounterRequests+".check"] != 1 {
		t.Errorf("check counter = %d", snap.Counters[service.CounterRequests+".check"])
	}
	if lat := snap.Timers[service.TimerCheck]; lat.Count != 1 || lat.P95 <= 0 {
		t.Errorf("check latency timer = %+v", lat)
	}
}
