// Command benchtables regenerates every table and figure of the paper's
// evaluation section over the synthetic corpus.
//
// Usage:
//
//	benchtables -all
//	benchtables -table 5
//	benchtables -fig 10
//	benchtables -table q5 -files 600
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"seldon/internal/corpus"
	"seldon/internal/propgraph"
	"seldon/internal/report"
)

func main() {
	var (
		files    = flag.Int("files", 400, "corpus size in files")
		seed     = flag.Int64("seed", 1, "corpus generator seed")
		tableArg = flag.String("table", "", "table to print: 1..8, 9, 10, q5, q6, 7q, args, collapsed, msweep")
		figArg   = flag.String("fig", "", "figure to print: 10 or 11")
		all      = flag.Bool("all", false, "print every table and figure")
		asJSON   = flag.Bool("json", false, "emit machine-readable JSON instead of text tables")
	)
	flag.Parse()

	e := report.New(corpus.Config{Files: *files, Seed: *seed})
	emit := func(name string, result interface{ Render() string }) {
		if *asJSON {
			out := map[string]any{"experiment": name, "result": result}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(out); err != nil {
				fmt.Fprintln(os.Stderr, "benchtables:", err)
				os.Exit(1)
			}
			return
		}
		fmt.Println(result.Render())
	}
	run := func(name string) {
		switch name {
		case "1":
			emit(name, e.RunTable1())
		case "2":
			emit(name, e.RunTable2())
		case "3":
			emit(name, e.RunTable3())
		case "4":
			emit(name, e.RunTable4())
		case "5":
			emit(name, e.RunTable5())
		case "6":
			emit(name, e.RunTable6())
		case "7":
			emit(name, e.RunTable7())
		case "8":
			fmt.Println(e.RunSampleTable(propgraph.Source, 50))
		case "9":
			fmt.Println(e.RunSampleTable(propgraph.Sanitizer, 50))
		case "10":
			fmt.Println(e.RunSampleTable(propgraph.Sink, 50))
		case "args":
			emit(name, e.RunArgSensitivity())
		case "msweep":
			emit(name, e.RunMerlinSweep([]int{24, 48, 96, 192}, true))
		case "collapsed":
			emit(name, e.RunCollapsedLearning())
		case "q5":
			emit(name, e.RunQ5(3))
		case "q6":
			emit(name, e.RunQ6())
		case "7q", "q7":
			emit(name, e.RunQ7())
		case "fig10":
			emit(name, e.RunFig10([]int{100, 200, 300, 400, 500, 600}))
		case "fig11":
			emit(name, e.RunFig11())
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
	}

	switch {
	case *all:
		for _, name := range []string{"1", "2", "3", "4", "5", "6", "7",
			"fig10", "fig11", "q5", "q6", "q7", "args", "collapsed", "msweep", "8", "9", "10"} {
			run(name)
		}
	case *tableArg != "":
		run(*tableArg)
	case *figArg != "":
		run("fig" + *figArg)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
