// Command corpusgen writes a synthetic labeled Python web-application
// corpus to a directory, together with its ground-truth flow records and
// the experiment seed specification.
//
// Usage:
//
//	corpusgen -out /tmp/corpus -files 400 -seed 1
//
// For distributed-learning experiments, -slices/-slice write only one
// worker's deterministic partition of the corpus (cut by project, so the
// union of all slices is exactly the whole corpus):
//
//	corpusgen -out /tmp/part2 -files 400 -slices 4 -slice 2
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"seldon/internal/corpus"
)

func main() {
	var (
		out    = flag.String("out", "corpus-out", "output directory")
		files  = flag.Int("files", 400, "number of files")
		seed   = flag.Int64("seed", 1, "generator seed")
		slices = flag.Int("slices", 1, "cut the corpus into this many slices and write only -slice")
		slice  = flag.Int("slice", 0, "which slice to write (0-based)")
	)
	flag.Parse()

	if *slices < 1 || *slice < 0 || *slice >= *slices {
		fatal(fmt.Errorf("slice %d of %d out of range", *slice, *slices))
	}
	c := corpus.Generate(corpus.Config{Files: *files, Seed: *seed})
	if *slices > 1 {
		c = c.Slice(*slices, *slice)
	}
	for _, f := range c.Files {
		path := filepath.Join(*out, f.Name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(path, []byte(f.Source), 0o644); err != nil {
			fatal(err)
		}
	}

	// Ground truth: one line per generated flow.
	var flows []byte
	for _, fl := range c.Flows {
		flows = append(flows, fmt.Sprintf("%s\t%s\t%s\t%s\tsanitized=%t\texploitable=%t\twrongparam=%t\tclass=%s\n",
			fl.File, fl.SourceRep, fl.SanitizerRep, fl.SinkRep,
			fl.Sanitized, fl.Exploitable, fl.WrongParam, fl.Class)...)
	}
	if err := os.WriteFile(filepath.Join(*out, "FLOWS.tsv"), flows, 0o644); err != nil {
		fatal(err)
	}
	if err := os.WriteFile(filepath.Join(*out, "seed.spec"),
		[]byte(corpus.ExperimentSeed().Format()), 0o644); err != nil {
		fatal(err)
	}
	sliceNote := ""
	if *slices > 1 {
		sliceNote = fmt.Sprintf(" (slice %d/%d)", *slice, *slices)
	}
	fmt.Printf("wrote %d files, %d flows, and seed.spec to %s%s\n",
		len(c.Files), len(c.Flows), *out, sliceNote)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "corpusgen:", err)
	os.Exit(1)
}
