// Command corpusgen writes a synthetic labeled Python web-application
// corpus to a directory, together with its ground-truth flow records and
// the experiment seed specification.
//
// Usage:
//
//	corpusgen -out /tmp/corpus -files 400 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"seldon/internal/corpus"
)

func main() {
	var (
		out   = flag.String("out", "corpus-out", "output directory")
		files = flag.Int("files", 400, "number of files")
		seed  = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	c := corpus.Generate(corpus.Config{Files: *files, Seed: *seed})
	for _, f := range c.Files {
		path := filepath.Join(*out, f.Name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(path, []byte(f.Source), 0o644); err != nil {
			fatal(err)
		}
	}

	// Ground truth: one line per generated flow.
	var flows []byte
	for _, fl := range c.Flows {
		flows = append(flows, fmt.Sprintf("%s\t%s\t%s\t%s\tsanitized=%t\texploitable=%t\twrongparam=%t\tclass=%s\n",
			fl.File, fl.SourceRep, fl.SanitizerRep, fl.SinkRep,
			fl.Sanitized, fl.Exploitable, fl.WrongParam, fl.Class)...)
	}
	if err := os.WriteFile(filepath.Join(*out, "FLOWS.tsv"), flows, 0o644); err != nil {
		fatal(err)
	}
	if err := os.WriteFile(filepath.Join(*out, "seed.spec"),
		[]byte(corpus.ExperimentSeed().Format()), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d files, %d flows, and seed.spec to %s\n",
		len(c.Files), len(c.Flows), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "corpusgen:", err)
	os.Exit(1)
}
