// Command taintcheck runs the taint analyzer over Python files with a
// given specification, reporting unsanitized source→sink flows.
//
// Usage:
//
//	taintcheck -spec learned.spec file1.py file2.py ...
//	taintcheck -dir path/to/repo        # uses the App. B seed by default
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"seldon/internal/dataflow"
	"seldon/internal/propgraph"
	"seldon/internal/pyparse"
	"seldon/internal/spec"
	"seldon/internal/taint"
)

func main() {
	var (
		dir      = flag.String("dir", "", "directory to scan for .py files")
		specFile = flag.String("spec", "", "specification file (o:/a:/i:/b: lines); default: the paper's App. B seed")
		verbose  = flag.Bool("v", false, "print witness flow traces")
		dedupe   = flag.Bool("dedupe", false, "collapse reports sharing (source, sink) representations")
	)
	flag.Parse()

	sp := spec.Seed()
	if *specFile != "" {
		data, err := os.ReadFile(*specFile)
		if err != nil {
			fatal(err)
		}
		sp, err = spec.Parse(string(data))
		if err != nil {
			fatal(err)
		}
	}

	paths := flag.Args()
	if *dir != "" {
		err := filepath.WalkDir(*dir, func(path string, d fs.DirEntry, err error) error {
			if err == nil && !d.IsDir() && strings.HasSuffix(path, ".py") {
				paths = append(paths, path)
			}
			return err
		})
		if err != nil {
			fatal(err)
		}
	}
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "taintcheck: no input files (use -dir or list .py files)")
		os.Exit(2)
	}
	sort.Strings(paths)

	var graphs []*propgraph.Graph
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		mod, perr := pyparse.Parse(path, string(data))
		if perr != nil {
			fmt.Fprintf(os.Stderr, "taintcheck: %v (continuing with recovered AST)\n", perr)
		}
		graphs = append(graphs, dataflow.AnalyzeModule(mod, dataflow.Options{}))
	}

	union := propgraph.Union(graphs...)
	reports := taint.Analyze(union, sp)
	if *dedupe {
		reports = taint.Dedupe(reports)
	}
	for i := range reports {
		r := &reports[i]
		fmt.Printf("%s:%s: [%s] %s -> %s (sink at %s)\n",
			r.File, r.SourcePos, r.Category, r.SourceRep, r.SinkRep, r.SinkPos)
		if *verbose {
			fmt.Print(indent(r.Trace(union), "    "))
		}
	}
	s := taint.Summarize(reports)
	fmt.Printf("\n%d reports in %d files\n", s.Total, s.Files)
	cats := make([]string, 0, len(s.ByCategory))
	for c := range s.ByCategory {
		cats = append(cats, string(c))
	}
	sort.Strings(cats)
	for _, c := range cats {
		fmt.Printf("  %-20s %d\n", c, s.ByCategory[taint.Category(c)])
	}
	if s.Total > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "taintcheck:", err)
	os.Exit(2)
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}
