// Command taintcheck runs the taint analyzer over Python files with a
// given specification, reporting unsanitized source→sink flows.
//
// Usage:
//
//	taintcheck -spec learned.spec file1.py file2.py ...
//	taintcheck -dir path/to/repo        # uses the App. B seed by default
//
// Observability: -v additionally logs per-stage timings to stderr, and
// -metrics-json / -http / -cpuprofile / -memprofile mirror the seldon
// command's operator surface.
//
// Incremental analysis: -cache-dir reuses per-file front-end results
// across runs (content-addressed, bitwise-identical reports), so
// repeated checks of a mostly-unchanged tree only re-parse edited
// files; -cache-clear empties the directory first.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"seldon/internal/core"
	"seldon/internal/fpcache"
	"seldon/internal/obs"
	"seldon/internal/propgraph"
	"seldon/internal/spec"
	"seldon/internal/taint"
)

func main() {
	var (
		dir      = flag.String("dir", "", "directory to scan for .py files")
		specFile = flag.String("spec", "", "specification file (o:/a:/i:/b: lines); default: the paper's App. B seed")
		verbose  = flag.Bool("v", false, "print witness flow traces and log stages to stderr")
		dedupe   = flag.Bool("dedupe", false, "collapse reports sharing (source, sink) representations")
		workers  = flag.Int("workers", 0, "front-end worker goroutines (0 = GOMAXPROCS, 1 = sequential); results are identical at every count")

		cacheDir   = flag.String("cache-dir", "", "persistent per-file analysis cache directory (content-addressed; reports are bitwise identical with or without it)")
		cacheClear = flag.Bool("cache-clear", false, "empty -cache-dir before the run")

		metricsJSON = flag.String("metrics-json", "", "write a JSON metrics snapshot to this file at exit")
		httpAddr    = flag.String("http", "", "serve /metrics and /debug/pprof/ on this address during the run (e.g. :8080)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	var logger *obs.Logger
	if *verbose {
		logger = obs.NewLogger(os.Stderr)
	}
	var reg *obs.Registry
	if *metricsJSON != "" || *httpAddr != "" {
		reg = obs.New()
	}
	if *httpAddr != "" {
		srv, errc, err := obs.Serve(*httpAddr, reg)
		if err != nil {
			fatal(err) // fail fast: busy port, bad address
		}
		go func() {
			if err := <-errc; err != nil {
				fatal(err)
			}
		}()
		logger.Log("http.listen", "addr", srv.Addr)
	}
	stopCPU := func() error { return nil }
	if *cpuProfile != "" {
		stop, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		stopCPU = stop
	}
	if *metricsJSON != "" {
		// Fail fast on an unwritable path rather than after the run.
		if err := reg.WriteJSON(*metricsJSON); err != nil {
			fatal(err)
		}
	}

	sp := spec.Seed()
	if *specFile != "" {
		data, err := os.ReadFile(*specFile)
		if err != nil {
			fatal(err)
		}
		sp, err = spec.Parse(string(data))
		if err != nil {
			fatal(err)
		}
	}

	paths := flag.Args()
	if *dir != "" {
		err := filepath.WalkDir(*dir, func(path string, d fs.DirEntry, err error) error {
			if err == nil && !d.IsDir() && strings.HasSuffix(path, ".py") {
				paths = append(paths, path)
			}
			return err
		})
		if err != nil {
			fatal(err)
		}
	}
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "taintcheck: no input files (use -dir or list .py files)")
		os.Exit(2)
	}
	sort.Strings(paths)

	files := make(map[string]string, len(paths))
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		files[path] = string(data)
	}
	ccfg := core.Config{Workers: *workers, Metrics: reg, Log: logger}
	if *cacheDir != "" {
		cache, err := fpcache.Open(*cacheDir)
		if err != nil {
			fatal(err)
		}
		if *cacheClear {
			if err := cache.Clear(); err != nil {
				fatal(err)
			}
		}
		ccfg.Cache = cache
	}
	fe := core.AnalyzeFiles(files, ccfg)
	if ccfg.Cache != nil {
		fmt.Fprintf(os.Stderr, "taintcheck: cache: %d hits, %d misses, %d bytes, saved %s\n",
			fe.CacheHits, fe.CacheMisses, fe.CacheBytes, fe.CacheSaved.Round(time.Microsecond))
	}
	for _, perr := range fe.ParseErrs {
		fmt.Fprintf(os.Stderr, "taintcheck: %v (continuing with recovered AST)\n", perr)
	}

	t0 := time.Now()
	union := propgraph.Union(fe.Graphs...)
	unionD := time.Since(t0)
	reg.ObserveDuration(obs.StageUnion, unionD)
	logger.Log(obs.StageUnion, "dur", unionD.Round(time.Microsecond))

	t0 = time.Now()
	reports := taint.Analyze(union, sp)
	taintD := time.Since(t0)
	reg.ObserveDuration("stage.taint", taintD)
	logger.Log("stage.taint", "dur", taintD.Round(time.Microsecond), "reports", len(reports))

	if *dedupe {
		reports = taint.Dedupe(reports)
	}
	for i := range reports {
		r := &reports[i]
		fmt.Printf("%s:%s: [%s] %s -> %s (sink at %s)\n",
			r.File, r.SourcePos, r.Category, r.SourceRep, r.SinkRep, r.SinkPos)
		if *verbose {
			fmt.Print(indent(r.Trace(union), "    "))
		}
	}
	s := taint.Summarize(reports)
	reg.Add("taint.reports", int64(s.Total))
	fmt.Printf("\n%d reports in %d files\n", s.Total, s.Files)
	cats := make([]string, 0, len(s.ByCategory))
	for c := range s.ByCategory {
		cats = append(cats, string(c))
	}
	sort.Strings(cats)
	for _, c := range cats {
		fmt.Printf("  %-20s %d\n", c, s.ByCategory[taint.Category(c)])
	}

	if err := stopCPU(); err != nil {
		fatal(err)
	}
	if *memProfile != "" {
		if err := obs.WriteHeapProfile(*memProfile); err != nil {
			fatal(err)
		}
	}
	if *metricsJSON != "" {
		if err := reg.WriteJSON(*metricsJSON); err != nil {
			fatal(err)
		}
		logger.Log("metrics.written", "path", *metricsJSON)
	}

	if s.Total > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "taintcheck:", err)
	os.Exit(2)
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}
