package main

import (
	"bytes"
	"strings"
	"testing"

	"seldon/internal/dataflow"
	"seldon/internal/propgraph"
	"seldon/internal/pyparse"
)

func exampleUnion(t *testing.T) *propgraph.Graph {
	t.Helper()
	sources := map[string]string{
		"a.py": "import flask\nq = flask.request.args.get('q')\nprint(q)\n",
		"b.py": "import os\nos.system('ls')\n",
	}
	var graphs []*propgraph.Graph
	for _, name := range []string{"a.py", "b.py"} {
		mod, err := pyparse.Parse(name, sources[name])
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		graphs = append(graphs, dataflow.AnalyzeModule(mod, dataflow.Options{}))
	}
	return propgraph.Union(graphs...)
}

// TestBinaryRoundTrip: -binary output is exactly the propgraph v2 codec
// and decodes back to the same graph with no trailing bytes.
func TestBinaryRoundTrip(t *testing.T) {
	union := exampleUnion(t)
	var buf bytes.Buffer
	if err := writeGraph(&buf, union, true); err != nil {
		t.Fatalf("writeGraph(binary): %v", err)
	}
	got, tail, err := propgraph.DecodeBinary(buf.Bytes())
	if err != nil {
		t.Fatalf("DecodeBinary of -binary output: %v", err)
	}
	if len(tail) != 0 {
		t.Errorf("%d trailing bytes after the graph", len(tail))
	}
	if !bytes.Equal(got.AppendBinary(nil), buf.Bytes()) {
		t.Error("decoded graph re-encodes differently")
	}
}

func TestJSONOutputStillDefault(t *testing.T) {
	union := exampleUnion(t)
	var buf bytes.Buffer
	if err := writeGraph(&buf, union, false); err != nil {
		t.Fatalf("writeGraph(json): %v", err)
	}
	if !strings.HasPrefix(strings.TrimSpace(buf.String()), "{") {
		t.Errorf("JSON output does not look like JSON: %.40q", buf.String())
	}
}
