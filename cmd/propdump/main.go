// Command propdump extracts propagation graphs from Python files and
// writes them as JSON, separating the paper pipeline's extraction phase
// from the learning phase (parse once, learn many times).
//
// Usage:
//
//	propdump -dir path/to/repo -out graphs.json    # one union graph
//	propdump file.py                               # single file to stdout
//	propdump -binary -dir repo -out graphs.pg      # v2 binary codec
//
// -binary emits the compact propgraph binary encoding (the same codec
// shard artifacts and the fpcache use) instead of JSON; decode it with
// propgraph.DecodeBinary.
package main

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"seldon/internal/dataflow"
	"seldon/internal/propgraph"
	"seldon/internal/pyparse"
)

func main() {
	var (
		dir    = flag.String("dir", "", "directory to scan for .py files")
		out    = flag.String("out", "", "output file (default stdout)")
		binary = flag.Bool("binary", false, "write the propgraph v2 binary codec instead of JSON")
	)
	flag.Parse()

	paths := flag.Args()
	if *dir != "" {
		err := filepath.WalkDir(*dir, func(path string, d fs.DirEntry, err error) error {
			if err == nil && !d.IsDir() && strings.HasSuffix(path, ".py") {
				paths = append(paths, path)
			}
			return err
		})
		if err != nil {
			fatal(err)
		}
	}
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "propdump: no input files")
		os.Exit(2)
	}
	sort.Strings(paths)

	var graphs []*propgraph.Graph
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		mod, perr := pyparse.Parse(path, string(data))
		if perr != nil {
			fmt.Fprintf(os.Stderr, "propdump: %v (continuing)\n", perr)
		}
		graphs = append(graphs, dataflow.AnalyzeModule(mod, dataflow.Options{}))
	}
	union := propgraph.Union(graphs...)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := writeGraph(w, union, *binary); err != nil {
		fatal(err)
	}
	st := union.ComputeStats()
	fmt.Fprintf(os.Stderr, "propdump: %d files, %d events (%d candidates), %d edges\n",
		len(paths), st.Events, st.Candidates, st.Edges)
}

// writeGraph renders the union graph to w: the propgraph v2 binary
// codec (decode with propgraph.DecodeBinary) or the JSON encoding.
func writeGraph(w io.Writer, g *propgraph.Graph, binary bool) error {
	if binary {
		_, err := w.Write(g.AppendBinary(nil))
		return err
	}
	return g.Encode(w)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "propdump:", err)
	os.Exit(1)
}
