// Command seldon runs end-to-end taint-specification inference: it parses
// a directory of Python files (or generates a synthetic corpus), learns
// likely sources, sanitizers, and sinks from a seed specification, and
// prints the inferred specifications sorted by confidence.
//
// Usage:
//
//	seldon -dir path/to/python/repo [-seedfile seed.spec] [-threshold 0.1]
//	seldon -generate 400           # run on a synthetic corpus instead
//	seldon -generate 240 -o specs.json   # persist a spec store for seldond
//
// Distributed learning: seldon is also the coordinator of the
// seldon-shard worker fleet. -shards-in ingests pre-produced shard
// artifacts (validated, merged in slice order, learned once);
// -exec-shards spawns N local seldon-shard subprocesses over pipes —
// the same flow without a cluster. Either way the saved spec store is
// byte-identical to a single-process run on the whole corpus.
//
//	seldon -shards-in 'parts/*.shard' -seedfile seed.spec -o specs.json
//	seldon -generate 240 -exec-shards 4 -shard-bin ./seldon-shard -o specs.json
//
// Observability:
//
//	seldon -generate 400 -v                      # per-stage log + interning summary
//	seldon -generate 400 -metrics-json m.json    # metrics snapshot at exit
//	seldon -generate 400 -http :8080             # /metrics + /debug/pprof
//	seldon -generate 400 -cpuprofile cpu.out -memprofile mem.out
//
// Incremental analysis: -cache-dir keeps per-file front-end results in a
// content-addressed on-disk cache, so re-learning after editing a few
// files only re-parses those files. Results are bitwise identical with
// and without the cache; -cache-clear empties the directory first. With
// -exec-shards the directory is shared by the worker subprocesses.
//
//	seldon -dir repo -cache-dir ~/.cache/seldon
//	seldon -dir repo -cache-dir ~/.cache/seldon -cache-clear
//
// Continuous learning: -session-dir persists the whole learning state
// (per-file propagation graphs, previous solution, feedback pins)
// between runs. A re-run diffs the corpus against the session, splices
// only changed files, reuses the cached constraint blocks of unchanged
// ones, and warm-starts the solver from the previous solution — same
// store as a from-scratch run, a fraction of the work. -feedback
// replays operator verdicts (accept/reject of a (symbol, role)) into
// the session as hard constraints before re-learning; the same session
// directory powers seldond's live /v1/feedback endpoint.
//
//	seldon -generate 240 -session-dir .seldon-session -o specs.json
//	seldon -dir repo -session-dir s -feedback verdicts.json -o specs.json
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"seldon/internal/constraints"
	"seldon/internal/core"
	"seldon/internal/corpus"
	"seldon/internal/fpcache"
	"seldon/internal/obs"
	"seldon/internal/obs/trace"
	"seldon/internal/propgraph"
	"seldon/internal/shard"
	"seldon/internal/spec"
	"seldon/internal/specio"
)

func main() {
	var (
		dir       = flag.String("dir", "", "directory of .py files to learn from")
		generate  = flag.Int("generate", 0, "generate a synthetic corpus of N files instead of -dir")
		seedFile  = flag.String("seedfile", "", "seed specification (o:/a:/i:/b: lines); default: the paper's App. B seed")
		threshold = flag.Float64("threshold", 0.1, "score threshold for selecting roles")
		lambda    = flag.Float64("lambda", 0.1, "L1 regularization weight")
		cval      = flag.Float64("c", 0.75, "implication-strength constant C")
		limit     = flag.Int("top", 50, "print at most this many inferred specs per role")
		workers   = flag.Int("workers", 0, "front-end worker goroutines (0 = GOMAXPROCS, 1 = sequential); results are identical at every count")
		out       = flag.String("out", "", "write the merged (seed + learned) specification to this file, for taintcheck -spec")
		store     = flag.String("o", "", "write the merged specification as a versioned JSON spec store (with provenance metadata), for seldond -specs")

		shardsIn   = flag.String("shards-in", "", "coordinate: glob of shard artifacts (from seldon-shard) to merge and learn from")
		execShards = flag.Int("exec-shards", 0, "coordinate: spawn N local seldon-shard subprocesses over -dir/-generate and merge their artifacts")
		shardBin   = flag.String("shard-bin", "seldon-shard", "seldon-shard binary for -exec-shards")
		shipCache  = flag.Bool("ship-cache", false, "coordinate: have workers attach fpcache sidecars to their artifacts, ingested into -cache-dir")
		flowCache  = flag.String("flowcache", "", "coordinate: persistent flow-constraint block cache file (loaded before the build, saved after; stale or corrupt files load as empty)")

		cacheDir   = flag.String("cache-dir", "", "persistent per-file analysis cache directory (content-addressed; results are bitwise identical with or without it)")
		cacheClear = flag.Bool("cache-clear", false, "empty -cache-dir before the run")

		sessionDir   = flag.String("session-dir", "", "persistent incremental-learning session directory: re-learns only what changed since the last run there (results identical to from-scratch)")
		feedbackFile = flag.String("feedback", "", "JSON file of {symbol, role, verdict} objects replayed into the session as hard pins (requires -session-dir)")

		verbose     = flag.Bool("v", false, "log pipeline stages and parse errors to stderr")
		metricsJSON = flag.String("metrics-json", "", "write a JSON metrics snapshot to this file at exit")
		httpAddr    = flag.String("http", "", "serve /metrics and /debug/pprof/ on this address during the run (e.g. :8080)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	var logger *obs.Logger
	if *verbose {
		logger = obs.NewLogger(os.Stderr)
	}
	var reg *obs.Registry
	if *metricsJSON != "" || *httpAddr != "" {
		reg = obs.New()
	}
	if *httpAddr != "" {
		srv, errc, err := obs.Serve(*httpAddr, reg)
		if err != nil {
			fatal(err) // fail fast: busy port, bad address
		}
		go func() {
			if err := <-errc; err != nil {
				fatal(err)
			}
		}()
		logger.Log("http.listen", "addr", srv.Addr)
	}
	stopCPU := func() error { return nil }
	if *cpuProfile != "" {
		stop, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		stopCPU = stop
	}
	if *metricsJSON != "" {
		// Fail fast on an unwritable path rather than after the run.
		if err := reg.WriteJSON(*metricsJSON); err != nil {
			fatal(err)
		}
	}

	coordinating := *shardsIn != "" || *execShards > 0
	if *feedbackFile != "" && *sessionDir == "" {
		fatal(fmt.Errorf("-feedback requires -session-dir"))
	}
	if *sessionDir != "" && coordinating {
		fatal(fmt.Errorf("-session-dir does not compose with shard coordination"))
	}
	if *flowCache != "" && !coordinating {
		fatal(fmt.Errorf("-flowcache requires shard coordination (-shards-in or -exec-shards); -session-dir persists it on the incremental path"))
	}
	if *shipCache && *execShards <= 0 {
		fatal(fmt.Errorf("-ship-cache requires -exec-shards (pre-produced -shards-in artifacts carry sidecars or not; -cache-dir ingests them either way)"))
	}

	// Every run is one trace: the pipeline stages become child spans so
	// -v can print where the time went as a tree, mirroring what seldond
	// serves per-request from /debug/traces.
	tracer := trace.New(4)
	rootName := "seldon.learn"
	if coordinating {
		rootName = "seldon.coordinate"
	}
	rootSpan := tracer.StartRoot(rootName)
	cfg := core.Config{Threshold: *threshold, Workers: *workers, Metrics: reg, Log: logger, Span: rootSpan}
	cfg.Constraints.Lambda = *lambda
	cfg.Constraints.C = *cval
	if *cacheDir != "" && !coordinating {
		// A coordinator never runs the front-end itself; with
		// -exec-shards the directory is handed to the workers instead.
		cache, err := fpcache.Open(*cacheDir)
		if err != nil {
			fatal(err)
		}
		if *cacheClear {
			if err := cache.Clear(); err != nil {
				fatal(err)
			}
		}
		cfg.Cache = cache
	}

	// Both paths converge on a Result plus the corpus identity the spec
	// store's provenance block records.
	var (
		res         *core.Result
		seedSpec    *spec.Spec
		nFiles      int
		fingerprint string
		summary     string
	)
	runStart := time.Now()
	if coordinating {
		var err error
		seedSpec, err = coordinatorSeed(*seedFile, *generate)
		if err != nil {
			fatal(err)
		}
		var mres *shard.MergeResult
		res, mres, err = coordinate(coordinateConfig{
			Pattern:   *shardsIn,
			ExecN:     *execShards,
			Bin:       *shardBin,
			Dir:       *dir,
			Generate:  *generate,
			Workers:   *workers,
			CacheDir:  *cacheDir,
			ShipCache: *shipCache,
			FlowCache: *flowCache,
		}, seedSpec, cfg)
		if err != nil {
			fatal(err)
		}
		nFiles = len(mres.Files)
		fingerprint = mres.CorpusFingerprint
		summary = fmt.Sprintf("coordinated %d shards: %d files", mres.Slices, nFiles)
	} else {
		files, seed, err := loadInput(*dir, *generate, *seedFile)
		if err != nil {
			fatal(err)
		}
		seedSpec = seed
		rootSpan.SetAttr("files", len(files))
		if *sessionDir != "" {
			res, err = runSession(*sessionDir, *feedbackFile, files, seedSpec, cfg)
			if err != nil {
				fatal(err)
			}
			summary = fmt.Sprintf("re-learned %d files incrementally", len(files))
		} else {
			res = core.LearnFromSources(files, seedSpec, cfg)
			summary = fmt.Sprintf("analyzed %d files", len(files))
		}
		nFiles = len(files)
		fingerprint = specio.Fingerprint(files)
	}
	rootSpan.End()
	reg.Set(obs.GaugePipelineWall, time.Since(runStart).Seconds())

	st := res.Graph.ComputeStats()
	errNote := ""
	switch res.ParseErrors {
	case 0:
	case 1:
		errNote = " (1 parse error)"
	default:
		errNote = fmt.Sprintf(" (%d parse errors)", res.ParseErrors)
	}
	fmt.Printf("%s%s: %d events, %d candidate events, %d constraints, solved in %s (%d epochs)\n",
		summary, errNote, st.Events, len(res.System.EventInfos),
		len(res.System.Problem.Constraints), res.InferenceTime.Round(time.Millisecond),
		res.SolverEpochs)
	fmt.Print(stageBreakdown(res))
	if res.Workers > 1 && res.FrontendWall > 0 {
		// On a fully warm cache run parse+dataflow never execute, so the
		// parallel-speedup ratio is meaningless — the cache line below
		// carries the relevant number instead.
		if cpu := res.StageTime(obs.StageParse) + res.StageTime(obs.StageDataflow); cpu > 0 {
			fmt.Printf("front-end: %d workers, wall %s, effective speedup %.2fx\n",
				res.Workers, res.FrontendWall.Round(time.Microsecond),
				float64(cpu)/float64(res.FrontendWall))
		}
	}
	fmt.Print(cacheSummary(res, cfg.Cache))
	if *verbose {
		fmt.Printf("interning: %d distinct symbols, %d bytes saved vs per-occurrence rep strings\n",
			res.InternSymbols, res.InternBytesSaved)
		if td, ok := tracer.TraceByID(rootSpan.TraceID()); ok {
			fmt.Printf("trace %s:\n%s", td.TraceID, td.Tree())
		}
	}

	if err := stopCPU(); err != nil {
		fatal(err)
	}
	if *memProfile != "" {
		if err := obs.WriteHeapProfile(*memProfile); err != nil {
			fatal(err)
		}
	}
	if *metricsJSON != "" {
		if err := reg.WriteJSON(*metricsJSON); err != nil {
			fatal(err)
		}
		logger.Log("metrics.written", "path", *metricsJSON)
	}

	if *out != "" {
		merged := res.LearnedSpec(seedSpec)
		if err := os.WriteFile(*out, []byte(merged.Format()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d specification entries to %s\n", merged.Len(), *out)
	}
	if *store != "" {
		merged := res.LearnedSpec(seedSpec)
		meta := specio.Meta{
			CorpusFingerprint: fingerprint,
			CorpusFiles:       nFiles,
			Events:            st.Events,
			SeedEntries:       seedSpec.Len(),
			LearnedEntries:    merged.Len() - seedSpec.Len(),
			Generator:         "seldon",
		}
		if err := specio.Save(*store, merged, meta); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote spec store (%d entries, schema v%d) to %s\n",
			merged.Len(), specio.SchemaVersion, *store)
	}

	entries := res.LearnedEntries(seedSpec)
	for _, role := range propgraph.Roles() {
		n := 0
		fmt.Printf("\ninferred %ss:\n", role)
		for _, e := range entries {
			if e.Role != role || n >= *limit {
				continue
			}
			n++
			fmt.Printf("  %6.3f  %s\n", e.Score, e.Rep)
		}
		if n == 0 {
			fmt.Println("  (none)")
		}
	}
}

// coordinateConfig bundles the coordinator's flag surface.
type coordinateConfig struct {
	Pattern  string // -shards-in glob (artifact files)
	ExecN    int    // -exec-shards worker count
	Bin      string // -shard-bin
	Dir      string
	Generate int
	Workers  int
	// CacheDir doubles as the workers' shared fpcache (-exec-shards) and
	// the coordinator-side ingest target for artifact sidecars.
	CacheDir  string
	ShipCache bool   // ask workers to attach fpcache sidecars
	FlowCache string // persisted flow-constraint block cache file
}

// coordinate gathers shard artifacts — from a glob of files or by
// spawning a local seldon-shard fleet — and learns once over the global
// graph. Ingestion is streaming and pipelined: each artifact is decoded
// incrementally (never materialized whole) and folded into the union
// the moment its slice-order turn comes, so decode overlaps worker
// execution and peak coordinator memory is one artifact. The resulting
// Result is what a single-process LearnFromSources over the
// concatenated corpus would have produced, with shard gather/merge
// timings prepended to the stage breakdown.
func coordinate(cc coordinateConfig, seedSpec *spec.Spec, cfg core.Config) (*core.Result, *shard.MergeResult, error) {
	var ingest *fpcache.Cache
	if cc.CacheDir != "" {
		c, err := fpcache.Open(cc.CacheDir)
		if err != nil {
			return nil, nil, err
		}
		ingest = c
	}
	mopts := shard.MergeOptions{Metrics: cfg.Metrics, Log: cfg.Log}
	ropts := shard.ReadOptions{Cache: ingest, Metrics: cfg.Metrics, Log: cfg.Log}

	var (
		mres       *shard.MergeResult
		gatherName = obs.StageShardStream
	)
	t0 := time.Now()
	if cc.Pattern != "" {
		paths, err := filepath.Glob(cc.Pattern)
		if err != nil {
			return nil, nil, err
		}
		if len(paths) == 0 {
			return nil, nil, fmt.Errorf("no shard artifacts match %q", cc.Pattern)
		}
		sort.Strings(paths)
		gatherSpan := cfg.Span.StartChild(gatherName)
		m := shard.NewMerger(mopts)
		for _, p := range paths {
			a, err := shard.ReadFile(p, ropts)
			if err != nil {
				return nil, nil, err
			}
			cfg.Log.Log("shard.read", "path", p, "slice", a.Slice, "of", a.Slices,
				"bytes", a.Size)
			if err := m.Commit(a); err != nil {
				return nil, nil, err
			}
		}
		mres, err = m.Finish()
		gatherSpan.End()
		if err != nil {
			return nil, nil, err
		}
	} else {
		gatherName = obs.StageShardExec
		gatherSpan := cfg.Span.StartChild(gatherName)
		var err error
		mres, err = shard.ExecMerge(shard.ExecConfig{
			Bin: cc.Bin, Slices: cc.ExecN,
			Dir: cc.Dir, Generate: cc.Generate,
			Workers: cc.Workers, CacheDir: cc.CacheDir,
			ShipCache: cc.ShipCache, Ingest: ingest,
			Metrics: cfg.Metrics,
		}, mopts)
		gatherSpan.End()
		if err != nil {
			return nil, nil, err
		}
		cfg.Metrics.ObserveDuration(obs.StageShardExec, time.Since(t0))
	}
	gatherWall := time.Since(t0)

	res, err := coordinatedLearn(cc.FlowCache, mres, seedSpec, cfg)
	if err != nil {
		return nil, nil, err
	}
	res.Stages = append([]core.StageTiming{
		{Name: gatherName, Duration: gatherWall},
		{Name: obs.TimerShardMerge, Duration: mres.MergeWall},
	}, res.Stages...)
	res.ParseErrors = mres.ParseErrors
	res.ParseErrorFiles = mres.ParseErrorFiles
	return res, mres, nil
}

// coordinatedLearn runs inference over the merged graph. With a
// -flowcache file it loads the persisted flow-constraint blocks, builds
// the system incrementally against the merge's file spans (byte-
// identical to the full build — reuse is fingerprint-gated), saves the
// refreshed cache back, and hands the prepared system to the solver;
// without one it is core.Learn.
func coordinatedLearn(flowPath string, mres *shard.MergeResult, seedSpec *spec.Spec, cfg core.Config) (*core.Result, error) {
	if flowPath == "" || mres.Spans == nil {
		return core.Learn(mres.Graph, seedSpec, cfg), nil
	}
	copts := cfg.Constraints
	copts.Metrics = cfg.Metrics
	if copts.Workers == 0 {
		copts.Workers = cfg.Workers
	}
	fc, warm := constraints.LoadFlowCache(flowPath, copts)

	sp := cfg.Span.StartChild(obs.StageConstraints)
	tb := time.Now()
	sys, st := constraints.BuildIncremental(mres.Graph, seedSpec, copts, mres.Spans, fc)
	buildWall := time.Since(tb)
	sp.End()
	cfg.Metrics.ObserveDuration(obs.StageConstraints, buildWall)
	cfg.Log.Log(obs.StageConstraints, "dur", buildWall.Round(time.Microsecond),
		"flowcache", flowPath, "warm", warm,
		"spans", st.Spans, "reused", st.SpansReused, "rebuilt", st.SpansRebuilt)

	res := core.LearnPrepared(mres.Graph, sys, cfg)
	res.Stages = append([]core.StageTiming{
		{Name: obs.StageConstraints, Duration: buildWall},
	}, res.Stages...)
	if err := fc.Save(flowPath, copts); err != nil {
		// The run's result is already in hand; a failed save only costs
		// the next run its warm start.
		fmt.Fprintln(os.Stderr, "seldon: flowcache save:", err)
	}
	return res, nil
}

// coordinatorSeed resolves the seed specification for a coordinator
// run, mirroring loadInput's choices so distributed and single-process
// runs of the same corpus learn from the same seed.
func coordinatorSeed(seedFile string, generate int) (*spec.Spec, error) {
	if seedFile != "" {
		data, err := os.ReadFile(seedFile)
		if err != nil {
			return nil, err
		}
		return spec.Parse(string(data))
	}
	if generate > 0 {
		return corpus.ExperimentSeed(), nil
	}
	return spec.Seed(), nil
}

// stageBreakdown formats the per-stage timing line: each recorded stage
// with its share of the total pipeline wall time.
func stageBreakdown(res *core.Result) string {
	var total time.Duration
	for _, st := range res.Stages {
		total += st.Duration
	}
	var b strings.Builder
	b.WriteString("stage timings:\n")
	for _, st := range res.Stages {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(st.Duration) / float64(total)
		}
		fmt.Fprintf(&b, "  %-18s %10s  %5.1f%%\n",
			strings.TrimPrefix(st.Name, "stage."),
			st.Duration.Round(time.Microsecond), pct)
	}
	fmt.Fprintf(&b, "  %-18s %10s\n", "total", total.Round(time.Microsecond))
	return b.String()
}

// cacheSummary formats the analysis-cache line: hit rate, entry bytes
// touched, front-end time the hits avoided, and the resulting estimated
// speedup over an uncached run of the same corpus.
func cacheSummary(res *core.Result, cache *fpcache.Cache) string {
	if cache == nil {
		return ""
	}
	total := res.CacheHits + res.CacheMisses
	rate := 0.0
	if total > 0 {
		rate = 100 * float64(res.CacheHits) / float64(total)
	}
	line := fmt.Sprintf("cache: %d/%d hits (%.1f%%), %d misses, %d bytes, saved %s",
		res.CacheHits, total, rate, res.CacheMisses, res.CacheBytes,
		res.CacheSaved.Round(time.Microsecond))
	if res.CacheSaved > 0 && res.FrontendWall > 0 {
		line += fmt.Sprintf(", est. warm speedup %.2fx",
			float64(res.FrontendWall+res.CacheSaved)/float64(res.FrontendWall))
	}
	return line + "\n"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seldon:", err)
	os.Exit(1)
}

// loadInput assembles the file map and seed specification.
func loadInput(dir string, generate int, seedFile string) (map[string]string, *spec.Spec, error) {
	var files map[string]string
	var seedSpec *spec.Spec
	switch {
	case generate > 0:
		c := corpus.Generate(corpus.Config{Files: generate})
		files = c.FileMap()
		seedSpec = corpus.ExperimentSeed()
	case dir != "":
		files = map[string]string{}
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".py") {
				return err
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			files[path] = string(data)
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		seedSpec = spec.Seed()
	default:
		return nil, nil, fmt.Errorf("need -dir or -generate (see -help)")
	}
	if seedFile != "" {
		data, err := os.ReadFile(seedFile)
		if err != nil {
			return nil, nil, err
		}
		seedSpec, err = spec.Parse(string(data))
		if err != nil {
			return nil, nil, err
		}
	}
	return files, seedSpec, nil
}
