// Command seldon runs end-to-end taint-specification inference: it parses
// a directory of Python files (or generates a synthetic corpus), learns
// likely sources, sanitizers, and sinks from a seed specification, and
// prints the inferred specifications sorted by confidence.
//
// Usage:
//
//	seldon -dir path/to/python/repo [-seedfile seed.spec] [-threshold 0.1]
//	seldon -generate 400           # run on a synthetic corpus instead
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"seldon/internal/core"
	"seldon/internal/corpus"
	"seldon/internal/propgraph"
	"seldon/internal/spec"
)

func main() {
	var (
		dir       = flag.String("dir", "", "directory of .py files to learn from")
		generate  = flag.Int("generate", 0, "generate a synthetic corpus of N files instead of -dir")
		seedFile  = flag.String("seedfile", "", "seed specification (o:/a:/i:/b: lines); default: the paper's App. B seed")
		threshold = flag.Float64("threshold", 0.1, "score threshold for selecting roles")
		lambda    = flag.Float64("lambda", 0.1, "L1 regularization weight")
		cval      = flag.Float64("c", 0.75, "implication-strength constant C")
		limit     = flag.Int("top", 50, "print at most this many inferred specs per role")
		out       = flag.String("out", "", "write the merged (seed + learned) specification to this file, for taintcheck -spec")
	)
	flag.Parse()

	files, seedSpec, err := loadInput(*dir, *generate, *seedFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seldon:", err)
		os.Exit(1)
	}

	cfg := core.Config{Threshold: *threshold}
	cfg.Constraints.Lambda = *lambda
	cfg.Constraints.C = *cval
	res := core.LearnFromSources(files, seedSpec, cfg)

	st := res.Graph.ComputeStats()
	fmt.Printf("analyzed %d files: %d events, %d candidate events, %d constraints, solved in %s\n",
		len(files), st.Events, len(res.System.EventInfos),
		len(res.System.Problem.Constraints), res.InferenceTime.Round(1e6))

	if *out != "" {
		merged := res.LearnedSpec(seedSpec)
		if err := os.WriteFile(*out, []byte(merged.Format()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "seldon:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d specification entries to %s\n", merged.Len(), *out)
	}

	entries := res.LearnedEntries(seedSpec)
	for _, role := range propgraph.Roles() {
		n := 0
		fmt.Printf("\ninferred %ss:\n", role)
		for _, e := range entries {
			if e.Role != role || n >= *limit {
				continue
			}
			n++
			fmt.Printf("  %6.3f  %s\n", e.Score, e.Rep)
		}
		if n == 0 {
			fmt.Println("  (none)")
		}
	}
}

// loadInput assembles the file map and seed specification.
func loadInput(dir string, generate int, seedFile string) (map[string]string, *spec.Spec, error) {
	var files map[string]string
	var seedSpec *spec.Spec
	switch {
	case generate > 0:
		c := corpus.Generate(corpus.Config{Files: generate})
		files = c.FileMap()
		seedSpec = corpus.ExperimentSeed()
	case dir != "":
		files = map[string]string{}
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".py") {
				return err
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			files[path] = string(data)
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		seedSpec = spec.Seed()
	default:
		return nil, nil, fmt.Errorf("need -dir or -generate (see -help)")
	}
	if seedFile != "" {
		data, err := os.ReadFile(seedFile)
		if err != nil {
			return nil, nil, err
		}
		seedSpec, err = spec.Parse(string(data))
		if err != nil {
			return nil, nil, err
		}
	}
	return files, seedSpec, nil
}
