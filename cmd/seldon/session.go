package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"seldon/internal/core"
	"seldon/internal/incr"
	"seldon/internal/propgraph"
	"seldon/internal/spec"
)

// The -session-dir path: learning through a persistent incremental
// session instead of from scratch. The session directory holds one
// state file (internal/incr) carrying the per-file propagation graphs,
// the previous solution, and any feedback pins. A run diffs the current
// corpus against the session by source content hash — unchanged files
// are not even re-parsed — retracts files that disappeared, splices the
// rest, applies -feedback verdicts, re-learns (delta constraint build +
// warm-started solve), and persists the updated session. The learned
// store is byte-identical to a from-scratch run over the same corpus.

// verdict is one entry of a -feedback file: a JSON array of objects,
// each carrying a symbol, a role (source, sanitizer, or sink), and a
// verdict (accept or reject), replayed into the session as hard pins
// before re-learning.
type verdict struct {
	Symbol  string `json:"symbol"`
	Role    string `json:"role"`
	Verdict string `json:"verdict"`
}

func parseRole(s string) (propgraph.Role, error) {
	switch s {
	case "source":
		return propgraph.Source, nil
	case "sanitizer":
		return propgraph.Sanitizer, nil
	case "sink":
		return propgraph.Sink, nil
	}
	return 0, fmt.Errorf("role must be source, sanitizer, or sink, got %q", s)
}

// runSession learns files through the persistent session in sessionDir,
// creating it cold when absent or unusable (corrupt, different seed or
// knobs, analyzer version skew).
func runSession(sessionDir, feedbackFile string, files map[string]string,
	seedSpec *spec.Spec, cfg core.Config) (*core.Result, error) {
	t0 := time.Now()
	sess, err := incr.LoadDir(sessionDir, seedSpec, cfg)
	resumed := err == nil
	if err != nil {
		if !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "seldon: session unusable (%v), starting cold\n", err)
		}
		sess = incr.NewSession(seedSpec, cfg)
	}

	// Diff the corpus against the session by content hash: splice what
	// changed or appeared, retract what disappeared.
	spliced, skipped := 0, 0
	for name, src := range files {
		if h, ok := sess.FileHash(name); ok && h == sha256.Sum256([]byte(src)) {
			skipped++
			continue
		}
		sess.SpliceSource(name, src)
		spliced++
	}
	retracted := 0
	for _, name := range sess.Files() {
		if _, ok := files[name]; !ok {
			sess.Retract(name)
			retracted++
		}
	}

	pins := 0
	if feedbackFile != "" {
		data, err := os.ReadFile(feedbackFile)
		if err != nil {
			return nil, err
		}
		var verdicts []verdict
		if err := json.Unmarshal(data, &verdicts); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", feedbackFile, err)
		}
		for i, v := range verdicts {
			role, err := parseRole(v.Role)
			if err != nil {
				return nil, fmt.Errorf("%s entry %d: %w", feedbackFile, i, err)
			}
			var val float64
			switch v.Verdict {
			case "accept":
				val = 1
			case "reject":
				val = 0
			default:
				return nil, fmt.Errorf("%s entry %d: verdict must be accept or reject, got %q",
					feedbackFile, i, v.Verdict)
			}
			if v.Symbol == "" {
				return nil, fmt.Errorf("%s entry %d: empty symbol", feedbackFile, i)
			}
			sess.Pin(v.Symbol, role, val)
			pins++
		}
	}

	res, st := sess.Relearn()
	if err := sess.SaveDir(sessionDir); err != nil {
		return nil, fmt.Errorf("persisting session: %w", err)
	}

	mode := "cold"
	if resumed {
		mode = "resumed"
	}
	fmt.Printf("session %s (%s): %d files (%d spliced, %d unchanged, %d retracted), "+
		"spans reused %d/%d, warm=%v, epochs saved %d",
		sessionDir, mode, st.Files, spliced, skipped, retracted,
		st.Delta.SpansReused, st.Delta.Spans, st.WarmStarted, st.EpochsSaved)
	if pins > 0 {
		fmt.Printf(", %d feedback pins", pins)
	}
	fmt.Printf(", wall %s\n", time.Since(t0).Round(time.Millisecond))
	return res, nil
}
