// Command feedbacksmoke is the end-to-end check of the continuous-
// learning loop, run in-process so CI needs no port coordination and
// the whole path can run under the race detector:
//
//	go run -race ./cmd/feedbacksmoke
//
// It learns a store from the generated corpus inside an incremental
// session, serves it with the session attached, reports a finding over
// a learned entry, warms the check cache with an identical request,
// then drives both feedback directions through POST /v1/feedback:
//
//  1. reject the finding by its id — the sink variable pins to 0, the
//     re-solve must reuse every constraint span and warm-start, the
//     store generation must advance, and an identical re-check (which
//     was a cache hit moments before) must no longer report the flow;
//  2. accept the same (symbol, role) — the pin flips to 1, the
//     generation advances again, and the finding reappears.
//
// Any divergence — a stale cache entry surviving the generation swap, a
// missing pin, an epoch that does not move, counters that do not add
// up — exits nonzero. This is the cheapest proof that finding IDs,
// verdict pinning, incremental re-solve, store publication, and
// structural cache invalidation compose.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"seldon/internal/core"
	"seldon/internal/corpus"
	"seldon/internal/incr"
	"seldon/internal/propgraph"
	"seldon/internal/service"
	"seldon/internal/specio"
)

const corpusFiles = 40

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "feedbacksmoke:", err)
		os.Exit(1)
	}
}

func run() error {
	// Learn inside a session so the server can re-solve on feedback.
	seed := corpus.ExperimentSeed()
	sess := incr.NewSession(seed, core.Config{Workers: 4})
	for name, src := range corpus.Generate(corpus.Config{Files: corpusFiles}).FileMap() {
		sess.SpliceSource(name, src)
	}
	res, _ := sess.Relearn()
	learned := res.LearnedEntries(seed)
	if len(learned) == 0 {
		return fmt.Errorf("corpus learned no non-seed entries")
	}

	// Pick a learned sink the corpus vocabulary lets us call directly
	// (rep shape "module.func()"), and synthesize a check body that
	// flows a seed source into it.
	var sink string
	for _, e := range learned {
		if e.Role == propgraph.Sink && strings.Count(e.Rep, ".") == 1 && strings.HasSuffix(e.Rep, "()") {
			sink = strings.TrimSuffix(e.Rep, "()")
			break
		}
	}
	if sink == "" {
		return fmt.Errorf("no module-level learned sink among %d learned entries", len(learned))
	}
	module := sink[:strings.IndexByte(sink, '.')]
	body := fmt.Sprintf("import %s\nimport flask\n\ndef handler():\n    v = flask.request.args.get(\"q\")\n    %s(v)\n", module, sink)

	srv := service.New(service.Config{
		Spec:    sess.LearnedSpec(),
		Meta:    specio.Meta{SeedEntries: seed.Len(), LearnedEntries: len(learned), Generator: "feedbacksmoke"},
		Session: sess,
		Workers: 2,
	})
	httpSrv, _, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	}()
	base := "http://" + httpSrv.Addr
	fmt.Printf("feedbacksmoke: serving %d entries on %s, probing learned sink %s()\n",
		sess.LearnedSpec().Len(), base, sink)

	epoch0, fb0, err := health(base)
	if err != nil {
		return err
	}
	if fb0 == nil {
		return fmt.Errorf("healthz has no feedback block with a session attached")
	}

	// Report the finding and warm the check cache with the identical body.
	first, err := check(base, body)
	if err != nil {
		return err
	}
	target, ok := findBySink(first, sink+"()")
	if !ok {
		return fmt.Errorf("check reported no finding for learned sink %s(): %+v", sink, first)
	}
	if target.ID == "" {
		return fmt.Errorf("finding has no id")
	}
	warm, err := check(base, body)
	if err != nil {
		return err
	}
	if warm.Total != first.Total {
		return fmt.Errorf("identical re-check diverged: %d findings, then %d", first.Total, warm.Total)
	}

	// Reject by finding id: the learned sink pins to 0, the store swaps
	// to a new generation, and the cached check result must not survive.
	rej, err := feedback(base, service.FeedbackRequest{FindingID: target.ID, Verdict: "reject"})
	if err != nil {
		return fmt.Errorf("reject: %w", err)
	}
	if len(rej.Pinned) == 0 {
		return fmt.Errorf("reject pinned no variables")
	}
	if rej.Epoch == "" || rej.Epoch == epoch0 {
		return fmt.Errorf("reject did not advance the generation: %q -> %q", epoch0, rej.Epoch)
	}
	if !rej.WarmStarted || rej.SpansReused != sess.Len() {
		return fmt.Errorf("reject re-solve not incremental: warm=%v, spans reused %d/%d",
			rej.WarmStarted, rej.SpansReused, sess.Len())
	}
	after, err := check(base, body)
	if err != nil {
		return err
	}
	if _, still := findBySink(after, sink+"()"); still {
		return fmt.Errorf("rejected flow into %s() still reported after re-solve", sink)
	}
	if after.Total >= first.Total {
		return fmt.Errorf("finding count did not drop after reject: %d -> %d", first.Total, after.Total)
	}

	// Accept the same symbol: the pin flips to 1 and the finding returns.
	acc, err := feedback(base, service.FeedbackRequest{Symbol: sink + "()", Role: "sink", Verdict: "accept"})
	if err != nil {
		return fmt.Errorf("accept: %w", err)
	}
	if acc.Epoch == rej.Epoch || acc.Epoch == "" {
		return fmt.Errorf("accept did not advance the generation: %q -> %q", rej.Epoch, acc.Epoch)
	}
	restored, err := check(base, body)
	if err != nil {
		return err
	}
	if _, back := findBySink(restored, sink+"()"); !back {
		return fmt.Errorf("accepted sink %s() not reported after re-solve", sink)
	}

	epochN, fbN, err := health(base)
	if err != nil {
		return err
	}
	if epochN != acc.Epoch {
		return fmt.Errorf("healthz epoch %q, want the accept generation %q", epochN, acc.Epoch)
	}
	if fbN == nil || fbN.Accepted != 1 || fbN.Rejected != 1 || fbN.Resolves != 2 || fbN.PinnedVars != 1 {
		return fmt.Errorf("feedback counters wrong: %+v", fbN)
	}

	fmt.Printf("feedbacksmoke OK: reject dropped %d->%d findings, accept restored %d; "+
		"generations %s -> %s -> %s, spans reused %d/%d\n",
		first.Total, after.Total, restored.Total,
		short(epoch0), short(rej.Epoch), short(acc.Epoch), rej.SpansReused, sess.Len())
	return nil
}

func findBySink(r *service.CheckResponse, sinkRep string) (service.Finding, bool) {
	for _, f := range r.Findings {
		if f.Sink == sinkRep {
			return f, true
		}
	}
	return service.Finding{}, false
}

func check(base, body string) (*service.CheckResponse, error) {
	resp, err := http.Post(base+"/v1/check?filename=probe.py", "text/x-python", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("check: status %d", resp.StatusCode)
	}
	var out service.CheckResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

func feedback(base string, req service.FeedbackRequest) (*service.FeedbackResponse, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+"/v1/feedback", "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var out service.FeedbackResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

func health(base string) (epoch string, fb *service.FeedbackHealth, err error) {
	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		return "", nil, err
	}
	defer resp.Body.Close()
	var out service.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", nil, err
	}
	return out.Epoch, out.Feedback, nil
}

func short(epoch string) string {
	if i := strings.IndexByte(epoch, ':'); i >= 0 && len(epoch) > i+9 {
		return epoch[i+1 : i+9]
	}
	return epoch
}
