// Command seldonload drives load against a seldond instance and
// reports the latency distribution — the serving-side SLO companion to
// the learning-side bench snapshots.
//
// Two loop disciplines:
//
//   - closed loop (default): -c workers each keep exactly one request
//     in flight, so offered load adapts to service speed — measures
//     capacity.
//   - open loop (-rps): requests fire on a fixed schedule regardless of
//     completions, so queueing delay shows up in the tail instead of
//     being absorbed by the load generator — measures SLO compliance at
//     a target arrival rate.
//
// Request bodies cycle through a synthetic corpus (internal/corpus), so
// checks exercise the real parse → dataflow → taint path with mixed
// shapes rather than one cached input. A warmup window is measured but
// discarded from the report.
//
// -dup P skews the body mix toward duplicates: with probability P a
// request re-sends one of a small hot head of the corpus, Zipf-weighted
// (rank r drawn ∝ 1/r), instead of cycling — the shape real serving
// traffic has, and the one the server's check-result cache and
// single-flight coalescing exist for. The draw is a deterministic hash
// of the request index, so two runs offer the same sequence.
//
// Usage:
//
//	seldonload -addr http://127.0.0.1:8647 -c 8 -duration 10s
//	seldonload -addr :8647 -rps 200 -duration 30s -json
//	seldonload -specs specs.json -duration 2s          # self-serve: boots
//	                                                   # seldond in-process on :0
//	seldonload -specs specs.json -into BENCH.json      # merge a "load"
//	                                                   # section into a snapshot
//	seldonload -specs specs.json -duration 2s -smoke   # exit 1 on any 5xx
//	                                                   # or an empty trace ring
//	seldonload -specs specs.json -dup 0.8 -section load_dup -into BENCH.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"seldon/internal/checkcache"
	"seldon/internal/corpus"
	"seldon/internal/service"
	"seldon/internal/specio"
)

// Report is the machine-readable run summary (-json, and the "load"
// section -into merges into a bench snapshot).
type Report struct {
	Mode        string  `json:"mode"` // "closed" or "open"
	TargetRPS   float64 `json:"target_rps,omitempty"`
	Concurrency int     `json:"concurrency,omitempty"`
	DurationS   float64 `json:"duration_s"`
	Requests    int     `json:"requests"`
	RPS         float64 `json:"rps"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	MaxMS       float64 `json:"max_ms"`
	OK          int     `json:"ok"`
	Rejected429 int     `json:"rejected_429"`
	Status4xx   int     `json:"status_4xx"`
	Status5xx   int     `json:"status_5xx"`
	NetErrors   int     `json:"net_errors"`
	Timeouts    int     `json:"timeouts"`
	TraceRing   int     `json:"trace_ring,omitempty"`

	// DupFraction echoes -dup; the cache fields are read back from the
	// target's /v1/healthz after the run (absent when the target serves
	// with its check cache disabled).
	DupFraction  float64 `json:"dup_fraction,omitempty"`
	CacheHits    int64   `json:"cache_hits,omitempty"`
	CacheMisses  int64   `json:"cache_misses,omitempty"`
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`
	Coalesced    int64   `json:"coalesced,omitempty"`
}

// collector accumulates one sample per completed request; samples that
// started inside the warmup window are recorded but later discarded.
type collector struct {
	mu      sync.Mutex
	samples []sample
}

type sample struct {
	start   time.Time
	latency time.Duration
	status  int // HTTP status; 0 = transport error, -1 = client timeout
}

func (c *collector) record(s sample) {
	c.mu.Lock()
	c.samples = append(c.samples, s)
	c.mu.Unlock()
}

func main() {
	var (
		addr     = flag.String("addr", "", "target base URL or :port of a running seldond")
		specs    = flag.String("specs", "", "self-serve mode: boot the service in-process on 127.0.0.1:0 from this spec store")
		rps      = flag.Float64("rps", 0, "open-loop target arrival rate (0 = closed loop)")
		conc     = flag.Int("c", 8, "closed-loop workers / open-loop outstanding cap")
		duration = flag.Duration("duration", 10*time.Second, "measured run length (after warmup)")
		warmup   = flag.Duration("warmup", time.Second, "warmup window, measured but discarded")
		nfiles   = flag.Int("corpus", 32, "synthetic corpus size cycled through as request bodies")
		dup      = flag.Float64("dup", 0, "fraction of requests re-sending a Zipf-weighted hot body (0 = cycle the corpus)")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request client timeout")
		jsonOut  = flag.Bool("json", false, "print the report as JSON instead of text")
		into     = flag.String("into", "", "merge the report as a section into this JSON snapshot file")
		section  = flag.String("section", "load", "top-level key the report is merged under with -into")
		cacheEnt = flag.Int("check-cache-entries", checkcache.DefaultMaxEntries,
			"self-serve: check-result cache entry cap (0 disables cache and coalescing)")
		cacheBytes = flag.Int64("check-cache-bytes", checkcache.DefaultMaxBytes,
			"self-serve: check-result cache byte cap (0 disables cache and coalescing)")
		smoke = flag.Bool("smoke", false, "exit 1 on any 5xx/transport error, an empty trace ring, or (with -dup) a cold cache")
	)
	flag.Parse()
	if *dup < 0 || *dup > 1 {
		fatal(fmt.Errorf("-dup must be in [0, 1]"))
	}

	if *addr == "" && *specs == "" {
		fatal(fmt.Errorf("need -addr (running seldond) or -specs (self-serve)"))
	}

	base := *addr
	var shutdown func()
	if *specs != "" {
		var err error
		base, shutdown, err = selfServe(*specs, *cacheEnt, *cacheBytes)
		if err != nil {
			fatal(err)
		}
		defer shutdown()
	}
	base = normalizeBase(base)

	pick := bodyPicker(corpusBodies(*nfiles), *dup)
	client := &http.Client{
		Timeout:   *timeout,
		Transport: &http.Transport{MaxIdleConnsPerHost: *conc + 8},
	}
	if err := waitReady(client, base, 10*time.Second); err != nil {
		fatal(err)
	}

	col := &collector{}
	start := time.Now()
	measureFrom := start.Add(*warmup)
	deadline := start.Add(*warmup + *duration)
	fire := func(i int) {
		body := pick(i)
		s := sample{start: time.Now()}
		resp, err := client.Post(base+"/v1/check?dedupe=1", "text/x-python",
			bytes.NewReader([]byte(body)))
		s.latency = time.Since(s.start)
		switch {
		case err != nil && strings.Contains(err.Error(), "Client.Timeout"):
			s.status = -1
		case err != nil:
			s.status = 0
		default:
			s.status = resp.StatusCode
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		col.record(s)
	}

	mode := "closed"
	if *rps > 0 {
		mode = "open"
		runOpen(fire, *rps, deadline)
	} else {
		runClosed(fire, *conc, deadline)
	}

	rep := summarize(col, measureFrom, *duration)
	rep.Mode = mode
	rep.TargetRPS = *rps
	if mode == "closed" {
		rep.Concurrency = *conc
	}
	rep.TraceRing = traceRingSize(client, base)
	rep.DupFraction = *dup
	fillCacheStats(client, base, &rep)

	if *into != "" {
		if err := mergeInto(*into, *section, rep); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "seldonload: merged %s section into %s\n", *section, *into)
	}
	if *jsonOut {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
	} else {
		printText(rep)
	}

	if shutdown != nil {
		shutdown()
		shutdown = nil
	}
	if *smoke {
		if bad := rep.Status5xx + rep.NetErrors + rep.Timeouts; bad > 0 {
			fatal(fmt.Errorf("smoke: %d failed requests (5xx=%d net=%d timeout=%d)",
				bad, rep.Status5xx, rep.NetErrors, rep.Timeouts))
		}
		if rep.TraceRing == 0 {
			fatal(fmt.Errorf("smoke: trace ring is empty after %d requests", rep.Requests))
		}
		if rep.OK == 0 {
			fatal(fmt.Errorf("smoke: no successful requests"))
		}
		// A duplicate-heavy mix against a cache-enabled target must show
		// actual reuse — a cold hit rate means the cache key or the
		// invalidation went wrong, not that the run was merely slow.
		if *dup > 0 && *cacheEnt > 0 && *cacheBytes > 0 {
			if rep.CacheHits == 0 {
				fatal(fmt.Errorf("smoke: -dup %.2f run finished with zero cache hits (misses=%d)",
					*dup, rep.CacheMisses))
			}
		}
		fmt.Fprintln(os.Stderr, "seldonload: smoke OK")
	}
}

// bodyPicker maps a request index to its body. With dup = 0 the corpus
// cycles; otherwise a deterministic hash of the index decides between a
// Zipf-weighted draw from the hot head (probability dup) and the cycle,
// so every run offers the same request sequence.
func bodyPicker(bodies []string, dup float64) func(int) string {
	if dup <= 0 {
		return func(i int) string { return bodies[i%len(bodies)] }
	}
	hot := len(bodies)
	if hot > 8 {
		hot = 8
	}
	cum := make([]float64, hot)
	total := 0.0
	for r := 0; r < hot; r++ {
		total += 1 / float64(r+1)
		cum[r] = total
	}
	return func(i int) string {
		if unitFloat(mix(uint64(i)*2+1)) >= dup {
			return bodies[i%len(bodies)]
		}
		u := unitFloat(mix(uint64(i)*2+2)) * total
		for r := 0; r < hot; r++ {
			if u <= cum[r] {
				return bodies[r]
			}
		}
		return bodies[hot-1]
	}
}

// mix is a splitmix64-style finalizer: a stateless stand-in for a
// seeded RNG that keeps the request sequence identical across runs and
// Go versions.
func mix(x uint64) uint64 {
	x = x*6364136223846793005 + 1442695040888963407
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// unitFloat maps 53 high bits onto [0, 1).
func unitFloat(x uint64) float64 { return float64(x>>11) / float64(1<<53) }

// fillCacheStats copies the target's check-cache counters into the
// report (left zero when the target disables the cache or is not a
// seldond).
func fillCacheStats(client *http.Client, base string, rep *Report) {
	resp, err := client.Get(base + "/v1/healthz")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var h service.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil || h.CheckCache == nil {
		return
	}
	rep.CacheHits = h.CheckCache.Hits
	rep.CacheMisses = h.CheckCache.Misses
	rep.CacheHitRate = h.CheckCache.HitRate
	rep.Coalesced = h.CheckCache.Coalesced
}

// runClosed keeps exactly workers requests in flight until deadline.
func runClosed(fire func(int), workers int, deadline time.Time) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				fire(int(next.Add(1)))
			}
		}()
	}
	wg.Wait()
}

// runOpen fires on a fixed schedule until deadline, independent of
// completions — in-flight requests are unbounded by design so service
// slowdown surfaces as tail latency, not reduced offered load.
func runOpen(fire func(int), rps float64, deadline time.Time) {
	interval := time.Duration(float64(time.Second) / rps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var wg sync.WaitGroup
	i := 0
	for now := range tick.C {
		if now.After(deadline) {
			break
		}
		i++
		wg.Add(1)
		go func(i int) { defer wg.Done(); fire(i) }(i)
	}
	wg.Wait()
}

// summarize folds the post-warmup samples into a Report.
func summarize(col *collector, measureFrom time.Time, duration time.Duration) Report {
	col.mu.Lock()
	defer col.mu.Unlock()
	var lat []float64
	rep := Report{DurationS: duration.Seconds()}
	for _, s := range col.samples {
		if s.start.Before(measureFrom) {
			continue
		}
		rep.Requests++
		switch {
		case s.status == -1:
			rep.Timeouts++
		case s.status == 0:
			rep.NetErrors++
		case s.status/100 == 2:
			rep.OK++
		case s.status == http.StatusTooManyRequests:
			rep.Rejected429++
		case s.status/100 == 4:
			rep.Status4xx++
		case s.status/100 == 5:
			rep.Status5xx++
		}
		if s.status/100 == 2 {
			lat = append(lat, float64(s.latency)/float64(time.Millisecond))
		}
	}
	if duration > 0 {
		rep.RPS = float64(rep.Requests) / duration.Seconds()
	}
	if len(lat) > 0 {
		sort.Float64s(lat)
		rep.P50MS = quantile(lat, 0.50)
		rep.P95MS = quantile(lat, 0.95)
		rep.P99MS = quantile(lat, 0.99)
		rep.MaxMS = lat[len(lat)-1]
	}
	return rep
}

// quantile returns the q-th sample quantile of sorted values
// (nearest-rank, the convention load tools report).
func quantile(sorted []float64, q float64) float64 {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func printText(r Report) {
	fmt.Printf("mode %s", r.Mode)
	if r.Mode == "open" {
		fmt.Printf(" (target %.0f rps)", r.TargetRPS)
	} else {
		fmt.Printf(" (%d workers)", r.Concurrency)
	}
	fmt.Printf(", %gs measured\n", r.DurationS)
	fmt.Printf("requests %d (%.1f rps): %d ok, %d rejected (429), %d 4xx, %d 5xx, %d net errors, %d timeouts\n",
		r.Requests, r.RPS, r.OK, r.Rejected429, r.Status4xx, r.Status5xx, r.NetErrors, r.Timeouts)
	fmt.Printf("latency ms: p50 %.2f  p95 %.2f  p99 %.2f  max %.2f\n",
		r.P50MS, r.P95MS, r.P99MS, r.MaxMS)
	if r.TraceRing > 0 {
		fmt.Printf("server trace ring holds %d traces (/debug/traces)\n", r.TraceRing)
	}
	if r.CacheHits+r.CacheMisses > 0 {
		fmt.Printf("check cache: %d hits / %d misses (%.0f%% hit rate), %d coalesced\n",
			r.CacheHits, r.CacheMisses, 100*r.CacheHitRate, r.Coalesced)
	}
}

// normalizeBase accepts ":8647", "host:8647", or a full URL and
// returns a scheme-qualified base with no trailing slash.
func normalizeBase(base string) string {
	base = strings.TrimSuffix(base, "/")
	if strings.HasPrefix(base, ":") {
		base = "127.0.0.1" + base
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return base
}

// selfServe boots the service in-process on a loopback port so smoke
// and bench runs need no external seldond or port coordination. The
// cache caps follow the seldond CLI convention: 0 disables.
func selfServe(specsPath string, cacheEntries int, cacheBytes int64) (base string, shutdown func(), err error) {
	sp, meta, err := specio.Load(specsPath)
	if err != nil {
		return "", nil, err
	}
	if cacheEntries <= 0 || cacheBytes <= 0 {
		cacheEntries, cacheBytes = -1, -1
	}
	srv := service.New(service.Config{
		Spec: sp, Meta: meta, StorePath: specsPath,
		CheckCacheEntries: cacheEntries, CheckCacheBytes: cacheBytes,
	})
	httpSrv, _, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	fmt.Fprintf(os.Stderr, "seldonload: self-serving %s on %s\n", specsPath, httpSrv.Addr)
	return "http://" + httpSrv.Addr, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	}, nil
}

// waitReady polls /v1/readyz until the target answers 200.
func waitReady(client *http.Client, base string, limit time.Duration) error {
	deadline := time.Now().Add(limit)
	for {
		resp, err := client.Get(base + "/v1/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("target %s not ready: %w", base, err)
			}
			return fmt.Errorf("target %s not ready", base)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// traceRingSize reports how many traces the server currently buffers
// (0 if /debug/traces is unreachable — e.g. a non-seldond target).
func traceRingSize(client *http.Client, base string) int {
	resp, err := client.Get(base + "/debug/traces?limit=1")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var dump struct {
		Buffered int `json:"buffered"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		return 0
	}
	return dump.Buffered
}

// mergeInto writes the report under a top-level section key of an
// existing JSON snapshot (creating the file if absent), preserving all
// other sections — the BENCH_N.json counterpart of benchjson. Distinct
// -section names let one snapshot carry several load profiles (cycled,
// duplicate-heavy, cache-disabled baseline) side by side.
func mergeInto(path, section string, rep Report) error {
	doc := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	doc[section] = rep
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// corpusBodies renders a synthetic corpus to a deterministic slice of
// request bodies (sorted by filename).
func corpusBodies(n int) []string {
	files := corpus.Generate(corpus.Config{Files: n}).FileMap()
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	bodies := make([]string, len(names))
	for i, name := range names {
		bodies[i] = files[name]
	}
	return bodies
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seldonload:", err)
	os.Exit(1)
}
