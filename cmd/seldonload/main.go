// Command seldonload drives load against a seldond instance and
// reports the latency distribution — the serving-side SLO companion to
// the learning-side bench snapshots.
//
// Two loop disciplines:
//
//   - closed loop (default): -c workers each keep exactly one request
//     in flight, so offered load adapts to service speed — measures
//     capacity.
//   - open loop (-rps): requests fire on a fixed schedule regardless of
//     completions, so queueing delay shows up in the tail instead of
//     being absorbed by the load generator — measures SLO compliance at
//     a target arrival rate.
//
// Request bodies cycle through a synthetic corpus (internal/corpus), so
// checks exercise the real parse → dataflow → taint path with mixed
// shapes rather than one cached input. A warmup window is measured but
// discarded from the report.
//
// Usage:
//
//	seldonload -addr http://127.0.0.1:8647 -c 8 -duration 10s
//	seldonload -addr :8647 -rps 200 -duration 30s -json
//	seldonload -specs specs.json -duration 2s          # self-serve: boots
//	                                                   # seldond in-process on :0
//	seldonload -specs specs.json -into BENCH.json      # merge a "load"
//	                                                   # section into a snapshot
//	seldonload -specs specs.json -duration 2s -smoke   # exit 1 on any 5xx
//	                                                   # or an empty trace ring
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"seldon/internal/corpus"
	"seldon/internal/service"
	"seldon/internal/specio"
)

// Report is the machine-readable run summary (-json, and the "load"
// section -into merges into a bench snapshot).
type Report struct {
	Mode        string  `json:"mode"` // "closed" or "open"
	TargetRPS   float64 `json:"target_rps,omitempty"`
	Concurrency int     `json:"concurrency,omitempty"`
	DurationS   float64 `json:"duration_s"`
	Requests    int     `json:"requests"`
	RPS         float64 `json:"rps"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	MaxMS       float64 `json:"max_ms"`
	OK          int     `json:"ok"`
	Rejected429 int     `json:"rejected_429"`
	Status4xx   int     `json:"status_4xx"`
	Status5xx   int     `json:"status_5xx"`
	NetErrors   int     `json:"net_errors"`
	Timeouts    int     `json:"timeouts"`
	TraceRing   int     `json:"trace_ring,omitempty"`
}

// collector accumulates one sample per completed request; samples that
// started inside the warmup window are recorded but later discarded.
type collector struct {
	mu      sync.Mutex
	samples []sample
}

type sample struct {
	start   time.Time
	latency time.Duration
	status  int // HTTP status; 0 = transport error, -1 = client timeout
}

func (c *collector) record(s sample) {
	c.mu.Lock()
	c.samples = append(c.samples, s)
	c.mu.Unlock()
}

func main() {
	var (
		addr     = flag.String("addr", "", "target base URL or :port of a running seldond")
		specs    = flag.String("specs", "", "self-serve mode: boot the service in-process on 127.0.0.1:0 from this spec store")
		rps      = flag.Float64("rps", 0, "open-loop target arrival rate (0 = closed loop)")
		conc     = flag.Int("c", 8, "closed-loop workers / open-loop outstanding cap")
		duration = flag.Duration("duration", 10*time.Second, "measured run length (after warmup)")
		warmup   = flag.Duration("warmup", time.Second, "warmup window, measured but discarded")
		nfiles   = flag.Int("corpus", 32, "synthetic corpus size cycled through as request bodies")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request client timeout")
		jsonOut  = flag.Bool("json", false, "print the report as JSON instead of text")
		into     = flag.String("into", "", "merge the report as a \"load\" section into this JSON snapshot file")
		smoke    = flag.Bool("smoke", false, "exit 1 if any 5xx/transport error occurred or the trace ring is empty")
	)
	flag.Parse()

	if *addr == "" && *specs == "" {
		fatal(fmt.Errorf("need -addr (running seldond) or -specs (self-serve)"))
	}

	base := *addr
	var shutdown func()
	if *specs != "" {
		var err error
		base, shutdown, err = selfServe(*specs)
		if err != nil {
			fatal(err)
		}
		defer shutdown()
	}
	base = normalizeBase(base)

	bodies := corpusBodies(*nfiles)
	client := &http.Client{
		Timeout:   *timeout,
		Transport: &http.Transport{MaxIdleConnsPerHost: *conc + 8},
	}
	if err := waitReady(client, base, 10*time.Second); err != nil {
		fatal(err)
	}

	col := &collector{}
	start := time.Now()
	measureFrom := start.Add(*warmup)
	deadline := start.Add(*warmup + *duration)
	fire := func(i int) {
		body := bodies[i%len(bodies)]
		s := sample{start: time.Now()}
		resp, err := client.Post(base+"/v1/check?dedupe=1", "text/x-python",
			bytes.NewReader([]byte(body)))
		s.latency = time.Since(s.start)
		switch {
		case err != nil && strings.Contains(err.Error(), "Client.Timeout"):
			s.status = -1
		case err != nil:
			s.status = 0
		default:
			s.status = resp.StatusCode
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		col.record(s)
	}

	mode := "closed"
	if *rps > 0 {
		mode = "open"
		runOpen(fire, *rps, deadline)
	} else {
		runClosed(fire, *conc, deadline)
	}

	rep := summarize(col, measureFrom, *duration)
	rep.Mode = mode
	rep.TargetRPS = *rps
	if mode == "closed" {
		rep.Concurrency = *conc
	}
	rep.TraceRing = traceRingSize(client, base)

	if *into != "" {
		if err := mergeInto(*into, rep); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "seldonload: merged load section into %s\n", *into)
	}
	if *jsonOut {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
	} else {
		printText(rep)
	}

	if shutdown != nil {
		shutdown()
		shutdown = nil
	}
	if *smoke {
		if bad := rep.Status5xx + rep.NetErrors + rep.Timeouts; bad > 0 {
			fatal(fmt.Errorf("smoke: %d failed requests (5xx=%d net=%d timeout=%d)",
				bad, rep.Status5xx, rep.NetErrors, rep.Timeouts))
		}
		if rep.TraceRing == 0 {
			fatal(fmt.Errorf("smoke: trace ring is empty after %d requests", rep.Requests))
		}
		if rep.OK == 0 {
			fatal(fmt.Errorf("smoke: no successful requests"))
		}
		fmt.Fprintln(os.Stderr, "seldonload: smoke OK")
	}
}

// runClosed keeps exactly workers requests in flight until deadline.
func runClosed(fire func(int), workers int, deadline time.Time) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				fire(int(next.Add(1)))
			}
		}()
	}
	wg.Wait()
}

// runOpen fires on a fixed schedule until deadline, independent of
// completions — in-flight requests are unbounded by design so service
// slowdown surfaces as tail latency, not reduced offered load.
func runOpen(fire func(int), rps float64, deadline time.Time) {
	interval := time.Duration(float64(time.Second) / rps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var wg sync.WaitGroup
	i := 0
	for now := range tick.C {
		if now.After(deadline) {
			break
		}
		i++
		wg.Add(1)
		go func(i int) { defer wg.Done(); fire(i) }(i)
	}
	wg.Wait()
}

// summarize folds the post-warmup samples into a Report.
func summarize(col *collector, measureFrom time.Time, duration time.Duration) Report {
	col.mu.Lock()
	defer col.mu.Unlock()
	var lat []float64
	rep := Report{DurationS: duration.Seconds()}
	for _, s := range col.samples {
		if s.start.Before(measureFrom) {
			continue
		}
		rep.Requests++
		switch {
		case s.status == -1:
			rep.Timeouts++
		case s.status == 0:
			rep.NetErrors++
		case s.status/100 == 2:
			rep.OK++
		case s.status == http.StatusTooManyRequests:
			rep.Rejected429++
		case s.status/100 == 4:
			rep.Status4xx++
		case s.status/100 == 5:
			rep.Status5xx++
		}
		if s.status/100 == 2 {
			lat = append(lat, float64(s.latency)/float64(time.Millisecond))
		}
	}
	if duration > 0 {
		rep.RPS = float64(rep.Requests) / duration.Seconds()
	}
	if len(lat) > 0 {
		sort.Float64s(lat)
		rep.P50MS = quantile(lat, 0.50)
		rep.P95MS = quantile(lat, 0.95)
		rep.P99MS = quantile(lat, 0.99)
		rep.MaxMS = lat[len(lat)-1]
	}
	return rep
}

// quantile returns the q-th sample quantile of sorted values
// (nearest-rank, the convention load tools report).
func quantile(sorted []float64, q float64) float64 {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func printText(r Report) {
	fmt.Printf("mode %s", r.Mode)
	if r.Mode == "open" {
		fmt.Printf(" (target %.0f rps)", r.TargetRPS)
	} else {
		fmt.Printf(" (%d workers)", r.Concurrency)
	}
	fmt.Printf(", %gs measured\n", r.DurationS)
	fmt.Printf("requests %d (%.1f rps): %d ok, %d rejected (429), %d 4xx, %d 5xx, %d net errors, %d timeouts\n",
		r.Requests, r.RPS, r.OK, r.Rejected429, r.Status4xx, r.Status5xx, r.NetErrors, r.Timeouts)
	fmt.Printf("latency ms: p50 %.2f  p95 %.2f  p99 %.2f  max %.2f\n",
		r.P50MS, r.P95MS, r.P99MS, r.MaxMS)
	if r.TraceRing > 0 {
		fmt.Printf("server trace ring holds %d traces (/debug/traces)\n", r.TraceRing)
	}
}

// normalizeBase accepts ":8647", "host:8647", or a full URL and
// returns a scheme-qualified base with no trailing slash.
func normalizeBase(base string) string {
	base = strings.TrimSuffix(base, "/")
	if strings.HasPrefix(base, ":") {
		base = "127.0.0.1" + base
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return base
}

// selfServe boots the service in-process on a loopback port so smoke
// and bench runs need no external seldond or port coordination.
func selfServe(specsPath string) (base string, shutdown func(), err error) {
	sp, meta, err := specio.Load(specsPath)
	if err != nil {
		return "", nil, err
	}
	srv := service.New(service.Config{Spec: sp, Meta: meta, StorePath: specsPath})
	httpSrv, _, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	fmt.Fprintf(os.Stderr, "seldonload: self-serving %s on %s\n", specsPath, httpSrv.Addr)
	return "http://" + httpSrv.Addr, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	}, nil
}

// waitReady polls /v1/readyz until the target answers 200.
func waitReady(client *http.Client, base string, limit time.Duration) error {
	deadline := time.Now().Add(limit)
	for {
		resp, err := client.Get(base + "/v1/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("target %s not ready: %w", base, err)
			}
			return fmt.Errorf("target %s not ready", base)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// traceRingSize reports how many traces the server currently buffers
// (0 if /debug/traces is unreachable — e.g. a non-seldond target).
func traceRingSize(client *http.Client, base string) int {
	resp, err := client.Get(base + "/debug/traces?limit=1")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var dump struct {
		Buffered int `json:"buffered"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		return 0
	}
	return dump.Buffered
}

// mergeInto writes the report under a top-level "load" key of an
// existing JSON snapshot (creating the file if absent), preserving all
// other sections — the BENCH_N.json counterpart of benchjson.
func mergeInto(path string, rep Report) error {
	doc := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	doc["load"] = rep
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// corpusBodies renders a synthetic corpus to a deterministic slice of
// request bodies (sorted by filename).
func corpusBodies(n int) []string {
	files := corpus.Generate(corpus.Config{Files: n}).FileMap()
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	bodies := make([]string, len(names))
	for i, name := range names {
		bodies[i] = files[name]
	}
	return bodies
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seldonload:", err)
	os.Exit(1)
}
