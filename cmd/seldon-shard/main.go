// Command seldon-shard is the distributed-learning worker: it analyzes
// one deterministic slice of a corpus (parse + dataflow + per-slice
// graph union, reusing the parallel front-end and the fpcache) and
// writes a single shard artifact — manifest plus propagation graph in
// the versioned wire format — to a file or stdout. A coordinator
// (seldon -shards-in / -exec-shards) merges the artifacts and learns
// once; the result is byte-identical to a single-process run on the
// whole corpus.
//
// Usage:
//
//	seldon-shard -dir path/to/repo -slices 4 -slice 2 -o part2.shard
//	seldon-shard -generate 240 -slices 4 -slice 2 -o -   # artifact on stdout
//
// Slicing is deterministic: -dir corpora are cut into contiguous blocks
// of sorted file-name order, -generate corpora by project (which is the
// same order — project names prefix file names). Workers for different
// slices may run anywhere, in any order, and may share a -cache-dir.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"seldon/internal/core"
	"seldon/internal/corpus"
	"seldon/internal/fpcache"
	"seldon/internal/obs"
	"seldon/internal/shard"
)

func main() {
	var (
		dir      = flag.String("dir", "", "directory of .py files to analyze")
		generate = flag.Int("generate", 0, "analyze a slice of a synthetic corpus of N files instead of -dir")
		slices   = flag.Int("slices", 1, "total number of corpus slices")
		slice    = flag.Int("slice", 0, "this worker's slice index (0-based)")
		out      = flag.String("o", "-", "artifact output path (\"-\" = stdout)")
		workers  = flag.Int("workers", 0, "front-end worker goroutines (0 = GOMAXPROCS)")

		cacheDir   = flag.String("cache-dir", "", "persistent per-file analysis cache directory (sharable between workers)")
		cacheClear = flag.Bool("cache-clear", false, "empty -cache-dir before the run")
		shipCache  = flag.Bool("ship-cache", false, "attach the fpcache sidecar (per-file cache key + cost) to the artifact, so the coordinator can seed its own cache")

		verbose     = flag.Bool("v", false, "log stages to stderr")
		metricsJSON = flag.String("metrics-json", "", "write a JSON metrics snapshot to this file at exit")
	)
	flag.Parse()

	if *slices < 1 || *slice < 0 || *slice >= *slices {
		fatal(fmt.Errorf("slice %d of %d out of range", *slice, *slices))
	}

	var logger *obs.Logger
	if *verbose {
		logger = obs.NewLogger(os.Stderr)
	}
	var reg *obs.Registry
	if *metricsJSON != "" {
		reg = obs.New()
		if err := reg.WriteJSON(*metricsJSON); err != nil {
			fatal(err) // fail fast on an unwritable path
		}
	}

	files, err := loadSlice(*dir, *generate, *slice, *slices)
	if err != nil {
		fatal(err)
	}

	cfg := core.Config{Workers: *workers, Metrics: reg, Log: logger}
	if *cacheDir != "" {
		cache, err := fpcache.Open(*cacheDir)
		if err != nil {
			fatal(err)
		}
		if *cacheClear {
			if err := cache.Clear(); err != nil {
				fatal(err)
			}
		}
		cfg.Cache = cache
	}

	art, fe, err := shard.Build(files, *slice, *slices, cfg)
	if err != nil {
		fatal(err)
	}
	if *shipCache {
		art.AttachSidecar(files, fe)
	}

	t0 := time.Now()
	var written int64
	if *out == "-" {
		written, err = shard.Write(os.Stdout, art)
	} else {
		written, err = shard.WriteFile(*out, art)
	}
	if err != nil {
		fatal(err)
	}
	reg.ObserveDuration(obs.StageShardEncode, time.Since(t0))
	reg.Set(obs.GaugeShardBytes, float64(written))

	dest := *out
	if dest == "-" {
		dest = "stdout"
	}
	errNote := ""
	if n := len(fe.ParseErrorFiles); n > 0 {
		errNote = fmt.Sprintf(", %d parse errors", n)
	}
	fmt.Fprintf(os.Stderr, "seldon-shard: slice %d/%d: %d files%s, %d events, %d bytes to %s\n",
		*slice, *slices, len(art.Files), errNote, len(art.Graph.Events), written, dest)

	if *metricsJSON != "" {
		if err := reg.WriteJSON(*metricsJSON); err != nil {
			fatal(err)
		}
	}
}

// loadSlice assembles slice i of n of the designated corpus, reading
// only the slice's files from disk on the -dir path.
func loadSlice(dir string, generate, i, n int) (map[string]string, error) {
	switch {
	case generate > 0:
		c := corpus.Generate(corpus.Config{Files: generate})
		return c.Slice(n, i).FileMap(), nil
	case dir != "":
		var names []string
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err == nil && !d.IsDir() && strings.HasSuffix(path, ".py") {
				names = append(names, path)
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		sort.Strings(names)
		files := map[string]string{}
		for _, name := range core.SliceNames(names, i, n) {
			data, err := os.ReadFile(name)
			if err != nil {
				return nil, err
			}
			files[name] = string(data)
		}
		return files, nil
	default:
		return nil, fmt.Errorf("need -dir or -generate (see -help)")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seldon-shard:", err)
	os.Exit(1)
}
