// Command seldond is the long-running taint-analysis service: it loads
// a specification store learned by `seldon -o` and serves taint checks
// over HTTP until SIGINT/SIGTERM, then drains in-flight requests.
//
// Usage:
//
//	seldon -generate 240 -o specs.json     # learn and persist the store
//	seldond -specs specs.json -addr :8647  # serve it
//
//	curl -s localhost:8647/v1/healthz       # liveness
//	curl -s localhost:8647/v1/readyz        # readiness (503 while draining)
//	curl -s localhost:8647/v1/specs?role=sink
//	curl -s --data-binary @app.py 'localhost:8647/v1/check?filename=app.py&trace=1'
//	curl -s localhost:8647/metrics          # request counters + latency p50/p95/p99
//	curl -s localhost:8647/metrics.prom     # Prometheus text exposition
//	curl -s localhost:8647/debug/traces     # ring of recent request traces
//
// Hot reload: after re-learning into the same store file, POST
// /v1/reload re-reads it and swaps the new specs in atomically —
// in-flight checks finish against the store they started with, and an
// invalid store is rejected (422) while the old one keeps serving:
//
//	seldon -generate 240 -o specs.json && curl -s -XPOST localhost:8647/v1/reload
//
// The operator surface (/metrics, /metrics.txt, /debug/pprof/) shares
// the service mux, so one port carries traffic and telemetry.
//
// Repeated checks are served from a bounded in-memory result cache and
// concurrent identical checks coalesce onto one analysis; size the
// cache with -check-cache-entries / -check-cache-bytes (0 turns both
// layers off). Hit rates and pool stats surface in /v1/healthz.
//
// Continuous learning: -session-dir attaches the incremental-learning
// session persisted by `seldon -session-dir`, enabling POST
// /v1/feedback — accept/reject a check finding (by its id) or a
// (symbol, role) pair, and the server pins the verdict as a hard
// constraint, re-solves warm-started over the cached constraint blocks,
// and swaps the re-learned store in as a new generation (check results
// re-cache under the new epoch automatically). The updated session is
// persisted back on shutdown.
//
//	seldon -generate 240 -session-dir s -o specs.json
//	seldond -specs specs.json -session-dir s
//	curl -s -XPOST -d '{"finding_id":"<id>","verdict":"reject"}' localhost:8647/v1/feedback
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"seldon/internal/checkcache"
	"seldon/internal/core"
	"seldon/internal/incr"
	"seldon/internal/obs"
	"seldon/internal/obs/trace"
	"seldon/internal/service"
	"seldon/internal/specio"
)

func main() {
	var (
		specsPath = flag.String("specs", "", "specification store to serve (JSON, from `seldon -o`); required")
		addr      = flag.String("addr", ":8647", "listen address (\":0\" picks a free port)")
		workers   = flag.Int("workers", 0, "concurrent checks (0 = GOMAXPROCS, 1 = serialized)")
		queue     = flag.Int("queue", 0, "requests allowed to wait for a worker before 429 (0 = 2x workers)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-check deadline (503 when exceeded)")
		maxBody   = flag.Int64("max-body", 1<<20, "request body cap in bytes (413 when exceeded)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		traceRing = flag.Int("trace-ring", 0, "recent request traces kept for /debug/traces (0 = 256)")
		cacheEnt  = flag.Int("check-cache-entries", checkcache.DefaultMaxEntries,
			"check-result cache entry cap (0 disables the cache and coalescing)")
		cacheBytes = flag.Int64("check-cache-bytes", checkcache.DefaultMaxBytes,
			"check-result cache byte cap (0 disables the cache and coalescing)")
		sessionDir = flag.String("session-dir", "",
			"incremental-learning session directory (from `seldon -session-dir`); enables POST /v1/feedback")
		verbose = flag.Bool("v", false, "log requests and lifecycle events to stderr")
	)
	flag.Parse()

	if *specsPath == "" {
		fatal(fmt.Errorf("need -specs (learn one with `seldon -generate 240 -o specs.json`)"))
	}
	sp, meta, err := specio.Load(*specsPath)
	if err != nil {
		fatal(err)
	}

	var logger *obs.Logger
	if *verbose {
		logger = obs.NewLogger(os.Stderr)
	}
	// On the CLI "0" reads as "off"; the library uses negative for off
	// and 0 for "default", so translate here.
	entries, capBytes := *cacheEnt, *cacheBytes
	if entries <= 0 || capBytes <= 0 {
		entries, capBytes = -1, -1
	}

	reg := obs.New()

	// A session turns on the continuous-learning loop: /v1/feedback pins
	// operator verdicts, re-solves incrementally, and publishes the
	// re-learned store as a new generation. The session adopts the seed
	// and knobs persisted by `seldon -session-dir`; on shutdown the
	// accumulated pins and solution are written back.
	var sess *incr.Session
	if *sessionDir != "" {
		var err error
		sess, err = incr.LoadDir(*sessionDir, nil, core.Config{Workers: 1, Metrics: reg, Log: logger})
		if err != nil {
			fatal(fmt.Errorf("loading session from %s: %w (create one with `seldon -session-dir`)", *sessionDir, err))
		}
		fmt.Printf("seldond: learning session loaded from %s (%d corpus files, %d pins); /v1/feedback enabled\n",
			*sessionDir, sess.Len(), sess.Pins())
	}

	srv := service.New(service.Config{
		Spec:              sp,
		Meta:              meta,
		Session:           sess,
		StorePath:         *specsPath,
		Workers:           *workers,
		QueueDepth:        *queue,
		RequestTimeout:    *timeout,
		MaxBodyBytes:      *maxBody,
		DrainTimeout:      *drain,
		CheckCacheEntries: entries,
		CheckCacheBytes:   capBytes,
		Metrics:           reg,
		Log:               logger,
		Tracer:            trace.New(*traceRing),
		OnReady: func(addr string) {
			fmt.Printf("seldond: listening on %s\n", addr)
		},
	})

	fmt.Printf("seldond: serving %d specification entries (%d sources, %d sanitizers, %d sinks) from %s\n",
		sp.Len(), len(sp.Sources), len(sp.Sanitizers), len(sp.Sinks), *specsPath)
	if fp, err := specio.FingerprintStore(sp, meta); err == nil {
		fmt.Printf("seldond: store fingerprint %s (POST /v1/reload to hot-swap after re-learning)\n", fp)
	}
	if meta.CorpusFingerprint != "" {
		fmt.Printf("seldond: store provenance: %d corpus files, %d events, fingerprint %s\n",
			meta.CorpusFiles, meta.Events, meta.CorpusFingerprint)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Run binds synchronously, so a busy port fails fast here rather
	// than after the process looks healthy.
	if err := srv.Run(ctx, *addr); err != nil {
		fatal(err)
	}
	if sess != nil {
		if err := sess.SaveDir(*sessionDir); err != nil {
			fatal(fmt.Errorf("persisting session: %w", err))
		}
		fmt.Printf("seldond: session persisted to %s (%d pins)\n", *sessionDir, sess.Pins())
	}
	fmt.Println("seldond: drained, bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seldond:", err)
	os.Exit(1)
}
