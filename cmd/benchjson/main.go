// Command benchjson merges `go test -bench -benchmem` output into a
// metrics snapshot produced by -metrics-json, so one JSON file carries
// both the pipeline telemetry and the microbenchmark numbers. Each
// benchmark line becomes three gauges:
//
//	bench.<Name>.ns_op
//	bench.<Name>.b_op
//	bench.<Name>.allocs_op
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' ./... | benchjson -into BENCH.json
//
// Non-benchmark lines (pkg headers, PASS/ok) pass through to stderr so
// the run stays inspectable; the snapshot file is rewritten in place.
//
// A second mode compares a single-process run against a sharded
// coordinator run (both captured with -metrics-json) and merges a
// "distributed" section — wall times, speedup, merge/exec costs, and
// artifact volume — into the snapshot, preserving any other sections
// already present:
//
//	benchjson -dist-single s.json -dist-shards d.json -shards 4 -into BENCH.json
//
// A third mode compares a from-scratch re-learn of a mutated corpus
// against an incremental-session re-learn of the same corpus (seldon
// -session-dir) and merges an "incremental" section — full vs delta
// wall, speedup, span/constraint reuse, and warm vs cold solver
// epochs:
//
//	benchjson -incr-full full.json -incr-delta delta.json -into BENCH.json
//
// A fourth mode captures the streaming coordinator: two -exec-shards
// runs over the same corpus — cold (empty caches) and warm (fpcache
// seeded by the cold run's shipped sidecars, flow cache persisted) —
// merge as a "distributed_stream" section: walls, peak decoded bytes
// against total artifact bytes (the streaming-memory headline), stream
// volume, and the flow-cache hit rate on the warm path:
//
//	benchjson -stream-cold cold.json -stream-warm warm.json -shards 4 -into BENCH.json
//
// And a guard mode for CI smoke tests, exiting nonzero unless the
// snapshot proves the coordinator streamed (0 < peak < total):
//
//	benchjson -check-stream coord.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"seldon/internal/obs"
)

func main() {
	into := flag.String("into", "", "metrics snapshot file to merge benchmark gauges into")
	distSingle := flag.String("dist-single", "", "metrics snapshot of a single-process seldon run (selects distributed-section mode)")
	distShards := flag.String("dist-shards", "", "metrics snapshot of a seldon -exec-shards coordinator run")
	shards := flag.Int("shards", 0, "shard count of the -dist-shards run")
	incrFull := flag.String("incr-full", "", "metrics snapshot of a from-scratch re-learn (selects incremental-section mode)")
	incrDelta := flag.String("incr-delta", "", "metrics snapshot of a session (-session-dir) re-learn of the same corpus")
	streamCold := flag.String("stream-cold", "", "metrics snapshot of a cold streaming coordinator run (selects distributed_stream mode)")
	streamWarm := flag.String("stream-warm", "", "metrics snapshot of a warm (cache-seeded) streaming coordinator run")
	checkStream := flag.String("check-stream", "", "coordinator metrics snapshot to assert streamed ingestion on (0 < peak < total); exits nonzero otherwise")
	flag.Parse()
	if *checkStream != "" {
		if err := checkStreamed(*checkStream); err != nil {
			fatal(err)
		}
		return
	}
	if *into == "" {
		fatal(fmt.Errorf("need -into <snapshot.json>"))
	}
	if *distSingle != "" || *distShards != "" {
		if err := mergeDistributed(*into, *distSingle, *distShards, *shards); err != nil {
			fatal(err)
		}
		return
	}
	if *incrFull != "" || *incrDelta != "" {
		if err := mergeIncremental(*into, *incrFull, *incrDelta); err != nil {
			fatal(err)
		}
		return
	}
	if *streamCold != "" || *streamWarm != "" {
		if err := mergeStream(*into, *streamCold, *streamWarm, *shards); err != nil {
			fatal(err)
		}
		return
	}

	data, err := os.ReadFile(*into)
	if err != nil {
		fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		fatal(fmt.Errorf("%s: %w", *into, err))
	}
	if snap.Gauges == nil {
		snap.Gauges = map[string]float64{}
	}

	merged := 0
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		name, values, ok := parseBenchLine(line)
		if !ok {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		for unit, v := range values {
			snap.Gauges["bench."+name+"."+unit] = v
		}
		merged++
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if merged == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}

	out, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*into, append(out, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("merged %d benchmarks into %s\n", merged, *into)
}

// parseBenchLine recognizes `BenchmarkName[-P] iters v unit v unit ...`
// and returns the bare name plus the snake_cased unit values.
func parseBenchLine(line string) (string, map[string]float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix go test appends when procs > 1.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	// Sub-benchmarks (Name/case) become dotted gauge segments.
	name = strings.ReplaceAll(name, "/", ".")
	values := map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		unit := strings.ReplaceAll(strings.ReplaceAll(fields[i+1], "/", "_"), "-", "_")
		values[unit] = v
	}
	if len(values) == 0 {
		return "", nil, false
	}
	return name, values, true
}

// mergeDistributed builds the "distributed" section from two metrics
// snapshots — the same corpus learned single-process and via N local
// shard workers — and merges it into the snapshot file. The file is
// handled as a generic JSON document (not obs.Snapshot) so sections
// other tools merged, like seldonload's "load", survive the rewrite.
func mergeDistributed(into, singlePath, shardsPath string, shards int) error {
	if singlePath == "" || shardsPath == "" {
		return fmt.Errorf("distributed mode needs both -dist-single and -dist-shards")
	}
	single, err := readSnapshot(singlePath)
	if err != nil {
		return err
	}
	dist, err := readSnapshot(shardsPath)
	if err != nil {
		return err
	}
	singleWall := single.Gauges[obs.GaugePipelineWall]
	shardWall := dist.Gauges[obs.GaugePipelineWall]
	if singleWall <= 0 || shardWall <= 0 {
		return fmt.Errorf("snapshots lack the %s gauge (need seldon runs with -metrics-json)", obs.GaugePipelineWall)
	}
	sec := map[string]any{
		"shards":         shards,
		"single_wall_s":  singleWall,
		"shard_wall_s":   shardWall,
		"speedup":        singleWall / shardWall,
		"exec_s":         dist.Timers[obs.StageShardExec].Sum,
		"merge_s":        dist.Timers[obs.TimerShardMerge].Sum,
		"files":          dist.Gauges[obs.GaugeShardFiles],
		"artifact_bytes": dist.Gauges[obs.GaugeShardBytes],
	}

	data, err := os.ReadFile(into)
	if err != nil {
		return err
	}
	doc := map[string]any{}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: %w", into, err)
	}
	doc["distributed"] = sec
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(into, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("merged distributed section (%d shards, %.2fx) into %s\n",
		shards, singleWall/shardWall, into)
	return nil
}

// mergeIncremental builds the "incremental" section from two metrics
// snapshots of the same mutated corpus — one learned from scratch, one
// re-learned through a persistent session (seldon -session-dir) — and
// merges it into the snapshot file. delta_wall_s against full_wall_s is
// the headline: the session run re-analyzes only the changed files and
// warm-starts the solver, so its wall should stay well under the
// from-scratch wall even though a fresh process rebuilds the
// flow-constraint cache once.
func mergeIncremental(into, fullPath, deltaPath string) error {
	if fullPath == "" || deltaPath == "" {
		return fmt.Errorf("incremental mode needs both -incr-full and -incr-delta")
	}
	full, err := readSnapshot(fullPath)
	if err != nil {
		return err
	}
	delta, err := readSnapshot(deltaPath)
	if err != nil {
		return err
	}
	fullWall := full.Gauges[obs.GaugePipelineWall]
	deltaWall := delta.Gauges[obs.GaugePipelineWall]
	if fullWall <= 0 || deltaWall <= 0 {
		return fmt.Errorf("snapshots lack the %s gauge (need seldon runs with -metrics-json)", obs.GaugePipelineWall)
	}
	sec := map[string]any{
		"full_wall_s":        fullWall,
		"delta_wall_s":       deltaWall,
		"speedup":            fullWall / deltaWall,
		"files":              delta.Gauges[obs.GaugeIncrFiles],
		"files_changed":      delta.Gauges[obs.GaugeIncrFilesChanged],
		"spans_reused":       delta.Gauges[obs.GaugeIncrSpansReused],
		"constraints_reused": delta.Gauges[obs.GaugeIncrConstraintsReused],
		"cold_epochs":        full.Gauges[obs.GaugeSolverEpochs],
		"warm_epochs":        delta.Gauges[obs.GaugeSolverEpochs],
		"warm_epochs_saved":  delta.Gauges[obs.GaugeWarmEpochsSaved],
	}

	data, err := os.ReadFile(into)
	if err != nil {
		return err
	}
	doc := map[string]any{}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: %w", into, err)
	}
	doc["incremental"] = sec
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(into, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("merged incremental section (%.2fx delta speedup) into %s\n", fullWall/deltaWall, into)
	return nil
}

// mergeStream builds the "distributed_stream" section from two
// streaming-coordinator snapshots of the same corpus: a cold run and a
// warm run whose fpcache was seeded by the cold run's shipped sidecars
// (and whose flow-constraint cache was persisted between them). The
// headline numbers are the warm/cold wall ratio, the peak decoded
// footprint against the total artifact volume (streaming holds one
// slice, not the corpus), and the flow-cache hit rate.
func mergeStream(into, coldPath, warmPath string, shards int) error {
	if coldPath == "" || warmPath == "" {
		return fmt.Errorf("stream mode needs both -stream-cold and -stream-warm")
	}
	cold, err := readSnapshot(coldPath)
	if err != nil {
		return err
	}
	warm, err := readSnapshot(warmPath)
	if err != nil {
		return err
	}
	coldWall := cold.Gauges[obs.GaugePipelineWall]
	warmWall := warm.Gauges[obs.GaugePipelineWall]
	if coldWall <= 0 || warmWall <= 0 {
		return fmt.Errorf("snapshots lack the %s gauge (need seldon runs with -metrics-json)", obs.GaugePipelineWall)
	}
	peak := warm.Gauges[obs.GaugeShardMergePeakBytes]
	total := warm.Gauges[obs.GaugeShardBytes]
	hits := warm.Counters[obs.CounterFlowCacheHits]
	misses := warm.Counters[obs.CounterFlowCacheMisses]
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	sec := map[string]any{
		"shards":             shards,
		"cold_wall_s":        coldWall,
		"warm_wall_s":        warmWall,
		"warm_speedup":       coldWall / warmWall,
		"exec_s":             warm.Timers[obs.StageShardExec].Sum,
		"merge_s":            warm.Timers[obs.TimerShardMerge].Sum,
		"stream_s":           warm.Timers[obs.StageShardStream].Sum,
		"artifact_bytes":     total,
		"peak_bytes":         peak,
		"peak_fraction":      safeDiv(peak, total),
		"stream_bytes":       warm.Counters[obs.CounterShardStreamBytes],
		"flowcache_hits":     hits,
		"flowcache_misses":   misses,
		"flowcache_hit_rate": hitRate,
	}

	data, err := os.ReadFile(into)
	if err != nil {
		return err
	}
	doc := map[string]any{}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: %w", into, err)
	}
	doc["distributed_stream"] = sec
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(into, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("merged distributed_stream section (%d shards, %.2fx warm, peak %.0f%% of artifacts, %.0f%% flowcache hits) into %s\n",
		shards, coldWall/warmWall, 100*safeDiv(peak, total), 100*hitRate, into)
	return nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// checkStreamed asserts a coordinator snapshot proves pipelined
// ingestion: the peak decoded footprint must be positive and strictly
// below the total artifact volume. A whole-set buffering regression
// makes peak == total; a missing gauge makes it 0. Either exits 1.
func checkStreamed(path string) error {
	snap, err := readSnapshot(path)
	if err != nil {
		return err
	}
	peak := snap.Gauges[obs.GaugeShardMergePeakBytes]
	total := snap.Gauges[obs.GaugeShardBytes]
	if peak <= 0 || total <= 0 || peak >= total {
		return fmt.Errorf("%s: %s=%.0f vs %s=%.0f — coordinator did not stream (want 0 < peak < total)",
			path, obs.GaugeShardMergePeakBytes, peak, obs.GaugeShardBytes, total)
	}
	fmt.Printf("streamed: peak %.0f bytes of %.0f total (%.0f%%)\n", peak, total, 100*peak/total)
	return nil
}

func readSnapshot(path string) (*obs.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &snap, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
