// Command benchjson merges `go test -bench -benchmem` output into a
// metrics snapshot produced by -metrics-json, so one JSON file carries
// both the pipeline telemetry and the microbenchmark numbers. Each
// benchmark line becomes three gauges:
//
//	bench.<Name>.ns_op
//	bench.<Name>.b_op
//	bench.<Name>.allocs_op
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' ./... | benchjson -into BENCH.json
//
// Non-benchmark lines (pkg headers, PASS/ok) pass through to stderr so
// the run stays inspectable; the snapshot file is rewritten in place.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"seldon/internal/obs"
)

func main() {
	into := flag.String("into", "", "metrics snapshot file to merge benchmark gauges into")
	flag.Parse()
	if *into == "" {
		fatal(fmt.Errorf("need -into <snapshot.json>"))
	}

	data, err := os.ReadFile(*into)
	if err != nil {
		fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		fatal(fmt.Errorf("%s: %w", *into, err))
	}
	if snap.Gauges == nil {
		snap.Gauges = map[string]float64{}
	}

	merged := 0
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		name, values, ok := parseBenchLine(line)
		if !ok {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		for unit, v := range values {
			snap.Gauges["bench."+name+"."+unit] = v
		}
		merged++
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if merged == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}

	out, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*into, append(out, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("merged %d benchmarks into %s\n", merged, *into)
}

// parseBenchLine recognizes `BenchmarkName[-P] iters v unit v unit ...`
// and returns the bare name plus the snake_cased unit values.
func parseBenchLine(line string) (string, map[string]float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix go test appends when procs > 1.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	// Sub-benchmarks (Name/case) become dotted gauge segments.
	name = strings.ReplaceAll(name, "/", ".")
	values := map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		unit := strings.ReplaceAll(strings.ReplaceAll(fields[i+1], "/", "_"), "-", "_")
		values[unit] = v
	}
	if len(values) == 0 {
		return "", nil, false
	}
	return name, values, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
