GO ?= go

# bench-json snapshot name; parameterized so each PR's snapshot
# (BENCH_<pr>.json) doesn't overwrite the last.
BENCH ?= BENCH_6.json

.PHONY: build test vet race verify bench bench-json serve loadsmoke load

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-check the packages with concurrency-sensitive surfaces: the
# metrics registry, the sharded solver kernel, the parallel corpus
# front-end, the analysis cache, the HTTP service (worker pool,
# backpressure, drain, hot reload), the symbol interner, and the
# sharded constraint build.
race:
	$(GO) test -race ./internal/obs/... ./internal/lp/... ./internal/core/... ./internal/fpcache/... ./internal/service/... ./internal/propgraph/... ./internal/constraints/...

# verify = tier-1 (build + full tests) plus vet, the race checks, and
# the end-to-end load smoke (real seldond + seldonload over loopback).
verify: vet race build test loadsmoke
	@echo "verify OK"

# loadsmoke boots the service in-process on a free port, drives two
# seconds of closed-loop load through /v1/check, and fails on any
# 5xx/transport error or an empty /debug/traces ring — the cheapest
# end-to-end check that serving, tracing, and exposition all work.
loadsmoke:
	$(GO) run ./cmd/seldon -generate 60 -o .smokespecs.json >/dev/null && \
	$(GO) run ./cmd/seldonload -specs .smokespecs.json -duration 2s -warmup 200ms -c 4 -smoke; \
	st=$$?; rm -f .smokespecs.json; exit $$st

# load runs a longer self-served closed-loop measurement and prints the
# latency percentiles (see also: seldonload -rps for open-loop SLO runs
# against an already-running seldond).
load: specs.json
	$(GO) run ./cmd/seldonload -specs specs.json -duration 10s -warmup 1s -c 8

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# bench-json captures a metrics snapshot (stage-timer p50s, worker gauge,
# cache.* counters and warm speedup, intern.* gauges) of a representative
# parallel run: a cold pass populates a throwaway analysis cache, then
# the warm pass — the one snapshotted — replays it with every file a hit.
# The interning/union microbenchmarks are merged into the same file as
# bench.* gauges (ns_op, B_op, allocs_op), and a self-served seldonload
# run adds a "load" section (serving p50/p95/p99 + throughput) so the
# snapshot carries the serving SLO trajectory alongside the learning one.
bench-json:
	rm -rf .benchcache && \
	$(GO) run ./cmd/seldon -generate 240 -workers 4 -cache-dir .benchcache -o .benchspecs.json >/dev/null && \
	$(GO) run ./cmd/seldon -generate 240 -workers 4 -cache-dir .benchcache -metrics-json $(BENCH) >/dev/null && \
	rm -rf .benchcache && \
	$(GO) test -run='^$$' -bench='BenchmarkConstraintsBuild|BenchmarkUnion' -benchmem \
		./internal/constraints/ ./internal/propgraph/ | $(GO) run ./cmd/benchjson -into $(BENCH) && \
	$(GO) run ./cmd/seldonload -specs .benchspecs.json -duration 3s -warmup 500ms -c 4 -into $(BENCH) >/dev/null && \
	rm -f .benchspecs.json

# serve learns a spec store (if absent) and boots the taint service on
# :8647 — /v1/check, /v1/specs, /v1/healthz, /metrics, /debug/pprof/.
specs.json:
	$(GO) run ./cmd/seldon -generate 240 -o $@ >/dev/null

serve: specs.json
	$(GO) run ./cmd/seldond -specs specs.json -addr :8647 -v
