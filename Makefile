GO ?= go

.PHONY: build test vet race verify bench bench-json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-check the packages with concurrency-sensitive surfaces: the
# metrics registry, the sharded solver kernel, and the parallel corpus
# front-end.
race:
	$(GO) test -race ./internal/obs/... ./internal/lp/... ./internal/core/...

# verify = tier-1 (build + full tests) plus vet and the race checks.
verify: vet race build test
	@echo "verify OK"

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# bench-json captures a metrics snapshot (stage-timer p50s, worker gauge,
# front-end speedup) of a representative parallel run.
bench-json:
	$(GO) run ./cmd/seldon -generate 240 -workers 4 -metrics-json BENCH_2.json >/dev/null
