GO ?= go

# bench-json snapshot name; parameterized so each PR's snapshot
# (BENCH_<pr>.json) doesn't overwrite the last.
BENCH ?= BENCH_5.json

.PHONY: build test vet race verify bench bench-json serve

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-check the packages with concurrency-sensitive surfaces: the
# metrics registry, the sharded solver kernel, the parallel corpus
# front-end, the analysis cache, the HTTP service (worker pool,
# backpressure, drain, hot reload), the symbol interner, and the
# sharded constraint build.
race:
	$(GO) test -race ./internal/obs/... ./internal/lp/... ./internal/core/... ./internal/fpcache/... ./internal/service/... ./internal/propgraph/... ./internal/constraints/...

# verify = tier-1 (build + full tests) plus vet and the race checks.
verify: vet race build test
	@echo "verify OK"

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# bench-json captures a metrics snapshot (stage-timer p50s, worker gauge,
# cache.* counters and warm speedup, intern.* gauges) of a representative
# parallel run: a cold pass populates a throwaway analysis cache, then
# the warm pass — the one snapshotted — replays it with every file a hit.
# The interning/union microbenchmarks are then merged into the same file
# as bench.* gauges (ns_op, B_op, allocs_op).
bench-json:
	rm -rf .benchcache && \
	$(GO) run ./cmd/seldon -generate 240 -workers 4 -cache-dir .benchcache >/dev/null && \
	$(GO) run ./cmd/seldon -generate 240 -workers 4 -cache-dir .benchcache -metrics-json $(BENCH) >/dev/null && \
	rm -rf .benchcache && \
	$(GO) test -run='^$$' -bench='BenchmarkConstraintsBuild|BenchmarkUnion' -benchmem \
		./internal/constraints/ ./internal/propgraph/ | $(GO) run ./cmd/benchjson -into $(BENCH)

# serve learns a spec store (if absent) and boots the taint service on
# :8647 — /v1/check, /v1/specs, /v1/healthz, /metrics, /debug/pprof/.
specs.json:
	$(GO) run ./cmd/seldon -generate 240 -o $@ >/dev/null

serve: specs.json
	$(GO) run ./cmd/seldond -specs specs.json -addr :8647 -v
