GO ?= go

# bench-json snapshot name; parameterized so each PR's snapshot
# (BENCH_<pr>.json) doesn't overwrite the last.
BENCH ?= BENCH_10.json

.PHONY: build test vet race verify bench bench-json serve loadsmoke load shardsmoke feedbacksmoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-check the packages with concurrency-sensitive surfaces: the
# metrics registry, the sharded solver kernel, the parallel corpus
# front-end, the analysis cache, the HTTP service (worker pool,
# backpressure, drain, hot reload), the symbol interner, the sharded
# constraint build, and the shard worker/coordinator (subprocess
# fan-out, concurrent artifact decode).
race:
	$(GO) test -race ./internal/obs/... ./internal/lp/... ./internal/core/... ./internal/fpcache/... ./internal/service/... ./internal/propgraph/... ./internal/constraints/... ./internal/shard/...

# verify = tier-1 (build + full tests) plus vet, the race checks, the
# end-to-end load smoke (real seldond + seldonload over loopback), the
# distributed-learning smoke (real worker subprocesses + coordinator),
# and the continuous-learning smoke (feedback loop under -race).
verify: vet race build test loadsmoke shardsmoke feedbacksmoke
	@echo "verify OK"

# loadsmoke boots the service in-process on a free port, drives two
# seconds of closed-loop load through /v1/check, and fails on any
# 5xx/transport error or an empty /debug/traces ring — the cheapest
# end-to-end check that serving, tracing, and exposition all work.
# A second pass replays a duplicate-heavy mix (-dup 0.8) and must come
# back with zero 5xx AND a nonzero check-cache hit rate, so a broken
# cache key or invalidation fails CI, not just a slow run.
loadsmoke:
	$(GO) run ./cmd/seldon -generate 60 -o .smokespecs.json >/dev/null && \
	$(GO) run ./cmd/seldonload -specs .smokespecs.json -duration 2s -warmup 200ms -c 4 -smoke && \
	$(GO) run ./cmd/seldonload -specs .smokespecs.json -duration 2s -warmup 200ms -c 4 -dup 0.8 -smoke; \
	st=$$?; rm -f .smokespecs.json; exit $$st

# shardsmoke is the distributed-learning determinism oracle, end to end
# over real processes: generate a corpus on disk, analyze it as three
# seldon-shard worker processes writing wire-format artifacts, coordinate
# them (seldon -shards-in), and require the resulting spec store to be
# byte-identical (cmp) to a single-process run on the same corpus. A
# second pass exercises the subprocess executor (-exec-shards) the same
# way. A third pass exercises the full streaming stack — 3 workers over
# stdout pipes with fpcache sidecars (-ship-cache), coordinator-side
# sidecar ingest (-cache-dir), a persisted flow-constraint cache
# (-flowcache), and an incremental constraint build — asserting via
# benchjson -check-stream that the decoded peak stayed strictly below
# the total artifact volume (the coordinator streamed, it didn't
# buffer), and via cmp that the store still matches single-process.
# Any drift in slicing, the codec, symbol translation, or the merge
# fails loudly here before it can skew a real corpus.
shardsmoke:
	rm -rf .shardsmoke && mkdir -p .shardsmoke && \
	$(GO) build -o .shardsmoke/seldon ./cmd/seldon && \
	$(GO) build -o .shardsmoke/seldon-shard ./cmd/seldon-shard && \
	$(GO) run ./cmd/corpusgen -out .shardsmoke/corpus -files 60 >/dev/null && \
	./.shardsmoke/seldon -dir .shardsmoke/corpus -seedfile .shardsmoke/corpus/seed.spec -o .shardsmoke/single.json >/dev/null && \
	./.shardsmoke/seldon-shard -dir .shardsmoke/corpus -slices 3 -slice 0 -o .shardsmoke/p0.shard 2>/dev/null && \
	./.shardsmoke/seldon-shard -dir .shardsmoke/corpus -slices 3 -slice 1 -o .shardsmoke/p1.shard 2>/dev/null && \
	./.shardsmoke/seldon-shard -dir .shardsmoke/corpus -slices 3 -slice 2 -o .shardsmoke/p2.shard 2>/dev/null && \
	./.shardsmoke/seldon -shards-in '.shardsmoke/p*.shard' -seedfile .shardsmoke/corpus/seed.spec -o .shardsmoke/dist.json >/dev/null && \
	cmp .shardsmoke/single.json .shardsmoke/dist.json && \
	./.shardsmoke/seldon -generate 60 -o .shardsmoke/gen_single.json >/dev/null && \
	./.shardsmoke/seldon -generate 60 -exec-shards 3 -shard-bin ./.shardsmoke/seldon-shard -o .shardsmoke/exec.json >/dev/null 2>&1 && \
	cmp .shardsmoke/gen_single.json .shardsmoke/exec.json && \
	./.shardsmoke/seldon -generate 60 -exec-shards 3 -shard-bin ./.shardsmoke/seldon-shard \
		-ship-cache -cache-dir .shardsmoke/fpc -flowcache .shardsmoke/flow.bin \
		-metrics-json .shardsmoke/coord.json -o .shardsmoke/stream.json >/dev/null 2>&1 && \
	$(GO) run ./cmd/benchjson -check-stream .shardsmoke/coord.json && \
	cmp .shardsmoke/gen_single.json .shardsmoke/stream.json && \
	echo "shardsmoke OK: coordinator stores byte-identical to single-process"; \
	st=$$?; rm -rf .shardsmoke; exit $$st

# feedbacksmoke drives the continuous-learning loop end to end under
# the race detector: learn a store inside an incremental session, serve
# it, report a finding over a learned entry, warm the check cache with
# an identical request, reject the finding via POST /v1/feedback
# (asserting a new store generation, a fully span-reused warm re-solve,
# and that the previously-cached check no longer reports the flow),
# then accept the same symbol and assert the finding returns. A stale
# cache entry, missing pin, or stuck generation fails CI here.
feedbacksmoke:
	$(GO) run -race ./cmd/feedbacksmoke

# load runs a longer self-served closed-loop measurement and prints the
# latency percentiles (see also: seldonload -rps for open-loop SLO runs
# against an already-running seldond).
load: specs.json
	$(GO) run ./cmd/seldonload -specs specs.json -duration 10s -warmup 1s -c 8

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# bench-json captures a metrics snapshot (stage-timer p50s, worker gauge,
# cache.* counters and warm speedup, intern.* gauges) of a representative
# parallel run: a cold pass populates a throwaway analysis cache, then
# the warm pass — the one snapshotted — replays it with every file a hit.
# The interning/union/check-handler microbenchmarks are merged into the
# same file as bench.* gauges (ns_op, B_op, allocs_op), and self-served
# seldonload runs add three load sections: "load" (cycled corpus,
# cache-assisted), "load_dup" (duplicate-heavy -dup 0.8 mix, the shape
# the check cache and coalescing exist for), and "load_dup_cold" (the
# same mix with the cache disabled) — so the snapshot itself carries the
# cache-on/cache-off comparison. Finally a "distributed" section compares
# the same 2400-file corpus learned single-process vs. fanned out to 4
# local seldon-shard subprocesses (wall times, speedup, merge/exec cost,
# artifact bytes). The speedup is hardware-relative — on a single-core
# box the fan-out can only lose; the numbers that must stay small
# regardless are merge_s and exec overhead beyond the slowest worker.
# The section merges must stay after the typed benchjson rewrite, which
# drops foreign sections. Last, an "incremental" section compares a
# from-scratch re-learn of a mutated on-disk corpus against a
# persistent-session re-learn (seldon -session-dir) of the same corpus:
# full vs delta wall (the delta run re-analyzes one changed file out of
# 240), span/constraint reuse, and warm vs cold solver epochs. The
# invariant worth watching is delta_wall_s staying a small fraction of
# full_wall_s — that ratio is the whole point of internal/incr. A
# "distributed_stream" section then runs the same 2400-file fan-out
# twice through the streaming coordinator with warmth shipping on
# (-ship-cache sidecars into a shared fpcache, -flowcache persisted
# between runs): the cold pass seeds both caches, the warm pass is the
# snapshot — its flowcache_hit_rate must be nonzero and peak_bytes must
# sit well below artifact_bytes (the coordinator held one slice, not
# the corpus).
bench-json:
	rm -rf .benchcache && \
	$(GO) run ./cmd/seldon -generate 240 -workers 4 -cache-dir .benchcache -o .benchspecs.json >/dev/null && \
	$(GO) run ./cmd/seldon -generate 240 -workers 4 -cache-dir .benchcache -metrics-json $(BENCH) >/dev/null && \
	rm -rf .benchcache && \
	$(GO) test -run='^$$' -bench='BenchmarkConstraintsBuild|BenchmarkUnion|BenchmarkCheckHandler' -benchmem \
		./internal/constraints/ ./internal/propgraph/ ./internal/service/ | $(GO) run ./cmd/benchjson -into $(BENCH) && \
	$(GO) run ./cmd/seldonload -specs .benchspecs.json -duration 3s -warmup 500ms -c 4 -into $(BENCH) >/dev/null && \
	$(GO) run ./cmd/seldonload -specs .benchspecs.json -duration 3s -warmup 500ms -c 8 -dup 0.8 \
		-section load_dup -into $(BENCH) >/dev/null && \
	$(GO) run ./cmd/seldonload -specs .benchspecs.json -duration 3s -warmup 500ms -c 8 -dup 0.8 \
		-check-cache-entries 0 -section load_dup_cold -into $(BENCH) >/dev/null && \
	$(GO) build -o .shardbin/seldon-shard ./cmd/seldon-shard && \
	$(GO) run ./cmd/seldon -generate 2400 -metrics-json .dist_single.json >/dev/null && \
	$(GO) run ./cmd/seldon -generate 2400 -exec-shards 4 -shard-bin ./.shardbin/seldon-shard \
		-metrics-json .dist_shards.json >/dev/null 2>&1 && \
	$(GO) run ./cmd/benchjson -dist-single .dist_single.json -dist-shards .dist_shards.json \
		-shards 4 -into $(BENCH) && \
	rm -rf .incrcorpus .incrsession && \
	$(GO) run ./cmd/corpusgen -out .incrcorpus -files 240 >/dev/null && \
	$(GO) run ./cmd/seldon -dir .incrcorpus -seedfile .incrcorpus/seed.spec \
		-session-dir .incrsession >/dev/null && \
	f=$$(ls .incrcorpus/proj000/*.py | head -n1) && \
	printf '\ndef bench_probe(q):\n    y = q.fetch()\n' >> $$f && \
	$(GO) run ./cmd/seldon -dir .incrcorpus -seedfile .incrcorpus/seed.spec \
		-session-dir .incrsession -metrics-json .incr_delta.json >/dev/null && \
	$(GO) run ./cmd/seldon -dir .incrcorpus -seedfile .incrcorpus/seed.spec \
		-metrics-json .incr_full.json >/dev/null && \
	$(GO) run ./cmd/benchjson -incr-full .incr_full.json -incr-delta .incr_delta.json -into $(BENCH) && \
	rm -rf .streamfpc .streamflow.bin && \
	$(GO) run ./cmd/seldon -generate 2400 -exec-shards 4 -shard-bin ./.shardbin/seldon-shard \
		-ship-cache -cache-dir .streamfpc -flowcache .streamflow.bin \
		-metrics-json .stream_cold.json >/dev/null 2>&1 && \
	$(GO) run ./cmd/seldon -generate 2400 -exec-shards 4 -shard-bin ./.shardbin/seldon-shard \
		-ship-cache -cache-dir .streamfpc -flowcache .streamflow.bin \
		-metrics-json .stream_warm.json >/dev/null 2>&1 && \
	$(GO) run ./cmd/benchjson -stream-cold .stream_cold.json -stream-warm .stream_warm.json \
		-shards 4 -into $(BENCH) && \
	rm -rf .benchspecs.json .shardbin .dist_single.json .dist_shards.json \
		.incrcorpus .incrsession .incr_full.json .incr_delta.json \
		.streamfpc .streamflow.bin .stream_cold.json .stream_warm.json

# serve learns a spec store (if absent) and boots the taint service on
# :8647 — /v1/check, /v1/specs, /v1/healthz, /metrics, /debug/pprof/.
specs.json:
	$(GO) run ./cmd/seldon -generate 240 -o $@ >/dev/null

serve: specs.json
	$(GO) run ./cmd/seldond -specs specs.json -addr :8647 -v
