GO ?= go

.PHONY: build test vet race verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-check the packages with concurrency-sensitive surfaces: the
# metrics registry and the solver telemetry hook.
race:
	$(GO) test -race ./internal/obs/... ./internal/lp/...

# verify = tier-1 (build + full tests) plus vet and the race checks.
verify: vet race build test
	@echo "verify OK"

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...
