// Webaudit: audit a small multi-file Flask application with the paper's
// App. B seed specification — the push-button scenario from the paper's
// introduction. The app contains an SQL injection, a cross-site scripting
// flaw, and a path traversal; one handler is properly sanitized.
package main

import (
	"fmt"
	"sort"

	"seldon/internal/dataflow"
	"seldon/internal/propgraph"
	"seldon/internal/spec"
	"seldon/internal/taint"
)

var app = map[string]string{
	"blog/views.py": `from flask import request, Response, render_template
import MySQLdb

@app.route('/search')
def search():
    term = request.args.get('q')
    conn = MySQLdb.connect()
    cur = conn.cursor()
    cur.execute("SELECT * FROM posts WHERE title LIKE '" + term + "'")
    return render_template('results.html', rows=cur)

@app.route('/greet')
def greet():
    name = request.args.get('name')
    return Response('<h1>Hello ' + name + '</h1>')
`,
	"blog/media.py": `from flask import request, send_file
from werkzeug.utils import secure_filename
import os

@app.route('/download')
def download():
    name = request.args.get('file')
    return send_file(os.path.join('/srv/blog', name))

@app.route('/upload', methods=['POST'])
def upload():
    name = request.files['f'].filename
    name = secure_filename(name)
    request.files['f'].save(os.path.join('/srv/blog', name))
    return 'ok'
`,
	"blog/admin.py": `from flask import request, redirect

@app.route('/login')
def login():
    nxt = request.args.get('next')
    return redirect(nxt)
`,
}

func main() {
	seed := spec.Seed()
	// The App. B seed pins fully qualified names; our handlers read
	// request.files['f'], so add the upload source/sink like a project
	// would extend the seed.
	seed.Add(propgraph.Source, "flask.request.files['f'].filename")
	seed.Add(propgraph.Sink, "flask.request.files['f'].save()")
	seed.Add(propgraph.Sanitizer, "werkzeug.utils.secure_filename()")

	names := make([]string, 0, len(app))
	for n := range app {
		names = append(names, n)
	}
	sort.Strings(names)
	var graphs []*propgraph.Graph
	for _, n := range names {
		g, err := dataflow.AnalyzeSource(n, app[n])
		if err != nil {
			panic(err)
		}
		graphs = append(graphs, g)
	}

	reports := taint.Analyze(propgraph.Union(graphs...), seed)
	fmt.Printf("audited %d files with the App. B seed specification\n\n", len(app))
	for i := range reports {
		r := &reports[i]
		fmt.Printf("[%d] %-18s %s:%s\n     %s\n  -> %s\n",
			i+1, r.Category, r.File, r.SourcePos, r.SourceRep, r.SinkRep)
	}
	s := taint.Summarize(reports)
	fmt.Printf("\n%d findings in %d files — the sanitized /upload handler is clean.\n",
		s.Total, s.Files)
}
