// Merlincompare: run Seldon and the Merlin baseline on the same
// application and compare predictions, factor counts, and timing — the
// §7.4 head-to-head, on one generated project.
package main

import (
	"fmt"
	"sort"

	"seldon/internal/core"
	"seldon/internal/corpus"
	"seldon/internal/dataflow"
	"seldon/internal/merlin"
	"seldon/internal/propgraph"
)

func main() {
	c := corpus.Generate(corpus.Config{Files: 48, Seed: 3})
	seed := corpus.ExperimentSeed()
	project := c.Projects()[0]
	files := c.ProjectFiles(project)
	fmt.Printf("application: project %s (%d files)\n\n", project, len(files))

	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	var graphs []*propgraph.Graph
	for _, n := range names {
		g, err := dataflow.AnalyzeSource(n, files[n])
		if err != nil {
			panic(err)
		}
		graphs = append(graphs, g)
	}
	g := propgraph.Union(graphs...)

	// Seldon.
	cfg := core.Config{}
	cfg.Constraints.BackoffCutoff = 2
	seldonRes := core.Learn(g, seed, cfg)
	fmt.Printf("Seldon:  %4d constraints, %3d variables, solved in %8s, %d predictions\n",
		len(seldonRes.System.Problem.Constraints), len(seldonRes.System.Vars),
		seldonRes.InferenceTime.Round(1e6), len(seldonRes.Predictions))

	// Merlin, on both graph granularities (§6.4).
	for _, collapsed := range []bool{false, true} {
		mg := g
		label := "uncollapsed"
		if collapsed {
			mg = g.Collapse()
			label = "collapsed"
		}
		res, err := merlin.Infer(mg, seed, merlin.Options{})
		if err != nil {
			fmt.Printf("Merlin (%s): %v\n", label, err)
			continue
		}
		fmt.Printf("Merlin (%s): %5d factors, inference in %8s, %d predictions at 95%%\n",
			label, res.NumFactors, res.InferenceTime.Round(1e6), len(res.Predict(0.95)))
	}

	// Compare the top sanitizer of both systems.
	fmt.Println("\ntop Seldon sanitizers:")
	n := 0
	for _, e := range seldonRes.LearnedEntries(seed) {
		if e.Role == propgraph.Sanitizer && n < 5 {
			n++
			fmt.Printf("  %.3f %s\n", e.Score, e.Rep)
		}
	}
	mres, err := merlin.Infer(g, seed, merlin.Options{})
	if err == nil {
		fmt.Println("top Merlin sanitizers:")
		for _, p := range mres.TopK(propgraph.Sanitizer, 5) {
			fmt.Printf("  %.3f %s\n", p.Marginal, p.Rep)
		}
	}
}
