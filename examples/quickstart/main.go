// Quickstart: the five-minute tour of the library on the paper's Fig. 2
// example — parse a Flask snippet, build its propagation graph, run the
// taint analyzer with a seed specification, and learn a new sanitizer
// role from a small corpus.
package main

import (
	"fmt"

	"seldon/internal/core"
	"seldon/internal/dataflow"
	"seldon/internal/propgraph"
	"seldon/internal/spec"
	"seldon/internal/taint"
)

// The paper's Fig. 2a snippet, with the sanitizer call removed so the
// taint analyzer has something to find.
const vulnerable = `from flask import request
import os

@app.route('/media/', methods=['POST'])
def media():
    filename = request.files['f'].filename
    path = os.path.join('/srv/media', filename)
    request.files['f'].save(path)
`

const sanitized = `from flask import request
from werkzeug import secure_filename
import os

@app.route('/media/', methods=['POST'])
def media():
    filename = request.files['f'].filename
    filename = secure_filename(filename)
    path = os.path.join('/srv/media', filename)
    request.files['f'].save(path)
`

func main() {
	// 1. Build the propagation graph of the vulnerable snippet.
	graph, err := dataflow.AnalyzeSource("media.py", vulnerable)
	if err != nil {
		panic(err)
	}
	fmt.Println("== propagation graph ==")
	for _, e := range graph.Events {
		if e.NumReps() > 0 {
			fmt.Printf("  event %d (%s): %s\n", e.ID, e.Kind, e.Rep(0))
		}
	}
	fmt.Printf("  %d events, %d flow edges\n\n", len(graph.Events), graph.NumEdges())

	// 2. Run the taint analyzer with a hand-written specification.
	sp := spec.New()
	sp.Add(propgraph.Source, "flask.request.files['f'].filename")
	sp.Add(propgraph.Sanitizer, "werkzeug.secure_filename()")
	sp.Add(propgraph.Sink, "flask.request.files['f'].save()")

	fmt.Println("== taint analysis (vulnerable version) ==")
	for _, r := range taint.Analyze(graph, sp) {
		fmt.Printf("  %s\n", r.String())
	}

	safe, _ := dataflow.AnalyzeSource("media.py", sanitized)
	fmt.Println("\n== taint analysis (sanitized version) ==")
	reports := taint.Analyze(safe, sp)
	fmt.Printf("  %d reports (secure_filename cuts the path)\n", len(reports))

	// 3. Learn the sanitizer role instead of hand-writing it: a corpus in
	// which the unlabeled secure_filename always sits between a seeded
	// source and a seeded sink.
	files := map[string]string{}
	for i := 0; i < 6; i++ {
		files[fmt.Sprintf("app%d.py", i)] = sanitized
	}
	seed := spec.New()
	seed.Add(propgraph.Source, "flask.request.files['f'].filename")
	seed.Add(propgraph.Source, "request.files['f'].filename")
	seed.Add(propgraph.Source, "files['f'].filename")
	seed.Add(propgraph.Sink, "flask.request.files['f'].save()")
	seed.Add(propgraph.Sink, "request.files['f'].save()")
	seed.Add(propgraph.Sink, "files['f'].save()")

	cfg := core.Config{}
	cfg.Constraints.BackoffCutoff = 2
	res := core.LearnFromSources(files, seed, cfg)

	fmt.Println("\n== learned specifications ==")
	for _, e := range res.LearnedEntries(seed) {
		fmt.Printf("  %-10s %-35s score %.2f\n", e.Role, e.Rep, e.Score)
	}
}
