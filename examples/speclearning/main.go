// Speclearning: learn taint specifications from a generated "big code"
// corpus (the Tables 8-10 scenario) — generate 400 web-application files,
// learn from the seed specification, and print the top inferred sources,
// sanitizers, and sinks with their scores and ground-truth verdicts.
package main

import (
	"fmt"

	"seldon/internal/core"
	"seldon/internal/corpus"
	"seldon/internal/eval"
	"seldon/internal/propgraph"
)

func main() {
	c := corpus.Generate(corpus.Config{Files: 400, Seed: 1})
	seed := corpus.ExperimentSeed()
	fmt.Printf("corpus: %d files, %d ground-truth flows, seed spec with %d entries\n",
		len(c.Files), len(c.Flows), seed.Len())

	res := core.LearnFromSources(c.FileMap(), seed, core.Config{})
	st := res.Graph.ComputeStats()
	fmt.Printf("global graph: %d events, %d edges; %d constraints solved in %s\n\n",
		st.Events, st.Edges, len(res.System.Problem.Constraints),
		res.InferenceTime.Round(1e6))

	entries := res.LearnedEntries(seed)
	for _, role := range propgraph.Roles() {
		fmt.Printf("top inferred %ss:\n", role)
		n := 0
		for _, e := range entries {
			if e.Role != role || n >= 10 {
				continue
			}
			n++
			verdict := " "
			if c.Truth.HasRole(e.Rep, role) {
				verdict = "+"
			}
			fmt.Printf("  %s %.3f  %s\n", verdict, e.Score, e.Rep)
		}
		fmt.Println()
	}

	pr := eval.SamplePrecision(entries, c.Truth, 50, 1)
	for _, role := range propgraph.Roles() {
		p := pr.PerRole[role]
		fmt.Printf("%-10s predicted %4d, sampled %2d, precision %.0f%%\n",
			role, p.Predicted, p.Sampled, 100*p.Precision())
	}
	fmt.Printf("overall precision: %.0f%% (paper: 67%%)\n", 100*pr.Overall().Precision())
}
