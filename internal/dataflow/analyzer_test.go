package dataflow

import (
	"strings"
	"testing"
	"testing/quick"

	"seldon/internal/propgraph"
)

// analyze builds the propagation graph for src, failing the test on parse
// errors.
func analyze(t *testing.T, src string) *propgraph.Graph {
	t.Helper()
	g, err := AnalyzeSource("test.py", src)
	if err != nil {
		t.Fatalf("AnalyzeSource: %v", err)
	}
	return g
}

// findEvent returns the first event having rep among its representations.
func findEvent(g *propgraph.Graph, rep string) *propgraph.Event {
	for _, e := range g.Events {
		for _, r := range e.Reps() {
			if r == rep {
				return e
			}
		}
	}
	return nil
}

// flowsTo reports whether information can flow from any event with rep a
// to any event with rep b (the same API may occur at several locations).
func flowsTo(t *testing.T, g *propgraph.Graph, a, b string) bool {
	t.Helper()
	var as, bs []int
	for _, e := range g.Events {
		for _, r := range e.Reps() {
			if r == a {
				as = append(as, e.ID)
			}
			if r == b {
				bs = append(bs, e.ID)
			}
		}
	}
	if len(as) == 0 {
		t.Fatalf("no event with rep %q", a)
	}
	if len(bs) == 0 {
		t.Fatalf("no event with rep %q", b)
	}
	targets := make(map[int]bool, len(bs))
	for _, id := range bs {
		targets[id] = true
	}
	for _, src := range as {
		for _, id := range g.ForwardReachable(src) {
			if targets[id] {
				return true
			}
		}
	}
	return false
}

const figure2 = `from yak.web import app
from flask import request
from werkzeug import secure_filename
import os

blog_dir = app.config['PATH']

@app.route('/media/', methods=['POST'])
def media():
    filename = request.files['f'].filename
    filename = secure_filename(filename)
    path = os.path.join(blog_dir, filename)
    if not os.path.exists(path):
        request.files['f'].save(path)
`

func TestFigure2Events(t *testing.T) {
	g := analyze(t, figure2)
	for _, rep := range []string{
		"flask.request.files['f']",
		"flask.request.files['f'].filename",
		"werkzeug.secure_filename()",
		"yak.web.app.config['PATH']",
		"os.path.join()",
		"os.path.exists()",
		"flask.request.files['f'].save()",
	} {
		if findEvent(g, rep) == nil {
			var have []string
			for _, e := range g.Events {
				if e.NumReps() > 0 {
					have = append(have, e.Rep(0))
				}
			}
			t.Errorf("missing event %q; have %v", rep, have)
		}
	}
	// No event for pure module paths like os.path or request.files.
	if ev := findEvent(g, "os.path"); ev != nil {
		t.Error("os.path should not be an event")
	}
	if ev := findEvent(g, "flask.request.files"); ev != nil {
		t.Error("request.files should not be an event")
	}
}

func TestFigure2Flows(t *testing.T) {
	g := analyze(t, figure2)
	cases := []struct {
		src, dst string
		want     bool
	}{
		{"flask.request.files['f']", "flask.request.files['f'].filename", true},
		{"flask.request.files['f'].filename", "werkzeug.secure_filename()", true},
		{"werkzeug.secure_filename()", "os.path.join()", true},
		{"os.path.join()", "os.path.exists()", true},
		{"os.path.join()", "flask.request.files['f'].save()", true},
		{"yak.web.app.config['PATH']", "os.path.join()", true},
		// The sanitized flow reaches the sink only through the sanitizer.
		{"flask.request.files['f'].filename", "flask.request.files['f'].save()", true},
		// No backwards flow.
		{"os.path.join()", "werkzeug.secure_filename()", false},
		{"flask.request.files['f'].save()", "flask.request.files['f']", false},
	}
	for _, c := range cases {
		if got := flowsTo(t, g, c.src, c.dst); got != c.want {
			t.Errorf("flow %q -> %q = %v, want %v", c.src, c.dst, got, c.want)
		}
	}
}

func TestEventKindsAndRoles(t *testing.T) {
	g := analyze(t, figure2)
	read := findEvent(g, "flask.request.files['f'].filename")
	if read.Kind != propgraph.KindRead || read.Roles != propgraph.SourceOnly {
		t.Errorf("read event: kind=%v roles=%b", read.Kind, read.Roles)
	}
	call := findEvent(g, "werkzeug.secure_filename()")
	if call.Kind != propgraph.KindCall || call.Roles != propgraph.AllRoles {
		t.Errorf("call event: kind=%v roles=%b", call.Kind, call.Roles)
	}
}

func TestBackoffRepsForImportedChain(t *testing.T) {
	g := analyze(t, "from flask import request\nx = request.form.get('q')\n")
	ev := findEvent(g, "flask.request.form.get()")
	if ev == nil {
		t.Fatal("missing call event")
	}
	want := []string{"flask.request.form.get()", "request.form.get()", "form.get()"}
	if ev.NumReps() != len(want) {
		t.Fatalf("reps = %v, want %v", ev.Reps(), want)
	}
	for i := range want {
		if ev.Rep(i) != want[i] {
			t.Errorf("rep[%d] = %q, want %q", i, ev.Rep(i), want[i])
		}
	}
}

func TestParamEventsCreated(t *testing.T) {
	g := analyze(t, "def media(f):\n    return f.save()\n")
	prm := findEvent(g, "media(param f)")
	if prm == nil {
		t.Fatal("missing param event")
	}
	if prm.Kind != propgraph.KindParam || !prm.Roles.Has(propgraph.Source) {
		t.Errorf("param event = %+v", prm)
	}
	// Method call rooted at the parameter carries both representations.
	save := findEvent(g, "media(param f).save()")
	if save == nil {
		t.Fatal("missing save call")
	}
	found := false
	for _, r := range save.Reps() {
		if r == "f.save()" {
			found = true
		}
	}
	if !found {
		t.Errorf("save reps = %v, want to include f.save()", save.Reps())
	}
	if !flowsTo(t, g, "media(param f)", "media(param f).save()") {
		t.Error("param must flow into method call on it")
	}
}

func TestSelfMethodReps(t *testing.T) {
	src := `from base_driver import ThreadDriver

class ESCPOSDriver(ThreadDriver):
    def status(self, eprint):
        self.receipt('<div>' + eprint + '</div>')
`
	g := analyze(t, src)
	ev := findEvent(g, "ESCPOSDriver::status(param self).receipt()")
	if ev == nil {
		t.Fatal("missing receipt call event")
	}
	want := []string{
		"ESCPOSDriver::status(param self).receipt()",
		"base_driver.ThreadDriver::status(param self).receipt()",
		"status(param self).receipt()",
		"self.receipt()",
	}
	if ev.NumReps() != len(want) {
		t.Fatalf("reps = %v", ev.Reps())
	}
	for i := range want {
		if ev.Rep(i) != want[i] {
			t.Errorf("rep[%d] = %q, want %q", i, ev.Rep(i), want[i])
		}
	}
	// No source-candidate event for the receiver itself.
	if findEvent(g, "ESCPOSDriver::status(param self)") != nil {
		t.Error("self must not get a param event")
	}
	// But eprint does.
	if findEvent(g, "ESCPOSDriver::status(param eprint)") == nil {
		t.Error("eprint param event missing")
	}
	// eprint flows into the receipt call through the string concatenation.
	if !flowsTo(t, g, "ESCPOSDriver::status(param eprint)", "ESCPOSDriver::status(param self).receipt()") {
		t.Error("eprint must flow into receipt()")
	}
}

func TestLocalFunctionLinking(t *testing.T) {
	src := `from flask import request

def sanitize(value):
    return scrub(value)

def handler():
    data = request.args.get('q')
    clean = sanitize(data)
    render(clean)
`
	g := analyze(t, src)
	// No call event for sanitize() itself: it is linked, not opaque.
	if findEvent(g, "sanitize()") != nil {
		t.Error("local call must not create an event")
	}
	// Flow goes through the parameter event and the callee body.
	if !flowsTo(t, g, "flask.request.args.get()", "sanitize(param value)") {
		t.Error("argument must flow into param event")
	}
	if !flowsTo(t, g, "flask.request.args.get()", "scrub()") {
		t.Error("argument must flow through callee body")
	}
	// The callee's return value must flow to the caller's use.
	if !flowsTo(t, g, "scrub()", "render()") {
		t.Error("return value must flow back to call site")
	}
}

func TestAliasingThroughAssignment(t *testing.T) {
	src := `from flask import request

def f():
    a = request.args.get('x')
    b = a
    sink(b)
`
	g := analyze(t, src)
	if !flowsTo(t, g, "flask.request.args.get()", "sink()") {
		t.Error("aliased value must flow to sink")
	}
}

func TestFieldSensitivity(t *testing.T) {
	src := `from flask import request

def f(obj):
    obj.data = request.args.get('x')
    sink(obj.data)
    other(obj.clean)
`
	g := analyze(t, src)
	if !flowsTo(t, g, "flask.request.args.get()", "sink()") {
		t.Error("field write/read must propagate")
	}
}

func TestContainerFlow(t *testing.T) {
	src := `from flask import request

def f():
    items = [request.args.get('x'), 'safe']
    sink(items)
    for it in items:
        use(it)
    d = {}
    d['k'] = request.args.get('y')
    store(d)
`
	g := analyze(t, src)
	if !flowsTo(t, g, "flask.request.args.get()", "sink()") {
		t.Error("list element must flow into call taking the list")
	}
	if !flowsTo(t, g, "flask.request.args.get()", "use()") {
		t.Error("iteration must propagate element taint")
	}
	if !flowsTo(t, g, "flask.request.args.get()", "store()") {
		t.Error("dict store must taint the dict")
	}
}

func TestBranchMerging(t *testing.T) {
	src := `from flask import request

def f(flag):
    if flag:
        x = request.args.get('a')
    else:
        x = 'constant'
    sink(x)
`
	g := analyze(t, src)
	if !flowsTo(t, g, "flask.request.args.get()", "sink()") {
		t.Error("taint from one branch must survive the join")
	}
}

func TestChainedCallReps(t *testing.T) {
	g := analyze(t, "import MySQLdb\ncur = MySQLdb.connect().cursor()\ncur.execute(q)\n")
	if findEvent(g, "MySQLdb.connect().cursor()") == nil {
		t.Error("chained call representation missing")
	}
	if findEvent(g, "MySQLdb.connect().cursor().execute()") == nil {
		t.Error("execute after chained calls missing")
	}
}

func TestLocalsBuiltin(t *testing.T) {
	src := `from flask import request

def f():
    q = request.args.get('x')
    ctx = locals()
    render(ctx)
`
	g := analyze(t, src)
	if !flowsTo(t, g, "flask.request.args.get()", "locals()") {
		t.Error("locals() must receive flow from local variables")
	}
	if !flowsTo(t, g, "flask.request.args.get()", "render()") {
		t.Error("locals() result must carry taint onward")
	}
}

func TestTupleUnpackingFlow(t *testing.T) {
	src := `from flask import request

def f():
    a, b = request.args.get('x'), 'safe'
    sink(a)
`
	g := analyze(t, src)
	if !flowsTo(t, g, "flask.request.args.get()", "sink()") {
		t.Error("tuple unpacking must propagate")
	}
}

func TestWithStatementFlow(t *testing.T) {
	src := `def f(path):
    with open(path) as fh:
        data = fh.read()
        process(data)
`
	g := analyze(t, src)
	if !flowsTo(t, g, "open()", "process()") {
		t.Error("with-statement binding must propagate")
	}
	if !flowsTo(t, g, "f(param path)", "open()") {
		t.Error("param must flow into open()")
	}
}

func TestLoopSingleIterationNoCycles(t *testing.T) {
	src := `def f(xs):
    acc = start()
    while cond():
        acc = step(acc)
    finish(acc)
`
	g := analyze(t, src)
	if !flowsTo(t, g, "start()", "step()") {
		t.Error("loop body must see pre-loop value")
	}
	if !flowsTo(t, g, "step()", "finish()") {
		t.Error("post-loop must see loop value")
	}
	if !flowsTo(t, g, "start()", "finish()") {
		t.Error("post-loop must see pre-loop value (zero iterations)")
	}
}

func TestImportAliasResolution(t *testing.T) {
	g := analyze(t, "import os.path as osp\nosp.join(a, b)\nimport numpy as np\nnp.array(x)\n")
	if findEvent(g, "os.path.join()") == nil {
		t.Error("aliased import not expanded")
	}
	if findEvent(g, "numpy.array()") == nil {
		t.Error("aliased module not expanded")
	}
}

func TestImportShadowedByAssignment(t *testing.T) {
	g := analyze(t, "from flask import request\ndef f():\n    request = make()\n    request.go()\n")
	// After reassignment, request is a plain local holding make()'s
	// result: the call event must chain through the defining expression
	// (Table 10's open().write() pattern), not through flask.
	if findEvent(g, "flask.request.go()") != nil {
		t.Error("shadowed import still treated as import")
	}
	if findEvent(g, "make().go()") == nil {
		t.Error("chained call event missing")
	}
}

func TestDecoratorsProduceEvents(t *testing.T) {
	g := analyze(t, "from yak.web import app\n@app.route('/x')\ndef f():\n    pass\n")
	if findEvent(g, "yak.web.app.route()") == nil {
		t.Error("decorator call event missing")
	}
}

func TestLambdaBodyAnalyzed(t *testing.T) {
	g := analyze(t, "from flask import request\ncb = lambda: sink(request.args.get('q'))\n")
	if !flowsTo(t, g, "flask.request.args.get()", "sink()") {
		t.Error("lambda body flows missing")
	}
}

func TestComprehensionFlow(t *testing.T) {
	src := `from flask import request

def f():
    rows = [clean(x) for x in request.args.get('q')]
    sink(rows)
`
	g := analyze(t, src)
	if !flowsTo(t, g, "flask.request.args.get()", "clean()") {
		t.Error("comprehension iterable must flow into element expr")
	}
	if !flowsTo(t, g, "clean()", "sink()") {
		t.Error("comprehension result must carry element taint")
	}
}

func TestTryExceptFlow(t *testing.T) {
	src := `def f():
    x = fetch()
    try:
        y = parse(x)
    except ValueError as e:
        y = fallback(e)
    sink(y)
`
	g := analyze(t, src)
	if !flowsTo(t, g, "parse()", "sink()") {
		t.Error("try-body value must reach join")
	}
	if !flowsTo(t, g, "fallback()", "sink()") {
		t.Error("handler value must reach join")
	}
}

func TestGraphIsAcyclic(t *testing.T) {
	g := analyze(t, figure2)
	// Kahn's algorithm must consume every vertex.
	indeg := make([]int, len(g.Events))
	for id := range g.Events {
		for _, s := range g.Succs(id) {
			indeg[s]++
		}
	}
	var queue []int
	for id, d := range indeg {
		if d == 0 {
			queue = append(queue, id)
		}
	}
	seen := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		seen++
		for _, s := range g.Succs(id) {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if seen != len(g.Events) {
		t.Errorf("propagation graph has a cycle: %d of %d events sorted", seen, len(g.Events))
	}
}

// Property: the analyzer must never panic and always produce a graph whose
// edges reference valid events, for arbitrary fragment soup.
func TestAnalyzerRobustness(t *testing.T) {
	frags := []string{
		"def f(x):\n", "    y = g(x)\n", "    return y\n", "x = d['k']\n",
		"class C(B):\n", "    def m(self):\n", "        self.n()\n",
		"import a.b\n", "from c import d\n", "for i in xs:\n    use(i)\n",
		"with open(p) as f:\n    f.read()\n", "try:\n    t()\nexcept:\n    pass\n",
		"l = [a for a in b]\n", "x += y\n", "del x\n", "lambda q: q\n",
	}
	f := func(picks []uint8) bool {
		var b strings.Builder
		for _, p := range picks {
			b.WriteString(frags[int(p)%len(frags)])
		}
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on:\n%s\n%v", b.String(), r)
			}
		}()
		g, _ := AnalyzeSource("fuzz.py", b.String())
		for id := range g.Events {
			for _, s := range g.Succs(id) {
				if s < 0 || s >= len(g.Events) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func TestStatsOnFigure2(t *testing.T) {
	g := analyze(t, figure2)
	st := g.ComputeStats()
	if st.Candidates == 0 || st.AvgBackoff < 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Events < 7 {
		t.Errorf("too few events: %+v", st)
	}
}

func TestLocalClassInstanceMethodLinking(t *testing.T) {
	src := `from flask import request

class Handler:
    def fetch(self):
        return request.args.get('q')

    def render(self, data):
        emit(data)

def serve():
    h = Handler()
    value = h.fetch()
    h.render(value)
`
	g := analyze(t, src)
	// Method calls on local instances are linked, not opaque events.
	if findEvent(g, "h.fetch()") != nil || findEvent(g, "fetch()") != nil {
		t.Error("linked method call created an event")
	}
	if !flowsTo(t, g, "flask.request.args.get()", "emit()") {
		t.Error("flow through instance methods missing")
	}
	// The argument flows into the method's parameter event.
	if !flowsTo(t, g, "flask.request.args.get()", "Handler::render(param data)") {
		t.Error("argument must reach the method's param event")
	}
}

func TestSelfStateFlowsAcrossMethods(t *testing.T) {
	src := `from flask import request

class Session:
    def load(self):
        self.token = request.cookies.get('t')

    def send(self):
        transmit(self.token)

def run():
    s = Session()
    s.load()
    s.send()
`
	g := analyze(t, src)
	if !flowsTo(t, g, "flask.request.cookies.get()", "transmit()") {
		t.Error("instance state must flow between methods")
	}
}

func TestConstructorArgumentsFlowIntoInit(t *testing.T) {
	src := `from flask import request

class Job:
    def __init__(self, payload):
        self.payload = payload

    def run(self):
        execute(self.payload)

def submit():
    j = Job(request.form.get('cmd'))
    j.run()
`
	g := analyze(t, src)
	if !flowsTo(t, g, "flask.request.form.get()", "Job::__init__(param payload)") {
		t.Error("constructor argument must reach __init__ param")
	}
	if !flowsTo(t, g, "flask.request.form.get()", "execute()") {
		t.Error("constructor argument must flow to method body sink")
	}
}
