// Package dataflow builds propagation graphs from Python ASTs (paper §5).
//
// The analyzer is a flow-sensitive abstract interpreter. Abstract values
// are sets of objects; each object remembers the event that created it and
// a field map (field-sensitive, Andersen-style: assignments join points-to
// sets, §5.2). Loops are analyzed as a single iteration, calls to unknown
// functions are allocation sites, and functions defined in the same file
// are linked through parameter/return summaries (the paper's inlining).
package dataflow

import "sort"

// elemKey is the pseudo-field holding container elements (lists, dicts,
// tuples, sets), giving the paper's "information flows from any entry to
// the whole list" behaviour plus read-back through iteration/indexing.
const elemKey = "*elem*"

// object is an abstract runtime value: an allocation site with fields.
// Instances of locally defined classes also remember their class, so
// method calls on them can be linked to the statically known bodies.
type object struct {
	event  int // ID of the event that produced it, or -1
	fields map[string][]*object
	class  *classDef // non-nil for instances of local classes
}

func newObject(event int) *object { return &object{event: event} }

func (o *object) field(name string) []*object { return o.fields[name] }

func (o *object) addField(name string, vals []*object) {
	if len(vals) == 0 {
		return
	}
	if o.fields == nil {
		o.fields = make(map[string][]*object)
	}
	o.fields[name] = unionObjects(o.fields[name], vals)
}

// unionObjects merges two object sets without duplicates, preserving order.
func unionObjects(a, b []*object) []*object {
	if len(b) == 0 {
		return a
	}
	seen := make(map[*object]bool, len(a))
	for _, o := range a {
		seen[o] = true
	}
	out := a
	for _, o := range b {
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	return out
}

// collectEvents gathers the events carried by objs: their own creating
// events plus events reachable through fields, to a bounded depth. This is
// what flows into an event when the objects are used as arguments.
func collectEvents(objs []*object, depth int) []int {
	seenObj := make(map[*object]bool)
	seenEv := make(map[int]bool)
	var out []int
	var walk func(os []*object, d int)
	walk = func(os []*object, d int) {
		for _, o := range os {
			if seenObj[o] {
				continue
			}
			seenObj[o] = true
			if o.event >= 0 && !seenEv[o.event] {
				seenEv[o.event] = true
				out = append(out, o.event)
			}
			if d > 0 {
				for _, name := range sortedFieldNames(o) {
					walk(o.fields[name], d-1)
				}
			}
		}
	}
	walk(objs, depth)
	return out
}

func sortedFieldNames(o *object) []string {
	if len(o.fields) == 0 {
		return nil
	}
	names := make([]string, 0, len(o.fields))
	for n := range o.fields {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// env maps local variable names to abstract values, and optionally to the
// symbolic path of their defining expression (so `cur = conn.cursor()`
// followed by `cur.execute(q)` yields the chained representation
// MySQLdb.connect().cursor().execute()). Environments are cloned at
// branches and merged (pointwise union; conflicting paths are dropped) at
// join points.
type env struct {
	vars  map[string][]*object
	paths map[string]*sympath
}

func newEnv() *env {
	return &env{vars: make(map[string][]*object), paths: make(map[string]*sympath)}
}

func (e *env) get(name string) []*object { return e.vars[name] }

func (e *env) set(name string, objs []*object) {
	e.vars[name] = objs
	delete(e.paths, name)
}

func (e *env) setWithPath(name string, objs []*object, p *sympath) {
	e.vars[name] = objs
	if p != nil {
		e.paths[name] = p
	} else {
		delete(e.paths, name)
	}
}

func (e *env) add(name string, objs []*object) {
	e.vars[name] = unionObjects(e.vars[name], objs)
	delete(e.paths, name)
}

func (e *env) delete(name string) {
	delete(e.vars, name)
	delete(e.paths, name)
}

func (e *env) clone() *env {
	c := newEnv()
	for k, v := range e.vars {
		c.vars[k] = append([]*object(nil), v...)
	}
	for k, p := range e.paths {
		c.paths[k] = p
	}
	return c
}

// merge joins another environment into e (pointwise union). A variable
// keeps its symbolic path only when both branches agree on it.
func (e *env) merge(other *env) {
	for k, v := range other.vars {
		e.vars[k] = unionObjects(e.vars[k], v)
	}
	for k := range e.paths {
		if other.paths[k] != e.paths[k] {
			delete(e.paths, k)
		}
	}
}

// allObjects returns every object bound in the environment, in
// deterministic (sorted variable name) order; used to model locals().
func (e *env) allObjects() []*object {
	names := make([]string, 0, len(e.vars))
	for n := range e.vars {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []*object
	for _, n := range names {
		out = unionObjects(out, e.vars[n])
	}
	return out
}
