package dataflow

import (
	"strings"

	"seldon/internal/propgraph"
	"seldon/internal/pyast"
	"seldon/internal/pytoken"
)

// eval abstractly evaluates an expression, returning the set of objects the
// value may be and a symbolic path describing how it was reached (nil for
// shapes representations cannot express).
func (a *analyzer) eval(fe *funcEnv, e pyast.Expr) ([]*object, *sympath) {
	switch x := e.(type) {
	case nil:
		return nil, nil
	case *pyast.Name:
		path := a.rootPath(fe, x.Ident)
		objs := fe.lookupVar(x.Ident)
		if len(objs) == 0 {
			objs = []*object{newObject(-1)}
		}
		return objs, path
	case *pyast.Num, *pyast.Str, *pyast.NameConst, *pyast.EllipsisLit:
		return []*object{newObject(-1)}, nil
	case *pyast.JoinedStr:
		// f-string: information flows from every interpolated expression
		// into the resulting string.
		var out []*object
		for _, v := range x.Values {
			o, _ := a.eval(fe, v)
			out = unionObjects(out, o)
		}
		if len(out) == 0 {
			out = []*object{newObject(-1)}
		}
		return out, nil

	case *pyast.Attribute:
		base, basePath := a.eval(fe, x.Value)
		return a.evalAttrLoad(fe, base, basePath, x.Attr, x.AttrPos)

	case *pyast.Subscript:
		base, basePath := a.eval(fe, x.Value)
		idxObjs, _ := a.eval(fe, x.Index)
		_ = idxObjs
		seg := subscriptSuffix(x.Index)
		path := a.extendLast(basePath, func(last string) string { return last + seg })
		return a.newReadEvent(fe, base, path, x.Pos(), elemKey)

	case *pyast.Call:
		return a.evalCall(fe, x)

	case *pyast.BinOp:
		l, _ := a.eval(fe, x.Left)
		r, _ := a.eval(fe, x.Right)
		return unionObjects(l, r), nil
	case *pyast.BoolOp:
		var out []*object
		for _, v := range x.Values {
			o, _ := a.eval(fe, v)
			out = unionObjects(out, o)
		}
		return out, nil
	case *pyast.UnaryOp:
		o, _ := a.eval(fe, x.Operand)
		return o, nil
	case *pyast.Compare:
		a.eval(fe, x.Left)
		for _, c := range x.Comparators {
			a.eval(fe, c)
		}
		return []*object{newObject(-1)}, nil
	case *pyast.IfExp:
		a.eval(fe, x.Cond)
		t, _ := a.eval(fe, x.Then)
		f, _ := a.eval(fe, x.Else)
		return unionObjects(t, f), nil

	case *pyast.Tuple:
		return a.container(fe, x.Elts), nil
	case *pyast.List:
		return a.container(fe, x.Elts), nil
	case *pyast.Set:
		return a.container(fe, x.Elts), nil
	case *pyast.Dict:
		o := newObject(-1)
		for i := range x.Keys {
			if x.Keys[i] != nil {
				k, _ := a.eval(fe, x.Keys[i])
				o.addField(elemKey, k)
			}
			v, _ := a.eval(fe, x.Values[i])
			o.addField(elemKey, v)
		}
		return []*object{o}, nil

	case *pyast.Comp:
		return a.evalComp(fe, x)
	case *pyast.Lambda:
		// Analyze the body for its own events, with parameters bound to
		// fresh opaque objects; the lambda value itself is opaque.
		sub := fe.env.clone()
		a.withEnv(fe, sub, func() {
			for _, p := range x.Params {
				fe.env.set(p.Name, []*object{newObject(-1)})
			}
			a.eval(fe, x.Body)
		})
		return []*object{newObject(-1)}, nil

	case *pyast.Starred:
		return a.eval(fe, x.Value)
	case *pyast.Await:
		return a.eval(fe, x.Value)
	case *pyast.Yield:
		if x.Value != nil {
			objs, _ := a.eval(fe, x.Value)
			if fe.cur != nil {
				fe.cur.returns = unionObjects(fe.cur.returns, objs)
			}
		}
		return []*object{newObject(-1)}, nil
	case *pyast.NamedExpr:
		objs, path := a.eval(fe, x.Value)
		a.assignTo(fe, x.Target, objs)
		return objs, path
	case *pyast.Slice:
		a.eval(fe, x.Lo)
		a.eval(fe, x.Hi)
		a.eval(fe, x.Step)
		return []*object{newObject(-1)}, nil
	}
	return []*object{newObject(-1)}, nil
}

// lookupVar resolves a variable through the scope chain.
func (fe *funcEnv) lookupVar(name string) []*object {
	for e := fe; e != nil; e = e.outer {
		if objs := e.env.get(name); len(objs) > 0 {
			return objs
		}
	}
	return nil
}

func (a *analyzer) container(fe *funcEnv, elts []pyast.Expr) []*object {
	o := newObject(-1)
	for _, el := range elts {
		v, _ := a.eval(fe, el)
		o.addField(elemKey, v)
	}
	return []*object{o}
}

func (a *analyzer) evalComp(fe *funcEnv, x *pyast.Comp) ([]*object, *sympath) {
	sub := fe.env.clone()
	o := newObject(-1)
	a.withEnv(fe, sub, func() {
		for _, c := range x.Clauses {
			iterObjs, _ := a.eval(fe, c.Iter)
			a.assignTo(fe, c.Target, elementsOf(iterObjs))
			for _, cond := range c.Ifs {
				a.eval(fe, cond)
			}
		}
		elt, _ := a.eval(fe, x.Elt)
		o.addField(elemKey, elt)
		if x.Value != nil {
			v, _ := a.eval(fe, x.Value)
			o.addField(elemKey, v)
		}
	})
	return []*object{o}, nil
}

// evalAttrLoad handles `base.attr` in load position. Attribute steps on a
// pure module path (e.g. os.path) extend the path without creating an
// event; all other loads are Read events — candidate sources (§5.1).
func (a *analyzer) evalAttrLoad(fe *funcEnv, base []*object, basePath *sympath, attr string, pos pytoken.Pos) ([]*object, *sympath) {
	path := a.extend(basePath, attr)
	if basePath != nil && basePath.pure {
		if path != nil {
			path.pure = true
		}
		return []*object{newObject(-1)}, path
	}
	return a.newReadEvent(fe, base, path, pos, attr)
}

// newReadEvent creates a Read event fed by the base objects and by the
// values previously stored under fieldName in those objects.
func (a *analyzer) newReadEvent(fe *funcEnv, base []*object, path *sympath, pos pytoken.Pos, fieldName string) ([]*object, *sympath) {
	ev := a.g.AddEvent(propgraph.KindRead, a.file, pos, path.reps())
	for _, src := range collectEvents(base, a.opts.FieldDepth) {
		a.g.AddEdge(src, ev.ID)
	}
	var stored []*object
	for _, o := range base {
		stored = unionObjects(stored, o.field(fieldName))
	}
	for _, src := range collectEvents(stored, a.opts.FieldDepth) {
		a.g.AddEdge(src, ev.ID)
	}
	result := []*object{newObject(ev.ID)}
	result = unionObjects(result, stored)
	return result, path
}

// subscriptSuffix renders the index of a subscript for a path segment:
// literal keys verbatim, anything dynamic as [] (§3.2 examples).
func subscriptSuffix(idx pyast.Expr) string {
	switch k := idx.(type) {
	case *pyast.Str:
		if len(k.Lit) <= 24 && !strings.ContainsAny(k.Lit, ".\n") {
			return "[" + k.Lit + "]"
		}
	case *pyast.Num:
		return "[" + k.Lit + "]"
	}
	return "[]"
}

// ---------------------------------------------------------------------------
// Calls

func (a *analyzer) evalCall(fe *funcEnv, call *pyast.Call) ([]*object, *sympath) {
	switch f := call.Func.(type) {
	case *pyast.Name:
		// locals() exposes every local variable (§5.2).
		if f.Ident == "locals" && len(call.Args) == 0 {
			ev := a.g.AddEvent(propgraph.KindCall, a.file, call.Pos(), []string{"locals()"})
			for _, src := range collectEvents(fe.env.allObjects(), a.opts.FieldDepth) {
				a.g.AddEdge(src, ev.ID)
			}
			return []*object{newObject(ev.ID)}, nil
		}
		// Call of a function defined in this file: link through its
		// summary instead of creating a call event (§5.2 inlining).
		if fd := fe.lookupFunc(f.Ident); fd != nil {
			return a.linkLocalCall(fe, fd, call, nil, false)
		}
		// Instantiation of a locally defined class: link the constructor
		// and return an instance that resolves later method calls.
		if cd := fe.lookupClass(f.Ident); cd != nil {
			inst := cd.receiver()
			if init, ok := cd.methods["__init__"]; ok {
				a.linkLocalCall(fe, init, call, []*object{inst}, true)
			} else {
				for _, arg := range call.Args {
					objs, _ := a.eval(fe, arg)
					inst.addField(elemKey, objs)
				}
				for _, kw := range call.Keywords {
					objs, _ := a.eval(fe, kw.Value)
					inst.addField(kw.Name, objs)
				}
			}
			return []*object{inst}, nil
		}
		path := a.rootPath(fe, f.Ident)
		callPath := a.extendLast(path, func(last string) string { return last + "()" })
		if callPath == nil && path != nil && path.param != "" {
			// Call of a bare parameter: representation is the param root
			// itself with call parens, e.g. f(param cb)... not expressible;
			// fall through with nil path.
			callPath = nil
		}
		return a.unknownCall(fe, call, nil, callPath)

	case *pyast.Attribute:
		base, basePath := a.eval(fe, f.Value)
		// self.method() to a method of the current class: summary link.
		if fe.curClass != nil {
			if nm, ok := f.Value.(*pyast.Name); ok && isReceiverName(nm.Ident) {
				if m, ok := fe.curClass.methods[f.Attr]; ok {
					return a.linkLocalCall(fe, m, call, base, true)
				}
			}
		}
		// Method call on an instance of a locally defined class: the
		// target is statically known (not subject to multiple dispatch),
		// so link it (§5.2 inlining).
		for _, o := range base {
			if o.class == nil {
				continue
			}
			if m, ok := o.class.methods[f.Attr]; ok {
				return a.linkLocalCall(fe, m, call, base, true)
			}
		}
		callPath := a.extend(basePath, f.Attr+"()")
		return a.unknownCall(fe, call, base, callPath)

	default:
		base, _ := a.eval(fe, call.Func)
		return a.unknownCall(fe, call, base, nil)
	}
}

// unknownCall creates a Call event; information flows from every argument
// and from the receiver into the event, and the event's value is returned
// (a call propagates information from arguments to its return value, §5.2).
func (a *analyzer) unknownCall(fe *funcEnv, call *pyast.Call, receiver []*object, path *sympath) ([]*object, *sympath) {
	ev := a.g.AddEvent(propgraph.KindCall, a.file, call.Pos(), path.reps())
	// Edges are labeled with the argument position the flow enters
	// through, enabling argument-sensitive sink specifications (§3.3's
	// future-work differentiation).
	feedArg := func(objs []*object, argPos int) {
		for _, src := range collectEvents(objs, a.opts.FieldDepth) {
			a.g.AddEdgeArg(src, ev.ID, argPos)
		}
	}
	feedAny := func(objs []*object) {
		for _, src := range collectEvents(objs, a.opts.FieldDepth) {
			a.g.AddEdge(src, ev.ID)
		}
	}
	feedArg(receiver, propgraph.ArgReceiver)
	// Arguments flow INTO the call event only; the result carries the
	// event itself, never the argument objects directly — otherwise flows
	// through sanitizing calls would bypass the sanitizer vertex.
	result := newObject(ev.ID)
	for i, arg := range call.Args {
		objs, _ := a.eval(fe, arg)
		if _, starred := arg.(*pyast.Starred); starred {
			// The landing position of *args is unknown: leave unlabeled.
			feedAny(objs)
			continue
		}
		feedArg(objs, i)
	}
	for _, kw := range call.Keywords {
		objs, _ := a.eval(fe, kw.Value)
		feedArg(objs, propgraph.ArgKeyword)
	}
	return []*object{result}, path
}

// linkLocalCall wires a call to a function defined in this file: argument
// events flow into the callee's parameter events and the callee's returned
// objects become the call's value. No Call event is created — the callee
// body is statically known, so its own events carry the flow.
func (a *analyzer) linkLocalCall(fe *funcEnv, fd *funcDef, call *pyast.Call, receiver []*object, method bool) ([]*object, *sympath) {
	a.ensureAnalyzed(fd)
	params := fd.paramOrder
	if method && len(params) > 0 && isReceiverName(params[0]) {
		params = params[1:]
	}
	bindTo := func(i int, objs []*object) {
		if i < 0 || i >= len(params) {
			return
		}
		if evID, ok := fd.paramEvents[params[i]]; ok {
			for _, src := range collectEvents(objs, a.opts.FieldDepth) {
				a.g.AddEdge(src, evID)
			}
		}
	}
	for i, arg := range call.Args {
		objs, _ := a.eval(fe, arg)
		bindTo(i, objs)
	}
	for _, kw := range call.Keywords {
		objs, _ := a.eval(fe, kw.Value)
		for i, p := range params {
			if p == kw.Name {
				bindTo(i, objs)
			}
		}
	}
	_ = receiver
	result := fd.returns
	if len(result) == 0 {
		result = []*object{newObject(-1)}
	}
	return result, nil
}
