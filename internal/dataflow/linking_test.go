package dataflow

import (
	"strings"
	"testing"

	"seldon/internal/propgraph"
	"seldon/internal/pyparse"
)

func TestKeywordArgumentLinking(t *testing.T) {
	src := `from flask import request

def store(path, payload=None):
    persist(payload)

def handler():
    data = request.form.get('d')
    store('/tmp/x', payload=data)
`
	g := analyze(t, src)
	if !flowsTo(t, g, "flask.request.form.get()", "store(param payload)") {
		t.Error("keyword argument must reach the named parameter event")
	}
	if !flowsTo(t, g, "flask.request.form.get()", "persist()") {
		t.Error("keyword argument must flow through the callee body")
	}
	// The positional argument must NOT leak into payload's param event.
	if flowsTo(t, g, "store(param path)", "store(param payload)") {
		t.Error("positional and keyword parameters conflated")
	}
}

func TestNestedFunctionLinking(t *testing.T) {
	src := `from flask import request

def outer():
    def inner(v):
        emit(v)
    q = request.args.get('q')
    inner(q)
`
	g := analyze(t, src)
	if !flowsTo(t, g, "flask.request.args.get()", "emit()") {
		t.Error("nested function call must be linked")
	}
}

func TestModuleLevelVariableFlow(t *testing.T) {
	src := `from flask import request

SETTING = load_setting()

def handler():
    use(SETTING)
`
	g := analyze(t, src)
	if !flowsTo(t, g, "load_setting()", "use()") {
		t.Error("module-level variable must flow into function bodies")
	}
}

func TestRecursiveFunctionDoesNotHang(t *testing.T) {
	src := `def walk(node):
    if node:
        walk(node)
    return finish(node)

def run():
    walk(start())
`
	g := analyze(t, src)
	if !flowsTo(t, g, "start()", "walk(param node)") {
		t.Error("recursive call argument lost")
	}
	if !flowsTo(t, g, "walk(param node)", "finish()") {
		t.Error("recursive body flow lost")
	}
}

func TestMutuallyRecursiveFunctions(t *testing.T) {
	src := `def ping(x):
    return pong(x)

def pong(y):
    return ping(y)

def run():
    ping(seed())
`
	g := analyze(t, src)
	// The recursion guard cuts the cycle; the first hop must still link.
	if !flowsTo(t, g, "seed()", "ping(param x)") {
		t.Error("first hop of mutual recursion lost")
	}
}

func TestReturnThroughMultipleHops(t *testing.T) {
	src := `def a():
    return fetch()

def b():
    return a()

def run():
    deliver(b())
`
	g := analyze(t, src)
	if !flowsTo(t, g, "fetch()", "deliver()") {
		t.Error("return value must flow through two linked calls")
	}
}

func TestDefaultValueEvaluatedAtDefinition(t *testing.T) {
	g := analyze(t, "def f(x=compute_default()):\n    pass\n")
	if findEvent(g, "compute_default()") == nil {
		t.Error("default expression must produce an event")
	}
}

func TestStarArgsDoNotBreakLinking(t *testing.T) {
	src := `def f(a, b):
    sink(b)

def run():
    args = [1, taint()]
    f(*args)
    f(1, taint2())
`
	g := analyze(t, src)
	// The positional call after the star call must still link correctly.
	if !flowsTo(t, g, "taint2()", "sink()") {
		t.Error("positional linking broken by star-call neighbor")
	}
}

func TestFStringInterpolationFlow(t *testing.T) {
	src := `from flask import request
import MySQLdb

def f():
    term = request.args.get('q')
    q = f"SELECT * FROM t WHERE k = {term}"
    cur = MySQLdb.connect().cursor()
    cur.execute(q)
`
	g := analyze(t, src)
	if !flowsTo(t, g, "flask.request.args.get()", "MySQLdb.connect().cursor().execute()") {
		t.Error("f-string interpolation must propagate taint")
	}
}

func TestFStringNestedCallFlow(t *testing.T) {
	src := `from flask import request

def f():
    q = request.args.get('q')
    msg = f"result: {normalize(q)}"
    emit(msg)
`
	g := analyze(t, src)
	if !flowsTo(t, g, "flask.request.args.get()", "normalize()") {
		t.Error("call inside f-string must receive flow")
	}
	if !flowsTo(t, g, "normalize()", "emit()") {
		t.Error("f-string value must carry interpolation results")
	}
}

func TestMaxPathSegmentsCapsReps(t *testing.T) {
	// A chain deeper than the cap keeps flowing but stops producing
	// representations.
	src := "import a\nx = a.b.c.d.e.f.g.h.i.j.k.m()\n"
	g, err := AnalyzeSource("t.py", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Events {
		for _, r := range e.Reps() {
			if len(r) > 0 && strings.Count(r, ".") > 10 {
				t.Errorf("over-long rep survived: %q", r)
			}
		}
	}
	// With a small cap, the deep call has no reps at all but still exists.
	mod, _ := pyparse.Parse("t.py", src)
	g2 := AnalyzeModule(mod, Options{MaxPathSegments: 3})
	deepCall := 0
	for _, e := range g2.Events {
		if e.Kind == propgraph.KindCall && e.NumReps() == 0 {
			deepCall++
		}
	}
	if deepCall == 0 {
		t.Error("capped analyzer should keep rep-less deep events")
	}
}

func TestFieldDepthBoundsEventCollection(t *testing.T) {
	// Deeply nested containers still terminate and propagate at least the
	// shallow levels.
	src := `from flask import request

def f():
    q = request.args.get('x')
    nested = [[[[[q]]]]]
    sink(nested)
`
	mod, _ := pyparse.Parse("t.py", src)
	g := AnalyzeModule(mod, Options{FieldDepth: 2})
	// With depth 2 the taint is buried 5 levels deep: no edge expected,
	// but no panic or hang either.
	_ = g
	g2 := AnalyzeModule(mod, Options{FieldDepth: 6})
	if !flowsTo(t, g2, "flask.request.args.get()", "sink()") {
		t.Error("depth 6 must reach the nested taint")
	}
}
