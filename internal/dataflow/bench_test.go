package dataflow

import (
	"testing"

	"seldon/internal/corpus"
	"seldon/internal/pyparse"

	"seldon/internal/pyast"
)

// BenchmarkAnalyzeModule measures propagation-graph construction over a
// realistic generated view module.
func BenchmarkAnalyzeModule(b *testing.B) {
	c := corpus.Generate(corpus.Config{Files: 8, Seed: 1})
	mods := make([]*pyast.Module, 0, len(c.Files))
	total := 0
	for _, f := range c.Files {
		mod, err := pyparse.Parse(f.Name, f.Source)
		if err != nil {
			b.Fatal(err)
		}
		mods = append(mods, mod)
		total += len(f.Source)
	}
	b.SetBytes(int64(total))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, mod := range mods {
			AnalyzeModule(mod, Options{})
		}
	}
}
