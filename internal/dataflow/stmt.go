package dataflow

import (
	"seldon/internal/propgraph"
	"seldon/internal/pyast"
)

// analyzeBody processes a statement list flow-sensitively.
func (a *analyzer) analyzeBody(fe *funcEnv, body []pyast.Stmt) {
	for _, s := range body {
		a.analyzeStmt(fe, s)
	}
}

func (a *analyzer) analyzeStmt(fe *funcEnv, s pyast.Stmt) {
	switch st := s.(type) {
	case *pyast.Import:
		for _, al := range st.Names {
			segs := splitDotted(al.Name)
			if al.AsName != "" {
				a.imports[al.AsName] = segs
			} else {
				// `import a.b` binds `a`.
				a.imports[segs[0]] = segs[:1]
			}
		}
	case *pyast.ImportFrom:
		prefix := splitDotted(st.Module)
		for _, al := range st.Names {
			if al.Name == "*" {
				continue // wildcard imports cannot be resolved statically
			}
			segs := append(append([]string(nil), prefix...), splitDotted(al.Name)...)
			local := al.AsName
			if local == "" {
				local = al.Name
			}
			a.imports[local] = segs
		}

	case *pyast.Assign:
		objs, path := a.eval(fe, st.Value)
		for _, tgt := range st.Targets {
			if nm, ok := tgt.(*pyast.Name); ok {
				// Remember the defining expression's path so later uses of
				// the variable produce chained representations.
				fe.env.setWithPath(nm.Ident, objs, path)
				fe.reassigned[nm.Ident] = true
				continue
			}
			a.assignTo(fe, tgt, objs)
		}
	case *pyast.AugAssign:
		objs, _ := a.eval(fe, st.Value)
		// The target keeps its previous values and gains the new ones.
		if nm, ok := st.Target.(*pyast.Name); ok {
			fe.env.add(nm.Ident, objs)
			fe.reassigned[nm.Ident] = true
		} else {
			a.assignTo(fe, st.Target, objs)
		}
	case *pyast.AnnAssign:
		if st.Value != nil {
			objs, _ := a.eval(fe, st.Value)
			a.assignTo(fe, st.Target, objs)
		}

	case *pyast.ExprStmt:
		a.eval(fe, st.Value)
	case *pyast.Return:
		if st.Value != nil {
			objs, _ := a.eval(fe, st.Value)
			if fe.cur != nil {
				fe.cur.returns = unionObjects(fe.cur.returns, objs)
			}
		}
	case *pyast.Delete:
		for _, t := range st.Targets {
			if nm, ok := t.(*pyast.Name); ok {
				fe.env.delete(nm.Ident)
			} else {
				a.eval(fe, t)
			}
		}
	case *pyast.Raise:
		if st.Exc != nil {
			a.eval(fe, st.Exc)
		}
		if st.Cause != nil {
			a.eval(fe, st.Cause)
		}
	case *pyast.Assert:
		a.eval(fe, st.Cond)
		if st.Msg != nil {
			a.eval(fe, st.Msg)
		}

	case *pyast.If:
		a.eval(fe, st.Cond)
		thenEnv := fe.env.clone()
		elseEnv := fe.env.clone()
		a.withEnv(fe, thenEnv, func() { a.analyzeBody(fe, st.Body) })
		a.withEnv(fe, elseEnv, func() { a.analyzeBody(fe, st.Else) })
		thenEnv.merge(elseEnv)
		fe.env = thenEnv
	case *pyast.While:
		a.eval(fe, st.Cond)
		// Single iteration (§5.2): body analyzed once, result merged with
		// the zero-iteration environment.
		body := fe.env.clone()
		a.withEnv(fe, body, func() {
			a.analyzeBody(fe, st.Body)
			a.analyzeBody(fe, st.Else)
		})
		fe.env.merge(body)
	case *pyast.For:
		iterObjs, _ := a.eval(fe, st.Iter)
		elems := elementsOf(iterObjs)
		body := fe.env.clone()
		a.withEnv(fe, body, func() {
			a.assignTo(fe, st.Target, elems)
			a.analyzeBody(fe, st.Body)
			a.analyzeBody(fe, st.Else)
		})
		fe.env.merge(body)
	case *pyast.With:
		for _, item := range st.Items {
			objs, _ := a.eval(fe, item.Context)
			if item.Vars != nil {
				a.assignTo(fe, item.Vars, objs)
			}
		}
		a.analyzeBody(fe, st.Body)
	case *pyast.Try:
		a.analyzeBody(fe, st.Body)
		after := fe.env.clone()
		for _, h := range st.Handlers {
			henv := after.clone()
			a.withEnv(fe, henv, func() {
				if h.Type != nil {
					a.eval(fe, h.Type)
				}
				if h.Name != "" {
					fe.env.set(h.Name, []*object{newObject(-1)})
					fe.reassigned[h.Name] = true
				}
				a.analyzeBody(fe, h.Body)
			})
			fe.env.merge(henv)
		}
		a.analyzeBody(fe, st.Else)
		a.analyzeBody(fe, st.Finally)

	case *pyast.FunctionDef:
		a.registerFunc(fe, st, nil)
	case *pyast.ClassDef:
		a.registerClass(fe, st)

	case *pyast.Global, *pyast.Nonlocal, *pyast.Pass, *pyast.Break, *pyast.Continue:
		// No dataflow effect at our abstraction level.
	}
}

// withEnv runs f with fe.env temporarily replaced by e.
func (a *analyzer) withEnv(fe *funcEnv, e *env, f func()) {
	saved := fe.env
	fe.env = e
	f()
	fe.env = saved
}

// elementsOf extracts container elements of objs, falling back to the
// containers themselves when no element information exists (so iteration
// over an unknown value still propagates its taint).
func elementsOf(objs []*object) []*object {
	var elems []*object
	for _, o := range objs {
		elems = unionObjects(elems, o.field(elemKey))
	}
	if len(elems) == 0 {
		return objs
	}
	return unionObjects(elems, objs)
}

// assignTo binds objs to an assignment target.
func (a *analyzer) assignTo(fe *funcEnv, target pyast.Expr, objs []*object) {
	switch t := target.(type) {
	case *pyast.Name:
		fe.env.set(t.Ident, objs)
		fe.reassigned[t.Ident] = true
	case *pyast.Attribute:
		base, _ := a.eval(fe, t.Value)
		for _, o := range base {
			o.addField(t.Attr, objs)
		}
	case *pyast.Subscript:
		base, _ := a.eval(fe, t.Value)
		a.eval(fe, t.Index)
		for _, o := range base {
			o.addField(elemKey, objs)
		}
	case *pyast.Tuple:
		a.assignToEach(fe, t.Elts, objs)
	case *pyast.List:
		a.assignToEach(fe, t.Elts, objs)
	case *pyast.Starred:
		a.assignTo(fe, t.Value, objs)
	}
}

func (a *analyzer) assignToEach(fe *funcEnv, targets []pyast.Expr, objs []*object) {
	elems := elementsOf(objs)
	for _, tgt := range targets {
		a.assignTo(fe, tgt, elems)
	}
}

// ---------------------------------------------------------------------------
// Function and class registration

// registerFunc declares a function in the current scope. Its decorators and
// parameter defaults are evaluated now (they execute at definition time);
// the body is analyzed lazily on first call or at end of module.
func (a *analyzer) registerFunc(fe *funcEnv, def *pyast.FunctionDef, class *classDef) *funcDef {
	ctx := propgraph.RepContext{Function: def.Name}
	if class != nil {
		ctx.Class = class.name
		ctx.ClassBases = class.bases
	}
	fd := &funcDef{def: def, ctx: ctx, outer: fe, class: class,
		paramEvents: make(map[string]int)}
	for _, dec := range def.Decorators {
		a.eval(fe, dec)
	}
	for _, p := range def.Params {
		if p.Default != nil {
			a.eval(fe, p.Default)
		}
		fd.paramOrder = append(fd.paramOrder, p.Name)
	}
	if class == nil {
		fe.locals[def.Name] = fd
	}
	a.order = append(a.order, fd)
	return fd
}

func (a *analyzer) registerClass(fe *funcEnv, def *pyast.ClassDef) {
	cd := &classDef{name: def.Name, methods: make(map[string]*funcDef)}
	for _, dec := range def.Decorators {
		a.eval(fe, dec)
	}
	for _, b := range def.Bases {
		if q := a.qualifyExpr(b); q != "" && q != def.Name {
			cd.bases = append(cd.bases, q)
		}
		a.eval(fe, b)
	}
	for _, kw := range def.Keywords {
		a.eval(fe, kw.Value)
	}
	fe.classes[def.Name] = cd
	// Class bodies execute at definition time: analyze non-def statements,
	// register methods.
	for _, s := range def.Body {
		if m, ok := s.(*pyast.FunctionDef); ok {
			cd.methods[m.Name] = a.registerFunc(fe, m, cd)
			continue
		}
		a.analyzeStmt(fe, s)
	}
}

// ensureAnalyzed analyzes a function body once, creating its parameter
// events and collecting returned values. Recursive cycles are cut by the
// `analyzing` state.
func (a *analyzer) ensureAnalyzed(fd *funcDef) {
	if fd.state != 0 {
		return
	}
	fd.state = 1
	fe := a.newFuncEnv(fd.ctx, fd, fd.outer)
	fe.curClass = fd.class
	for _, p := range fd.def.Params {
		fe.params[p.Name] = true
		var objs []*object
		if isReceiverName(p.Name) {
			if fd.class != nil {
				// All methods share the class's receiver so instance
				// state flows across them.
				objs = []*object{fd.class.receiver()}
			} else {
				objs = []*object{newObject(-1)}
			}
		} else {
			ev := a.g.AddEvent(propgraph.KindParam, a.file, p.NamePos, fd.ctx.ParamEventReps(p.Name))
			fd.paramEvents[p.Name] = ev.ID
			objs = []*object{newObject(ev.ID)}
		}
		fe.env.vars[p.Name] = objs
	}
	a.analyzeBody(fe, fd.def.Body)
	fd.state = 2
}

// isReceiverName reports whether a parameter is a conventional receiver;
// receivers get no source-candidate event (their taint is tracked through
// the object itself).
func isReceiverName(s string) bool { return s == "self" || s == "cls" }

func splitDotted(s string) []string {
	if s == "" {
		return nil
	}
	var segs []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '.' {
			i++
		}
		segs = append(segs, s[:i])
		if i == len(s) {
			break
		}
		s = s[i+1:]
	}
	return segs
}
