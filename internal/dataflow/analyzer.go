package dataflow

import (
	"strings"

	"seldon/internal/obs"
	"seldon/internal/propgraph"
	"seldon/internal/pyast"
	"seldon/internal/pyparse"
)

// Options configures the analyzer.
type Options struct {
	// MaxPathSegments caps the length of symbolic paths used to build
	// event representations; longer chains keep flowing but stop
	// producing representations. Default 8 (the paper's context bound).
	MaxPathSegments int
	// FieldDepth bounds how deep field maps are traversed when
	// collecting the events carried by an abstract value. Default 3.
	FieldDepth int
	// Metrics, when non-nil, receives per-module analysis counters
	// (modules, functions, graph events).
	Metrics *obs.Registry
	// Scratch, when non-nil, donates reusable analyzer state (the import
	// table and function-order list) so hot loops re-analyzing many
	// modules stop reallocating it. Not safe for concurrent use; the
	// produced graph never aliases the scratch.
	Scratch *Scratch
}

// Scratch holds the analyzer allocations that are reusable across
// modules. The zero value is ready to use; AnalyzeModule resets it on
// entry, so between calls it may retain references from the previous
// module — call Reset to scrub a pooled scratch on release.
type Scratch struct {
	imports map[string][]string
	order   []*funcDef
}

// Reset clears the retained contents while keeping capacity.
func (s *Scratch) Reset() {
	clear(s.imports)
	clear(s.order)
	s.order = s.order[:0]
}

func (o Options) withDefaults() Options {
	if o.MaxPathSegments == 0 {
		o.MaxPathSegments = 8
	}
	if o.FieldDepth == 0 {
		o.FieldDepth = 3
	}
	return o
}

// AnalyzeSource parses src and builds its propagation graph. Parse errors
// do not abort the analysis: the graph of the recovered AST is returned
// together with the error.
func AnalyzeSource(file, src string) (*propgraph.Graph, error) {
	mod, err := pyparse.Parse(file, src)
	return AnalyzeModule(mod, Options{}), err
}

// AnalyzeModule builds the propagation graph of a parsed module.
func AnalyzeModule(mod *pyast.Module, opts Options) *propgraph.Graph {
	a := &analyzer{
		g:    propgraph.New(),
		file: mod.File,
		opts: opts.withDefaults(),
	}
	if sc := a.opts.Scratch; sc != nil {
		sc.Reset()
		if sc.imports == nil {
			sc.imports = make(map[string][]string)
		}
		a.imports = sc.imports
		a.order = sc.order
	} else {
		a.imports = make(map[string][]string)
	}
	root := a.newFuncEnv(propgraph.RepContext{}, nil, nil)
	a.analyzeBody(root, mod.Body)
	// Analyze any registered functions that were never called.
	for _, fd := range a.order {
		a.ensureAnalyzed(fd)
	}
	if sc := a.opts.Scratch; sc != nil {
		sc.order = a.order // keep the grown list for the next module
	}
	a.opts.Metrics.Add("dataflow.modules", 1)
	a.opts.Metrics.Add("dataflow.functions", int64(len(a.order)))
	a.opts.Metrics.Add("dataflow.events", int64(len(a.g.Events)))
	return a.g
}

type analyzer struct {
	g       *propgraph.Graph
	file    string
	opts    Options
	imports map[string][]string // local alias -> qualified path segments
	order   []*funcDef          // all registered functions, in source order
}

// funcDef is a locally defined function (module-level, nested, or method)
// together with its analysis summary.
type funcDef struct {
	def         *pyast.FunctionDef
	ctx         propgraph.RepContext
	paramEvents map[string]int // param name -> event ID (self/cls excluded)
	paramOrder  []string
	returns     []*object
	state       int // 0 = pending, 1 = analyzing, 2 = done
	outer       *funcEnv
	class       *classDef // receiver class for methods, or nil
}

// classDef records a locally defined class and its methods. The shared
// receiver object lets `self.field` stores in one method flow to reads in
// another (a context-insensitive over-approximation of instance state).
type classDef struct {
	name    string
	bases   []string // qualified
	methods map[string]*funcDef
	self    *object
}

// receiver returns the class's shared self object, creating it on demand.
func (cd *classDef) receiver() *object {
	if cd.self == nil {
		cd.self = newObject(-1)
		cd.self.class = cd
	}
	return cd.self
}

// funcEnv is the per-scope analysis state.
type funcEnv struct {
	env        *env
	ctx        propgraph.RepContext
	params     map[string]bool
	reassigned map[string]bool
	locals     map[string]*funcDef  // nested defs visible in this scope
	classes    map[string]*classDef // visible local classes
	cur        *funcDef             // function being analyzed (returns sink)
	curClass   *classDef
	outer      *funcEnv
}

func (a *analyzer) newFuncEnv(ctx propgraph.RepContext, cur *funcDef, outer *funcEnv) *funcEnv {
	return &funcEnv{
		env: newEnv(), ctx: ctx,
		params:     make(map[string]bool),
		reassigned: make(map[string]bool),
		locals:     make(map[string]*funcDef),
		classes:    make(map[string]*classDef),
		cur:        cur,
		outer:      outer,
	}
}

// lookupFunc resolves a locally defined function by name through the scope
// chain.
func (fe *funcEnv) lookupFunc(name string) *funcDef {
	for e := fe; e != nil; e = e.outer {
		if fd, ok := e.locals[name]; ok {
			return fd
		}
		if e.reassigned[name] || e.params[name] {
			return nil // shadowed by a binding we cannot resolve
		}
	}
	return nil
}

func (fe *funcEnv) lookupClass(name string) *classDef {
	for e := fe; e != nil; e = e.outer {
		if cd, ok := e.classes[name]; ok {
			return cd
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Symbolic paths

// sympath is a symbolic description of how a value was reached; it drives
// representation building. Either param is set (value rooted at a formal
// parameter of the enclosing function) or segs[0] is the (possibly
// import-qualified) root.
type sympath struct {
	param string
	ctx   propgraph.RepContext
	segs  []string
	pure  bool // import-rooted chain of plain names (a module path)
}

func (p *sympath) reps() []string {
	if p == nil {
		return nil
	}
	if p.param != "" {
		return p.ctx.ParamRootedReps(p.param, p.segs)
	}
	return propgraph.SuffixReps(p.segs)
}

// extend returns a copy of p with one more segment, or nil when the path
// exceeds the cap or p is nil.
func (a *analyzer) extend(p *sympath, seg string) *sympath {
	if p == nil {
		return nil
	}
	if len(p.segs)+1 > a.opts.MaxPathSegments {
		return nil
	}
	np := &sympath{param: p.param, ctx: p.ctx, segs: make([]string, 0, len(p.segs)+1), pure: false}
	np.segs = append(np.segs, p.segs...)
	np.segs = append(np.segs, seg)
	return np
}

// extendLast rewrites the final segment (used for `seg` -> `seg()` and
// subscript suffixes). p must be non-nil with at least one segment, or a
// param-only root.
func (a *analyzer) extendLast(p *sympath, rewrite func(string) string) *sympath {
	if p == nil {
		return nil
	}
	np := &sympath{param: p.param, ctx: p.ctx, segs: append([]string(nil), p.segs...), pure: false}
	if len(np.segs) == 0 {
		// A bare parameter: the rewrite applies to the parameter position,
		// which representations cannot express; drop the path.
		return nil
	}
	np.segs[len(np.segs)-1] = rewrite(np.segs[len(np.segs)-1])
	return np
}

// rootPath resolves the symbolic root for a bare name: enclosing-function
// parameter, the symbolic path of the variable's defining expression,
// import alias, or plain variable name.
func (a *analyzer) rootPath(fe *funcEnv, name string) *sympath {
	if fe.params[name] && !fe.reassigned[name] {
		return &sympath{param: name, ctx: fe.ctx}
	}
	for e := fe; e != nil; e = e.outer {
		if p, ok := e.env.paths[name]; ok {
			return p
		}
	}
	if segs, ok := a.imports[name]; ok && !fe.isBound(name) {
		return &sympath{segs: append([]string(nil), segs...), pure: true}
	}
	return &sympath{segs: []string{name}}
}

func (fe *funcEnv) isBound(name string) bool {
	for e := fe; e != nil; e = e.outer {
		if e.reassigned[name] || e.params[name] {
			return true
		}
	}
	return false
}

// qualifyExpr renders an expression as a dotted name with import aliases
// expanded; used for base-class names. Returns "" for non-dotted shapes.
func (a *analyzer) qualifyExpr(e pyast.Expr) string {
	switch x := e.(type) {
	case *pyast.Name:
		if segs, ok := a.imports[x.Ident]; ok {
			return strings.Join(segs, ".")
		}
		return x.Ident
	case *pyast.Attribute:
		base := a.qualifyExpr(x.Value)
		if base == "" {
			return ""
		}
		return base + "." + x.Attr
	}
	return ""
}
