package incr_test

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"seldon/internal/core"
	"seldon/internal/corpus"
	"seldon/internal/incr"
	"seldon/internal/propgraph"
	"seldon/internal/spec"
	"seldon/internal/specio"
)

func testCorpus(t *testing.T, n int, seed int64) (map[string]string, []string) {
	t.Helper()
	files := corpus.Generate(corpus.Config{Files: n, Seed: seed}).FileMap()
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	return files, names
}

// sessionFrom splices every corpus file into a fresh session.
func sessionFrom(t *testing.T, files map[string]string, cfg core.Config) *incr.Session {
	t.Helper()
	s := incr.NewSession(corpus.ExperimentSeed(), cfg)
	for name, src := range files {
		s.SpliceSource(name, src)
	}
	return s
}

// storeBytes encodes a spec store with fixed metadata — the byte-level
// equality oracle for learned results.
func storeBytes(t *testing.T, sp *spec.Spec) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := specio.Encode(&buf, sp, specio.Meta{Generator: "oracle"}); err != nil {
		t.Fatalf("encode store: %v", err)
	}
	return buf.Bytes()
}

// scratchLearn runs the ordinary from-scratch pipeline over files — the
// ground truth every incremental path must reproduce.
func scratchLearn(t *testing.T, files map[string]string, workers int) *spec.Spec {
	t.Helper()
	seed := corpus.ExperimentSeed()
	res := core.LearnFromSources(files, seed, core.Config{Workers: workers})
	return res.LearnedSpec(seed)
}

// TestSessionEquivalenceOracle is the tentpole contract: splice a
// corpus in, re-learn, mutate one file, re-learn again — at every step
// the learned store must be byte-identical to a from-scratch run over
// the session's current file set, at workers 1 and 4.
func TestSessionEquivalenceOracle(t *testing.T) {
	files, names := testCorpus(t, 12, 7)
	victim := names[len(names)-1]

	for _, workers := range []int{1, 4} {
		s := sessionFrom(t, files, core.Config{Workers: workers})
		if s.Len() != len(files) {
			t.Fatalf("workers=%d: session has %d files, want %d", workers, s.Len(), len(files))
		}
		_, st := s.Relearn()
		if st.WarmStarted {
			t.Fatalf("workers=%d: first relearn claimed a warm start", workers)
		}
		if got, want := storeBytes(t, s.LearnedSpec()), storeBytes(t, scratchLearn(t, files, workers)); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: cold session store differs from from-scratch", workers)
		}

		mutated := make(map[string]string, len(files))
		for n, src := range files {
			mutated[n] = src
		}
		mutated[victim] += "\ndef extra(q):\n    y = q.fetch()\n    sys_exec(y)\n"
		s.SpliceSource(victim, mutated[victim])

		_, st2 := s.Relearn()
		if !st2.WarmStarted {
			t.Fatalf("workers=%d: second relearn did not warm-start", workers)
		}
		if st2.FilesChanged != 1 {
			t.Fatalf("workers=%d: FilesChanged = %d, want 1", workers, st2.FilesChanged)
		}
		if st2.Delta.FellBack {
			t.Fatalf("workers=%d: delta build fell back", workers)
		}
		if st2.Delta.SpansReused != len(files)-1 {
			t.Fatalf("workers=%d: reused %d spans, want %d", workers, st2.Delta.SpansReused, len(files)-1)
		}
		scratch := scratchLearn(t, mutated, workers)
		if !specio.Equal(s.LearnedSpec(), scratch) {
			t.Fatalf("workers=%d: warm session store not Equal to from-scratch", workers)
		}
		if got, want := storeBytes(t, s.LearnedSpec()), storeBytes(t, scratch); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: warm session store bytes differ from from-scratch", workers)
		}
	}
}

// TestSessionWarmMatchesCold: re-learning with no corpus change reuses
// every span, warm-starts from the optimum, and lands on the same
// store — the warm/cold golden test at the session level.
func TestSessionWarmMatchesCold(t *testing.T) {
	files, _ := testCorpus(t, 10, 21)
	s := sessionFrom(t, files, core.Config{Workers: 1})
	res1, _ := s.Relearn()
	cold := storeBytes(t, s.LearnedSpec())

	res2, st := s.Relearn()
	if !st.WarmStarted {
		t.Fatal("second relearn did not warm-start")
	}
	if st.Delta.SpansReused != s.Len() || st.Delta.SpansRebuilt != 0 {
		t.Fatalf("no-change relearn reused %d/%d spans", st.Delta.SpansReused, s.Len())
	}
	if res2.SolverEpochs > res1.SolverEpochs {
		t.Fatalf("warm solve took %d epochs, cold took %d", res2.SolverEpochs, res1.SolverEpochs)
	}
	if got := storeBytes(t, s.LearnedSpec()); !bytes.Equal(got, cold) {
		t.Fatal("warm store differs from cold store")
	}
}

// TestRetractSoleOwnerSymbol: retracting the only file that mentions a
// symbol must drop its variables cleanly — the result matches a
// from-scratch run over the remaining files.
func TestRetractSoleOwnerSymbol(t *testing.T) {
	files, _ := testCorpus(t, 8, 5)
	const lone = "zz_lone.py"
	files[lone] = "def only_here(a):\n    b = a.lone_fetch()\n    sys_exec(b)\n"

	s := sessionFrom(t, files, core.Config{Workers: 1})
	s.Relearn()

	if !s.Retract(lone) {
		t.Fatal("retract of resident file reported absent")
	}
	if s.Retract(lone) {
		t.Fatal("second retract of the same file reported present")
	}
	delete(files, lone)
	s.Relearn()
	if got, want := storeBytes(t, s.LearnedSpec()), storeBytes(t, scratchLearn(t, files, 1)); !bytes.Equal(got, want) {
		t.Fatal("store after sole-owner retract differs from from-scratch")
	}
}

// TestRenameFile: a rename is retract + splice of the same graph under
// a new name; the learned store matches a from-scratch run over the
// renamed corpus.
func TestRenameFile(t *testing.T) {
	files, names := testCorpus(t, 8, 9)
	old, renamed := names[2], "renamed_"+names[2]

	s := sessionFrom(t, files, core.Config{Workers: 1})
	s.Relearn()

	enc := s.EncodedGraph(old)
	g, rest, err := propgraph.DecodeBinary(enc)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode stored graph: %v (rest %d)", err, len(rest))
	}
	s.Retract(old)
	s.Splice(renamed, g)
	s.Relearn()

	mutated := make(map[string]string, len(files))
	for n, src := range files {
		mutated[n] = src
	}
	mutated[renamed] = mutated[old]
	delete(mutated, old)
	// The spliced graph still carries the old file name in its events, so
	// compare against the analyzed-under-old-name graphs: re-learning is
	// representation-level, and reps do not include file names, so the
	// stores still match.
	if !specio.Equal(s.LearnedSpec(), scratchLearn(t, mutated, 1)) {
		t.Fatal("store after rename not Equal to from-scratch over renamed corpus")
	}
}

// TestEmptyFileSplice: a file with no events contributes an empty span
// and must not disturb the result.
func TestEmptyFileSplice(t *testing.T) {
	files, _ := testCorpus(t, 6, 13)
	s := sessionFrom(t, files, core.Config{Workers: 1})
	s.Relearn()

	files["empty.py"] = ""
	s.SpliceSource("empty.py", "")
	_, st := s.Relearn()
	if st.Delta.FellBack {
		t.Fatal("empty-file splice fell back")
	}
	if got, want := storeBytes(t, s.LearnedSpec()), storeBytes(t, scratchLearn(t, files, 1)); !bytes.Equal(got, want) {
		t.Fatal("store after empty-file splice differs from from-scratch")
	}
}

// TestRetractThenIdenticalSplice: retract followed by a splice of the
// byte-identical graph restores the exact union — encoded graph bytes
// unchanged — and the relearn reuses every span.
func TestRetractThenIdenticalSplice(t *testing.T) {
	files, names := testCorpus(t, 6, 17)
	target := names[3]

	s := sessionFrom(t, files, core.Config{Workers: 1})
	res1, _ := s.Relearn()
	before := res1.Graph.AppendBinary(nil)
	encBefore := append([]byte(nil), s.EncodedGraph(target)...)

	g, _, err := propgraph.DecodeBinary(encBefore)
	if err != nil {
		t.Fatalf("decode stored graph: %v", err)
	}
	s.Retract(target)
	s.Splice(target, g)
	if got := s.EncodedGraph(target); !bytes.Equal(got, encBefore) {
		t.Fatal("re-spliced graph encodes differently")
	}

	res2, st := s.Relearn()
	if got := res2.Graph.AppendBinary(nil); !bytes.Equal(got, before) {
		t.Fatal("union encoding changed across retract+identical splice")
	}
	if st.Delta.SpansReused != s.Len() {
		t.Fatalf("identical re-splice reused %d/%d spans", st.Delta.SpansReused, s.Len())
	}

	// Splicing the identical graph onto a resident file is a recorded
	// no-op: the next stats must not count it as changed.
	g2, _, _ := propgraph.DecodeBinary(encBefore)
	s.Splice(target, g2)
	_, st3 := s.Relearn()
	if st3.FilesChanged != 0 {
		t.Fatalf("identical splice counted as a change (FilesChanged=%d)", st3.FilesChanged)
	}
}

// TestSessionPinOverridesLearning: pinning a learned (rep, role) to 0
// removes it from the store; pinning back to 1 restores it.
func TestSessionPinOverridesLearning(t *testing.T) {
	files, _ := testCorpus(t, 20, 1)
	s := sessionFrom(t, files, core.Config{Workers: 1})
	res, _ := s.Relearn()

	learned := res.LearnedEntries(s.Seed())
	if len(learned) == 0 {
		t.Skip("corpus learned no non-seed entries")
	}
	target := learned[0]
	role := target.Role

	s.Pin(target.Rep, role, 0)
	s.Relearn()
	if v, ok := s.Score(target.Rep, role); !ok || v != 0 {
		t.Fatalf("pinned-to-0 score = %v, %v", v, ok)
	}
	for _, e := range s.Result().LearnedEntries(s.Seed()) {
		if e.Rep == target.Rep && e.Role == target.Role {
			t.Fatalf("rejected entry %v still in learned set", e)
		}
	}

	if !s.Unpin(target.Rep, role) {
		t.Fatal("unpin of active pin reported absent")
	}
	s.Pin(target.Rep, role, 1)
	if s.Pins() != 1 {
		t.Fatalf("Pins() = %d, want 1", s.Pins())
	}
	s.Relearn()
	found := false
	for _, e := range s.Result().LearnedEntries(s.Seed()) {
		if e.Rep == target.Rep && e.Role == target.Role {
			found = true
		}
	}
	if !found {
		t.Fatal("pinned-to-1 entry missing from learned set")
	}
}

// TestSessionSaveLoadRoundTrip: a persisted session resumes with the
// same corpus, solution, and pins — the first relearn after Load
// warm-starts and reproduces the pre-save store byte for byte.
func TestSessionSaveLoadRoundTrip(t *testing.T) {
	files, _ := testCorpus(t, 10, 31)
	cfg := core.Config{Workers: 1}
	s := sessionFrom(t, files, cfg)
	res, _ := s.Relearn()
	if entries := res.LearnedEntries(s.Seed()); len(entries) > 0 {
		s.Pin(entries[0].Rep, entries[0].Role, 0)
		s.Relearn()
	}
	want := storeBytes(t, s.LearnedSpec())

	dir := t.TempDir()
	if err := s.SaveDir(dir); err != nil {
		t.Fatalf("save: %v", err)
	}

	s2, err := incr.LoadDir(dir, corpus.ExperimentSeed(), cfg)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if s2.Len() != s.Len() || s2.Pins() != s.Pins() {
		t.Fatalf("restored session has %d files / %d pins, want %d / %d",
			s2.Len(), s2.Pins(), s.Len(), s.Pins())
	}
	for _, name := range s.Files() {
		if !bytes.Equal(s2.EncodedGraph(name), s.EncodedGraph(name)) {
			t.Fatalf("restored graph %q differs", name)
		}
		h1, ok1 := s.FileHash(name)
		h2, ok2 := s2.FileHash(name)
		if ok1 != ok2 || h1 != h2 {
			t.Fatalf("restored content hash %q differs", name)
		}
	}

	_, st := s2.Relearn()
	if !st.WarmStarted {
		t.Fatal("restored session did not warm-start")
	}
	if got := storeBytes(t, s2.LearnedSpec()); !bytes.Equal(got, want) {
		t.Fatal("restored session store differs from pre-save store")
	}
}

// TestSessionFlowCachePersistence: SaveDir writes the flow-constraint
// cache beside the state, and a restored session's first Relearn reuses
// every unchanged file's flow block — cross-process pass-4 warmth. A
// deleted flowcache.bin degrades to a rebuild, never a failure.
func TestSessionFlowCachePersistence(t *testing.T) {
	files, _ := testCorpus(t, 10, 41)
	cfg := core.Config{Workers: 1}
	s := sessionFrom(t, files, cfg)
	s.Relearn() // populates the in-memory flow cache
	want := storeBytes(t, s.LearnedSpec())

	dir := t.TempDir()
	if err := s.SaveDir(dir); err != nil {
		t.Fatalf("save: %v", err)
	}
	if fi, err := os.Stat(filepath.Join(dir, incr.FlowCacheFile)); err != nil || fi.Size() == 0 {
		t.Fatalf("SaveDir did not write %s: %v", incr.FlowCacheFile, err)
	}

	s2, err := incr.LoadDir(dir, corpus.ExperimentSeed(), cfg)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	_, st := s2.Relearn()
	if st.Delta.SpansReused != s2.Len() || st.Delta.SpansRebuilt != 0 {
		t.Fatalf("restored relearn reused %d/%d spans, rebuilt %d — flow cache did not survive",
			st.Delta.SpansReused, s2.Len(), st.Delta.SpansRebuilt)
	}
	if got := storeBytes(t, s2.LearnedSpec()); !bytes.Equal(got, want) {
		t.Fatal("flow-cache-warm store differs from pre-save store")
	}

	// Without the sidecar file the session still loads; the first relearn
	// just pays the rebuild.
	if err := os.Remove(filepath.Join(dir, incr.FlowCacheFile)); err != nil {
		t.Fatal(err)
	}
	s3, err := incr.LoadDir(dir, corpus.ExperimentSeed(), cfg)
	if err != nil {
		t.Fatalf("load without flow cache: %v", err)
	}
	_, st3 := s3.Relearn()
	if st3.Delta.SpansReused != 0 {
		t.Fatalf("relearn without the cache file reused %d spans, want 0", st3.Delta.SpansReused)
	}
	if got := storeBytes(t, s3.LearnedSpec()); !bytes.Equal(got, want) {
		t.Fatal("cold-cache store differs from pre-save store")
	}
}

// TestSessionLoadRejects: corruption, seed mismatch, and knob mismatch
// all surface as errors (the caller cold-starts).
func TestSessionLoadRejects(t *testing.T) {
	files, _ := testCorpus(t, 4, 3)
	cfg := core.Config{Workers: 1}
	s := sessionFrom(t, files, cfg)
	s.Relearn()
	dir := t.TempDir()
	if err := s.SaveDir(dir); err != nil {
		t.Fatalf("save: %v", err)
	}
	path := filepath.Join(dir, incr.StateFile)

	if _, err := incr.LoadDir(dir, corpus.ExperimentSeed(), cfg); err != nil {
		t.Fatalf("clean load failed: %v", err)
	}

	other := spec.New()
	other.Add(propgraph.Source, "weird.seed")
	if _, err := incr.LoadDir(dir, other, cfg); err == nil {
		t.Fatal("load with different seed succeeded")
	}

	badCfg := cfg
	badCfg.Threshold = 0.5
	if _, err := incr.LoadDir(dir, corpus.ExperimentSeed(), badCfg); err == nil {
		t.Fatal("load with different knobs succeeded")
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := incr.LoadDir(dir, corpus.ExperimentSeed(), cfg); err == nil {
		t.Fatal("load of corrupted state succeeded")
	}

	if err := os.WriteFile(path, data[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := incr.LoadDir(dir, corpus.ExperimentSeed(), cfg); err == nil {
		t.Fatal("load of truncated state succeeded")
	}
}
