package incr

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"seldon/internal/constraints"
	"seldon/internal/core"
	"seldon/internal/fpcache"
	"seldon/internal/propgraph"
	"seldon/internal/spec"
	"seldon/internal/specio"
)

// Session persistence. One self-delimiting binary file ("state.bin" in
// the session directory) carries everything a later process needs to
// resume incrementally: the seed store, the learning knobs, every
// corpus file's graph (binary-encoded) and source content hash, the
// previous solution keyed by (rep, role), the feedback pins, and the
// cold-solve epoch baseline. A sha256 trailer self-checks the payload;
// any corruption, version skew, or analyzer-version skew surfaces as an
// error so the caller falls back to a cold session.
//
// The flow-constraint cache is persisted beside the state as its own
// checksummed file (constraints.FlowCache Save/Load), so a resumed
// session's first Relearn reuses the flow blocks of unchanged files
// instead of paying one full flow pass. It is kept out of state.bin
// because its failure mode is different: a missing, stale, or corrupt
// flow cache is a silent empty cache (the blocks are fingerprint-gated
// derived data), never the cold-session fallback a state.bin problem
// forces.

const (
	stateMagic   = "SINC"
	stateVersion = 1
	// StateFile is the session state file name inside a session directory.
	StateFile = "state.bin"
	// FlowCacheFile is the persisted flow-constraint cache beside it.
	FlowCacheFile = "flowcache.bin"
)

// sessionKnobs are the learning parameters a persisted session is bound
// to. Resuming under different knobs would silently re-learn a
// different optimization problem, so Load rejects a mismatch.
type sessionKnobs struct {
	C            float64
	Lambda       float64
	Threshold    float64
	Decay        float64
	Cutoff       int
	MaxComponent int
}

// Save writes the session state to path atomically (temp file + rename
// in path's directory).
func (s *Session) Save(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	var b bytes.Buffer
	b.WriteString(stateMagic)
	wU64(&b, stateVersion)
	wStr(&b, fpcache.AnalyzerVersion)

	k := s.knobs()
	wF64(&b, k.C)
	wF64(&b, k.Lambda)
	wF64(&b, k.Threshold)
	wF64(&b, k.Decay)
	wU64(&b, uint64(k.Cutoff))
	wU64(&b, uint64(k.MaxComponent))

	var seedBuf bytes.Buffer
	if err := specio.Encode(&seedBuf, s.seed, specio.Meta{Generator: "incr-session"}); err != nil {
		return fmt.Errorf("incr: encode seed: %w", err)
	}
	wBytes(&b, seedBuf.Bytes())

	names := s.sortedNames()
	wU64(&b, uint64(len(names)))
	for _, n := range names {
		fs := s.files[n]
		wStr(&b, n)
		if fs.hasContent {
			b.WriteByte(1)
		} else {
			b.WriteByte(0)
		}
		b.Write(fs.contentHash[:])
		wBytes(&b, fs.enc)
	}

	wU64(&b, uint64(len(s.prev)))
	for _, pk := range sortedKeys(s.prev) {
		wStr(&b, pk.Rep)
		wU64(&b, uint64(pk.Role))
		wF64(&b, s.prev[pk])
	}

	wU64(&b, uint64(len(s.pins)))
	for _, pk := range sortedKeys(s.pins) {
		wStr(&b, pk.Rep)
		wU64(&b, uint64(pk.Role))
		wF64(&b, s.pins[pk])
	}

	wU64(&b, uint64(s.coldEpochs))

	sum := sha256.Sum256(b.Bytes())
	b.Write(sum[:])

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".state-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Load restores a session from path. seed and cfg are the *current*
// run's seed and configuration; Load fails when the stored seed or
// learning knobs disagree with them (the resumed state would answer a
// different problem), when the analyzer version moved (stored graphs
// may no longer match what the front-end produces), or when the file is
// corrupt. On any error the caller should start a cold session.
//
// A nil seed selects adopt mode: the session resumes under the seed and
// learning knobs recorded in the state file (cfg supplies everything
// else — workers, metrics, log). This is how a server with no learning
// configuration of its own (seldond -session-dir) picks a session up.
func Load(path string, seed *spec.Spec, cfg core.Config) (*Session, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(stateMagic)+sha256.Size {
		return nil, errors.New("incr: state file truncated")
	}
	payload, trailer := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if sum := sha256.Sum256(payload); !bytes.Equal(sum[:], trailer) {
		return nil, errors.New("incr: state checksum mismatch")
	}

	r := &stateReader{data: payload}
	if string(r.take(len(stateMagic))) != stateMagic {
		return nil, errors.New("incr: bad state magic")
	}
	if v := r.u64(); v != stateVersion {
		return nil, fmt.Errorf("incr: state version %d, want %d", v, stateVersion)
	}
	if av := r.str(); av != fpcache.AnalyzerVersion {
		return nil, fmt.Errorf("incr: analyzer version %q, want %q", av, fpcache.AnalyzerVersion)
	}

	stored := sessionKnobs{
		C:            r.f64(),
		Lambda:       r.f64(),
		Threshold:    r.f64(),
		Decay:        r.f64(),
		Cutoff:       int(r.u64()),
		MaxComponent: int(r.u64()),
	}
	storedSeed, _, err := specio.Decode(bytes.NewReader(r.bytes()))
	if err != nil {
		return nil, fmt.Errorf("incr: decode stored seed: %w", err)
	}
	if seed == nil {
		seed = storedSeed
		cfg.Constraints.C = stored.C
		cfg.Constraints.Lambda = stored.Lambda
		cfg.Constraints.BackoffCutoff = stored.Cutoff
		cfg.Constraints.MaxComponent = stored.MaxComponent
		cfg.Threshold = stored.Threshold
		cfg.BackoffDecay = stored.Decay
	} else if !specio.Equal(storedSeed, seed) {
		return nil, errors.New("incr: stored seed differs from session seed")
	}
	s := NewSession(seed, cfg)
	if want := s.knobs(); stored != want {
		return nil, fmt.Errorf("incr: state knobs %+v, session wants %+v", stored, want)
	}

	nFiles := int(r.u64())
	for i := 0; i < nFiles && r.err == nil; i++ {
		name := r.str()
		hasContent := false
		if hb := r.take(1); len(hb) == 1 {
			hasContent = hb[0] != 0
		}
		var ch [32]byte
		copy(ch[:], r.take(32))
		enc := r.bytes()
		if r.err != nil {
			break
		}
		g, rest, derr := propgraph.DecodeBinary(enc)
		if derr != nil {
			return nil, fmt.Errorf("incr: decode graph %q: %w", name, derr)
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("incr: trailing bytes after graph %q", name)
		}
		// Keep the stored encoding verbatim — the span hash and the
		// identical-splice check key off these exact bytes.
		encCopy := append([]byte(nil), enc...)
		s.files[name] = &fileState{
			contentHash: ch, hasContent: hasContent, enc: encCopy, graph: g,
		}
	}

	nSol := int(r.u64())
	if r.err == nil && nSol > 0 {
		s.prev = make(map[PinKey]float64, nSol)
		for i := 0; i < nSol && r.err == nil; i++ {
			rep := r.str()
			role := propgraph.Role(r.u64())
			s.prev[PinKey{Rep: rep, Role: role}] = r.f64()
		}
	}

	nPins := int(r.u64())
	for i := 0; i < nPins && r.err == nil; i++ {
		rep := r.str()
		role := propgraph.Role(r.u64())
		s.pins[PinKey{Rep: rep, Role: role}] = r.f64()
	}

	s.coldEpochs = int(r.u64())
	if r.err != nil {
		return nil, r.err
	}
	if len(r.data) != r.at {
		return nil, errors.New("incr: trailing bytes in state file")
	}
	return s, nil
}

// LoadDir restores the session persisted in dir (via SaveDir): Load on
// dir/state.bin, plus the persisted flow-constraint cache
// (dir/flowcache.bin) when one is present and matches this session's
// analyzer version and knobs — a missing or skewed flow cache is simply
// empty, never an error.
func LoadDir(dir string, seed *spec.Spec, cfg core.Config) (*Session, error) {
	s, err := Load(filepath.Join(dir, StateFile), seed, cfg)
	if err != nil {
		return nil, err
	}
	if fc, ok := constraints.LoadFlowCache(filepath.Join(dir, FlowCacheFile), s.cfg.Constraints); ok {
		s.cache = fc
	}
	return s, nil
}

// SaveDir persists the session into dir (created if missing) as
// dir/state.bin plus dir/flowcache.bin. A failed flow-cache write is
// reported but the state itself is already safe — the next LoadDir just
// starts with an empty flow cache.
func (s *Session) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := s.Save(filepath.Join(dir, StateFile)); err != nil {
		return err
	}
	return s.cache.Save(filepath.Join(dir, FlowCacheFile), s.cfg.Constraints)
}

func sortedKeys(m map[PinKey]float64) []PinKey {
	keys := make([]PinKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Rep != keys[j].Rep {
			return keys[i].Rep < keys[j].Rep
		}
		return keys[i].Role < keys[j].Role
	})
	return keys
}

func wU64(b *bytes.Buffer, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	b.Write(buf[:])
}

func wF64(b *bytes.Buffer, v float64) {
	wU64(b, math.Float64bits(v))
}

func wBytes(b *bytes.Buffer, p []byte) {
	wU64(b, uint64(len(p)))
	b.Write(p)
}

func wStr(b *bytes.Buffer, s string) {
	wU64(b, uint64(len(s)))
	b.WriteString(s)
}

// stateReader is a cursor over the state payload; the first decode
// failure sticks in err and every later read returns zero values.
type stateReader struct {
	data []byte
	at   int
	err  error
}

func (r *stateReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.at+n > len(r.data) {
		r.err = errors.New("incr: state file truncated")
		return nil
	}
	p := r.data[r.at : r.at+n]
	r.at += n
	return p
}

func (r *stateReader) u64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (r *stateReader) f64() float64 {
	return math.Float64frombits(r.u64())
}

func (r *stateReader) bytes() []byte {
	n := r.u64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data)-r.at) {
		r.err = errors.New("incr: state file truncated")
		return nil
	}
	return r.take(int(n))
}

func (r *stateReader) str() string {
	return string(r.bytes())
}
