// Package incr is the incremental-learning subsystem: a persistent
// session that owns the corpus as a set of per-file propagation graphs
// and re-learns specifications in ~O(changed files) instead of from
// scratch (ROADMAP item 2).
//
// A Session supports two delta operations on the corpus — Retract(file)
// and Splice(file, graph) — plus operator feedback pins on (rep, role)
// variables. Relearn then:
//
//   - rebuilds the disjoint union from the per-file graphs in sorted
//     name order (cheap: an arena bulk-copy, byte-identical to what a
//     from-scratch run produces),
//   - runs the delta-aware constraint build (constraints.BuildIncremental),
//     which reuses the cached flow-constraint block of every file whose
//     support set is unchanged,
//   - warm-starts projected Adam from the previous solution, translated
//     across variable renumbering by (rep, role); new variables start
//     cold and pinned variables are re-pinned on top,
//   - applies feedback pins as hard LP constraints (lp.Problem.Pin).
//
// Determinism contract: the incrementally built constraint system is
// byte-identical to constraints.Build on the union of the current file
// set (pinned by the equivalence-oracle tests), and the warm-started
// solve converges to the same specification store as a cold run under
// the default tolerance (golden tests).
//
// Sessions persist: Save writes the full state (per-file graphs, seed,
// knobs, previous solution, pins) to one self-checking binary file and
// Load restores it, so corpus evolution across CLI runs — and feedback
// served by a long-running seldond — re-learns incrementally instead of
// cold.
package incr

import (
	"crypto/sha256"
	"sort"
	"sync"
	"time"

	"seldon/internal/constraints"
	"seldon/internal/core"
	"seldon/internal/obs"
	"seldon/internal/propgraph"
	"seldon/internal/spec"
)

// PinKey identifies one feedback-pinned variable.
type PinKey struct {
	Rep  string
	Role propgraph.Role
}

// warmPatience is the plateau window (epochs without a best-objective
// improvement) applied to warm-started re-solves. Wide enough that a
// genuinely-moved optimum is still chased across shallow plateaus,
// narrow enough that a near-optimal warm start stops in a fraction of
// the full epoch budget.
const warmPatience = 25

// fileState is one corpus file inside the session.
type fileState struct {
	// contentHash is the sha256 of the file's source text, used by the
	// CLI to diff an on-disk corpus against the session without
	// re-analyzing unchanged files. Zero when the graph was spliced
	// directly (no source in hand).
	contentHash [32]byte
	hasContent  bool
	// enc is the graph's binary encoding (propgraph v2); its sha256
	// keys the flow-constraint cache spans.
	enc   []byte
	graph *propgraph.Graph
}

// Session owns the persistent incremental-learning state. All methods
// are safe for concurrent use; Relearn serializes.
type Session struct {
	mu   sync.Mutex
	seed *spec.Spec
	cfg  core.Config

	files map[string]*fileState
	cache *constraints.FlowCache
	pins  map[PinKey]float64

	// prev is the last solution keyed by (rep, role); coldEpochs the
	// epoch count of the session's last cold (non-warm) solve, the
	// baseline solver.warm_epochs_saved is measured against.
	prev       map[PinKey]float64
	coldEpochs int

	result  *core.Result
	changed int // files spliced/retracted since the last Relearn
}

// NewSession starts an empty session learning against seed with the
// given pipeline configuration (solver knobs, workers, metrics, log).
func NewSession(seed *spec.Spec, cfg core.Config) *Session {
	return &Session{
		seed:  seed,
		cfg:   cfg,
		files: make(map[string]*fileState),
		cache: constraints.NewFlowCache(),
		pins:  make(map[PinKey]float64),
	}
}

// Seed returns the session's seed specification.
func (s *Session) Seed() *spec.Spec {
	return s.seed
}

// Len returns the number of files in the session.
func (s *Session) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.files)
}

// Files returns the session's file names in sorted order — the union
// order Relearn uses.
func (s *Session) Files() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sortedNames()
}

func (s *Session) sortedNames() []string {
	names := make([]string, 0, len(s.files))
	for n := range s.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FileHash returns the sha256 of the named file's source text and
// whether the session holds that file with a recorded content hash.
func (s *Session) FileHash(name string) ([32]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fs := s.files[name]
	if fs == nil || !fs.hasContent {
		return [32]byte{}, false
	}
	return fs.contentHash, true
}

// EncodedGraph returns the binary encoding of the named file's graph,
// or nil when the file is not in the session. The returned slice must
// not be modified.
func (s *Session) EncodedGraph(name string) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fs := s.files[name]; fs != nil {
		return fs.enc
	}
	return nil
}

// Retract removes a file from the session's corpus, reporting whether
// it was present. The next Relearn re-learns without it.
func (s *Session) Retract(name string) bool {
	t0 := time.Now()
	s.mu.Lock()
	_, ok := s.files[name]
	if ok {
		delete(s.files, name)
		s.changed++
	}
	s.mu.Unlock()
	s.cfg.Metrics.ObserveDuration(obs.StageIncrRetract, time.Since(t0))
	return ok
}

// Splice inserts or replaces a file's propagation graph. The graph is
// owned by the session afterwards and must not be mutated by the
// caller. A splice whose encoded bytes equal the resident file's is a
// no-op (the file is not marked changed).
func (s *Session) Splice(name string, g *propgraph.Graph) {
	t0 := time.Now()
	enc := g.AppendBinary(nil)
	s.mu.Lock()
	if old := s.files[name]; old != nil && bytesEqual(old.enc, enc) {
		s.mu.Unlock()
		s.cfg.Metrics.ObserveDuration(obs.StageIncrSplice, time.Since(t0))
		return
	}
	s.files[name] = &fileState{enc: enc, graph: g}
	s.changed++
	s.mu.Unlock()
	s.cfg.Metrics.ObserveDuration(obs.StageIncrSplice, time.Since(t0))
}

// SpliceSource analyzes one source file through the standard front-end
// and splices the resulting graph, recording the content hash so a
// later corpus diff can skip it without re-analysis. An unchanged
// content hash short-circuits before parsing.
func (s *Session) SpliceSource(name, source string) {
	h := sha256.Sum256([]byte(source))
	s.mu.Lock()
	if old := s.files[name]; old != nil && old.hasContent && old.contentHash == h {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()

	t0 := time.Now()
	fe := core.AnalyzeFiles(map[string]string{name: source}, core.Config{
		Workers: 1, Cache: s.cfg.Cache, Metrics: s.cfg.Metrics, Log: s.cfg.Log,
	})
	g := fe.Graphs[0]
	enc := g.AppendBinary(nil)
	s.mu.Lock()
	if old := s.files[name]; old == nil || !bytesEqual(old.enc, enc) {
		s.changed++
	}
	s.files[name] = &fileState{contentHash: h, hasContent: true, enc: enc, graph: g}
	s.mu.Unlock()
	s.cfg.Metrics.ObserveDuration(obs.StageIncrSplice, time.Since(t0))
}

// Pin records a feedback verdict: the (rep, role) variable is pinned to
// val (1 accepts the role, 0 rejects it) as a hard constraint in every
// later solve. Re-pinning overwrites.
func (s *Session) Pin(rep string, role propgraph.Role, val float64) {
	s.mu.Lock()
	s.pins[PinKey{Rep: rep, Role: role}] = val
	s.mu.Unlock()
}

// Unpin removes a feedback pin, reporting whether it existed.
func (s *Session) Unpin(rep string, role propgraph.Role) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.pins[PinKey{Rep: rep, Role: role}]; !ok {
		return false
	}
	delete(s.pins, PinKey{Rep: rep, Role: role})
	return true
}

// Pins returns the number of active feedback pins.
func (s *Session) Pins() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pins)
}

// Result returns the outcome of the last Relearn, or nil.
func (s *Session) Result() *core.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.result
}

// RelearnStats reports what one Relearn call reused.
type RelearnStats struct {
	// Files is the corpus size; FilesChanged the splices/retracts since
	// the previous Relearn. Delta reports the constraint-block reuse.
	Files        int
	FilesChanged int
	Delta        constraints.DeltaStats
	// WarmStarted reports that the solve resumed from a previous
	// solution; EpochsSaved is the saving against the session's last
	// cold solve (0 when cold or when the warm solve was not faster).
	WarmStarted bool
	EpochsSaved int
}

// Relearn re-runs inference over the session's current file set and
// returns the result. The union is rebuilt from the per-file graphs
// (sorted name order — byte-identical to a from-scratch run), the
// constraint system is built delta-aware, feedback pins are applied as
// hard constraints, and the solve warm-starts from the previous
// solution when one exists.
func (s *Session) Relearn() (*core.Result, RelearnStats) {
	s.mu.Lock()
	defer s.mu.Unlock()

	var st RelearnStats
	st.Files = len(s.files)
	st.FilesChanged = s.changed

	// Union + delta-aware constraint build.
	t0 := time.Now()
	names := s.sortedNames()
	graphs := make([]*propgraph.Graph, len(names))
	spans := make([]constraints.Span, len(names))
	at := 0
	for i, n := range names {
		fs := s.files[n]
		graphs[i] = fs.graph
		spans[i] = constraints.Span{
			File: n,
			Lo:   at,
			Hi:   at + len(fs.graph.Events),
			Hash: sha256.Sum256(fs.enc),
		}
		at = spans[i].Hi
	}
	union := propgraph.Union(graphs...)
	copts := s.cfg.Constraints
	copts.Metrics = s.cfg.Metrics
	if copts.Workers == 0 {
		copts.Workers = s.cfg.Workers
	}
	sys, delta := constraints.BuildIncremental(union, s.seed, copts, spans, s.cache)
	st.Delta = delta

	// Feedback pins become hard constraints. A pin whose representation
	// has no variable in the current system is held dormant — it
	// re-applies as soon as the corpus grows the variable.
	pinned := 0
	for k, val := range s.pins {
		if id := sys.VarID(k.Rep, k.Role); id >= 0 {
			sys.Problem.Pin(id, val)
			pinned++
		}
	}
	s.cfg.Metrics.ObserveDuration(obs.StageIncrRebuild, time.Since(t0))
	s.cfg.Metrics.Set(obs.GaugeFeedbackPinnedVars, float64(pinned))

	// Warm start: the previous solution translated through (rep, role).
	// Variables new to this system (or whose representation vanished)
	// start at zero, exactly like a cold solve would start them. Warm
	// solves also get a plateau stop — starting at (or near) the
	// previous optimum, the best objective goes flat almost immediately
	// on a lightly-mutated corpus, and the patience window is what turns
	// that flatness into saved epochs. Cold solves keep the full budget.
	t0 = time.Now()
	cfg := s.cfg
	if s.prev != nil {
		warm := make([]float64, sys.Problem.NumVars)
		for i, v := range sys.Vars {
			warm[i] = s.prev[PinKey{Rep: v.Rep, Role: v.Role}]
		}
		cfg.Solver.WarmStart = warm
		if cfg.Solver.Patience == 0 {
			cfg.Solver.Patience = warmPatience
		}
		st.WarmStarted = true
	}
	res := core.LearnPrepared(union, sys, cfg)
	s.cfg.Metrics.ObserveDuration(obs.StageIncrResolve, time.Since(t0))

	// Record the solution for the next warm start and the epoch baseline.
	sol := make(map[PinKey]float64, len(sys.Vars))
	for i, v := range sys.Vars {
		sol[PinKey{Rep: v.Rep, Role: v.Role}] = res.Solution[i]
	}
	s.prev = sol
	if st.WarmStarted {
		if saved := s.coldEpochs - res.SolverEpochs; saved > 0 {
			st.EpochsSaved = saved
		}
	} else {
		s.coldEpochs = res.SolverEpochs
	}
	s.cfg.Metrics.Set(obs.GaugeWarmEpochsSaved, float64(st.EpochsSaved))
	s.cfg.Metrics.Set(obs.GaugeIncrFiles, float64(st.Files))
	s.cfg.Metrics.Set(obs.GaugeIncrFilesChanged, float64(st.FilesChanged))
	s.cfg.Log.Log("incr.relearn", "files", st.Files, "changed", st.FilesChanged,
		"spans_reused", delta.SpansReused, "warm", st.WarmStarted,
		"epochs", res.SolverEpochs, "epochs_saved", st.EpochsSaved)

	s.result = res
	s.changed = 0
	return res, st
}

// LearnedSpec returns the merged (seed + learned) specification of the
// last Relearn, or nil before the first.
func (s *Session) LearnedSpec() *spec.Spec {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.result == nil {
		return nil
	}
	return s.result.LearnedSpec(s.seed)
}

// knobs returns the learning parameters that must match for a restored
// session to be reusable.
func (s *Session) knobs() sessionKnobs {
	c := s.cfg.Constraints.C
	if c == 0 {
		c = 0.75
	}
	lambda := s.cfg.Constraints.Lambda
	if lambda == 0 {
		lambda = 0.1
	}
	threshold := s.cfg.Threshold
	if threshold == 0 {
		threshold = 0.1
	}
	decay := s.cfg.BackoffDecay
	if decay == 0 {
		decay = 0.8
	}
	cutoff := s.cfg.Constraints.BackoffCutoff
	if cutoff == 0 {
		cutoff = 5
	}
	maxComp := s.cfg.Constraints.MaxComponent
	if maxComp == 0 {
		maxComp = 50000
	}
	return sessionKnobs{C: c, Lambda: lambda, Threshold: threshold,
		Decay: decay, Cutoff: cutoff, MaxComponent: maxComp}
}

// Score returns the last solve's score of a (rep, role) variable; ok is
// false before the first Relearn or when the variable does not exist.
func (s *Session) Score(rep string, role propgraph.Role) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.prev == nil {
		return 0, false
	}
	v, ok := s.prev[PinKey{Rep: rep, Role: role}]
	return v, ok
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
