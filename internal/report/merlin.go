package report

import (
	"strings"
	"time"

	"seldon/internal/core"
	"seldon/internal/corpus"
	"seldon/internal/merlin"
	"seldon/internal/propgraph"
)

// MerlinBudget is the factor budget standing in for the paper's 10-hour
// wall-clock timeout: runs that exceed it are reported as timed out.
const MerlinBudget = 250000

// smallApp returns the first project of the corpus (the paper's Flask
// API-sized repository) as name→source.
func (e *Experiments) smallApp() map[string]string {
	projects := e.Corpus().Projects()
	return e.Corpus().ProjectFiles(projects[0])
}

// largeApp returns several projects merged into one repository (the
// paper's Flask-Admin-sized application, ~10x the small app).
func (e *Experiments) largeApp() map[string]string {
	out := make(map[string]string)
	projects := e.Corpus().Projects()
	n := len(projects)
	if n > 24 {
		n = 24
	}
	for _, p := range projects[:n] {
		for name, src := range e.Corpus().ProjectFiles(p) {
			out[name] = src
		}
	}
	return out
}

func countLines(files map[string]string) int {
	n := 0
	for _, src := range files {
		n += strings.Count(src, "\n")
	}
	return n
}

// runMerlin executes one Merlin configuration.
func (e *Experiments) runMerlin(files map[string]string, collapsed bool) (*merlin.Result, Table2Row) {
	g := e.unionOf(files)
	graphType := "Uncollapsed"
	if collapsed {
		g = g.Collapse()
		graphType = "Collapsed"
	}
	res, err := merlin.Infer(g, e.Seed(), merlin.Options{MaxFactors: MerlinBudget})
	row := Table2Row{GraphType: graphType, Lines: countLines(files)}
	if res != nil {
		row.Candidates = res.Candidates
		row.Factors = res.NumFactors
		row.Time = res.InferenceTime
	}
	if err != nil {
		row.TimedOut = true
		row.Factors = MerlinBudget
	}
	return res, row
}

// RunTable2 reproduces the Merlin scalability comparison: a small and a
// large application, each with collapsed and uncollapsed graphs.
func (e *Experiments) RunTable2() Table2 {
	small := e.smallApp()
	large := e.largeApp()
	var t Table2
	for _, cfg := range []struct {
		name      string
		files     map[string]string
		collapsed bool
	}{
		{"small-app", small, true},
		{"small-app", small, false},
		{"large-app", large, true},
		{"large-app", large, false},
	} {
		_, row := e.runMerlin(cfg.files, cfg.collapsed)
		row.App = cfg.name
		t.Rows = append(t.Rows, row)
	}
	// Seldon on the large app, for the "< 20 seconds" comparison.
	start := time.Now()
	cfg := e.LearnCfg
	cfg.Constraints.BackoffCutoff = 2
	core.LearnFromSources(large, e.Seed(), cfg)
	t.SeldonLargeTime = time.Since(start)
	return t
}

// merlinPrecisionRows judges Merlin predictions against the truth oracle.
func merlinPrecisionRows(preds []merlin.Prediction, truth *corpus.Truth) []MerlinPrecisionRow {
	rows := make([]MerlinPrecisionRow, 0, 3)
	for _, role := range propgraph.Roles() {
		var n, correct int
		for _, p := range preds {
			if p.Role != role {
				continue
			}
			n++
			if truth.HasRole(p.Rep, role) {
				correct++
			}
		}
		row := MerlinPrecisionRow{Role: role, Number: n}
		if n > 0 {
			row.Precision = float64(correct) / float64(n)
		}
		rows = append(rows, row)
	}
	return rows
}

// RunTable3 evaluates Merlin on the small app at 95% confidence.
func (e *Experiments) RunTable3() MerlinPrecision {
	small := e.smallApp()
	truth := e.Corpus().Truth
	out := MerlinPrecision{Title: "Table 3: Merlin on the small app, selecting roles with 95% confidence."}
	if res, row := e.runMerlin(small, true); !row.TimedOut {
		out.Collapsed = merlinPrecisionRows(unseeded(res.Predict(0.95), e), truth)
	}
	if res, row := e.runMerlin(small, false); !row.TimedOut {
		out.Uncollapsed = merlinPrecisionRows(unseeded(res.Predict(0.95), e), truth)
	}
	return out
}

// RunTable4 evaluates Merlin's top-5 predictions per role.
func (e *Experiments) RunTable4() MerlinPrecision {
	small := e.smallApp()
	truth := e.Corpus().Truth
	out := MerlinPrecision{Title: "Table 4: Merlin on the small app, top-5 predictions per role."}
	run := func(collapsed bool) []MerlinPrecisionRow {
		res, row := e.runMerlin(small, collapsed)
		if row.TimedOut {
			return nil
		}
		var preds []merlin.Prediction
		for _, role := range propgraph.Roles() {
			preds = append(preds, unseeded(res.TopK(role, 5+seedCount(e, res, role)), e)...)
		}
		return merlinPrecisionRows(capPerRole(preds, 5), truth)
	}
	out.Collapsed = run(true)
	out.Uncollapsed = run(false)
	return out
}

// unseeded drops predictions whose rep is already in the seed — the paper
// evaluates newly inferred specifications.
func unseeded(preds []merlin.Prediction, e *Experiments) []merlin.Prediction {
	var out []merlin.Prediction
	for _, p := range preds {
		if !e.Seed().RolesOf(p.Rep).Has(p.Role) {
			out = append(out, p)
		}
	}
	return out
}

// seedCount estimates how many of a role's top predictions are seeded, so
// TopK can over-fetch before filtering.
func seedCount(e *Experiments, res *merlin.Result, role propgraph.Role) int {
	n := 0
	for _, p := range res.TopK(role, 50) {
		if e.Seed().RolesOf(p.Rep).Has(p.Role) {
			n++
		}
	}
	return n
}

func capPerRole(preds []merlin.Prediction, k int) []merlin.Prediction {
	count := make(map[propgraph.Role]int)
	var out []merlin.Prediction
	for _, p := range preds {
		if count[p.Role] < k {
			count[p.Role]++
			out = append(out, p)
		}
	}
	return out
}
