package report

import (
	"strconv"

	"seldon/internal/corpus"
	"seldon/internal/eval"
	"seldon/internal/taint"
)

// ArgSensitivity compares the plain seed specification with the
// argument-sensitive variant (paper §3.3 future work): restricting each
// sink to its dangerous argument position should remove the Table 6
// "flows into wrong parameter" false positives without losing true
// vulnerabilities.
type ArgSensitivity struct {
	PlainReports       int
	PlainWrongParam    int
	ArgAwareReports    int
	ArgAwareWrongParam int
	TrueVulnPlain      int
	TrueVulnArgAware   int
}

// RunArgSensitivity classifies every report of both runs (no sampling —
// the point is the exact wrong-parameter count).
func (e *Experiments) RunArgSensitivity() ArgSensitivity {
	g := e.Union()
	truth := e.Corpus().Truth
	flows := e.Corpus().Flows

	count := func(reports []taint.Report) (total, wrongParam, trueVuln int) {
		total = len(reports)
		for i := range reports {
			switch eval.ClassifyReport(&reports[i], flows, truth) {
			case eval.WrongParameter:
				wrongParam++
			case eval.TrueVulnerability:
				trueVuln++
			}
		}
		return total, wrongParam, trueVuln
	}

	var out ArgSensitivity
	out.PlainReports, out.PlainWrongParam, out.TrueVulnPlain = count(taint.Analyze(g, e.Seed()))
	out.ArgAwareReports, out.ArgAwareWrongParam, out.TrueVulnArgAware =
		count(taint.Analyze(g, corpus.ArgSensitiveSeed()))
	return out
}

func (a ArgSensitivity) Render() string {
	tb := &table{title: "Extension: argument-sensitive sinks (§3.3 future work).",
		cols: []string{"Metric", "Plain seed", "Arg-sensitive seed"}}
	tb.add("Reports", strconv.Itoa(a.PlainReports), strconv.Itoa(a.ArgAwareReports))
	tb.add("Wrong-parameter reports", strconv.Itoa(a.PlainWrongParam), strconv.Itoa(a.ArgAwareWrongParam))
	tb.add("True vulnerabilities", strconv.Itoa(a.TrueVulnPlain), strconv.Itoa(a.TrueVulnArgAware))
	return tb.String()
}
