// Package report drives the paper's experiments end-to-end and renders
// each table and figure of the evaluation section (§7) over the synthetic
// corpus. Every experiment returns structured data plus a Render method,
// so the same code backs cmd/benchtables, the examples, and the
// testing.B benchmarks.
package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"seldon/internal/core"
	"seldon/internal/corpus"
	"seldon/internal/dataflow"
	"seldon/internal/propgraph"
	"seldon/internal/pyparse"
	"seldon/internal/spec"
	"seldon/internal/taint"
)

// Experiments carries the shared state of one evaluation run: the
// generated corpus, its per-file propagation graphs, the global graph,
// and the Seldon learning result, all computed lazily and cached.
type Experiments struct {
	CorpusCfg corpus.Config
	LearnCfg  core.Config
	SampleN   int   // per-role precision sample size (paper: 50)
	ReportN   int   // taint-report sample size (paper: 25)
	EvalSeed  int64 // RNG seed for sampling

	corpus  *corpus.Corpus
	seed    *spec.Spec
	graphs  map[string]*propgraph.Graph
	union   *propgraph.Graph
	learned *core.Result
}

// New prepares an experiment context (nothing is computed yet).
func New(cfg corpus.Config) *Experiments {
	return &Experiments{CorpusCfg: cfg, SampleN: 50, ReportN: 25, EvalSeed: 1}
}

// Corpus returns the generated corpus.
func (e *Experiments) Corpus() *corpus.Corpus {
	if e.corpus == nil {
		e.corpus = corpus.Generate(e.CorpusCfg)
	}
	return e.corpus
}

// Seed returns the experiment seed specification.
func (e *Experiments) Seed() *spec.Spec {
	if e.seed == nil {
		e.seed = corpus.ExperimentSeed()
	}
	return e.seed
}

// Graphs returns per-file propagation graphs.
func (e *Experiments) Graphs() map[string]*propgraph.Graph {
	if e.graphs == nil {
		e.graphs = make(map[string]*propgraph.Graph)
		for _, f := range e.Corpus().Files {
			mod, _ := pyparse.Parse(f.Name, f.Source)
			e.graphs[f.Name] = dataflow.AnalyzeModule(mod, dataflow.Options{})
		}
	}
	return e.graphs
}

// Union returns the global propagation graph of the corpus.
func (e *Experiments) Union() *propgraph.Graph {
	if e.union == nil {
		graphs := e.Graphs()
		names := make([]string, 0, len(graphs))
		for n := range graphs {
			names = append(names, n)
		}
		sort.Strings(names)
		ordered := make([]*propgraph.Graph, 0, len(names))
		for _, n := range names {
			ordered = append(ordered, graphs[n])
		}
		e.union = propgraph.Union(ordered...)
	}
	return e.union
}

// Learned returns the cached Seldon learning result over the full corpus.
func (e *Experiments) Learned() *core.Result {
	if e.learned == nil {
		e.learned = core.Learn(e.Union(), e.Seed(), e.LearnCfg)
	}
	return e.learned
}

// unionOf builds the global graph for a subset of files (by name).
func (e *Experiments) unionOf(files map[string]string) *propgraph.Graph {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	graphs := e.Graphs()
	ordered := make([]*propgraph.Graph, 0, len(names))
	for _, n := range names {
		if g, ok := graphs[n]; ok {
			ordered = append(ordered, g)
		}
	}
	return propgraph.Union(ordered...)
}

// table is a minimal text-table renderer.
type table struct {
	title string
	cols  []string
	rows  [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.cols))
	for i, c := range t.cols {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.cols)
	sep := make([]string, len(t.cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fmtDuration(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// roleName gives the plural heading used in the paper's tables.
func roleName(r propgraph.Role) string {
	switch r {
	case propgraph.Source:
		return "Sources"
	case propgraph.Sanitizer:
		return "Sanitizers"
	case propgraph.Sink:
		return "Sinks"
	}
	return r.String()
}

// seedAndLearnedReports runs the taint analyzer over the whole corpus with
// the seed spec and with the learned spec.
func (e *Experiments) seedAndLearnedReports() (seedReports, learnedReports []taint.Report) {
	g := e.Union()
	seedReports = taint.Analyze(g, e.Seed())
	learnedReports = taint.Analyze(g, e.Learned().LearnedSpec(e.Seed()))
	return seedReports, learnedReports
}
