package report

import (
	"strings"
	"testing"

	"seldon/internal/corpus"
	"seldon/internal/eval"
	"seldon/internal/propgraph"
)

// smallExperiments builds a fast experiment context shared by tests.
func smallExperiments() *Experiments {
	e := New(corpus.Config{Files: 120, Seed: 1})
	e.ReportN = 25
	return e
}

func TestTable1(t *testing.T) {
	e := smallExperiments()
	t1 := e.RunTable1()
	if t1.Candidates == 0 || t1.Constraints == 0 || t1.SourceFiles != 120 {
		t.Errorf("table1 = %+v", t1)
	}
	if t1.AvgBackoff < 1 || t1.AvgBackoff > 4 {
		t.Errorf("avg backoff = %v", t1.AvgBackoff)
	}
	out := t1.Render()
	if !strings.Contains(out, "# Candidates") {
		t.Errorf("render:\n%s", out)
	}
}

func TestTable2MerlinScalability(t *testing.T) {
	e := smallExperiments()
	t2 := e.RunTable2()
	if len(t2.Rows) != 4 {
		t.Fatalf("rows = %d", len(t2.Rows))
	}
	small, large := t2.Rows[0], t2.Rows[2]
	if small.App == large.App {
		t.Error("small and large app identical")
	}
	if large.Lines <= small.Lines {
		t.Errorf("large app (%d lines) not larger than small (%d)", large.Lines, small.Lines)
	}
	// The shape result: the large app needs far more factors (or times
	// out), reproducing Merlin's scalability wall.
	if !large.TimedOut && large.Factors < 4*small.Factors {
		t.Errorf("factors small=%d large=%d: no superlinear growth", small.Factors, large.Factors)
	}
	if strings.Contains(t2.Render(), "NaN") {
		t.Error("render contains NaN")
	}
}

func TestTables3And4(t *testing.T) {
	e := smallExperiments()
	t3 := e.RunTable3()
	if len(t3.Collapsed) != 3 || len(t3.Uncollapsed) != 3 {
		t.Fatalf("table3 = %+v", t3)
	}
	t4 := e.RunTable4()
	for _, row := range t4.Collapsed {
		if row.Number > 5 {
			t.Errorf("top-5 row has %d predictions", row.Number)
		}
	}
	_ = t3.Render()
	_ = t4.Render()
}

func TestTable5SeldonPrecision(t *testing.T) {
	e := smallExperiments()
	t5 := e.RunTable5()
	if len(t5.Rows) != 3 {
		t.Fatalf("rows = %d", len(t5.Rows))
	}
	if t5.OverallPredicted == 0 {
		t.Error("nothing predicted")
	}
	// Only a small fraction of candidates carries a role (paper: 3.27%).
	frac := float64(t5.OverallPredicted) / float64(t5.Candidates)
	if frac > 0.6 {
		t.Errorf("predicted fraction = %v, implausibly high", frac)
	}
	if t5.OverallPrecision < 0.4 {
		t.Errorf("overall precision = %v, want >= 0.4 (paper: 67%%)", t5.OverallPrecision)
	}
	_ = t5.Render()
}

func TestTable6And7(t *testing.T) {
	e := smallExperiments()
	t6 := e.RunTable6()
	seedTotal, infTotal := 0, 0
	for _, c := range t6.Seed {
		seedTotal += c
	}
	for _, c := range t6.Inferred {
		infTotal += c
	}
	if seedTotal == 0 || infTotal == 0 {
		t.Fatalf("table6 empty: %+v", t6)
	}
	// The headline claim: the inferred spec removes most missing-sanitizer
	// false positives relative to the seed spec.
	if t6.Seed[eval.MissingSanitizer] > 2 &&
		t6.Inferred[eval.MissingSanitizer] >= t6.Seed[eval.MissingSanitizer] {
		t.Errorf("missing-sanitizer: seed %d, inferred %d — inferred should be lower",
			t6.Seed[eval.MissingSanitizer], t6.Inferred[eval.MissingSanitizer])
	}

	t7 := e.RunTable7()
	if t7.Inferred.Reports <= t7.Seed.Reports {
		t.Errorf("inferred reports (%d) should exceed seed reports (%d)",
			t7.Inferred.Reports, t7.Seed.Reports)
	}
	// Learned sanitizers (including mislabeled pass-throughs) can suppress
	// individual seed reports, so project coverage may dip slightly even
	// as total reports rise; only a large drop would signal a bug.
	if t7.Inferred.Projects < t7.Seed.Projects-3 {
		t.Errorf("projects: seed %d inferred %d", t7.Seed.Projects, t7.Inferred.Projects)
	}
	_ = t6.Render()
	_ = t7.Render()
}

func TestFig10Scaling(t *testing.T) {
	e := smallExperiments()
	fig := e.RunFig10([]int{40, 80, 160})
	if len(fig.Points) != 3 {
		t.Fatalf("points = %d", len(fig.Points))
	}
	// Constraint count must grow roughly linearly with file count:
	// quadrupling files must not grow constraints by more than ~8x.
	c0, c2 := fig.Points[0].Constraints, fig.Points[2].Constraints
	if c2 > 8*c0 {
		t.Errorf("constraints %d -> %d: superlinear growth", c0, c2)
	}
	if c2 <= c0 {
		t.Errorf("constraints did not grow: %d -> %d", c0, c2)
	}
	_ = fig.Render()
}

func TestFig11Curves(t *testing.T) {
	e := smallExperiments()
	fig := e.RunFig11()
	for _, role := range propgraph.Roles() {
		curve := fig.Curves[role]
		for i := 1; i < len(curve); i++ {
			if curve[i].Score > curve[i-1].Score {
				t.Errorf("%v curve not sorted", role)
			}
		}
	}
	_ = fig.Render()
}

func TestQ5CrossProject(t *testing.T) {
	e := smallExperiments()
	q5 := e.RunQ5(3)
	if len(q5.Projects) != 3 {
		t.Fatalf("projects = %d", len(q5.Projects))
	}
	// The shape claim: projecting the full-corpus specification onto a
	// project is at least as good as learning on the project alone, and
	// discovers new true roles somewhere.
	newRoles := 0
	for _, p := range q5.Projects {
		newRoles += p.NewTrueRoles
	}
	if newRoles == 0 {
		t.Error("full-corpus learning found no new true roles on sampled projects")
	}
	_ = q5.Render()
}

func TestQ6SeedAblation(t *testing.T) {
	e := smallExperiments()
	q6 := e.RunQ6()
	if len(q6.Rows) != 3 {
		t.Fatalf("rows = %d", len(q6.Rows))
	}
	full, half, empty := q6.Rows[0], q6.Rows[1], q6.Rows[2]
	if empty.Predicted != 0 {
		t.Errorf("empty seed predicted %d specs, want 0", empty.Predicted)
	}
	// The paper's claim is about precision: halving the seed reduces it
	// (by ~14pp on the real corpus). Allow slack for the small test corpus.
	if half.Precision > full.Precision+0.1 {
		t.Errorf("half-seed precision (%v) above full-seed (%v)", half.Precision, full.Precision)
	}
	if half.Entries >= full.Entries {
		t.Errorf("half seed has %d entries, full %d", half.Entries, full.Entries)
	}
	_ = q6.Render()
}

func TestQ7Categories(t *testing.T) {
	e := smallExperiments()
	q7 := e.RunQ7()
	if q7.Total == 0 {
		t.Error("no confirmed vulnerabilities")
	}
	sum := 0
	for _, n := range q7.ByCategory {
		sum += n
	}
	if sum != q7.Total {
		t.Errorf("category sum %d != total %d", sum, q7.Total)
	}
	_ = q7.Render()
}

func TestSampleTables(t *testing.T) {
	e := smallExperiments()
	for _, role := range propgraph.Roles() {
		out := e.RunSampleTable(role, 10)
		if !strings.Contains(out, "Score") {
			t.Errorf("sample table for %v malformed:\n%s", role, out)
		}
	}
}

func TestArgSensitivity(t *testing.T) {
	e := smallExperiments()
	a := e.RunArgSensitivity()
	if a.PlainWrongParam == 0 {
		t.Skip("no wrong-parameter flows in this corpus draw")
	}
	if a.ArgAwareWrongParam != 0 {
		t.Errorf("arg-sensitive seed left %d wrong-parameter reports", a.ArgAwareWrongParam)
	}
	if a.TrueVulnArgAware < a.TrueVulnPlain {
		t.Errorf("arg-sensitivity lost true vulnerabilities: %d -> %d",
			a.TrueVulnPlain, a.TrueVulnArgAware)
	}
	_ = a.Render()
}

func TestCollapsedLearning(t *testing.T) {
	e := smallExperiments()
	c := e.RunCollapsedLearning()
	if c.CollapsedEvents >= c.UncollapsedEvents {
		t.Errorf("collapse did not shrink the graph: %d -> %d",
			c.UncollapsedEvents, c.CollapsedEvents)
	}
	if c.CollapsedSpecs == 0 {
		t.Error("collapsed graph learned nothing — §6.4 says it is usable for learning")
	}
	_ = c.Render()
}

func TestMerlinSweepSuperlinear(t *testing.T) {
	e := smallExperiments()
	sweep := e.RunMerlinSweep([]int{24, 96}, true)
	if len(sweep.Points) != 2 {
		t.Fatalf("points = %d", len(sweep.Points))
	}
	small, large := sweep.Points[0], sweep.Points[1]
	// Factor growth must outpace file growth (4x files -> >6x factors),
	// unless the larger run already blew the budget, which proves the
	// point even harder.
	if !large.MerlinTimedOut && large.MerlinFactors < 6*small.MerlinFactors {
		t.Errorf("factors grew %d -> %d for 4x files; expected superlinear",
			small.MerlinFactors, large.MerlinFactors)
	}
	_ = sweep.Render()
}
