package report

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"seldon/internal/core"
	"seldon/internal/corpus"
	"seldon/internal/dataflow"
	"seldon/internal/merlin"
	"seldon/internal/propgraph"
	"seldon/internal/pyparse"
)

// MerlinSweepPoint measures Merlin and Seldon on the same application
// size.
type MerlinSweepPoint struct {
	Files          int
	MerlinFactors  int
	MerlinTime     time.Duration
	MerlinTimedOut bool
	SeldonTime     time.Duration
}

// MerlinSweep is the anti-Fig.10: Merlin's cost curve versus Seldon's as
// application size grows, the quantitative version of Table 2's story.
type MerlinSweep struct {
	Points    []MerlinSweepPoint
	Collapsed bool
}

// RunMerlinSweep grows an application one project at a time and measures
// both systems. Collapsed selects Merlin's graph granularity.
func (e *Experiments) RunMerlinSweep(sizes []int, collapsed bool) MerlinSweep {
	out := MerlinSweep{Collapsed: collapsed}
	for _, files := range sizes {
		cfg := e.CorpusCfg
		cfg.Files = files
		c := corpus.Generate(cfg)
		g := unionOfCorpus(c)
		mg := g
		if collapsed {
			mg = g.Collapse()
		}
		pt := MerlinSweepPoint{Files: files}
		res, err := merlin.Infer(mg, e.Seed(), merlin.Options{MaxFactors: MerlinBudget})
		if err != nil {
			pt.MerlinTimedOut = true
			pt.MerlinFactors = MerlinBudget
		} else {
			pt.MerlinFactors = res.NumFactors
			pt.MerlinTime = res.InferenceTime
		}
		lcfg := e.LearnCfg
		lcfg.Constraints.BackoffCutoff = 2
		pt.SeldonTime = core.Learn(g, e.Seed(), lcfg).InferenceTime
		out.Points = append(out.Points, pt)
	}
	return out
}

func unionOfCorpus(c *corpus.Corpus) *propgraph.Graph {
	files := c.FileMap()
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	var graphs []*propgraph.Graph
	for _, n := range names {
		mod, _ := pyparse.Parse(n, files[n])
		graphs = append(graphs, dataflow.AnalyzeModule(mod, dataflow.Options{}))
	}
	return propgraph.Union(graphs...)
}

func (m MerlinSweep) Render() string {
	kind := "uncollapsed"
	if m.Collapsed {
		kind = "collapsed"
	}
	tb := &table{title: fmt.Sprintf("Merlin scaling sweep (%s graphs) vs Seldon.", kind),
		cols: []string{"Files", "Merlin factors", "Merlin time", "Seldon time"}}
	for _, p := range m.Points {
		mt := fmtDuration(p.MerlinTime)
		if p.MerlinTimedOut {
			mt = "> budget (timeout)"
		}
		tb.add(strconv.Itoa(p.Files), strconv.Itoa(p.MerlinFactors), mt,
			fmtDuration(p.SeldonTime))
	}
	return tb.String()
}
