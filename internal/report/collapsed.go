package report

import (
	"strconv"

	"seldon/internal/core"
)

// CollapsedLearning compares Seldon learning on the uncollapsed graph
// (its native granularity) against the Merlin-style collapsed graph
// (§6.4: contraction is unsuitable for taint analysis but usable for
// specification learning — at the cost of spurious flows like Fig. 8).
type CollapsedLearning struct {
	UncollapsedSpecs     int
	UncollapsedPrecision float64
	CollapsedSpecs       int
	CollapsedPrecision   float64
	UncollapsedEvents    int
	CollapsedEvents      int
}

// RunCollapsedLearning learns on both graph granularities.
func (e *Experiments) RunCollapsedLearning() CollapsedLearning {
	truth := e.Corpus().Truth
	var out CollapsedLearning

	res := e.Learned()
	entries := res.LearnedEntries(e.Seed())
	out.UncollapsedSpecs = len(entries)
	out.UncollapsedPrecision = precisionOf(entries, truth)
	out.UncollapsedEvents = len(e.Union().Events)

	collapsed := e.Union().Collapse()
	cres := core.Learn(collapsed, e.Seed(), e.LearnCfg)
	centries := cres.LearnedEntries(e.Seed())
	out.CollapsedSpecs = len(centries)
	out.CollapsedPrecision = precisionOf(centries, truth)
	out.CollapsedEvents = len(collapsed.Events)
	return out
}

func (c CollapsedLearning) Render() string {
	tb := &table{title: "Ablation: learning on collapsed vs uncollapsed propagation graphs (§6.4).",
		cols: []string{"Graph", "Events", "Inferred specs", "Precision"}}
	tb.add("Uncollapsed", strconv.Itoa(c.UncollapsedEvents),
		strconv.Itoa(c.UncollapsedSpecs), pct(c.UncollapsedPrecision))
	tb.add("Collapsed", strconv.Itoa(c.CollapsedEvents),
		strconv.Itoa(c.CollapsedSpecs), pct(c.CollapsedPrecision))
	return tb.String()
}
