package report

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"seldon/internal/core"
	"seldon/internal/corpus"
	"seldon/internal/eval"
	"seldon/internal/propgraph"
	"seldon/internal/spec"
	"seldon/internal/taint"
)

// ---------------------------------------------------------------------------
// Table 1 — dataset statistics

// Table1 mirrors the paper's Table 1: candidates, average backoff options
// per event, constraints, and source files.
type Table1 struct {
	Candidates  int
	AvgBackoff  float64
	Constraints int
	SourceFiles int
}

// RunTable1 computes dataset statistics for the corpus.
func (e *Experiments) RunTable1() Table1 {
	res := e.Learned()
	st := res.Graph.ComputeStats()
	return Table1{
		Candidates:  len(res.System.EventInfos),
		AvgBackoff:  st.AvgBackoff,
		Constraints: len(res.System.Problem.Constraints),
		SourceFiles: len(e.Corpus().Files),
	}
}

func (t Table1) Render() string {
	tb := &table{title: "Table 1: Statistics on the applications in our evaluation.",
		cols: []string{"Statistic", "Value"}}
	tb.add("# Candidates", strconv.Itoa(t.Candidates))
	tb.add("Average # backoff options per event", fmt.Sprintf("%.2f", t.AvgBackoff))
	tb.add("# Constraints", strconv.Itoa(t.Constraints))
	tb.add("# Source files", strconv.Itoa(t.SourceFiles))
	return tb.String()
}

// ---------------------------------------------------------------------------
// Table 2 — Merlin scalability

// Table2Row is one (app, graph type) Merlin run.
type Table2Row struct {
	App        string
	Lines      int
	GraphType  string // "Collapsed" | "Uncollapsed"
	Candidates [3]int
	Factors    int
	Time       time.Duration
	TimedOut   bool // factor budget exceeded (the paper's "> 10h")
}

// Table2 compares Merlin on a small and a large application.
type Table2 struct {
	Rows []Table2Row
	// SeldonLargeTime is Seldon's time on the large app (the paper notes
	// "< 20 seconds" vs Merlin's timeout).
	SeldonLargeTime time.Duration
}

func (t Table2) Render() string {
	tb := &table{title: "Table 2: Statistics on specification learning with Merlin.",
		cols: []string{"Repository", "Lines", "Graph type", "Candidates (src/san/sink)", "Factors", "Inference Time"}}
	for _, r := range t.Rows {
		tm := fmtDuration(r.Time)
		if r.TimedOut {
			tm = "> budget (timeout)"
		}
		tb.add(r.App, strconv.Itoa(r.Lines), r.GraphType,
			fmt.Sprintf("%d/%d/%d", r.Candidates[0], r.Candidates[1], r.Candidates[2]),
			strconv.Itoa(r.Factors), tm)
	}
	return tb.String() + fmt.Sprintf("(Seldon handles the large app in %s.)\n", fmtDuration(t.SeldonLargeTime))
}

// ---------------------------------------------------------------------------
// Tables 3 & 4 — Merlin precision

// MerlinPrecisionRow is one role row of Table 3/4.
type MerlinPrecisionRow struct {
	Role      propgraph.Role
	Number    int
	Precision float64
}

// MerlinPrecision holds Table 3 (threshold) or Table 4 (top-k) results for
// both graph types.
type MerlinPrecision struct {
	Title       string
	Collapsed   []MerlinPrecisionRow
	Uncollapsed []MerlinPrecisionRow
}

func (t MerlinPrecision) Render() string {
	tb := &table{title: t.Title,
		cols: []string{"Role", "Collapsed #", "Collapsed Prec.", "Uncollapsed #", "Uncollapsed Prec."}}
	var totC, corC, totU, corU int
	for i := range t.Collapsed {
		c, u := t.Collapsed[i], t.Uncollapsed[i]
		tb.add(roleName(c.Role), strconv.Itoa(c.Number), pct(c.Precision),
			strconv.Itoa(u.Number), pct(u.Precision))
		totC += c.Number
		corC += int(c.Precision*float64(c.Number) + 0.5)
		totU += u.Number
		corU += int(u.Precision*float64(u.Number) + 0.5)
	}
	pc, pu := 0.0, 0.0
	if totC > 0 {
		pc = float64(corC) / float64(totC)
	}
	if totU > 0 {
		pu = float64(corU) / float64(totU)
	}
	tb.add("Any", strconv.Itoa(totC), pct(pc), strconv.Itoa(totU), pct(pu))
	return tb.String()
}

// ---------------------------------------------------------------------------
// Table 5 — Seldon predicted counts and precision

// Table5Row is one role row.
type Table5Row struct {
	Role       propgraph.Role
	Predicted  int
	Candidates int
	Precision  float64
}

// Table5 mirrors the paper's Table 5, extended with exact catalog recall
// (computable here because the corpus oracle is exact).
type Table5 struct {
	Rows             []Table5Row
	OverallPredicted int
	OverallPrecision float64
	Candidates       int
	Recall           eval.Recall
}

// RunTable5 learns over the full corpus and estimates precision with the
// paper's protocol (random sample of SampleN predictions per role).
func (e *Experiments) RunTable5() Table5 {
	res := e.Learned()
	entries := res.LearnedEntries(e.Seed())
	pr := eval.SamplePrecision(entries, e.Corpus().Truth, e.SampleN, e.EvalSeed)
	counts := res.PredictedCounts()
	nCand := len(res.System.EventInfos)
	var t Table5
	t.Candidates = nCand
	for _, role := range propgraph.Roles() {
		p := pr.PerRole[role]
		t.Rows = append(t.Rows, Table5Row{
			Role: role, Predicted: counts[role], Candidates: nCand,
			Precision: p.Precision(),
		})
		t.OverallPredicted += counts[role]
	}
	t.OverallPrecision = pr.Overall().Precision()
	t.Recall = eval.MeasureRecall(entries, corpus.LearnableReps())
	return t
}

func (t Table5) Render() string {
	tb := &table{title: "Table 5: Count and estimated precision of candidates predicted by Seldon.",
		cols: []string{"Role", "# Predicted / # Candidates", "Fraction", "Precision (Estimate)"}}
	for _, r := range t.Rows {
		tb.add(roleName(r.Role),
			fmt.Sprintf("%d / %d", r.Predicted, r.Candidates),
			pct(float64(r.Predicted)/float64(max(1, r.Candidates))),
			pct(r.Precision))
	}
	tb.add("Any", fmt.Sprintf("%d / %d", t.OverallPredicted, t.Candidates),
		pct(float64(t.OverallPredicted)/float64(max(1, t.Candidates))),
		pct(t.OverallPrecision))
	return tb.String() + fmt.Sprintf("(Catalog recall: %d/%d learnable roles found = %s.)\n",
		t.Recall.Found, t.Recall.Total, pct(t.Recall.Fraction()))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Table 6 — bug-report breakdown, seed vs inferred spec

// Table6 holds the sampled report categories for both specifications.
type Table6 struct {
	SampleSize int
	Seed       map[eval.Category]int
	Inferred   map[eval.Category]int
}

// RunTable6 samples ReportN reports from both taint runs and classifies
// them against the generated flow truth.
func (e *Experiments) RunTable6() Table6 {
	seedReports, learnedReports := e.seedAndLearnedReports()
	truth := e.Corpus().Truth
	flows := e.Corpus().Flows
	return Table6{
		SampleSize: e.ReportN,
		Seed:       eval.ClassifySample(seedReports, flows, truth, e.ReportN, e.EvalSeed),
		Inferred:   eval.ClassifySample(learnedReports, flows, truth, e.ReportN, e.EvalSeed),
	}
}

func (t Table6) Render() string {
	tb := &table{title: fmt.Sprintf("Table 6: Bug-finding with seed vs inferred specification (%d sampled reports each).", t.SampleSize),
		cols: []string{"Reason", "Seed spec", "Inferred spec"}}
	seedTotal, infTotal := 0, 0
	for _, c := range t.Seed {
		seedTotal += c
	}
	for _, c := range t.Inferred {
		infTotal += c
	}
	for _, cat := range eval.Categories() {
		s, i := "0%", "0%"
		if seedTotal > 0 {
			s = pct(float64(t.Seed[cat]) / float64(seedTotal))
		}
		if infTotal > 0 {
			i = pct(float64(t.Inferred[cat]) / float64(infTotal))
		}
		tb.add(string(cat), s, i)
	}
	return tb.String()
}

// ---------------------------------------------------------------------------
// Table 7 — report counts and estimated vulnerabilities

// Table7Column holds totals for one specification.
type Table7Column struct {
	Reports       int
	Projects      int
	EstimatedVuln int
}

// Table7 mirrors the paper's Table 7.
type Table7 struct {
	Seed     Table7Column
	Inferred Table7Column
}

// RunTable7 counts reports, affected projects, and the estimated true
// vulnerabilities (sampled true-positive rate scaled to all reports).
func (e *Experiments) RunTable7() Table7 {
	seedReports, learnedReports := e.seedAndLearnedReports()
	truth := e.Corpus().Truth
	flows := e.Corpus().Flows
	projectOf := make(map[string]string)
	for _, f := range e.Corpus().Files {
		projectOf[f.Name] = f.Project
	}
	column := func(reports []taint.Report) Table7Column {
		projects := make(map[string]bool)
		for i := range reports {
			projects[projectOf[reports[i].File]] = true
		}
		counts := eval.ClassifySample(reports, flows, truth, e.ReportN, e.EvalSeed)
		return Table7Column{
			Reports:       len(reports),
			Projects:      len(projects),
			EstimatedVuln: eval.EstimateTrueVulnerabilities(len(reports), counts),
		}
	}
	return Table7{Seed: column(seedReports), Inferred: column(learnedReports)}
}

func (t Table7) Render() string {
	tb := &table{title: "Table 7: Total number of reports and estimated vulnerabilities.",
		cols: []string{"Reason", "Seed spec", "Inferred spec"}}
	tb.add("Number of reports", strconv.Itoa(t.Seed.Reports), strconv.Itoa(t.Inferred.Reports))
	tb.add("Number of projects affected", strconv.Itoa(t.Seed.Projects), strconv.Itoa(t.Inferred.Projects))
	tb.add("Estimated vulnerabilities", strconv.Itoa(t.Seed.EstimatedVuln), strconv.Itoa(t.Inferred.EstimatedVuln))
	return tb.String()
}

// ---------------------------------------------------------------------------
// Figure 10 — inference time vs number of files

// Fig10Point is one sweep point.
type Fig10Point struct {
	Files       int
	Constraints int
	Time        time.Duration
}

// Fig10 holds the scaling sweep.
type Fig10 struct {
	Points []Fig10Point
}

// RunFig10 sweeps corpus sizes and measures Seldon's inference time
// (constraint construction + solving), the paper's linear-scaling claim.
func (e *Experiments) RunFig10(sizes []int) Fig10 {
	var out Fig10
	for _, n := range sizes {
		cfg := e.CorpusCfg
		cfg.Files = n
		c := corpus.Generate(cfg)
		res := core.LearnFromSources(c.FileMap(), e.Seed(), e.LearnCfg)
		out.Points = append(out.Points, Fig10Point{
			Files:       n,
			Constraints: len(res.System.Problem.Constraints),
			Time:        res.InferenceTime,
		})
	}
	return out
}

func (f Fig10) Render() string {
	tb := &table{title: "Figure 10: Seldon inference time as a function of the number of analyzed files.",
		cols: []string{"Files", "Constraints", "Time"}}
	for _, p := range f.Points {
		tb.add(strconv.Itoa(p.Files), strconv.Itoa(p.Constraints), fmtDuration(p.Time))
	}
	return tb.String() + asciiSeries("time", f.times())
}

func (f Fig10) times() []float64 {
	out := make([]float64, len(f.Points))
	for i, p := range f.Points {
		out[i] = p.Time.Seconds()
	}
	return out
}

// asciiSeries renders a tiny bar chart for terminal output.
func asciiSeries(label string, ys []float64) string {
	maxY := 0.0
	for _, y := range ys {
		if y > maxY {
			maxY = y
		}
	}
	if maxY == 0 {
		return ""
	}
	var b strings.Builder
	for i, y := range ys {
		n := int(40 * y / maxY)
		fmt.Fprintf(&b, "%s[%2d] %s %.3fs\n", label, i, strings.Repeat("#", n), y)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 11 — score vs cumulative precision

// Fig11 holds one curve per role.
type Fig11 struct {
	Curves map[propgraph.Role][]eval.ScoredSample
}

// RunFig11 samples SampleN predictions per role and computes the paper's
// score/cumulative-precision curves.
func (e *Experiments) RunFig11() Fig11 {
	entries := e.Learned().LearnedEntries(e.Seed())
	out := Fig11{Curves: make(map[propgraph.Role][]eval.ScoredSample)}
	for _, role := range propgraph.Roles() {
		out.Curves[role] = eval.ScoreCurve(entries, e.Corpus().Truth, role, e.SampleN, e.EvalSeed)
	}
	return out
}

func (f Fig11) Render() string {
	var b strings.Builder
	b.WriteString("Figure 11: sampled candidates sorted by score, with cumulative precision.\n")
	for _, role := range propgraph.Roles() {
		curve := f.Curves[role]
		fmt.Fprintf(&b, "\n-- %s (%d samples) --\n", roleName(role), len(curve))
		for i, s := range curve {
			mark := " "
			if s.Correct {
				mark = "+"
			}
			fmt.Fprintf(&b, "%2d %s score=%.3f cumPrec=%.2f %s\n", i, mark, s.Score, s.CumPrecision, s.Rep)
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Q5 — cross-project learning

// Q5Project is the comparison for one project.
type Q5Project struct {
	Project             string
	IndividualPrecision float64
	IndividualCount     int
	ProjectedPrecision  float64
	ProjectedCount      int
	NewTrueRoles        int // true roles found by full-corpus learning only
}

// Q5 aggregates the per-project comparison.
type Q5 struct {
	Projects []Q5Project
}

// RunQ5 compares learning on single projects against projecting the
// full-corpus specification onto those projects (§7.5 Q5).
func (e *Experiments) RunQ5(nProjects int) Q5 {
	full := e.Learned().LearnedEntries(e.Seed())
	truth := e.Corpus().Truth
	projects := e.Corpus().Projects()
	if len(projects) > nProjects {
		projects = projects[:nProjects]
	}
	var out Q5
	for _, proj := range projects {
		files := e.Corpus().ProjectFiles(proj)
		g := e.unionOf(files)
		// Representations occurring in this project.
		occurring := make(map[string]bool)
		strs := g.Syms.Strings()
		for _, ev := range g.Events {
			for _, s := range ev.RepIDs {
				occurring[strs[s]] = true
			}
		}
		cfg := e.LearnCfg
		cfg.Constraints.BackoffCutoff = 2 // single projects are small
		indiv := core.Learn(g, e.Seed(), cfg).LearnedEntries(e.Seed())

		var projected []spec.Entry
		for _, en := range full {
			if occurring[en.Rep] {
				projected = append(projected, en)
			}
		}
		p := Q5Project{Project: proj,
			IndividualCount: len(indiv), ProjectedCount: len(projected)}
		p.IndividualPrecision = precisionOf(indiv, truth)
		p.ProjectedPrecision = precisionOf(projected, truth)
		indivSet := make(map[string]bool)
		for _, en := range indiv {
			indivSet[fmt.Sprintf("%d|%s", en.Role, en.Rep)] = true
		}
		for _, en := range projected {
			if truth.HasRole(en.Rep, en.Role) && !indivSet[fmt.Sprintf("%d|%s", en.Role, en.Rep)] {
				p.NewTrueRoles++
			}
		}
		out.Projects = append(out.Projects, p)
	}
	return out
}

func precisionOf(entries []spec.Entry, truth *corpus.Truth) float64 {
	if len(entries) == 0 {
		return 0
	}
	correct := 0
	for _, e := range entries {
		if truth.HasRole(e.Rep, e.Role) {
			correct++
		}
	}
	return float64(correct) / float64(len(entries))
}

func (q Q5) Render() string {
	tb := &table{title: "Q5: single-project learning vs projection of the full-corpus specification.",
		cols: []string{"Project", "Individual # (prec.)", "Projected # (prec.)", "New true roles"}}
	for _, p := range q.Projects {
		tb.add(p.Project,
			fmt.Sprintf("%d (%s)", p.IndividualCount, pct(p.IndividualPrecision)),
			fmt.Sprintf("%d (%s)", p.ProjectedCount, pct(p.ProjectedPrecision)),
			strconv.Itoa(p.NewTrueRoles))
	}
	return tb.String()
}

// ---------------------------------------------------------------------------
// Q6 — seed-specification ablation

// Q6Row is one seed variant.
type Q6Row struct {
	Seed      string
	Entries   int
	Predicted int
	Precision float64
}

// Q6 holds the ablation rows.
type Q6 struct{ Rows []Q6Row }

// RunQ6 learns with the full, halved, and empty seed (§7.5 Q6).
func (e *Experiments) RunQ6() Q6 {
	truth := e.Corpus().Truth
	variants := []struct {
		name string
		s    *spec.Spec
	}{
		{"full seed", e.Seed()},
		{"half seed", e.Seed().Halve()},
		{"empty seed", emptyWithBlacklist(e.Seed())},
	}
	var out Q6
	for _, v := range variants {
		res := core.Learn(e.Union(), v.s, e.LearnCfg)
		entries := res.LearnedEntries(v.s)
		out.Rows = append(out.Rows, Q6Row{
			Seed: v.name, Entries: v.s.Len(), Predicted: len(entries),
			Precision: precisionOf(entries, truth),
		})
	}
	return out
}

func emptyWithBlacklist(s *spec.Spec) *spec.Spec {
	out := spec.New()
	out.Blacklist = s.Blacklist
	return out
}

func (q Q6) Render() string {
	tb := &table{title: "Q6: impact of the seed specification.",
		cols: []string{"Seed", "Seed entries", "Inferred specs", "Precision"}}
	for _, r := range q.Rows {
		tb.add(r.Seed, strconv.Itoa(r.Entries), strconv.Itoa(r.Predicted), pct(r.Precision))
	}
	return tb.String()
}

// ---------------------------------------------------------------------------
// Q7 / App. C — reported bugs by vulnerability class

// Q7 counts confirmed (true-vulnerability) reports per class.
type Q7 struct {
	ByCategory map[taint.Category]int
	Total      int
}

// RunQ7 classifies every learned-spec report against the flow truth and
// counts the confirmed vulnerabilities per class (the App. C table).
func (e *Experiments) RunQ7() Q7 {
	_, learnedReports := e.seedAndLearnedReports()
	truth := e.Corpus().Truth
	flows := e.Corpus().Flows
	out := Q7{ByCategory: make(map[taint.Category]int)}
	for i := range learnedReports {
		if eval.ClassifyReport(&learnedReports[i], flows, truth) == eval.TrueVulnerability {
			out.ByCategory[learnedReports[i].Category]++
			out.Total++
		}
	}
	return out
}

func (q Q7) Render() string {
	tb := &table{title: "Q7 / App. C: confirmed vulnerabilities by class (learned specification).",
		cols: []string{"Type of Bug", "Count"}}
	for _, cat := range []taint.Category{
		taint.XSS, taint.SQLInjection, taint.PathTraversal,
		taint.CommandInjection, taint.CodeInjection, taint.OpenRedirect,
		taint.GenericFlow,
	} {
		if n := q.ByCategory[cat]; n > 0 {
			tb.add(string(cat), strconv.Itoa(n))
		}
	}
	tb.add("Total", strconv.Itoa(q.Total))
	return tb.String()
}

// ---------------------------------------------------------------------------
// Tables 8-10 — sampled learned specifications per role

// RunSampleTable renders the App. A-style listing for one role: sampled
// predictions sorted by score with correctness marks.
func (e *Experiments) RunSampleTable(role propgraph.Role, n int) string {
	entries := e.Learned().LearnedEntries(e.Seed())
	curve := eval.ScoreCurve(entries, e.Corpus().Truth, role, n, e.EvalSeed)
	tb := &table{
		title: fmt.Sprintf("Evaluation on %d random events classified as %s by Seldon.",
			len(curve), strings.ToLower(roleName(role))),
		cols: []string{"API", "Score", "Correct"},
	}
	for _, s := range curve {
		mark := ""
		if s.Correct {
			mark = "yes"
		}
		tb.add(s.Rep, fmt.Sprintf("%.2f", s.Score), mark)
	}
	return tb.String()
}
