// Package eval scores learned specifications and taint reports against the
// corpus ground truth, reproducing the paper's evaluation protocol:
// random samples of 50 predictions per role for precision (Q2), cumulative
// score/precision curves (Fig. 11), and the report taxonomy of Table 6.
package eval

import (
	"math/rand"
	"sort"

	"seldon/internal/corpus"
	"seldon/internal/propgraph"
	"seldon/internal/spec"
	"seldon/internal/taint"
)

// RolePrecision summarizes correctness of sampled predictions for a role.
type RolePrecision struct {
	Predicted int // total predictions for the role
	Sampled   int
	Correct   int
}

// Precision returns Correct/Sampled (0 when nothing was sampled).
func (p RolePrecision) Precision() float64 {
	if p.Sampled == 0 {
		return 0
	}
	return float64(p.Correct) / float64(p.Sampled)
}

// PrecisionReport holds per-role and overall precision (Table 5).
type PrecisionReport struct {
	PerRole map[propgraph.Role]RolePrecision
}

// Overall aggregates the per-role samples.
func (r *PrecisionReport) Overall() RolePrecision {
	var out RolePrecision
	for _, p := range r.PerRole {
		out.Predicted += p.Predicted
		out.Sampled += p.Sampled
		out.Correct += p.Correct
	}
	return out
}

// SamplePrecision draws up to nPerRole random entries per role (the
// paper's protocol samples 50) and judges them against the oracle.
func SamplePrecision(entries []spec.Entry, truth *corpus.Truth, nPerRole int, seed int64) *PrecisionReport {
	rng := rand.New(rand.NewSource(seed))
	rep := &PrecisionReport{PerRole: make(map[propgraph.Role]RolePrecision)}
	for _, role := range propgraph.Roles() {
		var pool []spec.Entry
		for _, e := range entries {
			if e.Role == role {
				pool = append(pool, e)
			}
		}
		p := RolePrecision{Predicted: len(pool)}
		idx := rng.Perm(len(pool))
		for _, i := range idx {
			if p.Sampled >= nPerRole {
				break
			}
			p.Sampled++
			if truth.HasRole(pool[i].Rep, role) {
				p.Correct++
			}
		}
		rep.PerRole[role] = p
	}
	return rep
}

// Recall measures how many of the discoverable catalog roles the learner
// found — a metric the paper could not compute (no ground truth); our
// oracle makes it exact.
type Recall struct {
	Found   int
	Total   int
	Missing []string // "role rep" of catalog roles not learned
}

// Fraction returns Found/Total (1 when the catalog is empty).
func (r Recall) Fraction() float64 {
	if r.Total == 0 {
		return 1
	}
	return float64(r.Found) / float64(r.Total)
}

// MeasureRecall checks which learnable catalog roles appear among the
// learned entries (matching any dotted suffix relationship is not needed:
// catalog reps are the canonical fully qualified forms the corpus emits).
func MeasureRecall(entries []spec.Entry, learnable map[string]propgraph.Role) Recall {
	found := make(map[string]bool)
	for _, e := range entries {
		found[e.Rep+"|"+e.Role.String()] = true
	}
	var r Recall
	for rep, role := range learnable {
		r.Total++
		if found[rep+"|"+role.String()] {
			r.Found++
		} else {
			r.Missing = append(r.Missing, role.String()+" "+rep)
		}
	}
	sort.Strings(r.Missing)
	return r
}

// ScoredSample is one point of a Fig. 11 curve.
type ScoredSample struct {
	Rep          string
	Score        float64
	Correct      bool
	CumPrecision float64 // precision over this and all higher-scored samples
}

// ScoreCurve draws up to n random predictions of a role, sorts them by
// descending score, and computes cumulative precision (Fig. 11).
func ScoreCurve(entries []spec.Entry, truth *corpus.Truth, role propgraph.Role, n int, seed int64) []ScoredSample {
	rng := rand.New(rand.NewSource(seed))
	var pool []spec.Entry
	for _, e := range entries {
		if e.Role == role {
			pool = append(pool, e)
		}
	}
	idx := rng.Perm(len(pool))
	if len(idx) > n {
		idx = idx[:n]
	}
	samples := make([]ScoredSample, 0, len(idx))
	for _, i := range idx {
		samples = append(samples, ScoredSample{
			Rep:     pool[i].Rep,
			Score:   pool[i].Score,
			Correct: truth.HasRole(pool[i].Rep, role),
		})
	}
	sort.SliceStable(samples, func(i, j int) bool { return samples[i].Score > samples[j].Score })
	correct := 0
	for i := range samples {
		if samples[i].Correct {
			correct++
		}
		samples[i].CumPrecision = float64(correct) / float64(i+1)
	}
	return samples
}

// Category is a Table 6 report class.
type Category string

// Table 6 categories.
const (
	TrueVulnerability Category = "true vulnerability"
	VulnFlowNoBug     Category = "vulnerable flow, but no bug"
	IncorrectSink     Category = "incorrect sink"
	IncorrectSource   Category = "incorrect source"
	IncorrectBoth     Category = "incorrect source and sink"
	MissingSanitizer  Category = "missing sanitizer"
	WrongParameter    Category = "flows into wrong parameter"
)

// Categories lists the Table 6 rows in presentation order.
func Categories() []Category {
	return []Category{
		TrueVulnerability, VulnFlowNoBug, IncorrectSink, IncorrectSource,
		IncorrectBoth, MissingSanitizer, WrongParameter,
	}
}

// ClassifyReport assigns a taint report to its Table 6 category using the
// generated flow records and the role oracle.
func ClassifyReport(r *taint.Report, flows []corpus.Flow, truth *corpus.Truth) Category {
	for i := range flows {
		f := &flows[i]
		if f.File != r.File || f.SourceRep != r.SourceRep || f.SinkRep != r.SinkRep {
			continue
		}
		switch {
		case f.WrongParam:
			return WrongParameter
		case f.Sanitized:
			// The analyzer walked through the sanitizer without knowing
			// it: its specification is missing that sanitizer.
			return MissingSanitizer
		case f.Exploitable:
			return TrueVulnerability
		default:
			return VulnFlowNoBug
		}
	}
	srcOK := truth.HasRole(r.SourceRep, propgraph.Source)
	snkOK := truth.HasRole(r.SinkRep, propgraph.Sink)
	switch {
	case !srcOK && !snkOK:
		return IncorrectBoth
	case !snkOK:
		return IncorrectSink
	case !srcOK:
		return IncorrectSource
	default:
		// A real source/sink pair the generator did not plan (e.g. a flow
		// stitched across handlers): vulnerable flow, exploitability
		// unknown.
		return VulnFlowNoBug
	}
}

// ClassifySample classifies up to n randomly sampled reports (the paper
// inspects 25) and returns category counts.
func ClassifySample(reports []taint.Report, flows []corpus.Flow, truth *corpus.Truth, n int, seed int64) map[Category]int {
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(reports))
	if len(idx) > n {
		idx = idx[:n]
	}
	out := make(map[Category]int)
	for _, i := range idx {
		out[ClassifyReport(&reports[i], flows, truth)]++
	}
	return out
}

// EstimateTrueVulnerabilities scales the sampled true-positive rate to the
// full report count (Table 7's "estimated vulnerabilities").
func EstimateTrueVulnerabilities(total int, sampleCounts map[Category]int) int {
	sampled := 0
	for _, c := range sampleCounts {
		sampled += c
	}
	if sampled == 0 {
		return 0
	}
	return total * sampleCounts[TrueVulnerability] / sampled
}
