package eval

import (
	"testing"

	"seldon/internal/corpus"
	"seldon/internal/propgraph"
	"seldon/internal/spec"
	"seldon/internal/taint"
)

func TestSamplePrecision(t *testing.T) {
	truth := corpus.NewTruth()
	entries := []spec.Entry{
		{Rep: "htmlguard.scrub()", Role: propgraph.Sanitizer, Score: 0.9},    // correct
		{Rep: "textutil.titlecase()", Role: propgraph.Sanitizer, Score: 0.4}, // wrong
		{Rep: "webapi.get_param()", Role: propgraph.Source, Score: 0.8},      // correct
		{Rep: "webdb.runquery()", Role: propgraph.Sink, Score: 0.7},          // correct
		{Rep: "metrics.observe()", Role: propgraph.Sink, Score: 0.3},         // wrong
	}
	rep := SamplePrecision(entries, truth, 50, 1)
	san := rep.PerRole[propgraph.Sanitizer]
	if san.Sampled != 2 || san.Correct != 1 {
		t.Errorf("sanitizer precision = %+v", san)
	}
	overall := rep.Overall()
	if overall.Sampled != 5 || overall.Correct != 3 {
		t.Errorf("overall = %+v", overall)
	}
	if got := overall.Precision(); got != 0.6 {
		t.Errorf("precision = %v, want 0.6", got)
	}
}

func TestSamplePrecisionRespectsSampleSize(t *testing.T) {
	truth := corpus.NewTruth()
	var entries []spec.Entry
	for i := 0; i < 100; i++ {
		entries = append(entries, spec.Entry{Rep: "webapi.get_param()", Role: propgraph.Source, Score: 0.5})
	}
	rep := SamplePrecision(entries, truth, 50, 1)
	if got := rep.PerRole[propgraph.Source]; got.Sampled != 50 || got.Predicted != 100 {
		t.Errorf("source = %+v", got)
	}
}

func TestScoreCurveSortedAndCumulative(t *testing.T) {
	truth := corpus.NewTruth()
	entries := []spec.Entry{
		{Rep: "webapi.get_param()", Role: propgraph.Source, Score: 0.9},
		{Rep: "metrics.observe()", Role: propgraph.Source, Score: 0.5},
		{Rep: "bottle.request.query.get()", Role: propgraph.Source, Score: 0.7},
	}
	curve := ScoreCurve(entries, truth, propgraph.Source, 10, 1)
	if len(curve) != 3 {
		t.Fatalf("curve = %d points", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Score > curve[i-1].Score {
			t.Error("curve not sorted by descending score")
		}
	}
	// First two are correct sources, third is noise: cumulative precision
	// must be 1, 1, 2/3.
	if curve[0].CumPrecision != 1 || curve[2].CumPrecision < 0.66 || curve[2].CumPrecision > 0.67 {
		t.Errorf("cumulative = %v %v %v", curve[0].CumPrecision, curve[1].CumPrecision, curve[2].CumPrecision)
	}
}

func classifyOne(t *testing.T, r taint.Report, flows []corpus.Flow) Category {
	t.Helper()
	return ClassifyReport(&r, flows, corpus.NewTruth())
}

func TestClassifyReportCategories(t *testing.T) {
	flows := []corpus.Flow{
		{File: "a.py", SourceRep: "flask.request.args.get()", SinkRep: "os.system()",
			Exploitable: true},
		{File: "b.py", SourceRep: "flask.request.args.get()", SinkRep: "os.system()",
			Sanitized: true, SanitizerRep: "shellguard.quote_arg()"},
		{File: "c.py", SourceRep: "flask.request.args.get()", SinkRep: "os.system()"},
		{File: "d.py", SourceRep: "flask.request.args.get()", SinkRep: "webdb.runquery()",
			WrongParam: true},
	}
	base := taint.Report{SourceRep: "flask.request.args.get()", SinkRep: "os.system()"}

	r := base
	r.File = "a.py"
	if got := classifyOne(t, r, flows); got != TrueVulnerability {
		t.Errorf("a.py = %q", got)
	}
	r.File = "b.py"
	if got := classifyOne(t, r, flows); got != MissingSanitizer {
		t.Errorf("b.py = %q", got)
	}
	r.File = "c.py"
	if got := classifyOne(t, r, flows); got != VulnFlowNoBug {
		t.Errorf("c.py = %q", got)
	}
	wp := taint.Report{File: "d.py", SourceRep: "flask.request.args.get()", SinkRep: "webdb.runquery()"}
	if got := classifyOne(t, wp, flows); got != WrongParameter {
		t.Errorf("d.py = %q", got)
	}

	// Unplanned reports judged by the oracle.
	bad := taint.Report{File: "x.py", SourceRep: "clock.now_iso()", SinkRep: "os.system()"}
	if got := classifyOne(t, bad, flows); got != IncorrectSource {
		t.Errorf("incorrect source = %q", got)
	}
	bad2 := taint.Report{File: "x.py", SourceRep: "flask.request.args.get()", SinkRep: "clock.now_iso()"}
	if got := classifyOne(t, bad2, flows); got != IncorrectSink {
		t.Errorf("incorrect sink = %q", got)
	}
	bad3 := taint.Report{File: "x.py", SourceRep: "clock.now_iso()", SinkRep: "metrics.observe()"}
	if got := classifyOne(t, bad3, flows); got != IncorrectBoth {
		t.Errorf("incorrect both = %q", got)
	}
}

func TestClassifySampleAndEstimate(t *testing.T) {
	flows := []corpus.Flow{
		{File: "a.py", SourceRep: "flask.request.args.get()", SinkRep: "os.system()", Exploitable: true},
	}
	var reports []taint.Report
	for i := 0; i < 10; i++ {
		reports = append(reports, taint.Report{
			File: "a.py", SourceRep: "flask.request.args.get()", SinkRep: "os.system()",
		})
	}
	counts := ClassifySample(reports, flows, corpus.NewTruth(), 5, 1)
	if counts[TrueVulnerability] != 5 {
		t.Errorf("counts = %v", counts)
	}
	if est := EstimateTrueVulnerabilities(len(reports), counts); est != 10 {
		t.Errorf("estimate = %d, want 10", est)
	}
	if est := EstimateTrueVulnerabilities(0, map[Category]int{}); est != 0 {
		t.Errorf("empty estimate = %d", est)
	}
}

func TestCategoriesComplete(t *testing.T) {
	if len(Categories()) != 7 {
		t.Errorf("categories = %d, want 7 (Table 6 rows)", len(Categories()))
	}
}

func TestMeasureRecall(t *testing.T) {
	learnable := map[string]propgraph.Role{
		"webapi.get_param()": propgraph.Source,
		"htmlguard.scrub()":  propgraph.Sanitizer,
		"webdb.runquery()":   propgraph.Sink,
	}
	entries := []spec.Entry{
		{Rep: "webapi.get_param()", Role: propgraph.Source},
		{Rep: "htmlguard.scrub()", Role: propgraph.Sink}, // wrong role: no credit
	}
	r := MeasureRecall(entries, learnable)
	if r.Found != 1 || r.Total != 3 {
		t.Errorf("recall = %+v", r)
	}
	if len(r.Missing) != 2 {
		t.Errorf("missing = %v", r.Missing)
	}
	if r.Fraction() < 0.33 || r.Fraction() > 0.34 {
		t.Errorf("fraction = %v", r.Fraction())
	}
	if empty := MeasureRecall(nil, nil); empty.Fraction() != 1 {
		t.Error("empty catalog must have recall 1")
	}
}
