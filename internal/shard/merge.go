package shard

import (
	"fmt"
	"time"

	"seldon/internal/fpcache"
	"seldon/internal/obs"
	"seldon/internal/propgraph"
	"seldon/internal/specio"
)

// The coordinator side: validate a set of shard artifacts as one
// complete, consistent partitioning of a corpus and merge their graphs
// into the global propagation graph a single-process run would have
// built. Validation is strict and every failure is a named error —
// learning from a corpus with a hole in it would silently skew the
// frequencies the whole inference rests on.

// MergeOptions configures telemetry for a merge.
type MergeOptions struct {
	// Metrics, when non-nil, receives the shard.merge timer and the
	// shard.files / shard.bytes / shard.slices gauges.
	Metrics *obs.Registry
	// Log, when non-nil, receives one line per merged shard.
	Log *obs.Logger
}

// MergeResult is a validated, merged corpus: the global graph plus the
// manifest-derived facts the coordinator needs to stand in for a
// single-process run (fingerprint, counts, parse errors).
type MergeResult struct {
	// Graph is the global propagation graph: the union of the shard
	// graphs in slice order, byte-identical to a single-process union of
	// the whole corpus.
	Graph *propgraph.Graph
	// Slices is the validated slice count.
	Slices int
	// Files lists every corpus file in slice (= sorted) order; Hashes is
	// aligned with it (hex sha256 of each file's content).
	Files  []string
	Hashes []string
	// CorpusFingerprint is specio.FingerprintHashes over Files/Hashes —
	// equal to specio.Fingerprint of the original corpus map.
	CorpusFingerprint string
	// ParseErrorFiles names the files whose parse reported an error, in
	// order; ParseErrors is its length.
	ParseErrorFiles []string
	ParseErrors     int
	// Bytes totals the encoded artifact sizes (0 for artifacts built
	// in-process); MergeWall is the time spent in validation + union.
	Bytes     int64
	MergeWall time.Duration
}

// Merge validates arts as a complete partitioning and merges them.
// Artifact order does not matter — slices are reassembled by index —
// but the set must be exactly one artifact per slice, all cut from the
// same corpus ordering by the same analyzer version. Any violation is
// one of the package's named errors.
func Merge(arts []*Artifact, opts MergeOptions) (*MergeResult, error) {
	t0 := time.Now()
	if len(arts) == 0 {
		return nil, fmt.Errorf("%w: no artifacts", ErrMissingSlice)
	}
	count := arts[0].Slices
	byIdx := make([]*Artifact, count)
	for _, a := range arts {
		if a.AnalyzerVersion != fpcache.AnalyzerVersion {
			return nil, fmt.Errorf("%w: artifact has %q, coordinator has %q",
				ErrAnalyzerVersion, a.AnalyzerVersion, fpcache.AnalyzerVersion)
		}
		if a.Slices != count {
			return nil, fmt.Errorf("%w: %d vs %d", ErrSliceCount, a.Slices, count)
		}
		if a.Slice < 0 || a.Slice >= count {
			return nil, fmt.Errorf("%w: slice %d of %d out of range", ErrEncoding, a.Slice, count)
		}
		if byIdx[a.Slice] != nil {
			return nil, fmt.Errorf("%w: slice %d of %d appears twice", ErrDuplicateSlice, a.Slice, count)
		}
		byIdx[a.Slice] = a
	}
	for i, a := range byIdx {
		if a == nil {
			return nil, fmt.Errorf("%w: slice %d of %d", ErrMissingSlice, i, count)
		}
	}

	res := &MergeResult{Slices: count}
	graphs := make([]*propgraph.Graph, count)
	prev := ""
	for i, a := range byIdx {
		for j := range a.Files {
			f := &a.Files[j]
			// Within an artifact the manifest is sorted (Decode enforces
			// it); across artifacts strict increase proves the slices are
			// disjoint cuts of one global ordering.
			if len(res.Files) > 0 && f.Name <= prev {
				return nil, fmt.Errorf("%w: slice %d file %q does not follow %q",
					ErrSliceOrder, i, f.Name, prev)
			}
			prev = f.Name
			res.Files = append(res.Files, f.Name)
			res.Hashes = append(res.Hashes, fmt.Sprintf("%x", f.SHA256[:]))
			if f.ParseError != "" {
				res.ParseErrorFiles = append(res.ParseErrorFiles, f.Name)
			}
		}
		graphs[i] = a.Graph
		res.Bytes += a.Size
		opts.Log.Log("shard.merge", "slice", a.Slice, "of", count,
			"files", len(a.Files), "events", len(a.Graph.Events), "bytes", a.Size)
	}
	res.ParseErrors = len(res.ParseErrorFiles)
	res.CorpusFingerprint = specio.FingerprintHashes(res.Files, res.Hashes)

	// The reduce step: one symbol-translating union in slice order.
	res.Graph = propgraph.Union(graphs...)
	res.MergeWall = time.Since(t0)

	opts.Metrics.ObserveDuration(obs.TimerShardMerge, res.MergeWall)
	opts.Metrics.Set(obs.GaugeShardFiles, float64(len(res.Files)))
	opts.Metrics.Set(obs.GaugeShardBytes, float64(res.Bytes))
	opts.Metrics.Set(obs.GaugeShardSlices, float64(count))
	return res, nil
}
