package shard

import (
	"fmt"
	"time"

	"seldon/internal/constraints"
	"seldon/internal/fpcache"
	"seldon/internal/obs"
	"seldon/internal/propgraph"
	"seldon/internal/specio"
)

// The coordinator side: validate a set of shard artifacts as one
// complete, consistent partitioning of a corpus and merge their graphs
// into the global propagation graph a single-process run would have
// built. Validation is strict and every failure is a named error —
// learning from a corpus with a hole in it would silently skew the
// frequencies the whole inference rests on.
//
// The Merger is the streaming form: artifacts are committed one at a
// time, in any arrival order, and each contiguous prefix of slices is
// folded into the running union the moment it completes — slice i's
// graph is released before slice i+1's artifact need even exist. The
// union still replays slice-index order through the same first-seen
// symbol translation (propgraph.UnionBuilder ≡ propgraph.Union), so the
// result is byte-identical to the barrier merge at any shard count and
// any arrival order; out-of-order arrivals are parked and the peak
// parked+folding footprint is reported (shard.merge.peak_bytes).

// MergeOptions configures telemetry for a merge.
type MergeOptions struct {
	// Metrics, when non-nil, receives the shard.merge timer and the
	// shard.files / shard.bytes / shard.slices / shard.merge.peak_bytes
	// gauges.
	Metrics *obs.Registry
	// Log, when non-nil, receives one line per merged shard.
	Log *obs.Logger
}

// MergeResult is a validated, merged corpus: the global graph plus the
// manifest-derived facts the coordinator needs to stand in for a
// single-process run (fingerprint, counts, parse errors).
type MergeResult struct {
	// Graph is the global propagation graph: the union of the shard
	// graphs in slice order, byte-identical to a single-process union of
	// the whole corpus.
	Graph *propgraph.Graph
	// Slices is the validated slice count.
	Slices int
	// Files lists every corpus file in slice (= sorted) order; Hashes is
	// aligned with it (hex sha256 of each file's content).
	Files  []string
	Hashes []string
	// CorpusFingerprint is specio.FingerprintHashes over Files/Hashes —
	// equal to specio.Fingerprint of the original corpus map.
	CorpusFingerprint string
	// Spans maps each corpus file to its contiguous event range in
	// Graph, in order — ready for constraints.BuildIncremental against a
	// persisted flow cache. Nil when any artifact lacked per-file graph
	// facts (an in-process artifact built before encoding).
	Spans []constraints.Span
	// ParseErrorFiles names the files whose parse reported an error, in
	// order; ParseErrors is its length.
	ParseErrorFiles []string
	ParseErrors     int
	// Bytes totals the encoded artifact sizes (0 for artifacts built
	// in-process); MergeWall is the time spent in validation + union.
	Bytes     int64
	MergeWall time.Duration
	// PeakBytes is the largest encoded-artifact footprint the merge held
	// at once (parked out-of-order slices plus the slice being folded).
	// With in-order arrival it is the largest single artifact — the
	// streaming coordinator never holds the whole corpus encoded.
	PeakBytes int64
}

// Merger folds shard artifacts into the global graph incrementally.
// Commit artifacts in any order, then Finish. Not safe for concurrent
// use; the coordinator's ingest loop serializes commits.
type Merger struct {
	opts MergeOptions

	// count is the slice count learned from the first commit (-1 until
	// then); next is the lowest slice index not yet folded.
	count int
	next  int
	// pending parks artifacts that arrived ahead of their turn.
	pending map[int]*Artifact

	ub      *propgraph.UnionBuilder
	res     *MergeResult
	prev    string
	hasPrev bool
	// spansOK stays true while every folded artifact carries per-file
	// graph facts; one without them disables span assembly for the run.
	spansOK bool

	resident, peak int64
	wall           time.Duration
}

// NewMerger returns an empty streaming merge.
func NewMerger(opts MergeOptions) *Merger {
	return &Merger{
		opts:    opts,
		count:   -1,
		pending: make(map[int]*Artifact),
		ub:      propgraph.NewUnionBuilder(),
		res:     &MergeResult{},
		spansOK: true,
	}
}

// Commit validates one artifact against the partitioning seen so far
// and folds it — plus any parked successors it unblocks — into the
// union. The artifact's graph must already be checksum-settled (Decode,
// ReadArtifact, and ReadFile only return settled artifacts). Errors are
// the package's named sentinels; any error poisons the merge.
func (m *Merger) Commit(a *Artifact) error {
	t0 := time.Now()
	defer func() { m.wall += time.Since(t0) }()

	if a.AnalyzerVersion != fpcache.AnalyzerVersion {
		return fmt.Errorf("%w: artifact has %q, coordinator has %q",
			ErrAnalyzerVersion, a.AnalyzerVersion, fpcache.AnalyzerVersion)
	}
	if m.count == -1 {
		m.count = a.Slices
	}
	if a.Slices != m.count {
		return fmt.Errorf("%w: %d vs %d", ErrSliceCount, a.Slices, m.count)
	}
	if a.Slice < 0 || a.Slice >= m.count {
		return fmt.Errorf("%w: slice %d of %d out of range", ErrEncoding, a.Slice, m.count)
	}
	if a.Slice < m.next || m.pending[a.Slice] != nil {
		return fmt.Errorf("%w: slice %d of %d appears twice", ErrDuplicateSlice, a.Slice, m.count)
	}
	m.pending[a.Slice] = a
	m.resident += a.Size
	if m.resident > m.peak {
		m.peak = m.resident
	}
	for {
		a := m.pending[m.next]
		if a == nil {
			return nil
		}
		delete(m.pending, m.next)
		if err := m.fold(a); err != nil {
			return err
		}
		m.resident -= a.Size
		m.next++
	}
}

// fold appends one slice — the contiguous next one — to the union.
func (m *Merger) fold(a *Artifact) error {
	res := m.res
	if len(a.FileHashes) != len(a.Files) || len(a.FileEvents) != len(a.Files) {
		m.spansOK = false
	}
	base := len(m.ub.Graph().Events)
	sliceEvents := 0
	for j := range a.Files {
		f := &a.Files[j]
		// Within an artifact the manifest is sorted (the decoder enforces
		// it); across artifacts strict increase proves the slices are
		// disjoint cuts of one global ordering.
		if m.hasPrev && f.Name <= m.prev {
			return fmt.Errorf("%w: slice %d file %q does not follow %q",
				ErrSliceOrder, a.Slice, f.Name, m.prev)
		}
		m.prev, m.hasPrev = f.Name, true
		res.Files = append(res.Files, f.Name)
		res.Hashes = append(res.Hashes, fmt.Sprintf("%x", f.SHA256[:]))
		if f.ParseError != "" {
			res.ParseErrorFiles = append(res.ParseErrorFiles, f.Name)
		}
		if m.spansOK {
			lo := base + sliceEvents
			res.Spans = append(res.Spans, constraints.Span{
				File: f.Name,
				Lo:   lo,
				Hi:   lo + a.FileEvents[j],
				Hash: a.FileHashes[j],
			})
			sliceEvents += a.FileEvents[j]
		}
	}
	// The per-file event counts must tile the slice graph exactly, or
	// the spans would misattribute events.
	if m.spansOK && sliceEvents != len(a.Graph.Events) {
		m.spansOK = false
		res.Spans = nil
	}
	m.ub.Add(a.Graph)
	res.Bytes += a.Size
	m.opts.Log.Log("shard.merge", "slice", a.Slice, "of", m.count,
		"files", len(a.Files), "events", len(a.Graph.Events), "bytes", a.Size)
	return nil
}

// Finish validates completeness and returns the merged result. The
// merger must not be used afterwards.
func (m *Merger) Finish() (*MergeResult, error) {
	t0 := time.Now()
	if m.count == -1 {
		return nil, fmt.Errorf("%w: no artifacts", ErrMissingSlice)
	}
	if m.next < m.count {
		return nil, fmt.Errorf("%w: slice %d of %d", ErrMissingSlice, m.next, m.count)
	}
	res := m.res
	res.Slices = m.count
	res.ParseErrors = len(res.ParseErrorFiles)
	res.CorpusFingerprint = specio.FingerprintHashes(res.Files, res.Hashes)
	if !m.spansOK {
		res.Spans = nil
	}
	res.Graph = m.ub.Graph()
	res.PeakBytes = m.peak
	m.wall += time.Since(t0)
	res.MergeWall = m.wall

	m.opts.Metrics.ObserveDuration(obs.TimerShardMerge, res.MergeWall)
	m.opts.Metrics.Set(obs.GaugeShardFiles, float64(len(res.Files)))
	m.opts.Metrics.Set(obs.GaugeShardBytes, float64(res.Bytes))
	m.opts.Metrics.Set(obs.GaugeShardSlices, float64(m.count))
	m.opts.Metrics.Set(obs.GaugeShardMergePeakBytes, float64(res.PeakBytes))
	return res, nil
}

// Merge validates arts as a complete partitioning and merges them.
// Artifact order does not matter — slices are reassembled by index —
// but the set must be exactly one artifact per slice, all cut from the
// same corpus ordering by the same analyzer version. Any violation is
// one of the package's named errors. Merge is the barrier convenience
// over Merger; the streaming coordinator commits as artifacts arrive.
func Merge(arts []*Artifact, opts MergeOptions) (*MergeResult, error) {
	m := NewMerger(opts)
	for _, a := range arts {
		if err := m.Commit(a); err != nil {
			return nil, err
		}
	}
	return m.Finish()
}
