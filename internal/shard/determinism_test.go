package shard

import (
	"bytes"
	"math/rand"
	"testing"

	"seldon/internal/core"
	"seldon/internal/corpus"
	"seldon/internal/propgraph"
	"seldon/internal/specio"
)

// TestMergeDeterminism is the subsystem's invariant as a unit test: for
// every shard count, with artifacts round-tripped through the wire
// format and ingested in shuffled order, the coordinator's merged graph
// is byte-identical to the single-process union of the whole corpus,
// and the manifest-derived corpus fingerprint equals the one computed
// from raw contents.
func TestMergeDeterminism(t *testing.T) {
	files := corpus.Generate(corpus.Config{Files: 60}).FileMap()

	fe := core.AnalyzeFiles(files, core.Config{Workers: 1})
	want := propgraph.Union(fe.Graphs...).AppendBinary(nil)
	wantFP := specio.Fingerprint(files)

	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 4, 7} {
		arts := make([]*Artifact, n)
		for i := 0; i < n; i++ {
			a := buildSlice(t, files, i, n)
			// Round-trip through the wire format so the test covers what a
			// coordinator actually sees, not in-process structs.
			decoded, err := Decode(a.Encode())
			if err != nil {
				t.Fatalf("n=%d slice %d: round-trip: %v", n, i, err)
			}
			arts[i] = decoded
		}
		rng.Shuffle(n, func(i, j int) { arts[i], arts[j] = arts[j], arts[i] })

		res, err := Merge(arts, MergeOptions{})
		if err != nil {
			t.Fatalf("n=%d: Merge: %v", n, err)
		}
		if got := res.Graph.AppendBinary(nil); !bytes.Equal(got, want) {
			t.Errorf("n=%d: merged graph differs from single-process union (%d vs %d bytes)",
				n, len(got), len(want))
		}
		if res.CorpusFingerprint != wantFP {
			t.Errorf("n=%d: fingerprint %s, want %s", n, res.CorpusFingerprint, wantFP)
		}
		if len(res.Files) != len(files) {
			t.Errorf("n=%d: %d files, want %d", n, len(res.Files), len(files))
		}
		if res.Slices != n {
			t.Errorf("n=%d: Slices = %d", n, res.Slices)
		}
	}
}

// TestMergeLearnsIdentically pushes one shard count all the way through
// learning: the predictions from the merged graph equal those from the
// single-process pipeline, entry for entry and score for score.
func TestMergeLearnsIdentically(t *testing.T) {
	files := corpus.Generate(corpus.Config{Files: 40}).FileMap()
	seed := corpus.ExperimentSeed()
	cfg := core.Config{Threshold: 0.1, Workers: 1}

	single := core.LearnFromSources(files, seed, cfg)

	arts := make([]*Artifact, 3)
	for i := range arts {
		arts[i] = buildSlice(t, files, i, 3)
	}
	res, err := Merge([]*Artifact{arts[2], arts[0], arts[1]}, MergeOptions{})
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	dist := core.Learn(res.Graph, seed, cfg)

	a := single.LearnedSpec(seed).Format()
	b := dist.LearnedSpec(seed).Format()
	if a != b {
		t.Errorf("learned specs differ:\nsingle:\n%s\ndistributed:\n%s", a, b)
	}
}

// TestMergeParseErrors: parse failures recorded in shard manifests
// surface in the merge result exactly as a single-process run reports
// them.
func TestMergeParseErrors(t *testing.T) {
	files := corpus.Generate(corpus.Config{Files: 20}).FileMap()
	files["zzz_broken.py"] = "def broken(:\n"

	fe := core.AnalyzeFiles(files, core.Config{Workers: 1})
	if len(fe.ParseErrorFiles) == 0 {
		t.Fatal("fixture did not produce a parse error")
	}

	arts := []*Artifact{buildSlice(t, files, 0, 2), buildSlice(t, files, 1, 2)}
	res, err := Merge(arts, MergeOptions{})
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if res.ParseErrors != len(fe.ParseErrorFiles) {
		t.Errorf("merge reports %d parse errors, single-process reports %d",
			res.ParseErrors, len(fe.ParseErrorFiles))
	}
	if len(res.ParseErrorFiles) == 0 || res.ParseErrorFiles[len(res.ParseErrorFiles)-1] != "zzz_broken.py" {
		t.Errorf("ParseErrorFiles = %v, want trailing zzz_broken.py", res.ParseErrorFiles)
	}
}
