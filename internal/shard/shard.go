// Package shard implements distributed corpus learning: the wire format,
// worker, and coordinator sides of a map/reduce over propagation graphs.
//
// A shard artifact is one worker's output for one deterministic slice of
// a corpus: a versioned envelope carrying the analyzer version, the
// slice coordinates (index i of n), and one section per corpus file —
// the file's manifest entry (name, content sha256, parse-error text),
// an optional fpcache sidecar entry (content-addressed cache key plus
// recorded analysis cost), and the file's propagation graph in
// propgraph's v2 binary codec with a per-shard symbol table. The whole
// artifact is sha256-checksummed like an fpcache entry — but where a
// corrupt cache entry is silently re-analyzed, a corrupt shard artifact
// is a hard, named error: the coordinator is reassembling a corpus from
// pieces it cannot recompute, so truncation, bit flips, stale codecs,
// duplicate slices, and missing slices each fail loudly and distinctly
// (see the Err* sentinels).
//
// Envelope layout (all integers varint unless noted):
//
//	magic "SSHD" (4 bytes)
//	codec version (1 byte)
//	payload length (uvarint)
//	payload:
//	  analyzer version (length-prefixed string)
//	  slice index, slice count (uvarint, index < count)
//	  flags (1 byte; bit 0 = fpcache sidecar present, others zero)
//	  file count (uvarint), then per file in sorted name order:
//	    name (string), content sha256 (32 raw bytes), parse error (string)
//	    [flags bit 0] fpcache key (32 raw bytes), analysis cost (uvarint ns)
//	    graph length (uvarint), graph (propgraph v2 binary codec)
//	sha256 checksum over everything before it (32 bytes)
//
// Codec v2 interleaves per-file graph sections (v1 carried one merged
// slice graph) so an artifact can be decoded as a stream: NewReader
// yields the header, then one verified file section at a time, with the
// running checksum settled before any decoded data is acted on — peak
// decode memory is one file section, not the artifact. The slice graph
// is reassembled as the disjoint union of the per-file graphs in
// manifest order, which is exactly how the worker built it, so nothing
// changes byte-wise downstream.
//
// Determinism: slices are contiguous blocks of the corpus's sorted
// file-name order (core.SliceNames, corpus.Slice), each worker merges
// its per-file graphs in that order, and the coordinator unions shard
// graphs in slice-index order with symbol translation — so the merged
// graph, and everything learned from it, is byte-identical to a
// single-process run over the concatenated corpus, at any shard count
// and any artifact arrival order.
package shard

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"seldon/internal/propgraph"
)

const (
	magic = "SSHD"
	// codecVersion 2 interleaves per-file manifest + sidecar + graph
	// sections (v1 carried one slice-merged graph after the manifest);
	// bump it whenever the envelope layout changes. A version skew is a
	// named error, not a silent re-analyze — the coordinator cannot
	// rebuild a shard it did not analyze.
	codecVersion = 2
	checksumSize = sha256.Size
	// headerMin is magic + version byte + at least one length byte.
	headerMin = len(magic) + 2

	// flagSidecar marks artifacts carrying the fpcache sidecar (per-file
	// cache key + recorded cost alongside the graph bytes).
	flagSidecar = 0x01

	// maxPayloadLen guards the declared payload length against
	// overflow-scale garbage; anything under it that exceeds the bytes in
	// hand is ordinary truncation.
	maxPayloadLen = 1 << 40
)

// appendString appends a length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// Named ingestion errors. Every way an artifact can be unusable has a
// distinct sentinel so the coordinator (and its tests) can tell a
// truncated upload from a flipped bit from a stale worker — none of
// them is ever skipped silently.
var (
	// ErrTruncated: the input ends before the envelope's declared length
	// (an interrupted transfer or partial write).
	ErrTruncated = errors.New("shard: truncated artifact")
	// ErrMagic: the input does not start with the artifact magic.
	ErrMagic = errors.New("shard: bad magic (not a shard artifact)")
	// ErrCodecVersion: the envelope was written by an incompatible codec.
	ErrCodecVersion = errors.New("shard: unsupported codec version")
	// ErrChecksum: the envelope is complete but its bytes do not hash to
	// the stored checksum (bit rot or tampering).
	ErrChecksum = errors.New("shard: checksum mismatch")
	// ErrTrailing: well-formed artifact followed by extra bytes.
	ErrTrailing = errors.New("shard: trailing bytes after artifact")
	// ErrEncoding: the checksum holds but the payload does not parse —
	// an encoder bug or a hand-crafted artifact.
	ErrEncoding = errors.New("shard: malformed payload")
	// ErrAnalyzerVersion: the artifact was produced by a front-end whose
	// semantics differ from this coordinator's.
	ErrAnalyzerVersion = errors.New("shard: analyzer version mismatch")
	// ErrSliceCount: artifacts disagree about how many slices the corpus
	// was cut into.
	ErrSliceCount = errors.New("shard: slice-count mismatch")
	// ErrDuplicateSlice: two artifacts claim the same slice index.
	ErrDuplicateSlice = errors.New("shard: duplicate slice")
	// ErrMissingSlice: a slice index has no artifact.
	ErrMissingSlice = errors.New("shard: missing slice")
	// ErrSliceOrder: the concatenated slice manifests are not in strictly
	// increasing file-name order — the slices overlap or were cut from
	// different partitionings of the corpus.
	ErrSliceOrder = errors.New("shard: slice ordering violation")
)

// FileMeta is one corpus file's manifest entry: enough for the
// coordinator to reproduce the corpus fingerprint and the parse-error
// report without the file contents.
type FileMeta struct {
	Name string
	// SHA256 is the hash of the file's content (see specio.FileHash for
	// the hex form the fingerprint is built from).
	SHA256 [sha256.Size]byte
	// ParseError is the recovered parse failure's text ("" for a clean
	// parse); analysis ran over the recovered AST either way.
	ParseError string
}

// Artifact is one decoded shard: the manifest of the corpus slice it
// covers and the slice's merged propagation graph, plus the per-file
// facts the streaming merge derives span and sidecar data from.
type Artifact struct {
	// AnalyzerVersion names the front-end semantics the shard was
	// analyzed under (fpcache.AnalyzerVersion).
	AnalyzerVersion string
	// Slice and Slices are the slice coordinates: index i of n.
	Slice, Slices int
	// Files lists the slice's manifest in sorted name order.
	Files []FileMeta
	// Graph is the union of the slice's per-file propagation graphs,
	// with its own symbol table.
	Graph *propgraph.Graph
	// FileGraphs holds the per-file graphs in manifest order. Set by
	// Build (the worker side); Encode requires it — codec v2 ships one
	// graph section per file. Decoding does not reconstruct it (the
	// sections are folded into Graph as they stream), so a decoded
	// artifact cannot be re-encoded.
	FileGraphs []*propgraph.Graph
	// FileHashes is the sha256 of each file's encoded graph section and
	// FileEvents its event count, both in manifest order — what the
	// coordinator needs to hand constraints.BuildIncremental its spans.
	FileHashes [][32]byte
	FileEvents []int
	// Sidecar marks the fpcache sidecar as present: SidecarKeys carries
	// each file's content-addressed cache key (fpcache.KeyBytes) and
	// SidecarCosts its recorded parse+dataflow cost, in manifest order.
	Sidecar      bool
	SidecarKeys  [][32]byte
	SidecarCosts []time.Duration
	// Size is the artifact's encoded size in bytes; set by decoding (0
	// for artifacts built in-process).
	Size int64
}

// Encode renders the artifact in the wire format. The bytes are a pure
// function of the artifact (the embedded graph codec is deterministic
// and the manifest is ordered), so identical shards encode identically.
// The artifact must carry its per-file graphs (FileGraphs aligned with
// Files) — codec v2 has no whole-slice graph section, so an artifact
// assembled without them (notably one that came out of a decoder)
// cannot be encoded.
func (a *Artifact) Encode() []byte {
	if len(a.FileGraphs) != len(a.Files) {
		panic(fmt.Sprintf("shard: Encode: %d file graphs for %d manifest entries (decoded artifacts cannot re-encode)",
			len(a.FileGraphs), len(a.Files)))
	}
	sidecar := a.Sidecar
	if sidecar && (len(a.SidecarKeys) != len(a.Files) || len(a.SidecarCosts) != len(a.Files)) {
		panic("shard: Encode: sidecar flagged but keys/costs are not aligned with the manifest")
	}

	payload := make([]byte, 0, 4096)
	payload = appendString(payload, a.AnalyzerVersion)
	payload = binary.AppendUvarint(payload, uint64(a.Slice))
	payload = binary.AppendUvarint(payload, uint64(a.Slices))
	var flags byte
	if sidecar {
		flags |= flagSidecar
	}
	payload = append(payload, flags)
	payload = binary.AppendUvarint(payload, uint64(len(a.Files)))
	var graphBuf []byte
	for i := range a.Files {
		f := &a.Files[i]
		payload = appendString(payload, f.Name)
		payload = append(payload, f.SHA256[:]...)
		payload = appendString(payload, f.ParseError)
		if sidecar {
			payload = append(payload, a.SidecarKeys[i][:]...)
			payload = binary.AppendUvarint(payload, uint64(a.SidecarCosts[i]))
		}
		graphBuf = a.FileGraphs[i].AppendBinary(graphBuf[:0])
		payload = binary.AppendUvarint(payload, uint64(len(graphBuf)))
		payload = append(payload, graphBuf...)
	}

	out := make([]byte, 0, headerMin+len(payload)+checksumSize+8)
	out = append(out, magic...)
	out = append(out, codecVersion)
	out = binary.AppendUvarint(out, uint64(len(payload)))
	out = append(out, payload...)
	sum := sha256.Sum256(out)
	return append(out, sum[:]...)
}

// verifyEnvelope checks the whole-buffer framing invariants — magic,
// codec version, declared length vs bytes in hand, trailing bytes, and
// the checksum — before any payload parsing, preserving the sentinel
// priorities of whole-buffer decoding (a flipped payload byte is
// ErrChecksum, never a parse error).
func verifyEnvelope(data []byte) error {
	if len(data) < len(magic) {
		return fmt.Errorf("%w: %d bytes, shorter than the magic", ErrTruncated, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return fmt.Errorf("%w: %q", ErrMagic, data[:len(magic)])
	}
	if len(data) < headerMin {
		return fmt.Errorf("%w: %d bytes, header incomplete", ErrTruncated, len(data))
	}
	if v := data[len(magic)]; v != codecVersion {
		return fmt.Errorf("%w: got %d, want %d", ErrCodecVersion, v, codecVersion)
	}
	rest := data[len(magic)+1:]
	payloadLen, n := binary.Uvarint(rest)
	if n == 0 {
		return fmt.Errorf("%w: header length field incomplete", ErrTruncated)
	}
	// Guard only against overflow-scale lengths here; a declared length
	// that merely exceeds the bytes in hand is truncation, caught below.
	if n < 0 || payloadLen > maxPayloadLen {
		return fmt.Errorf("%w: implausible payload length %d", ErrEncoding, payloadLen)
	}
	headerLen := len(magic) + 1 + n
	total := headerLen + int(payloadLen) + checksumSize
	if len(data) < total {
		return fmt.Errorf("%w: have %d bytes, envelope declares %d", ErrTruncated, len(data), total)
	}
	if len(data) > total {
		return fmt.Errorf("%w: %d extra bytes", ErrTrailing, len(data)-total)
	}
	body, sum := data[:total-checksumSize], data[total-checksumSize:]
	if want := sha256.Sum256(body); string(want[:]) != string(sum) {
		return ErrChecksum
	}
	return nil
}

// Decode parses one artifact occupying the whole of data. Every failure
// mode maps to one of the package's named errors; a partial artifact is
// never returned. The envelope framing and checksum are verified before
// the payload is parsed, then the same streaming section reader the
// pipe/file paths use consumes the buffer.
func Decode(data []byte) (*Artifact, error) {
	if err := verifyEnvelope(data); err != nil {
		return nil, err
	}
	return ReadArtifact(bytes.NewReader(data), ReadOptions{})
}

// ReadFile streams one artifact from path through the incremental
// decoder (peak memory: one file section plus the accumulating slice
// graph, not the encoded artifact).
func ReadFile(path string, opts ReadOptions) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	a, err := ReadArtifact(bufio.NewReaderSize(f, 64<<10), opts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// Write encodes the artifact to w and returns the bytes written.
func Write(w io.Writer, a *Artifact) (int64, error) {
	data := a.Encode()
	n, err := w.Write(data)
	return int64(n), err
}

// WriteFile writes the artifact to path atomically (temp file + rename,
// the fpcache pattern), so a crashed worker never leaves a partial
// artifact that a coordinator could pick up.
func WriteFile(path string, a *Artifact) (int64, error) {
	data := a.Encode()
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return 0, err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	return int64(len(data)), nil
}
