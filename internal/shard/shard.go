// Package shard implements distributed corpus learning: the wire format,
// worker, and coordinator sides of a map/reduce over propagation graphs.
//
// A shard artifact is one worker's output for one deterministic slice of
// a corpus: a versioned envelope carrying the analyzer version, the
// slice coordinates (index i of n), a corpus-slice manifest (file names,
// content sha256s, parse-error text), and the slice's merged propagation
// graph in propgraph's v2 binary codec with its per-shard symbol table.
// The whole artifact is sha256-checksummed like an fpcache entry — but
// where a corrupt cache entry is silently re-analyzed, a corrupt shard
// artifact is a hard, named error: the coordinator is reassembling a
// corpus from pieces it cannot recompute, so truncation, bit flips,
// stale codecs, duplicate slices, and missing slices each fail loudly
// and distinctly (see the Err* sentinels).
//
// Envelope layout (all integers varint unless noted):
//
//	magic "SSHD" (4 bytes)
//	codec version (1 byte)
//	payload length (uvarint)
//	payload:
//	  analyzer version (length-prefixed string)
//	  slice index, slice count (uvarint, index < count)
//	  file count (uvarint), then per file in sorted name order:
//	    name (string), content sha256 (32 raw bytes), parse error (string)
//	  propagation graph (propgraph v2 binary codec, symbol table included)
//	sha256 checksum over everything before it (32 bytes)
//
// Determinism: slices are contiguous blocks of the corpus's sorted
// file-name order (core.SliceNames, corpus.Slice), each worker merges
// its per-file graphs in that order, and the coordinator unions shard
// graphs in slice-index order with symbol translation — so the merged
// graph, and everything learned from it, is byte-identical to a
// single-process run over the concatenated corpus, at any shard count
// and any artifact arrival order.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"seldon/internal/propgraph"
)

const (
	magic = "SSHD"
	// codecVersion 1 wraps propgraph's binary codec v2; bump it whenever
	// the envelope layout changes. A version skew is a named error, not a
	// silent re-analyze — the coordinator cannot rebuild a shard it did
	// not analyze.
	codecVersion = 1
	checksumSize = sha256.Size
	// headerMin is magic + version byte + at least one length byte.
	headerMin = len(magic) + 2
)

// Named ingestion errors. Every way an artifact can be unusable has a
// distinct sentinel so the coordinator (and its tests) can tell a
// truncated upload from a flipped bit from a stale worker — none of
// them is ever skipped silently.
var (
	// ErrTruncated: the input ends before the envelope's declared length
	// (an interrupted transfer or partial write).
	ErrTruncated = errors.New("shard: truncated artifact")
	// ErrMagic: the input does not start with the artifact magic.
	ErrMagic = errors.New("shard: bad magic (not a shard artifact)")
	// ErrCodecVersion: the envelope was written by an incompatible codec.
	ErrCodecVersion = errors.New("shard: unsupported codec version")
	// ErrChecksum: the envelope is complete but its bytes do not hash to
	// the stored checksum (bit rot or tampering).
	ErrChecksum = errors.New("shard: checksum mismatch")
	// ErrTrailing: well-formed artifact followed by extra bytes.
	ErrTrailing = errors.New("shard: trailing bytes after artifact")
	// ErrEncoding: the checksum holds but the payload does not parse —
	// an encoder bug or a hand-crafted artifact.
	ErrEncoding = errors.New("shard: malformed payload")
	// ErrAnalyzerVersion: the artifact was produced by a front-end whose
	// semantics differ from this coordinator's.
	ErrAnalyzerVersion = errors.New("shard: analyzer version mismatch")
	// ErrSliceCount: artifacts disagree about how many slices the corpus
	// was cut into.
	ErrSliceCount = errors.New("shard: slice-count mismatch")
	// ErrDuplicateSlice: two artifacts claim the same slice index.
	ErrDuplicateSlice = errors.New("shard: duplicate slice")
	// ErrMissingSlice: a slice index has no artifact.
	ErrMissingSlice = errors.New("shard: missing slice")
	// ErrSliceOrder: the concatenated slice manifests are not in strictly
	// increasing file-name order — the slices overlap or were cut from
	// different partitionings of the corpus.
	ErrSliceOrder = errors.New("shard: slice ordering violation")
)

// FileMeta is one corpus file's manifest entry: enough for the
// coordinator to reproduce the corpus fingerprint and the parse-error
// report without the file contents.
type FileMeta struct {
	Name string
	// SHA256 is the hash of the file's content (see specio.FileHash for
	// the hex form the fingerprint is built from).
	SHA256 [sha256.Size]byte
	// ParseError is the recovered parse failure's text ("" for a clean
	// parse); analysis ran over the recovered AST either way.
	ParseError string
}

// Artifact is one decoded shard: the manifest of the corpus slice it
// covers and the slice's merged propagation graph.
type Artifact struct {
	// AnalyzerVersion names the front-end semantics the shard was
	// analyzed under (fpcache.AnalyzerVersion).
	AnalyzerVersion string
	// Slice and Slices are the slice coordinates: index i of n.
	Slice, Slices int
	// Files lists the slice's manifest in sorted name order.
	Files []FileMeta
	// Graph is the union of the slice's per-file propagation graphs,
	// with its own symbol table.
	Graph *propgraph.Graph
	// Size is the artifact's encoded size in bytes; set by Decode (0 for
	// artifacts built in-process).
	Size int64
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// Encode renders the artifact in the wire format. The bytes are a pure
// function of the artifact (the embedded graph codec is deterministic
// and the manifest is ordered), so identical shards encode identically.
func (a *Artifact) Encode() []byte {
	payload := make([]byte, 0, 4096)
	payload = appendString(payload, a.AnalyzerVersion)
	payload = binary.AppendUvarint(payload, uint64(a.Slice))
	payload = binary.AppendUvarint(payload, uint64(a.Slices))
	payload = binary.AppendUvarint(payload, uint64(len(a.Files)))
	for i := range a.Files {
		f := &a.Files[i]
		payload = appendString(payload, f.Name)
		payload = append(payload, f.SHA256[:]...)
		payload = appendString(payload, f.ParseError)
	}
	payload = a.Graph.AppendBinary(payload)

	out := make([]byte, 0, headerMin+len(payload)+checksumSize+8)
	out = append(out, magic...)
	out = append(out, codecVersion)
	out = binary.AppendUvarint(out, uint64(len(payload)))
	out = append(out, payload...)
	sum := sha256.Sum256(out)
	return append(out, sum[:]...)
}

// payloadReader is a cursor over the checksummed payload; the first
// failed read latches err (wrapping ErrEncoding — the checksum already
// held, so a short or malformed field is an encoder-level fault, not
// line noise).
type payloadReader struct {
	data []byte
	err  error
}

func (r *payloadReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrEncoding}, args...)...)
	}
}

func (r *payloadReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.fail("bad %s", what)
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *payloadReader) string(what string) string {
	n := r.uvarint(what + " length")
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.data)) {
		r.fail("%s length %d exceeds remaining %d bytes", what, n, len(r.data))
		return ""
	}
	s := string(r.data[:n])
	r.data = r.data[n:]
	return s
}

func (r *payloadReader) bytes32(what string) (out [checksumSize]byte) {
	if r.err != nil {
		return
	}
	if len(r.data) < checksumSize {
		r.fail("short %s", what)
		return
	}
	copy(out[:], r.data)
	r.data = r.data[checksumSize:]
	return
}

// Decode parses one artifact occupying the whole of data. Every failure
// mode maps to one of the package's named errors; a partial artifact is
// never returned.
func Decode(data []byte) (*Artifact, error) {
	if len(data) < len(magic) {
		return nil, fmt.Errorf("%w: %d bytes, shorter than the magic", ErrTruncated, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: %q", ErrMagic, data[:len(magic)])
	}
	if len(data) < headerMin {
		return nil, fmt.Errorf("%w: %d bytes, header incomplete", ErrTruncated, len(data))
	}
	if v := data[len(magic)]; v != codecVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrCodecVersion, v, codecVersion)
	}
	rest := data[len(magic)+1:]
	payloadLen, n := binary.Uvarint(rest)
	if n == 0 {
		return nil, fmt.Errorf("%w: header length field incomplete", ErrTruncated)
	}
	// Guard only against overflow-scale lengths here; a declared length
	// that merely exceeds the bytes in hand is truncation, caught below.
	if n < 0 || payloadLen > 1<<40 {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrEncoding, payloadLen)
	}
	headerLen := len(magic) + 1 + n
	total := headerLen + int(payloadLen) + checksumSize
	if len(data) < total {
		return nil, fmt.Errorf("%w: have %d bytes, envelope declares %d", ErrTruncated, len(data), total)
	}
	if len(data) > total {
		return nil, fmt.Errorf("%w: %d extra bytes", ErrTrailing, len(data)-total)
	}
	body, sum := data[:total-checksumSize], data[total-checksumSize:]
	if want := sha256.Sum256(body); string(want[:]) != string(sum) {
		return nil, ErrChecksum
	}

	r := &payloadReader{data: body[headerLen:]}
	a := &Artifact{Size: int64(len(data))}
	a.AnalyzerVersion = r.string("analyzer version")
	a.Slice = int(r.uvarint("slice index"))
	a.Slices = int(r.uvarint("slice count"))
	if r.err == nil && (a.Slices < 1 || a.Slice >= a.Slices) {
		r.fail("slice %d of %d out of range", a.Slice, a.Slices)
	}
	numFiles := r.uvarint("file count")
	if r.err == nil && numFiles > uint64(len(r.data)) {
		r.fail("file count %d exceeds remaining %d bytes", numFiles, len(r.data))
	}
	if r.err == nil && numFiles > 0 {
		a.Files = make([]FileMeta, 0, numFiles)
		for i := 0; i < int(numFiles) && r.err == nil; i++ {
			f := FileMeta{Name: r.string("file name")}
			f.SHA256 = r.bytes32("file hash")
			f.ParseError = r.string("parse error")
			if r.err == nil && i > 0 && f.Name <= a.Files[i-1].Name {
				r.fail("manifest not in sorted order at %q", f.Name)
			}
			a.Files = append(a.Files, f)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	g, tail, err := propgraph.DecodeBinary(r.data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrEncoding, err)
	}
	if len(tail) != 0 {
		return nil, fmt.Errorf("%w: %d bytes after graph", ErrEncoding, len(tail))
	}
	a.Graph = g
	return a, nil
}

// ReadFile loads and decodes one artifact from path.
func ReadFile(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// Write encodes the artifact to w and returns the bytes written.
func Write(w io.Writer, a *Artifact) (int64, error) {
	data := a.Encode()
	n, err := w.Write(data)
	return int64(n), err
}

// WriteFile writes the artifact to path atomically (temp file + rename,
// the fpcache pattern), so a crashed worker never leaves a partial
// artifact that a coordinator could pick up.
func WriteFile(path string, a *Artifact) (int64, error) {
	data := a.Encode()
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return 0, err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	return int64(len(data)), nil
}
