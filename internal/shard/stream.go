package shard

import (
	"crypto/sha256"
	"fmt"
	"hash"
	"io"
	"time"

	"seldon/internal/fpcache"
	"seldon/internal/obs"
	"seldon/internal/propgraph"
)

// Header is the streaming decoder's view of an artifact before any file
// section has been read: the envelope preamble, verified for framing but
// not yet for checksum (the checksum trails the payload; Finish settles
// it).
type Header struct {
	AnalyzerVersion string
	Slice, Slices   int
	// NumFiles is the declared section count; Next yields exactly this
	// many sections before io.EOF.
	NumFiles int
	// Sidecar reports whether each section carries an fpcache key+cost.
	Sidecar bool
}

// FileSection is one decoded per-file section. The struct (and Enc) is
// reused across Next calls on the same Reader; callers that retain a
// field past the next Next must copy it. Graph is freshly allocated per
// section and safe to keep.
type FileSection struct {
	Meta  FileMeta
	Graph *propgraph.Graph
	// Enc is the section's raw graph bytes (exactly Graph.AppendBinary);
	// its sha256 is the span hash the incremental constraint builder
	// keys flow blocks by.
	Enc []byte
	// Key and Cost are the fpcache sidecar fields; zero unless
	// Header.Sidecar.
	Key  [32]byte
	Cost time.Duration
}

// Reader decodes one artifact incrementally from an io.Reader: Header,
// then Next until io.EOF, then Finish. Peak memory is one file section.
//
// Verification order matters: the sha256 trailer arrives last, so a
// section handed out by Next is framing-valid but not yet
// checksum-settled — callers must not act on decoded data (beyond
// accumulating it) until Finish returns nil. ReadArtifact follows that
// contract; so does the coordinator, which commits a slice to the merge
// only after Finish.
//
// Sentinel fidelity with whole-buffer Decode: when the payload fails to
// parse mid-stream the reader cannot yet tell corruption (ErrChecksum)
// from an encoder bug (ErrEncoding) — a flipped length byte produces
// both a parse failure and a checksum mismatch. It therefore drains the
// rest of the declared payload, reads the trailer, and reports
// ErrChecksum if the running hash disagrees, ErrEncoding if it holds
// (and ErrTruncated if the input ends first) — the same verdicts Decode
// reaches by checking the checksum up front. All errors are terminal:
// the first failure latches and every later call returns it.
type Reader struct {
	src io.Reader
	sum hash.Hash
	// size counts every byte consumed from src (header, payload,
	// trailer) — the streamed artifact's encoded size.
	size int64
	// left is the declared payload bytes not yet consumed.
	left uint64

	hdr     Header
	hdrDone bool

	filesLeft int
	prevName  string
	hasPrev   bool
	sec       FileSection

	err error
}

// NewReader wraps src for streaming artifact decode. The reader buffers
// nothing beyond the current section; wrap src in a bufio.Reader if it
// is unbuffered (ReadFile does).
func NewReader(src io.Reader) *Reader {
	return &Reader{src: src, sum: sha256.New()}
}

// Size reports the bytes consumed from the source so far (the full
// encoded artifact size once Finish returns nil).
func (r *Reader) Size() int64 { return r.size }

// raw reads exactly len(p) bytes from the source into the running
// checksum. An early EOF is ErrTruncated.
func (r *Reader) raw(p []byte, what string) error {
	n, err := io.ReadFull(r.src, p)
	r.size += int64(n)
	r.sum.Write(p[:n])
	if err != nil {
		r.err = fmt.Errorf("%w: %s incomplete", ErrTruncated, what)
		return r.err
	}
	return nil
}

// pread reads exactly len(p) payload bytes; a read crossing the declared
// payload end is a parse fault (the drain-verify path decides its
// sentinel), an early EOF is ErrTruncated.
func (r *Reader) pread(p []byte, what string) error {
	if uint64(len(p)) > r.left {
		return r.fault("%s overruns payload (%d bytes declared, %d left)", what, len(p), r.left)
	}
	if err := r.raw(p, what); err != nil {
		return err
	}
	r.left -= uint64(len(p))
	return nil
}

// puvarint reads one uvarint from the payload.
func (r *Reader) puvarint(what string) (uint64, error) {
	var v uint64
	var b [1]byte
	for shift := 0; shift < 64; shift += 7 {
		if err := r.pread(b[:], what); err != nil {
			return 0, err
		}
		v |= uint64(b[0]&0x7f) << shift
		if b[0] < 0x80 {
			return v, nil
		}
	}
	return 0, r.fault("%s is not a varint", what)
}

// pstring reads one length-prefixed string from the payload.
func (r *Reader) pstring(what string) (string, error) {
	n, err := r.puvarint(what + " length")
	if err != nil {
		return "", err
	}
	if n > r.left {
		return "", r.fault("%s overruns payload (%d bytes declared, %d left)", what, n, r.left)
	}
	buf := make([]byte, n)
	if err := r.pread(buf, what); err != nil {
		return "", err
	}
	return string(buf), nil
}

// fault records a payload parse failure, then resolves its sentinel by
// draining the rest of the payload and settling the checksum: a bad hash
// means the parse failure was corruption (ErrChecksum), a good hash
// means the bytes are what the encoder wrote (ErrEncoding), and an EOF
// first means the artifact simply ends early (ErrTruncated).
func (r *Reader) fault(format string, args ...any) error {
	cause := fmt.Errorf("%w: "+format, append([]any{ErrEncoding}, args...)...)
	buf := make([]byte, 32*1024)
	for r.left > 0 {
		n := uint64(len(buf))
		if n > r.left {
			n = r.left
		}
		m, err := r.src.Read(buf[:n])
		r.size += int64(m)
		r.sum.Write(buf[:m])
		r.left -= uint64(m)
		if err != nil {
			r.err = fmt.Errorf("%w: artifact ends inside payload (%s)", ErrTruncated, cause)
			return r.err
		}
	}
	var trailer [checksumSize]byte
	n, err := io.ReadFull(r.src, trailer[:])
	r.size += int64(n)
	if err != nil {
		r.err = fmt.Errorf("%w: artifact ends before checksum (%s)", ErrTruncated, cause)
		return r.err
	}
	if got := r.sum.Sum(nil); string(got) != string(trailer[:]) {
		r.err = fmt.Errorf("%w (payload unparseable at the damage: %v)", ErrChecksum, cause)
		return r.err
	}
	r.err = cause
	return r.err
}

// Header reads and validates the envelope preamble (idempotent).
func (r *Reader) Header() (Header, error) {
	if r.err != nil {
		return Header{}, r.err
	}
	if r.hdrDone {
		return r.hdr, nil
	}
	var m [len(magic)]byte
	if err := r.raw(m[:], "magic"); err != nil {
		return Header{}, err
	}
	if string(m[:]) != magic {
		r.err = fmt.Errorf("%w: %q", ErrMagic, m[:])
		return Header{}, r.err
	}
	var verLen [2]byte
	if err := r.raw(verLen[:1], "header"); err != nil {
		return Header{}, err
	}
	if verLen[0] != codecVersion {
		r.err = fmt.Errorf("%w: got %d, want %d", ErrCodecVersion, verLen[0], codecVersion)
		return Header{}, r.err
	}
	var payloadLen uint64
	for shift := 0; ; shift += 7 {
		if shift >= 64 {
			r.err = fmt.Errorf("%w: payload length is not a varint", ErrEncoding)
			return Header{}, r.err
		}
		if err := r.raw(verLen[1:], "header length field"); err != nil {
			return Header{}, err
		}
		payloadLen |= uint64(verLen[1]&0x7f) << shift
		if verLen[1] < 0x80 {
			break
		}
	}
	if payloadLen > maxPayloadLen {
		r.err = fmt.Errorf("%w: implausible payload length %d", ErrEncoding, payloadLen)
		return Header{}, r.err
	}
	r.left = payloadLen

	av, err := r.pstring("analyzer version")
	if err != nil {
		return Header{}, err
	}
	slice, err := r.puvarint("slice index")
	if err != nil {
		return Header{}, err
	}
	slices, err := r.puvarint("slice count")
	if err != nil {
		return Header{}, err
	}
	if slices == 0 || slice >= slices || slices > 1<<20 {
		return Header{}, r.fault("slice %d of %d out of range", slice, slices)
	}
	var flags [1]byte
	if err := r.pread(flags[:], "flags"); err != nil {
		return Header{}, err
	}
	if flags[0]&^byte(flagSidecar) != 0 {
		return Header{}, r.fault("unknown flags 0x%02x", flags[0])
	}
	numFiles, err := r.puvarint("file count")
	if err != nil {
		return Header{}, err
	}
	// Every section costs at least a few bytes; a count beyond the
	// remaining payload cannot be real.
	if numFiles > r.left {
		return Header{}, r.fault("file count %d exceeds remaining payload (%d bytes)", numFiles, r.left)
	}
	r.hdr = Header{
		AnalyzerVersion: av,
		Slice:           int(slice),
		Slices:          int(slices),
		NumFiles:        int(numFiles),
		Sidecar:         flags[0]&flagSidecar != 0,
	}
	r.filesLeft = int(numFiles)
	r.hdrDone = true
	return r.hdr, nil
}

// Next returns the next file section, or io.EOF after the last one
// (call Finish then). The returned section is reused by the following
// Next call.
func (r *Reader) Next() (*FileSection, error) {
	if _, err := r.Header(); err != nil {
		return nil, err
	}
	if r.filesLeft == 0 {
		return nil, io.EOF
	}
	name, err := r.pstring("file name")
	if err != nil {
		return nil, err
	}
	if r.hasPrev && name <= r.prevName {
		return nil, r.fault("manifest not in sorted order (%q after %q)", name, r.prevName)
	}
	r.prevName, r.hasPrev = name, true
	r.sec = FileSection{Meta: FileMeta{Name: name}}
	if err := r.pread(r.sec.Meta.SHA256[:], "content hash"); err != nil {
		return nil, err
	}
	if r.sec.Meta.ParseError, err = r.pstring("parse error"); err != nil {
		return nil, err
	}
	if r.hdr.Sidecar {
		if err := r.pread(r.sec.Key[:], "sidecar key"); err != nil {
			return nil, err
		}
		cost, err := r.puvarint("sidecar cost")
		if err != nil {
			return nil, err
		}
		r.sec.Cost = time.Duration(cost)
	}
	graphLen, err := r.puvarint("graph length")
	if err != nil {
		return nil, err
	}
	if graphLen > r.left {
		return nil, r.fault("graph section overruns payload (%d bytes declared, %d left)", graphLen, r.left)
	}
	// A fresh buffer per section: the decoded graph and Enc stay valid
	// for the caller while peak memory remains one section.
	enc := make([]byte, graphLen)
	if err := r.pread(enc, "graph section"); err != nil {
		return nil, err
	}
	g, tail, err := propgraph.DecodeBinary(enc)
	if err != nil {
		return nil, r.fault("graph section for %q: %v", name, err)
	}
	if len(tail) != 0 {
		return nil, r.fault("%d bytes after graph for %q", len(tail), name)
	}
	r.sec.Graph = g
	r.sec.Enc = enc
	r.filesLeft--
	return &r.sec, nil
}

// Finish consumes the trailer and settles the running checksum; only a
// nil return validates everything the reader handed out. It also
// rejects bytes after the trailer (ErrTrailing) — an artifact stream
// carries exactly one artifact.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if _, err := r.Header(); err != nil {
		return err
	}
	if r.filesLeft > 0 {
		r.err = fmt.Errorf("shard: Finish called with %d file sections unread", r.filesLeft)
		return r.err
	}
	if r.left > 0 {
		return r.fault("%d payload bytes after the last file section", r.left)
	}
	var trailer [checksumSize]byte
	n, err := io.ReadFull(r.src, trailer[:])
	r.size += int64(n)
	if err != nil {
		r.err = fmt.Errorf("%w: checksum incomplete", ErrTruncated)
		return r.err
	}
	if got := r.sum.Sum(nil); string(got) != string(trailer[:]) {
		r.err = ErrChecksum
		return r.err
	}
	var one [1]byte
	if m, _ := io.ReadFull(r.src, one[:]); m > 0 {
		r.size += int64(m)
		r.err = fmt.Errorf("%w: data after checksum", ErrTrailing)
		return r.err
	}
	return nil
}

// ReadOptions configures streaming artifact assembly.
type ReadOptions struct {
	// Cache, when non-nil, ingests the artifact's fpcache sidecar:
	// each file's entry is written under its shipped key so later
	// front-end runs over the same content hit instead of re-analyzing.
	// Entries are staged in memory and committed only after the
	// artifact's checksum settles — a corrupt artifact must not seed a
	// "valid" cache entry.
	Cache *fpcache.Cache
	// Metrics, when non-nil, receives stage.shard.stream and
	// shard.stream.bytes observations.
	Metrics *obs.Registry
	// Log, when non-nil, reports non-fatal sidecar write failures.
	Log *obs.Logger
}

// ReadArtifact streams one artifact from src: header, every file
// section (folding graphs into the slice union as they arrive), then
// the checksum trailer. Peak memory is one file section plus the
// accumulating slice graph — the encoded artifact is never resident.
func ReadArtifact(src io.Reader, opts ReadOptions) (*Artifact, error) {
	start := time.Now()
	r := NewReader(src)
	hdr, err := r.Header()
	if err != nil {
		return nil, err
	}
	a := &Artifact{
		AnalyzerVersion: hdr.AnalyzerVersion,
		Slice:           hdr.Slice,
		Slices:          hdr.Slices,
		Sidecar:         hdr.Sidecar,
		Files:           make([]FileMeta, 0, hdr.NumFiles),
		FileHashes:      make([][32]byte, 0, hdr.NumFiles),
		FileEvents:      make([]int, 0, hdr.NumFiles),
	}
	type staged struct {
		key  [32]byte
		data []byte
	}
	var sidecar []staged
	ub := propgraph.NewUnionBuilder()
	for {
		sec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		a.Files = append(a.Files, sec.Meta)
		a.FileHashes = append(a.FileHashes, sha256.Sum256(sec.Enc))
		a.FileEvents = append(a.FileEvents, len(sec.Graph.Events))
		if hdr.Sidecar {
			a.SidecarKeys = append(a.SidecarKeys, sec.Key)
			a.SidecarCosts = append(a.SidecarCosts, sec.Cost)
			if opts.Cache != nil {
				sidecar = append(sidecar, staged{sec.Key, fpcache.EncodeRawEntry(sec.Enc, sec.Meta.ParseError, sec.Cost)})
			}
		}
		ub.Add(sec.Graph)
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	a.Graph = ub.Graph()
	a.Size = r.Size()
	// The trailer has settled; only now may sidecar entries become
	// visible cache state.
	for _, s := range sidecar {
		if _, err := opts.Cache.PutRawKey(s.key, s.data); err != nil {
			opts.Log.Log("shard.sidecar", "error", err)
		}
	}
	if opts.Metrics != nil {
		opts.Metrics.Add(obs.CounterShardStreamBytes, a.Size)
		opts.Metrics.ObserveDuration(obs.StageShardStream, time.Since(start))
	}
	return a, nil
}
