package shard

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"sync"

	"seldon/internal/fpcache"
	"seldon/internal/obs"
)

// The local-process executor: the smallest real deployment of the
// worker/coordinator split. Each slice is analyzed by a seldon-shard
// subprocess writing its artifact to a stdout pipe, and the coordinator
// streams the artifacts off those pipes through the incremental decoder
// — so the whole distributed flow (worker binary, wire format, pipelined
// ingestion) is exercised end to end on one box (and in CI) with no
// scheduler or network. A production deployment replaces this fan-out
// with remote workers shipping the same artifacts.

// ExecConfig configures a local fan-out.
type ExecConfig struct {
	// Bin is the seldon-shard binary to spawn.
	Bin string
	// Slices is the number of worker subprocesses (one per slice).
	Slices int
	// Dir or Generate designates the corpus, exactly as the worker's
	// -dir / -generate flags do; every worker gets the same designation
	// plus its own slice coordinates.
	Dir      string
	Generate int
	// Workers is each subprocess's front-end pool size (0 = its default).
	Workers int
	// CacheDir, when set, is a shared fpcache directory passed to every
	// worker (fpcache writes are atomic, so concurrent workers are safe).
	CacheDir string
	// ShipCache asks each worker to attach the fpcache sidecar to its
	// artifact (-ship-cache); Ingest, when non-nil, is the coordinator's
	// fpcache the shipped entries are written into.
	ShipCache bool
	Ingest    *fpcache.Cache
	// Metrics, when non-nil, receives the streaming-decode observations
	// (stage.shard.stream, shard.stream.bytes).
	Metrics *obs.Registry
	// Stderr receives the workers' stderr (nil = the parent's stderr).
	Stderr io.Writer
}

// workerProc is one spawned slice worker and the read end of its
// artifact pipe.
type workerProc struct {
	idx int
	cmd *exec.Cmd
	out io.ReadCloser
}

// startWorkers spawns every slice worker with its stdout piped back. On
// a spawn failure the already-started workers are killed and reaped.
func startWorkers(cfg ExecConfig) ([]workerProc, error) {
	stderr := cfg.Stderr
	if stderr == nil {
		stderr = os.Stderr
	}
	procs := make([]workerProc, 0, cfg.Slices)
	for i := 0; i < cfg.Slices; i++ {
		args := []string{
			"-slices", strconv.Itoa(cfg.Slices),
			"-slice", strconv.Itoa(i),
			"-o", "-",
		}
		switch {
		case cfg.Dir != "":
			args = append(args, "-dir", cfg.Dir)
		case cfg.Generate > 0:
			args = append(args, "-generate", strconv.Itoa(cfg.Generate))
		}
		if cfg.Workers > 0 {
			args = append(args, "-workers", strconv.Itoa(cfg.Workers))
		}
		if cfg.CacheDir != "" {
			args = append(args, "-cache-dir", cfg.CacheDir)
		}
		if cfg.ShipCache {
			args = append(args, "-ship-cache")
		}
		cmd := exec.Command(cfg.Bin, args...)
		cmd.Stderr = stderr
		out, err := cmd.StdoutPipe()
		if err == nil {
			err = cmd.Start()
		}
		if err != nil {
			for _, p := range procs {
				p.cmd.Process.Kill()
				p.out.Close()
				p.cmd.Wait()
			}
			return nil, fmt.Errorf("shard: exec: slice %d/%d (%s): %w", i, cfg.Slices, cfg.Bin, err)
		}
		procs = append(procs, workerProc{idx: i, cmd: cmd, out: out})
	}
	return procs, nil
}

// finish closes the worker's pipe (unblocking it with EPIPE if it is
// still writing) and reaps it, reporting a nonzero exit.
func (p *workerProc) finish(bin string, slices int) error {
	p.out.Close()
	if err := p.cmd.Wait(); err != nil {
		return fmt.Errorf("shard: exec: slice %d/%d (%s): %w", p.idx, slices, bin, err)
	}
	return nil
}

// ExecLocal runs one seldon-shard subprocess per slice concurrently,
// streams each artifact off its stdout pipe through the incremental
// decoder (decode overlaps worker execution — no worker's output is
// ever buffered whole), and returns the artifacts in slice order.
//
// Failure reporting names the slice and preserves the decoder's
// sentinel: a worker dying mid-write surfaces as slice i's ErrTruncated
// (the pipe ends inside the payload), never as a generic decode error —
// and never as a hang, because every pipe is closed and every worker
// reaped on the way out.
func ExecLocal(cfg ExecConfig) ([]*Artifact, error) {
	if cfg.Slices < 1 {
		return nil, fmt.Errorf("shard: exec: need at least 1 slice, got %d", cfg.Slices)
	}
	procs, err := startWorkers(cfg)
	if err != nil {
		return nil, err
	}
	ropts := ReadOptions{Cache: cfg.Ingest, Metrics: cfg.Metrics}
	arts := make([]*Artifact, cfg.Slices)
	errs := make([]error, cfg.Slices)
	var wg sync.WaitGroup
	for i := range procs {
		wg.Add(1)
		go func(p *workerProc) {
			defer wg.Done()
			a, err := ReadArtifact(bufio.NewReaderSize(p.out, 64<<10), ropts)
			// Reap unconditionally: a decode error must still close the
			// pipe (EPIPE unblocks a still-writing worker) and Wait.
			werr := p.finish(cfg.Bin, cfg.Slices)
			switch {
			case err != nil:
				// The decode sentinel carries the diagnosis (a dead worker
				// is a truncated stream); the exit status is secondary.
				errs[p.idx] = fmt.Errorf("shard: exec: slice %d/%d: %w", p.idx, cfg.Slices, err)
			case werr != nil:
				errs[p.idx] = werr
			default:
				arts[p.idx] = a
			}
		}(&procs[i])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return arts, nil
}

// ExecMerge is the pipelined fan-out: workers run concurrently, and the
// coordinator streams artifacts off the pipes in slice order, folding
// each one into the merge as its checksum settles — slice i is decoded
// and merged while workers i+1..n are still analyzing, and the decoded
// artifacts are released as they fold, so peak coordinator memory is
// one artifact, not the corpus. (A finished out-of-turn worker parks
// cheaply on pipe backpressure: its analysis is done and its encoded
// bytes sit in the pipe buffer until the coordinator's turn-taking
// reaches it.)
func ExecMerge(cfg ExecConfig, mopts MergeOptions) (*MergeResult, error) {
	if cfg.Slices < 1 {
		return nil, fmt.Errorf("shard: exec: need at least 1 slice, got %d", cfg.Slices)
	}
	procs, err := startWorkers(cfg)
	if err != nil {
		return nil, err
	}
	ropts := ReadOptions{Cache: cfg.Ingest, Metrics: cfg.Metrics}
	m := NewMerger(mopts)
	fail := func(i int, err error) error {
		// Close every unread pipe (EPIPE stops still-running workers)
		// and reap everything before reporting — no orphans, no hang.
		for j := i; j < len(procs); j++ {
			procs[j].finish(cfg.Bin, cfg.Slices)
		}
		return err
	}
	for i := range procs {
		p := &procs[i]
		a, err := ReadArtifact(bufio.NewReaderSize(p.out, 64<<10), ropts)
		if err != nil {
			return nil, fail(i, fmt.Errorf("shard: exec: slice %d/%d: %w", p.idx, cfg.Slices, err))
		}
		if err := p.finish(cfg.Bin, cfg.Slices); err != nil {
			return nil, fail(i+1, err)
		}
		if err := m.Commit(a); err != nil {
			return nil, fail(i+1, err)
		}
	}
	return m.Finish()
}
