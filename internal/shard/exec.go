package shard

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"sync"
)

// The local-process executor: the smallest real deployment of the
// worker/coordinator split. Each slice is analyzed by a seldon-shard
// subprocess writing its artifact to a stdout pipe, so the whole
// distributed flow — worker binary, wire format, coordinator ingestion —
// is exercised end to end on one box (and in CI) with no scheduler or
// network. A production deployment replaces this fan-out with remote
// workers shipping the same artifacts.

// ExecConfig configures a local fan-out.
type ExecConfig struct {
	// Bin is the seldon-shard binary to spawn.
	Bin string
	// Slices is the number of worker subprocesses (one per slice).
	Slices int
	// Dir or Generate designates the corpus, exactly as the worker's
	// -dir / -generate flags do; every worker gets the same designation
	// plus its own slice coordinates.
	Dir      string
	Generate int
	// Workers is each subprocess's front-end pool size (0 = its default).
	Workers int
	// CacheDir, when set, is a shared fpcache directory passed to every
	// worker (fpcache writes are atomic, so concurrent workers are safe).
	CacheDir string
	// Stderr receives the workers' stderr (nil = the parent's stderr).
	Stderr io.Writer
}

// ExecLocal runs one seldon-shard subprocess per slice concurrently,
// decodes each artifact off its stdout pipe, and returns them in slice
// order. A worker that exits nonzero, or emits an undecodable artifact,
// fails the whole fan-out with an error naming the slice.
func ExecLocal(cfg ExecConfig) ([]*Artifact, error) {
	if cfg.Slices < 1 {
		return nil, fmt.Errorf("shard: exec: need at least 1 slice, got %d", cfg.Slices)
	}
	stderr := cfg.Stderr
	if stderr == nil {
		stderr = os.Stderr
	}
	arts := make([]*Artifact, cfg.Slices)
	errs := make([]error, cfg.Slices)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Slices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			args := []string{
				"-slices", strconv.Itoa(cfg.Slices),
				"-slice", strconv.Itoa(i),
				"-o", "-",
			}
			switch {
			case cfg.Dir != "":
				args = append(args, "-dir", cfg.Dir)
			case cfg.Generate > 0:
				args = append(args, "-generate", strconv.Itoa(cfg.Generate))
			}
			if cfg.Workers > 0 {
				args = append(args, "-workers", strconv.Itoa(cfg.Workers))
			}
			if cfg.CacheDir != "" {
				args = append(args, "-cache-dir", cfg.CacheDir)
			}
			cmd := exec.Command(cfg.Bin, args...)
			var out bytes.Buffer
			cmd.Stdout = &out
			cmd.Stderr = stderr
			if err := cmd.Run(); err != nil {
				errs[i] = fmt.Errorf("shard: exec: slice %d/%d (%s): %w",
					i, cfg.Slices, cfg.Bin, err)
				return
			}
			a, err := Decode(out.Bytes())
			if err != nil {
				errs[i] = fmt.Errorf("shard: exec: slice %d/%d: %w", i, cfg.Slices, err)
				return
			}
			arts[i] = a
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return arts, nil
}
