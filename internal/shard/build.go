package shard

import (
	"crypto/sha256"
	"fmt"
	"time"

	"seldon/internal/core"
	"seldon/internal/fpcache"
	"seldon/internal/obs"
	"seldon/internal/propgraph"
)

// The worker side: analyze one corpus slice and assemble its artifact.
// Everything heavy is reused from the in-process pipeline — the parallel
// per-file front-end (core.AnalyzeFiles, including fpcache consultation
// through cfg.Cache), the symbol-translating graph union, and the obs
// stage timers — so a shard worker is the single-process front-end with
// an encoder where the learner used to be.

// Build analyzes an already-sliced corpus (files is slice i of n, e.g.
// from core.SliceFiles or corpus.Slice) and returns its artifact plus
// the front-end result for telemetry. The artifact's graph is the union
// of the slice's per-file graphs in sorted name order, carrying a
// per-shard symbol table.
func Build(files map[string]string, i, n int, cfg core.Config) (*Artifact, *core.FrontEnd, error) {
	if n < 1 || i < 0 || i >= n {
		return nil, nil, fmt.Errorf("shard: slice %d of %d out of range", i, n)
	}
	t0 := time.Now()
	fe := core.AnalyzeFiles(files, cfg)
	g := propgraph.Union(fe.Graphs...)
	cfg.Metrics.ObserveDuration(obs.StageShardAnalyze, time.Since(t0))

	perr := make(map[string]string, len(fe.ParseErrorFiles))
	for j, name := range fe.ParseErrorFiles {
		perr[name] = fe.ParseErrs[j].Error()
	}
	metas := make([]FileMeta, len(fe.Names))
	for j, name := range fe.Names {
		metas[j] = FileMeta{
			Name:       name,
			SHA256:     sha256.Sum256([]byte(files[name])),
			ParseError: perr[name],
		}
	}
	a := &Artifact{
		AnalyzerVersion: fpcache.AnalyzerVersion,
		Slice:           i,
		Slices:          n,
		Files:           metas,
		Graph:           g,
	}
	cfg.Metrics.Set(obs.GaugeShardFiles, float64(len(metas)))
	cfg.Metrics.Set(obs.GaugeShardSlices, float64(n))
	cfg.Log.Log("shard.build", "slice", i, "of", n, "files", len(metas),
		"events", len(g.Events))
	return a, fe, nil
}

// BuildFromCorpus slices the full corpus by sorted file name
// (core.SliceFiles) and builds slice i of n — the in-process convenience
// the tests and single-box executor paths use; a real worker reads only
// its slice and calls Build.
func BuildFromCorpus(files map[string]string, i, n int, cfg core.Config) (*Artifact, *core.FrontEnd, error) {
	return Build(core.SliceFiles(files, i, n), i, n, cfg)
}
