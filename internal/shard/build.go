package shard

import (
	"crypto/sha256"
	"fmt"
	"time"

	"seldon/internal/core"
	"seldon/internal/fpcache"
	"seldon/internal/obs"
	"seldon/internal/propgraph"
)

// The worker side: analyze one corpus slice and assemble its artifact.
// Everything heavy is reused from the in-process pipeline — the parallel
// per-file front-end (core.AnalyzeFiles, including fpcache consultation
// through cfg.Cache), the symbol-translating graph union, and the obs
// stage timers — so a shard worker is the single-process front-end with
// an encoder where the learner used to be.

// Build analyzes an already-sliced corpus (files is slice i of n, e.g.
// from core.SliceFiles or corpus.Slice) and returns its artifact plus
// the front-end result for telemetry. The artifact's graph is the union
// of the slice's per-file graphs in sorted name order, carrying a
// per-shard symbol table.
func Build(files map[string]string, i, n int, cfg core.Config) (*Artifact, *core.FrontEnd, error) {
	if n < 1 || i < 0 || i >= n {
		return nil, nil, fmt.Errorf("shard: slice %d of %d out of range", i, n)
	}
	t0 := time.Now()
	fe := core.AnalyzeFiles(files, cfg)
	g := propgraph.Union(fe.Graphs...)
	cfg.Metrics.ObserveDuration(obs.StageShardAnalyze, time.Since(t0))

	perr := make(map[string]string, len(fe.ParseErrorFiles))
	for j, name := range fe.ParseErrorFiles {
		perr[name] = fe.ParseErrs[j].Error()
	}
	metas := make([]FileMeta, len(fe.Names))
	hashes := make([][32]byte, len(fe.Names))
	events := make([]int, len(fe.Names))
	var encBuf []byte
	for j, name := range fe.Names {
		metas[j] = FileMeta{
			Name:       name,
			SHA256:     sha256.Sum256([]byte(files[name])),
			ParseError: perr[name],
		}
		// The span hash is over the file graph's binary encoding — the
		// same bytes the artifact ships as this file's graph section, so
		// a streaming coordinator recomputes the identical hash.
		encBuf = fe.Graphs[j].AppendBinary(encBuf[:0])
		hashes[j] = sha256.Sum256(encBuf)
		events[j] = len(fe.Graphs[j].Events)
	}
	a := &Artifact{
		AnalyzerVersion: fpcache.AnalyzerVersion,
		Slice:           i,
		Slices:          n,
		Files:           metas,
		Graph:           g,
		FileGraphs:      fe.Graphs,
		FileHashes:      hashes,
		FileEvents:      events,
	}
	cfg.Metrics.Set(obs.GaugeShardFiles, float64(len(metas)))
	cfg.Metrics.Set(obs.GaugeShardSlices, float64(n))
	cfg.Log.Log("shard.build", "slice", i, "of", n, "files", len(metas),
		"events", len(g.Events))
	return a, fe, nil
}

// AttachSidecar equips the artifact with the fpcache sidecar: each
// file's content-addressed cache key (fpcache.KeyBytes over the same
// corpus content Build analyzed) and its recorded analysis cost from
// the front-end. A coordinator ingesting the artifact can then seed its
// own fpcache with the worker's results — shipping the warmth with the
// graph instead of re-analyzing to recreate it.
func (a *Artifact) AttachSidecar(files map[string]string, fe *core.FrontEnd) {
	keys := make([][32]byte, len(a.Files))
	costs := make([]time.Duration, len(a.Files))
	for j := range a.Files {
		name := a.Files[j].Name
		keys[j] = fpcache.KeyBytes(name, files[name])
		if j < len(fe.Costs) {
			costs[j] = fe.Costs[j]
		}
	}
	a.SidecarKeys = keys
	a.SidecarCosts = costs
	a.Sidecar = true
}

// BuildFromCorpus slices the full corpus by sorted file name
// (core.SliceFiles) and builds slice i of n — the in-process convenience
// the tests and single-box executor paths use; a real worker reads only
// its slice and calls Build.
func BuildFromCorpus(files map[string]string, i, n int, cfg core.Config) (*Artifact, *core.FrontEnd, error) {
	return Build(core.SliceFiles(files, i, n), i, n, cfg)
}
