package shard

import (
	"bytes"
	"io"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"

	"seldon/internal/core"
	"seldon/internal/corpus"
	"seldon/internal/propgraph"
)

// buildWorkerBin compiles cmd/seldon-shard into a temp dir so the test
// exercises the real subprocess fan-out, pipes and all.
func buildWorkerBin(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode: skipping worker-binary build")
	}
	bin := filepath.Join(t.TempDir(), "seldon-shard")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	cmd := exec.Command("go", "build", "-o", bin, "seldon/cmd/seldon-shard")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build seldon-shard: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	return filepath.Dir(string(bytes.TrimSpace(out)))
}

// TestExecLocal runs the whole worker/coordinator flow over real
// subprocesses: 3 seldon-shard processes on a generated corpus, merged,
// and compared against the in-process union of the same corpus.
func TestExecLocal(t *testing.T) {
	bin := buildWorkerBin(t)
	const nFiles, nSlices = 40, 3

	arts, err := ExecLocal(ExecConfig{
		Bin: bin, Slices: nSlices, Generate: nFiles,
		Workers: 1, Stderr: io.Discard,
	})
	if err != nil {
		t.Fatalf("ExecLocal: %v", err)
	}
	if len(arts) != nSlices {
		t.Fatalf("got %d artifacts, want %d", len(arts), nSlices)
	}
	for i, a := range arts {
		if a.Slice != i {
			t.Errorf("artifact %d claims slice %d", i, a.Slice)
		}
		if a.Size == 0 {
			t.Errorf("artifact %d has no recorded size", i)
		}
	}

	res, err := Merge(arts, MergeOptions{})
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	files := corpus.Generate(corpus.Config{Files: nFiles}).FileMap()
	fe := core.AnalyzeFiles(files, core.Config{Workers: 1})
	want := propgraph.Union(fe.Graphs...)
	if !bytes.Equal(res.Graph.AppendBinary(nil), want.AppendBinary(nil)) {
		t.Error("subprocess-merged graph differs from in-process union")
	}
	if res.Bytes == 0 {
		t.Error("merge result records zero artifact bytes")
	}
}

// TestExecLocalWorkerFailure: a worker that dies must fail the fan-out
// with an error naming its slice, not yield a partial merge.
func TestExecLocalWorkerFailure(t *testing.T) {
	bin := buildWorkerBin(t)
	// No corpus designation: every worker exits nonzero.
	_, err := ExecLocal(ExecConfig{Bin: bin, Slices: 2, Stderr: io.Discard})
	if err == nil {
		t.Fatal("ExecLocal succeeded with workers that had no corpus")
	}
}

func TestExecLocalRejectsZeroSlices(t *testing.T) {
	if _, err := ExecLocal(ExecConfig{Bin: "true", Slices: 0}); err == nil {
		t.Fatal("ExecLocal accepted 0 slices")
	}
}
