package shard

import (
	"bytes"
	"errors"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"seldon/internal/core"
	"seldon/internal/corpus"
	"seldon/internal/propgraph"
)

// buildWorkerBin compiles cmd/seldon-shard into a temp dir so the test
// exercises the real subprocess fan-out, pipes and all.
func buildWorkerBin(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode: skipping worker-binary build")
	}
	bin := filepath.Join(t.TempDir(), "seldon-shard")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	cmd := exec.Command("go", "build", "-o", bin, "seldon/cmd/seldon-shard")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build seldon-shard: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	return filepath.Dir(string(bytes.TrimSpace(out)))
}

// TestExecLocal runs the whole worker/coordinator flow over real
// subprocesses: 3 seldon-shard processes on a generated corpus, merged,
// and compared against the in-process union of the same corpus.
func TestExecLocal(t *testing.T) {
	bin := buildWorkerBin(t)
	const nFiles, nSlices = 40, 3

	arts, err := ExecLocal(ExecConfig{
		Bin: bin, Slices: nSlices, Generate: nFiles,
		Workers: 1, Stderr: io.Discard,
	})
	if err != nil {
		t.Fatalf("ExecLocal: %v", err)
	}
	if len(arts) != nSlices {
		t.Fatalf("got %d artifacts, want %d", len(arts), nSlices)
	}
	for i, a := range arts {
		if a.Slice != i {
			t.Errorf("artifact %d claims slice %d", i, a.Slice)
		}
		if a.Size == 0 {
			t.Errorf("artifact %d has no recorded size", i)
		}
	}

	res, err := Merge(arts, MergeOptions{})
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	files := corpus.Generate(corpus.Config{Files: nFiles}).FileMap()
	fe := core.AnalyzeFiles(files, core.Config{Workers: 1})
	want := propgraph.Union(fe.Graphs...)
	if !bytes.Equal(res.Graph.AppendBinary(nil), want.AppendBinary(nil)) {
		t.Error("subprocess-merged graph differs from in-process union")
	}
	if res.Bytes == 0 {
		t.Error("merge result records zero artifact bytes")
	}
}

// TestExecLocalWorkerFailure: a worker that dies must fail the fan-out
// with an error naming its slice, not yield a partial merge.
func TestExecLocalWorkerFailure(t *testing.T) {
	bin := buildWorkerBin(t)
	// No corpus designation: every worker exits nonzero.
	_, err := ExecLocal(ExecConfig{Bin: bin, Slices: 2, Stderr: io.Discard})
	if err == nil {
		t.Fatal("ExecLocal succeeded with workers that had no corpus")
	}
}

func TestExecLocalRejectsZeroSlices(t *testing.T) {
	if _, err := ExecLocal(ExecConfig{Bin: "true", Slices: 0}); err == nil {
		t.Fatal("ExecLocal accepted 0 slices")
	}
}

// TestExecMerge runs the pipelined fan-out end to end: 3 subprocesses
// streaming into the commit queue, with the result byte-identical to
// the in-process union and peak decoded footprint below the whole-set
// total (the point of streaming).
func TestExecMerge(t *testing.T) {
	bin := buildWorkerBin(t)
	const nFiles, nSlices = 40, 3

	res, err := ExecMerge(ExecConfig{
		Bin: bin, Slices: nSlices, Generate: nFiles,
		Workers: 1, Stderr: io.Discard,
	}, MergeOptions{})
	if err != nil {
		t.Fatalf("ExecMerge: %v", err)
	}
	files := corpus.Generate(corpus.Config{Files: nFiles}).FileMap()
	fe := core.AnalyzeFiles(files, core.Config{Workers: 1})
	want := propgraph.Union(fe.Graphs...)
	if !bytes.Equal(res.Graph.AppendBinary(nil), want.AppendBinary(nil)) {
		t.Error("pipelined-merge graph differs from in-process union")
	}
	if len(res.Spans) != nFiles {
		t.Errorf("merge produced %d spans, want %d", len(res.Spans), nFiles)
	}
	if res.PeakBytes <= 0 || res.PeakBytes >= res.Bytes {
		t.Errorf("PeakBytes = %d, want within (0, %d): in-order streaming must not hold the whole set",
			res.PeakBytes, res.Bytes)
	}
}

// truncatingWorker writes a fake worker script that emits the first n
// bytes of a real artifact and then dies — a worker crashing mid-write.
func truncatingWorker(t *testing.T, n int) string {
	t.Helper()
	if runtime.GOOS == "windows" {
		t.Skip("sh script worker")
	}
	dir := t.TempDir()
	art := filepath.Join(dir, "good.shard")
	data := buildSlice(t, testFiles(t, 12), 0, 2).Encode()
	if n >= len(data) {
		t.Fatalf("truncation point %d beyond artifact (%d bytes)", n, len(data))
	}
	if err := os.WriteFile(art, data[:n], 0o644); err != nil {
		t.Fatal(err)
	}
	script := filepath.Join(dir, "worker.sh")
	if err := os.WriteFile(script, []byte("#!/bin/sh\ncat "+art+"\nexit 1\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	return script
}

// TestExecLocalPipeDeath: a worker dying mid-stream must surface as its
// slice's streaming sentinel (ErrTruncated — the pipe ended inside the
// payload), with the slice index in the message, and must never hang.
func TestExecLocalPipeDeath(t *testing.T) {
	bin := truncatingWorker(t, 100)
	_, err := ExecLocal(ExecConfig{Bin: bin, Slices: 2, Stderr: io.Discard})
	if err == nil {
		t.Fatal("ExecLocal succeeded with a mid-stream worker death")
	}
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("ExecLocal error = %v, want ErrTruncated", err)
	}
	if !strings.Contains(err.Error(), "slice 0/2") {
		t.Errorf("ExecLocal error %q does not name the failed slice", err)
	}
}

// TestExecMergePipeDeath: the same death through the pipelined merge
// path — the commit queue must report the sentinel promptly, not wait
// for slices that will never complete.
func TestExecMergePipeDeath(t *testing.T) {
	bin := truncatingWorker(t, 100)
	done := make(chan error, 1)
	go func() {
		_, err := ExecMerge(ExecConfig{Bin: bin, Slices: 2, Stderr: io.Discard}, MergeOptions{})
		done <- err
	}()
	var err error
	select {
	case err = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("ExecMerge hung on a dead worker")
	}
	if err == nil {
		t.Fatal("ExecMerge succeeded with a mid-stream worker death")
	}
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("ExecMerge error = %v, want ErrTruncated", err)
	}
	if !strings.Contains(err.Error(), "slice 0/2") {
		t.Errorf("ExecMerge error %q does not name the failed slice", err)
	}
}
