package shard

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"io"
	"math/rand"
	"path/filepath"
	"testing"

	"seldon/internal/core"
	"seldon/internal/corpus"
	"seldon/internal/fpcache"
	"seldon/internal/obs"
	"seldon/internal/propgraph"
	"seldon/internal/specio"
)

// sectionBoundaries walks a well-formed artifact with the streaming
// reader and records the byte offset after the header and after each
// file section — the exact places a transfer can die between sections.
func sectionBoundaries(t *testing.T, data []byte) []int64 {
	t.Helper()
	r := NewReader(bytes.NewReader(data))
	if _, err := r.Header(); err != nil {
		t.Fatalf("Header over good artifact: %v", err)
	}
	offs := []int64{r.Size()}
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next over good artifact: %v", err)
		}
		offs = append(offs, r.Size())
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish over good artifact: %v", err)
	}
	return offs
}

// streamDecode runs the full streaming path over a byte stream.
func streamDecode(data []byte) (*Artifact, error) {
	return ReadArtifact(bytes.NewReader(data), ReadOptions{})
}

// TestStreamReaderFaults extends the decode fault matrix to the
// streaming reader: truncation at every section boundary (and inside a
// section), a bit flip inside a graph section, and trailing bytes after
// the sha256 trailer — each mapping to the same sentinel the
// whole-buffer decoder reports.
func TestStreamReaderFaults(t *testing.T) {
	files := testFiles(t, 12)
	art := buildSlice(t, files, 0, 1)
	good := art.Encode()
	offs := sectionBoundaries(t, good)
	if len(offs) < 3 {
		t.Fatalf("fixture has %d sections, want several", len(offs)-1)
	}

	t.Run("truncation at every section boundary", func(t *testing.T) {
		for i, off := range offs {
			if _, err := streamDecode(good[:off]); !errors.Is(err, ErrTruncated) {
				t.Errorf("cut at boundary %d (offset %d): %v, want ErrTruncated", i, off, err)
			}
		}
	})
	t.Run("truncation inside a section", func(t *testing.T) {
		for i := 1; i < len(offs); i++ {
			off := offs[i] - 3 // inside section i-1's graph bytes
			if _, err := streamDecode(good[:off]); !errors.Is(err, ErrTruncated) {
				t.Errorf("cut inside section %d (offset %d): %v, want ErrTruncated", i-1, off, err)
			}
		}
	})
	t.Run("truncation inside the trailer", func(t *testing.T) {
		if _, err := streamDecode(good[:len(good)-1]); !errors.Is(err, ErrTruncated) {
			t.Errorf("cut trailer: want ErrTruncated")
		}
	})
	t.Run("bit flip inside a graph section", func(t *testing.T) {
		// Flip a byte in every section's graph bytes (the tail of each
		// section): whether the damaged graph still parses or not, the
		// running checksum must convict before the artifact is usable.
		for i := 1; i < len(offs); i++ {
			data := append([]byte(nil), good...)
			data[offs[i]-2] ^= 0x40
			a, err := streamDecode(data)
			if a != nil {
				t.Fatalf("section %d: damaged artifact decoded to a non-nil result", i-1)
			}
			if !errors.Is(err, ErrChecksum) {
				t.Errorf("section %d flip: %v, want ErrChecksum", i-1, err)
			}
		}
	})
	t.Run("trailing bytes after the trailer", func(t *testing.T) {
		if _, err := streamDecode(append(append([]byte(nil), good...), 0xEE)); !errors.Is(err, ErrTrailing) {
			t.Error("trailing byte: want ErrTrailing")
		}
	})
	t.Run("sections survive until checksum settles", func(t *testing.T) {
		// The success path of the same walk: every section the reader
		// yields carries the bytes whose hashes the merge will span on.
		a, err := streamDecode(good)
		if err != nil {
			t.Fatalf("streamDecode(good): %v", err)
		}
		if len(a.Files) != len(files) || len(a.FileHashes) != len(files) {
			t.Fatalf("decoded %d files / %d hashes, want %d", len(a.Files), len(a.FileHashes), len(files))
		}
	})
}

// TestStreamingMergeDeterminism extends the shard-count × shuffled-
// arrival oracle to the streaming path: artifacts stream through
// ReadArtifact and a Merger commit queue in random arrival order, and
// the union, fingerprint, and per-file spans must match the
// single-process run byte for byte.
func TestStreamingMergeDeterminism(t *testing.T) {
	files := corpus.Generate(corpus.Config{Files: 60}).FileMap()

	fe := core.AnalyzeFiles(files, core.Config{Workers: 1})
	want := propgraph.Union(fe.Graphs...).AppendBinary(nil)
	wantFP := specio.Fingerprint(files)
	// The spans a single process would hand BuildIncremental.
	wantSpans := make([]struct {
		lo, hi int
		hash   [32]byte
	}, len(fe.Names))
	at := 0
	for i, g := range fe.Graphs {
		wantSpans[i].lo = at
		at += len(g.Events)
		wantSpans[i].hi = at
		wantSpans[i].hash = sha256.Sum256(g.AppendBinary(nil))
	}

	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 4, 7} {
		order := rng.Perm(n)
		m := NewMerger(MergeOptions{})
		var total int64
		for _, i := range order {
			a, err := streamDecode(buildSlice(t, files, i, n).Encode())
			if err != nil {
				t.Fatalf("n=%d slice %d: stream decode: %v", n, i, err)
			}
			total += a.Size
			if err := m.Commit(a); err != nil {
				t.Fatalf("n=%d slice %d: Commit: %v", n, i, err)
			}
		}
		res, err := m.Finish()
		if err != nil {
			t.Fatalf("n=%d: Finish: %v", n, err)
		}
		if got := res.Graph.AppendBinary(nil); !bytes.Equal(got, want) {
			t.Errorf("n=%d order %v: streamed union differs from single-process union", n, order)
		}
		if res.CorpusFingerprint != wantFP {
			t.Errorf("n=%d: fingerprint %s, want %s", n, res.CorpusFingerprint, wantFP)
		}
		if len(res.Spans) != len(wantSpans) {
			t.Fatalf("n=%d: %d spans, want %d", n, len(res.Spans), len(wantSpans))
		}
		for i, sp := range res.Spans {
			w := wantSpans[i]
			if sp.File != fe.Names[i] || sp.Lo != w.lo || sp.Hi != w.hi || sp.Hash != w.hash {
				t.Fatalf("n=%d span %d = {%s %d %d}, want {%s %d %d} (hash match %v)",
					n, i, sp.File, sp.Lo, sp.Hi, fe.Names[i], w.lo, w.hi, sp.Hash == w.hash)
			}
		}
		if res.PeakBytes <= 0 || res.PeakBytes > total {
			t.Errorf("n=%d: PeakBytes = %d, want within (0, %d]", n, res.PeakBytes, total)
		}
		if n > 1 && res.PeakBytes == total {
			// Possible only when slice 0 arrives last; the fixed seed's
			// permutations don't do that — a regression to whole-set
			// buffering would.
			for pos, i := range order {
				if i == 0 && pos < n-1 {
					t.Errorf("n=%d order %v: peak equals total despite early slice 0", n, order)
				}
			}
		}
	}
}

// TestSidecarIngest: a worker-attached fpcache sidecar round-trips
// through the wire into a coordinator-side cache, whose entries then
// hit for the same (name, content) with the identical graph.
func TestSidecarIngest(t *testing.T) {
	files := testFiles(t, 10)
	art, fe, err := BuildFromCorpus(files, 0, 1, core.Config{Workers: 1})
	if err != nil {
		t.Fatalf("BuildFromCorpus: %v", err)
	}
	art.AttachSidecar(files, fe)
	data := art.Encode()

	cache, err := fpcache.Open(filepath.Join(t.TempDir(), "fpc"))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	a, err := ReadArtifact(bytes.NewReader(data), ReadOptions{Cache: cache, Metrics: reg})
	if err != nil {
		t.Fatalf("ReadArtifact: %v", err)
	}
	if !a.Sidecar || len(a.SidecarKeys) != len(a.Files) {
		t.Fatalf("sidecar not decoded: %v, %d keys", a.Sidecar, len(a.SidecarKeys))
	}
	if n, err := cache.Len(); err != nil || n != len(files) {
		t.Fatalf("ingested %d cache entries (%v), want %d", n, err, len(files))
	}
	for i, name := range fe.Names {
		ent, ok := cache.Get(name, files[name])
		if !ok {
			t.Fatalf("cache miss for %q after sidecar ingest", name)
		}
		if !bytes.Equal(ent.Graph.AppendBinary(nil), fe.Graphs[i].AppendBinary(nil)) {
			t.Fatalf("ingested graph for %q differs from the worker's", name)
		}
		if ent.Cost != fe.Costs[i] {
			t.Errorf("ingested cost for %q = %v, want %v", name, ent.Cost, fe.Costs[i])
		}
	}
	snap := reg.Snapshot()
	if snap.Counters[obs.CounterShardStreamBytes] != int64(len(data)) {
		t.Errorf("shard.stream.bytes = %d, want %d",
			snap.Counters[obs.CounterShardStreamBytes], len(data))
	}

	// A corrupt artifact must ingest nothing: entries are staged until
	// the trailer settles.
	cache2, err := fpcache.Open(filepath.Join(t.TempDir(), "fpc2"))
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0x01
	if _, err := ReadArtifact(bytes.NewReader(bad), ReadOptions{Cache: cache2}); err == nil {
		t.Fatal("corrupt artifact decoded")
	}
	if n, _ := cache2.Len(); n != 0 {
		t.Fatalf("corrupt artifact ingested %d cache entries, want 0", n)
	}
}
