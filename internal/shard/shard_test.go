package shard

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"seldon/internal/core"
	"seldon/internal/corpus"
	"seldon/internal/fpcache"
	"seldon/internal/propgraph"
)

// buildSlice analyzes slice i of n of a small synthetic corpus.
func buildSlice(t *testing.T, files map[string]string, i, n int) *Artifact {
	t.Helper()
	a, _, err := BuildFromCorpus(files, i, n, core.Config{Workers: 1})
	if err != nil {
		t.Fatalf("BuildFromCorpus(%d/%d): %v", i, n, err)
	}
	return a
}

func testFiles(t *testing.T, n int) map[string]string {
	t.Helper()
	return corpus.Generate(corpus.Config{Files: n}).FileMap()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	files := testFiles(t, 20)
	want := buildSlice(t, files, 1, 3)
	data := want.Encode()

	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.AnalyzerVersion != want.AnalyzerVersion {
		t.Errorf("analyzer version %q, want %q", got.AnalyzerVersion, want.AnalyzerVersion)
	}
	if got.Slice != want.Slice || got.Slices != want.Slices {
		t.Errorf("slice %d/%d, want %d/%d", got.Slice, got.Slices, want.Slice, want.Slices)
	}
	if got.Size != int64(len(data)) {
		t.Errorf("Size = %d, want %d", got.Size, len(data))
	}
	if len(got.Files) != len(want.Files) {
		t.Fatalf("%d manifest entries, want %d", len(got.Files), len(want.Files))
	}
	for i := range got.Files {
		if got.Files[i] != want.Files[i] {
			t.Errorf("manifest[%d] = %+v, want %+v", i, got.Files[i], want.Files[i])
		}
	}
	if !bytes.Equal(got.Graph.AppendBinary(nil), want.Graph.AppendBinary(nil)) {
		t.Error("decoded graph differs from the encoded one")
	}

	// Encoding is a pure function of the artifact.
	if !bytes.Equal(want.Encode(), data) {
		t.Error("Encode is not deterministic")
	}
}

func TestWriteFileReadFile(t *testing.T) {
	files := testFiles(t, 12)
	want := buildSlice(t, files, 0, 2)
	path := filepath.Join(t.TempDir(), "part0.shard")
	n, err := WriteFile(path, want)
	if err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != n {
		t.Fatalf("wrote %d bytes, stat says %v, %v", n, fi, err)
	}
	got, err := ReadFile(path, ReadOptions{})
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(got.Graph.AppendBinary(nil), want.Graph.AppendBinary(nil)) {
		t.Error("graph round-trip through file differs")
	}
	// No temp droppings from the atomic write.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want just the artifact", len(entries))
	}
}

// TestDecodeFaults checks that every way an artifact can be damaged in
// transit maps to its own named error — never a silent skip, never the
// wrong sentinel.
func TestDecodeFaults(t *testing.T) {
	files := testFiles(t, 12)
	good := buildSlice(t, files, 0, 1).Encode()

	corrupt := func(mutate func([]byte) []byte) []byte {
		data := append([]byte(nil), good...)
		return mutate(data)
	}
	tests := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"shorter than magic", corrupt(func(d []byte) []byte { return d[:2] }), ErrTruncated},
		{"header cut", corrupt(func(d []byte) []byte { return d[:5] }), ErrTruncated},
		{"payload cut", corrupt(func(d []byte) []byte { return d[:len(d)/2] }), ErrTruncated},
		{"checksum cut", corrupt(func(d []byte) []byte { return d[:len(d)-1] }), ErrTruncated},
		{"bad magic", corrupt(func(d []byte) []byte { d[0] = 'X'; return d }), ErrMagic},
		{"stale codec version", corrupt(func(d []byte) []byte { d[4] = codecVersion + 1; return d }), ErrCodecVersion},
		{"flipped payload byte", corrupt(func(d []byte) []byte { d[len(d)/2] ^= 0x40; return d }), ErrChecksum},
		{"flipped checksum byte", corrupt(func(d []byte) []byte { d[len(d)-1] ^= 0x01; return d }), ErrChecksum},
		{"trailing bytes", corrupt(func(d []byte) []byte { return append(d, 0xEE) }), ErrTrailing},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			a, err := Decode(tc.data)
			if a != nil {
				t.Fatal("damaged artifact decoded to a non-nil result")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Decode = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestDecodeBadPayload covers the checksum-holds-but-payload-is-garbage
// class: a buggy or adversarial encoder, not line noise.
func TestDecodeBadPayload(t *testing.T) {
	out := func(a *Artifact) []byte { return a.Encode() }
	empty := propgraph.New()
	tests := []struct {
		name string
		data []byte
	}{
		{"slice out of range", out(&Artifact{AnalyzerVersion: "v", Slice: 5, Slices: 2, Graph: empty})},
		{"zero slices", out(&Artifact{AnalyzerVersion: "v", Slice: 0, Slices: 0, Graph: empty})},
		{"unsorted manifest", out(&Artifact{
			AnalyzerVersion: "v", Slice: 0, Slices: 1,
			Files:      []FileMeta{{Name: "b.py"}, {Name: "a.py"}},
			FileGraphs: []*propgraph.Graph{empty, empty},
			Graph:      empty,
		})},
		{"duplicate manifest name", out(&Artifact{
			AnalyzerVersion: "v", Slice: 0, Slices: 1,
			Files:      []FileMeta{{Name: "a.py"}, {Name: "a.py"}},
			FileGraphs: []*propgraph.Graph{empty, empty},
			Graph:      empty,
		})},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(tc.data); !errors.Is(err, ErrEncoding) {
				t.Fatalf("Decode = %v, want ErrEncoding", err)
			}
		})
	}
}

// TestMergeFaults checks the set-level validation: slice bookkeeping
// violations each get their own sentinel.
func TestMergeFaults(t *testing.T) {
	files := testFiles(t, 20)
	a0 := buildSlice(t, files, 0, 2)
	a1 := buildSlice(t, files, 1, 2)

	t.Run("duplicate slice", func(t *testing.T) {
		if _, err := Merge([]*Artifact{a0, a0}, MergeOptions{}); !errors.Is(err, ErrDuplicateSlice) {
			t.Fatalf("Merge = %v, want ErrDuplicateSlice", err)
		}
	})
	t.Run("missing slice", func(t *testing.T) {
		if _, err := Merge([]*Artifact{a0}, MergeOptions{}); !errors.Is(err, ErrMissingSlice) {
			t.Fatalf("Merge = %v, want ErrMissingSlice", err)
		}
	})
	t.Run("no artifacts", func(t *testing.T) {
		if _, err := Merge(nil, MergeOptions{}); !errors.Is(err, ErrMissingSlice) {
			t.Fatalf("Merge = %v, want ErrMissingSlice", err)
		}
	})
	t.Run("slice count mismatch", func(t *testing.T) {
		b0 := buildSlice(t, files, 0, 3)
		if _, err := Merge([]*Artifact{a0, b0}, MergeOptions{}); !errors.Is(err, ErrSliceCount) {
			t.Fatalf("Merge = %v, want ErrSliceCount", err)
		}
	})
	t.Run("analyzer version mismatch", func(t *testing.T) {
		stale := *a1
		stale.AnalyzerVersion = "seldon-frontend-v0"
		if _, err := Merge([]*Artifact{a0, &stale}, MergeOptions{}); !errors.Is(err, ErrAnalyzerVersion) {
			t.Fatalf("Merge = %v, want ErrAnalyzerVersion", err)
		}
	})
	t.Run("slice order violation", func(t *testing.T) {
		// Swap the claimed indices: each artifact is internally sorted,
		// but their concatenation in "slice order" is not.
		x0, x1 := *a0, *a1
		x0.Slice, x1.Slice = 1, 0
		if _, err := Merge([]*Artifact{&x0, &x1}, MergeOptions{}); !errors.Is(err, ErrSliceOrder) {
			t.Fatalf("Merge = %v, want ErrSliceOrder", err)
		}
	})
	t.Run("valid set still merges", func(t *testing.T) {
		res, err := Merge([]*Artifact{a1, a0}, MergeOptions{}) // arrival order irrelevant
		if err != nil {
			t.Fatalf("Merge: %v", err)
		}
		if len(res.Files) != len(files) {
			t.Errorf("merged %d files, want %d", len(res.Files), len(files))
		}
	})
}

func TestBuildRejectsBadSlice(t *testing.T) {
	files := testFiles(t, 8)
	for _, c := range [][2]int{{-1, 2}, {2, 2}, {0, 0}} {
		if _, _, err := Build(files, c[0], c[1], core.Config{Workers: 1}); err == nil {
			t.Errorf("Build(%d, %d) succeeded, want error", c[0], c[1])
		}
	}
}

func TestBuildAnalyzerVersion(t *testing.T) {
	files := testFiles(t, 8)
	a := buildSlice(t, files, 0, 1)
	if a.AnalyzerVersion != fpcache.AnalyzerVersion {
		t.Errorf("artifact carries analyzer version %q, want %q", a.AnalyzerVersion, fpcache.AnalyzerVersion)
	}
}
