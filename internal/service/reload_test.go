package service

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"seldon/internal/propgraph"
	"seldon/internal/spec"
	"seldon/internal/specio"
)

// sinklessSpec is testSpec without the sink: taintedSrc produces no
// findings under it, so a check's finding count tells which store
// generation served it.
func sinklessSpec() *spec.Spec {
	s := spec.New()
	s.Add(propgraph.Source, "flask.request.files['f'].filename")
	s.Add(propgraph.Sanitizer, "werkzeug.secure_filename()")
	return s
}

func writeStore(t *testing.T, path string, sp *spec.Spec, meta specio.Meta) {
	t.Helper()
	if err := specio.Save(path, sp, meta); err != nil {
		t.Fatal(err)
	}
}

func postReload(t *testing.T, url string) (*http.Response, ReloadResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out ReloadResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, out
}

func getHealthz(t *testing.T, url string) HealthResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestReloadSwapsSpecs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "specs.json")
	writeStore(t, path, sinklessSpec(), specio.Meta{Generator: "test", SeedEntries: 2})
	sp, meta, err := specio.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Spec: sp, Meta: meta, StorePath: path})

	if _, out := postCheck(t, ts.URL, taintedSrc); out.Total != 0 {
		t.Fatalf("sinkless store found %d flows, want 0", out.Total)
	}
	before := getHealthz(t, ts.URL)
	if before.StoreFingerprint == "" || before.Schema != specio.SchemaVersion ||
		before.SeedEntries != 2 || before.Reloads != 0 {
		t.Errorf("healthz before reload = %+v", before)
	}

	// Publish a new store with the sink and hot-swap it in.
	writeStore(t, path, testSpec(), specio.Meta{Generator: "test", SeedEntries: 2, LearnedEntries: 1})
	resp, out := postReload(t, ts.URL)
	if resp.StatusCode != http.StatusOK || out.Status != "reloaded" || out.Specs != 3 {
		t.Fatalf("reload = %d %+v", resp.StatusCode, out)
	}
	if out.StoreFingerprint == before.StoreFingerprint {
		t.Error("fingerprint did not change across an effective reload")
	}

	if _, chk := postCheck(t, ts.URL, taintedSrc); chk.Total != 1 {
		t.Errorf("after reload: %d findings, want 1", chk.Total)
	}
	after := getHealthz(t, ts.URL)
	if after.StoreFingerprint != out.StoreFingerprint || after.Specs != 3 ||
		after.LearnedEntries != 1 || after.Reloads != 1 {
		t.Errorf("healthz after reload = %+v", after)
	}

	// Reloading the identical file swaps but reports "unchanged".
	if _, again := postReload(t, ts.URL); again.Status != "unchanged" {
		t.Errorf("idempotent reload status = %q, want unchanged", again.Status)
	}
}

func TestReloadRejectsInvalidStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "specs.json")
	writeStore(t, path, testSpec(), specio.Meta{Generator: "test"})
	sp, meta, err := specio.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Spec: sp, Meta: meta, StorePath: path})
	before := getHealthz(t, ts.URL)

	cases := map[string]string{
		"garbage":       "not json at all{{{",
		"no schema":     `{"meta":{},"sources":[],"sanitizers":[],"sinks":[],"blacklist":[]}`,
		"future schema": `{"schema":99,"meta":{},"sources":[],"sanitizers":[],"sinks":[],"blacklist":[]}`,
		"unknown field": `{"schema":1,"bogus":1,"meta":{},"sources":[],"sanitizers":[],"sinks":[],"blacklist":[]}`,
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
			resp, _ := postReload(t, ts.URL)
			if resp.StatusCode != http.StatusUnprocessableEntity {
				t.Errorf("status = %d, want 422", resp.StatusCode)
			}
			// The old store keeps serving, fingerprint unchanged.
			h := getHealthz(t, ts.URL)
			if h.StoreFingerprint != before.StoreFingerprint || h.Specs != 3 || h.Reloads != 0 {
				t.Errorf("healthz after rejected reload = %+v", h)
			}
			if _, chk := postCheck(t, ts.URL, taintedSrc); chk.Total != 1 {
				t.Errorf("old specs stopped serving: %d findings, want 1", chk.Total)
			}
		})
	}

	// A deleted store file is rejected the same way.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if resp, _ := postReload(t, ts.URL); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("missing file status = %d, want 422", resp.StatusCode)
	}
}

func TestReloadWithoutStorePath(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := postReload(t, ts.URL)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("status = %d, want 409", resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/v1/reload"); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/reload status = %d, want 405", resp.StatusCode)
		}
	}
}

// TestReloadUnderConcurrentChecks hammers /v1/check while the store is
// swapped back and forth between a store with the sink and one without.
// Every response must be consistent with exactly one store generation
// (0 or 1 findings, never an error) — run under -race via make race.
func TestReloadUnderConcurrentChecks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "specs.json")
	writeStore(t, path, testSpec(), specio.Meta{Generator: "test"})
	sp, meta, err := specio.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Spec: sp, Meta: meta, StorePath: path, Workers: 4, QueueDepth: 64})

	const checkers, checksEach, reloadsTotal = 4, 25, 20
	var wg sync.WaitGroup
	errs := make(chan string, checkers*checksEach+reloadsTotal)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reloadsTotal; i++ {
			if i%2 == 0 {
				specio.Save(path, sinklessSpec(), specio.Meta{Generator: "test"})
			} else {
				specio.Save(path, testSpec(), specio.Meta{Generator: "test"})
			}
			resp, err := http.Post(ts.URL+"/v1/reload", "", nil)
			if err != nil {
				errs <- "reload: " + err.Error()
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- "reload status " + resp.Status
			}
		}
	}()
	for c := 0; c < checkers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < checksEach; i++ {
				resp, err := http.Post(ts.URL+"/v1/check", "text/x-python", strings.NewReader(taintedSrc))
				if err != nil {
					errs <- "check: " + err.Error()
					continue
				}
				var out CheckResponse
				decErr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil {
					errs <- "check status " + resp.Status
					continue
				}
				if out.Total != 0 && out.Total != 1 {
					errs <- "inconsistent findings"
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
