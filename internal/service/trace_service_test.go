package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"seldon/internal/obs"
	"seldon/internal/obs/trace"
)

// fetchTrace retrieves one finished trace by ID from /debug/traces,
// polling briefly because the root span is pushed to the ring just
// after the response bytes reach the client.
func fetchTrace(t *testing.T, base, traceID string) trace.TraceData {
	t.Helper()
	var td trace.TraceData
	waitFor(t, "trace "+traceID+" in ring", func() bool {
		resp, err := http.Get(base + "/debug/traces?trace_id=" + traceID)
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			return false
		}
		return json.NewDecoder(resp.Body).Decode(&td) == nil
	})
	return td
}

// spanNames maps span name → SpanData for single-occurrence lookups.
func spanNames(td trace.TraceData) map[string]trace.SpanData {
	m := make(map[string]trace.SpanData, len(td.Spans))
	for _, sd := range td.Spans {
		m[sd.Name] = sd
	}
	return m
}

// TestCheckTraceAcceptance is the acceptance path of the tracing
// tentpole: a /v1/check answer carries an X-Trace-Id whose trace,
// fetched back from /debug/traces, holds the full stage chain with
// durations that tile the request wall time.
func TestCheckTraceAcceptance(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, out := postCheck(t, ts.URL, taintedSrc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	if len(traceID) != 32 {
		t.Fatalf("X-Trace-Id = %q, want 32 hex chars", traceID)
	}
	if out.TraceID != traceID {
		t.Errorf("body trace_id = %q, header = %q", out.TraceID, traceID)
	}
	if tp := resp.Header.Get("Traceparent"); !strings.Contains(tp, traceID) {
		t.Errorf("Traceparent %q does not carry trace id %q", tp, traceID)
	}

	td := fetchTrace(t, ts.URL, traceID)
	if td.TraceID != traceID || td.Root != "http.check" {
		t.Fatalf("trace = %+v", td)
	}
	byName := spanNames(td)
	root, ok := byName["http.check"]
	if !ok || root.ParentID != "" {
		t.Fatalf("root span missing or parented: %+v", root)
	}

	// Every pipeline stage appears, parented on the root, inside the
	// root's time window.
	var childSum int64
	for _, name := range []string{"admission", "queue", "parse", "dataflow", "taint", "encode"} {
		sd, ok := byName[name]
		if !ok {
			t.Fatalf("stage span %q missing; trace:\n%s", name, td.Tree())
		}
		if sd.ParentID != root.SpanID {
			t.Errorf("%s parent = %q, want root %q", name, sd.ParentID, root.SpanID)
		}
		if sd.DurationNanos < 0 {
			t.Errorf("%s duration = %d", name, sd.DurationNanos)
		}
		slack := int64(2 * time.Millisecond)
		if sd.StartUnixNano < root.StartUnixNano-slack ||
			sd.StartUnixNano+sd.DurationNanos > root.StartUnixNano+root.DurationNanos+slack {
			t.Errorf("%s [%d +%d] outside root window [%d +%d]",
				name, sd.StartUnixNano, sd.DurationNanos, root.StartUnixNano, root.DurationNanos)
		}
		childSum += sd.DurationNanos
	}
	// The stages tile the request: their summed time cannot exceed the
	// root wall (plus scheduling slack), and the root wall tracks the
	// server-reported elapsed time.
	if max := root.DurationNanos + int64(5*time.Millisecond); childSum > max {
		t.Errorf("children sum %d ns > root %d ns", childSum, root.DurationNanos)
	}
	rootMS := float64(root.DurationNanos) / float64(time.Millisecond)
	if diff := rootMS - out.ElapsedMS; diff < -50 || diff > 50 {
		t.Errorf("root span %.2fms vs elapsed_ms %.2f", rootMS, out.ElapsedMS)
	}
}

func TestTraceparentPropagation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const parentTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	const parentSpan = "00f067aa0ba902b7"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/check",
		strings.NewReader(cleanSrc))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Traceparent", "00-"+parentTrace+"-"+parentSpan+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// The server joins the caller's trace rather than minting a new one.
	if got := resp.Header.Get("X-Trace-Id"); got != parentTrace {
		t.Fatalf("X-Trace-Id = %q, want caller's %q", got, parentTrace)
	}
	td := fetchTrace(t, ts.URL, parentTrace)
	if !td.RemoteParent {
		t.Error("trace not marked remote_parent")
	}
	root := spanNames(td)["http.check"]
	if root.ParentID != parentSpan {
		t.Errorf("root parent = %q, want caller span %q", root.ParentID, parentSpan)
	}
}

func TestReadyzSplitFromHealthz(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/v1/readyz"); code != http.StatusOK {
		t.Fatalf("readyz = %d before drain", code)
	}

	s.draining.Store(true)
	// Readiness flips, liveness does not, and new checks are refused.
	if code := get("/v1/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz = %d while draining, want 503", code)
	}
	if code := get("/v1/healthz"); code != http.StatusOK {
		t.Errorf("healthz = %d while draining, want 200", code)
	}
	resp, _ := postCheck(t, ts.URL, cleanSrc)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("check while draining = %d, want 503", resp.StatusCode)
	}
	s.draining.Store(false)
}

// TestRetryAfterComputed pins the 429 Retry-After hint to the formula
// p50 service time × admitted / workers (ceil, clamped to [1, 30])
// instead of the old hardcoded "1". The p50 comes from TimerAnalyze —
// end-to-end TimerCheck already contains queue wait, which the
// admitted/workers factor would double-count.
func TestRetryAfterComputed(t *testing.T) {
	saturateAnd429 := func(t *testing.T, reg *obs.Registry) string {
		// Cache off: saturation needs the identical bodies to queue, not
		// coalesce onto one flight.
		s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Metrics: reg, CheckCacheEntries: -1})
		gate := make(chan struct{})
		s.checkGate = gate
		defer close(gate)
		for i := 0; i < 2; i++ {
			go func() {
				resp, err := http.Post(ts.URL+"/v1/check", "text/x-python", strings.NewReader(cleanSrc))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}()
		}
		waitFor(t, "saturation", func() bool {
			return s.admitted.Load() == 2 && s.inflight.Load() == 1
		})
		resp, _ := postCheck(t, ts.URL, cleanSrc)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status = %d, want 429", resp.StatusCode)
		}
		return resp.Header.Get("Retry-After")
	}

	t.Run("no samples falls back to 1", func(t *testing.T) {
		if got := saturateAnd429(t, obs.New()); got != "1" {
			t.Errorf("Retry-After = %q, want 1", got)
		}
	})
	t.Run("derived from p50 and queue depth", func(t *testing.T) {
		reg := obs.New()
		for i := 0; i < 5; i++ {
			reg.Observe(TimerAnalyze, 2.0) // seconds
		}
		// p50=2s, 2 admitted ahead, 1 worker → ceil(2*2/1) = 4s.
		if got := saturateAnd429(t, reg); got != "4" {
			t.Errorf("Retry-After = %q, want 4", got)
		}
	})
	t.Run("clamped to 30", func(t *testing.T) {
		reg := obs.New()
		for i := 0; i < 5; i++ {
			reg.Observe(TimerAnalyze, 100.0)
		}
		if got := saturateAnd429(t, reg); got != "30" {
			t.Errorf("Retry-After = %q, want 30", got)
		}
	})
}

func TestPerRouteSeries(t *testing.T) {
	reg := obs.New()
	_, ts := newTestServer(t, Config{Metrics: reg})
	postCheck(t, ts.URL, cleanSrc)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	snap := reg.Snapshot()
	for _, c := range []string{
		CounterResponses + ".check.2xx",
		CounterResponses + ".healthz.2xx",
		CounterRequests + ".check",
		CounterRequests + ".healthz",
	} {
		if snap.Counters[c] != 1 {
			t.Errorf("counter %s = %d, want 1", c, snap.Counters[c])
		}
	}
	for _, route := range []string{"check", "healthz"} {
		if snap.Timers[TimerRoutePrefix+route].Count != 1 {
			t.Errorf("timer %s count = %d, want 1",
				TimerRoutePrefix+route, snap.Timers[TimerRoutePrefix+route].Count)
		}
		if g := snap.Gauges[GaugeRouteInflightPrefix+route]; g != 0 {
			t.Errorf("gauge %s = %v after completion, want 0", GaugeRouteInflightPrefix+route, g)
		}
	}
}

// TestConcurrentCheckAndScrape hammers /v1/check while scraping
// /debug/traces and /metrics.prom from other goroutines — the -race
// target for the whole tracing/exposition surface. Every scraped trace
// must be internally consistent (spans parented inside the trace) and
// every scraped histogram monotone.
func TestConcurrentCheckAndScrape(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	bodies := []string{taintedSrc, sanitizedSrc, cleanSrc}
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				resp, err := http.Post(ts.URL+"/v1/check", "text/x-python",
					strings.NewReader(bodies[(w+i)%len(bodies)]))
				if err != nil {
					t.Errorf("post: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status = %d", resp.StatusCode)
				}
			}
		}(w)
	}

	scrapeErrs := make(chan error, 64)
	var scrapers sync.WaitGroup
	for g := 0; g < 2; g++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/debug/traces")
				if err != nil {
					continue
				}
				var dump trace.Dump
				err = json.NewDecoder(resp.Body).Decode(&dump)
				resp.Body.Close()
				if err != nil {
					scrapeErrs <- err
					return
				}
				for _, td := range dump.Traces {
					if err := checkTraceIntegrity(td); err != nil {
						scrapeErrs <- err
						return
					}
				}
			}
		}()
	}
	for g := 0; g < 2; g++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/metrics.prom")
				if err != nil {
					continue
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					continue
				}
				if err := checkBucketsMonotone(string(body)); err != nil {
					scrapeErrs <- err
					return
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	scrapers.Wait()
	close(scrapeErrs)
	for err := range scrapeErrs {
		t.Error(err)
	}
}

// checkTraceIntegrity verifies one scraped trace: a root span matching
// the trace's Root name, and every span parented either on the root's
// remote parent or on another span in the same trace.
func checkTraceIntegrity(td trace.TraceData) error {
	if td.TraceID == "" || len(td.Spans) == 0 {
		return fmt.Errorf("empty trace %+v", td)
	}
	ids := make(map[string]bool, len(td.Spans))
	for _, sd := range td.Spans {
		if sd.SpanID == "" {
			return fmt.Errorf("trace %s: span %q without id", td.TraceID, sd.Name)
		}
		ids[sd.SpanID] = true
	}
	rootSeen := false
	for _, sd := range td.Spans {
		switch {
		case sd.ParentID == "":
			if sd.Name != td.Root {
				return fmt.Errorf("trace %s: parentless span %q is not root %q",
					td.TraceID, sd.Name, td.Root)
			}
			rootSeen = true
		case !ids[sd.ParentID]:
			if sd.Name == td.Root && td.RemoteParent {
				rootSeen = true
				continue // root's parent lives in the caller's process
			}
			return fmt.Errorf("trace %s: span %q parent %q not in trace",
				td.TraceID, sd.Name, sd.ParentID)
		}
	}
	if !rootSeen {
		return fmt.Errorf("trace %s: no root span", td.TraceID)
	}
	return nil
}

// checkBucketsMonotone verifies every histogram family in a Prometheus
// text scrape has non-decreasing cumulative bucket counts.
func checkBucketsMonotone(text string) error {
	last := map[string]float64{} // family → previous cumulative count
	for _, line := range strings.Split(text, "\n") {
		idx := strings.Index(line, "_bucket{le=")
		if idx < 0 {
			continue
		}
		family := line[:idx]
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			return fmt.Errorf("bad bucket line %q: %w", line, err)
		}
		if v < last[family] {
			return fmt.Errorf("%s buckets not monotone: %g after %g (%q)",
				family, v, last[family], line)
		}
		last[family] = v
	}
	return nil
}
