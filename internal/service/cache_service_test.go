package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"seldon/internal/obs"
	"seldon/internal/specio"
)

// postCheckRaw posts body to /v1/check and returns the status plus the
// raw response bytes, unparsed — the byte-identity tests compare wire
// encodings, not decoded structs.
func postCheckRaw(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/check", "text/x-python", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

var (
	elapsedRe = regexp.MustCompile(`"elapsed_ms":[0-9eE.+-]+`)
	traceRe   = regexp.MustCompile(`"trace_id":"[0-9a-f]+"`)
)

// normalizeCheck masks the two per-request fields (elapsed_ms,
// trace_id); everything else must be byte-identical across the cold,
// cached, coalesced, and cache-disabled paths.
func normalizeCheck(raw []byte) string {
	s := elapsedRe.ReplaceAllString(string(raw), `"elapsed_ms":X`)
	return traceRe.ReplaceAllString(s, `"trace_id":"X"`)
}

// TestCheckByteIdenticalAcrossPaths pins the splice encoder: a cold
// analysis, a cache hit, and a run on a cache-disabled server produce
// byte-identical bodies modulo elapsed_ms and trace_id, at worker
// counts 1 and 4 — and each raw body is exactly what marshaling the
// decoded CheckResponse reproduces, so the splice can never drift from
// encoding/json.
func TestCheckByteIdenticalAcrossPaths(t *testing.T) {
	const parseErrSrc = "def broken(:\n    pass\n"
	for _, workers := range []int{1, 4} {
		for _, body := range []string{taintedSrc, sanitizedSrc, cleanSrc, parseErrSrc} {
			_, on := newTestServer(t, Config{Workers: workers})
			_, off := newTestServer(t, Config{Workers: workers, CheckCacheEntries: -1})

			_, cold := postCheckRaw(t, on.URL, body)
			_, hit := postCheckRaw(t, on.URL, body)
			_, disabled := postCheckRaw(t, off.URL, body)

			want := normalizeCheck(cold)
			if got := normalizeCheck(hit); got != want {
				t.Fatalf("workers=%d: cache hit differs from cold analysis:\n%s\n%s", workers, got, want)
			}
			if got := normalizeCheck(disabled); got != want {
				t.Fatalf("workers=%d: cache-disabled run differs from cold analysis:\n%s\n%s", workers, got, want)
			}

			// Splice == marshal: decode and re-encode the raw body.
			var decoded CheckResponse
			if err := json.Unmarshal(cold, &decoded); err != nil {
				t.Fatal(err)
			}
			remarshaled, err := json.Marshal(&decoded)
			if err != nil {
				t.Fatal(err)
			}
			if string(append(remarshaled, '\n')) != string(cold) {
				t.Fatalf("workers=%d: spliced body is not a faithful CheckResponse encoding:\ngot  %q\nwant %q",
					workers, cold, remarshaled)
			}
		}
	}
}

// TestCheckCacheHitReloadMiss pins generation keying: a reload that
// changes the store makes every old key unreachable (miss, fresh
// findings), and reloading back to a content-identical store revives
// the still-resident entries of that generation.
func TestCheckCacheHitReloadMiss(t *testing.T) {
	path := filepath.Join(t.TempDir(), "specs.json")
	writeStore(t, path, testSpec(), specio.Meta{Generator: "test"})
	sp, meta, err := specio.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Spec: sp, Meta: meta, StorePath: path})

	if _, out := postCheck(t, ts.URL, taintedSrc); out.Total != 1 {
		t.Fatalf("cold check: %d findings, want 1", out.Total)
	}
	if _, out := postCheck(t, ts.URL, taintedSrc); out.Total != 1 {
		t.Fatalf("warm check: %d findings, want 1", out.Total)
	}
	h := getHealthz(t, ts.URL)
	if h.CheckCache == nil || h.CheckCache.Hits != 1 || h.CheckCache.Misses != 1 || h.CheckCache.Entries != 1 {
		t.Fatalf("healthz cache after hit = %+v", h.CheckCache)
	}

	// Swap in the sinkless store: same body, new generation, new answer.
	writeStore(t, path, sinklessSpec(), specio.Meta{Generator: "test"})
	if resp, _ := postReload(t, ts.URL); resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d", resp.StatusCode)
	}
	if _, out := postCheck(t, ts.URL, taintedSrc); out.Total != 0 {
		t.Fatalf("post-reload check served stale findings: %d, want 0", out.Total)
	}
	h = getHealthz(t, ts.URL)
	if h.CheckCache.Misses != 2 {
		t.Fatalf("reload did not invalidate: misses = %d, want 2", h.CheckCache.Misses)
	}

	// Reload back to a byte-identical original store: the epoch is the
	// fingerprint, so generation 1's entries are addressable again.
	writeStore(t, path, testSpec(), specio.Meta{Generator: "test"})
	if resp, _ := postReload(t, ts.URL); resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d", resp.StatusCode)
	}
	if _, out := postCheck(t, ts.URL, taintedSrc); out.Total != 1 {
		t.Fatalf("check after round-trip reload: %d findings, want 1", out.Total)
	}
	h = getHealthz(t, ts.URL)
	if h.CheckCache.Hits != 2 {
		t.Fatalf("content-identical generation did not revive its entries: hits = %d, want 2", h.CheckCache.Hits)
	}
}

// TestCoalescedConcurrentChecks holds one analysis on the gate and
// piles identical requests behind it: exactly one analysis runs (one
// worker slot, one TimerAnalyze sample), the followers are counted
// coalesced, and everyone gets the same bytes.
func TestCoalescedConcurrentChecks(t *testing.T) {
	reg := obs.New()
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, Metrics: reg})
	gate := make(chan struct{})
	s.checkGate = gate

	const followers = 3
	type result struct {
		code int
		raw  string
	}
	results := make(chan result, followers+1)
	post := func() {
		resp, err := http.Post(ts.URL+"/v1/check", "text/x-python", strings.NewReader(taintedSrc))
		if err != nil {
			results <- result{code: -1}
			return
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		results <- result{code: resp.StatusCode, raw: normalizeCheck(raw)}
	}

	go post() // leader takes the worker slot and blocks on the gate
	waitFor(t, "leader inflight", func() bool { return s.inflight.Load() == 1 })
	for i := 0; i < followers; i++ {
		go post()
	}
	waitFor(t, "followers coalesced", func() bool { return s.coalesced.Load() == followers })
	if got := s.admitted.Load(); got != 1 {
		t.Fatalf("admitted = %d with followers waiting, want 1 (followers must not hold slots)", got)
	}
	close(gate)

	var bodies []string
	for i := 0; i < followers+1; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, r.code)
		}
		bodies = append(bodies, r.raw)
	}
	for _, b := range bodies[1:] {
		if b != bodies[0] {
			t.Fatalf("coalesced responses differ:\n%s\n%s", b, bodies[0])
		}
	}

	snap := reg.Snapshot()
	if got := snap.Counters[obs.CounterCheckCoalesced]; got != followers {
		t.Errorf("%s = %d, want %d", obs.CounterCheckCoalesced, got, followers)
	}
	if tstat, ok := snap.Timers[TimerAnalyze]; !ok || tstat.Count != 1 {
		t.Errorf("analysis ran %d times for %d identical requests, want 1", tstat.Count, followers+1)
	}
	h := getHealthz(t, ts.URL)
	if h.CheckCache == nil || h.CheckCache.Coalesced != followers {
		t.Errorf("healthz coalesced = %+v, want %d", h.CheckCache, followers)
	}
	waitFor(t, "slots drained", func() bool { return s.admitted.Load() == 0 })
}

// TestCoalescedFollowerCancellation cancels a follower mid-analysis:
// the follower alone times out (http.timeouts), the leader completes
// normally, and the flight still lands in the cache.
func TestCoalescedFollowerCancellation(t *testing.T) {
	reg := obs.New()
	s, ts := newTestServer(t, Config{Workers: 1, Metrics: reg})
	gate := make(chan struct{})
	s.checkGate = gate

	leader := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/check", "text/x-python", strings.NewReader(taintedSrc))
		if err != nil {
			leader <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		leader <- resp.StatusCode
	}()
	waitFor(t, "leader inflight", func() bool { return s.inflight.Load() == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	followerErr := make(chan error, 1)
	go func() {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			ts.URL+"/v1/check", strings.NewReader(taintedSrc))
		if err != nil {
			followerErr <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			err = fmt.Errorf("follower got %d, want client cancellation", resp.StatusCode)
		}
		followerErr <- err
	}()
	waitFor(t, "follower coalesced", func() bool { return s.coalesced.Load() == 1 })

	cancel()
	if err := <-followerErr; !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("follower error = %v, want context cancellation", err)
	}
	// The follower's deadline fired server-side; the leader is untouched.
	waitFor(t, "follower timeout counted", func() bool {
		return reg.Snapshot().Counters[CounterTimeouts] == 1
	})

	close(gate)
	if code := <-leader; code != http.StatusOK {
		t.Fatalf("leader status = %d after follower cancellation, want 200", code)
	}
	// The completed flight populated the cache despite the dead follower
	// (same default filename as the leader, so the keys match).
	code, raw := postCheckRaw(t, ts.URL, taintedSrc)
	var out CheckResponse
	if err := json.Unmarshal(raw, &out); err != nil || code != http.StatusOK || out.Total != 1 {
		t.Fatalf("post-flight check: status %d findings %d (err %v), want 200/1", code, out.Total, err)
	}
	h := getHealthz(t, ts.URL)
	if h.CheckCache == nil || h.CheckCache.Hits < 1 {
		t.Fatalf("flight result never reached the cache: %+v", h.CheckCache)
	}
}

// TestConcurrentChecksReloadsAndScrapes is the cache-enabled race
// hammer: duplicate-heavy checks, store reloads flipping generations,
// and Prometheus scrapes all run concurrently. Every check must be
// consistent with exactly one store generation — run under -race via
// make race.
func TestConcurrentChecksReloadsAndScrapes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "specs.json")
	writeStore(t, path, testSpec(), specio.Meta{Generator: "test"})
	sp, meta, err := specio.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{
		Spec: sp, Meta: meta, StorePath: path, Workers: 4, QueueDepth: 64, Metrics: obs.New(),
	})

	bodies := []string{taintedSrc, sanitizedSrc, cleanSrc, taintedSrc + "\n# dup\n"}
	const checkers, checksEach, reloadsTotal, scrapes = 4, 25, 10, 25
	var wg sync.WaitGroup
	errs := make(chan string, checkers*checksEach+reloadsTotal+scrapes)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reloadsTotal; i++ {
			if i%2 == 0 {
				specio.Save(path, sinklessSpec(), specio.Meta{Generator: "test"})
			} else {
				specio.Save(path, testSpec(), specio.Meta{Generator: "test"})
			}
			resp, err := http.Post(ts.URL+"/v1/reload", "", nil)
			if err != nil {
				errs <- "reload: " + err.Error()
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- "reload status " + resp.Status
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < scrapes; i++ {
			resp, err := http.Get(ts.URL + "/metrics.prom")
			if err != nil {
				errs <- "scrape: " + err.Error()
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- "scrape status " + resp.Status
			}
		}
	}()
	for c := 0; c < checkers; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < checksEach; i++ {
				body := bodies[(c+i)%len(bodies)]
				resp, err := http.Post(ts.URL+"/v1/check", "text/x-python", strings.NewReader(body))
				if err != nil {
					errs <- "check: " + err.Error()
					continue
				}
				var out CheckResponse
				decErr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil {
					errs <- "check status " + resp.Status
					continue
				}
				if out.Total != 0 && out.Total != 1 {
					errs <- "inconsistent findings"
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	h := getHealthz(t, ts.URL)
	if h.CheckCache == nil || h.CheckCache.Hits == 0 {
		t.Errorf("duplicate-heavy hammer never hit the cache: %+v", h.CheckCache)
	}
}

// TestCheckCacheEvictionUnderByteCap bounds the cache tightly enough
// that distinct bodies must evict each other, then proves the server
// keeps serving correct answers straight through the churn.
func TestCheckCacheEvictionUnderByteCap(t *testing.T) {
	// 16 entries over 16 shards is one entry per shard: pushing 24
	// distinct keys through must evict somewhere by pigeonhole. The byte
	// cap stays loose enough (1 KiB per shard) that entries are accepted.
	const maxEntries, maxBytes = 16, 16 << 10
	_, ts := newTestServer(t, Config{CheckCacheEntries: maxEntries, CheckCacheBytes: maxBytes})
	for round := 0; round < 3; round++ {
		for i := 0; i < 24; i++ {
			body := fmt.Sprintf("%s\n# variant %d\n", taintedSrc, i)
			if _, out := postCheck(t, ts.URL, body); out.Total != 1 {
				t.Fatalf("round %d variant %d: %d findings, want 1", round, i, out.Total)
			}
		}
	}
	h := getHealthz(t, ts.URL)
	cc := h.CheckCache
	if cc == nil || cc.Evictions == 0 {
		t.Fatalf("24 variants through a 16-entry cache never evicted: %+v", cc)
	}
	if cc.Entries > maxEntries || cc.Bytes > maxBytes {
		t.Fatalf("cache over its caps: %+v", cc)
	}
}
