package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"seldon/internal/checkcache"
	"seldon/internal/core"
	"seldon/internal/fpcache"
	"seldon/internal/obs"
	"seldon/internal/obs/trace"
	"seldon/internal/propgraph"
	"seldon/internal/specio"
	"seldon/internal/taint"
)

// Finding is one taint report in a /v1/check response. ID is a
// deterministic content hash of the finding (file, endpoints, positions,
// category) — stable across requests, cache paths, and restarts — and
// is the handle POST /v1/feedback accepts verdicts against.
type Finding struct {
	ID        string `json:"id"`
	File      string `json:"file"`
	Source    string `json:"source"`
	Sink      string `json:"sink"`
	SourcePos string `json:"source_pos"`
	SinkPos   string `json:"sink_pos"`
	Category  string `json:"category"`
	// Trace is the witness flow rendered as text, present with ?trace=1.
	Trace string `json:"trace,omitempty"`
}

// CheckResponse is the /v1/check response body. The wire bytes are not
// produced by marshaling this struct: the cache-independent prefix
// (checkCore) is encoded once per analysis, and elapsed_ms plus
// trace_id are spliced on per request — the field order here documents
// (and tests pin) that the splice matches a direct marshal.
type CheckResponse struct {
	File       string         `json:"file"`
	Findings   []Finding      `json:"findings"`
	Total      int            `json:"total"`
	ByCategory map[string]int `json:"by_category,omitempty"`
	// ParseError carries a recovered parse failure; analysis still ran
	// over the recovered AST (same contract as the CLIs).
	ParseError string  `json:"parse_error,omitempty"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	// TraceID identifies this request's span tree in /debug/traces
	// (also returned in the X-Trace-Id response header).
	TraceID string `json:"trace_id,omitempty"`
}

// checkCore is the cacheable prefix of a CheckResponse: everything
// determined by (store generation, filename, options, body) and nothing
// that varies per request. Its encoding ends in '}' and respondCheck
// splices the per-request suffix before that byte, so every 200 —
// cold, cached, or coalesced — is byte-identical modulo elapsed_ms and
// trace_id.
type checkCore struct {
	File       string         `json:"file"`
	Findings   []Finding      `json:"findings"`
	Total      int            `json:"total"`
	ByCategory map[string]int `json:"by_category,omitempty"`
	ParseError string         `json:"parse_error,omitempty"`
}

// checkResult is one analysis outcome: the encoded checkCore plus the
// finding count for logs.
type checkResult struct {
	core  []byte
	total int
}

// optsKey encodes the (trace, dedupe) option pair for cache keys,
// indexed by trace<<0 | dedupe<<1.
var optsKey = [4]string{"", "t", "d", "td"}

// handleCheck implements POST /v1/check: the body is one Python source
// file; the response lists unsanitized source→sink flows under the
// loaded specification. Query parameters: filename (report label,
// default "request.py"), trace=1 (include witness traces), dedupe=1
// (collapse findings sharing source and sink representations).
//
// Every request runs under a span tree: admission (body read) → queue
// (wait for a worker slot) → parse → dataflow → taint → encode. The
// trace ID is returned in X-Trace-Id and the response body, a W3C
// traceparent header is honored inbound and emitted outbound, and the
// finished tree is retrievable from /debug/traces?trace_id=<id>.
//
// Repeated work short-circuits before admission. A cache hit (same
// body, filename, options, and store generation) skips the queue and
// the analysis entirely; a concurrent identical request joins the
// in-flight leader's analysis as a follower (span attr coalesced=true)
// without taking a worker slot. Both still carry their own deadline.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, "check", http.StatusMethodNotAllowed, "POST a Python source file")
		return
	}
	root := s.cfg.Tracer.StartRootFrom("http.check", r.Header.Get("Traceparent"))
	defer root.End()
	w.Header().Set("X-Trace-Id", root.TraceID())
	w.Header().Set("Traceparent", root.Traceparent())
	if s.draining.Load() {
		s.fail(w, "check", http.StatusServiceUnavailable, "server is draining")
		return
	}
	span := s.cfg.Metrics.Start(TimerCheck)

	adm := root.StartChild("admission")
	bufp := s.getBuf()
	defer s.putBuf(bufp)
	body, err := readAllInto(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), (*bufp)[:0])
	*bufp = body[:0] // hand the grown buffer back to the pool on return
	adm.SetAttr("body_bytes", len(body))
	adm.End()
	if err != nil {
		span.End()
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.fail(w, "check", http.StatusRequestEntityTooLarge,
				"body exceeds "+strconv.FormatInt(s.cfg.MaxBodyBytes, 10)+" bytes")
			return
		}
		s.fail(w, "check", http.StatusBadRequest, "reading body: "+err.Error())
		return
	}

	query := r.URL.Query()
	name := query.Get("filename")
	if name == "" {
		name = "request.py"
	}
	withTrace := query.Get("trace") == "1"
	dedupe := query.Get("dedupe") == "1"
	root.SetAttr("file", name)

	// One store snapshot per request, taken before the cache key is
	// derived: the key's generation and the analysis input can never
	// disagree, even against a concurrent reload.
	st := s.currentStore()
	root.SetAttr("store", st.fingerprint)

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	var key checkcache.Key
	var fl *flight
	if s.cache != nil {
		opts := optsKey[b2i(withTrace)|b2i(dedupe)<<1]
		key = checkcache.KeyOfBytes([]string{fpcache.AnalyzerVersion, st.epoch, name, opts}, body)
		if val, ok := s.cache.Get(key); ok {
			s.cfg.Metrics.Add(obs.CounterCheckCacheHits, 1)
			root.SetAttr("cache", "hit")
			s.respondCheck(w, root, span, val)
			s.cfg.Log.Log("check.done", "file", name, "cache", "hit", "trace", root.TraceID())
			return
		}
		s.cfg.Metrics.Add(obs.CounterCheckCacheMisses, 1)
		s.flightMu.Lock()
		if g, ok := s.flights[key]; ok {
			s.flightMu.Unlock()
			s.followFlight(w, ctx, root, span, name, g)
			return
		}
		fl = &flight{done: make(chan struct{})}
		s.flights[key] = fl
		s.flightMu.Unlock()
	} else {
		fl = &flight{done: make(chan struct{})}
	}

	queue := root.StartChild("queue")
	release, err := s.admit(ctx)
	queue.End()
	if err != nil {
		span.End()
		s.resolveFlight(key, fl, nil, err)
		if errors.Is(err, errBusy) {
			s.cfg.Metrics.Add(CounterRejected, 1)
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			s.fail(w, "check", http.StatusTooManyRequests, "server at capacity, retry later")
			return
		}
		s.timeoutResponse(w, err)
		return
	}

	// Run the pipeline on the worker slot; the handler goroutine only
	// waits for it or the deadline. On timeout the analysis goroutine
	// finishes on its own, releases the slot, and still resolves the
	// flight — the pool bound stays honest even when clients have long
	// gone, and followers are never stranded by their leader's client.
	// The body is copied out first: the pooled read buffer is returned
	// when this handler exits, which may precede the analysis.
	source := string(body)
	go func() {
		defer release()
		if s.checkGate != nil {
			<-s.checkGate
		}
		sc := s.getScratch()
		res, err := s.check(root, st, name, source, withTrace, dedupe, sc)
		s.putScratch(sc)
		if err == nil {
			s.cache.Put(key, res.core) // nil-safe when the cache is off
			s.updateCacheMetrics()
		}
		s.resolveFlight(key, fl, res, err)
	}()

	select {
	case <-fl.done:
		if fl.err != nil {
			span.End()
			s.fail(w, "check", http.StatusInternalServerError, "encoding response: "+fl.err.Error())
			return
		}
		s.respondCheck(w, root, span, fl.res.core)
		s.cfg.Log.Log("check.done", "file", name, "findings", fl.res.total,
			"trace", root.TraceID())
	case <-ctx.Done():
		s.cfg.Metrics.Add(CounterTimeouts, 1)
		span.End()
		s.timeoutResponse(w, ctx.Err())
	}
}

// followFlight rides an in-flight identical analysis: the follower
// holds no worker slot, keeps its own deadline, and fails exactly like
// its leader when the leader could not be admitted.
func (s *Server) followFlight(w http.ResponseWriter, ctx context.Context,
	root *trace.Span, span obs.Span, name string, f *flight) {
	s.coalesced.Add(1)
	s.cfg.Metrics.Add(obs.CounterCheckCoalesced, 1)
	root.SetAttr("coalesced", true)
	select {
	case <-f.done:
		if f.err != nil {
			span.End()
			switch {
			case errors.Is(f.err, errBusy):
				s.cfg.Metrics.Add(CounterRejected, 1)
				w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
				s.fail(w, "check", http.StatusTooManyRequests, "server at capacity, retry later")
			default:
				s.timeoutResponse(w, f.err)
			}
			return
		}
		s.respondCheck(w, root, span, f.res.core)
		s.cfg.Log.Log("check.done", "file", name, "findings", f.res.total,
			"cache", "coalesced", "trace", root.TraceID())
	case <-ctx.Done():
		s.cfg.Metrics.Add(CounterTimeouts, 1)
		span.End()
		s.timeoutResponse(w, ctx.Err())
	}
}

// resolveFlight publishes the outcome and retires the flight. The cache
// Put (in the caller) happens first, so a request arriving between the
// delete and a later identical one either joined this flight or finds
// the cached value — never a gap where both miss.
func (s *Server) resolveFlight(key checkcache.Key, fl *flight, res *checkResult, err error) {
	fl.res, fl.err = res, err
	if s.cache != nil {
		s.flightMu.Lock()
		if s.flights[key] == fl {
			delete(s.flights, key)
		}
		s.flightMu.Unlock()
	}
	close(fl.done)
}

// respondCheck writes one 200: the cached core encoding with
// `,"elapsed_ms":…,"trace_id":"…"` spliced before the closing brace —
// byte-for-byte what marshaling the full CheckResponse would produce.
func (s *Server) respondCheck(w http.ResponseWriter, root *trace.Span, span obs.Span, core []byte) {
	enc := root.StartChild("encode")
	elapsed := float64(span.End()) / float64(time.Millisecond)
	bufp := s.getBuf()
	b := append((*bufp)[:0], core[:len(core)-1]...)
	b = append(b, `,"elapsed_ms":`...)
	b = appendJSONFloat(b, elapsed)
	b = append(b, `,"trace_id":"`...)
	b = append(b, root.TraceID()...)
	b = append(b, '"', '}', '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
	*bufp = b
	s.putBuf(bufp)
	enc.End()
}

// updateCacheMetrics refreshes the residency gauges and rolls forward
// the eviction counter from the cache's cumulative snapshot.
func (s *Server) updateCacheMetrics() {
	cs := s.cache.Stats()
	s.cfg.Metrics.Set(obs.GaugeCheckCacheEntries, float64(cs.Entries))
	s.cfg.Metrics.Set(obs.GaugeCheckCacheBytes, float64(cs.Bytes))
	if d := cs.Evictions - s.evictionsPublished.Swap(cs.Evictions); d > 0 {
		s.cfg.Metrics.Add(obs.CounterCheckCacheEvictions, d)
	}
}

// readAllInto is io.ReadAll into a caller-provided buffer, reusing its
// capacity and returning the (possibly grown) slice.
func readAllInto(r io.Reader, buf []byte) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// appendJSONFloat appends f exactly as encoding/json renders a float64
// (ES6 number-to-string: %f in the mid range, %e with a trimmed
// exponent outside it), keeping spliced responses byte-identical to a
// direct marshal.
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// retryAfterSeconds derives the Retry-After hint for 429 responses
// from observed load instead of a constant: the p50 analysis service
// time times the requests currently in the system per worker — roughly
// how long until a queue slot frees up — rounded up and clamped to
// [1, 30] seconds. The estimate uses TimerAnalyze, not TimerCheck:
// end-to-end check latency already includes queue wait, and scaling it
// by the queue length would double-count queueing delay. Before any
// latency sample exists it falls back to 1.
func (s *Server) retryAfterSeconds() int {
	ts, ok := s.cfg.Metrics.Timer(TimerAnalyze)
	if !ok || ts.Count == 0 || ts.P50 <= 0 {
		return 1
	}
	wait := ts.P50 * float64(s.admitted.Load()) / float64(s.cfg.Workers)
	secs := int(math.Ceil(wait))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// check runs the per-request analysis: parse + dataflow via the shared
// corpus front-end (Workers: 1 — request-level parallelism comes from
// the handler pool), union, then the taint analyzer. It is the same
// code path cmd/taintcheck runs, so findings match the CLI byte for
// byte on the same input. The caller passes the store snapshot it
// admitted with (so the cache key and the analysis agree) and a pooled
// scratch the sequential front-end threads through parse and dataflow.
//
// The front-end reports parse and dataflow time only after the fact,
// so those stages become retroactive child spans (AddChildAt) tiling
// the front-end wall; taint runs under a live child span.
func (s *Server) check(root *trace.Span, st storeState, name, source string,
	withTrace, dedupe bool, sc *core.Scratch) (*checkResult, error) {
	span := s.cfg.Metrics.Start(TimerAnalyze)
	feStart := time.Now()
	fe := core.AnalyzeFiles(map[string]string{name: source},
		core.Config{Workers: 1, Metrics: s.cfg.Metrics, Scratch: sc})
	root.AddChildAt("parse", feStart, fe.ParseTotal)
	root.AddChildAt("dataflow", feStart.Add(fe.ParseTotal), fe.AnalyzeTotal)
	ts := root.StartChild("taint")
	union := propgraph.Union(fe.Graphs...)
	reports := taint.Analyze(union, st.spec)
	if dedupe {
		reports = taint.Dedupe(reports)
	}
	ts.SetAttr("findings", len(reports))
	ts.End()
	span.End()

	cc := &checkCore{File: name, Findings: []Finding{}}
	if len(fe.ParseErrs) > 0 {
		cc.ParseError = fe.ParseErrs[0].Error()
	}
	for i := range reports {
		rep := &reports[i]
		f := Finding{
			File:      rep.File,
			Source:    rep.SourceRep,
			Sink:      rep.SinkRep,
			SourcePos: rep.SourcePos.String(),
			SinkPos:   rep.SinkPos.String(),
			Category:  string(rep.Category),
		}
		f.ID = findingID(&f)
		if withTrace {
			f.Trace = rep.Trace(union)
		}
		s.recordFinding(&f)
		cc.Findings = append(cc.Findings, f)
	}
	sum := taint.Summarize(reports)
	cc.Total = sum.Total
	if sum.Total > 0 {
		cc.ByCategory = make(map[string]int, len(sum.ByCategory))
		for c, n := range sum.ByCategory {
			cc.ByCategory[string(c)] = n
		}
	}
	s.cfg.Metrics.Add("taint.reports", int64(sum.Total))
	data, err := json.Marshal(cc)
	if err != nil {
		return nil, err
	}
	return &checkResult{core: data, total: sum.Total}, nil
}

// SpecEntry is one role assignment in a /v1/specs response.
type SpecEntry struct {
	Role string `json:"role"`
	Rep  string `json:"rep"`
	Args []int  `json:"args,omitempty"`
}

// SpecsResponse is the /v1/specs response body. Epoch names the store
// generation the entries came from (the key /v1/check responses are
// cached under); it changes on every effective reload and on every
// feedback re-solve.
type SpecsResponse struct {
	Schema    int         `json:"schema"`
	Epoch     string      `json:"epoch"`
	Meta      specio.Meta `json:"meta"`
	Count     int         `json:"count"`
	Entries   []SpecEntry `json:"entries"`
	Blacklist []string    `json:"blacklist,omitempty"`
}

// handleSpecs implements GET /v1/specs. Query parameters: role
// (source|sanitizer|sink), q (substring of the representation), limit.
func (s *Server) handleSpecs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.fail(w, "specs", http.StatusMethodNotAllowed, "GET only")
		return
	}

	roleFilter := r.URL.Query().Get("role")
	if roleFilter != "" && roleFilter != "source" && roleFilter != "sanitizer" && roleFilter != "sink" {
		s.fail(w, "specs", http.StatusBadRequest, "role must be source, sanitizer, or sink")
		return
	}
	q := r.URL.Query().Get("q")
	limit := 0
	if ls := r.URL.Query().Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			s.fail(w, "specs", http.StatusBadRequest, "limit must be a non-negative integer")
			return
		}
		limit = n
	}

	st := s.currentStore()
	resp := &SpecsResponse{Schema: specio.SchemaVersion, Epoch: st.epoch, Meta: st.meta, Entries: []SpecEntry{}}
	add := func(role string, reps []string) {
		if roleFilter != "" && roleFilter != role {
			return
		}
		for _, rep := range reps {
			if q != "" && !strings.Contains(rep, q) {
				continue
			}
			e := SpecEntry{Role: role, Rep: rep}
			if role == "sink" {
				e.Args = st.spec.SinkArgsOf(rep)
			}
			resp.Entries = append(resp.Entries, e)
		}
	}
	add("source", st.spec.Sources)
	add("sanitizer", st.spec.Sanitizers)
	add("sink", st.spec.Sinks)
	resp.Count = len(resp.Entries)
	if limit > 0 && len(resp.Entries) > limit {
		resp.Entries = resp.Entries[:limit]
	}
	if roleFilter == "" && q == "" {
		for _, p := range st.spec.Blacklist {
			resp.Blacklist = append(resp.Blacklist, p.String())
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// HealthResponse is the /v1/healthz response body: liveness plus the
// identity of the store currently serving — its fingerprint, schema,
// and the seed-vs-learned split recorded in its provenance.
type HealthResponse struct {
	Status string `json:"status"`
	Specs  int    `json:"specs"`
	// StoreFingerprint identifies the active store generation (changes
	// on every effective reload); Epoch is the generation name check
	// results are cached under (fingerprint-derived, advances on reloads
	// and feedback re-solves); Schema is the store schema version.
	StoreFingerprint string `json:"store_fingerprint"`
	Epoch            string `json:"epoch"`
	Schema           int    `json:"schema"`
	// SeedEntries/LearnedEntries split Specs by provenance, as recorded
	// in the store's metadata (0/0 for stores without provenance).
	SeedEntries    int     `json:"seed_entries"`
	LearnedEntries int     `json:"learned_entries"`
	Reloads        int64   `json:"reloads"`
	Inflight       int64   `json:"inflight"`
	UptimeS        float64 `json:"uptime_s"`
	// CheckCache summarizes the check-result cache; absent when the
	// cache is disabled. Pool reports scratch-pool traffic. Feedback
	// summarizes the continuous-learning loop; absent without a session.
	CheckCache *CheckCacheHealth `json:"check_cache,omitempty"`
	Pool       PoolHealth        `json:"pool"`
	Feedback   *FeedbackHealth   `json:"feedback,omitempty"`
}

// FeedbackHealth is the /v1/healthz view of the feedback loop: verdict
// counts by direction, the number of (symbol, role) variables currently
// pinned by operator verdicts, and how many incremental re-solves
// feedback has triggered.
type FeedbackHealth struct {
	Accepted   int64 `json:"accepted"`
	Rejected   int64 `json:"rejected"`
	PinnedVars int   `json:"pinned_vars"`
	Resolves   int64 `json:"resolves"`
}

// CheckCacheHealth is the /v1/healthz view of the check-result cache
// and the single-flight coalescer.
type CheckCacheHealth struct {
	Entries   int64   `json:"entries"`
	Bytes     int64   `json:"bytes"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
	Coalesced int64   `json:"coalesced"`
}

// PoolHealth is the /v1/healthz view of the scratch pool: Gets counts
// acquisitions, News the subset that allocated fresh.
type PoolHealth struct {
	Gets int64 `json:"gets"`
	News int64 `json:"news"`
}

// handleHealthz implements GET /v1/healthz: liveness — answers 200 as
// long as the process serves, draining or not. Readiness (should this
// instance receive new traffic?) is /v1/readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.currentStore()
	resp := &HealthResponse{
		Status:           "ok",
		Specs:            st.spec.Len(),
		StoreFingerprint: st.fingerprint,
		Epoch:            st.epoch,
		Schema:           specio.SchemaVersion,
		SeedEntries:      st.meta.SeedEntries,
		LearnedEntries:   st.meta.LearnedEntries,
		Reloads:          s.reloads.Load(),
		Inflight:         s.inflight.Load(),
		UptimeS:          time.Since(s.start).Seconds(),
		Pool:             PoolHealth{Gets: s.poolGets.Load(), News: s.poolNews.Load()},
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		resp.CheckCache = &CheckCacheHealth{
			Entries:   cs.Entries,
			Bytes:     cs.Bytes,
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Evictions: cs.Evictions,
			HitRate:   cs.HitRate(),
			Coalesced: s.coalesced.Load(),
		}
	}
	if s.cfg.Session != nil {
		resp.Feedback = &FeedbackHealth{
			Accepted:   s.feedbackAccepted.Load(),
			Rejected:   s.feedbackRejected.Load(),
			PinnedVars: s.cfg.Session.Pins(),
			Resolves:   s.feedbackResolves.Load(),
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// ReadyResponse is the /v1/readyz response body.
type ReadyResponse struct {
	Ready    bool   `json:"ready"`
	Reason   string `json:"reason,omitempty"`
	Inflight int64  `json:"inflight"`
}

// handleReadyz implements GET /v1/readyz: readiness for load balancers
// and deploy orchestration. It answers 503 the moment Run starts
// draining (while /v1/healthz still answers 200 against the open
// listener) and before a specification store is loaded, so rolling
// restarts stop routing new traffic without killing in-flight checks.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.fail(w, "readyz", http.StatusMethodNotAllowed, "GET only")
		return
	}
	st := s.currentStore()
	resp := &ReadyResponse{Ready: true, Inflight: s.inflight.Load()}
	code := http.StatusOK
	switch {
	case s.draining.Load():
		resp.Ready, resp.Reason = false, "draining"
		code = http.StatusServiceUnavailable
	case st.spec == nil:
		resp.Ready, resp.Reason = false, "no specification store loaded"
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, resp)
}

// ReloadResponse is the /v1/reload response body.
type ReloadResponse struct {
	Status           string `json:"status"` // "reloaded" or "unchanged"
	StoreFingerprint string `json:"store_fingerprint"`
	Specs            int    `json:"specs"`
	SeedEntries      int    `json:"seed_entries"`
	LearnedEntries   int    `json:"learned_entries"`
}

// handleReload implements POST /v1/reload: re-read Config.StorePath,
// validate it (schema check, unknown-field rejection — specio.Load),
// and swap the new store in under the write lock. In-flight checks keep
// the snapshot they admitted with; a load or validation failure answers
// 422 and leaves the previous store serving untouched.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, "reload", http.StatusMethodNotAllowed, "POST to reload the spec store")
		return
	}

	if s.cfg.StorePath == "" {
		s.fail(w, "reload", http.StatusConflict,
			"server was not started from a store file; nothing to reload")
		return
	}
	sp, meta, err := specio.Load(s.cfg.StorePath)
	if err != nil {
		s.cfg.Metrics.Add(CounterReloadErrors, 1)
		s.fail(w, "reload", http.StatusUnprocessableEntity,
			"store rejected, previous specs still serving: "+err.Error())
		return
	}
	fp, err := specio.FingerprintStore(sp, meta)
	if err != nil {
		s.cfg.Metrics.Add(CounterReloadErrors, 1)
		s.fail(w, "reload", http.StatusUnprocessableEntity,
			"store rejected, previous specs still serving: "+err.Error())
		return
	}

	status := "reloaded"
	if prev := s.currentStore(); prev.fingerprint == fp {
		status = "unchanged" // still republished: loadedAt advances
	}
	// The epoch is the fingerprint (always non-empty here: an
	// unfingerprintable store was rejected above), so a reload to a
	// content-identical store keeps its cached check results addressable
	// and any other store starts a fresh generation.
	s.swapStore(storeState{spec: sp, meta: meta, fingerprint: fp, epoch: fp, loadedAt: time.Now()})
	s.cfg.Log.Log("store.reload", "path", s.cfg.StorePath,
		"fingerprint", fp, "specs", sp.Len(), "status", status)
	s.writeJSON(w, http.StatusOK, &ReloadResponse{
		Status:           status,
		StoreFingerprint: fp,
		Specs:            sp.Len(),
		SeedEntries:      meta.SeedEntries,
		LearnedEntries:   meta.LearnedEntries,
	})
}

// errorResponse is the uniform error body. TraceID is present on
// routes that run under a trace (check), so a failed request can be
// looked up in /debug/traces.
type errorResponse struct {
	Error   string `json:"error"`
	TraceID string `json:"trace_id,omitempty"`
}

func (s *Server) timeoutResponse(w http.ResponseWriter, err error) {
	s.fail(w, "check", http.StatusServiceUnavailable, "check did not finish in time: "+err.Error())
}

func (s *Server) fail(w http.ResponseWriter, route string, code int, msg string) {
	if code != http.StatusTooManyRequests {
		s.cfg.Metrics.Add(CounterErrors, 1)
	}
	tid := w.Header().Get("X-Trace-Id")
	if tid != "" {
		s.cfg.Log.Log("http.error", "route", route, "code", code, "err", msg, "trace", tid)
	} else {
		s.cfg.Log.Log("http.error", "route", route, "code", code, "err", msg)
	}
	s.writeJSON(w, code, &errorResponse{Error: msg, TraceID: tid})
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}
