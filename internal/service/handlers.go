package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"seldon/internal/core"
	"seldon/internal/propgraph"
	"seldon/internal/specio"
	"seldon/internal/taint"
)

// Finding is one taint report in a /v1/check response.
type Finding struct {
	File      string `json:"file"`
	Source    string `json:"source"`
	Sink      string `json:"sink"`
	SourcePos string `json:"source_pos"`
	SinkPos   string `json:"sink_pos"`
	Category  string `json:"category"`
	// Trace is the witness flow rendered as text, present with ?trace=1.
	Trace string `json:"trace,omitempty"`
}

// CheckResponse is the /v1/check response body.
type CheckResponse struct {
	File       string         `json:"file"`
	Findings   []Finding      `json:"findings"`
	Total      int            `json:"total"`
	ByCategory map[string]int `json:"by_category,omitempty"`
	// ParseError carries a recovered parse failure; analysis still ran
	// over the recovered AST (same contract as the CLIs).
	ParseError string  `json:"parse_error,omitempty"`
	ElapsedMS  float64 `json:"elapsed_ms"`
}

// handleCheck implements POST /v1/check: the body is one Python source
// file; the response lists unsanitized source→sink flows under the
// loaded specification. Query parameters: filename (report label,
// default "request.py"), trace=1 (include witness traces), dedupe=1
// (collapse findings sharing source and sink representations).
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, "check", http.StatusMethodNotAllowed, "POST a Python source file")
		return
	}
	span := s.cfg.Metrics.Start(TimerCheck)
	s.cfg.Metrics.Add(CounterRequests, 1)
	s.cfg.Metrics.Add(CounterRequests+".check", 1)

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.fail(w, "check", http.StatusRequestEntityTooLarge,
				"body exceeds "+strconv.FormatInt(s.cfg.MaxBodyBytes, 10)+" bytes")
			return
		}
		s.fail(w, "check", http.StatusBadRequest, "reading body: "+err.Error())
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	release, err := s.admit(ctx)
	if err != nil {
		if errors.Is(err, errBusy) {
			s.cfg.Metrics.Add(CounterRejected, 1)
			w.Header().Set("Retry-After", "1")
			s.fail(w, "check", http.StatusTooManyRequests, "server at capacity, retry later")
			return
		}
		s.timeoutResponse(w, err)
		return
	}

	name := r.URL.Query().Get("filename")
	if name == "" {
		name = "request.py"
	}

	// Run the pipeline on the worker slot; the handler goroutine only
	// waits for it or the deadline. On timeout the analysis goroutine
	// finishes on its own and releases the slot then — the pool bound
	// stays honest even when clients have long gone.
	type outcome struct {
		resp *CheckResponse
	}
	done := make(chan outcome, 1)
	go func() {
		defer release()
		if s.checkGate != nil {
			<-s.checkGate
		}
		done <- outcome{resp: s.check(name, string(body), r.URL.Query().Get("trace") == "1",
			r.URL.Query().Get("dedupe") == "1")}
	}()

	select {
	case out := <-done:
		out.resp.ElapsedMS = float64(span.End()) / float64(time.Millisecond)
		s.writeJSON(w, http.StatusOK, out.resp)
		s.cfg.Log.Log("check.done", "file", name, "findings", out.resp.Total)
	case <-ctx.Done():
		s.cfg.Metrics.Add(CounterTimeouts, 1)
		span.End()
		s.timeoutResponse(w, ctx.Err())
	}
}

// check runs the per-request analysis: parse + dataflow via the shared
// corpus front-end (Workers: 1 — request-level parallelism comes from
// the handler pool), union, then the taint analyzer. It is the same
// code path cmd/taintcheck runs, so findings match the CLI byte for
// byte on the same input.
func (s *Server) check(name, source string, withTrace, dedupe bool) *CheckResponse {
	span := s.cfg.Metrics.Start(TimerAnalyze)
	fe := core.AnalyzeFiles(map[string]string{name: source},
		core.Config{Workers: 1, Metrics: s.cfg.Metrics})
	union := propgraph.Union(fe.Graphs...)
	reports := taint.Analyze(union, s.cfg.Spec)
	if dedupe {
		reports = taint.Dedupe(reports)
	}
	span.End()

	resp := &CheckResponse{File: name, Findings: []Finding{}}
	if len(fe.ParseErrs) > 0 {
		resp.ParseError = fe.ParseErrs[0].Error()
	}
	for i := range reports {
		rep := &reports[i]
		f := Finding{
			File:      rep.File,
			Source:    rep.SourceRep,
			Sink:      rep.SinkRep,
			SourcePos: rep.SourcePos.String(),
			SinkPos:   rep.SinkPos.String(),
			Category:  string(rep.Category),
		}
		if withTrace {
			f.Trace = rep.Trace(union)
		}
		resp.Findings = append(resp.Findings, f)
	}
	sum := taint.Summarize(reports)
	resp.Total = sum.Total
	if sum.Total > 0 {
		resp.ByCategory = make(map[string]int, len(sum.ByCategory))
		for c, n := range sum.ByCategory {
			resp.ByCategory[string(c)] = n
		}
	}
	s.cfg.Metrics.Add("taint.reports", int64(sum.Total))
	return resp
}

// SpecEntry is one role assignment in a /v1/specs response.
type SpecEntry struct {
	Role string `json:"role"`
	Rep  string `json:"rep"`
	Args []int  `json:"args,omitempty"`
}

// SpecsResponse is the /v1/specs response body.
type SpecsResponse struct {
	Schema    int         `json:"schema"`
	Meta      specio.Meta `json:"meta"`
	Count     int         `json:"count"`
	Entries   []SpecEntry `json:"entries"`
	Blacklist []string    `json:"blacklist,omitempty"`
}

// handleSpecs implements GET /v1/specs. Query parameters: role
// (source|sanitizer|sink), q (substring of the representation), limit.
func (s *Server) handleSpecs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.fail(w, "specs", http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.cfg.Metrics.Add(CounterRequests, 1)
	s.cfg.Metrics.Add(CounterRequests+".specs", 1)

	roleFilter := r.URL.Query().Get("role")
	if roleFilter != "" && roleFilter != "source" && roleFilter != "sanitizer" && roleFilter != "sink" {
		s.fail(w, "specs", http.StatusBadRequest, "role must be source, sanitizer, or sink")
		return
	}
	q := r.URL.Query().Get("q")
	limit := 0
	if ls := r.URL.Query().Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			s.fail(w, "specs", http.StatusBadRequest, "limit must be a non-negative integer")
			return
		}
		limit = n
	}

	resp := &SpecsResponse{Schema: specio.SchemaVersion, Meta: s.cfg.Meta, Entries: []SpecEntry{}}
	add := func(role string, reps []string) {
		if roleFilter != "" && roleFilter != role {
			return
		}
		for _, rep := range reps {
			if q != "" && !strings.Contains(rep, q) {
				continue
			}
			e := SpecEntry{Role: role, Rep: rep}
			if role == "sink" {
				e.Args = s.cfg.Spec.SinkArgsOf(rep)
			}
			resp.Entries = append(resp.Entries, e)
		}
	}
	add("source", s.cfg.Spec.Sources)
	add("sanitizer", s.cfg.Spec.Sanitizers)
	add("sink", s.cfg.Spec.Sinks)
	resp.Count = len(resp.Entries)
	if limit > 0 && len(resp.Entries) > limit {
		resp.Entries = resp.Entries[:limit]
	}
	if roleFilter == "" && q == "" {
		for _, p := range s.cfg.Spec.Blacklist {
			resp.Blacklist = append(resp.Blacklist, p.String())
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// HealthResponse is the /v1/healthz response body.
type HealthResponse struct {
	Status   string  `json:"status"`
	Specs    int     `json:"specs"`
	Inflight int64   `json:"inflight"`
	UptimeS  float64 `json:"uptime_s"`
}

// handleHealthz implements GET /v1/healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.cfg.Metrics.Add(CounterRequests, 1)
	s.cfg.Metrics.Add(CounterRequests+".healthz", 1)
	s.writeJSON(w, http.StatusOK, &HealthResponse{
		Status:   "ok",
		Specs:    s.cfg.Spec.Len(),
		Inflight: s.inflight.Load(),
		UptimeS:  time.Since(s.start).Seconds(),
	})
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) timeoutResponse(w http.ResponseWriter, err error) {
	s.fail(w, "check", http.StatusServiceUnavailable, "check did not finish in time: "+err.Error())
}

func (s *Server) fail(w http.ResponseWriter, route string, code int, msg string) {
	if code != http.StatusTooManyRequests {
		s.cfg.Metrics.Add(CounterErrors, 1)
	}
	s.cfg.Log.Log("http.error", "route", route, "code", code, "err", msg)
	s.writeJSON(w, code, &errorResponse{Error: msg})
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}
