package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"seldon/internal/core"
	"seldon/internal/obs/trace"
	"seldon/internal/propgraph"
	"seldon/internal/specio"
	"seldon/internal/taint"
)

// Finding is one taint report in a /v1/check response.
type Finding struct {
	File      string `json:"file"`
	Source    string `json:"source"`
	Sink      string `json:"sink"`
	SourcePos string `json:"source_pos"`
	SinkPos   string `json:"sink_pos"`
	Category  string `json:"category"`
	// Trace is the witness flow rendered as text, present with ?trace=1.
	Trace string `json:"trace,omitempty"`
}

// CheckResponse is the /v1/check response body.
type CheckResponse struct {
	File       string         `json:"file"`
	Findings   []Finding      `json:"findings"`
	Total      int            `json:"total"`
	ByCategory map[string]int `json:"by_category,omitempty"`
	// ParseError carries a recovered parse failure; analysis still ran
	// over the recovered AST (same contract as the CLIs).
	ParseError string  `json:"parse_error,omitempty"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	// TraceID identifies this request's span tree in /debug/traces
	// (also returned in the X-Trace-Id response header).
	TraceID string `json:"trace_id,omitempty"`
}

// handleCheck implements POST /v1/check: the body is one Python source
// file; the response lists unsanitized source→sink flows under the
// loaded specification. Query parameters: filename (report label,
// default "request.py"), trace=1 (include witness traces), dedupe=1
// (collapse findings sharing source and sink representations).
//
// Every request runs under a span tree: admission (body read) → queue
// (wait for a worker slot) → parse → dataflow → taint → encode. The
// trace ID is returned in X-Trace-Id and the response body, a W3C
// traceparent header is honored inbound and emitted outbound, and the
// finished tree is retrievable from /debug/traces?trace_id=<id>.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, "check", http.StatusMethodNotAllowed, "POST a Python source file")
		return
	}
	root := s.cfg.Tracer.StartRootFrom("http.check", r.Header.Get("Traceparent"))
	defer root.End()
	w.Header().Set("X-Trace-Id", root.TraceID())
	w.Header().Set("Traceparent", root.Traceparent())
	if s.draining.Load() {
		s.fail(w, "check", http.StatusServiceUnavailable, "server is draining")
		return
	}
	span := s.cfg.Metrics.Start(TimerCheck)

	adm := root.StartChild("admission")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	adm.SetAttr("body_bytes", len(body))
	adm.End()
	if err != nil {
		span.End()
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.fail(w, "check", http.StatusRequestEntityTooLarge,
				"body exceeds "+strconv.FormatInt(s.cfg.MaxBodyBytes, 10)+" bytes")
			return
		}
		s.fail(w, "check", http.StatusBadRequest, "reading body: "+err.Error())
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	queue := root.StartChild("queue")
	release, err := s.admit(ctx)
	queue.End()
	if err != nil {
		span.End()
		if errors.Is(err, errBusy) {
			s.cfg.Metrics.Add(CounterRejected, 1)
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			s.fail(w, "check", http.StatusTooManyRequests, "server at capacity, retry later")
			return
		}
		s.timeoutResponse(w, err)
		return
	}

	name := r.URL.Query().Get("filename")
	if name == "" {
		name = "request.py"
	}
	root.SetAttr("file", name)

	// Run the pipeline on the worker slot; the handler goroutine only
	// waits for it or the deadline. On timeout the analysis goroutine
	// finishes on its own and releases the slot then — the pool bound
	// stays honest even when clients have long gone.
	type outcome struct {
		resp *CheckResponse
	}
	done := make(chan outcome, 1)
	go func() {
		defer release()
		if s.checkGate != nil {
			<-s.checkGate
		}
		done <- outcome{resp: s.check(root, name, string(body), r.URL.Query().Get("trace") == "1",
			r.URL.Query().Get("dedupe") == "1")}
	}()

	select {
	case out := <-done:
		enc := root.StartChild("encode")
		out.resp.ElapsedMS = float64(span.End()) / float64(time.Millisecond)
		out.resp.TraceID = root.TraceID()
		s.writeJSON(w, http.StatusOK, out.resp)
		enc.End()
		s.cfg.Log.Log("check.done", "file", name, "findings", out.resp.Total,
			"trace", root.TraceID())
	case <-ctx.Done():
		s.cfg.Metrics.Add(CounterTimeouts, 1)
		span.End()
		s.timeoutResponse(w, ctx.Err())
	}
}

// retryAfterSeconds derives the Retry-After hint for 429 responses
// from observed load instead of a constant: the p50 analysis service
// time times the requests currently in the system per worker — roughly
// how long until a queue slot frees up — rounded up and clamped to
// [1, 30] seconds. The estimate uses TimerAnalyze, not TimerCheck:
// end-to-end check latency already includes queue wait, and scaling it
// by the queue length would double-count queueing delay. Before any
// latency sample exists it falls back to 1.
func (s *Server) retryAfterSeconds() int {
	ts, ok := s.cfg.Metrics.Timer(TimerAnalyze)
	if !ok || ts.Count == 0 || ts.P50 <= 0 {
		return 1
	}
	wait := ts.P50 * float64(s.admitted.Load()) / float64(s.cfg.Workers)
	secs := int(math.Ceil(wait))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// check runs the per-request analysis: parse + dataflow via the shared
// corpus front-end (Workers: 1 — request-level parallelism comes from
// the handler pool), union, then the taint analyzer. It is the same
// code path cmd/taintcheck runs, so findings match the CLI byte for
// byte on the same input. The store snapshot is taken once here, so a
// concurrent reload never changes the spec mid-check.
//
// The front-end reports parse and dataflow time only after the fact,
// so those stages become retroactive child spans (AddChildAt) tiling
// the front-end wall; taint runs under a live child span.
func (s *Server) check(root *trace.Span, name, source string, withTrace, dedupe bool) *CheckResponse {
	st := s.currentStore()
	root.SetAttr("store", st.fingerprint)
	span := s.cfg.Metrics.Start(TimerAnalyze)
	feStart := time.Now()
	fe := core.AnalyzeFiles(map[string]string{name: source},
		core.Config{Workers: 1, Metrics: s.cfg.Metrics})
	root.AddChildAt("parse", feStart, fe.ParseTotal)
	root.AddChildAt("dataflow", feStart.Add(fe.ParseTotal), fe.AnalyzeTotal)
	ts := root.StartChild("taint")
	union := propgraph.Union(fe.Graphs...)
	reports := taint.Analyze(union, st.spec)
	if dedupe {
		reports = taint.Dedupe(reports)
	}
	ts.SetAttr("findings", len(reports))
	ts.End()
	span.End()

	resp := &CheckResponse{File: name, Findings: []Finding{}}
	if len(fe.ParseErrs) > 0 {
		resp.ParseError = fe.ParseErrs[0].Error()
	}
	for i := range reports {
		rep := &reports[i]
		f := Finding{
			File:      rep.File,
			Source:    rep.SourceRep,
			Sink:      rep.SinkRep,
			SourcePos: rep.SourcePos.String(),
			SinkPos:   rep.SinkPos.String(),
			Category:  string(rep.Category),
		}
		if withTrace {
			f.Trace = rep.Trace(union)
		}
		resp.Findings = append(resp.Findings, f)
	}
	sum := taint.Summarize(reports)
	resp.Total = sum.Total
	if sum.Total > 0 {
		resp.ByCategory = make(map[string]int, len(sum.ByCategory))
		for c, n := range sum.ByCategory {
			resp.ByCategory[string(c)] = n
		}
	}
	s.cfg.Metrics.Add("taint.reports", int64(sum.Total))
	return resp
}

// SpecEntry is one role assignment in a /v1/specs response.
type SpecEntry struct {
	Role string `json:"role"`
	Rep  string `json:"rep"`
	Args []int  `json:"args,omitempty"`
}

// SpecsResponse is the /v1/specs response body.
type SpecsResponse struct {
	Schema    int         `json:"schema"`
	Meta      specio.Meta `json:"meta"`
	Count     int         `json:"count"`
	Entries   []SpecEntry `json:"entries"`
	Blacklist []string    `json:"blacklist,omitempty"`
}

// handleSpecs implements GET /v1/specs. Query parameters: role
// (source|sanitizer|sink), q (substring of the representation), limit.
func (s *Server) handleSpecs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.fail(w, "specs", http.StatusMethodNotAllowed, "GET only")
		return
	}

	roleFilter := r.URL.Query().Get("role")
	if roleFilter != "" && roleFilter != "source" && roleFilter != "sanitizer" && roleFilter != "sink" {
		s.fail(w, "specs", http.StatusBadRequest, "role must be source, sanitizer, or sink")
		return
	}
	q := r.URL.Query().Get("q")
	limit := 0
	if ls := r.URL.Query().Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			s.fail(w, "specs", http.StatusBadRequest, "limit must be a non-negative integer")
			return
		}
		limit = n
	}

	st := s.currentStore()
	resp := &SpecsResponse{Schema: specio.SchemaVersion, Meta: st.meta, Entries: []SpecEntry{}}
	add := func(role string, reps []string) {
		if roleFilter != "" && roleFilter != role {
			return
		}
		for _, rep := range reps {
			if q != "" && !strings.Contains(rep, q) {
				continue
			}
			e := SpecEntry{Role: role, Rep: rep}
			if role == "sink" {
				e.Args = st.spec.SinkArgsOf(rep)
			}
			resp.Entries = append(resp.Entries, e)
		}
	}
	add("source", st.spec.Sources)
	add("sanitizer", st.spec.Sanitizers)
	add("sink", st.spec.Sinks)
	resp.Count = len(resp.Entries)
	if limit > 0 && len(resp.Entries) > limit {
		resp.Entries = resp.Entries[:limit]
	}
	if roleFilter == "" && q == "" {
		for _, p := range st.spec.Blacklist {
			resp.Blacklist = append(resp.Blacklist, p.String())
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// HealthResponse is the /v1/healthz response body: liveness plus the
// identity of the store currently serving — its fingerprint, schema,
// and the seed-vs-learned split recorded in its provenance.
type HealthResponse struct {
	Status string `json:"status"`
	Specs  int    `json:"specs"`
	// StoreFingerprint identifies the active store generation (changes
	// on every effective reload); Schema is the store schema version.
	StoreFingerprint string `json:"store_fingerprint"`
	Schema           int    `json:"schema"`
	// SeedEntries/LearnedEntries split Specs by provenance, as recorded
	// in the store's metadata (0/0 for stores without provenance).
	SeedEntries    int     `json:"seed_entries"`
	LearnedEntries int     `json:"learned_entries"`
	Reloads        int64   `json:"reloads"`
	Inflight       int64   `json:"inflight"`
	UptimeS        float64 `json:"uptime_s"`
}

// handleHealthz implements GET /v1/healthz: liveness — answers 200 as
// long as the process serves, draining or not. Readiness (should this
// instance receive new traffic?) is /v1/readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.currentStore()
	s.writeJSON(w, http.StatusOK, &HealthResponse{
		Status:           "ok",
		Specs:            st.spec.Len(),
		StoreFingerprint: st.fingerprint,
		Schema:           specio.SchemaVersion,
		SeedEntries:      st.meta.SeedEntries,
		LearnedEntries:   st.meta.LearnedEntries,
		Reloads:          s.reloads.Load(),
		Inflight:         s.inflight.Load(),
		UptimeS:          time.Since(s.start).Seconds(),
	})
}

// ReadyResponse is the /v1/readyz response body.
type ReadyResponse struct {
	Ready    bool   `json:"ready"`
	Reason   string `json:"reason,omitempty"`
	Inflight int64  `json:"inflight"`
}

// handleReadyz implements GET /v1/readyz: readiness for load balancers
// and deploy orchestration. It answers 503 the moment Run starts
// draining (while /v1/healthz still answers 200 against the open
// listener) and before a specification store is loaded, so rolling
// restarts stop routing new traffic without killing in-flight checks.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.fail(w, "readyz", http.StatusMethodNotAllowed, "GET only")
		return
	}
	st := s.currentStore()
	resp := &ReadyResponse{Ready: true, Inflight: s.inflight.Load()}
	code := http.StatusOK
	switch {
	case s.draining.Load():
		resp.Ready, resp.Reason = false, "draining"
		code = http.StatusServiceUnavailable
	case st.spec == nil:
		resp.Ready, resp.Reason = false, "no specification store loaded"
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, resp)
}

// ReloadResponse is the /v1/reload response body.
type ReloadResponse struct {
	Status           string `json:"status"` // "reloaded" or "unchanged"
	StoreFingerprint string `json:"store_fingerprint"`
	Specs            int    `json:"specs"`
	SeedEntries      int    `json:"seed_entries"`
	LearnedEntries   int    `json:"learned_entries"`
}

// handleReload implements POST /v1/reload: re-read Config.StorePath,
// validate it (schema check, unknown-field rejection — specio.Load),
// and swap the new store in under the write lock. In-flight checks keep
// the snapshot they admitted with; a load or validation failure answers
// 422 and leaves the previous store serving untouched.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, "reload", http.StatusMethodNotAllowed, "POST to reload the spec store")
		return
	}

	if s.cfg.StorePath == "" {
		s.fail(w, "reload", http.StatusConflict,
			"server was not started from a store file; nothing to reload")
		return
	}
	sp, meta, err := specio.Load(s.cfg.StorePath)
	if err != nil {
		s.cfg.Metrics.Add(CounterReloadErrors, 1)
		s.fail(w, "reload", http.StatusUnprocessableEntity,
			"store rejected, previous specs still serving: "+err.Error())
		return
	}
	fp, err := specio.FingerprintStore(sp, meta)
	if err != nil {
		s.cfg.Metrics.Add(CounterReloadErrors, 1)
		s.fail(w, "reload", http.StatusUnprocessableEntity,
			"store rejected, previous specs still serving: "+err.Error())
		return
	}

	status := "reloaded"
	if prev := s.currentStore(); prev.fingerprint == fp {
		status = "unchanged" // still republished: loadedAt advances
	}
	s.swapStore(storeState{spec: sp, meta: meta, fingerprint: fp, loadedAt: time.Now()})
	s.cfg.Log.Log("store.reload", "path", s.cfg.StorePath,
		"fingerprint", fp, "specs", sp.Len(), "status", status)
	s.writeJSON(w, http.StatusOK, &ReloadResponse{
		Status:           status,
		StoreFingerprint: fp,
		Specs:            sp.Len(),
		SeedEntries:      meta.SeedEntries,
		LearnedEntries:   meta.LearnedEntries,
	})
}

// errorResponse is the uniform error body. TraceID is present on
// routes that run under a trace (check), so a failed request can be
// looked up in /debug/traces.
type errorResponse struct {
	Error   string `json:"error"`
	TraceID string `json:"trace_id,omitempty"`
}

func (s *Server) timeoutResponse(w http.ResponseWriter, err error) {
	s.fail(w, "check", http.StatusServiceUnavailable, "check did not finish in time: "+err.Error())
}

func (s *Server) fail(w http.ResponseWriter, route string, code int, msg string) {
	if code != http.StatusTooManyRequests {
		s.cfg.Metrics.Add(CounterErrors, 1)
	}
	tid := w.Header().Get("X-Trace-Id")
	if tid != "" {
		s.cfg.Log.Log("http.error", "route", route, "code", code, "err", msg, "trace", tid)
	} else {
		s.cfg.Log.Log("http.error", "route", route, "code", code, "err", msg)
	}
	s.writeJSON(w, code, &errorResponse{Error: msg, TraceID: tid})
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}
