//go:build race

package service

// raceEnabled reports whether the race detector instruments this build;
// the alloc-budget tests skip under it (instrumentation changes counts).
const raceEnabled = true
