package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"seldon/internal/obs"
	"seldon/internal/propgraph"
	"seldon/internal/spec"
	"seldon/internal/specio"
)

// The paper's Fig. 2 specification: upload filename → secure_filename →
// save, the same triple the taint package's own tests use.
func testSpec() *spec.Spec {
	s := spec.New()
	s.Add(propgraph.Source, "flask.request.files['f'].filename")
	s.Add(propgraph.Sanitizer, "werkzeug.secure_filename()")
	s.Add(propgraph.Sink, "flask.request.files['f'].save()")
	return s
}

const taintedSrc = `from flask import request
import os

@app.route('/media/', methods=['POST'])
def media():
    filename = request.files['f'].filename
    path = os.path.join('/srv', filename)
    request.files['f'].save(path)
`

const sanitizedSrc = `from flask import request
from werkzeug import secure_filename
import os

@app.route('/media/', methods=['POST'])
def media():
    filename = request.files['f'].filename
    filename = secure_filename(filename)
    path = os.path.join('/srv', filename)
    request.files['f'].save(path)
`

const cleanSrc = `import os

def media():
    os.path.join('/srv', 'static.txt')
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Spec == nil {
		cfg.Spec = testSpec()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.New()
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postCheck(t *testing.T, url, body string) (*http.Response, CheckResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/check?filename=app.py", "text/x-python", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out CheckResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, out
}

func TestCheckTaintedFlow(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, out := postCheck(t, ts.URL, taintedSrc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Total != 1 || len(out.Findings) != 1 {
		t.Fatalf("findings = %+v", out)
	}
	f := out.Findings[0]
	if f.Source != "flask.request.files['f'].filename" ||
		f.Sink != "flask.request.files['f'].save()" ||
		f.Category != "path-traversal" || f.File != "app.py" {
		t.Errorf("finding = %+v", f)
	}
	if out.ByCategory["path-traversal"] != 1 {
		t.Errorf("by_category = %v", out.ByCategory)
	}
}

func TestCheckSanitizedFlow(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, out := postCheck(t, ts.URL, sanitizedSrc)
	if resp.StatusCode != http.StatusOK || out.Total != 0 {
		t.Fatalf("status = %d, findings = %+v", resp.StatusCode, out)
	}
}

func TestCheckCleanFile(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, out := postCheck(t, ts.URL, cleanSrc)
	if resp.StatusCode != http.StatusOK || out.Total != 0 {
		t.Fatalf("status = %d, findings = %+v", resp.StatusCode, out)
	}
	if out.Findings == nil {
		t.Error("findings should encode as [], not null")
	}
}

func TestCheckTraceAndParseError(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/check?trace=1", "text/x-python",
		strings.NewReader(taintedSrc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out CheckResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Findings) != 1 || !strings.Contains(out.Findings[0].Trace, "source") {
		t.Errorf("trace missing: %+v", out.Findings)
	}
	if out.File != "request.py" {
		t.Errorf("default filename = %q", out.File)
	}

	// A syntactically broken file still answers 200 with the parse
	// error surfaced (analysis over the recovered AST, the CLI contract).
	resp2, out2 := postCheck(t, ts.URL, "def broken(:\n    x ==\n")
	if resp2.StatusCode != http.StatusOK || out2.ParseError == "" {
		t.Errorf("status = %d, parse_error = %q", resp2.StatusCode, out2.ParseError)
	}
}

func TestCheckMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/check")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status = %d, want 405", resp.StatusCode)
	}
}

func TestBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 64})
	resp, _ := postCheck(t, ts.URL, strings.Repeat("x = 1\n", 100))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", resp.StatusCode)
	}
	// At the limit is still accepted.
	resp2, _ := postCheck(t, ts.URL, "x = 1\n")
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("small body status = %d, want 200", resp2.StatusCode)
	}
}

// waitFor polls cond for up to 2s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestBackpressure429(t *testing.T) {
	reg := obs.New()
	// Cache off: this test pins raw queue backpressure, and identical
	// concurrent bodies would otherwise coalesce instead of queueing.
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Metrics: reg, CheckCacheEntries: -1})
	gate := make(chan struct{})
	s.checkGate = gate

	// Saturate: one check running (holds the worker slot, blocked on the
	// gate) and one queued.
	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, _ := http.Post(ts.URL+"/v1/check", "text/x-python", strings.NewReader(taintedSrc))
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results <- resp.StatusCode
		}()
	}
	waitFor(t, "saturation", func() bool {
		return s.admitted.Load() == 2 && s.inflight.Load() == 1
	})

	// The queue is full: the next request must be rejected immediately.
	resp, _ := postCheck(t, ts.URL, taintedSrc)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// Release the gate: both held requests complete normally.
	close(gate)
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Errorf("held request %d: status = %d", i, code)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters[CounterRejected] != 1 {
		t.Errorf("%s = %d, want 1", CounterRejected, snap.Counters[CounterRejected])
	}
	waitFor(t, "slots drained", func() bool { return s.admitted.Load() == 0 })
	snap = reg.Snapshot()
	if snap.Gauges[GaugeInflight] != 0 || snap.Gauges[GaugeQueued] != 0 {
		t.Errorf("gauges not reset: inflight=%v queued=%v",
			snap.Gauges[GaugeInflight], snap.Gauges[GaugeQueued])
	}
}

func TestRequestTimeout(t *testing.T) {
	reg := obs.New()
	s, ts := newTestServer(t, Config{Workers: 1, RequestTimeout: 30 * time.Millisecond, Metrics: reg})
	gate := make(chan struct{})
	s.checkGate = gate
	defer close(gate)

	resp, _ := postCheck(t, ts.URL, taintedSrc)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if reg.Snapshot().Counters[CounterTimeouts] != 1 {
		t.Error("timeout not counted")
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	reg := obs.New()
	s := New(Config{Spec: testSpec(), Workers: 1, Metrics: reg})
	gate := make(chan struct{})
	s.checkGate = gate

	addrc := make(chan string, 1)
	s.cfg.OnReady = func(addr string) { addrc <- addr }
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(ctx, "127.0.0.1:0") }()
	addr := <-addrc

	// An in-flight request, blocked on the gate.
	result := make(chan int, 1)
	go func() {
		resp, err := http.Post("http://"+addr+"/v1/check", "text/x-python", strings.NewReader(taintedSrc))
		if err != nil {
			result <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		result <- resp.StatusCode
	}()
	waitFor(t, "request in flight", func() bool { return s.inflight.Load() == 1 })

	// Trigger shutdown (the SIGINT/SIGTERM path). While the in-flight
	// check drains, the listener stays up with readiness flipped: load
	// balancers see /v1/readyz 503 and stop routing, but /v1/healthz
	// still answers 200 — the process is alive, just not accepting.
	cancel()
	waitFor(t, "readyz 503 during drain", func() bool {
		resp, err := http.Get("http://" + addr + "/v1/readyz")
		if err != nil {
			return false
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	})
	hresp, err := http.Get("http://" + addr + "/v1/healthz")
	if err != nil {
		t.Fatalf("healthz during drain: %v", err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz during drain = %d, want 200 (liveness)", hresp.StatusCode)
	}
	close(gate)

	if code := <-result; code != http.StatusOK {
		t.Errorf("drained request status = %d, want 200", code)
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Errorf("Run returned %v, want nil after graceful drain", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after drain")
	}
	// The listener is gone.
	if _, err := http.Get("http://" + addr + "/v1/healthz"); err == nil {
		t.Error("server still accepting after shutdown")
	}
}

func TestStartFailsFastOnBusyPort(t *testing.T) {
	s := New(Config{Spec: testSpec()})
	srv, _, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	s2 := New(Config{Spec: testSpec()})
	if _, _, err := s2.Start(srv.Addr); err == nil {
		t.Fatal("second bind on the same port did not fail")
	}
}

func TestSpecsEndpoint(t *testing.T) {
	sp := testSpec()
	sp.RestrictSinkArgs("flask.request.files['f'].save()", 0)
	sp.AddBlacklist("*.append()")
	meta := specio.Meta{CorpusFingerprint: "sha256:abc", Generator: "seldon"}
	_, ts := newTestServer(t, Config{Spec: sp, Meta: meta})

	get := func(query string) (*http.Response, SpecsResponse) {
		resp, err := http.Get(ts.URL + "/v1/specs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out SpecsResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
		} else {
			io.Copy(io.Discard, resp.Body)
		}
		return resp, out
	}

	_, all := get("")
	if all.Count != 3 || all.Schema != specio.SchemaVersion || all.Meta != meta {
		t.Errorf("unfiltered = %+v", all)
	}
	if len(all.Blacklist) != 1 {
		t.Errorf("blacklist = %v", all.Blacklist)
	}

	_, sinks := get("?role=sink")
	if sinks.Count != 1 || sinks.Entries[0].Role != "sink" || len(sinks.Entries[0].Args) != 1 {
		t.Errorf("sinks = %+v", sinks)
	}

	_, filtered := get("?q=secure")
	if filtered.Count != 1 || filtered.Entries[0].Rep != "werkzeug.secure_filename()" {
		t.Errorf("q filter = %+v", filtered)
	}

	_, limited := get("?limit=2")
	if limited.Count != 3 || len(limited.Entries) != 2 {
		t.Errorf("limit: count=%d entries=%d", limited.Count, len(limited.Entries))
	}

	if resp, _ := get("?role=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad role status = %d", resp.StatusCode)
	}
	if resp, err := http.Post(ts.URL+"/v1/specs", "", nil); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST /v1/specs status = %d", resp.StatusCode)
		}
	}
}

func TestHealthzAndMetricsMux(t *testing.T) {
	reg := obs.New()
	_, ts := newTestServer(t, Config{Metrics: reg})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Specs != 3 {
		t.Errorf("healthz = %+v", h)
	}

	// One check, then the shared /metrics surface must show the request
	// counters and the latency timer.
	postCheck(t, ts.URL, taintedSrc)
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters[CounterRequests] < 2 || snap.Counters[CounterRequests+".check"] != 1 {
		t.Errorf("request counters = %v", snap.Counters)
	}
	if snap.Timers[TimerCheck].Count != 1 || snap.Timers[TimerAnalyze].Count != 1 {
		t.Errorf("latency timers = %v", snap.Timers)
	}
}

func TestDedupeParam(t *testing.T) {
	// Two independent tainted flows with the same (source, sink) reps:
	// dedupe=1 collapses them to one finding.
	src := taintedSrc + `
def media2():
    filename = request.files['f'].filename
    request.files['f'].save(filename)
`
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/check?dedupe=1", "text/x-python", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out CheckResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Findings) != 1 {
		t.Errorf("dedupe left %d findings", len(out.Findings))
	}
}
