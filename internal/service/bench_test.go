package service

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"seldon/internal/core"
	"seldon/internal/obs"
)

// BenchmarkCheckHandler measures the three /v1/check serving paths
// end-to-end through the handler (mux, telemetry, tracing, encoding
// included): a warm cache hit, a cold miss running the full pipeline
// through the pooled scratch, and a coalesced follower splicing a
// shared flight result. Run with -benchmem; make bench-json folds the
// numbers into the snapshot.
func BenchmarkCheckHandler(b *testing.B) {
	body := []byte(taintedSrc)
	newServer := func(cfg Config) *Server {
		cfg.Spec = testSpec()
		cfg.Metrics = obs.New()
		return New(cfg)
	}
	serve := func(b *testing.B, h http.Handler) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/check", bytes.NewReader(body))
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("check status = %d", rec.Code)
		}
	}

	b.Run("hit", func(b *testing.B) {
		s := newServer(Config{})
		h := s.Handler()
		serve(b, h) // populate the cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serve(b, h)
		}
	})

	b.Run("miss", func(b *testing.B) {
		s := newServer(Config{CheckCacheEntries: -1})
		h := s.Handler()
		serve(b, h) // warm the pools
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serve(b, h)
		}
	})

	b.Run("coalesced", func(b *testing.B) {
		s := newServer(Config{})
		root := s.cfg.Tracer.StartRootFrom("http.check", "")
		res, err := s.check(root, s.currentStore(), "request.py", taintedSrc, false, false, &core.Scratch{})
		root.End()
		if err != nil {
			b.Fatal(err)
		}
		done := make(chan struct{})
		close(done)
		f := &flight{done: done, res: res}
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec := httptest.NewRecorder()
			root := s.cfg.Tracer.StartRootFrom("http.check", "")
			span := s.cfg.Metrics.Start(TimerCheck)
			s.followFlight(rec, ctx, root, span, "request.py", f)
			root.End()
			if rec.Code != http.StatusOK {
				b.Fatalf("follower status = %d", rec.Code)
			}
		}
	})
}
