// Package service is the long-running taint-analysis server behind
// cmd/seldond: it loads a specification store (internal/specio) once at
// startup and then answers check requests over HTTP, running the
// pyparse → dataflow → propgraph → taint pipeline per request.
//
// Endpoints (mounted alongside the internal/obs operator surface, so
// /metrics, /metrics.txt, and /debug/pprof/ are served from the same
// mux):
//
//	POST /v1/check    Python source in the body → taint findings as JSON
//	GET  /v1/specs    filtered specification lookup
//	GET  /v1/healthz  liveness + store summary + active store fingerprint
//	GET  /v1/readyz   readiness: 503 while draining or before the store loads
//	POST /v1/reload   re-read the spec store and swap it in atomically
//	POST /v1/feedback accept/reject a finding or (symbol, role); pins the
//	                  variable, re-solves incrementally, publishes a new
//	                  store generation (requires Config.Session)
//
// Request-scoped tracing: every /v1/check runs under a span tree
// (admission → queue → parse → dataflow → taint → encode) with a trace
// ID returned in X-Trace-Id, echoed in error bodies and request logs,
// and propagated via W3C traceparent headers in both directions. The
// bounded ring of recent traces is served from GET /debug/traces.
//
// The server is built for sustained traffic: analysis runs on a bounded
// worker pool (Config.Workers, core.Config.Workers semantics), requests
// beyond the pool wait in a bounded queue and overflow is rejected with
// 429, request bodies are size-capped (413), every check carries a
// context deadline, and Run drains in-flight requests on shutdown.
//
// Hot reload: the loaded specification lives behind a read-write lock.
// Each check snapshots the store once at admission and runs entirely
// against that snapshot, so /v1/reload swaps specs without dropping or
// mixing in-flight checks; a reload that fails to load or validate
// leaves the previous store serving.
//
// Repeated work is nearly free. Three layers stack on the check path:
//
//   - Check-result cache: a bounded, sharded LRU (internal/checkcache)
//     keyed on (analyzer version, store generation, filename, options,
//     body) holds the encoded findings; an identical request against the
//     same store generation is a map lookup plus a per-request splice of
//     elapsed_ms and trace_id. Reload starts a new generation, so stale
//     entries stop being addressable rather than needing a flush.
//   - Single-flight coalescing: concurrent identical-key requests
//     collapse onto one in-flight analysis. The leader takes a worker
//     slot; followers wait on the flight without consuming one, keep
//     their own deadlines, and are marked coalesced in their trace.
//   - Scratch pooling: per-request parse and dataflow state (token
//     buffers, analyzer tables) is recycled through a sync.Pool behind
//     core.Scratch's Reset seam, cutting steady-state allocations on
//     cache misses.
//
// Cached, coalesced, and cold responses are byte-identical modulo
// trace_id: every 200 is the cached "core" encoding plus the same
// splice, so callers cannot observe which path served them.
package service

import (
	"context"
	"errors"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"seldon/internal/checkcache"
	"seldon/internal/core"
	"seldon/internal/incr"
	"seldon/internal/obs"
	"seldon/internal/obs/trace"
	"seldon/internal/spec"
	"seldon/internal/specio"
)

// Metric names exported by the service, next to the pipeline's
// stage.* names in the /metrics snapshot.
const (
	// CounterRequests counts accepted HTTP requests; per-endpoint
	// counters are CounterRequests + "." + route (e.g. "http.requests.check").
	CounterRequests = "http.requests"
	// CounterRejected counts 429 backpressure rejections.
	CounterRejected = "http.rejected"
	// CounterErrors counts non-2xx responses other than 429.
	CounterErrors = "http.errors"
	// CounterResponses counts responses by route and status class:
	// CounterResponses + ".check.2xx", ".check.4xx", and so on.
	CounterResponses = "http.responses"
	// CounterTimeouts counts checks cancelled by the request deadline.
	CounterTimeouts = "http.timeouts"
	// TimerCheck is the end-to-end /v1/check latency (p50/p95 in the
	// snapshot); TimerAnalyze is just the analysis section.
	TimerCheck   = "http.check.latency"
	TimerAnalyze = "http.check.analyze"
	// TimerRoutePrefix + route is the handler-level latency of each /v1/
	// endpoint (includes method checks and serialization, not just the
	// analysis section); GaugeRouteInflightPrefix + route counts requests
	// currently inside that handler.
	TimerRoutePrefix         = "http.route.latency."
	GaugeRouteInflightPrefix = "http.route.inflight."
	// GaugeInflight is the number of checks currently holding a worker
	// slot; GaugeQueued counts requests admitted but waiting for one.
	GaugeInflight = "http.inflight"
	GaugeQueued   = "http.queued"
	// CounterReloads counts successful /v1/reload swaps;
	// CounterReloadErrors counts rejected ones (store unreadable or
	// invalid — the old specs kept serving). GaugeStoreSpecs is the
	// entry count of the store currently serving.
	CounterReloads      = "store.reloads"
	CounterReloadErrors = "store.reload.errors"
	GaugeStoreSpecs     = "store.specs"
)

// Config parametrizes a Server. The zero value of every field selects a
// production-safe default.
type Config struct {
	// Spec is the loaded specification store (required); Meta is its
	// provenance block, echoed by /v1/specs and /v1/healthz.
	Spec *spec.Spec
	Meta specio.Meta
	// StorePath, when non-empty, is the file Spec was loaded from;
	// POST /v1/reload re-reads it and swaps the result in atomically.
	// Without it the reload endpoint answers 409.
	StorePath string

	// Workers bounds concurrently running checks, with core.Config.Workers
	// semantics: 0 selects runtime.GOMAXPROCS(0), 1 serializes.
	Workers int
	// QueueDepth bounds requests waiting for a worker slot; beyond
	// Workers+QueueDepth the server answers 429. 0 selects 2×Workers.
	QueueDepth int
	// RequestTimeout caps one check (queue wait + analysis); 0 selects
	// 30s. Exceeding it answers 503.
	RequestTimeout time.Duration
	// MaxBodyBytes caps the /v1/check request body; 0 selects 1 MiB.
	// Larger bodies answer 413.
	MaxBodyBytes int64
	// DrainTimeout bounds graceful shutdown; 0 selects 10s.
	DrainTimeout time.Duration

	// Session, when non-nil, is the incremental-learning session behind
	// POST /v1/feedback: operator verdicts pin (symbol, role) variables
	// as hard LP constraints, the session re-solves warm-started, and the
	// re-learned store is published as a new generation. Without it the
	// feedback endpoint answers 409. The server owns re-solve
	// serialization; the caller must not Relearn concurrently.
	Session *incr.Session

	// CheckCacheEntries and CheckCacheBytes bound the check-result cache
	// (entries resident / total encoded-response bytes). 0 selects the
	// checkcache defaults (8192 entries, 64 MiB); any negative value
	// disables the cache — and with it single-flight coalescing, which
	// shares its keying — so every request runs a full analysis.
	CheckCacheEntries int
	CheckCacheBytes   int64

	// Metrics and Log receive request telemetry; both may be nil.
	Metrics *obs.Registry
	Log     *obs.Logger
	// Tracer records one span tree per /v1/check request in a bounded
	// in-memory ring served from /debug/traces. Nil selects a fresh
	// ring of trace.DefaultCapacity traces — tracing is always on.
	Tracer *trace.Tracer

	// OnReady, when non-nil, is called once with the resolved listen
	// address after a successful bind (":0" callers learn the port).
	OnReady func(addr string)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.Tracer == nil {
		c.Tracer = trace.New(0)
	}
	return c
}

// storeState is one immutable generation of the serving specification.
// A reload replaces the whole value; nothing inside it is ever mutated
// after publication, so a snapshot taken under the read lock stays
// valid for the lifetime of the request using it.
type storeState struct {
	spec        *spec.Spec
	meta        specio.Meta
	fingerprint string
	// epoch names this generation in check-cache keys: the fingerprint
	// when one exists, a synthetic "gen-<n>" otherwise. Two generations
	// never share an epoch unless their stores are content-identical, in
	// which case sharing cached results is exactly right.
	epoch    string
	loadedAt time.Time
}

// Server answers taint-check traffic against a hot-swappable
// specification store.
type Server struct {
	cfg   Config
	start time.Time

	// storeMu guards store, the active specification generation;
	// reloads counts successful swaps (including none).
	storeMu sync.RWMutex
	store   storeState
	reloads atomic.Int64

	// sem holds one token per running check; admitted counts every
	// request between admission control and completion (running +
	// queued), bounded by Workers+QueueDepth.
	sem      chan struct{}
	admitted atomic.Int64
	inflight atomic.Int64

	// draining flips once Run begins shutdown; /v1/readyz answers 503
	// from then on so load balancers stop routing while in-flight checks
	// finish against the still-open listener.
	draining atomic.Bool

	// checkGate, when non-nil, blocks each check until the channel is
	// closed — test hook for saturation and drain tests.
	checkGate chan struct{}

	// cache holds encoded check results; nil when disabled. flights is
	// the single-flight table: one entry per cache key currently being
	// analyzed, so concurrent identical requests share one analysis.
	cache    *checkcache.Cache
	flightMu sync.Mutex
	flights  map[checkcache.Key]*flight

	// scratchPool recycles per-request parse+dataflow scratch between
	// cache misses; bufPool recycles the request-scoped byte buffers
	// (body read, response encode). poolGets/poolNews mirror the obs
	// counters for /v1/healthz; coalesced likewise.
	scratchPool sync.Pool
	bufPool     sync.Pool
	poolGets    atomic.Int64
	poolNews    atomic.Int64
	coalesced   atomic.Int64
	// evictionsPublished tracks how much of the cache's cumulative
	// eviction count has been rolled into the obs counter.
	evictionsPublished atomic.Int64

	// Feedback loop state (all unused without Config.Session). findings
	// maps finding IDs to the endpoint symbols a verdict pins, bounded
	// FIFO by findingOrder; feedbackMu serializes pin→relearn→publish.
	findingMu    sync.Mutex
	findings     map[string]feedbackTarget
	findingOrder []string
	feedbackMu   sync.Mutex

	feedbackAccepted atomic.Int64
	feedbackRejected atomic.Int64
	feedbackResolves atomic.Int64
}

// flight is one in-progress analysis that concurrent identical requests
// attach to. The leader (or its analysis goroutine) fills res or err and
// closes done exactly once; followers select on done against their own
// deadlines. err propagates the leader's admission failure (429 or
// queue-wait timeout) so followers fail the same way instead of hanging.
type flight struct {
	done chan struct{}
	res  *checkResult
	err  error
}

// New builds a Server from cfg. cfg.Spec must be non-nil.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	fp, err := specio.FingerprintStore(cfg.Spec, cfg.Meta)
	if err != nil {
		fp = "" // unfingerprintable store still serves
	}
	epoch := fp
	if epoch == "" {
		epoch = "gen-0"
	}
	s := &Server{
		cfg:   cfg,
		start: time.Now(),
		sem:   make(chan struct{}, cfg.Workers),
		store: storeState{
			spec: cfg.Spec, meta: cfg.Meta, fingerprint: fp, epoch: epoch, loadedAt: time.Now(),
		},
	}
	if cfg.CheckCacheEntries >= 0 && cfg.CheckCacheBytes >= 0 {
		s.cache = checkcache.New(cfg.CheckCacheEntries, cfg.CheckCacheBytes)
		s.flights = make(map[checkcache.Key]*flight)
	}
	if cfg.Session != nil {
		s.findings = make(map[string]feedbackTarget)
	}
	s.scratchPool.New = func() any {
		s.poolNews.Add(1)
		s.cfg.Metrics.Add(obs.CounterPoolNews, 1)
		return &core.Scratch{}
	}
	s.bufPool.New = func() any {
		b := make([]byte, 0, 4096)
		return &b
	}
	cfg.Metrics.Set(GaugeStoreSpecs, float64(cfg.Spec.Len()))
	return s
}

// getScratch takes a pooled analysis scratch; putScratch scrubs and
// returns it. The scratch lives inside the analysis goroutine only, so
// a handler that times out and returns never races its buffers.
func (s *Server) getScratch() *core.Scratch {
	s.poolGets.Add(1)
	s.cfg.Metrics.Add(obs.CounterPoolGets, 1)
	return s.scratchPool.Get().(*core.Scratch)
}

func (s *Server) putScratch(sc *core.Scratch) {
	sc.Reset()
	s.scratchPool.Put(sc)
}

func (s *Server) getBuf() *[]byte  { return s.bufPool.Get().(*[]byte) }
func (s *Server) putBuf(b *[]byte) { *b = (*b)[:0]; s.bufPool.Put(b) }

// currentStore snapshots the active specification generation. Callers
// hold the snapshot for their whole request so one check never sees two
// stores.
func (s *Server) currentStore() storeState {
	s.storeMu.RLock()
	st := s.store
	s.storeMu.RUnlock()
	return st
}

// swapStore publishes a new specification generation atomically.
func (s *Server) swapStore(st storeState) {
	s.storeMu.Lock()
	s.store = st
	s.storeMu.Unlock()
	s.reloads.Add(1)
	s.cfg.Metrics.Add(CounterReloads, 1)
	s.cfg.Metrics.Set(GaugeStoreSpecs, float64(st.spec.Len()))
}

// Handler returns the full mux: the /v1/ endpoints plus the operator
// surface (/metrics, /metrics.txt, /metrics.prom, /debug/pprof/,
// /debug/traces).
func (s *Server) Handler() http.Handler {
	mux := obs.NewServeMux(s.cfg.Metrics)
	mux.Handle("/v1/check", s.route("check", s.handleCheck))
	mux.Handle("/v1/specs", s.route("specs", s.handleSpecs))
	mux.Handle("/v1/healthz", s.route("healthz", s.handleHealthz))
	mux.Handle("/v1/readyz", s.route("readyz", s.handleReadyz))
	mux.Handle("/v1/reload", s.route("reload", s.handleReload))
	mux.Handle("/v1/feedback", s.route("feedback", s.handleFeedback))
	mux.Handle("/debug/traces", trace.Handler(s.cfg.Tracer))
	return mux
}

// statusWriter captures the response status code for the per-route
// status-class counters.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// route wraps a handler with the uniform per-route telemetry: the
// global and per-route request counters, a handler-latency timer, an
// inflight gauge, and a status-class response counter. Individual
// handlers only record what is specific to them.
func (s *Server) route(name string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.cfg.Metrics.Add(CounterRequests, 1)
		s.cfg.Metrics.Add(CounterRequests+"."+name, 1)
		s.cfg.Metrics.GaugeAdd(GaugeRouteInflightPrefix+name, 1)
		t := s.cfg.Metrics.Start(TimerRoutePrefix + name)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		t.End()
		s.cfg.Metrics.GaugeAdd(GaugeRouteInflightPrefix+name, -1)
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		s.cfg.Metrics.Add(CounterResponses+"."+name+"."+strconv.Itoa(code/100)+"xx", 1)
	})
}

// errBusy is returned by admit when the queue is full.
var errBusy = errors.New("service: at capacity")

// admit applies backpressure: it reserves a queue position, then waits
// for a worker slot or the context. The returned release frees the
// worker slot; the queue position is freed when the slot is acquired or
// admission fails.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	limit := int64(s.cfg.Workers + s.cfg.QueueDepth)
	if s.admitted.Add(1) > limit {
		s.admitted.Add(-1)
		return nil, errBusy
	}
	s.updateGauges()
	select {
	case s.sem <- struct{}{}:
		s.inflight.Add(1)
		s.updateGauges()
		return func() {
			<-s.sem
			s.inflight.Add(-1)
			s.admitted.Add(-1)
			s.updateGauges()
		}, nil
	case <-ctx.Done():
		s.admitted.Add(-1)
		s.updateGauges()
		return nil, ctx.Err()
	}
}

func (s *Server) updateGauges() {
	s.cfg.Metrics.Set(GaugeInflight, float64(s.inflight.Load()))
	s.cfg.Metrics.Set(GaugeQueued, float64(s.admitted.Load()-s.inflight.Load()))
}

// Start binds addr and serves in a background goroutine. The returned
// server's Addr is the resolved address (":0" callers discover the
// port), and the error channel reports a Serve failure after a
// successful bind; it is closed when the listener stops. Bind failures
// (busy port, bad address) are returned synchronously — callers fail
// fast at startup.
func (s *Server) Start(addr string) (*http.Server, <-chan error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
		close(errc)
	}()
	st := s.currentStore()
	s.cfg.Log.Log("service.listen", "addr", srv.Addr,
		"workers", s.cfg.Workers, "queue", s.cfg.QueueDepth,
		"specs", st.spec.Len(), "store", st.fingerprint)
	if s.cfg.OnReady != nil {
		s.cfg.OnReady(srv.Addr)
	}
	return srv, errc, nil
}

// Run serves addr until ctx is cancelled (typically by SIGINT/SIGTERM
// via signal.NotifyContext), then shuts down gracefully in two phases:
// first /v1/readyz flips to 503 while the listener stays open — load
// balancers stop routing but in-flight and already-queued checks keep
// draining — then, once admitted work reaches zero (or DrainTimeout
// elapses), the listener closes. A listener error also ends the run.
func (s *Server) Run(ctx context.Context, addr string) error {
	srv, errc, err := s.Start(addr)
	if err != nil {
		return err
	}
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.draining.Store(true)
	s.cfg.Log.Log("service.drain", "inflight", s.inflight.Load(), "admitted", s.admitted.Load())
	deadline := time.Now().Add(s.cfg.DrainTimeout)
	for s.admitted.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	drainCtx, cancel := context.WithDeadline(context.Background(), deadline.Add(time.Second))
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return err
	}
	s.cfg.Log.Log("service.stopped", "uptime", time.Since(s.start).Round(time.Millisecond))
	return nil
}
