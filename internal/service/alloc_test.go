package service

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"seldon/internal/core"
	"seldon/internal/obs"
)

// Steady-state allocation budgets for the three fast paths. These are
// regression tripwires, not targets: each holds ~2× headroom over the
// measured count, so an accidental per-request allocation (a dropped
// pool, a fresh buffer, a closure capture) fails loudly while compiler
// and runtime drift does not.
const (
	allocBudgetHit       = 120 // cache hit: request decode + key + splice
	allocBudgetCoalesced = 60  // follower: wait + splice only
	allocBudgetMiss      = 800 // full analysis with pooled scratch
)

func newAllocServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Spec == nil {
		cfg.Spec = testSpec()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.New()
	}
	return New(cfg)
}

func serveOnce(t *testing.T, h http.Handler, body []byte) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/check", bytes.NewReader(body))
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("check status = %d", rec.Code)
	}
}

func TestCheckAllocBudgets(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	body := []byte(taintedSrc)

	t.Run("cache hit", func(t *testing.T) {
		s := newAllocServer(t, Config{})
		h := s.Handler()
		serveOnce(t, h, body) // populate
		avg := testing.AllocsPerRun(200, func() { serveOnce(t, h, body) })
		t.Logf("cache-hit check: %.1f allocs/request", avg)
		if avg > allocBudgetHit {
			t.Errorf("cache-hit check allocates %.1f/request, budget %d", avg, allocBudgetHit)
		}
	})

	t.Run("coalesced follower", func(t *testing.T) {
		// The follower's own work is everything after joining the flight:
		// wait, then splice-encode the shared result. Drive followFlight
		// directly against a resolved flight — the only way to measure the
		// follower deterministically without a live blocked leader.
		s := newAllocServer(t, Config{})
		root := s.cfg.Tracer.StartRootFrom("http.check", "")
		res, err := s.check(root, s.currentStore(), "request.py", taintedSrc, false, false, &core.Scratch{})
		root.End()
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		close(done)
		f := &flight{done: done, res: res}
		ctx := context.Background()
		avg := testing.AllocsPerRun(200, func() {
			rec := httptest.NewRecorder()
			root := s.cfg.Tracer.StartRootFrom("http.check", "")
			span := s.cfg.Metrics.Start(TimerCheck)
			s.followFlight(rec, ctx, root, span, "request.py", f)
			root.End()
			if rec.Code != http.StatusOK {
				t.Fatalf("follower status = %d", rec.Code)
			}
		})
		t.Logf("coalesced follower: %.1f allocs/request", avg)
		if avg > allocBudgetCoalesced {
			t.Errorf("coalesced follower allocates %.1f/request, budget %d", avg, allocBudgetCoalesced)
		}
	})

	t.Run("pooled miss", func(t *testing.T) {
		// Cache off: every request runs the full pipeline through the
		// scratch pool. The budget bounds the whole analysis, so losing
		// the pool (or a new per-file allocation in parse/dataflow) trips.
		s := newAllocServer(t, Config{CheckCacheEntries: -1})
		h := s.Handler()
		serveOnce(t, h, body) // warm the pools
		avg := testing.AllocsPerRun(100, func() { serveOnce(t, h, body) })
		t.Logf("pooled miss: %.1f allocs/request", avg)
		if avg > allocBudgetMiss {
			t.Errorf("cache-miss check allocates %.1f/request, budget %d", avg, allocBudgetMiss)
		}
	})
}
