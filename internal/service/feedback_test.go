package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"seldon/internal/core"
	"seldon/internal/corpus"
	"seldon/internal/incr"
	"seldon/internal/propgraph"
	"seldon/internal/specio"
)

// learnedSrc exercises two corpus-learned specification entries:
// request.files['f'].filename is a learned source and shellrun.invoke a
// learned sink, neither seeded, so a verdict against the finding pins
// real variables.
const learnedSrc = `from flask import request
import shellrun

def handler():
    f = request.files['f'].filename
    shellrun.invoke(f)
`

// newFeedbackServer learns a store from the generated corpus inside an
// incremental session and serves it with the session attached.
func newFeedbackServer(t *testing.T) (*Server, string, *incr.Session) {
	t.Helper()
	seed := corpus.ExperimentSeed()
	sess := incr.NewSession(seed, core.Config{Workers: 1})
	for name, src := range corpus.Generate(corpus.Config{Files: 20, Seed: 1}).FileMap() {
		sess.SpliceSource(name, src)
	}
	res, _ := sess.Relearn()
	learned := sess.LearnedSpec()
	if len(res.LearnedEntries(seed)) == 0 {
		t.Fatal("corpus learned no non-seed entries")
	}
	meta := specio.Meta{SeedEntries: seed.Len(), LearnedEntries: len(res.LearnedEntries(seed))}
	s, ts := newTestServer(t, Config{Spec: learned, Meta: meta, Session: sess, Workers: 2})
	return s, ts.URL, sess
}

func postFeedback(t *testing.T, url string, req FeedbackRequest) (*http.Response, FeedbackResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/feedback", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out FeedbackResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, out
}

func getHealth(t *testing.T, url string) HealthResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestFeedbackRequiresSession(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := postFeedback(t, ts.URL, FeedbackRequest{Symbol: "x()", Role: "sink", Verdict: "reject"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("feedback without session: status = %d, want 409", resp.StatusCode)
	}
}

func TestFeedbackValidation(t *testing.T) {
	_, url, _ := newFeedbackServer(t)
	cases := []struct {
		name string
		req  FeedbackRequest
		want int
	}{
		{"bad verdict", FeedbackRequest{Symbol: "x()", Role: "sink", Verdict: "maybe"}, http.StatusBadRequest},
		{"no target", FeedbackRequest{Verdict: "accept"}, http.StatusBadRequest},
		{"both targets", FeedbackRequest{FindingID: "ab", Symbol: "x()", Role: "sink", Verdict: "accept"}, http.StatusBadRequest},
		{"bad role", FeedbackRequest{Symbol: "x()", Role: "laundry", Verdict: "accept"}, http.StatusBadRequest},
		{"unknown finding", FeedbackRequest{FindingID: "deadbeefdeadbeefdeadbeef", Verdict: "accept"}, http.StatusNotFound},
		{"seed entry", FeedbackRequest{Symbol: "os.system()", Role: "sink", Verdict: "accept"}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		if resp, _ := postFeedback(t, url, tc.req); resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

// TestFeedbackRejectBySymbol: rejecting a learned entry pins it to 0,
// re-solves incrementally (every span reused, warm start), publishes a
// new generation, and the entry disappears from /v1/specs.
func TestFeedbackRejectBySymbol(t *testing.T) {
	s, url, sess := newFeedbackServer(t)
	before := getHealth(t, url)
	target := sess.Result().LearnedEntries(sess.Seed())[0]

	resp, out := postFeedback(t, url, FeedbackRequest{
		Symbol: target.Rep, Role: target.Role.String(), Verdict: "reject",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(out.Pinned) != 1 || out.Pinned[0].Symbol != target.Rep || out.Pinned[0].Value != 0 {
		t.Fatalf("pinned = %+v", out.Pinned)
	}
	if out.Epoch == before.Epoch || out.Epoch == "" {
		t.Fatalf("epoch did not advance: %q -> %q", before.Epoch, out.Epoch)
	}
	if !out.WarmStarted {
		t.Error("feedback re-solve did not warm-start")
	}
	if out.SpansReused != sess.Len() {
		t.Errorf("re-solve reused %d/%d spans", out.SpansReused, sess.Len())
	}

	st := s.currentStore()
	if st.epoch != out.Epoch {
		t.Errorf("serving epoch %q, response epoch %q", st.epoch, out.Epoch)
	}
	if st.spec.RolesOf(target.Rep).Has(target.Role) {
		t.Errorf("rejected entry %q still in serving store", target.Rep)
	}

	after := getHealth(t, url)
	if after.Feedback == nil {
		t.Fatal("healthz has no feedback block with a session attached")
	}
	if after.Feedback.Rejected != 1 || after.Feedback.Accepted != 0 ||
		after.Feedback.Resolves != 1 || after.Feedback.PinnedVars != 1 {
		t.Errorf("feedback health = %+v", after.Feedback)
	}
	if after.Epoch != out.Epoch {
		t.Errorf("healthz epoch %q, want %q", after.Epoch, out.Epoch)
	}
}

// TestFeedbackFindingLoop is the end-to-end loop: check reports a
// finding over learned entries, a reject verdict against its ID pins
// both endpoints, and a re-check of the identical body under the new
// generation no longer reports the flow — proving the check cache
// invalidated structurally with the store swap.
func TestFeedbackFindingLoop(t *testing.T) {
	_, url, _ := newFeedbackServer(t)

	resp, out := postCheck(t, url, learnedSrc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check status = %d", resp.StatusCode)
	}
	if out.Total == 0 {
		t.Fatalf("no findings over learned entries: %+v", out)
	}
	f := out.Findings[0]
	if f.ID == "" {
		t.Fatal("finding has no ID")
	}

	// Warm the cache: the identical body must hit.
	resp2, out2 := postCheck(t, url, learnedSrc)
	if resp2.StatusCode != http.StatusOK || out2.Total != out.Total {
		t.Fatalf("repeat check diverged: %d, %+v", resp2.StatusCode, out2)
	}

	fresp, fout := postFeedback(t, url, FeedbackRequest{FindingID: f.ID, Verdict: "reject"})
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("feedback status = %d", fresp.StatusCode)
	}
	if len(fout.Pinned) == 0 {
		t.Fatal("verdict pinned nothing")
	}
	for _, p := range fout.Pinned {
		if p.Value != 0 {
			t.Errorf("reject pinned %q to %v, want 0", p.Symbol, p.Value)
		}
	}

	resp3, out3 := postCheck(t, url, learnedSrc)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("re-check status = %d", resp3.StatusCode)
	}
	for _, g := range out3.Findings {
		if g.ID == f.ID {
			t.Fatalf("rejected finding %s still reported after re-solve", f.ID)
		}
	}
	if out3.Total >= out.Total {
		t.Errorf("finding count did not drop: %d -> %d", out.Total, out3.Total)
	}
}

// TestFeedbackAcceptBySymbol: accepting a not-yet-selected candidate
// pins it to 1 and it appears in the published store.
func TestFeedbackAcceptBySymbol(t *testing.T) {
	s, url, sess := newFeedbackServer(t)
	// Any corpus symbol works; pick one the solver scored below threshold
	// by probing the session's solution through a learned-roles filter.
	res := sess.Result()
	var rep string
	for _, v := range res.System.Vars {
		if v.Role != propgraph.Sink {
			continue
		}
		if sess.Seed().RolesOf(v.Rep).Has(propgraph.Sink) {
			continue
		}
		if sc, ok := sess.Score(v.Rep, propgraph.Sink); ok && sc < 0.1 {
			rep = v.Rep
			break
		}
	}
	if rep == "" {
		t.Skip("no sub-threshold sink candidate in corpus")
	}

	resp, out := postFeedback(t, url, FeedbackRequest{Symbol: rep, Role: "sink", Verdict: "accept"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(out.Pinned) != 1 || out.Pinned[0].Value != 1 {
		t.Fatalf("pinned = %+v", out.Pinned)
	}
	if !s.currentStore().spec.RolesOf(rep).Has(propgraph.Sink) {
		t.Errorf("accepted sink %q missing from serving store", rep)
	}
	if h := getHealth(t, url); h.Feedback == nil || h.Feedback.Accepted != 1 {
		t.Errorf("healthz accepted count wrong: %+v", h.Feedback)
	}
}
