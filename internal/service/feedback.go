package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"time"

	"seldon/internal/obs"
	"seldon/internal/propgraph"
	"seldon/internal/specio"
)

// The continuous-learning loop (POST /v1/feedback). An operator reviews
// a /v1/check finding and sends a verdict — accept ("this flow is
// real") or reject ("false positive") — against either the finding's ID
// or a (symbol, role) pair directly. The verdict pins the corresponding
// specification variables as hard LP constraints in the server's
// incremental-learning session (Config.Session), the session re-solves
// warm-started against the cached constraint blocks, and the re-learned
// store is published as a new immutable generation through the same
// swap machinery /v1/reload uses — so the check-result cache
// invalidates structurally (stale generations stop being addressable)
// and in-flight checks keep the snapshot they admitted with.
//
// Seed entries are ground truth: a verdict never pins an endpoint whose
// seed already assigns it the role in question, so feedback can extend
// and prune the learned store but cannot contradict the seed.

// maxFindingIndex bounds the finding-ID index. IDs are recorded as
// /v1/check computes findings and evicted FIFO; a verdict against an
// evicted (or never-seen) ID answers 404 and can be re-sent by symbol.
const maxFindingIndex = 4096

// feedbackTarget is what a finding ID resolves to: the two endpoint
// representations a verdict pins.
type feedbackTarget struct {
	source string
	sink   string
}

// findingID derives the deterministic content hash /v1/check stamps on
// each finding: sha256 over the identifying fields, truncated to 12
// bytes of hex. Trace text is excluded — the same flow with and without
// ?trace=1 is the same finding.
func findingID(f *Finding) string {
	h := sha256.New()
	for _, part := range []string{f.File, f.Source, f.Sink, f.SourcePos, f.SinkPos, f.Category} {
		h.Write([]byte(part))
		h.Write([]byte{0})
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:12])
}

// recordFinding indexes a finding's endpoints under its ID for later
// verdicts, evicting the oldest entries beyond maxFindingIndex. No-op
// without a session (nothing could consume the index).
func (s *Server) recordFinding(f *Finding) {
	if s.cfg.Session == nil {
		return
	}
	s.findingMu.Lock()
	defer s.findingMu.Unlock()
	if _, ok := s.findings[f.ID]; ok {
		return
	}
	s.findings[f.ID] = feedbackTarget{source: f.Source, sink: f.Sink}
	s.findingOrder = append(s.findingOrder, f.ID)
	for len(s.findingOrder) > maxFindingIndex {
		delete(s.findings, s.findingOrder[0])
		s.findingOrder = s.findingOrder[1:]
	}
}

// FeedbackRequest is the POST /v1/feedback body: a verdict against
// either a finding ID (from a /v1/check response) or a (symbol, role)
// pair directly.
type FeedbackRequest struct {
	FindingID string `json:"finding_id,omitempty"`
	Symbol    string `json:"symbol,omitempty"`
	Role      string `json:"role,omitempty"`
	// Verdict is "accept" or "reject".
	Verdict string `json:"verdict"`
}

// PinnedVar is one (symbol, role) variable a verdict pinned, echoed in
// the response.
type PinnedVar struct {
	Symbol string  `json:"symbol"`
	Role   string  `json:"role"`
	Value  float64 `json:"value"`
}

// FeedbackResponse is the POST /v1/feedback response body: what was
// pinned and the store generation the re-solve published.
type FeedbackResponse struct {
	Status  string      `json:"status"` // "relearned"
	Verdict string      `json:"verdict"`
	Pinned  []PinnedVar `json:"pinned"`
	// The new serving generation (same identity /v1/healthz reports).
	StoreFingerprint string `json:"store_fingerprint"`
	Epoch            string `json:"epoch"`
	Specs            int    `json:"specs"`
	// Re-solve economics: how much of the constraint build the delta
	// cache supplied and what the warm start saved.
	SpansReused  int  `json:"spans_reused"`
	WarmStarted  bool `json:"warm_started"`
	SolverEpochs int  `json:"solver_epochs"`
	EpochsSaved  int  `json:"epochs_saved"`
}

// roleFromString parses the wire role names (the same vocabulary
// /v1/specs uses).
func roleFromString(s string) (propgraph.Role, bool) {
	switch s {
	case "source":
		return propgraph.Source, true
	case "sanitizer":
		return propgraph.Sanitizer, true
	case "sink":
		return propgraph.Sink, true
	}
	return 0, false
}

// handleFeedback implements POST /v1/feedback. Resolution: a finding_id
// pins (source symbol, source role) and (sink symbol, sink role); a
// (symbol, role) pair pins exactly that variable. accept pins to 1,
// reject to 0. Pins targeting seed-assigned roles are skipped — the
// seed is ground truth — and a verdict whose every pin was skipped
// answers 422 without re-solving. Re-solves are serialized; each
// publishes a new store generation.
func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, "feedback", http.StatusMethodNotAllowed, "POST a feedback verdict")
		return
	}
	sess := s.cfg.Session
	if sess == nil {
		s.fail(w, "feedback", http.StatusConflict,
			"server has no learning session (start seldond with -session-dir)")
		return
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.fail(w, "feedback", http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	var req FeedbackRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.fail(w, "feedback", http.StatusBadRequest, "decoding verdict: "+err.Error())
		return
	}
	if req.Verdict != "accept" && req.Verdict != "reject" {
		s.fail(w, "feedback", http.StatusBadRequest, `verdict must be "accept" or "reject"`)
		return
	}
	val := 0.0
	if req.Verdict == "accept" {
		val = 1.0
	}

	// Resolve the verdict to (symbol, role) pins.
	type pinReq struct {
		sym  string
		role propgraph.Role
	}
	var want []pinReq
	switch {
	case req.FindingID != "" && (req.Symbol != "" || req.Role != ""):
		s.fail(w, "feedback", http.StatusBadRequest, "give finding_id or (symbol, role), not both")
		return
	case req.FindingID != "":
		s.findingMu.Lock()
		target, ok := s.findings[req.FindingID]
		s.findingMu.Unlock()
		if !ok {
			s.fail(w, "feedback", http.StatusNotFound,
				"unknown finding_id (evicted or never reported); send the verdict by symbol instead")
			return
		}
		want = []pinReq{{target.source, propgraph.Source}, {target.sink, propgraph.Sink}}
	case req.Symbol != "" && req.Role != "":
		role, ok := roleFromString(req.Role)
		if !ok {
			s.fail(w, "feedback", http.StatusBadRequest, "role must be source, sanitizer, or sink")
			return
		}
		want = []pinReq{{req.Symbol, role}}
	default:
		s.fail(w, "feedback", http.StatusBadRequest, "give finding_id or both symbol and role")
		return
	}

	seed := sess.Seed()
	resp := &FeedbackResponse{Status: "relearned", Verdict: req.Verdict, Pinned: []PinnedVar{}}
	var apply []pinReq
	for _, p := range want {
		if seed.RolesOf(p.sym).Has(p.role) {
			continue // seed ground truth is not overridable by feedback
		}
		apply = append(apply, p)
		resp.Pinned = append(resp.Pinned, PinnedVar{Symbol: p.sym, Role: p.role.String(), Value: val})
	}
	if len(resp.Pinned) == 0 {
		s.fail(w, "feedback", http.StatusUnprocessableEntity,
			"every endpoint of this verdict is a seed entry; nothing to pin")
		return
	}

	// Pin, re-solve, publish — one verdict at a time. The session
	// serializes internally too, but the mutex keeps pin→relearn→publish
	// atomic so two concurrent verdicts cannot interleave a publish with
	// the other's pins half-applied.
	s.feedbackMu.Lock()
	defer s.feedbackMu.Unlock()
	for _, p := range apply {
		sess.Pin(p.sym, p.role, val)
	}
	res, st := sess.Relearn()
	learned := sess.LearnedSpec()
	meta := specio.Meta{
		CorpusFiles:    sess.Len(),
		Events:         len(res.Graph.Events),
		SeedEntries:    seed.Len(),
		LearnedEntries: len(res.LearnedEntries(seed)),
		Generator:      "seldond/feedback",
	}
	fp, err := specio.FingerprintStore(learned, meta)
	if err != nil {
		s.fail(w, "feedback", http.StatusInternalServerError, "fingerprinting re-learned store: "+err.Error())
		return
	}
	s.swapStore(storeState{spec: learned, meta: meta, fingerprint: fp, epoch: fp, loadedAt: time.Now()})

	if req.Verdict == "accept" {
		s.feedbackAccepted.Add(1)
		s.cfg.Metrics.Add(obs.CounterFeedbackAccepted, 1)
	} else {
		s.feedbackRejected.Add(1)
		s.cfg.Metrics.Add(obs.CounterFeedbackRejected, 1)
	}
	s.feedbackResolves.Add(1)
	s.cfg.Metrics.Add(obs.CounterFeedbackResolves, 1)

	resp.StoreFingerprint = fp
	resp.Epoch = fp
	resp.Specs = learned.Len()
	resp.SpansReused = st.Delta.SpansReused
	resp.WarmStarted = st.WarmStarted
	resp.SolverEpochs = res.SolverEpochs
	resp.EpochsSaved = st.EpochsSaved
	s.cfg.Log.Log("feedback.applied", "verdict", req.Verdict, "pins", len(resp.Pinned),
		"specs", learned.Len(), "epoch", fp, "spans_reused", st.Delta.SpansReused,
		"epochs", res.SolverEpochs, "epochs_saved", st.EpochsSaved)
	s.writeJSON(w, http.StatusOK, resp)
}
