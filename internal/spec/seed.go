package spec

// SeedText is the paper's initial seed specification (App. B): 106 role
// entries (28 sources, 30 sanitizers, 48 sinks) plus the blacklist of
// built-ins and common library patterns.
const SeedText = `# Sources
o: User.objects.get()
o: cms.apps.pages.models.Page.objects.get()
o: django.core.extensions.get_object_or_404()
o: django.http.QueryDict()
o: django.shortcuts.get_object_or_404()
o: example.util.models.Link.objects.get()
o: flask.request.form.get()
o: inviteme.forms.ContactMailForm()
o: live_support.forms.ChatMessageForm()
o: model_class.objects.get()
o: req.form.get()
o: request.GET.copy()
o: request.GET.get()
o: request.POST.copy()
o: request.POST.get()
o: request.args.get()
o: request.form.get()
o: request.pages.get()
o: self.get_query_string()
o: self.get_user_or_404()
o: self.queryset().get()
o: self.request.FILES.get()
o: self.request.get()
o: self.request.headers.get()
o: textpress.models.Page.objects.get()
o: textpress.models.Tag.objects.get()
o: textpress.models.User()
o: textpress.models.User.objects.get()

# SQL injection
i: MySQLdb.connect().cursor().execute()
i: MySQLdb.connect().execute()
a: MySQLdb.connect().cursor().mogrify()
a: MySQLdb.escape_string()
i: pymysql.connect().cursor().execute()
i: pymysql.connect().execute()
a: pymysql.connect().cursor().mogrify()
a: pymysql.escape_string()
i: pyPgSQL.connect().cursor().execute()
i: pyPgSQL.connect().execute()
a: pyPgSQL.connect().cursor().mogrify()
a: pyPgSQL.escape_string()
i: psycopg2.connect().cursor().execute()
i: psycopg2.connect().execute()
a: psycopg2.connect().cursor().mogrify()
a: psycopg2.escape_string()
i: sqlite3.connect().cursor().execute()
i: sqlite3.connect().execute()
a: sqlite3.connect().cursor().mogrify()
a: sqlite3.escape_string()
i: flask.SQLAlchemy().session.execute()
i: SQLAlchemy().session.execute()
i: db.session().execute()
i: flask.SQLAlchemy().engine.execute()
i: SQLAlchemy().engine.execute()
i: db.engine.execute()
i: django.db.models.Model::objects.raw()
i: django.db.models.expressions.RawSQL()
i: django.db.connection.cursor().execute()

# XPath Injection
i: lxml.html.fromstring().xpath()
i: lxml.etree.fromstring().xpath()
i: lxml.etree.HTML().xpath()

# OS Command Injection
i: subprocess.call()
i: subprocess.check_call()
i: subprocess.check_output()
i: os.system()
i: os.spawn()
i: os.popen()
a: subprocess.Popen()

# XXE
i: lxml.etree.to_string()

# XSS
i: amo.utils.send_mail_jinja()
i: django.utils.html.mark_safe()
i: django.utils.safestring.mark_safe()
i: example.util.response.Response()
i: jinja2.Markup()
i: olympia.amo.utils.send_mail_jinja()
i: suds.sax.text.Raw()
i: swift.common.swob.Response()
i: webob.Response()
i: wtforms.widgets.HTMLString()
i: wtforms.widgets.core.HTMLString()
i: flask.Response()
i: flask.make_response()
i: flask.render_template_string()
a: bleach.clean()
a: cgi.escape()
a: django.forms.util.flatatt()
a: django.template.defaultfilters.escape()
a: django.utils.html.escape()
a: flask.escape()
a: jinja2.escape()
a: textpress.utils.escape()
a: werkzeug.escape()
a: werkzeug.html.input()
a: xml.sax.saxutils.escape()
a: flask.render_template()
a: django.shortcuts.render()
a: django.shortcuts.render_to_response()
a: django.template.Template().render()
a: django.template.loader.get_template().render()
a: werkzeug.exceptions.BadRequest()

# Path Traversal
i: flask.send_from_directory()
i: flask.send_file()
a: os.path.basename()
a: werkzeug.utils.secure_filename()

# Open Redirect
i: flask.redirect()
i: django.shortcuts.redirect()
i: django.http.HttpResponseRedirect()

# Black list
# Imports and related functions.
b: *tensorflow*
b: *tf*
b: *numpy*
b: *pandas*
b: np.*
b: plt.*
b: pyplot.*
b: os.path.*
b: uuid.*
b: sys.*
b: json.*
b: datetime.*
b: io.*
b: re.*
b: hashlib.*
b: struct.*
b: *String*
b: *Queue*
b: threading*
b: mutex*
b: dummy_threading*
b: *module*
b: math.*

# Flask
b: flask.Flask()*
b: app.*

# Django
b: *django*conf*
b: *django*settings*
b: *ugettext*
b: *lazy*
b: *RequestContext*

# Logs
b: *logging*
b: *logger*
b: tempfile.mkdtemp()
b: type().__name__
b: set_size(param n)
b: result.append()
b: str().encode()
b: ValueError()
b: logging.info()
b: key.split()
b: json.dump()

# Python built-ins.
b: False
b: None
b: True
b: *_()*
b: __import__()
b: *__name__*
b: *_str()*
b: *_unicode()*
b: abs()
b: *.all()
b: *.any()
b: *.append()
b: ascii()
b: *assert*
b: attr()
b: bin()
b: bool()
b: builtins.str()
b: bytearray()
b: bytes()
b: *.capitalize()
b: *.center()
b: chr()
b: classmethod()
b: cmp()
b: complex()
b: *.copy()
b: *.count()
b: *.decode()
b: dict()
b: *.difference()
b: *.difference_update()
b: dir()
b: *.encode()
b: *.endswith()
b: enumerate()
b: *.extend()
b: *.filter()
b: *.find()
b: *.findall()
b: *.finditer()
b: float()
b: *.format()
b: frozenset()
b: func()
b: future.builtins.str()
b: getattr()
b: globals()
b: hasattr()
b: hash()
b: help()
b: hex()
b: id()
b: *.index()
b: *.insert()
b: int()
b: *.intersection()
b: *.intersection_update()
b: *.isalnum()
b: *.isalpha()
b: *.isdecimal()
b: *.isdigit()
b: *.isdisjoint()
b: *.isidentifier()
b: *.isinstance()
b: *.islower()
b: *.isnumeric()
b: *.isprintable()
b: *.isspace()
b: *.issubclass()
b: *.issubset()
b: *.issuperset()
b: *.istitle()
b: *.isupper()
b: *.keys()
b: kwargs
b: *len()
b: list()
b: *.ljust()
b: locals()
b: *.lower()
b: *.lstrip()
b: *.maketrans()
b: *.map()
b: *.match()
b: *.match.group()
b: max()
b: meth()
b: min()
b: next()
b: object()
b: oct()
b: open()
b: ord()
b: *.pop()
b: *.popitem()
b: pow()
b: print()
b: *.purge()
b: *.quote()
b: *.quoted_url()
b: range()
b: reduce()
b: *.reload()
b: *.remove()
b: *.replace()*
b: *.repr()
b: *.reverse()
b: reversed()
b: *.rfind()
b: *.rindex()
b: *.rjust()
b: round()
b: *.rpartition()
b: *.rsplit()
b: *.rstrip()
b: *.search()
b: set()
b: setattr()
b: *.setdefault()
b: *.sort()
b: sorted()
b: *.split()*
b: *.splitlines()
b: *.startswith()
b: *.staticmethod()
b: str
b: str()
b: *.strip()
b: strip_date.strftime()
b: *.sub()
b: *.subn()
b: sum()
b: super()
b: *.symmetric_difference()
b: *.symmetric_difference_update()
b: *test*
b: *.translate()
b: *.trim_url()
b: *.truncate()
b: tuple()
b: *.type()
b: unichr()
b: unicode()
b: unknown()
b: *.update()
b: *.upper()
b: *.values()
b: *.vars()
b: zip()
`

// Seed parses and returns the paper's App. B seed specification.
func Seed() *Spec {
	s, err := Parse(SeedText)
	if err != nil {
		panic("spec: embedded seed is malformed: " + err.Error())
	}
	return s
}
