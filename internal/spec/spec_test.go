package spec

import (
	"strings"
	"testing"
	"testing/quick"

	"seldon/internal/propgraph"
)

func TestParseRoundTrip(t *testing.T) {
	text := `# comment
o: request.args.get()
a: flask.escape()
i: flask.Response()
b: *.append()
`
	s, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Sources) != 1 || len(s.Sanitizers) != 1 || len(s.Sinks) != 1 || len(s.Blacklist) != 1 {
		t.Fatalf("parsed = %+v", s)
	}
	s2, err := Parse(s.Format())
	if err != nil {
		t.Fatal(err)
	}
	if s2.Format() != s.Format() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", s.Format(), s2.Format())
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"x: y\n", "o:\n", "nonsense\n"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestRolesOf(t *testing.T) {
	s := New()
	s.Add(propgraph.Source, "a()")
	s.Add(propgraph.Sink, "a()")
	rs := s.RolesOf("a()")
	if !rs.Has(propgraph.Source) || !rs.Has(propgraph.Sink) || rs.Has(propgraph.Sanitizer) {
		t.Errorf("roles = %b", rs)
	}
	if s.RolesOf("missing()") != 0 {
		t.Error("missing rep has roles")
	}
	// Duplicate adds must not duplicate entries.
	s.Add(propgraph.Source, "a()")
	if len(s.Sources) != 1 {
		t.Errorf("sources = %v", s.Sources)
	}
}

func TestPatternMatch(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"*.append()", "result.append()", true},
		{"*.append()", "x.y.append()", true},
		{"*.append()", "append()", false},
		{"*.append()", "x.appendix()", false},
		{"os.path.*", "os.path.join()", true},
		{"os.path.*", "ospath.join()", false},
		{"*tensorflow*", "tensorflow.layers.dense()", true},
		{"*tensorflow*", "my.tensorflow.thing", true},
		{"str", "str", true},
		{"str", "str()", false},
		{"*.split()*", "key.split()", true},
		{"*.split()*", "key.split()[0]", true},
		{"*len()", "len()", true},
		{"*len()", "x.len()", true},
		{"flask.Flask()*", "flask.Flask().run()", true},
		{"flask.Flask()*", "flask.Flask()", true},
		{"a*b*c", "aXbYc", true},
		{"a*b*c", "acb", false},
		{"a*bb", "abb", true},
		{"a*b*b", "ab", false},
	}
	for _, c := range cases {
		p := CompilePattern(c.pattern)
		if got := p.Match(c.s); got != c.want {
			t.Errorf("Match(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

// Property: a pattern with stars removed matches itself exactly.
func TestPatternLiteralProperty(t *testing.T) {
	f := func(s string) bool {
		lit := strings.ReplaceAll(s, "*", "")
		return CompilePattern(lit).Match(lit)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: "*s*" matches any string containing s.
func TestPatternContainsProperty(t *testing.T) {
	f := func(pre, mid, post string) bool {
		mid = strings.ReplaceAll(mid, "*", "")
		p := CompilePattern("*" + mid + "*")
		return p.Match(pre + mid + post)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeedStatistics(t *testing.T) {
	s := Seed()
	// The paper reports 28 sources, 30 sanitizers, 48 sinks (106 total).
	if len(s.Sources) != 28 {
		t.Errorf("sources = %d, want 28", len(s.Sources))
	}
	if len(s.Sanitizers) != 30 {
		t.Errorf("sanitizers = %d, want 30", len(s.Sanitizers))
	}
	if len(s.Sinks) != 48 {
		t.Errorf("sinks = %d, want 48", len(s.Sinks))
	}
	if s.Len() != 106 {
		t.Errorf("total = %d, want 106", s.Len())
	}
	if len(s.Blacklist) < 150 {
		t.Errorf("blacklist = %d, want >= 150", len(s.Blacklist))
	}
}

func TestSeedLookups(t *testing.T) {
	s := Seed()
	if !s.RolesOf("flask.request.form.get()").Has(propgraph.Source) {
		t.Error("flask.request.form.get() should be a source")
	}
	if !s.RolesOf("werkzeug.utils.secure_filename()").Has(propgraph.Sanitizer) {
		t.Error("secure_filename should be a sanitizer")
	}
	if !s.RolesOf("os.system()").Has(propgraph.Sink) {
		t.Error("os.system should be a sink")
	}
	if !s.Blacklisted("result.append()") {
		t.Error("result.append() should be blacklisted")
	}
	if !s.Blacklisted("logging.info()") {
		t.Error("logging.info() should be blacklisted")
	}
	if s.Blacklisted("cursor.execute()") {
		t.Error("cursor.execute() must not be blacklisted")
	}
}

func TestHalve(t *testing.T) {
	s := Seed()
	h := s.Halve()
	if h.Len() != (s.Len()+1)/2 {
		t.Errorf("halved = %d, want %d", h.Len(), (s.Len()+1)/2)
	}
	if len(h.Blacklist) != len(s.Blacklist) {
		t.Error("halving must keep the blacklist")
	}
}

func TestEntries(t *testing.T) {
	s := New()
	s.Add(propgraph.Sink, "k()")
	s.Add(propgraph.Source, "o()")
	es := s.Entries()
	if len(es) != 2 {
		t.Fatalf("entries = %v", es)
	}
	// Sources come first in canonical order.
	if es[0].Role != propgraph.Source || es[1].Role != propgraph.Sink {
		t.Errorf("order = %v", es)
	}
}
