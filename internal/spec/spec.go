// Package spec models taint specifications: assignments of the roles
// source, sanitizer, and sink to API representations, plus a blacklist of
// representations excluded from every role.
//
// The textual format follows the paper's App. B seed specification:
//
//	o: flask.request.form.get()     # source
//	a: werkzeug.utils.secure_filename()  # sanitizer
//	i: flask.send_file()            # sink
//	b: *.append()                   # blacklisted pattern
//
// Blank lines and lines starting with '#' are ignored. Blacklist entries
// are glob patterns where '*' matches any (possibly empty) substring;
// source/sanitizer/sink entries are exact fully-qualified representations.
package spec

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	"seldon/internal/propgraph"
)

// Spec is a taint specification.
type Spec struct {
	Sources    []string
	Sanitizers []string
	Sinks      []string
	Blacklist  []Pattern

	roleByRep map[string]propgraph.RoleSet
	// sinkArgs optionally restricts a sink to specific dangerous argument
	// positions (argument-sensitive sinks; `i: rep @0,1` in the textual
	// format). Absent means every position is dangerous.
	sinkArgs map[string][]int
}

// New returns an empty specification.
func New() *Spec {
	return &Spec{roleByRep: make(map[string]propgraph.RoleSet)}
}

// Add records rep as having role.
func (s *Spec) Add(role propgraph.Role, rep string) {
	if s.roleByRep == nil {
		s.roleByRep = make(map[string]propgraph.RoleSet)
	}
	if s.roleByRep[rep].Has(role) {
		return
	}
	switch role {
	case propgraph.Source:
		s.Sources = append(s.Sources, rep)
	case propgraph.Sanitizer:
		s.Sanitizers = append(s.Sanitizers, rep)
	case propgraph.Sink:
		s.Sinks = append(s.Sinks, rep)
	}
	s.roleByRep[rep] = s.roleByRep[rep].With(role)
}

// AddBlacklist records a blacklist pattern.
func (s *Spec) AddBlacklist(pattern string) {
	s.Blacklist = append(s.Blacklist, CompilePattern(pattern))
}

// RolesOf returns the roles assigned to an exact representation.
func (s *Spec) RolesOf(rep string) propgraph.RoleSet { return s.roleByRep[rep] }

// RestrictSinkArgs marks only the given 0-based argument positions of a
// sink as dangerous. Flow entering other positions will not be reported.
func (s *Spec) RestrictSinkArgs(rep string, args ...int) {
	if s.sinkArgs == nil {
		s.sinkArgs = make(map[string][]int)
	}
	s.sinkArgs[rep] = append([]int(nil), args...)
}

// SinkArgsOf returns the dangerous argument positions of a sink, or nil
// when the sink is unrestricted.
func (s *Spec) SinkArgsOf(rep string) []int { return s.sinkArgs[rep] }

// Len returns the number of role entries.
func (s *Spec) Len() int { return len(s.Sources) + len(s.Sanitizers) + len(s.Sinks) }

// Blacklisted reports whether rep matches any blacklist pattern.
func (s *Spec) Blacklisted(rep string) bool {
	for _, p := range s.Blacklist {
		if p.Match(rep) {
			return true
		}
	}
	return false
}

// Entries returns all (role, rep) pairs in canonical order.
func (s *Spec) Entries() []Entry {
	var out []Entry
	for _, r := range s.Sources {
		out = append(out, Entry{Rep: r, Role: propgraph.Source, Score: 1})
	}
	for _, r := range s.Sanitizers {
		out = append(out, Entry{Rep: r, Role: propgraph.Sanitizer, Score: 1})
	}
	for _, r := range s.Sinks {
		out = append(out, Entry{Rep: r, Role: propgraph.Sink, Score: 1})
	}
	return out
}

// SymIndex caches per-symbol role and blacklist lookups against one
// symbol table: RolesOf and the glob-pattern blacklist are evaluated
// once per distinct representation instead of once per occurrence, and
// every later lookup is a dense array index. Build it with IndexSymbols
// after the table has stabilized (e.g. over a union graph's table); it
// covers the symbols present at build time.
type SymIndex struct {
	roles []propgraph.RoleSet
	black []bool
}

// IndexSymbols precomputes role and blacklist lookups for every symbol
// of t.
func (s *Spec) IndexSymbols(t *propgraph.Interner) *SymIndex {
	return s.IndexStrings(t.Strings())
}

// IndexStrings precomputes role and blacklist lookups for a symbol-table
// snapshot (strs[sym] is the string of sym).
func (s *Spec) IndexStrings(strs []string) *SymIndex {
	ix := &SymIndex{
		roles: make([]propgraph.RoleSet, len(strs)),
		black: make([]bool, len(strs)),
	}
	for i, str := range strs {
		ix.roles[i] = s.RolesOf(str)
		ix.black[i] = s.Blacklisted(str)
	}
	return ix
}

// Roles returns the roles assigned to a symbol (0 when out of range).
func (ix *SymIndex) Roles(sym propgraph.Sym) propgraph.RoleSet {
	if int(sym) >= len(ix.roles) {
		return 0
	}
	return ix.roles[sym]
}

// Blacklisted reports whether a symbol matches any blacklist pattern.
func (ix *SymIndex) Blacklisted(sym propgraph.Sym) bool {
	if int(sym) >= len(ix.black) {
		return false
	}
	return ix.black[sym]
}

// Entry is a single learned or seeded role assignment with its confidence.
type Entry struct {
	Rep   string
	Role  propgraph.Role
	Score float64
}

// Parse reads a specification in the o:/a:/i:/b: line format.
func Parse(text string) (*Spec, error) {
	s := New()
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if len(line) < 2 || line[1] != ':' {
			return nil, fmt.Errorf("spec line %d: want `o:|a:|i:|b: <rep>`, got %q", lineNo, line)
		}
		rep := strings.TrimSpace(line[2:])
		if rep == "" {
			return nil, fmt.Errorf("spec line %d: empty representation", lineNo)
		}
		// Optional argument restriction for sinks: `i: rep @0,2`.
		var args []int
		if at := strings.LastIndex(rep, " @"); at >= 0 && line[0] == 'i' {
			spec := rep[at+2:]
			rep = strings.TrimSpace(rep[:at])
			for _, part := range strings.Split(spec, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil {
					return nil, fmt.Errorf("spec line %d: bad argument position %q", lineNo, part)
				}
				args = append(args, n)
			}
		}
		switch line[0] {
		case 'o':
			s.Add(propgraph.Source, rep)
		case 'a':
			s.Add(propgraph.Sanitizer, rep)
		case 'i':
			s.Add(propgraph.Sink, rep)
			if len(args) > 0 {
				s.RestrictSinkArgs(rep, args...)
			}
		case 'b':
			s.AddBlacklist(rep)
		default:
			return nil, fmt.Errorf("spec line %d: unknown role %q", lineNo, line[0])
		}
	}
	return s, sc.Err()
}

// Format renders the specification back to the textual format.
func (s *Spec) Format() string {
	var b strings.Builder
	write := func(prefix string, reps []string) {
		for _, r := range reps {
			b.WriteString(prefix)
			b.WriteString(r)
			if prefix == "i: " {
				if args := s.sinkArgs[r]; len(args) > 0 {
					parts := make([]string, len(args))
					for i, a := range args {
						parts[i] = strconv.Itoa(a)
					}
					b.WriteString(" @" + strings.Join(parts, ","))
				}
			}
			b.WriteByte('\n')
		}
	}
	write("o: ", s.Sources)
	write("a: ", s.Sanitizers)
	write("i: ", s.Sinks)
	for _, p := range s.Blacklist {
		b.WriteString("b: ")
		b.WriteString(p.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Halve returns a spec with only every other role entry kept (odd lines,
// 1-based), reproducing the paper's Q6 seed-ablation experiment. The
// blacklist is kept whole.
func (s *Spec) Halve() *Spec {
	h := New()
	for i, e := range s.Entries() {
		if i%2 == 0 {
			h.Add(e.Role, e.Rep)
		}
	}
	h.Blacklist = s.Blacklist
	return h
}

// Pattern is a compiled glob where '*' matches any substring.
type Pattern struct {
	raw   string
	parts []string // literal chunks between stars
	// anchored flags: leading/trailing literal must match at the ends
	prefix bool
	suffix bool
}

// CompilePattern compiles a glob pattern.
func CompilePattern(raw string) Pattern {
	parts := strings.Split(raw, "*")
	return Pattern{
		raw:    raw,
		parts:  parts,
		prefix: !strings.HasPrefix(raw, "*"),
		suffix: !strings.HasSuffix(raw, "*"),
	}
}

func (p Pattern) String() string { return p.raw }

// Match reports whether s matches the pattern.
func (p Pattern) Match(s string) bool {
	parts := p.parts
	if len(parts) == 1 {
		return s == parts[0]
	}
	if p.prefix {
		if !strings.HasPrefix(s, parts[0]) {
			return false
		}
		s = s[len(parts[0]):]
		parts = parts[1:]
	}
	var last string
	if p.suffix {
		last = parts[len(parts)-1]
		parts = parts[:len(parts)-1]
	}
	for _, chunk := range parts {
		if chunk == "" {
			continue
		}
		idx := strings.Index(s, chunk)
		if idx < 0 {
			return false
		}
		s = s[idx+len(chunk):]
	}
	if p.suffix {
		return strings.HasSuffix(s, last)
	}
	return true
}
