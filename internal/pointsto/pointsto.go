// Package pointsto implements inclusion-based (Andersen-style) points-to
// analysis with field sensitivity — the classical algorithm the paper's
// §5.2 builds its propagation-graph construction on (Smaragdakis &
// Balatsouras, "Pointer Analysis", FnT PL 2015).
//
// The solver processes four constraint forms over pointer variables and
// abstract objects (allocation sites):
//
//	AddAlloc(p, o)      p ⊇ {o}         x = alloc()
//	AddCopy(dst, src)   dst ⊇ src       x = y
//	AddLoad(dst, b, f)  dst ⊇ o.f  ∀o∈pts(b)    x = y.f
//	AddStore(b, f, src) o.f ⊇ src ∀o∈pts(b)     x.f = y
//
// Solve runs the standard worklist algorithm to the least fixpoint; the
// result over- and under-approximates runtime aliasing exactly as the
// constraint forms dictate (flow-insensitive, context-insensitive).
package pointsto

import (
	"fmt"
	"math/bits"
	"sort"
)

// Var is a pointer variable handle.
type Var int

// Object is an allocation-site handle.
type Object int

// Solver accumulates constraints and computes points-to sets.
type Solver struct {
	varNames []string
	objNames []string

	pts   []objset // per variable
	succ  [][]Var  // copy edges: pts flows from v to succ[v]
	loads []struct {
		dst   Var
		base  Var
		field string
	}
	stores []struct {
		base  Var
		field string
		src   Var
	}
	// fieldVars maps (object, field) to the variable holding that field's
	// points-to set.
	fieldVars map[fieldKey]Var
	solved    bool
}

type fieldKey struct {
	obj   Object
	field string
}

// NewSolver returns an empty solver.
func NewSolver() *Solver {
	return &Solver{fieldVars: make(map[fieldKey]Var)}
}

// NewVar introduces a pointer variable. The name is for diagnostics only.
func (s *Solver) NewVar(name string) Var {
	s.varNames = append(s.varNames, name)
	s.pts = append(s.pts, nil)
	s.succ = append(s.succ, nil)
	s.solved = false
	return Var(len(s.varNames) - 1)
}

// NewObject introduces an allocation site.
func (s *Solver) NewObject(name string) Object {
	s.objNames = append(s.objNames, name)
	s.solved = false
	return Object(len(s.objNames) - 1)
}

// VarName returns a variable's diagnostic name.
func (s *Solver) VarName(v Var) string { return s.varNames[v] }

// ObjectName returns an object's diagnostic name.
func (s *Solver) ObjectName(o Object) string { return s.objNames[o] }

// AddAlloc records p ⊇ {o}.
func (s *Solver) AddAlloc(p Var, o Object) {
	s.pts[p] = s.pts[p].with(int(o))
	s.solved = false
}

// AddCopy records dst ⊇ src.
func (s *Solver) AddCopy(dst, src Var) {
	if dst == src {
		return
	}
	s.succ[src] = append(s.succ[src], dst)
	s.solved = false
}

// AddLoad records dst ⊇ o.f for every o the base may point to.
func (s *Solver) AddLoad(dst, base Var, field string) {
	s.loads = append(s.loads, struct {
		dst   Var
		base  Var
		field string
	}{dst, base, field})
	s.solved = false
}

// AddStore records o.f ⊇ src for every o the base may point to.
func (s *Solver) AddStore(base Var, field string, src Var) {
	s.stores = append(s.stores, struct {
		base  Var
		field string
		src   Var
	}{base, field, src})
	s.solved = false
}

// fieldVar returns (lazily creating) the variable for o.field.
func (s *Solver) fieldVar(o Object, field string) Var {
	key := fieldKey{o, field}
	if v, ok := s.fieldVars[key]; ok {
		return v
	}
	v := s.NewVar(fmt.Sprintf("%s.%s", s.objNames[o], field))
	s.fieldVars[key] = v
	return v
}

// Solve computes the least fixpoint with the standard worklist algorithm.
// It is idempotent and may be called again after adding constraints.
func (s *Solver) Solve() {
	if s.solved {
		return
	}
	// Copy-edge dedup set built dynamically for load/store expansion.
	edgeSeen := make(map[[2]Var]bool)
	for src, dsts := range s.succ {
		for _, dst := range dsts {
			edgeSeen[[2]Var{Var(src), dst}] = true
		}
	}
	addEdge := func(src, dst Var, work *[]Var) {
		if src == dst || edgeSeen[[2]Var{src, dst}] {
			return
		}
		edgeSeen[[2]Var{src, dst}] = true
		s.succ[src] = append(s.succ[src], dst)
		if len(s.pts[src]) != 0 {
			*work = append(*work, src)
		}
	}

	// Index dereferencing constraints by their base variable.
	loadsByBase := make(map[Var][]int)
	for i, ld := range s.loads {
		loadsByBase[ld.base] = append(loadsByBase[ld.base], i)
	}
	storesByBase := make(map[Var][]int)
	for i, st := range s.stores {
		storesByBase[st.base] = append(storesByBase[st.base], i)
	}

	work := make([]Var, 0, len(s.pts))
	for v := range s.pts {
		if len(s.pts[v]) != 0 {
			work = append(work, Var(v))
		}
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]

		// Expand load/store constraints whose base is v.
		for _, li := range loadsByBase[v] {
			ld := s.loads[li]
			s.pts[ld.base].forEach(func(i int) {
				addEdge(s.fieldVar(Object(i), ld.field), ld.dst, &work)
			})
		}
		for _, si := range storesByBase[v] {
			st := s.stores[si]
			s.pts[st.base].forEach(func(i int) {
				addEdge(st.src, s.fieldVar(Object(i), st.field), &work)
			})
		}

		// Propagate along copy edges.
		for _, dst := range s.succ[v] {
			if changed := s.pts[dst].orChanged(&s.pts[dst], s.pts[v]); changed {
				work = append(work, dst)
			}
		}
	}
	s.solved = true
}

// PointsTo returns the objects v may point to, sorted. Solve is run if
// needed.
func (s *Solver) PointsTo(v Var) []Object {
	s.Solve()
	var out []Object
	s.pts[v].forEach(func(i int) { out = append(out, Object(i)) })
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FieldPointsTo returns the objects o.field may point to.
func (s *Solver) FieldPointsTo(o Object, field string) []Object {
	s.Solve()
	if v, ok := s.fieldVars[fieldKey{o, field}]; ok {
		return s.PointsTo(v)
	}
	return nil
}

// Alias reports whether two variables may point to a common object.
func (s *Solver) Alias(a, b Var) bool {
	s.Solve()
	pa, pb := s.pts[a], s.pts[b]
	n := len(pa)
	if len(pb) < n {
		n = len(pb)
	}
	for i := 0; i < n; i++ {
		if pa[i]&pb[i] != 0 {
			return true
		}
	}
	return false
}

// objset is a growable bitset of object indices.
type objset []uint64

func (b objset) with(i int) objset {
	for i/64 >= len(b) {
		b = append(b, 0)
	}
	b[i/64] |= 1 << (i % 64)
	return b
}

// orChanged merges other into *dst, growing as needed, and reports change.
func (objset) orChanged(dst *objset, other objset) bool {
	for len(*dst) < len(other) {
		*dst = append(*dst, 0)
	}
	changed := false
	for i := range other {
		if next := (*dst)[i] | other[i]; next != (*dst)[i] {
			(*dst)[i] = next
			changed = true
		}
	}
	return changed
}

func (b objset) forEach(f func(i int)) {
	for w, word := range b {
		for word != 0 {
			bit := word & (-word)
			f(w*64 + bits.TrailingZeros64(bit))
			word ^= bit
		}
	}
}
