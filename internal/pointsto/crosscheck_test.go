package pointsto

import (
	"testing"

	"seldon/internal/dataflow"
	"seldon/internal/propgraph"
)

// TestAgreesWithDataflowOnAliasing cross-checks the two points-to
// implementations in the repository: this package's classical Andersen
// solver and the field-sensitive object model embedded in the dataflow
// analyzer. Both analyze the same program shape; where the Andersen
// solver says two names alias (share an allocation site), the dataflow
// analyzer must propagate taint between them, and where it proves them
// disjoint, the analyzer must not.
func TestAgreesWithDataflowOnAliasing(t *testing.T) {
	// Python shape:
	//   box = make_box()      (allocation oBox)
	//   alias = box
	//   other = make_other()  (allocation oOther)
	//   box.data = taint()
	//   use(alias.data)       -- alias.data aliases box.data: tainted
	//   use2(other.data)      -- disjoint: clean
	s := NewSolver()
	oBox := s.NewObject("box-alloc")
	oOther := s.NewObject("other-alloc")
	oTaint := s.NewObject("taint-alloc")
	box := s.NewVar("box")
	alias := s.NewVar("alias")
	other := s.NewVar("other")
	taintV := s.NewVar("t")
	readAlias := s.NewVar("alias.data")
	readOther := s.NewVar("other.data")
	s.AddAlloc(box, oBox)
	s.AddCopy(alias, box)
	s.AddAlloc(other, oOther)
	s.AddAlloc(taintV, oTaint)
	s.AddStore(box, "data", taintV)
	s.AddLoad(readAlias, alias, "data")
	s.AddLoad(readOther, other, "data")

	if !s.Alias(readAlias, taintV) {
		t.Fatal("andersen: alias.data must alias the tainted value")
	}
	if s.Alias(readOther, taintV) {
		t.Fatal("andersen: other.data must not alias the tainted value")
	}

	src := `def f():
    box = make_box()
    alias = box
    other = make_other()
    box.data = taint()
    use(alias.data)
    use2(other.data)
`
	g, err := dataflow.AnalyzeSource("t.py", src)
	if err != nil {
		t.Fatal(err)
	}
	if !dataflowFlows(g, "taint()", "use()") {
		t.Error("dataflow: taint must reach use() through the alias")
	}
	if dataflowFlows(g, "taint()", "use2()") {
		t.Error("dataflow: taint must not reach use2()")
	}
}

func dataflowFlows(g *propgraph.Graph, from, to string) bool {
	var srcs []int
	targets := map[int]bool{}
	for _, e := range g.Events {
		for _, r := range e.Reps() {
			if r == from {
				srcs = append(srcs, e.ID)
			}
			if r == to {
				targets[e.ID] = true
			}
		}
	}
	for _, s := range srcs {
		for _, id := range g.ForwardReachable(s) {
			if targets[id] {
				return true
			}
		}
	}
	return false
}
