package pointsto

import (
	"reflect"
	"testing"
	"testing/quick"
)

func objs(os ...Object) []Object {
	if len(os) == 0 {
		return nil
	}
	return os
}

func TestAllocAndCopy(t *testing.T) {
	s := NewSolver()
	o1 := s.NewObject("o1")
	o2 := s.NewObject("o2")
	p := s.NewVar("p")
	q := s.NewVar("q")
	r := s.NewVar("r")
	s.AddAlloc(p, o1)
	s.AddAlloc(q, o2)
	s.AddCopy(r, p) // r = p
	s.AddCopy(r, q) // r = q (joins)
	if got := s.PointsTo(r); !reflect.DeepEqual(got, objs(o1, o2)) {
		t.Errorf("pts(r) = %v", got)
	}
	if got := s.PointsTo(p); !reflect.DeepEqual(got, objs(o1)) {
		t.Errorf("pts(p) = %v", got)
	}
	if !s.Alias(p, r) || s.Alias(p, q) {
		t.Error("alias relation wrong")
	}
}

func TestCopyChainTransitivity(t *testing.T) {
	s := NewSolver()
	o := s.NewObject("o")
	vars := make([]Var, 10)
	for i := range vars {
		vars[i] = s.NewVar("v")
		if i > 0 {
			s.AddCopy(vars[i], vars[i-1])
		}
	}
	s.AddAlloc(vars[0], o)
	if got := s.PointsTo(vars[9]); !reflect.DeepEqual(got, objs(o)) {
		t.Errorf("pts(end of chain) = %v", got)
	}
}

func TestFieldStoreLoadThroughAlias(t *testing.T) {
	// a = alloc(); b = a; a.f = x (x -> oX); y = b.f  =>  y -> oX
	s := NewSolver()
	oA := s.NewObject("oA")
	oX := s.NewObject("oX")
	a := s.NewVar("a")
	b := s.NewVar("b")
	x := s.NewVar("x")
	y := s.NewVar("y")
	s.AddAlloc(a, oA)
	s.AddCopy(b, a)
	s.AddAlloc(x, oX)
	s.AddStore(a, "f", x)
	s.AddLoad(y, b, "f")
	if got := s.PointsTo(y); !reflect.DeepEqual(got, objs(oX)) {
		t.Errorf("pts(y) = %v, want [oX]", got)
	}
	if got := s.FieldPointsTo(oA, "f"); !reflect.DeepEqual(got, objs(oX)) {
		t.Errorf("pts(oA.f) = %v", got)
	}
}

func TestFieldSensitivity(t *testing.T) {
	// Distinct fields must not conflate.
	s := NewSolver()
	oA := s.NewObject("oA")
	o1 := s.NewObject("o1")
	o2 := s.NewObject("o2")
	a := s.NewVar("a")
	x1 := s.NewVar("x1")
	x2 := s.NewVar("x2")
	y1 := s.NewVar("y1")
	y2 := s.NewVar("y2")
	s.AddAlloc(a, oA)
	s.AddAlloc(x1, o1)
	s.AddAlloc(x2, o2)
	s.AddStore(a, "f", x1)
	s.AddStore(a, "g", x2)
	s.AddLoad(y1, a, "f")
	s.AddLoad(y2, a, "g")
	if got := s.PointsTo(y1); !reflect.DeepEqual(got, objs(o1)) {
		t.Errorf("pts(y1) = %v", got)
	}
	if got := s.PointsTo(y2); !reflect.DeepEqual(got, objs(o2)) {
		t.Errorf("pts(y2) = %v", got)
	}
}

func TestCyclicCopies(t *testing.T) {
	s := NewSolver()
	o := s.NewObject("o")
	a := s.NewVar("a")
	b := s.NewVar("b")
	c := s.NewVar("c")
	s.AddCopy(b, a)
	s.AddCopy(c, b)
	s.AddCopy(a, c) // cycle
	s.AddAlloc(a, o)
	for _, v := range []Var{a, b, c} {
		if got := s.PointsTo(v); !reflect.DeepEqual(got, objs(o)) {
			t.Errorf("pts(%s) = %v", s.VarName(v), got)
		}
	}
}

func TestLoadBeforeStoreOrderIndependent(t *testing.T) {
	// Constraints are declarative: issuing the load before the store must
	// give the same fixpoint.
	build := func(loadFirst bool) []Object {
		s := NewSolver()
		oA := s.NewObject("oA")
		oX := s.NewObject("oX")
		a := s.NewVar("a")
		x := s.NewVar("x")
		y := s.NewVar("y")
		s.AddAlloc(a, oA)
		s.AddAlloc(x, oX)
		if loadFirst {
			s.AddLoad(y, a, "f")
			s.AddStore(a, "f", x)
		} else {
			s.AddStore(a, "f", x)
			s.AddLoad(y, a, "f")
		}
		return s.PointsTo(y)
	}
	if !reflect.DeepEqual(build(true), build(false)) {
		t.Error("solve depends on constraint order")
	}
}

func TestIncrementalResolve(t *testing.T) {
	s := NewSolver()
	o1 := s.NewObject("o1")
	o2 := s.NewObject("o2")
	p := s.NewVar("p")
	q := s.NewVar("q")
	s.AddAlloc(p, o1)
	if got := s.PointsTo(p); !reflect.DeepEqual(got, objs(o1)) {
		t.Fatalf("pts(p) = %v", got)
	}
	// Add more constraints after a solve; the solver must re-run.
	s.AddAlloc(q, o2)
	s.AddCopy(p, q)
	if got := s.PointsTo(p); !reflect.DeepEqual(got, objs(o1, o2)) {
		t.Errorf("pts(p) after update = %v", got)
	}
}

func TestTwoLevelIndirection(t *testing.T) {
	// outer.f = inner; inner.g = x; y = outer.f; z = y.g
	s := NewSolver()
	oOut := s.NewObject("oOut")
	oIn := s.NewObject("oIn")
	oX := s.NewObject("oX")
	outer := s.NewVar("outer")
	inner := s.NewVar("inner")
	x := s.NewVar("x")
	y := s.NewVar("y")
	z := s.NewVar("z")
	s.AddAlloc(outer, oOut)
	s.AddAlloc(inner, oIn)
	s.AddAlloc(x, oX)
	s.AddStore(outer, "f", inner)
	s.AddStore(inner, "g", x)
	s.AddLoad(y, outer, "f")
	s.AddLoad(z, y, "g")
	if got := s.PointsTo(z); !reflect.DeepEqual(got, objs(oX)) {
		t.Errorf("pts(z) = %v, want [oX]", got)
	}
}

// naiveSolve recomputes the fixpoint by brute-force iteration over sets of
// ints, as an executable specification.
type naiveConstraint struct {
	kind  int // 0 alloc, 1 copy, 2 load, 3 store
	a, b  int
	obj   int
	field string
}

func naiveSolve(nVars int, cons []naiveConstraint) map[int]map[int]bool {
	pts := make(map[int]map[int]bool)
	fieldPts := make(map[string]map[int]bool) // "obj.field" -> set
	get := func(m map[int]map[int]bool, k int) map[int]bool {
		if m[k] == nil {
			m[k] = map[int]bool{}
		}
		return m[k]
	}
	fkey := func(o int, f string) string { return f + "@" + string(rune(o)) }
	for changed := true; changed; {
		changed = false
		union := func(dst map[int]bool, src map[int]bool) {
			for o := range src {
				if !dst[o] {
					dst[o] = true
					changed = true
				}
			}
		}
		for _, c := range cons {
			switch c.kind {
			case 0:
				d := get(pts, c.a)
				if !d[c.obj] {
					d[c.obj] = true
					changed = true
				}
			case 1:
				union(get(pts, c.a), get(pts, c.b))
			case 2: // load: a = b.field
				for o := range get(pts, c.b) {
					if fieldPts[fkey(o, c.field)] == nil {
						fieldPts[fkey(o, c.field)] = map[int]bool{}
					}
					union(get(pts, c.a), fieldPts[fkey(o, c.field)])
				}
			case 3: // store: a.field = b
				for o := range get(pts, c.a) {
					if fieldPts[fkey(o, c.field)] == nil {
						fieldPts[fkey(o, c.field)] = map[int]bool{}
					}
					union(fieldPts[fkey(o, c.field)], get(pts, c.b))
				}
			}
		}
	}
	return pts
}

// Property: the worklist solver agrees with the naive fixpoint on random
// constraint systems.
func TestSolverMatchesNaiveFixpoint(t *testing.T) {
	fields := []string{"f", "g"}
	f := func(raw []uint8) bool {
		const nVars, nObjs = 6, 4
		s := NewSolver()
		vars := make([]Var, nVars)
		for i := range vars {
			vars[i] = s.NewVar("v")
		}
		objects := make([]Object, nObjs)
		for i := range objects {
			objects[i] = s.NewObject("o")
		}
		var cons []naiveConstraint
		for i := 0; i+3 < len(raw); i += 4 {
			kind := int(raw[i]) % 4
			a := int(raw[i+1]) % nVars
			b := int(raw[i+2]) % nVars
			obj := int(raw[i+2]) % nObjs
			field := fields[int(raw[i+3])%len(fields)]
			switch kind {
			case 0:
				s.AddAlloc(vars[a], objects[obj])
			case 1:
				s.AddCopy(vars[a], vars[b])
			case 2:
				s.AddLoad(vars[a], vars[b], field)
			case 3:
				s.AddStore(vars[a], field, vars[b])
			}
			cons = append(cons, naiveConstraint{kind: kind, a: a, b: b, obj: obj, field: field})
		}
		want := naiveSolve(nVars, cons)
		for i, v := range vars {
			got := s.PointsTo(v)
			if len(got) != len(want[i]) {
				return false
			}
			for _, o := range got {
				if !want[i][int(o)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSolveChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSolver()
		var prev Var
		o := s.NewObject("o")
		for j := 0; j < 2000; j++ {
			v := s.NewVar("v")
			if j == 0 {
				s.AddAlloc(v, o)
			} else {
				s.AddCopy(v, prev)
			}
			prev = v
		}
		s.Solve()
	}
}
