// Package obs is the pipeline's observability layer: a lightweight,
// dependency-free metrics registry (counters, gauges, timers with
// quantile histograms, and bounded traces), structured stage logging,
// snapshot export as text and JSON, and HTTP/pprof operator surfaces.
//
// Every method on *Registry and *Logger is safe on a nil receiver and
// returns immediately, so instrumented code needs no guards and pays
// (almost) nothing when no sink is attached.
package obs

import (
	"encoding/json"
	"math"
	"os"
	"sort"
	"sync"
	"time"
)

// Well-known metric names shared by the pipeline and the commands.
const (
	// The six pipeline stage timers (core.Learn / core.LearnFromSources).
	StageParse       = "stage.parse"       // lex + parse of all files
	StageDataflow    = "stage.dataflow"    // per-file dataflow analysis
	StageUnion       = "stage.union"       // propagation-graph union
	StageConstraints = "stage.constraints" // constraint system build
	StageSolve       = "stage.solve"       // projected-Adam solve
	StageSelect      = "stage.select"      // role selection (§7.1 backoff)

	// Sub-timers of the constraint build (constraints.Build passes).
	StageConstraintsFreq   = "stage.constraints.freq"   // pass 1: rep frequencies
	StageConstraintsFilter = "stage.constraints.filter" // pass 2: candidate filter
	StageConstraintsVars   = "stage.constraints.vars"   // pass 3: variable assignment
	StageConstraintsFlow   = "stage.constraints.flow"   // pass 4: flow constraints

	// Symbol interning (propgraph.Interner) over the learned-on graph.
	// intern.symbols is the number of distinct representation strings;
	// intern.bytes_saved is the string bytes interning avoids storing —
	// total bytes of every representation occurrence minus the table's
	// store-each-string-once footprint.
	GaugeInternSymbols    = "intern.symbols"
	GaugeInternBytesSaved = "intern.bytes_saved"

	// Per-file timers.
	FileParse   = "file.parse"
	FileAnalyze = "file.analyze"

	// Front-end parallelism. stage.parse/stage.dataflow record summed
	// per-file times (comparable across worker counts); stage.frontend is
	// the wall time of the parallel parse+dataflow section.
	StageFrontend = "stage.frontend"
	// GaugeWorkers is the worker-pool size the front-end used.
	GaugeWorkers = "parallel.workers"
	// GaugeFrontendSpeedup is per-file CPU time over front-end wall time —
	// the effective parallel speedup of the run. It is omitted (not set
	// to zero) when unmeasurable: on a fully warm cache run no parse or
	// dataflow executes, so there is no CPU time to form the ratio from —
	// cache.speedup carries that run's number instead.
	GaugeFrontendSpeedup = "frontend.speedup"

	// Counters.
	CounterParseErrors   = "parse.errors"
	CounterFilesAnalyzed = "files.analyzed"

	// Incremental front-end cache (internal/fpcache). stage.cache is the
	// summed time spent in cache lookups and write-backs; cache.bytes
	// totals bytes read on hits plus bytes written on misses.
	StageCache         = "stage.cache"
	CounterCacheHits   = "cache.hits"
	CounterCacheMisses = "cache.misses"
	CounterCacheBytes  = "cache.bytes"
	// GaugeCacheSaved is the recorded parse+dataflow cost the hits
	// avoided, in seconds; GaugeCacheSpeedup is the estimated warm-run
	// front-end speedup, (wall + saved) / wall.
	GaugeCacheSaved   = "cache.saved_s"
	GaugeCacheSpeedup = "cache.speedup"

	// The serving-side check-result cache (internal/checkcache behind
	// POST /v1/check): lookups, residency, and LRU pressure.
	CounterCheckCacheHits      = "check.cache.hits"
	CounterCheckCacheMisses    = "check.cache.misses"
	CounterCheckCacheEvictions = "check.cache.evictions"
	GaugeCheckCacheBytes       = "check.cache.bytes"
	GaugeCheckCacheEntries     = "check.cache.entries"
	// CounterCheckCoalesced counts /v1/check requests that piggybacked on
	// a concurrent identical in-flight analysis (single-flight followers)
	// instead of taking a worker slot.
	CounterCheckCoalesced = "check.coalesced"

	// Scratch-pool traffic on the serving hot path: pool.gets counts
	// acquisitions, pool.news the subset that had to allocate a fresh
	// scratch — their ratio is the pool's reuse rate.
	CounterPoolGets = "pool.gets"
	CounterPoolNews = "pool.news"

	// Distributed corpus learning (internal/shard). The worker times its
	// slice analysis and artifact encode; the coordinator times artifact
	// decode and the shard-graph merge (validation + union + symbol
	// translation). shard.files and shard.bytes gauge the corpus slice a
	// worker analyzed — or, on the coordinator, the whole reassembled
	// corpus and the artifact bytes ingested.
	StageShardAnalyze = "stage.shard.analyze"
	StageShardEncode  = "stage.shard.encode"
	// StageShardDecode timed the whole-buffer artifact decode; the
	// streaming ingestion path observes StageShardStream instead (one
	// sample per artifact streamed through shard.NewReader).
	StageShardDecode = "stage.shard.decode"
	StageShardStream = "stage.shard.stream"
	// StageShardExec is the coordinator's whole local fan-out: spawn N
	// seldon-shard subprocesses, wait, decode their artifacts.
	StageShardExec  = "stage.shard.exec"
	TimerShardMerge = "shard.merge"
	GaugeShardFiles = "shard.files"
	GaugeShardBytes = "shard.bytes"
	// GaugeShardSlices is the shard count a coordinator merged (or the
	// slice count a worker was partitioned under).
	GaugeShardSlices = "shard.slices"
	// CounterShardStreamBytes totals bytes ingested through the
	// streaming artifact decoder; GaugeShardMergePeakBytes is the peak
	// encoded-artifact residency of the commit-queue merge (decoded but
	// not yet folded into the union) — the number that stays near one
	// slice on the streaming path where the barrier path held all N.
	CounterShardStreamBytes  = "shard.stream.bytes"
	GaugeShardMergePeakBytes = "shard.merge.peak_bytes"

	// The persistent flow-constraint block cache
	// (constraints.FlowCache): spans whose cached block was reused vs
	// rebuilt on delta-aware constraint builds.
	CounterFlowCacheHits   = "flowcache.hits"
	CounterFlowCacheMisses = "flowcache.misses"

	// Incremental learning (internal/incr). The stage.incr.* timers
	// decompose one session operation: retract/splice are the delta
	// operations on the per-file graph set, rebuild is the union +
	// delta-aware constraint build, resolve the warm-started solve +
	// role selection.
	StageIncrRetract = "stage.incr.retract"
	StageIncrSplice  = "stage.incr.splice"
	StageIncrRebuild = "stage.incr.rebuild"
	StageIncrResolve = "stage.incr.resolve"
	// incr.files is the session's current file count; incr.files_changed
	// the files spliced or retracted since the last relearn.
	// incr.spans_reused / incr.constraints_reused report how much of the
	// flow-constraint pass the per-file block cache supplied on the last
	// build (constraints.BuildIncremental).
	GaugeIncrFiles             = "incr.files"
	GaugeIncrFilesChanged      = "incr.files_changed"
	GaugeIncrSpansReused       = "incr.spans_reused"
	GaugeIncrConstraintsReused = "incr.constraints_reused"
	// GaugeSolverEpochs is the epoch count of the last solve;
	// GaugeWarmEpochsSaved is the epoch saving of the last warm-started
	// solve versus the session's most recent cold solve of the same
	// corpus shape (clamped at zero).
	GaugeSolverEpochs    = "solver.epochs"
	GaugeWarmEpochsSaved = "solver.warm_epochs_saved"

	// The continuous-learning feedback loop (seldond /v1/feedback).
	// Counters split verdicts by direction; feedback.resolves counts the
	// incremental re-solves feedback triggered; feedback.pinned_vars is
	// the number of variables currently pinned by operator verdicts.
	CounterFeedbackAccepted = "feedback.accepted"
	CounterFeedbackRejected = "feedback.rejected"
	CounterFeedbackResolves = "feedback.resolves"
	GaugeFeedbackPinnedVars = "feedback.pinned_vars"

	// GaugePipelineWall is the end-to-end wall time of one seldon run in
	// seconds (front-end through role selection, plus shard decode/merge
	// on coordinator runs) — the number bench snapshots compare across
	// single-process and distributed runs.
	GaugePipelineWall = "pipeline.wall_s"

	// The solver convergence trace (one point per epoch).
	TraceSolver = "solver.convergence"
)

const (
	maxTimerSamples = 4096
	maxTracePoints  = 8192
)

// bucketBounds are the fixed log-spaced histogram boundaries every
// timer shares, in seconds: 1/2.5/5 per decade from 10µs to 100s, plus
// an implicit +Inf bucket. Fixed boundaries make cumulative counts
// mergeable across scrapes and give honest tail quantiles (p99/p999)
// even when the sample reservoir has decimated — the buckets count
// every observation exactly.
var bucketBounds = []float64{
	1e-05, 2.5e-05, 5e-05,
	1e-04, 2.5e-04, 5e-04,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5,
	10, 25, 50,
	100,
}

// BucketBounds returns a copy of the shared histogram boundaries, in
// seconds. Snapshot.Timers[*].Buckets is aligned with it (cumulative,
// +Inf implied by Count).
func BucketBounds() []float64 {
	out := make([]float64, len(bucketBounds))
	copy(out, bucketBounds)
	return out
}

// Registry is a concurrency-safe in-process metrics sink.
// The zero value is not usable; call New. A nil *Registry is a valid
// no-op sink.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	timers   map[string]*timer
	traces   map[string]*trace
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		timers:   make(map[string]*timer),
		traces:   make(map[string]*trace),
	}
}

// timer accumulates exact count/sum/min/max, a deterministic
// stride-decimated sample reservoir for mid quantiles (p50/p95), and a
// fixed log-spaced bucket histogram counting every observation — the
// source of tail quantiles (p99) and the Prometheus exposition.
type timer struct {
	count   int64
	sum     float64
	min     float64
	max     float64
	seen    int64 // observations since stride last doubled
	stride  int64 // record every stride-th observation
	sample  []float64
	buckets []int64 // per-bucket counts, len(bucketBounds)+1; last is +Inf
}

// trace is a bounded append-only series of labeled points. When full it
// keeps every other point and doubles the stride, so the retained points
// stay roughly uniform over the run — deterministically.
type trace struct {
	seen   int64
	stride int64
	points []TracePoint
}

// TracePoint is one entry of a trace series.
type TracePoint struct {
	Step   int64              `json:"step"`
	Values map[string]float64 `json:"values"`
}

// Add increments a counter by delta, creating it at zero first. Calling
// Add with delta 0 just materializes the counter in snapshots.
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Set sets a gauge to v.
func (r *Registry) Set(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// GaugeAdd adjusts a gauge by delta — the up/down counterpart of Set,
// for level-style series (in-flight requests) fed from many goroutines.
func (r *Registry) GaugeAdd(name string, delta float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] += delta
	r.mu.Unlock()
}

// Observe records one raw value into the named histogram/timer.
func (r *Registry) Observe(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	t := r.timers[name]
	if t == nil {
		t = &timer{min: math.Inf(1), max: math.Inf(-1), stride: 1,
			buckets: make([]int64, len(bucketBounds)+1)}
		r.timers[name] = t
	}
	t.count++
	t.sum += v
	if v < t.min {
		t.min = v
	}
	if v > t.max {
		t.max = v
	}
	t.buckets[sort.SearchFloat64s(bucketBounds, v)]++
	if t.seen%t.stride == 0 {
		t.sample = append(t.sample, v)
		if len(t.sample) > maxTimerSamples {
			half := t.sample[:0]
			for i := 0; i < len(t.sample); i += 2 {
				half = append(half, t.sample[i])
			}
			t.sample = half
			t.stride *= 2
			t.seen = 0
		}
	}
	t.seen++
	r.mu.Unlock()
}

// ObserveDuration records a duration, in seconds, into the named timer.
func (r *Registry) ObserveDuration(name string, d time.Duration) {
	r.Observe(name, d.Seconds())
}

// AppendTrace appends one point to the named trace series.
func (r *Registry) AppendTrace(name string, step int64, values map[string]float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	tr := r.traces[name]
	if tr == nil {
		tr = &trace{stride: 1}
		r.traces[name] = tr
	}
	if tr.seen%tr.stride == 0 {
		tr.points = append(tr.points, TracePoint{Step: step, Values: values})
		if len(tr.points) > maxTracePoints {
			half := tr.points[:0]
			for i := 0; i < len(tr.points); i += 2 {
				half = append(half, tr.points[i])
			}
			tr.points = half
			tr.stride *= 2
			tr.seen = 0
		}
	}
	tr.seen++
	r.mu.Unlock()
}

// Span measures one region of time against a timer metric.
type Span struct {
	r    *Registry
	name string
	t0   time.Time
}

// Start opens a span recording into the named timer when ended. On a nil
// registry it returns an inert span without reading the clock.
func (r *Registry) Start(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, name: name, t0: time.Now()}
}

// End closes the span and records the elapsed time; it returns the
// elapsed duration (zero for inert spans).
func (s Span) End() time.Duration {
	if s.r == nil {
		return 0
	}
	d := time.Since(s.t0)
	s.r.ObserveDuration(s.name, d)
	return d
}

// TimerStats summarizes one timer for export. P50/P95 come from the
// decimated sample reservoir; P99 is interpolated from the bucket
// histogram (clamped to the exact min/max), so the tail stays honest
// at any observation count. Buckets holds the cumulative bucket counts
// aligned with BucketBounds() — the +Inf bucket is Count — and is nil
// for an empty timer.
type TimerStats struct {
	Count   int64   `json:"count"`
	Sum     float64 `json:"sum"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	P50     float64 `json:"p50"`
	P95     float64 `json:"p95"`
	P99     float64 `json:"p99"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of the registry contents.
type Snapshot struct {
	Counters map[string]int64        `json:"counters"`
	Gauges   map[string]float64      `json:"gauges"`
	Timers   map[string]TimerStats   `json:"timers"`
	Traces   map[string][]TracePoint `json:"traces"`
}

// Snapshot copies out the current registry state. Safe on nil (returns
// an empty snapshot).
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]float64{},
		Timers:   map[string]TimerStats{},
		Traces:   map[string][]TracePoint{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range r.counters {
		s.Counters[k] = v
	}
	for k, v := range r.gauges {
		s.Gauges[k] = v
	}
	for k, t := range r.timers {
		s.Timers[k] = t.stats()
	}
	for k, tr := range r.traces {
		pts := make([]TracePoint, len(tr.points))
		copy(pts, tr.points)
		s.Traces[k] = pts
	}
	return s
}

func (t *timer) stats() TimerStats {
	st := TimerStats{Count: t.count, Sum: t.sum, Min: t.min, Max: t.max}
	if t.count == 0 {
		st.Min, st.Max = 0, 0
		return st
	}
	sorted := make([]float64, len(t.sample))
	copy(sorted, t.sample)
	sort.Float64s(sorted)
	st.P50 = quantile(sorted, 0.50)
	st.P95 = quantile(sorted, 0.95)
	st.P99 = t.bucketQuantile(0.99)
	st.Buckets = make([]int64, len(bucketBounds))
	var cum int64
	for i := range bucketBounds {
		cum += t.buckets[i]
		st.Buckets[i] = cum
	}
	return st
}

// bucketQuantile interpolates the q-th quantile from the bucket
// histogram (Prometheus histogram_quantile semantics: linear within
// the containing bucket), clamped to the exact observed min/max so
// coarse buckets never report values outside the data.
func (t *timer) bucketQuantile(q float64) float64 {
	rank := q * float64(t.count)
	var cum int64
	lower := 0.0
	for i, c := range t.buckets {
		cum += c
		if float64(cum) < rank {
			if i < len(bucketBounds) {
				lower = bucketBounds[i]
			}
			continue
		}
		v := t.max // +Inf bucket: the exact max is the best honest answer
		if i < len(bucketBounds) {
			upper := bucketBounds[i]
			v = upper
			if c > 0 {
				frac := (rank - float64(cum-c)) / float64(c)
				v = lower + (upper-lower)*frac
			}
		}
		return math.Min(math.Max(v, t.min), t.max)
	}
	return t.max
}

// Timer returns the current stats of one named timer without copying
// the whole registry — cheap enough for per-request decisions (e.g.
// computing Retry-After from the observed p50). ok is false when the
// timer has never been observed (or the registry is nil).
func (r *Registry) Timer(name string) (TimerStats, bool) {
	if r == nil {
		return TimerStats{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.timers[name]
	if t == nil {
		return TimerStats{}, false
	}
	return t.stats(), true
}

// quantile uses nearest-rank interpolation over a sorted sample.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// JSON renders the snapshot as indented JSON.
func (s *Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// WriteJSON writes the current snapshot to path. Safe on nil (writes an
// empty snapshot).
func (r *Registry) WriteJSON(path string) error {
	data, err := r.Snapshot().JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
