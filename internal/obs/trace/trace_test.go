package trace

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	tr := New(8)
	root := tr.StartRoot("request")
	root.SetAttr("route", "check")
	c1 := root.StartChild("parse")
	time.Sleep(time.Millisecond)
	c1.End()
	c2 := root.StartChild("taint")
	g := c2.StartChild("dedupe")
	g.End()
	c2.End()
	root.AddChildAt("dataflow", time.Now().Add(-time.Millisecond), time.Millisecond,
		String("summed", "per-file"))
	root.End()

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	td := traces[0]
	if td.Root != "request" || len(td.TraceID) != 32 {
		t.Fatalf("trace = %+v", td)
	}
	if len(td.Spans) != 5 {
		t.Fatalf("spans = %d, want 5", len(td.Spans))
	}
	// The root ends last and is the final record.
	last := td.Spans[len(td.Spans)-1]
	if last.Name != "request" || last.ParentID != "" {
		t.Errorf("last span = %+v, want the root", last)
	}
	// Every non-root parent resolves to a recorded span; all spans share
	// the trace ID implicitly (they're in the same TraceData).
	ids := map[string]string{}
	for _, sd := range td.Spans {
		ids[sd.SpanID] = sd.Name
	}
	for _, sd := range td.Spans {
		if sd.ParentID == "" {
			continue
		}
		if _, ok := ids[sd.ParentID]; !ok {
			t.Errorf("span %q has unknown parent %s", sd.Name, sd.ParentID)
		}
	}
	if ids[td.Spans[0].ParentID] != "request" && td.Spans[0].Name != "request" {
		// first finished span (parse) must hang off the root
		t.Errorf("first span parent = %q", ids[td.Spans[0].ParentID])
	}
	// The grandchild hangs off "taint", not the root.
	for _, sd := range td.Spans {
		if sd.Name == "dedupe" && ids[sd.ParentID] != "taint" {
			t.Errorf("dedupe parent = %q, want taint", ids[sd.ParentID])
		}
	}
	tree := td.Tree()
	if !strings.Contains(tree, "request") || !strings.Contains(tree, "    dedupe") {
		t.Errorf("tree rendering:\n%s", tree)
	}
}

func TestRingBound(t *testing.T) {
	tr := New(4)
	for i := 0; i < 7; i++ {
		sp := tr.StartRoot("r")
		sp.SetAttr("i", i)
		sp.End()
	}
	traces := tr.Traces()
	if len(traces) != 4 {
		t.Fatalf("ring holds %d, want 4", len(traces))
	}
	// Newest first: i = 6, 5, 4, 3.
	for k, want := range []string{"6", "5", "4", "3"} {
		root := traces[k].Spans[len(traces[k].Spans)-1]
		if len(root.Attrs) != 1 || root.Attrs[0].Value != want {
			t.Errorf("trace %d attr = %+v, want i=%s", k, root.Attrs, want)
		}
	}
	started, finished, buffered := tr.Stats()
	if started != 7 || finished != 7 || buffered != 4 {
		t.Errorf("stats = %d/%d/%d, want 7/7/4", started, finished, buffered)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New(2)
	up := tr.StartRoot("upstream")
	header := up.Traceparent()
	if !strings.HasPrefix(header, "00-") || !strings.HasSuffix(header, "-01") {
		t.Fatalf("traceparent = %q", header)
	}
	down := tr.StartRootFrom("downstream", header)
	if down.TraceID() != up.TraceID() {
		t.Errorf("trace ID not adopted: %s vs %s", down.TraceID(), up.TraceID())
	}
	down.End()
	td, ok := tr.TraceByID(up.TraceID())
	if !ok || !td.RemoteParent {
		t.Errorf("downstream trace = %+v (ok=%v), want remote_parent", td, ok)
	}
	root := td.Spans[len(td.Spans)-1]
	if root.ParentID != up.SpanID() {
		t.Errorf("root parent = %s, want %s", root.ParentID, up.SpanID())
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-short-beef-01",
		"01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // wrong version
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",    // 3 parts
		"00-" + strings.Repeat("0", 32) + "-b7ad6b7169203331-01",  // zero trace
		"00-0af7651916cd43dd8448eb211c80319c-" + strings.Repeat("0", 16) + "-01",
		"00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01", // uppercase
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted", h)
		}
	}
	if id, sp, ok := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"); !ok ||
		id != "0af7651916cd43dd8448eb211c80319c" || sp != "b7ad6b7169203331" {
		t.Errorf("valid header rejected: %q %q %v", id, sp, ok)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.StartRoot("x")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	// Every method on the nil span no-ops.
	child := sp.StartChild("y")
	child.SetAttr("k", "v")
	sp.AddChildAt("z", time.Now(), time.Second)
	if sp.End() != 0 || child.End() != 0 {
		t.Error("nil span End != 0")
	}
	if sp.TraceID() != "" || sp.Traceparent() != "" || sp.SpanID() != "" {
		t.Error("nil span has identity")
	}
	if tr.Traces() != nil {
		t.Error("nil tracer has traces")
	}
	if _, ok := tr.TraceByID("abc"); ok {
		t.Error("nil tracer found a trace")
	}
}

func TestDoubleEndRecordsOnce(t *testing.T) {
	tr := New(4)
	sp := tr.StartRoot("r")
	sp.End()
	sp.End()
	_, finished, _ := tr.Stats()
	if finished != 1 {
		t.Errorf("finished = %d, want 1", finished)
	}
}

func TestSpanCapPerTrace(t *testing.T) {
	tr := New(2)
	root := tr.StartRoot("r")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		root.AddChildAt("c", time.Now(), 0)
	}
	root.End()
	td := tr.Traces()[0]
	if len(td.Spans) != maxSpansPerTrace+1 { // + root
		t.Errorf("spans = %d, want %d", len(td.Spans), maxSpansPerTrace+1)
	}
	if td.Dropped != 10 {
		t.Errorf("dropped = %d, want 10", td.Dropped)
	}
}

// TestLateSpanAfterRootEnd pins the publish path against the
// timed-out-request shape: the handler's deferred root.End publishes
// the trace while the analysis goroutine keeps running and ends child
// spans afterwards. Those stragglers must be dropped, not appended —
// appending would write through the published TraceData's backing
// array, mutating a snapshot documented as immutable.
func TestLateSpanAfterRootEnd(t *testing.T) {
	tr := New(2)
	root := tr.StartRoot("r")
	early := root.StartChild("early")
	early.End()
	late := root.StartChild("late")
	root.End()

	late.End()
	root.AddChildAt("later-still", time.Now(), 0)

	td := tr.Traces()[0]
	if len(td.Spans) != 2 {
		t.Fatalf("spans = %d, want 2 (early + root)", len(td.Spans))
	}
	for _, sd := range td.Spans {
		if sd.Name == "late" || sd.Name == "later-still" {
			t.Errorf("straggler span %q recorded after publish", sd.Name)
		}
	}
	if td.Spans[len(td.Spans)-1].Name != "r" {
		t.Errorf("root not last: %+v", td.Spans)
	}
}

// TestLateSpanRace drives the same shape under the race detector:
// stragglers keep ending while readers marshal the published ring.
func TestLateSpanRace(t *testing.T) {
	tr := New(4)
	root := tr.StartRoot("r")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			root.AddChildAt("c", time.Now(), time.Duration(i))
		}
	}()
	root.End()
	for i := 0; i < 200; i++ {
		if traces := tr.Traces(); len(traces) > 0 {
			if _, err := json.Marshal(traces); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestContextHelpers(t *testing.T) {
	tr := New(4)
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("empty context has a span")
	}
	ctx, root := tr.StartSpan(ctx, "outer")
	ctx2, child := tr.StartSpan(ctx, "inner")
	if FromContext(ctx2) != child || FromContext(ctx) != root {
		t.Error("context rebinding broken")
	}
	if child.TraceID() != root.TraceID() {
		t.Error("child not in parent trace")
	}
	child.End()
	root.End()
	td := tr.Traces()[0]
	if len(td.Spans) != 2 {
		t.Errorf("spans = %d, want 2", len(td.Spans))
	}
}

func TestConcurrentSpansAndScrape(t *testing.T) {
	tr := New(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				root := tr.StartRoot("r")
				c := root.StartChild("c")
				c.End()
				root.End()
				_ = tr.Traces()
			}
		}()
	}
	wg.Wait()
	_, finished, buffered := tr.Stats()
	if finished != 400 || buffered != 32 {
		t.Errorf("stats = %d finished, %d buffered", finished, buffered)
	}
}

func TestHandler(t *testing.T) {
	tr := New(8)
	for i := 0; i < 3; i++ {
		sp := tr.StartRoot("req")
		sp.StartChild("c").End()
		sp.End()
	}
	id := tr.Traces()[0].TraceID

	rec := httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var dump Dump
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if dump.Finished != 3 || len(dump.Traces) != 3 {
		t.Errorf("dump = %+v", dump)
	}

	rec = httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?limit=1", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil || len(dump.Traces) != 1 {
		t.Errorf("limit=1 returned %d traces (err=%v)", len(dump.Traces), err)
	}

	rec = httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?trace_id="+id, nil))
	var td TraceData
	if err := json.Unmarshal(rec.Body.Bytes(), &td); err != nil || td.TraceID != id {
		t.Errorf("by id: %+v (err=%v)", td, err)
	}

	rec = httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?trace_id=nope", nil))
	if rec.Code != 404 {
		t.Errorf("unknown id status = %d", rec.Code)
	}

	// Nil tracer: an empty, valid dump.
	rec = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil || len(dump.Traces) != 0 {
		t.Errorf("nil dump: %+v (err=%v)", dump, err)
	}
}
