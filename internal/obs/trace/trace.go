// Package trace is the request-scoped half of the observability layer:
// where internal/obs aggregates (counters, histograms), trace answers
// "what happened inside THIS request/run" — every traced operation
// decomposes into a tree of timed, attributed spans under one trace ID.
//
// The design follows the shape of W3C Trace Context / OpenTelemetry
// without the dependency: 16-byte trace IDs and 8-byte span IDs in hex,
// a `traceparent` header in and out, and a bounded in-memory ring of
// recently completed traces served as JSON from /debug/traces.
//
// Like the metrics registry, every method is safe on a nil *Tracer and
// a nil *Span and returns immediately, so instrumented code needs no
// guards: a nil tracer yields nil spans, nil spans yield nil children.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"time"
)

const (
	// DefaultCapacity is the trace-ring size New(0) selects.
	DefaultCapacity = 256
	// maxSpansPerTrace bounds the span records one trace retains; spans
	// beyond it are counted in TraceData.Dropped instead of stored, so a
	// runaway loop cannot grow a trace without bound.
	maxSpansPerTrace = 512
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds an Attr, formatting the value with %v.
func String(key string, value any) Attr {
	return Attr{Key: key, Value: fmt.Sprintf("%v", value)}
}

// SpanData is the immutable record of one finished span.
type SpanData struct {
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	// StartUnixNano and DurationNanos place the span in time; child
	// offsets relative to the trace start come from subtracting the
	// trace's own StartUnixNano.
	StartUnixNano int64  `json:"start_unix_nano"`
	DurationNanos int64  `json:"duration_ns"`
	Attrs         []Attr `json:"attrs,omitempty"`
}

// TraceData is the immutable record of one finished trace: the root
// span's identity plus every recorded span, in end order (the root is
// always last).
type TraceData struct {
	TraceID       string `json:"trace_id"`
	Root          string `json:"root"` // root span name
	StartUnixNano int64  `json:"start_unix_nano"`
	DurationNanos int64  `json:"duration_ns"`
	// RemoteParent marks traces whose root adopted a caller's
	// traceparent; the root span's ParentID then names a span that lives
	// in the caller's process, not in Spans.
	RemoteParent bool       `json:"remote_parent,omitempty"`
	Dropped      int        `json:"dropped_spans,omitempty"`
	Spans        []SpanData `json:"spans"`
}

// Tracer collects finished traces into a bounded ring, newest
// overwriting oldest. A nil *Tracer is a valid no-op sink.
type Tracer struct {
	mu       sync.Mutex
	ring     []TraceData
	next     int
	size     int
	started  int64
	finished int64
}

// New returns a tracer retaining the most recent capacity traces;
// capacity <= 0 selects DefaultCapacity.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{ring: make([]TraceData, capacity)}
}

// traceBuf accumulates the finished spans of one in-flight trace. Spans
// of a trace may end on different goroutines (worker handoff), so the
// buffer carries its own lock. Once the root span publishes the trace
// the buffer is closed: stragglers — e.g. an analysis goroutine still
// running after its request timed out — are counted as dropped rather
// than recorded, so a published TraceData is never touched again.
type traceBuf struct {
	mu      sync.Mutex
	spans   []SpanData
	dropped int
	closed  bool
}

func (b *traceBuf) add(sd SpanData) {
	b.mu.Lock()
	if b.closed || len(b.spans) >= maxSpansPerTrace {
		b.dropped++
	} else {
		b.spans = append(b.spans, sd)
	}
	b.mu.Unlock()
}

// Span is one in-flight timed operation. Spans are created by
// Tracer.StartRoot/StartRootFrom and Span.StartChild, annotated with
// SetAttr, and closed exactly once with End; a nil *Span no-ops
// everywhere.
type Span struct {
	tracer  *Tracer
	buf     *traceBuf
	traceID string
	id      string
	parent  string
	name    string
	root    bool
	remote  bool
	start   time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// StartRoot opens a new trace and returns its root span.
func (t *Tracer) StartRoot(name string) *Span {
	return t.startRoot(name, "", "")
}

// StartRootFrom opens a new trace, adopting the trace ID and parent
// span ID of a valid W3C traceparent header; an empty or malformed
// header starts a fresh trace, so callers pass the header through
// unchecked.
func (t *Tracer) StartRootFrom(name, traceparent string) *Span {
	traceID, parentID, ok := ParseTraceparent(traceparent)
	if !ok {
		return t.startRoot(name, "", "")
	}
	return t.startRoot(name, traceID, parentID)
}

func (t *Tracer) startRoot(name, traceID, parentID string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.started++
	t.mu.Unlock()
	remote := traceID != ""
	if traceID == "" {
		traceID = randHex(16)
	}
	return &Span{
		tracer:  t,
		buf:     &traceBuf{},
		traceID: traceID,
		id:      randHex(8),
		parent:  parentID,
		name:    name,
		root:    true,
		remote:  remote,
		start:   time.Now(),
	}
}

// StartChild opens a child span under s, in the same trace.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		tracer:  s.tracer,
		buf:     s.buf,
		traceID: s.traceID,
		id:      randHex(8),
		parent:  s.id,
		name:    name,
		start:   time.Now(),
	}
}

// AddChildAt records an already-completed child span with an explicit
// start time and duration. It exists for stages whose timing is known
// only after the fact — e.g. per-file parse and dataflow totals summed
// by the parallel front-end.
func (s *Span) AddChildAt(name string, start time.Time, d time.Duration, attrs ...Attr) {
	if s == nil {
		return
	}
	s.buf.add(SpanData{
		SpanID:        randHex(8),
		ParentID:      s.id,
		Name:          name,
		StartUnixNano: start.UnixNano(),
		DurationNanos: int64(d),
		Attrs:         attrs,
	})
}

// SetAttr annotates the span; the value is formatted with %v.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, String(key, value))
	s.mu.Unlock()
}

// TraceID returns the 32-hex-digit trace ID ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// SpanID returns the 16-hex-digit span ID ("" on nil).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// Traceparent renders the span as an outgoing W3C traceparent header
// ("" on nil), so downstream calls join this trace.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return FormatTraceparent(s.traceID, s.id)
}

// End closes the span, records it, and — for root spans — publishes
// the finished trace into the tracer's ring. It returns the elapsed
// time; calling End twice records once.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return d
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	sd := SpanData{
		SpanID:        s.id,
		ParentID:      s.parent,
		Name:          s.name,
		StartUnixNano: s.start.UnixNano(),
		DurationNanos: int64(d),
		Attrs:         attrs,
	}
	if !s.root {
		s.buf.add(sd)
		return d
	}
	// Copy into a fresh array before publishing: appending to the
	// buffer's own slice would alias its backing array, and a child span
	// ending after the root (timed-out request, worker still running)
	// would then overwrite the published — supposedly immutable — trace
	// concurrently with /debug/traces readers. Closing the buffer makes
	// those stragglers count as dropped instead.
	s.buf.mu.Lock()
	s.buf.closed = true
	spans := make([]SpanData, 0, len(s.buf.spans)+1)
	spans = append(spans, s.buf.spans...)
	spans = append(spans, sd) // root last
	dropped := s.buf.dropped
	s.buf.mu.Unlock()
	s.tracer.push(TraceData{
		TraceID:       s.traceID,
		Root:          s.name,
		StartUnixNano: s.start.UnixNano(),
		DurationNanos: int64(d),
		RemoteParent:  s.remote,
		Dropped:       dropped,
		Spans:         spans,
	})
	return d
}

func (t *Tracer) push(td TraceData) {
	t.mu.Lock()
	t.ring[t.next] = td
	t.next = (t.next + 1) % len(t.ring)
	if t.size < len(t.ring) {
		t.size++
	}
	t.finished++
	t.mu.Unlock()
}

// Traces returns the retained traces, newest first. The returned
// TraceData values are immutable snapshots and safe to share.
func (t *Tracer) Traces() []TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceData, 0, t.size)
	n := len(t.ring)
	for i := 0; i < t.size; i++ {
		out = append(out, t.ring[(t.next-1-i+2*n)%n])
	}
	return out
}

// TraceByID returns the retained trace with the given ID.
func (t *Tracer) TraceByID(id string) (TraceData, bool) {
	for _, td := range t.Traces() {
		if td.TraceID == id {
			return td, true
		}
	}
	return TraceData{}, false
}

// Stats reports lifetime trace counts and the current ring occupancy.
func (t *Tracer) Stats() (started, finished int64, buffered int) {
	if t == nil {
		return 0, 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.started, t.finished, t.size
}

// ParseTraceparent validates a W3C traceparent header
// (version 00: "00-<32 hex>-<16 hex>-<2 hex>") and returns its trace
// and parent-span IDs. All-zero IDs are invalid per the spec.
func ParseTraceparent(h string) (traceID, spanID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) != 4 || parts[0] != "00" ||
		!isHex(parts[1], 32) || !isHex(parts[2], 16) || !isHex(parts[3], 2) {
		return "", "", false
	}
	if parts[1] == strings.Repeat("0", 32) || parts[2] == strings.Repeat("0", 16) {
		return "", "", false
	}
	return parts[1], parts[2], true
}

// FormatTraceparent renders a version-00, sampled traceparent header.
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < n; i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// randHex returns n random bytes as 2n lowercase hex digits. The
// crypto source never fails on supported platforms; if it somehow
// does, the wall clock keeps IDs unique enough for debugging.
func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		now := time.Now().UnixNano()
		for i := range b {
			b[i] = byte(now >> (8 * (i % 8)))
		}
	}
	return hex.EncodeToString(b)
}

// ctxKey carries the current span through a context.
type ctxKey struct{}

// NewContext returns ctx with s as the current span.
func NewContext(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the current span, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan opens a span under the context's current span — or a new
// root on t when the context carries none — and returns the context
// rebound to the new span.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if parent := FromContext(ctx); parent != nil {
		sp := parent.StartChild(name)
		return NewContext(ctx, sp), sp
	}
	sp := t.StartRoot(name)
	return NewContext(ctx, sp), sp
}
