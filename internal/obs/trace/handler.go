package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Dump is the /debug/traces response body.
type Dump struct {
	// Started/Finished are lifetime trace counts; Buffered is how many
	// finished traces the ring currently retains.
	Started  int64       `json:"started"`
	Finished int64       `json:"finished"`
	Buffered int         `json:"buffered"`
	Traces   []TraceData `json:"traces"`
}

// Handler serves the tracer's recent-trace ring as JSON:
//
//	GET /debug/traces                 newest-first dump (all retained)
//	GET /debug/traces?limit=N         at most N traces
//	GET /debug/traces?trace_id=<id>   one trace, 404 when evicted/unknown
//
// A nil tracer serves an empty dump, mirroring the metrics handler.
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if id := r.URL.Query().Get("trace_id"); id != "" {
			td, ok := t.TraceByID(id)
			if !ok {
				http.Error(w, "trace not retained: "+id, http.StatusNotFound)
				return
			}
			writeJSON(w, td)
			return
		}
		started, finished, buffered := t.Stats()
		dump := Dump{Started: started, Finished: finished, Buffered: buffered, Traces: t.Traces()}
		if dump.Traces == nil {
			dump.Traces = []TraceData{}
		}
		if ls := r.URL.Query().Get("limit"); ls != "" {
			if n, err := strconv.Atoi(ls); err == nil && n >= 0 && n < len(dump.Traces) {
				dump.Traces = dump.Traces[:n]
			}
		}
		writeJSON(w, dump)
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// Tree renders the trace as an indented span tree for logs and CLIs:
//
//	http.check 12.4ms  route=check
//	  admission 0.1ms
//	  queue 0.2ms
//	  ...
//
// Children print in start order under their parent; spans whose parent
// is not retained (remote parents, dropped spans) print at top level.
func (d TraceData) Tree() string {
	children := make(map[string][]SpanData, len(d.Spans))
	ids := make(map[string]bool, len(d.Spans))
	for _, sd := range d.Spans {
		ids[sd.SpanID] = true
	}
	var roots []SpanData
	for _, sd := range d.Spans {
		if sd.ParentID != "" && ids[sd.ParentID] {
			children[sd.ParentID] = append(children[sd.ParentID], sd)
		} else {
			roots = append(roots, sd)
		}
	}
	byStart := func(s []SpanData) {
		sort.SliceStable(s, func(i, j int) bool { return s[i].StartUnixNano < s[j].StartUnixNano })
	}
	var b strings.Builder
	var walk func(sd SpanData, depth int)
	walk = func(sd SpanData, depth int) {
		fmt.Fprintf(&b, "%s%s %s", strings.Repeat("  ", depth), sd.Name,
			time.Duration(sd.DurationNanos).Round(time.Microsecond))
		for _, a := range sd.Attrs {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
		}
		b.WriteByte('\n')
		kids := children[sd.SpanID]
		byStart(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	byStart(roots)
	for _, sd := range roots {
		walk(sd, 0)
	}
	return b.String()
}
