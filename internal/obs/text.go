package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Text renders the snapshot as sorted, line-oriented plain text, one
// metric per line — a human-readable dual of JSON for logs and CLIs.
func (s *Snapshot) Text() string {
	var b strings.Builder
	for _, k := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "counter %s %d\n", k, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "gauge %s %g\n", k, s.Gauges[k])
	}
	for _, k := range sortedKeys(s.Timers) {
		t := s.Timers[k]
		fmt.Fprintf(&b, "timer %s count=%d sum=%gs min=%gs max=%gs p50=%gs p95=%gs p99=%gs\n",
			k, t.Count, t.Sum, t.Min, t.Max, t.P50, t.P95, t.P99)
	}
	for _, k := range sortedKeys(s.Traces) {
		fmt.Fprintf(&b, "trace %s points=%d\n", k, len(s.Traces[k]))
	}
	return b.String()
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
