package obs

import (
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// promFixture builds a registry with fixed contents; the exposition of
// this exact state is pinned by testdata/metrics.prom.golden.
func promFixture() *Registry {
	r := New()
	r.Add("http.requests", 42)
	r.Add("http.requests.check", 40)
	r.Add("parse.errors", 0)
	r.Set("parallel.workers", 4)
	r.Set("cache.speedup", 12.9)
	for _, v := range []float64{0.003, 0.004, 0.004, 0.02, 0.75, 1.5, 250} {
		r.Observe("http.check.latency", v)
	}
	return r
}

// TestPromGolden pins the exposition format byte for byte. Regenerate
// deliberately with UPDATE_GOLDEN=1 go test ./internal/obs/ -run Golden.
func TestPromGolden(t *testing.T) {
	got := promFixture().Snapshot().Prom()
	golden := filepath.Join("testdata", "metrics.prom.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("exposition drifted from golden file:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// parsePromHistogram extracts the cumulative bucket counts, sum, and
// count of one histogram family from an exposition.
func parsePromHistogram(t *testing.T, text, family string) (les []string, cums []int64, count int64) {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, family+"_bucket{le="):
			rest := strings.TrimPrefix(line, family+"_bucket{le=")
			q := strings.SplitN(rest, "}", 2)
			le := strings.Trim(q[0], `"`)
			v, err := strconv.ParseInt(strings.TrimSpace(q[1]), 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			les = append(les, le)
			cums = append(cums, v)
		case strings.HasPrefix(line, family+"_count "):
			v, err := strconv.ParseInt(strings.TrimPrefix(line, family+"_count "), 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			count = v
		}
	}
	return les, cums, count
}

func TestPromHistogramShape(t *testing.T) {
	text := string(promFixture().Snapshot().Prom())
	les, cums, count := parsePromHistogram(t, text, "seldon_http_check_latency_seconds")
	if len(les) != len(bucketBounds)+1 {
		t.Fatalf("bucket lines = %d, want %d", len(les), len(bucketBounds)+1)
	}
	if les[len(les)-1] != "+Inf" {
		t.Fatalf("last le = %q, want +Inf", les[len(les)-1])
	}
	for i := 1; i < len(cums); i++ {
		if cums[i] < cums[i-1] {
			t.Fatalf("buckets not monotone at %d: %d then %d", i, cums[i-1], cums[i])
		}
	}
	if cums[len(cums)-1] != count || count != 7 {
		t.Errorf("+Inf bucket = %d, count = %d, want both 7", cums[len(cums)-1], count)
	}
	// 0.003, 0.004, 0.004 land at or below the 0.005 boundary; 250
	// exceeds the last bound and lives only in +Inf.
	idx005 := -1
	for i, le := range les {
		if le == "0.005" {
			idx005 = i
		}
	}
	if idx005 < 0 || cums[idx005] != 3 {
		t.Errorf("le=0.005 cumulative = %d (idx %d), want 3", cums[idx005], idx005)
	}
	if cums[len(cums)-2] != 6 {
		t.Errorf("le=100 cumulative = %d, want 6 (250 only in +Inf)", cums[len(cums)-2])
	}
}

func TestTimerP99FromBuckets(t *testing.T) {
	r := New()
	// 100 fast observations and 2 slow outliers: a sorted-slice p95
	// misses the tail, the bucket p99 must land in the outlier range.
	for i := 0; i < 100; i++ {
		r.Observe("lat", 0.002)
	}
	r.Observe("lat", 4.0)
	r.Observe("lat", 4.5)
	st := r.Snapshot().Timers["lat"]
	if st.P99 < 2.5 || st.P99 > 4.5 {
		t.Errorf("p99 = %v, want within the (2.5, 4.5] outlier bucket", st.P99)
	}
	if st.Max != 4.5 {
		t.Errorf("max = %v", st.Max)
	}

	// Values beyond the last bound: p-infinity falls into +Inf, which
	// reports the exact max rather than a made-up boundary.
	r2 := New()
	for i := 0; i < 10; i++ {
		r2.Observe("big", 500)
	}
	if st := r2.Snapshot().Timers["big"]; st.P99 != 500 {
		t.Errorf("+Inf p99 = %v, want exact max 500", st.P99)
	}

	// A single observation: every quantile is that value.
	r3 := New()
	r3.Observe("one", 0.03)
	if st := r3.Snapshot().Timers["one"]; math.Abs(st.P99-0.03) > 0.021 {
		// clamped into [min, max] = [0.03, 0.03]
		t.Errorf("single-sample p99 = %v, want 0.03", st.P99)
	}
}

func TestTimerBucketsCumulative(t *testing.T) {
	r := New()
	for _, v := range []float64{0.0001, 0.04, 7.3} {
		r.Observe("lat", v)
	}
	st := r.Snapshot().Timers["lat"]
	if len(st.Buckets) != len(bucketBounds) {
		t.Fatalf("buckets = %d, want %d", len(st.Buckets), len(bucketBounds))
	}
	for i := 1; i < len(st.Buckets); i++ {
		if st.Buckets[i] < st.Buckets[i-1] {
			t.Fatalf("cumulative decreased at %d", i)
		}
	}
	if st.Buckets[len(st.Buckets)-1] != 3 {
		t.Errorf("last bound cum = %d, want 3", st.Buckets[len(st.Buckets)-1])
	}
	// Empty timers omit buckets (keeps the JSON round trip exact).
	if empty := (&Registry{timers: map[string]*timer{}}).Snapshot().Timers["x"]; empty.Buckets != nil {
		t.Errorf("empty timer has buckets: %v", empty.Buckets)
	}
}

func TestMetricsContentNegotiation(t *testing.T) {
	r := promFixture()
	mux := NewServeMux(r)

	// No Accept header → JSON (backwards compatible).
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "json") {
		t.Errorf("default content type = %q", ct)
	}

	// A Prometheus scrape Accept → text exposition.
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text;version=1.0.0,text/plain;version=0.0.4;q=0.5,*/*;q=0.1")
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "seldon_http_requests_total 42") {
		t.Errorf("negotiated scrape missing counter:\n%s", rec.Body.String())
	}

	// text/plain with q=0 explicitly refuses the type: a pre-existing
	// JSON client sending it must keep getting JSON, not the exposition.
	req = httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain;q=0, application/json")
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "json") {
		t.Errorf("q=0 content type = %q, want JSON", ct)
	}

	// A bare text/plain (no parameters) still negotiates to Prometheus.
	req = httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Header().Get("Content-Type") != PromContentType {
		t.Errorf("bare text/plain content type = %q", rec.Header().Get("Content-Type"))
	}

	// /metrics.prom is unconditional.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics.prom", nil))
	if rec.Header().Get("Content-Type") != PromContentType {
		t.Errorf("/metrics.prom content type = %q", rec.Header().Get("Content-Type"))
	}
	if !strings.Contains(rec.Body.String(), "# TYPE seldon_http_check_latency_seconds histogram") {
		t.Errorf("/metrics.prom missing histogram:\n%s", rec.Body.String())
	}
}
