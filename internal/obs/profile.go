package obs

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path and returns a
// stop function that ends profiling and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile runs a GC and writes the heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}
