package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Logger writes structured, stage-oriented progress lines:
//
//	[  0.123s] stage.parse files=200 dur=87ms errors=0
//
// Keys and values alternate in the kv list; odd trailing values are
// printed bare. A nil *Logger discards everything.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	start time.Time
}

// NewLogger returns a logger writing to w, timestamped relative to now.
func NewLogger(w io.Writer) *Logger {
	return &Logger{w: w, start: time.Now()}
}

// Log writes one line for a stage with alternating key/value pairs.
func (l *Logger) Log(stage string, kv ...any) {
	if l == nil {
		return
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		b.WriteByte(' ')
		if i+1 < len(kv) {
			fmt.Fprintf(&b, "%v=%v", kv[i], kv[i+1])
		} else {
			fmt.Fprintf(&b, "%v", kv[i])
		}
	}
	l.mu.Lock()
	fmt.Fprintf(l.w, "[%8.3fs] %s%s\n", time.Since(l.start).Seconds(), stage, b.String())
	l.mu.Unlock()
}
