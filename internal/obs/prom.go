package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) of a snapshot.
//
// Naming: every metric gets the "seldon_" prefix and dots become
// underscores. Counters gain the conventional "_total" suffix; timers
// export as cumulative histograms in seconds ("_seconds" family with
// _bucket/_sum/_count series) over the fixed log-spaced BucketBounds
// layout, so a scraper's histogram_quantile() yields honest tail
// quantiles. Output is fully sorted and deterministic — the format is
// pinned by a golden test.

// PromContentType is the Content-Type of the exposition.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Prom renders the snapshot in the Prometheus text format. Traces have
// no Prometheus shape and are omitted (they stay in the JSON snapshot
// and /debug/traces).
func (s *Snapshot) Prom() []byte {
	var b strings.Builder
	for _, k := range sortedKeys(s.Counters) {
		name := promName(k) + "_total"
		fmt.Fprintf(&b, "# HELP %s counter %s\n# TYPE %s counter\n%s %d\n",
			name, k, name, name, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		name := promName(k)
		fmt.Fprintf(&b, "# HELP %s gauge %s\n# TYPE %s gauge\n%s %s\n",
			name, k, name, name, promFloat(s.Gauges[k]))
	}
	bounds := BucketBounds()
	for _, k := range sortedKeys(s.Timers) {
		t := s.Timers[k]
		name := promName(k) + "_seconds"
		fmt.Fprintf(&b, "# HELP %s timer %s\n# TYPE %s histogram\n", name, k, name)
		for i, bound := range bounds {
			var cum int64
			if i < len(t.Buckets) {
				cum = t.Buckets[i]
			}
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, promFloat(bound), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, t.Count)
		fmt.Fprintf(&b, "%s_sum %s\n", name, promFloat(t.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", name, t.Count)
	}
	return []byte(b.String())
}

// promName sanitizes a dotted metric name into the Prometheus
// identifier charset under the seldon_ namespace.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("seldon_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
