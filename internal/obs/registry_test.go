package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := New()
	r.Add("files", 0) // materializes at zero
	r.Add("files", 3)
	r.Add("files", 2)
	r.Set("vars", 17.5)
	r.Set("vars", 18)
	s := r.Snapshot()
	if got := s.Counters["files"]; got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if got := s.Gauges["vars"]; got != 18 {
		t.Errorf("gauge = %v, want 18", got)
	}
}

func TestAddZeroMaterializesCounter(t *testing.T) {
	r := New()
	r.Add(CounterParseErrors, 0)
	s := r.Snapshot()
	if v, ok := s.Counters[CounterParseErrors]; !ok || v != 0 {
		t.Fatalf("counter not materialized: %v (present=%v)", v, ok)
	}
}

func TestTimerStatsExactAndQuantiles(t *testing.T) {
	r := New()
	// 1..1000 in a scrambled but deterministic order.
	n := 1000
	for i := 0; i < n; i++ {
		v := float64((i*379)%n + 1)
		r.Observe("lat", v)
	}
	st := r.Snapshot().Timers["lat"]
	if st.Count != int64(n) {
		t.Errorf("count = %d, want %d", st.Count, n)
	}
	if want := float64(n*(n+1)) / 2; st.Sum != want {
		t.Errorf("sum = %v, want %v", st.Sum, want)
	}
	if st.Min != 1 || st.Max != float64(n) {
		t.Errorf("min/max = %v/%v, want 1/%d", st.Min, st.Max, n)
	}
	if math.Abs(st.P50-500) > 25 {
		t.Errorf("p50 = %v, want ~500", st.P50)
	}
	if math.Abs(st.P95-950) > 25 {
		t.Errorf("p95 = %v, want ~950", st.P95)
	}
}

func TestTimerDecimationKeepsQuantilesUsable(t *testing.T) {
	r := New()
	n := 100_000 // far beyond maxTimerSamples → several stride doublings
	for i := 0; i < n; i++ {
		r.Observe("lat", float64((i*7919)%n))
	}
	r.mu.Lock()
	sampleLen := len(r.timers["lat"].sample)
	r.mu.Unlock()
	if sampleLen > maxTimerSamples {
		t.Fatalf("sample grew past cap: %d > %d", sampleLen, maxTimerSamples)
	}
	st := r.Snapshot().Timers["lat"]
	if st.Count != int64(n) {
		t.Errorf("count = %d, want %d", st.Count, n)
	}
	// Decimated quantiles stay within a few percent of truth.
	if math.Abs(st.P50-float64(n)/2) > 0.05*float64(n) {
		t.Errorf("p50 = %v, want ~%v", st.P50, n/2)
	}
	if math.Abs(st.P95-0.95*float64(n)) > 0.05*float64(n) {
		t.Errorf("p95 = %v, want ~%v", st.P95, int(0.95*float64(n)))
	}
}

func TestTraceAppendAndCap(t *testing.T) {
	r := New()
	n := 3 * maxTracePoints
	for i := 0; i < n; i++ {
		r.AppendTrace("conv", int64(i), map[string]float64{"obj": float64(n - i)})
	}
	pts := r.Snapshot().Traces["conv"]
	if len(pts) == 0 || len(pts) > maxTracePoints {
		t.Fatalf("trace length %d, want in (0, %d]", len(pts), maxTracePoints)
	}
	if pts[0].Step != 0 {
		t.Errorf("first step = %d, want 0", pts[0].Step)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Step <= pts[i-1].Step {
			t.Fatalf("steps not increasing at %d: %d then %d", i, pts[i-1].Step, pts[i].Step)
		}
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Add("c", 1)
	r.Set("g", 2)
	r.Observe("t", 3)
	r.ObserveDuration("t", time.Second)
	r.AppendTrace("tr", 1, nil)
	if d := r.Start("span").End(); d != 0 {
		t.Errorf("nil span elapsed = %v, want 0", d)
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Timers)+len(s.Traces) != 0 {
		t.Errorf("nil snapshot not empty: %+v", s)
	}
	path := filepath.Join(t.TempDir(), "m.json")
	if err := r.WriteJSON(path); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Add("parse.errors", 4)
	r.Set("constraints.vars", 123)
	for i := 1; i <= 10; i++ {
		r.Observe("stage.solve", float64(i))
	}
	r.AppendTrace(TraceSolver, 1, map[string]float64{"objective": 2.5, "l1": 0.5})
	want := r.Snapshot()
	data, err := want.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, data)
	}
	if !reflect.DeepEqual(*want, got) {
		t.Errorf("round trip mismatch:\nwant %+v\ngot  %+v", *want, got)
	}
}

func TestSnapshotText(t *testing.T) {
	r := New()
	r.Add("parse.errors", 1)
	r.Set("constraints.vars", 9)
	r.Observe("stage.parse", 0.25)
	r.AppendTrace(TraceSolver, 1, nil)
	txt := r.Snapshot().Text()
	for _, want := range []string{
		"counter parse.errors 1",
		"gauge constraints.vars 9",
		"timer stage.parse count=1",
		"trace solver.convergence points=1",
	} {
		if !strings.Contains(txt, want) {
			t.Errorf("text missing %q:\n%s", want, txt)
		}
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := New()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Add("ops", 1)
				r.Set("last", float64(i))
				r.Observe("lat", float64(i))
				r.AppendTrace("tr", int64(i), map[string]float64{"v": float64(w)})
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counters["ops"]; got != workers*per {
		t.Errorf("ops = %d, want %d", got, workers*per)
	}
	if got := s.Timers["lat"].Count; got != workers*per {
		t.Errorf("lat count = %d, want %d", got, workers*per)
	}
}

func TestSpanRecordsDuration(t *testing.T) {
	r := New()
	sp := r.Start("stage.solve")
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 {
		t.Errorf("elapsed = %v, want > 0", d)
	}
	st := r.Snapshot().Timers["stage.solve"]
	if st.Count != 1 || st.Sum <= 0 {
		t.Errorf("timer = %+v, want one positive sample", st)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	r := New()
	r.Add("parse.errors", 2)
	mux := NewServeMux(r)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if s.Counters["parse.errors"] != 2 {
		t.Errorf("snapshot counter = %d, want 2", s.Counters["parse.errors"])
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics.txt", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "counter parse.errors 2") {
		t.Errorf("/metrics.txt status=%d body=%q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Errorf("/debug/pprof/ status = %d", rec.Code)
	}
}

func TestLoggerFormat(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b)
	l.Log("stage.parse", "files", 3, "errors", 0)
	l.Log("bare")
	out := b.String()
	if !strings.Contains(out, "stage.parse files=3 errors=0") {
		t.Errorf("log line malformed: %q", out)
	}
	if !strings.Contains(out, "bare") {
		t.Errorf("bare line missing: %q", out)
	}
	var nilL *Logger
	nilL.Log("ignored", "k", "v") // must not panic
}
