package obs

import (
	"errors"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"strconv"
	"strings"
)

// acceptsProm reports whether an Accept header asks for the Prometheus
// text exposition: a text/plain or application/openmetrics-text media
// range with a nonzero q-value. It parses media ranges rather than
// substring-matching, because "text/plain;q=0" explicitly refuses the
// type — a client sending it must keep getting the JSON snapshot.
func acceptsProm(accept string) bool {
	for _, rng := range strings.Split(accept, ",") {
		params := strings.Split(rng, ";")
		mediaType := strings.ToLower(strings.TrimSpace(params[0]))
		if mediaType != "text/plain" && mediaType != "application/openmetrics-text" {
			continue
		}
		q := 1.0
		for _, p := range params[1:] {
			if v, ok := strings.CutPrefix(strings.ToLower(strings.TrimSpace(p)), "q="); ok {
				if f, err := strconv.ParseFloat(v, 64); err == nil {
					q = f
				}
			}
		}
		if q > 0 {
			return true
		}
	}
	return false
}

// Handler serves the registry's snapshot, content-negotiated: a
// Prometheus scrape (an Accept media range of text/plain or
// application/openmetrics-text with nonzero q) gets the text
// exposition, everything else the JSON snapshot (nil registry → empty
// snapshot, still valid either way).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if acceptsProm(req.Header.Get("Accept")) {
			PromHandler(r).ServeHTTP(w, req)
			return
		}
		data, err := r.Snapshot().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(data, '\n'))
	})
}

// PromHandler serves the registry's Prometheus text exposition
// unconditionally — the scrape target for setups that want an explicit
// path (/metrics.prom) instead of content negotiation.
func PromHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		w.Write(r.Snapshot().Prom())
	})
}

// NewServeMux builds the operator mux: /metrics (JSON, or Prometheus
// text for scrapers via content negotiation), /metrics.prom (always
// Prometheus text), /metrics.txt (plain text), and the standard
// /debug/pprof/ endpoints.
func NewServeMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.Handle("/metrics.prom", PromHandler(r))
	mux.HandleFunc("/metrics.txt", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(r.Snapshot().Text()))
	})
	mux.HandleFunc("/debug/pprof/", netpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	return mux
}

// Serve listens on addr and serves the operator mux in a background
// goroutine, returning the bound server (Addr is resolved, so ":0"
// callers can discover the port). Bind failures — a busy port, a bad
// address — are returned synchronously so callers fail fast at startup.
// A Serve failure after a successful bind lands on the returned error
// channel, which is closed when the listener stops (a clean Close/
// Shutdown delivers no error).
func Serve(addr string, r *Registry) (*http.Server, <-chan error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: NewServeMux(r)}
	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
		close(errc)
	}()
	return srv, errc, nil
}
