package obs

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

func TestServeLifecycle(t *testing.T) {
	reg := New()
	reg.Add("test.counter", 7)
	srv, errc, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["test.counter"] != 7 {
		t.Errorf("counter over HTTP = %d", snap.Counters["test.counter"])
	}

	// A clean Close delivers no error: the channel just closes.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err, ok := <-errc:
		if ok && err != nil {
			t.Errorf("clean close delivered error: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("error channel not closed after Close")
	}
}

func TestServeFailsFastOnBusyPort(t *testing.T) {
	srv, _, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// The second bind must fail synchronously — this is the startup
	// fail-fast contract seldond and the CLIs rely on.
	if _, _, err := Serve(srv.Addr, nil); err == nil {
		t.Fatal("bind on busy port succeeded")
	}
}
