package obs

import (
	"testing"
	"time"
)

// The nil-registry path is the one every pipeline stage pays when no
// sink is attached; it must stay within noise of free.

func BenchmarkSpanNilRegistry(b *testing.B) {
	var r *Registry
	for i := 0; i < b.N; i++ {
		r.Start("stage.solve").End()
	}
}

func BenchmarkSpanLiveRegistry(b *testing.B) {
	r := New()
	for i := 0; i < b.N; i++ {
		r.Start("stage.solve").End()
	}
}

func BenchmarkObserveNilRegistry(b *testing.B) {
	var r *Registry
	for i := 0; i < b.N; i++ {
		r.ObserveDuration("file.parse", time.Microsecond)
	}
}

func BenchmarkObserveLiveRegistry(b *testing.B) {
	r := New()
	for i := 0; i < b.N; i++ {
		r.ObserveDuration("file.parse", time.Microsecond)
	}
}

func BenchmarkCounterLiveRegistry(b *testing.B) {
	r := New()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Add("ops", 1)
		}
	})
}
