// Package merlin implements the paper's baseline: Merlin-style taint
// specification inference with factor graphs (§6), adapted to Python.
//
// Differences from Seldon, following the paper's adaptation:
//   - events are represented by their most specific representation only
//     (no backoff, §6.2);
//   - the information-flow beliefs are Fig. 6's four constraint shapes,
//     which restrict the role of specific nodes rather than asserting the
//     existence of some node with a role;
//   - inference is probabilistic (loopy BP or Gibbs) over a factor graph
//     whose size grows with the number of flow triples — the scalability
//     bottleneck reproduced in Table 2.
//
// Merlin may run on either the collapsed (vertex-contracted, §6.4) or the
// uncollapsed propagation graph; callers collapse beforehand if desired.
package merlin

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"seldon/internal/factorgraph"
	"seldon/internal/propgraph"
	"seldon/internal/spec"
)

// Options configures the baseline.
type Options struct {
	// WViolate and WOK are the factor scores for assignments that violate
	// or respect a Fig. 6 belief. Defaults 0.1 / 0.9.
	WViolate, WOK float64
	// MaxFactors aborts construction when the factor count exceeds the
	// bound, reproducing the "infeasible on big code" outcome without
	// burning hours. 0 means unlimited.
	MaxFactors int
	// MaxTriples caps Fig. 6a triple enumeration per component (0 = all).
	MaxTriples int
	// Inference selects the engine.
	Inference Engine
	// BP and Gibbs tune the engines.
	BP    factorgraph.BPOptions
	Gibbs factorgraph.GibbsOptions
	// Seed for Gibbs sampling; default 1.
	RandSeed int64
}

// Engine selects the inference algorithm.
type Engine int

// Inference engines.
const (
	BeliefPropagation Engine = iota
	GibbsSampling
)

func (o Options) withDefaults() Options {
	if o.WViolate == 0 {
		o.WViolate = 0.1
	}
	if o.WOK == 0 {
		o.WOK = 0.9
	}
	if o.RandSeed == 0 {
		o.RandSeed = 1
	}
	return o
}

// ErrTooLarge is returned when factor construction exceeds MaxFactors.
type ErrTooLarge struct {
	Factors int
	Limit   int
}

func (e *ErrTooLarge) Error() string {
	return fmt.Sprintf("merlin: factor graph exceeds limit (%d > %d factors): inference infeasible", e.Factors, e.Limit)
}

// Result is the outcome of a Merlin run.
type Result struct {
	// Marginals[eventID][role] is the probability of the event having the
	// role (NaN-free; 0 for non-candidates).
	Marginals [][3]float64
	// Candidates counts events that are candidates for each role.
	Candidates [3]int
	// NumFactors is the size of the factor graph.
	NumFactors int
	// InferenceTime covers graph construction plus inference.
	InferenceTime time.Duration
	Converged     bool

	graph *propgraph.Graph
}

// Prediction is a (event, role) whose marginal passed a threshold.
type Prediction struct {
	EventID  int
	Role     propgraph.Role
	Rep      string
	Marginal float64
}

// Infer builds the Merlin factor graph for g and runs inference. The seed
// specification pins hard priors (§6.3); its blacklist removes candidates.
func Infer(g *propgraph.Graph, seed *spec.Spec, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	start := time.Now()

	// Variable layout: var(event, role) = 3*event + role, allocated only
	// for candidate roles; non-candidates map to -1.
	varOf := make([][3]int, len(g.Events))
	numVars := 0
	res := &Result{Marginals: make([][3]float64, len(g.Events)), graph: g}
	for i, e := range g.Events {
		for r := range varOf[i] {
			varOf[i][r] = -1
		}
		if e.NumReps() == 0 || seed.Blacklisted(e.Rep(0)) {
			continue
		}
		for _, role := range propgraph.Roles() {
			if e.Roles.Has(role) {
				varOf[i][role] = numVars
				numVars++
				res.Candidates[role]++
			}
		}
	}

	fg := &factorgraph.Graph{NumVars: numVars}
	addFactor := func(f factorgraph.Factor) error {
		if err := fg.AddFactor(f); err != nil {
			return err
		}
		if opts.MaxFactors > 0 && len(fg.Factors) > opts.MaxFactors {
			return &ErrTooLarge{Factors: len(fg.Factors), Limit: opts.MaxFactors}
		}
		return nil
	}

	// Reachability lists, computed once and shared by the prior and
	// flow-factor construction.
	reach := &reachability{
		fwd:  make([][]int, len(g.Events)),
		back: make([][]int, len(g.Events)),
	}
	for id := range g.Events {
		reach.fwd[id] = g.ForwardReachable(id)
		reach.back[id] = g.BackwardReachable(id)
	}

	// Priors (§6.3): hard priors for seeded reps; 0.5 for source/sink
	// candidates (omitted: a uniform unary factor is a no-op); sanitizer
	// prior from the fraction of source→·→sink flows through the node.
	if err := addPriors(g, seed, varOf, reach, addFactor); err != nil {
		return res, err
	}
	// Fig. 6 information-flow factors.
	if err := addFlowFactors(g, varOf, reach, addFactor, opts); err != nil {
		return res, err
	}

	res.NumFactors = len(fg.Factors)
	switch opts.Inference {
	case GibbsSampling:
		marg := fg.Gibbs(opts.Gibbs, rand.New(rand.NewSource(opts.RandSeed)))
		res.fill(varOf, marg)
		res.Converged = true
	default:
		bp := fg.BeliefPropagation(opts.BP)
		res.fill(varOf, bp.Marginals)
		res.Converged = bp.Converged
	}
	res.InferenceTime = time.Since(start)
	return res, nil
}

func (r *Result) fill(varOf [][3]int, marg []float64) {
	for i := range varOf {
		for role := 0; role < 3; role++ {
			if v := varOf[i][role]; v >= 0 {
				r.Marginals[i][role] = marg[v]
			}
		}
	}
}

// Predict returns the events whose marginal for a role passes threshold,
// sorted by descending marginal.
func (r *Result) Predict(threshold float64) []Prediction {
	var out []Prediction
	for id, m := range r.Marginals {
		for _, role := range propgraph.Roles() {
			if m[role] >= threshold && r.graph.Events[id].Roles.Has(role) && r.graph.Events[id].NumReps() > 0 {
				out = append(out, Prediction{
					EventID: id, Role: role,
					Rep:      r.graph.Events[id].Rep(0),
					Marginal: m[role],
				})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Marginal > out[j].Marginal })
	return out
}

// TopK returns the k highest-marginal predictions for one role.
func (r *Result) TopK(role propgraph.Role, k int) []Prediction {
	var out []Prediction
	for id, m := range r.Marginals {
		if r.graph.Events[id].Roles.Has(role) && r.graph.Events[id].NumReps() > 0 {
			out = append(out, Prediction{EventID: id, Role: role,
				Rep: r.graph.Events[id].Rep(0), Marginal: m[role]})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Marginal > out[j].Marginal })
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// reachability caches per-event forward and backward reachable sets.
type reachability struct {
	fwd, back [][]int
}

func addPriors(g *propgraph.Graph, seed *spec.Spec, varOf [][3]int,
	reach *reachability, add func(factorgraph.Factor) error) error {
	// Reachability counts for the sanitizer prior. Hand-labeled events
	// skip the flow prior — their hard prior is authoritative and the two
	// would zero out the factor product.
	for id, e := range g.Events {
		seeded := e.NumReps() > 0 && seed.RolesOf(e.Rep(0)) != 0
		if !seeded && varOf[id][propgraph.Sanitizer] >= 0 {
			fromSrc, total := 0, 0
			for _, u := range reach.back[id] {
				total++
				if varOf[u][propgraph.Source] >= 0 {
					fromSrc++
				}
			}
			toSnk, totalOut := 0, 0
			for _, t := range reach.fwd[id] {
				totalOut++
				if varOf[t][propgraph.Sink] >= 0 {
					toSnk++
				}
			}
			prior := 0.5
			if total > 0 && totalOut > 0 {
				prior = float64(fromSrc) / float64(total) * float64(toSnk) / float64(totalOut)
			}
			// Keep the prior a soft belief, never hard evidence.
			if prior < 0.01 {
				prior = 0.01
			} else if prior > 0.95 {
				prior = 0.95
			}
			if err := add(factorgraph.UnaryFactor(varOf[id][propgraph.Sanitizer], 1-prior, prior)); err != nil {
				return err
			}
		}
		// Hard priors for hand-labeled events (most specific rep only).
		if e.NumReps() == 0 {
			continue
		}
		roles := seed.RolesOf(e.Rep(0))
		if roles == 0 {
			continue
		}
		for _, role := range propgraph.Roles() {
			v := varOf[id][role]
			if v < 0 {
				continue
			}
			if roles.Has(role) {
				if err := add(factorgraph.UnaryFactor(v, 0, 1)); err != nil {
					return err
				}
			} else if err := add(factorgraph.UnaryFactor(v, 1, 0)); err != nil {
				return err
			}
		}
	}
	return nil
}

// addFlowFactors adds the Fig. 6 beliefs.
func addFlowFactors(g *propgraph.Graph, varOf [][3]int, reach *reachability,
	add func(factorgraph.Factor) error, opts Options) error {
	lo, hi := opts.WViolate, opts.WOK

	// Fig. 6a: flow u ⇝ s ⇝ t with candidates (source, sanitizer, sink):
	// if u is a source and t is a sink, s should be a sanitizer.
	table6a := make([]float64, 8)
	for idx := range table6a {
		u, s, t := idx&1 == 1, idx&2 == 2, idx&4 == 4
		if u && t && !s {
			table6a[idx] = lo
		} else {
			table6a[idx] = hi
		}
	}
	// Pairwise "downstream may not repeat the role" beliefs (Fig. 6b-d):
	// index bit0 = upstream var, bit1 = downstream var.
	tableNotBoth := []float64{hi, hi, hi, lo}

	triples := 0
	for s := range g.Events {
		if varOf[s][propgraph.Sanitizer] < 0 {
			continue
		}
		backs := reach.back[s]
		fwds := reach.fwd[s]
		for _, u := range backs {
			if varOf[u][propgraph.Source] < 0 {
				continue
			}
			for _, t := range fwds {
				if varOf[t][propgraph.Sink] < 0 {
					continue
				}
				if opts.MaxTriples > 0 && triples >= opts.MaxTriples {
					break
				}
				triples++
				if err := add(factorgraph.Factor{
					Vars: []int{varOf[u][propgraph.Source],
						varOf[s][propgraph.Sanitizer],
						varOf[t][propgraph.Sink]},
					Table: table6a,
				}); err != nil {
					return err
				}
			}
		}
	}

	// Fig. 6b/6c/6d over flow pairs u ⇝ w.
	for u := range g.Events {
		for _, w := range reach.fwd[u] {
			// 6b: sanitizer flows into w ⇒ w unlikely a sanitizer.
			if varOf[u][propgraph.Sanitizer] >= 0 && varOf[w][propgraph.Sanitizer] >= 0 {
				if err := add(factorgraph.Factor{
					Vars:  []int{varOf[u][propgraph.Sanitizer], varOf[w][propgraph.Sanitizer]},
					Table: tableNotBoth,
				}); err != nil {
					return err
				}
			}
			// 6c: source flows into w ⇒ w unlikely a source.
			if varOf[u][propgraph.Source] >= 0 && varOf[w][propgraph.Source] >= 0 {
				if err := add(factorgraph.Factor{
					Vars:  []int{varOf[u][propgraph.Source], varOf[w][propgraph.Source]},
					Table: tableNotBoth,
				}); err != nil {
					return err
				}
			}
			// 6d: w flows into a sink ⇒ w unlikely a sink.
			if varOf[u][propgraph.Sink] >= 0 && varOf[w][propgraph.Sink] >= 0 {
				if err := add(factorgraph.Factor{
					Vars:  []int{varOf[u][propgraph.Sink], varOf[w][propgraph.Sink]},
					Table: tableNotBoth,
				}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
