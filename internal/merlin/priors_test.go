package merlin

import (
	"testing"

	"seldon/internal/propgraph"
	"seldon/internal/pytoken"
	"seldon/internal/spec"
)

func TestSanitizerPriorReflectsFlowFraction(t *testing.T) {
	// Event m1 sits on a source→sink path (high prior); event m2 hangs
	// off to the side with no sink downstream (low prior). With no seed
	// at all, the priors alone separate their sanitizer marginals.
	g := propgraph.New()
	src := g.AddEvent(propgraph.KindRead, "t.py", pytoken.Pos{}, []string{"in.data"})
	m1 := g.AddEvent(propgraph.KindCall, "t.py", pytoken.Pos{}, []string{"m1()"})
	snk := g.AddEvent(propgraph.KindCall, "t.py", pytoken.Pos{}, []string{"snk()"})
	m2 := g.AddEvent(propgraph.KindCall, "t.py", pytoken.Pos{}, []string{"m2()"})
	dead := g.AddEvent(propgraph.KindRead, "t.py", pytoken.Pos{}, []string{"x.y"})
	g.AddEdge(src.ID, m1.ID)
	g.AddEdge(m1.ID, snk.ID)
	g.AddEdge(dead.ID, m2.ID) // m2 has no downstream sink

	res, err := Infer(g, spec.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	p1 := res.Marginals[m1.ID][propgraph.Sanitizer]
	p2 := res.Marginals[m2.ID][propgraph.Sanitizer]
	if p1 <= p2 {
		t.Errorf("on-path sanitizer marginal (%v) should exceed off-path (%v)", p1, p2)
	}
}

func TestSeedHardPriorWinsOverFlowEvidence(t *testing.T) {
	// Even though mid() sits between a source and sink (which raises its
	// sanitizer belief), seeding it as a SINK pins the sanitizer to 0.
	g := chain("src()", "mid()", "snk()")
	seed := spec.New()
	seed.Add(propgraph.Source, "src()")
	seed.Add(propgraph.Sink, "snk()")
	seed.Add(propgraph.Sink, "mid()")
	res, err := Infer(g, seed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m := res.Marginals[1][propgraph.Sanitizer]; m > 0.01 {
		t.Errorf("seeded sink's sanitizer marginal = %v, want 0", m)
	}
	if m := res.Marginals[1][propgraph.Sink]; m < 0.99 {
		t.Errorf("seeded sink marginal = %v, want 1", m)
	}
}

func TestEventsWithoutRepsIgnored(t *testing.T) {
	g := propgraph.New()
	g.AddEvent(propgraph.KindCall, "t.py", pytoken.Pos{}, nil)
	g.AddEvent(propgraph.KindCall, "t.py", pytoken.Pos{}, []string{"f()"})
	res, err := Infer(g, spec.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates[propgraph.Source] != 1 {
		t.Errorf("candidates = %v, rep-less event should be skipped", res.Candidates)
	}
	if res.Marginals[0][propgraph.Source] != 0 {
		t.Error("rep-less event has a marginal")
	}
}
