package merlin

import (
	"errors"
	"testing"

	"seldon/internal/dataflow"
	"seldon/internal/propgraph"
	"seldon/internal/pytoken"
	"seldon/internal/spec"
)

func chain(reps ...string) *propgraph.Graph {
	g := propgraph.New()
	prev := -1
	for _, r := range reps {
		e := g.AddEvent(propgraph.KindCall, "t.py", pytoken.Pos{Line: 1}, []string{r})
		if prev >= 0 {
			g.AddEdge(prev, e.ID)
		}
		prev = e.ID
	}
	return g
}

func TestInferSanitizerBetweenSeededEndpoints(t *testing.T) {
	g := chain("src()", "mid()", "sink()")
	seed := spec.New()
	seed.Add(propgraph.Source, "src()")
	seed.Add(propgraph.Sink, "sink()")
	res, err := Infer(g, seed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m := res.Marginals[1][propgraph.Sanitizer]; m < 0.6 {
		t.Errorf("sanitizer marginal = %v, want >= 0.6", m)
	}
	// Seeded roles stay pinned.
	if m := res.Marginals[0][propgraph.Source]; m < 0.99 {
		t.Errorf("seeded source marginal = %v", m)
	}
	if m := res.Marginals[0][propgraph.Sink]; m > 0.01 {
		t.Errorf("seeded source's sink marginal = %v, want 0", m)
	}
}

func TestGibbsEngineAgreesOnDirection(t *testing.T) {
	g := chain("src()", "mid()", "sink()")
	seed := spec.New()
	seed.Add(propgraph.Source, "src()")
	seed.Add(propgraph.Sink, "sink()")
	res, err := Infer(g, seed, Options{Inference: GibbsSampling, RandSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if m := res.Marginals[1][propgraph.Sanitizer]; m < 0.55 {
		t.Errorf("gibbs sanitizer marginal = %v, want >= 0.55", m)
	}
}

func TestDownstreamRoleSuppression(t *testing.T) {
	// Fig. 6c: events downstream of a seeded source should have lower
	// source marginals than the pinned source.
	g := chain("src()", "later()")
	seed := spec.New()
	seed.Add(propgraph.Source, "src()")
	res, err := Infer(g, seed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m := res.Marginals[1][propgraph.Source]; m > 0.35 {
		t.Errorf("downstream source marginal = %v, want suppressed", m)
	}
}

func TestCandidateCounts(t *testing.T) {
	g := propgraph.New()
	g.AddEvent(propgraph.KindCall, "t.py", pytoken.Pos{}, []string{"a()"})
	g.AddEvent(propgraph.KindRead, "t.py", pytoken.Pos{}, []string{"x.y"})
	g.AddEvent(propgraph.KindParam, "t.py", pytoken.Pos{}, []string{"f(param p)"})
	res, err := Infer(g, spec.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates[propgraph.Source] != 3 {
		t.Errorf("source candidates = %d, want 3", res.Candidates[propgraph.Source])
	}
	if res.Candidates[propgraph.Sanitizer] != 1 || res.Candidates[propgraph.Sink] != 1 {
		t.Errorf("candidates = %v", res.Candidates)
	}
}

func TestBlacklistRemovesCandidates(t *testing.T) {
	g := chain("result.append()", "sink()")
	seed := spec.New()
	seed.AddBlacklist("*.append()")
	res, err := Infer(g, seed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates[propgraph.Source] != 1 {
		t.Errorf("source candidates = %d, want 1 (append blacklisted)", res.Candidates[propgraph.Source])
	}
}

func TestMaxFactorsAborts(t *testing.T) {
	// A dense chain exceeds a tiny factor budget.
	g := chain("a()", "b()", "c()", "d()", "e()", "f()")
	_, err := Infer(g, spec.New(), Options{MaxFactors: 3})
	var tooLarge *ErrTooLarge
	if !errors.As(err, &tooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestPredictAndTopK(t *testing.T) {
	g := chain("src()", "mid()", "sink()")
	seed := spec.New()
	seed.Add(propgraph.Source, "src()")
	seed.Add(propgraph.Sink, "sink()")
	res, err := Infer(g, seed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	preds := res.Predict(0.95)
	if len(preds) == 0 {
		t.Fatal("no predictions at 0.95")
	}
	for i := 1; i < len(preds); i++ {
		if preds[i].Marginal > preds[i-1].Marginal {
			t.Error("predictions not sorted")
		}
	}
	top := res.TopK(propgraph.Sanitizer, 2)
	if len(top) != 2 {
		t.Fatalf("topK = %d", len(top))
	}
	if top[0].Rep != "mid()" {
		t.Errorf("top sanitizer = %q, want mid()", top[0].Rep)
	}
}

func TestCollapsedVersusUncollapsed(t *testing.T) {
	// Fig. 8: in the collapsed graph the two san() events merge, creating
	// a spurious src -> san -> sink flow that lets Merlin infer the
	// sanitizer; the uncollapsed graph has no such triple.
	src := `def f():
    x = src()
    y = san(x)

def g():
    x = 1
    y = san(x)
    sink(y)
`
	g, err := dataflow.AnalyzeSource("t.py", src)
	if err != nil {
		t.Fatal(err)
	}
	seed := spec.New()
	seed.Add(propgraph.Source, "src()")
	seed.Add(propgraph.Sink, "sink()")

	collapsed := g.Collapse()
	resC, err := Infer(collapsed, seed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	resU, err := Infer(g, seed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sanMarginal := func(res *Result, pg *propgraph.Graph) float64 {
		best := 0.0
		for id, e := range pg.Events {
			if e.NumReps() > 0 && e.Rep(0) == "san()" {
				if m := res.Marginals[id][propgraph.Sanitizer]; m > best {
					best = m
				}
			}
		}
		return best
	}
	mc := sanMarginal(resC, collapsed)
	mu := sanMarginal(resU, g)
	if mc <= mu+0.05 {
		t.Errorf("collapsed marginal %v should exceed uncollapsed %v (spurious flow)", mc, mu)
	}
}

func TestFactorCountGrowsSuperlinearly(t *testing.T) {
	// The scalability story of Table 2: doubling the chain length more
	// than doubles the number of factors (triple enumeration).
	count := func(n int) int {
		reps := make([]string, n)
		for i := range reps {
			reps[i] = "e()"
		}
		res, err := Infer(chain(reps...), spec.New(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.NumFactors
	}
	f10, f20 := count(10), count(20)
	if f20 < 4*f10 {
		t.Errorf("factors grew from %d to %d; expected superlinear growth", f10, f20)
	}
}
