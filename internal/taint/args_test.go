package taint

import (
	"testing"

	"seldon/internal/dataflow"
	"seldon/internal/propgraph"
	"seldon/internal/spec"
)

const wrongParamApp = `from flask import request
import webdb

def lookup():
    q = request.args.get('q')
    webdb.runquery('-safe-', timeout=q)

def search():
    q = request.args.get('q')
    webdb.runquery(q)
`

func argSpec(restrict bool) *spec.Spec {
	s := spec.New()
	s.Add(propgraph.Source, "flask.request.args.get()")
	s.Add(propgraph.Sink, "webdb.runquery()")
	if restrict {
		s.RestrictSinkArgs("webdb.runquery()", 0)
	}
	return s
}

func TestArgSensitiveSinkSuppressesWrongParameterFlow(t *testing.T) {
	g, err := dataflow.AnalyzeSource("app.py", wrongParamApp)
	if err != nil {
		t.Fatal(err)
	}
	// Unrestricted: both handlers are reported.
	if got := len(Analyze(g, argSpec(false))); got != 2 {
		t.Fatalf("unrestricted reports = %d, want 2", got)
	}
	// Restricted to position 0: only the dangerous flow in search().
	reports := Analyze(g, argSpec(true))
	if len(reports) != 1 {
		t.Fatalf("restricted reports = %d, want 1: %v", len(reports), reports)
	}
	if reports[0].SourcePos.Line != 9 {
		t.Errorf("report at line %d, want the search() handler", reports[0].SourcePos.Line)
	}
}

func TestReceiverFlowRespectsRestriction(t *testing.T) {
	src := `from flask import request

def f():
    q = request.args.get('q')
    q.dump('x')
`
	g, err := dataflow.AnalyzeSource("app.py", src)
	if err != nil {
		t.Fatal(err)
	}
	s := spec.New()
	s.Add(propgraph.Source, "flask.request.args.get()")
	s.Add(propgraph.Sink, "flask.request.args.get().dump()")
	// Receiver-only flow with the sink restricted to argument 0: the
	// taint enters through the receiver, so no report.
	s.RestrictSinkArgs("flask.request.args.get().dump()", 0)
	if got := len(Analyze(g, s)); got != 0 {
		t.Errorf("receiver flow reported despite @0 restriction: %d reports", got)
	}
	// Restricting to the receiver position reports it.
	s2 := spec.New()
	s2.Add(propgraph.Source, "flask.request.args.get()")
	s2.Add(propgraph.Sink, "flask.request.args.get().dump()")
	s2.RestrictSinkArgs("flask.request.args.get().dump()", propgraph.ArgReceiver)
	if got := len(Analyze(g, s2)); got != 1 {
		t.Errorf("receiver-restricted sink reports = %d, want 1", got)
	}
}

func TestUnlabeledEdgeStaysSound(t *testing.T) {
	// Flow through a container loses the precise argument position; the
	// analyzer must still report (sound over-approximation).
	src := `from flask import request
import webdb

def f():
    q = request.args.get('q')
    items = [q]
    for it in items:
        webdb.runquery(it, timeout=3)
`
	g, err := dataflow.AnalyzeSource("app.py", src)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(Analyze(g, argSpec(true))); got != 1 {
		t.Errorf("reports = %d, want 1", got)
	}
}

func TestSpecArgSyntaxRoundTrip(t *testing.T) {
	text := "i: webdb.runquery() @0,2\ni: os.system()\n"
	s, err := spec.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.SinkArgsOf("webdb.runquery()"); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("args = %v", got)
	}
	if s.SinkArgsOf("os.system()") != nil {
		t.Error("unrestricted sink has args")
	}
	s2, err := spec.Parse(s.Format())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, s.Format())
	}
	if got := s2.SinkArgsOf("webdb.runquery()"); len(got) != 2 {
		t.Errorf("round-trip args = %v", got)
	}
}

func TestSpecArgSyntaxErrors(t *testing.T) {
	if _, err := spec.Parse("i: f() @x\n"); err == nil {
		t.Error("bad position accepted")
	}
}
