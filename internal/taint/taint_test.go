package taint

import (
	"testing"

	"seldon/internal/dataflow"
	"seldon/internal/propgraph"
	"seldon/internal/spec"
)

const figure2 = `from yak.web import app
from flask import request
from werkzeug import secure_filename
import os

blog_dir = app.config['PATH']

@app.route('/media/', methods=['POST'])
def media():
    filename = request.files['f'].filename
    filename = secure_filename(filename)
    path = os.path.join(blog_dir, filename)
    if not os.path.exists(path):
        request.files['f'].save(path)
`

const figure2Unsanitized = `from flask import request
import os

@app.route('/media/', methods=['POST'])
def media():
    filename = request.files['f'].filename
    path = os.path.join('/srv', filename)
    request.files['f'].save(path)
`

func figSpec() *spec.Spec {
	s := spec.New()
	s.Add(propgraph.Source, "flask.request.files['f'].filename")
	s.Add(propgraph.Sanitizer, "werkzeug.secure_filename()")
	s.Add(propgraph.Sink, "flask.request.files['f'].save()")
	return s
}

func TestSanitizedFlowNotReported(t *testing.T) {
	g, err := dataflow.AnalyzeSource("app.py", figure2)
	if err != nil {
		t.Fatal(err)
	}
	reports := Analyze(g, figSpec())
	if len(reports) != 0 {
		t.Errorf("sanitized flow reported: %v", reports)
	}
}

func TestUnsanitizedFlowReported(t *testing.T) {
	g, err := dataflow.AnalyzeSource("app.py", figure2Unsanitized)
	if err != nil {
		t.Fatal(err)
	}
	reports := Analyze(g, figSpec())
	if len(reports) != 1 {
		t.Fatalf("reports = %d, want 1: %v", len(reports), reports)
	}
	r := reports[0]
	if r.SourceRep != "flask.request.files['f'].filename" {
		t.Errorf("source = %q", r.SourceRep)
	}
	if r.SinkRep != "flask.request.files['f'].save()" {
		t.Errorf("sink = %q", r.SinkRep)
	}
	if r.Category != PathTraversal {
		t.Errorf("category = %q, want path-traversal", r.Category)
	}
	if len(r.Path) < 2 || r.Path[0] != r.SourceID || r.Path[len(r.Path)-1] != r.SinkID {
		t.Errorf("witness path = %v", r.Path)
	}
}

func TestPartialSanitizationStillReported(t *testing.T) {
	// Only one of two paths is sanitized: the unsanitized one must be
	// found (the analyzer checks per path, unlike learning's Fig. 4c
	// which requires only one sanitized path).
	src := `from flask import request
from werkzeug import secure_filename

def f():
    name = request.files['f'].filename
    clean = secure_filename(name)
    request.files['f'].save(name)
`
	g, err := dataflow.AnalyzeSource("app.py", src)
	if err != nil {
		t.Fatal(err)
	}
	reports := Analyze(g, figSpec())
	if len(reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(reports))
	}
}

func TestRoleFromBackoffRep(t *testing.T) {
	// The spec names only the suffix representation; the event still
	// takes the role via its backoff options.
	s := spec.New()
	s.Add(propgraph.Source, "request.files['f'].filename")
	s.Add(propgraph.Sink, "request.files['f'].save()")
	g, err := dataflow.AnalyzeSource("app.py", figure2Unsanitized)
	if err != nil {
		t.Fatal(err)
	}
	reports := Analyze(g, s)
	if len(reports) != 1 {
		t.Fatalf("reports via backoff reps = %d, want 1", len(reports))
	}
}

func TestBlacklistSuppressesRole(t *testing.T) {
	s := figSpec()
	s.AddBlacklist("flask.request.files['f'].filename")
	s.AddBlacklist("request.files['f'].filename")
	s.AddBlacklist("files['f'].filename")
	g, err := dataflow.AnalyzeSource("app.py", figure2Unsanitized)
	if err != nil {
		t.Fatal(err)
	}
	if reports := Analyze(g, s); len(reports) != 0 {
		t.Errorf("blacklisted source still reported: %v", reports)
	}
}

func TestKindRestrictions(t *testing.T) {
	// A read event whose rep is (wrongly) listed as a sink must not act
	// as one — reads are source-only.
	src := `from flask import request

def f():
    x = request.args.get('q')
    y = x.data
`
	g, err := dataflow.AnalyzeSource("app.py", src)
	if err != nil {
		t.Fatal(err)
	}
	s := spec.New()
	s.Add(propgraph.Source, "flask.request.args.get()")
	s.Add(propgraph.Sink, "flask.request.args.get().data") // a read event
	if reports := Analyze(g, s); len(reports) != 0 {
		t.Errorf("read event acted as sink: %v", reports)
	}
}

func TestClassify(t *testing.T) {
	cases := map[string]Category{
		"MySQLdb.connect().cursor().execute()": SQLInjection,
		"os.system()":                          CommandInjection,
		"subprocess.call()":                    CommandInjection,
		"flask.render_template_string()":       XSS,
		"flask.Response()":                     XSS,
		"flask.send_file()":                    PathTraversal,
		"flask.redirect()":                     OpenRedirect,
		"builtins.eval()":                      CodeInjection,
		"mystery.thing()":                      GenericFlow,
	}
	for rep, want := range cases {
		if got := Classify(rep); got != want {
			t.Errorf("Classify(%q) = %q, want %q", rep, got, want)
		}
	}
}

func TestSummarize(t *testing.T) {
	reports := []Report{
		{File: "a.py", Category: XSS},
		{File: "a.py", Category: SQLInjection},
		{File: "b.py", Category: XSS},
	}
	s := Summarize(reports)
	if s.Total != 3 || s.Files != 2 || s.ByCategory[XSS] != 2 {
		t.Errorf("summary = %+v", s)
	}
}

func TestMultipleSinksFromOneSource(t *testing.T) {
	src := `from flask import request
import os

def f():
    q = request.args.get('cmd')
    os.system(q)
    db_execute(q)
`
	g, err := dataflow.AnalyzeSource("app.py", src)
	if err != nil {
		t.Fatal(err)
	}
	s := spec.New()
	s.Add(propgraph.Source, "flask.request.args.get()")
	s.Add(propgraph.Sink, "os.system()")
	s.Add(propgraph.Sink, "db_execute()")
	reports := Analyze(g, s)
	if len(reports) != 2 {
		t.Fatalf("reports = %d, want 2", len(reports))
	}
	// Deterministic order: by file, then source, then sink ID.
	if reports[0].SinkID > reports[1].SinkID {
		t.Error("reports not sorted")
	}
}
