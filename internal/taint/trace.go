package taint

import (
	"fmt"
	"strings"

	"seldon/internal/propgraph"
)

// Trace renders the report's witness path as a human-readable flow trace:
//
//	source  flask.request.args.get()            app.py:5:9
//	  ↓     textutil.titlecase()                app.py:6:9
//	sink    os.system()                         app.py:7:5
func (r *Report) Trace(g *propgraph.Graph) string {
	var b strings.Builder
	for i, id := range r.Path {
		if id < 0 || id >= len(g.Events) {
			continue
		}
		ev := g.Events[id]
		label := "  via "
		switch i {
		case 0:
			label = "source"
		case len(r.Path) - 1:
			label = "sink  "
		}
		fmt.Fprintf(&b, "%s  %-50s %s:%s\n", label, bestRep(ev), ev.File, ev.Pos)
	}
	return b.String()
}

// Dedupe collapses reports that share (source representation, sink
// representation), keeping the first (the input's deterministic order
// makes the kept witness stable). This is the "unique findings" view a
// reviewer triages, as opposed to the per-occurrence counts of Table 7.
func Dedupe(reports []Report) []Report {
	type key struct{ src, snk string }
	seen := make(map[key]bool)
	out := make([]Report, 0, len(reports))
	for i := range reports {
		k := key{reports[i].SourceRep, reports[i].SinkRep}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, reports[i])
	}
	return out
}

// FilterCategory keeps only reports of the given vulnerability class.
func FilterCategory(reports []Report, cat Category) []Report {
	var out []Report
	for i := range reports {
		if reports[i].Category == cat {
			out = append(out, reports[i])
		}
	}
	return out
}
