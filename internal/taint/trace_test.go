package taint

import (
	"strings"
	"testing"

	"seldon/internal/dataflow"
	"seldon/internal/propgraph"
	"seldon/internal/spec"
)

func TestTraceRendersWitnessPath(t *testing.T) {
	src := `from flask import request
import os

def f():
    q = request.args.get('cmd')
    line = prefix(q)
    os.system(line)
`
	g, err := dataflow.AnalyzeSource("app.py", src)
	if err != nil {
		t.Fatal(err)
	}
	s := spec.New()
	s.Add(propgraph.Source, "flask.request.args.get()")
	s.Add(propgraph.Sink, "os.system()")
	reports := Analyze(g, s)
	if len(reports) != 1 {
		t.Fatalf("reports = %d", len(reports))
	}
	trace := reports[0].Trace(g)
	for _, want := range []string{"source", "flask.request.args.get()", "prefix()", "sink", "os.system()", "app.py:"} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing %q:\n%s", want, trace)
		}
	}
	// Source first, sink last.
	lines := strings.Split(strings.TrimSpace(trace), "\n")
	if !strings.HasPrefix(lines[0], "source") || !strings.HasPrefix(lines[len(lines)-1], "sink") {
		t.Errorf("trace ordering wrong:\n%s", trace)
	}
}

func TestDedupe(t *testing.T) {
	reports := []Report{
		{File: "a.py", SourceRep: "s()", SinkRep: "k()"},
		{File: "b.py", SourceRep: "s()", SinkRep: "k()"},  // duplicate pair
		{File: "a.py", SourceRep: "s()", SinkRep: "k2()"}, // distinct sink
	}
	got := Dedupe(reports)
	if len(got) != 2 {
		t.Fatalf("deduped = %d, want 2", len(got))
	}
	if got[0].File != "a.py" {
		t.Error("dedupe must keep the first witness")
	}
}

func TestFilterCategory(t *testing.T) {
	reports := []Report{
		{Category: XSS}, {Category: SQLInjection}, {Category: XSS},
	}
	if got := FilterCategory(reports, XSS); len(got) != 2 {
		t.Errorf("filtered = %d", len(got))
	}
	if got := FilterCategory(reports, PathTraversal); len(got) != 0 {
		t.Errorf("filtered = %d, want 0", len(got))
	}
}
