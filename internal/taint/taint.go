// Package taint implements the static taint analyzer that consumes taint
// specifications (seed or learned) and flags unsanitized information flow
// from sources to sinks in propagation graphs (paper §3.4, §7.1).
package taint

import (
	"fmt"
	"sort"
	"strings"

	"seldon/internal/propgraph"
	"seldon/internal/pytoken"
	"seldon/internal/spec"
)

// Category classifies a report by the vulnerability class of its sink.
type Category string

// Vulnerability classes used in the paper's Q7/App. C.
const (
	SQLInjection     Category = "sql-injection"
	XSS              Category = "xss"
	PathTraversal    Category = "path-traversal"
	CommandInjection Category = "command-injection"
	CodeInjection    Category = "code-injection"
	OpenRedirect     Category = "open-redirect"
	GenericFlow      Category = "taint-flow"
)

// Report is one unsanitized source→sink flow.
type Report struct {
	File      string
	SourceID  int
	SinkID    int
	SourceRep string
	SinkRep   string
	SourcePos pytoken.Pos
	SinkPos   pytoken.Pos
	// Path is a witness event-ID path from source to sink that traverses
	// no sanitizer.
	Path     []int
	Category Category
}

func (r *Report) String() string {
	return fmt.Sprintf("%s:%s: unsanitized flow from %s (%s) to %s (%s) [%s]",
		r.File, r.SourcePos, r.SourceRep, r.SourcePos, r.SinkRep, r.SinkPos, r.Category)
}

// Analyze scans the propagation graph for flows from spec sources to spec
// sinks along paths that contain no spec sanitizer. An event takes a role
// when any of its representations carries that role in the specification
// and the event kind admits the role; blacklisted representations are
// ignored. Argument-sensitive sinks (spec.RestrictSinkArgs) are reported
// only when the tainted value enters through a dangerous position. One
// report is emitted per (source event, sink event) pair with a witness
// path.
func Analyze(g *propgraph.Graph, sp *spec.Spec) []Report {
	// Roles and the glob blacklist are resolved once per distinct symbol;
	// the per-event loops below are then pure array lookups.
	ix := sp.IndexSymbols(g.Syms)
	roles := assignRoles(g, ix)
	restr := sinkRestrictions(g, sp, ix, roles)
	var reports []Report
	for id := range g.Events {
		if !roles[id].Has(propgraph.Source) {
			continue
		}
		reports = append(reports, findFlows(g, roles, restr, id)...)
	}
	sort.SliceStable(reports, func(i, j int) bool {
		if reports[i].File != reports[j].File {
			return reports[i].File < reports[j].File
		}
		if reports[i].SourceID != reports[j].SourceID {
			return reports[i].SourceID < reports[j].SourceID
		}
		return reports[i].SinkID < reports[j].SinkID
	})
	return reports
}

// assignRoles maps each event to the roles its representations have in the
// specification.
func assignRoles(g *propgraph.Graph, ix *spec.SymIndex) []propgraph.RoleSet {
	roles := make([]propgraph.RoleSet, len(g.Events))
	for id, e := range g.Events {
		var rs propgraph.RoleSet
		for _, sym := range e.RepIDs {
			if ix.Blacklisted(sym) {
				continue
			}
			rs |= ix.Roles(sym)
		}
		// Respect kind restrictions: a read can only be a source.
		rs &= e.Roles
		roles[id] = rs
	}
	return roles
}

// sinkRestrictions computes, per sink event, the union of dangerous
// argument positions of its spec'd sink representations; a nil entry means
// the sink is unrestricted (any position is dangerous).
func sinkRestrictions(g *propgraph.Graph, sp *spec.Spec, ix *spec.SymIndex, roles []propgraph.RoleSet) [][]int {
	restr := make([][]int, len(g.Events))
	for id, e := range g.Events {
		if !roles[id].Has(propgraph.Sink) {
			continue
		}
		var positions []int
		restricted := true
		for i, sym := range e.RepIDs {
			if !ix.Roles(sym).Has(propgraph.Sink) || ix.Blacklisted(sym) {
				continue
			}
			args := sp.SinkArgsOf(e.Rep(i))
			if args == nil {
				restricted = false
				break
			}
			positions = append(positions, args...)
		}
		if restricted {
			restr[id] = positions
		}
	}
	return restr
}

// argAllowed reports whether flow over edge prev→id may trigger the sink
// at id under its argument restriction.
func argAllowed(g *propgraph.Graph, restr [][]int, prev, id int) bool {
	allowed := restr[id]
	if allowed == nil {
		return true // unrestricted sink
	}
	labels := g.EdgeArgs(prev, id)
	if labels == nil {
		return true // unlabeled edge: position unknown, stay sound
	}
	for _, l := range labels {
		for _, a := range allowed {
			if l == a {
				return true
			}
		}
	}
	return false
}

// findFlows runs a DFS from the source that never enters sanitizer events,
// reporting each sink reached with its witness path.
func findFlows(g *propgraph.Graph, roles []propgraph.RoleSet, restr [][]int, src int) []Report {
	var reports []Report
	visited := make(map[int]bool)
	var path []int
	var dfs func(id int)
	dfs = func(id int) {
		if visited[id] {
			return
		}
		visited[id] = true
		path = append(path, id)
		defer func() { path = path[:len(path)-1] }()
		if id != src && roles[id].Has(propgraph.Sanitizer) {
			// Sanitized beyond this point: this path is safe. Other paths
			// around the sanitizer are explored from other branches.
			return
		}
		if id != src && roles[id].Has(propgraph.Sink) &&
			argAllowed(g, restr, path[len(path)-2], id) {
			ev := g.Events[id]
			srcEv := g.Events[src]
			reports = append(reports, Report{
				File:      srcEv.File,
				SourceID:  src,
				SinkID:    id,
				SourceRep: bestRep(srcEv),
				SinkRep:   bestRep(ev),
				SourcePos: srcEv.Pos,
				SinkPos:   ev.Pos,
				Path:      append([]int(nil), path...),
				Category:  Classify(bestRep(ev)),
			})
			// Continue: the sink's output may flow onward to other sinks.
		}
		for _, nxt := range g.Succs(id) {
			dfs(nxt)
		}
	}
	dfs(src)
	return reports
}

func bestRep(e *propgraph.Event) string {
	if e.NumReps() == 0 {
		return fmt.Sprintf("<event %d>", e.ID)
	}
	return e.Rep(0)
}

// Classify maps a sink representation to a vulnerability class.
func Classify(sinkRep string) Category {
	r := strings.ToLower(sinkRep)
	switch {
	case strings.Contains(r, "execute()") || strings.Contains(r, "raw()") ||
		strings.Contains(r, "rawsql") || strings.Contains(r, "runquery"):
		return SQLInjection
	case strings.Contains(r, "system()") || strings.Contains(r, "popen") ||
		strings.Contains(r, "subprocess") || strings.Contains(r, "spawn") ||
		strings.Contains(r, "shell"):
		return CommandInjection
	case strings.Contains(r, "eval()") || strings.Contains(r, "exec()") ||
		strings.Contains(r, "compile()"):
		return CodeInjection
	case strings.Contains(r, "send_file") || strings.Contains(r, "send_from_directory") ||
		strings.Contains(r, "open()") || strings.Contains(r, ".write()") ||
		strings.Contains(r, "save()"):
		return PathTraversal
	case strings.Contains(r, "redirect"):
		return OpenRedirect
	case strings.Contains(r, "response") || strings.Contains(r, "markup") ||
		strings.Contains(r, "render") || strings.Contains(r, "html") ||
		strings.Contains(r, "mark_safe") || strings.Contains(r, "make_response"):
		return XSS
	default:
		return GenericFlow
	}
}

// Summary aggregates reports for Table 7-style output.
type Summary struct {
	Total      int
	ByCategory map[Category]int
	Files      int // distinct files with at least one report
}

// Summarize computes aggregate statistics over reports.
func Summarize(reports []Report) Summary {
	s := Summary{ByCategory: make(map[Category]int)}
	files := make(map[string]bool)
	for i := range reports {
		s.Total++
		s.ByCategory[reports[i].Category]++
		files[reports[i].File] = true
	}
	s.Files = len(files)
	return s
}
