// Package lp solves the relaxed linear constraint systems produced by
// taint-specification inference (paper §4.4).
//
// A problem is a set of soft constraints  L_i(x) ≤ R_i(x) + C  over
// variables box-constrained to [0,1], some of which are pinned to known
// values (the hand-labeled seed). The objective is the total hinge
// violation plus an L1 regularizer:
//
//	min Σ_i max(L_i(x) − R_i(x) − C, 0) + λ Σ_v x_v
//
// It is minimized by full-batch projected (sub)gradient descent with the
// Adam update rule (Kingma & Ba, 2014), reimplemented here from scratch;
// variables are projected back to [0,1] and known variables re-pinned
// after every step, exactly as the paper describes doing on top of
// TensorFlow's Adam optimizer.
package lp

import "math"

// Term is one linear summand: Coef * x[Var].
type Term struct {
	Var  int
	Coef float64
}

// Constraint is a soft constraint  Σ LHS ≤ Σ RHS + C.
type Constraint struct {
	LHS []Term
	RHS []Term
}

// Violation returns max(L − R − C, 0) for the given assignment.
func (c *Constraint) Violation(x []float64, C float64) float64 {
	v := -C
	for _, t := range c.LHS {
		v += t.Coef * x[t.Var]
	}
	for _, t := range c.RHS {
		v -= t.Coef * x[t.Var]
	}
	if v < 0 {
		return 0
	}
	return v
}

// Problem is a relaxed constraint system.
type Problem struct {
	NumVars     int
	Constraints []Constraint
	C           float64 // implication-strength constant (paper: 0.75)
	Lambda      float64 // L1 regularization weight (paper: 0.1)
	Known       map[int]float64
}

// Objective evaluates the relaxed objective at x.
func (p *Problem) Objective(x []float64) float64 {
	obj := 0.0
	for i := range p.Constraints {
		obj += p.Constraints[i].Violation(x, p.C)
	}
	for v := 0; v < p.NumVars; v++ {
		if _, pinned := p.Known[v]; !pinned {
			obj += p.Lambda * x[v]
		}
	}
	return obj
}

// TotalViolation returns the hinge part of the objective only.
func (p *Problem) TotalViolation(x []float64) float64 {
	total := 0.0
	for i := range p.Constraints {
		total += p.Constraints[i].Violation(x, p.C)
	}
	return total
}

// Options configures the solver.
type Options struct {
	Iterations int     // maximum epochs; default 400
	LearnRate  float64 // Adam step size; default 0.05
	Beta1      float64 // default 0.9
	Beta2      float64 // default 0.999
	Eps        float64 // default 1e-8
	Tolerance  float64 // stop when objective improves less than this; default 1e-6
	// OnEpoch, when non-nil, is invoked after every epoch with that
	// epoch's convergence statistics (objective, hinge violation, L1
	// term, gradient norm, step size, wall time). Leaving it nil keeps
	// the solver on its telemetry-free fast path.
	OnEpoch func(EpochStats)
}

func (o Options) withDefaults() Options {
	if o.Iterations == 0 {
		o.Iterations = 400
	}
	if o.LearnRate == 0 {
		o.LearnRate = 0.05
	}
	if o.Beta1 == 0 {
		o.Beta1 = 0.9
	}
	if o.Beta2 == 0 {
		o.Beta2 = 0.999
	}
	if o.Eps == 0 {
		o.Eps = 1e-8
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-6
	}
	return o
}

// Result holds the solver output.
type Result struct {
	X          []float64
	Objective  float64
	Violation  float64
	Iterations int
}

// Minimize runs projected Adam on the problem and returns the best
// assignment found. The start point is all zeros with known variables
// pinned (so an empty seed yields the trivial all-zero optimum, matching
// the paper's Q6 observation).
func Minimize(p *Problem, opts Options) *Result {
	opts = opts.withDefaults()
	n := p.NumVars
	x := make([]float64, n)
	pin := func(xs []float64) {
		for v, val := range p.Known {
			if v >= 0 && v < n {
				xs[v] = val
			}
		}
	}
	pin(x)

	grad := make([]float64, n)
	m := make([]float64, n)
	vv := make([]float64, n)
	free := make([]bool, n)
	for i := range free {
		_, pinned := p.Known[i]
		free[i] = !pinned
	}

	best := append([]float64(nil), x...)
	bestObj := p.Objective(x)
	prevObj := math.Inf(1)
	iters := 0
	tel := newEpochTelemetry(opts, x)

	for t := 1; t <= opts.Iterations; t++ {
		iters = t
		// Subgradient of the hinge terms.
		for i := range grad {
			if free[i] {
				grad[i] = p.Lambda
			} else {
				grad[i] = 0
			}
		}
		for i := range p.Constraints {
			c := &p.Constraints[i]
			if c.Violation(x, p.C) <= 0 {
				continue
			}
			for _, term := range c.LHS {
				grad[term.Var] += term.Coef
			}
			for _, term := range c.RHS {
				grad[term.Var] -= term.Coef
			}
		}
		// Adam update with bias correction, then projection.
		b1t := 1 - math.Pow(opts.Beta1, float64(t))
		b2t := 1 - math.Pow(opts.Beta2, float64(t))
		for i := 0; i < n; i++ {
			if !free[i] {
				continue
			}
			g := grad[i]
			m[i] = opts.Beta1*m[i] + (1-opts.Beta1)*g
			vv[i] = opts.Beta2*vv[i] + (1-opts.Beta2)*g*g
			mHat := m[i] / b1t
			vHat := vv[i] / b2t
			x[i] -= opts.LearnRate * mHat / (math.Sqrt(vHat) + opts.Eps)
			if x[i] < 0 {
				x[i] = 0
			} else if x[i] > 1 {
				x[i] = 1
			}
		}
		pin(x)

		obj := p.Objective(x)
		if obj < bestObj {
			bestObj = obj
			copy(best, x)
		}
		tel.emit(p, t, x, grad, free, obj, bestObj)
		if math.Abs(prevObj-obj) < opts.Tolerance {
			break
		}
		prevObj = obj
	}
	return &Result{
		X:          best,
		Objective:  bestObj,
		Violation:  p.TotalViolation(best),
		Iterations: iters,
	}
}
