// Package lp solves the relaxed linear constraint systems produced by
// taint-specification inference (paper §4.4).
//
// A problem is a set of soft constraints  L_i(x) ≤ R_i(x) + C  over
// variables box-constrained to [0,1], some of which are pinned to known
// values (the hand-labeled seed). The objective is the total hinge
// violation plus an L1 regularizer:
//
//	min Σ_i max(L_i(x) − R_i(x) − C, 0) + λ Σ_v x_v
//
// It is minimized by full-batch projected (sub)gradient descent with the
// Adam update rule (Kingma & Ba, 2014), reimplemented here from scratch;
// variables are projected back to [0,1] and known variables re-pinned
// after every step, exactly as the paper describes doing on top of
// TensorFlow's Adam optimizer.
package lp

import (
	"runtime"
	"sort"
)

// Term is one linear summand: Coef * x[Var].
type Term struct {
	Var  int
	Coef float64
}

// Constraint is a soft constraint  Σ LHS ≤ Σ RHS + C.
type Constraint struct {
	LHS []Term
	RHS []Term
}

// Violation returns max(L − R − C, 0) for the given assignment.
func (c *Constraint) Violation(x []float64, C float64) float64 {
	v := -C
	for _, t := range c.LHS {
		v += t.Coef * x[t.Var]
	}
	for _, t := range c.RHS {
		v -= t.Coef * x[t.Var]
	}
	if v < 0 {
		return 0
	}
	return v
}

// Problem is a relaxed constraint system.
type Problem struct {
	NumVars     int
	Constraints []Constraint
	C           float64 // implication-strength constant (paper: 0.75)
	Lambda      float64 // L1 regularization weight (paper: 0.1)
	Known       map[int]float64

	// mask caches the compiled view of Known (free-variable mask, sorted
	// pinned indices, pinned-L1 constant), shared by Objective and the
	// solver kernel. It is rebuilt when NumVars or len(Known) change; do
	// not mutate Known from one goroutine while another evaluates the
	// problem.
	mask *problemMask
}

// problemMask is the precomputed view of Problem.Known.
type problemMask struct {
	numVars  int
	numKnown int
	// free[v] reports that v is not pinned; it replaces a map lookup per
	// variable on every objective evaluation.
	free []bool
	// pinIdx/pinVal list the valid pinned variables in ascending order.
	pinIdx []int32
	pinVal []float64
	// pinnedL1 is λ · Σ Known — the L1 mass of the pinned block, a
	// constant whenever x carries its pinned values.
	pinnedL1 float64
}

// masks returns the cached compiled view of Known, rebuilding it if the
// problem shape changed since the last call.
func (p *Problem) masks() *problemMask {
	if m := p.mask; m != nil && m.numVars == p.NumVars && m.numKnown == len(p.Known) {
		return m
	}
	m := &problemMask{
		numVars:  p.NumVars,
		numKnown: len(p.Known),
		free:     make([]bool, p.NumVars),
	}
	for i := range m.free {
		m.free[i] = true
	}
	for v := range p.Known {
		if v >= 0 && v < p.NumVars {
			m.free[v] = false
			m.pinIdx = append(m.pinIdx, int32(v))
		}
	}
	sort.Slice(m.pinIdx, func(i, j int) bool { return m.pinIdx[i] < m.pinIdx[j] })
	m.pinVal = make([]float64, len(m.pinIdx))
	for i, v := range m.pinIdx {
		m.pinVal[i] = p.Known[int(v)]
		m.pinnedL1 += p.Lambda * m.pinVal[i]
	}
	p.mask = m
	return m
}

// Pin records v as a known (hand-labeled or operator-pinned) variable
// with the given value and invalidates the compiled mask, so a solver
// run after the call sees the new pin. It is the supported way to add
// feedback pins on top of an already-built system — mutating Known
// directly can leave a stale cached mask when the entry count happens
// not to change.
func (p *Problem) Pin(v int, val float64) {
	if v < 0 || v >= p.NumVars {
		return
	}
	if p.Known == nil {
		p.Known = make(map[int]float64)
	}
	p.Known[v] = val
	p.mask = nil
}

// Objective evaluates the relaxed objective at x.
func (p *Problem) Objective(x []float64) float64 {
	free := p.masks().free
	obj := 0.0
	for i := range p.Constraints {
		obj += p.Constraints[i].Violation(x, p.C)
	}
	for v := 0; v < p.NumVars; v++ {
		if free[v] {
			obj += p.Lambda * x[v]
		}
	}
	return obj
}

// TotalViolation returns the hinge part of the objective only.
func (p *Problem) TotalViolation(x []float64) float64 {
	total := 0.0
	for i := range p.Constraints {
		total += p.Constraints[i].Violation(x, p.C)
	}
	return total
}

// Options configures the solver.
type Options struct {
	Iterations int     // maximum epochs; default 400
	LearnRate  float64 // Adam step size; default 0.05
	Beta1      float64 // default 0.9
	Beta2      float64 // default 0.999
	Eps        float64 // default 1e-8
	Tolerance  float64 // stop when objective improves less than this; default 1e-6
	// Shards bounds the goroutines the compiled kernel uses for the
	// per-epoch constraint pass; 0 selects runtime.GOMAXPROCS(0) and 1
	// keeps the pass on the calling goroutine. Results are bit-for-bit
	// identical at every shard count: the work decomposition is fixed by
	// the problem, and every floating-point reduction runs in a fixed
	// order (see kernel.go).
	Shards int
	// OnEpoch, when non-nil, is invoked after every epoch with that
	// epoch's convergence statistics (objective, hinge violation, L1
	// term, gradient norm, step size, wall time). Leaving it nil keeps
	// the solver on its telemetry-free fast path.
	OnEpoch func(EpochStats)
	// WarmStart, when its length equals Problem.NumVars, seeds the
	// iterate with a previous solution instead of all zeros: values are
	// clamped to [0,1] and pinned variables are re-pinned on top. A
	// vector of any other length is ignored (cold start). Only the start
	// point changes — Adam's moment estimates still begin at zero — so a
	// warm solve walks the same descent dynamics from a closer iterate
	// and typically converges in fewer epochs (Result.Iterations; the
	// caller can report the saving, e.g. the solver.warm_epochs_saved
	// gauge internal/incr publishes).
	WarmStart []float64
	// Patience, when positive, stops the solve after that many
	// consecutive epochs without a best-objective improvement. Adam's
	// per-epoch objective jitters forever on a hinge landscape, so the
	// Tolerance check rarely fires; the plateau check is how a
	// warm-started re-solve that begins at (or near) the optimum
	// actually gets to stop early. Zero disables it, keeping the exact
	// fixed-budget behaviour cold solves are calibrated against.
	Patience int
}

func (o Options) withDefaults() Options {
	if o.Iterations == 0 {
		o.Iterations = 400
	}
	if o.LearnRate == 0 {
		o.LearnRate = 0.05
	}
	if o.Beta1 == 0 {
		o.Beta1 = 0.9
	}
	if o.Beta2 == 0 {
		o.Beta2 = 0.999
	}
	if o.Eps == 0 {
		o.Eps = 1e-8
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-6
	}
	if o.Shards == 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	return o
}

// Result holds the solver output.
type Result struct {
	X          []float64
	Objective  float64
	Violation  float64
	Iterations int
}

// Minimize runs projected Adam on the problem and returns the best
// assignment found. The start point is all zeros with known variables
// pinned (so an empty seed yields the trivial all-zero optimum, matching
// the paper's Q6 observation). The solve runs on the compiled kernel of
// kernel.go — constraints flattened into CSR arrays, violation, gradient,
// and objective fused into one sharded pass per epoch — and is
// bit-for-bit reproducible at any Options.Shards value.
func Minimize(p *Problem, opts Options) *Result {
	return minimizeKernel(p, opts.withDefaults())
}
