package lp

import (
	"math"
	"testing"
	"testing/quick"
)

func solve(t *testing.T, p *Problem, opts Options) *Result {
	t.Helper()
	r := Minimize(p, opts)
	if len(r.X) != p.NumVars {
		t.Fatalf("len(X) = %d, want %d", len(r.X), p.NumVars)
	}
	return r
}

func TestEmptySeedIsAllZero(t *testing.T) {
	// Without known variables, all-zero satisfies every constraint and
	// minimizes the L1 term — the paper's Q6 trivial solution.
	p := &Problem{
		NumVars: 3,
		C:       0.75,
		Lambda:  0.1,
		Constraints: []Constraint{
			{LHS: []Term{{0, 1}, {1, 1}}, RHS: []Term{{2, 1}}},
		},
		Known: map[int]float64{},
	}
	r := solve(t, p, Options{})
	for i, v := range r.X {
		if v != 0 {
			t.Errorf("x[%d] = %v, want 0", i, v)
		}
	}
}

func TestSeedPropagatesThroughConstraint(t *testing.T) {
	// Known source (x0=1) with constraint x0 + x1 <= x2 + C:
	// the solver must raise x2 (or keep x1 low) so violation vanishes.
	p := &Problem{
		NumVars: 3,
		C:       0.75,
		Lambda:  0.01,
		Constraints: []Constraint{
			// x0 (known source) alone on the left against x2: x0 <= x2 + C
			{LHS: []Term{{0, 1}}, RHS: []Term{{2, 1}}},
		},
		Known: map[int]float64{0: 1},
	}
	r := solve(t, p, Options{Iterations: 2000})
	if r.X[0] != 1 {
		t.Errorf("known var moved: %v", r.X[0])
	}
	// Violation of x0 <= x2 + 0.75 at optimum: x2 should rise to ~0.25
	// (violation gradient 1 beats lambda 0.01).
	if r.X[2] < 0.2 {
		t.Errorf("x2 = %v, want >= 0.2", r.X[2])
	}
	if got := p.TotalViolation(r.X); got > 0.05 {
		t.Errorf("violation = %v", got)
	}
}

func TestLambdaSuppressesWeakEvidence(t *testing.T) {
	// With a large lambda, raising x2 costs more than the violation it
	// removes only if gradient ordering is respected; violation gradient
	// is 1 and lambda is 2, so x2 must stay at 0.
	p := &Problem{
		NumVars:     2,
		C:           0.75,
		Lambda:      2,
		Constraints: []Constraint{{LHS: []Term{{0, 1}}, RHS: []Term{{1, 1}}}},
		Known:       map[int]float64{0: 1},
	}
	r := solve(t, p, Options{Iterations: 1000})
	if r.X[1] > 0.01 {
		t.Errorf("x1 = %v, want 0 under heavy regularization", r.X[1])
	}
}

func TestBoxConstraintsHold(t *testing.T) {
	p := &Problem{
		NumVars: 4,
		C:       0.75,
		Lambda:  0.1,
		Constraints: []Constraint{
			{LHS: []Term{{0, 1}, {1, 1}}, RHS: []Term{{2, 0.5}, {3, 0.5}}},
			{LHS: []Term{{2, 1}}, RHS: nil},
		},
		Known: map[int]float64{0: 1, 1: 1},
	}
	r := solve(t, p, Options{Iterations: 500})
	for i, v := range r.X {
		if v < 0 || v > 1 {
			t.Errorf("x[%d] = %v outside [0,1]", i, v)
		}
	}
}

func TestObjectiveNeverBelowLowerBound(t *testing.T) {
	// Known x0=x1=1 with constraint x0 + x1 <= x2 + 0.75 forces either
	// violation or x2-regularization cost; optimum is
	// min over x2 of max(2 - x2 - 0.75, 0) + 0.1*x2 = 0.25 + 0.1 at x2=1.
	p := &Problem{
		NumVars:     3,
		C:           0.75,
		Lambda:      0.1,
		Constraints: []Constraint{{LHS: []Term{{0, 1}, {1, 1}}, RHS: []Term{{2, 1}}}},
		Known:       map[int]float64{0: 1, 1: 1},
	}
	r := solve(t, p, Options{Iterations: 3000})
	want := 0.35
	if r.Objective < want-1e-6 {
		t.Errorf("objective = %v below the analytic optimum %v", r.Objective, want)
	}
	if r.Objective > want+0.02 {
		t.Errorf("objective = %v, want close to %v", r.Objective, want)
	}
	if r.X[2] < 0.95 {
		t.Errorf("x2 = %v, want ~1", r.X[2])
	}
}

func TestAveragedBackoffTerms(t *testing.T) {
	// Terms with coefficient 1/2 model two backoff options sharing the
	// score mass: raising either representation helps.
	p := &Problem{
		NumVars: 3,
		C:       0.75,
		Lambda:  0.01,
		Constraints: []Constraint{
			{LHS: []Term{{0, 1}}, RHS: []Term{{1, 0.5}, {2, 0.5}}},
		},
		Known: map[int]float64{0: 1},
	}
	r := solve(t, p, Options{Iterations: 3000})
	if avg := 0.5*r.X[1] + 0.5*r.X[2]; avg < 0.2 {
		t.Errorf("averaged RHS = %v, want >= 0.2", avg)
	}
}

func TestDeterminism(t *testing.T) {
	p := &Problem{
		NumVars: 5,
		C:       0.75,
		Lambda:  0.1,
		Constraints: []Constraint{
			{LHS: []Term{{0, 1}, {1, 1}}, RHS: []Term{{2, 1}, {3, 1}}},
			{LHS: []Term{{2, 1}, {4, 1}}, RHS: []Term{{3, 1}}},
		},
		Known: map[int]float64{0: 1},
	}
	a := Minimize(p, Options{Iterations: 200})
	b := Minimize(p, Options{Iterations: 200})
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatalf("non-deterministic solve: x[%d] %v vs %v", i, a.X[i], b.X[i])
		}
	}
}

func TestViolationComputation(t *testing.T) {
	c := Constraint{LHS: []Term{{0, 1}, {1, 1}}, RHS: []Term{{2, 1}}}
	x := []float64{0.9, 0.8, 0.2}
	got := c.Violation(x, 0.75)
	want := 0.9 + 0.8 - 0.2 - 0.75
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("violation = %v, want %v", got, want)
	}
	if v := c.Violation([]float64{0, 0, 1}, 0.75); v != 0 {
		t.Errorf("satisfied constraint has violation %v", v)
	}
}

// Property: the solution always lies in the box and known variables are
// exactly pinned, for random small problems.
func TestSolutionInvariants(t *testing.T) {
	f := func(seedVals []bool, edges []uint8) bool {
		n := 6
		p := &Problem{NumVars: n, C: 0.75, Lambda: 0.1, Known: map[int]float64{}}
		for i, b := range seedVals {
			if i >= n {
				break
			}
			if b {
				p.Known[i] = 1
			}
		}
		for i := 0; i+2 < len(edges); i += 3 {
			a, b, c := int(edges[i])%n, int(edges[i+1])%n, int(edges[i+2])%n
			p.Constraints = append(p.Constraints, Constraint{
				LHS: []Term{{a, 1}, {b, 1}}, RHS: []Term{{c, 1}},
			})
		}
		r := Minimize(p, Options{Iterations: 60})
		for i, v := range r.X {
			if v < 0 || v > 1 {
				return false
			}
			if want, ok := p.Known[i]; ok && v != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the reported best objective is never worse than the objective
// of the all-zero (pinned) start point.
func TestNeverWorseThanStart(t *testing.T) {
	f := func(edges []uint8) bool {
		n := 5
		p := &Problem{NumVars: n, C: 0.75, Lambda: 0.1,
			Known: map[int]float64{0: 1}}
		for i := 0; i+1 < len(edges); i += 2 {
			a, b := int(edges[i])%n, int(edges[i+1])%n
			p.Constraints = append(p.Constraints, Constraint{
				LHS: []Term{{a, 1}}, RHS: []Term{{b, 1}},
			})
		}
		start := make([]float64, n)
		start[0] = 1
		r := Minimize(p, Options{Iterations: 80})
		return r.Objective <= p.Objective(start)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
