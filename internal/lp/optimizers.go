package lp

import "math"

// Method selects the first-order update rule used by MinimizeWith. The
// paper uses Adam (§4.4); plain projected subgradient descent and AdaGrad
// are provided for the optimizer ablation.
type Method int

// Optimization methods.
const (
	Adam Method = iota
	SGD
	AdaGrad
)

func (m Method) String() string {
	switch m {
	case Adam:
		return "adam"
	case SGD:
		return "sgd"
	case AdaGrad:
		return "adagrad"
	}
	return "unknown"
}

// MinimizeWith runs projected first-order descent with the chosen update
// rule. MinimizeWith(p, opts, Adam) is equivalent to Minimize(p, opts).
func MinimizeWith(p *Problem, opts Options, method Method) *Result {
	if method == Adam {
		return Minimize(p, opts)
	}
	opts = opts.withDefaults()
	n := p.NumVars
	x := make([]float64, n)
	if len(opts.WarmStart) == n {
		for i, v := range opts.WarmStart {
			x[i] = math.Min(1, math.Max(0, v))
		}
	}
	pin := func(xs []float64) {
		for v, val := range p.Known {
			if v >= 0 && v < n {
				xs[v] = val
			}
		}
	}
	pin(x)

	grad := make([]float64, n)
	accum := make([]float64, n) // AdaGrad accumulator
	free := make([]bool, n)
	for i := range free {
		_, pinned := p.Known[i]
		free[i] = !pinned
	}

	best := append([]float64(nil), x...)
	bestObj := p.Objective(x)
	prevObj := math.Inf(1)
	iters := 0
	stale := 0
	tel := newEpochTelemetry(opts, x)

	for t := 1; t <= opts.Iterations; t++ {
		iters = t
		for i := range grad {
			if free[i] {
				grad[i] = p.Lambda
			} else {
				grad[i] = 0
			}
		}
		for i := range p.Constraints {
			c := &p.Constraints[i]
			if c.Violation(x, p.C) <= 0 {
				continue
			}
			for _, term := range c.LHS {
				grad[term.Var] += term.Coef
			}
			for _, term := range c.RHS {
				grad[term.Var] -= term.Coef
			}
		}
		for i := 0; i < n; i++ {
			if !free[i] {
				continue
			}
			g := grad[i]
			switch method {
			case SGD:
				// 1/sqrt(t) step decay for convergence of subgradient descent.
				x[i] -= opts.LearnRate / math.Sqrt(float64(t)) * g
			case AdaGrad:
				accum[i] += g * g
				x[i] -= opts.LearnRate / (math.Sqrt(accum[i]) + opts.Eps) * g
			}
			if x[i] < 0 {
				x[i] = 0
			} else if x[i] > 1 {
				x[i] = 1
			}
		}
		pin(x)
		obj := p.Objective(x)
		if obj < bestObj {
			bestObj = obj
			copy(best, x)
			stale = 0
		} else {
			stale++
		}
		tel.emit(p, t, x, grad, free, obj, bestObj)
		if math.Abs(prevObj-obj) < opts.Tolerance {
			break
		}
		if opts.Patience > 0 && stale >= opts.Patience {
			break
		}
		prevObj = obj
	}
	return &Result{X: best, Objective: bestObj, Violation: p.TotalViolation(best), Iterations: iters}
}
