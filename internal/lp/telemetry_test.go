package lp

import (
	"math"
	"testing"
)

// convexToy is the seed-propagation problem of TestSeedPropagatesThroughConstraint:
// one hinge plus L1, convex in the free variables.
func convexToy() *Problem {
	return &Problem{
		NumVars: 3,
		C:       0.75,
		Lambda:  0.01,
		Constraints: []Constraint{
			{LHS: []Term{{0, 1}}, RHS: []Term{{2, 1}}},
		},
		Known: map[int]float64{0: 1},
	}
}

func TestOnEpochFiresEveryEpoch(t *testing.T) {
	var stats []EpochStats
	opts := Options{Iterations: 500, OnEpoch: func(s EpochStats) { stats = append(stats, s) }}
	r := Minimize(convexToy(), opts)

	if len(stats) != r.Iterations {
		t.Fatalf("hook fired %d times, solver ran %d epochs", len(stats), r.Iterations)
	}
	for i, s := range stats {
		if s.Epoch != i+1 {
			t.Fatalf("stats[%d].Epoch = %d, want %d", i, s.Epoch, i+1)
		}
		if math.Abs(s.Objective-(s.Violation+s.L1)) > 1e-9 {
			t.Errorf("epoch %d: objective %v != violation %v + l1 %v",
				s.Epoch, s.Objective, s.Violation, s.L1)
		}
		if s.Violation < 0 || s.L1 < 0 || s.GradNorm < 0 || s.StepSize < 0 {
			t.Errorf("epoch %d: negative stat: %+v", s.Epoch, s)
		}
		if i > 0 && s.Elapsed < stats[i-1].Elapsed {
			t.Errorf("epoch %d: elapsed went backwards", s.Epoch)
		}
	}
	last := stats[len(stats)-1]
	if last.Best != r.Objective {
		t.Errorf("final Best = %v, want solver objective %v", last.Best, r.Objective)
	}
}

func TestOnEpochBestMonotoneOnConvexToy(t *testing.T) {
	var stats []EpochStats
	opts := Options{Iterations: 2000, OnEpoch: func(s EpochStats) { stats = append(stats, s) }}
	Minimize(convexToy(), opts)

	if len(stats) < 2 {
		t.Fatalf("too few epochs: %d", len(stats))
	}
	for i := 1; i < len(stats); i++ {
		if stats[i].Best > stats[i-1].Best {
			t.Fatalf("best objective increased at epoch %d: %v -> %v",
				stats[i].Epoch, stats[i-1].Best, stats[i].Best)
		}
	}
	if first, last := stats[0].Best, stats[len(stats)-1].Best; last >= first {
		t.Errorf("no convergence progress: first best %v, final best %v", first, last)
	}
	// The early epochs move x, so step sizes must be visible.
	if stats[0].StepSize == 0 {
		t.Errorf("first epoch step size = 0, expected movement")
	}
}

func TestOnEpochFiresForAllMethods(t *testing.T) {
	for _, m := range []Method{Adam, SGD, AdaGrad} {
		n := 0
		opts := Options{Iterations: 50, OnEpoch: func(EpochStats) { n++ }}
		r := MinimizeWith(convexToy(), opts, m)
		if n != r.Iterations || n == 0 {
			t.Errorf("%v: hook fired %d times over %d epochs", m, n, r.Iterations)
		}
	}
}

func TestOnEpochDoesNotPerturbSolution(t *testing.T) {
	base := Minimize(convexToy(), Options{Iterations: 300})
	hooked := Minimize(convexToy(), Options{Iterations: 300, OnEpoch: func(EpochStats) {}})
	if base.Objective != hooked.Objective || base.Iterations != hooked.Iterations {
		t.Fatalf("telemetry changed the solve: %+v vs %+v", base, hooked)
	}
	for i := range base.X {
		if base.X[i] != hooked.X[i] {
			t.Fatalf("x[%d] differs: %v vs %v", i, base.X[i], hooked.X[i])
		}
	}
}
