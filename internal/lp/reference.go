package lp

import "math"

// minimizeReference is the pre-kernel solver loop, retained verbatim as
// the behavioural baseline: the equivalence tests check that the compiled
// kernel of kernel.go walks the identical iterate sequence, and the
// benchmarks report the kernel's per-epoch speedup against it. It walks
// every constraint's term lists twice per epoch (gradient pass plus a
// full objective recomputation) and pays a map lookup per variable for
// pinning — exactly the costs compile() removes.
func minimizeReference(p *Problem, opts Options) *Result {
	opts = opts.withDefaults()
	n := p.NumVars
	x := make([]float64, n)
	pin := func(xs []float64) {
		for v, val := range p.Known {
			if v >= 0 && v < n {
				xs[v] = val
			}
		}
	}
	pin(x)

	grad := make([]float64, n)
	m := make([]float64, n)
	vv := make([]float64, n)
	free := make([]bool, n)
	for i := range free {
		_, pinned := p.Known[i]
		free[i] = !pinned
	}

	best := append([]float64(nil), x...)
	bestObj := p.Objective(x)
	prevObj := math.Inf(1)
	iters := 0
	stale := 0
	tel := newEpochTelemetry(opts, x)

	for t := 1; t <= opts.Iterations; t++ {
		iters = t
		// Subgradient of the hinge terms.
		for i := range grad {
			if free[i] {
				grad[i] = p.Lambda
			} else {
				grad[i] = 0
			}
		}
		for i := range p.Constraints {
			c := &p.Constraints[i]
			if c.Violation(x, p.C) <= 0 {
				continue
			}
			for _, term := range c.LHS {
				grad[term.Var] += term.Coef
			}
			for _, term := range c.RHS {
				grad[term.Var] -= term.Coef
			}
		}
		// Adam update with bias correction, then projection.
		b1t := 1 - math.Pow(opts.Beta1, float64(t))
		b2t := 1 - math.Pow(opts.Beta2, float64(t))
		for i := 0; i < n; i++ {
			if !free[i] {
				continue
			}
			g := grad[i]
			m[i] = opts.Beta1*m[i] + (1-opts.Beta1)*g
			vv[i] = opts.Beta2*vv[i] + (1-opts.Beta2)*g*g
			mHat := m[i] / b1t
			vHat := vv[i] / b2t
			x[i] -= opts.LearnRate * mHat / (math.Sqrt(vHat) + opts.Eps)
			if x[i] < 0 {
				x[i] = 0
			} else if x[i] > 1 {
				x[i] = 1
			}
		}
		pin(x)

		obj := p.Objective(x)
		if obj < bestObj {
			bestObj = obj
			copy(best, x)
			stale = 0
		} else {
			stale++
		}
		tel.emit(p, t, x, grad, free, obj, bestObj)
		if math.Abs(prevObj-obj) < opts.Tolerance {
			break
		}
		if opts.Patience > 0 && stale >= opts.Patience {
			break
		}
		prevObj = obj
	}
	return &Result{
		X:          best,
		Objective:  bestObj,
		Violation:  p.TotalViolation(best),
		Iterations: iters,
	}
}
