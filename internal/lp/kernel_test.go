package lp

import (
	"fmt"
	"math"
	"testing"
)

// kernelProblems are the shapes the equivalence and determinism tests run
// over: tiny, multi-chunk (forcing the sharded pass), and heavily pinned.
func kernelProblems() map[string]*Problem {
	return map[string]*Problem{
		"small":      randomishProblem(60, 300),
		"multichunk": randomishProblem(400, 3*kernelChunk+17),
		"nopin": {
			NumVars: 50, C: 0.75, Lambda: 0.1, Known: map[int]float64{},
			Constraints: randomishProblem(50, 200).Constraints,
		},
	}
}

// TestMinimizeDeterministicAcrossShards is the solver half of the PR's
// determinism guarantee: the same problem solved at any shard count must
// yield bit-for-bit identical results. Runs under -race in `make verify`.
func TestMinimizeDeterministicAcrossShards(t *testing.T) {
	for name, p := range kernelProblems() {
		t.Run(name, func(t *testing.T) {
			base := Minimize(p, Options{Iterations: 120, Shards: 1})
			for _, shards := range []int{2, 3, 8, 32} {
				t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
					r := Minimize(p, Options{Iterations: 120, Shards: shards})
					if r.Iterations != base.Iterations {
						t.Fatalf("iterations = %d, want %d", r.Iterations, base.Iterations)
					}
					if r.Objective != base.Objective || r.Violation != base.Violation {
						t.Fatalf("objective/violation = %v/%v, want %v/%v",
							r.Objective, r.Violation, base.Objective, base.Violation)
					}
					for i := range r.X {
						if r.X[i] != base.X[i] {
							t.Fatalf("x[%d] = %v, want %v (bit-for-bit)", i, r.X[i], base.X[i])
						}
					}
				})
			}
		})
	}
}

// TestKernelMatchesReference pins the kernel to the pre-kernel solver:
// gradients and violations are computed identically, so the iterate
// sequence — and with it the solution and epoch count — must match
// exactly; objectives may differ in ulps (the kernel folds the L1 term
// through the pinned-L1 constant).
func TestKernelMatchesReference(t *testing.T) {
	for name, p := range kernelProblems() {
		t.Run(name, func(t *testing.T) {
			opts := Options{Iterations: 150}
			ref := minimizeReference(p, opts)
			ker := Minimize(p, opts)
			if ker.Iterations != ref.Iterations {
				t.Fatalf("iterations = %d, reference ran %d", ker.Iterations, ref.Iterations)
			}
			for i := range ref.X {
				if ker.X[i] != ref.X[i] {
					t.Fatalf("x[%d] = %v, reference %v", i, ker.X[i], ref.X[i])
				}
			}
			if d := math.Abs(ker.Objective - ref.Objective); d > 1e-9 {
				t.Errorf("objective %v vs reference %v (|Δ| = %g)", ker.Objective, ref.Objective, d)
			}
			if d := math.Abs(ker.Violation - ref.Violation); d > 1e-9 {
				t.Errorf("violation %v vs reference %v (|Δ| = %g)", ker.Violation, ref.Violation, d)
			}
		})
	}
}

// TestKernelTelemetryMatchesReference checks that the re-timed epoch
// bookkeeping still emits one EpochStats per epoch with the same
// convergence story as the reference solver.
func TestKernelTelemetryMatchesReference(t *testing.T) {
	p := randomishProblem(80, 500)
	collect := func(run func(*Problem, Options) *Result) []EpochStats {
		var out []EpochStats
		opts := Options{Iterations: 60, OnEpoch: func(s EpochStats) { out = append(out, s) }}
		run(p, opts)
		return out
	}
	ref := collect(minimizeReference)
	ker := collect(Minimize)
	if len(ker) != len(ref) {
		t.Fatalf("kernel emitted %d epochs, reference %d", len(ker), len(ref))
	}
	for i := range ref {
		if ker[i].Epoch != ref[i].Epoch {
			t.Fatalf("epoch[%d] = %d, want %d", i, ker[i].Epoch, ref[i].Epoch)
		}
		if math.Abs(ker[i].Objective-ref[i].Objective) > 1e-9 ||
			math.Abs(ker[i].Violation-ref[i].Violation) > 1e-9 ||
			math.Abs(ker[i].GradNorm-ref[i].GradNorm) > 1e-9 ||
			math.Abs(ker[i].StepSize-ref[i].StepSize) > 1e-9 {
			t.Errorf("epoch %d stats diverge: kernel %+v reference %+v",
				ref[i].Epoch, ker[i], ref[i])
		}
	}
}

// TestMinimizeZeroIterationBudget keeps the degenerate path (negative
// budget after withDefaults is bypassed) aligned with the reference.
func TestMinimizeZeroIterationBudget(t *testing.T) {
	p := randomishProblem(40, 100)
	r := minimizeKernel(p, Options{Iterations: -1, Shards: 1,
		LearnRate: 0.05, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, Tolerance: 1e-6})
	if r.Iterations != 0 {
		t.Fatalf("iterations = %d, want 0", r.Iterations)
	}
	if got, want := r.Objective, p.Objective(r.X); math.Abs(got-want) > 1e-9 {
		t.Errorf("objective = %v, want %v", got, want)
	}
	for i, v := range r.X {
		if want, ok := p.Known[i]; ok && v != want {
			t.Errorf("x[%d] = %v, want pinned %v", i, v, want)
		}
	}
}
