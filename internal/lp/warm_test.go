package lp

import "testing"

// warmFixture builds a small problem with a non-trivial optimum: a
// pinned seed variable at the head of a two-hop implication chain, with
// enough L1 pressure that the free variables settle at hinge kinks
// rather than saturating — the slow-convergence regime where a warm
// start pays off.
func warmFixture() *Problem {
	return &Problem{
		NumVars: 3,
		C:       0.25,
		Lambda:  0.1,
		Known:   map[int]float64{0: 1},
		Constraints: []Constraint{
			{LHS: []Term{{Var: 0, Coef: 1}}, RHS: []Term{{Var: 1, Coef: 1}}},
			{LHS: []Term{{Var: 1, Coef: 1}}, RHS: []Term{{Var: 2, Coef: 1}}},
		},
	}
}

// TestWarmStartFromOptimumConvergesFaster pins the core warm-start
// contract: seeding the solve with a previous solution converges in no
// more epochs than cold and never lands on a worse objective.
func TestWarmStartFromOptimumConvergesFaster(t *testing.T) {
	p := warmFixture()
	cold := Minimize(p, Options{})
	if cold.Iterations == 0 {
		t.Fatalf("cold solve converged in 0 epochs; fixture too trivial")
	}

	warm := Minimize(p, Options{WarmStart: cold.X})
	if warm.Iterations > cold.Iterations {
		t.Errorf("warm start took %d epochs, cold took %d", warm.Iterations, cold.Iterations)
	}
	// Minimize returns the best iterate seen; starting at the cold
	// optimum means the warm best can only match or improve it.
	if warm.Objective > cold.Objective+1e-9 {
		t.Errorf("warm objective %g worse than cold %g", warm.Objective, cold.Objective)
	}
}

// TestWarmStartClampsAndRepins: out-of-box warm values are clamped and
// pinned variables keep their pinned values no matter what the warm
// vector carries.
func TestWarmStartClampsAndRepins(t *testing.T) {
	p := warmFixture()
	res := Minimize(p, Options{
		Iterations: 1,
		WarmStart:  []float64{0.123, 7, -5}, // var 0 is pinned to 1
	})
	if res.X[0] != 1 {
		t.Errorf("pinned variable overridden by warm start: x[0] = %g", res.X[0])
	}
	for i, v := range res.X {
		if v < 0 || v > 1 {
			t.Errorf("x[%d] = %g escaped the box", i, v)
		}
	}
}

// TestWarmStartWrongLengthIgnored: a vector whose length does not match
// NumVars must fall back to the cold start point bit-for-bit.
func TestWarmStartWrongLengthIgnored(t *testing.T) {
	p := warmFixture()
	cold := Minimize(p, Options{})
	odd := Minimize(p, Options{WarmStart: []float64{0.3, 0.3}})
	for i := range cold.X {
		if cold.X[i] != odd.X[i] {
			t.Fatalf("wrong-length warm start changed the solve: x[%d] %g vs %g", i, odd.X[i], cold.X[i])
		}
	}
	if odd.Iterations != cold.Iterations {
		t.Fatalf("wrong-length warm start changed epoch count: %d vs %d", odd.Iterations, cold.Iterations)
	}
}

// TestWarmStartOtherOptimizers: MinimizeWith honors WarmStart for the
// ablation methods too.
func TestWarmStartOtherOptimizers(t *testing.T) {
	p := warmFixture()
	for _, m := range []Method{SGD, AdaGrad} {
		cold := MinimizeWith(p, Options{}, m)
		warm := MinimizeWith(p, Options{WarmStart: cold.X}, m)
		if warm.Objective > cold.Objective+1e-6 {
			t.Errorf("%v: warm objective %g worse than cold %g", m, warm.Objective, cold.Objective)
		}
	}
}

// TestPinInvalidatesMask: mutating a pin through Problem.Pin must be
// visible to the next solve even when the pin count is unchanged (the
// compiled mask caches by count).
func TestPinInvalidatesMask(t *testing.T) {
	p := warmFixture()
	_ = Minimize(p, Options{}) // builds and caches the mask
	p.Pin(0, 0)                // same count, different value
	res := Minimize(p, Options{})
	if res.X[0] != 0 {
		t.Fatalf("re-pinned value not applied: x[0] = %g", res.X[0])
	}
	p.Pin(1, 1) // brand-new pin
	res = Minimize(p, Options{})
	if res.X[1] != 1 {
		t.Fatalf("new pin not applied: x[1] = %g", res.X[1])
	}
}
