package lp

import (
	"math"
	"time"
)

// EpochStats is one per-epoch telemetry sample emitted through
// Options.OnEpoch. All quantities refer to the state *after* the
// epoch's projected update.
type EpochStats struct {
	Epoch     int           // 1-based epoch number
	Objective float64       // hinge violation + L1 term at x
	Best      float64       // best objective seen so far
	Violation float64       // total hinge violation at x
	L1        float64       // λ-weighted L1 term over free variables
	GradNorm  float64       // L2 norm of the subgradient over free variables
	StepSize  float64       // L2 norm of the projected update Δx
	Elapsed   time.Duration // wall time since the solve started
}

// epochTelemetry carries the bookkeeping needed to emit EpochStats.
// A nil *epochTelemetry (hook unset) costs one pointer check per epoch,
// keeping the no-sink path at its previous speed.
type epochTelemetry struct {
	hook  func(EpochStats)
	start time.Time
	prevX []float64
}

func newEpochTelemetry(opts Options, x []float64) *epochTelemetry {
	if opts.OnEpoch == nil {
		return nil
	}
	return &epochTelemetry{
		hook:  opts.OnEpoch,
		start: time.Now(),
		prevX: append([]float64(nil), x...),
	}
}

// emitPrecomputed invokes the hook with quantities the kernel solve
// already has in hand — the fused pass yields the hinge total and the
// update loop accumulates the squared gradient and step norms — so the
// telemetry path re-walks nothing.
func (et *epochTelemetry) emitPrecomputed(epoch int, obj, best, hinge, gradSq, stepSq float64) {
	if et == nil {
		return
	}
	et.hook(EpochStats{
		Epoch:     epoch,
		Objective: obj,
		Best:      best,
		Violation: hinge,
		L1:        obj - hinge,
		GradNorm:  math.Sqrt(gradSq),
		StepSize:  math.Sqrt(stepSq),
		Elapsed:   time.Since(et.start),
	})
}

// emit computes the derived quantities and invokes the hook. obj and
// best are the caller's already-computed objective values; the hinge
// part is re-evaluated so the L1 term falls out by subtraction.
func (et *epochTelemetry) emit(p *Problem, epoch int, x, grad []float64, free []bool, obj, best float64) {
	if et == nil {
		return
	}
	hinge := p.TotalViolation(x)
	gradSq, stepSq := 0.0, 0.0
	for i := range x {
		if free != nil && !free[i] {
			continue
		}
		gradSq += grad[i] * grad[i]
		d := x[i] - et.prevX[i]
		stepSq += d * d
	}
	copy(et.prevX, x)
	et.hook(EpochStats{
		Epoch:     epoch,
		Objective: obj,
		Best:      best,
		Violation: hinge,
		L1:        obj - hinge,
		GradNorm:  math.Sqrt(gradSq),
		StepSize:  math.Sqrt(stepSq),
		Elapsed:   time.Since(et.start),
	})
}
