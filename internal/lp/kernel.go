package lp

import (
	"math"
	"sync"
	"sync/atomic"
)

// This file holds the compiled solver kernel. compile flattens a Problem's
// constraint slices into CSR-style index/coefficient arrays and precomputes
// the free-variable mask and pinned-L1 constant; the per-epoch work is then
// a single fused pass that yields the hinge violations needed for the
// gradient, the objective of the previous epoch's iterate, and the
// convergence statistics — where the interpreted loop in the seed solver
// walked every constraint's term lists twice per epoch (once for the
// gradient, once more to recompute the objective from scratch) and paid a
// map lookup per variable for the L1 term.
//
// Determinism contract: Minimize is bit-for-bit reproducible at every
// shard count. Violations are computed independently per constraint, so
// sharding the pass cannot change them; all floating-point reductions
// (hinge fold, L1 fold, gradient scatter, Adam update) run sequentially
// in a fixed order over those per-constraint results. Gradients and
// violations are additionally bit-identical to the pre-kernel
// implementation (kept as minimizeReference); objectives agree to ulps,
// the L1 term being folded through the pinned-L1 constant instead of a
// per-variable scan.

// kernelChunk is the fixed number of constraints one pass task covers.
// Chunk boundaries depend only on the problem size — never on
// Options.Shards — so the work decomposition is stable across shard
// counts; since chunks share no outputs it only affects scheduling.
const kernelChunk = 2048

// kernel is the compiled form of a Problem.
type kernel struct {
	nVars  int
	nCons  int
	c      float64
	lambda float64

	// CSR constraint storage: constraint i owns
	// termVar/termCoef[termStart[i]:termStart[i+1]], LHS terms first and
	// RHS terms after with negated coefficients, so one fused dot product
	// (minus C) reproduces Constraint.Violation exactly.
	termStart []int32
	termVar   []int32
	termCoef  []float64

	masks *problemMask // free mask, pinned indices, pinned-L1 constant

	// viol[i] caches L_i − R_i − C from the last pass; the scatter and the
	// hinge fold both reuse it instead of re-walking the term lists.
	viol []float64
}

// compile flattens p into CSR arrays. It is cheap (one walk over the
// terms) relative to even a single solver epoch.
func compile(p *Problem) *kernel {
	nTerms := 0
	for i := range p.Constraints {
		nTerms += len(p.Constraints[i].LHS) + len(p.Constraints[i].RHS)
	}
	k := &kernel{
		nVars:     p.NumVars,
		nCons:     len(p.Constraints),
		c:         p.C,
		lambda:    p.Lambda,
		termStart: make([]int32, len(p.Constraints)+1),
		termVar:   make([]int32, 0, nTerms),
		termCoef:  make([]float64, 0, nTerms),
		masks:     p.masks(),
		viol:      make([]float64, len(p.Constraints)),
	}
	for i := range p.Constraints {
		c := &p.Constraints[i]
		for _, t := range c.LHS {
			k.termVar = append(k.termVar, int32(t.Var))
			k.termCoef = append(k.termCoef, t.Coef)
		}
		for _, t := range c.RHS {
			k.termVar = append(k.termVar, int32(t.Var))
			k.termCoef = append(k.termCoef, -t.Coef)
		}
		k.termStart[i+1] = int32(len(k.termVar))
	}
	return k
}

// pin resets the known variables to their pinned values.
func (k *kernel) pin(x []float64) {
	for i, v := range k.masks.pinIdx {
		x[v] = k.masks.pinVal[i]
	}
}

// passChunk computes viol[i] for the constraints of one chunk.
func (k *kernel) passChunk(ci int, x []float64) {
	lo := ci * kernelChunk
	hi := lo + kernelChunk
	if hi > k.nCons {
		hi = k.nCons
	}
	termVar, termCoef := k.termVar, k.termCoef
	for i := lo; i < hi; i++ {
		v := -k.c
		for t := k.termStart[i]; t < k.termStart[i+1]; t++ {
			v += termCoef[t] * x[termVar[t]]
		}
		k.viol[i] = v
	}
}

// pass recomputes every constraint's violation at x, sharding the
// constraint loop over up to `shards` goroutines, and returns the total
// hinge violation. The fold over per-constraint values runs sequentially
// in constraint order, so the result does not depend on shards.
func (k *kernel) pass(x []float64, shards int) float64 {
	nChunks := (k.nCons + kernelChunk - 1) / kernelChunk
	if shards > nChunks {
		shards = nChunks
	}
	if shards <= 1 {
		for ci := 0; ci < nChunks; ci++ {
			k.passChunk(ci, x)
		}
	} else {
		var next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		for w := 0; w < shards; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					ci := int(next.Add(1))
					if ci >= nChunks {
						return
					}
					k.passChunk(ci, x)
				}
			}()
		}
		wg.Wait()
	}
	hinge := 0.0
	for _, v := range k.viol {
		if v > 0 {
			hinge += v
		}
	}
	return hinge
}

// objectiveAt adds the λ-weighted free-variable L1 term onto a hinge
// total. Inside the solver x always carries its pinned values, so the
// free-variable L1 mass is the branchless full sum minus the precomputed
// pinned-L1 constant — no per-variable mask test or map lookup.
func (k *kernel) objectiveAt(hinge float64, x []float64) float64 {
	sum := 0.0
	for _, xi := range x {
		sum += xi
	}
	return hinge + k.lambda*sum - k.masks.pinnedL1
}

// scatter rebuilds the subgradient from the violations cached by the last
// pass. It always runs sequentially in constraint order, which keeps the
// gradient bit-identical at every shard count (and to the seed solver).
func (k *kernel) scatter(grad []float64) {
	free := k.masks.free
	for i := range grad {
		if free[i] {
			grad[i] = k.lambda
		} else {
			grad[i] = 0
		}
	}
	termVar, termCoef := k.termVar, k.termCoef
	for i := 0; i < k.nCons; i++ {
		if k.viol[i] <= 0 {
			continue
		}
		for t := k.termStart[i]; t < k.termStart[i+1]; t++ {
			grad[termVar[t]] += termCoef[t]
		}
	}
}

// minimizeKernel is Minimize's engine: compiled constraints, one fused
// pass per epoch, and the previous epoch's objective reused instead of
// recomputed. The iterate/best/stopping bookkeeping is re-timed — epoch
// t's post-update objective is evaluated by epoch t+1's pass (or by one
// trailing pass after the loop) — but the computed sequence of iterates,
// objectives, and stopping decisions is exactly that of minimizeReference.
func minimizeKernel(p *Problem, opts Options) *Result {
	k := compile(p)
	n := p.NumVars
	x := make([]float64, n)
	if len(opts.WarmStart) == n {
		// Warm start: clamp the donated iterate into the box, then pin.
		// Pinned variables always carry their pinned values regardless of
		// what the warm vector says.
		for i, v := range opts.WarmStart {
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			x[i] = v
		}
	}
	k.pin(x)

	if opts.Iterations < 1 {
		hinge := k.pass(x, opts.Shards)
		return &Result{X: x, Objective: k.objectiveAt(hinge, x), Violation: hinge, Iterations: 0}
	}

	grad := make([]float64, n)
	m := make([]float64, n)
	vv := make([]float64, n)
	free := k.masks.free

	best := append([]float64(nil), x...)
	bestObj := math.Inf(1)
	prevObj := math.Inf(1)
	iters := 0
	stale := 0
	tel := newEpochTelemetry(opts, x)
	// Telemetry for the epoch whose objective is still pending.
	var gradSq, stepSq float64
	pending := false

	for t := 1; t <= opts.Iterations; t++ {
		// One fused pass: the violations drive this epoch's gradient AND
		// deliver the objective of the previous epoch's iterate.
		hinge := k.pass(x, opts.Shards)
		if t == 1 {
			bestObj = k.objectiveAt(hinge, x) // objective of the start point
		} else {
			obj := k.objectiveAt(hinge, x)
			if obj < bestObj {
				bestObj = obj
				copy(best, x)
				stale = 0
			} else {
				stale++
			}
			tel.emitPrecomputed(t-1, obj, bestObj, hinge, gradSq, stepSq)
			pending = false
			if math.Abs(prevObj-obj) < opts.Tolerance {
				break
			}
			if opts.Patience > 0 && stale >= opts.Patience {
				break
			}
			prevObj = obj
		}

		k.scatter(grad)
		// Adam update with bias correction, then projection. Pinned
		// variables are never touched, so no re-pinning is needed.
		b1t := 1 - math.Pow(opts.Beta1, float64(t))
		b2t := 1 - math.Pow(opts.Beta2, float64(t))
		gradSq, stepSq = 0, 0
		for i := 0; i < n; i++ {
			if !free[i] {
				continue
			}
			g := grad[i]
			m[i] = opts.Beta1*m[i] + (1-opts.Beta1)*g
			vv[i] = opts.Beta2*vv[i] + (1-opts.Beta2)*g*g
			mHat := m[i] / b1t
			vHat := vv[i] / b2t
			old := x[i]
			x[i] -= opts.LearnRate * mHat / (math.Sqrt(vHat) + opts.Eps)
			if x[i] < 0 {
				x[i] = 0
			} else if x[i] > 1 {
				x[i] = 1
			}
			if tel != nil {
				gradSq += g * g
				d := x[i] - old
				stepSq += d * d
			}
		}
		iters = t
		pending = true
	}

	if pending {
		// The loop exhausted its budget with the last update unevaluated:
		// one trailing violation-only pass settles its objective.
		hinge := k.pass(x, opts.Shards)
		obj := k.objectiveAt(hinge, x)
		if obj < bestObj {
			bestObj = obj
			copy(best, x)
		}
		tel.emitPrecomputed(iters, obj, bestObj, hinge, gradSq, stepSq)
	}
	return &Result{
		X:          best,
		Objective:  bestObj,
		Violation:  k.pass(best, opts.Shards),
		Iterations: iters,
	}
}
