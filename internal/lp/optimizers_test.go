package lp

import "testing"

// benchmarkProblem mirrors the shape of real Seldon systems: seeds pinned
// high, hinge constraints pulling free variables up and down.
func optimizerProblem() *Problem {
	p := &Problem{NumVars: 30, C: 0.75, Lambda: 0.05,
		Known: map[int]float64{0: 1, 1: 1, 2: 0}}
	for i := 3; i < 29; i++ {
		p.Constraints = append(p.Constraints,
			Constraint{LHS: []Term{{0, 1}, {1, 1}}, RHS: []Term{{i, 1}}},
			Constraint{LHS: []Term{{i, 1}, {i + 1, 1}}, RHS: []Term{{2, 1}}},
		)
	}
	return p
}

func TestAllMethodsReachSimilarObjectives(t *testing.T) {
	p := optimizerProblem()
	adam := MinimizeWith(p, Options{Iterations: 3000}, Adam)
	sgd := MinimizeWith(p, Options{Iterations: 3000, LearnRate: 0.2}, SGD)
	ada := MinimizeWith(p, Options{Iterations: 3000, LearnRate: 0.3}, AdaGrad)
	for name, r := range map[string]*Result{"adam": adam, "sgd": sgd, "adagrad": ada} {
		if r.Objective > adam.Objective*1.5+0.5 {
			t.Errorf("%s objective = %v, far from adam's %v", name, r.Objective, adam.Objective)
		}
		for i, v := range r.X {
			if v < 0 || v > 1 {
				t.Fatalf("%s: x[%d] = %v outside box", name, i, v)
			}
		}
		if r.X[0] != 1 || r.X[2] != 0 {
			t.Errorf("%s: known variables moved", name)
		}
	}
}

func TestMinimizeWithAdamMatchesMinimize(t *testing.T) {
	p := optimizerProblem()
	a := Minimize(p, Options{Iterations: 500})
	b := MinimizeWith(p, Options{Iterations: 500}, Adam)
	if a.Objective != b.Objective {
		t.Errorf("objectives differ: %v vs %v", a.Objective, b.Objective)
	}
}

func TestMethodString(t *testing.T) {
	if Adam.String() != "adam" || SGD.String() != "sgd" || AdaGrad.String() != "adagrad" {
		t.Error("method names wrong")
	}
}

func BenchmarkOptimizers(b *testing.B) {
	p := randomishProblem(2000, 20000)
	for _, m := range []Method{Adam, SGD, AdaGrad} {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := MinimizeWith(p, Options{Iterations: 100}, m)
				b.ReportMetric(r.Objective, "objective")
			}
		})
	}
}
