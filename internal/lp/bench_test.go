package lp

import "testing"

// randomishProblem builds a deterministic mid-size constraint system with
// the structure the Seldon pipeline produces (two LHS terms, a handful of
// RHS terms, some pinned variables).
func randomishProblem(nVars, nCons int) *Problem {
	p := &Problem{NumVars: nVars, C: 0.75, Lambda: 0.1, Known: map[int]float64{}}
	for i := 0; i < nVars/10; i++ {
		p.Known[i*7%nVars] = float64(i % 2)
	}
	for i := 0; i < nCons; i++ {
		a := (i * 13) % nVars
		bb := (i*29 + 7) % nVars
		c := (i*31 + 3) % nVars
		d := (i*37 + 11) % nVars
		p.Constraints = append(p.Constraints, Constraint{
			LHS: []Term{{a, 1}, {bb, 1}},
			RHS: []Term{{c, 0.5}, {d, 0.5}},
		})
	}
	return p
}

func BenchmarkMinimizeSmall(b *testing.B) {
	p := randomishProblem(200, 1000)
	for i := 0; i < b.N; i++ {
		Minimize(p, Options{Iterations: 100})
	}
}

func BenchmarkMinimizeLarge(b *testing.B) {
	p := randomishProblem(5000, 50000)
	for i := 0; i < b.N; i++ {
		Minimize(p, Options{Iterations: 100})
	}
}
