package lp

import (
	"fmt"
	"testing"
)

// randomishProblem builds a deterministic mid-size constraint system with
// the structure the Seldon pipeline produces (two LHS terms, a handful of
// RHS terms, some pinned variables).
func randomishProblem(nVars, nCons int) *Problem {
	p := &Problem{NumVars: nVars, C: 0.75, Lambda: 0.1, Known: map[int]float64{}}
	for i := 0; i < nVars/10; i++ {
		p.Known[i*7%nVars] = float64(i % 2)
	}
	for i := 0; i < nCons; i++ {
		a := (i * 13) % nVars
		bb := (i*29 + 7) % nVars
		c := (i*31 + 3) % nVars
		d := (i*37 + 11) % nVars
		p.Constraints = append(p.Constraints, Constraint{
			LHS: []Term{{a, 1}, {bb, 1}},
			RHS: []Term{{c, 0.5}, {d, 0.5}},
		})
	}
	return p
}

func BenchmarkMinimizeSmall(b *testing.B) {
	p := randomishProblem(200, 1000)
	for i := 0; i < b.N; i++ {
		Minimize(p, Options{Iterations: 100})
	}
}

func BenchmarkMinimizeLarge(b *testing.B) {
	p := randomishProblem(5000, 50000)
	for i := 0; i < b.N; i++ {
		Minimize(p, Options{Iterations: 100})
	}
}

// BenchmarkMinimizeSeedBaseline is the pre-kernel solver on the large
// problem; compare against BenchmarkMinimizeKernel/shards=1 for the fused
// kernel's per-epoch win and higher shard counts for the parallel win.
func BenchmarkMinimizeSeedBaseline(b *testing.B) {
	p := randomishProblem(5000, 50000)
	for i := 0; i < b.N; i++ {
		minimizeReference(p, Options{Iterations: 100})
	}
}

func BenchmarkMinimizeKernel(b *testing.B) {
	p := randomishProblem(5000, 50000)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Minimize(p, Options{Iterations: 100, Shards: shards})
			}
		})
	}
}

// BenchmarkObjective isolates the satellite fix: the free-mask fold vs
// the seed's per-variable map lookup.
func BenchmarkObjective(b *testing.B) {
	p := randomishProblem(5000, 50000)
	x := make([]float64, p.NumVars)
	for i := range x {
		x[i] = float64(i%7) / 7
	}
	p.masks() // build the cache outside the timed loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = p.Objective(x)
	}
}

var sink float64
