// Package specio is the persistent store format for learned taint
// specifications: a versioned JSON codec that decouples learning
// (cmd/seldon -o) from checking (cmd/seldond, cmd/taintcheck).
//
// The format carries a schema version, provenance metadata (corpus
// fingerprint, file/event counts, generator), the three role lists with
// sink argument restrictions, and the blacklist. Two guarantees hold:
//
//   - Round trip: Decode(Encode(s)) reproduces s exactly — entry order,
//     sink argument restrictions, and blacklist patterns included
//     (checked by Equal).
//   - Byte stability: encoding never iterates a Go map, so consecutive
//     saves of the same specification are byte-identical — safe to diff,
//     content-address, and cache.
package specio

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"seldon/internal/propgraph"
	"seldon/internal/spec"
)

// SchemaVersion is the current store schema. Decode rejects files whose
// schema is newer (a reader can't safely interpret fields it doesn't
// know) and files from before versioning existed.
const SchemaVersion = 1

// Meta is the provenance block of a spec store.
type Meta struct {
	// CorpusFingerprint identifies the corpus the specification was
	// learned from (see Fingerprint); empty for hand-written stores.
	CorpusFingerprint string `json:"corpus_fingerprint,omitempty"`
	// CorpusFiles and Events record the corpus size and the number of
	// propagation-graph events learning saw.
	CorpusFiles int `json:"corpus_files,omitempty"`
	Events      int `json:"events,omitempty"`
	// SeedEntries and LearnedEntries split the store's role entries into
	// the hand-labeled seed and the inferred remainder.
	SeedEntries    int `json:"seed_entries,omitempty"`
	LearnedEntries int `json:"learned_entries,omitempty"`
	// Generator names the producing tool, e.g. "seldon".
	Generator string `json:"generator,omitempty"`
}

// sinkEntry is a sink with its optional dangerous-argument restriction.
type sinkEntry struct {
	Rep  string `json:"rep"`
	Args []int  `json:"args,omitempty"`
}

// store is the on-disk shape.
type store struct {
	Schema     int         `json:"schema"`
	Meta       Meta        `json:"meta"`
	Sources    []string    `json:"sources"`
	Sanitizers []string    `json:"sanitizers"`
	Sinks      []sinkEntry `json:"sinks"`
	Blacklist  []string    `json:"blacklist"`
}

// Encode writes s as versioned, indented JSON. Entry order is preserved
// from the Spec (learning emits a deterministic order), and no map is
// iterated, so output bytes are a pure function of the specification.
func Encode(w io.Writer, s *spec.Spec, meta Meta) error {
	st := store{
		Schema:     SchemaVersion,
		Meta:       meta,
		Sources:    append([]string{}, s.Sources...),
		Sanitizers: append([]string{}, s.Sanitizers...),
		Sinks:      make([]sinkEntry, 0, len(s.Sinks)),
		Blacklist:  make([]string, 0, len(s.Blacklist)),
	}
	for _, rep := range s.Sinks {
		st.Sinks = append(st.Sinks, sinkEntry{Rep: rep, Args: s.SinkArgsOf(rep)})
	}
	for _, p := range s.Blacklist {
		st.Blacklist = append(st.Blacklist, p.String())
	}
	data, err := json.MarshalIndent(&st, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// Decode reads a store produced by Encode, validating the schema
// version and rejecting unknown fields (corruption shows up as an error,
// not as silently dropped entries).
func Decode(r io.Reader) (*spec.Spec, Meta, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var st store
	if err := dec.Decode(&st); err != nil {
		return nil, Meta{}, fmt.Errorf("specio: decode: %w", err)
	}
	if st.Schema == 0 {
		return nil, Meta{}, fmt.Errorf("specio: missing schema version (not a spec store?)")
	}
	if st.Schema > SchemaVersion {
		return nil, Meta{}, fmt.Errorf("specio: schema %d is newer than supported %d", st.Schema, SchemaVersion)
	}
	s := spec.New()
	for _, rep := range st.Sources {
		s.Add(propgraph.Source, rep)
	}
	for _, rep := range st.Sanitizers {
		s.Add(propgraph.Sanitizer, rep)
	}
	for _, e := range st.Sinks {
		s.Add(propgraph.Sink, e.Rep)
		if len(e.Args) > 0 {
			s.RestrictSinkArgs(e.Rep, e.Args...)
		}
	}
	for _, p := range st.Blacklist {
		s.AddBlacklist(p)
	}
	return s, st.Meta, nil
}

// Save writes the store to path (0644).
func Save(path string, s *spec.Spec, meta Meta) error {
	var buf bytes.Buffer
	if err := Encode(&buf, s, meta); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// Load reads a store from path.
func Load(path string) (*spec.Spec, Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Meta{}, err
	}
	defer f.Close()
	return Decode(f)
}

// FingerprintStore returns the stable identity of a specification
// store: sha256 over its canonical encoding. Encode is byte-stable, so
// two stores with the same entries, metadata, and order always share a
// fingerprint — the serving layer uses it to tell whether a reload
// actually changed anything.
func FingerprintStore(s *spec.Spec, meta Meta) (string, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, s, meta); err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return fmt.Sprintf("sha256:%x", sum[:]), nil
}

// FileHash returns the sha256 of one file's content, hex-encoded — the
// per-file leaf the corpus fingerprint is built from. Shard manifests
// carry these hashes so a distributed coordinator can reproduce the
// corpus fingerprint without ever seeing the file contents.
func FileHash(content string) string {
	sum := sha256.Sum256([]byte(content))
	return fmt.Sprintf("%x", sum[:])
}

// Fingerprint hashes a corpus (name → source) into a stable identifier.
// It is Merkle-shaped: sha256 over length-prefixed (name, FileHash)
// pairs in sorted name order — a pure function of the corpus contents,
// independent of map iteration order, and composable from per-file
// hashes alone (see FingerprintHashes), which is what lets a shard
// coordinator stamp the same fingerprint a single-process run would.
func Fingerprint(files map[string]string) string {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	hashes := make([]string, len(names))
	for i, n := range names {
		hashes[i] = FileHash(files[n])
	}
	return FingerprintHashes(names, hashes)
}

// FingerprintHashes computes the corpus fingerprint from (name, hash)
// pairs, where hashes[i] = FileHash of names[i]'s content and names are
// in sorted order. Fingerprint(files) == FingerprintHashes over the
// same corpus — the equality the distributed determinism oracle rests
// on.
func FingerprintHashes(names, hashes []string) string {
	h := sha256.New()
	var lenBuf [8]byte
	writePart := func(s string) {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(s)))
		h.Write(lenBuf[:])
		h.Write([]byte(s))
	}
	for i, n := range names {
		writePart(n)
		writePart(hashes[i])
	}
	return fmt.Sprintf("sha256:%x", h.Sum(nil))
}

// Equal reports whether two specifications are identical: same role
// entries in the same order, same sink argument restrictions, and the
// same blacklist patterns. It is the round-trip oracle for this package.
func Equal(a, b *spec.Spec) bool {
	if !stringsEqual(a.Sources, b.Sources) ||
		!stringsEqual(a.Sanitizers, b.Sanitizers) ||
		!stringsEqual(a.Sinks, b.Sinks) {
		return false
	}
	for _, rep := range a.Sinks {
		if !intsEqual(a.SinkArgsOf(rep), b.SinkArgsOf(rep)) {
			return false
		}
	}
	if len(a.Blacklist) != len(b.Blacklist) {
		return false
	}
	for i := range a.Blacklist {
		if a.Blacklist[i].String() != b.Blacklist[i].String() {
			return false
		}
	}
	return true
}

func stringsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
