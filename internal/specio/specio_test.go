package specio

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seldon/internal/propgraph"
	"seldon/internal/spec"
)

var update = flag.Bool("update", false, "rewrite golden files")

// sampleSpec builds a specification exercising every store feature:
// multiple entries per role, an argument-restricted sink, and glob
// blacklist patterns.
func sampleSpec() *spec.Spec {
	s := spec.New()
	s.Add(propgraph.Source, "flask.request.args.get()")
	s.Add(propgraph.Source, "flask.request.files['f'].filename")
	s.Add(propgraph.Sanitizer, "werkzeug.secure_filename()")
	s.Add(propgraph.Sink, "os.system()")
	s.Add(propgraph.Sink, "webdb.runquery()")
	s.RestrictSinkArgs("webdb.runquery()", 0, 2)
	s.AddBlacklist("*.append()")
	s.AddBlacklist("builtins.len()")
	return s
}

func sampleMeta() Meta {
	return Meta{
		CorpusFingerprint: "sha256:deadbeef",
		CorpusFiles:       240,
		Events:            1234,
		SeedEntries:       5,
		LearnedEntries:    17,
		Generator:         "seldon",
	}
}

func TestRoundTrip(t *testing.T) {
	s := sampleSpec()
	var buf bytes.Buffer
	if err := Encode(&buf, s, sampleMeta()); err != nil {
		t.Fatal(err)
	}
	got, meta, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(s, got) {
		t.Errorf("round trip changed the spec:\nin:  %s\nout: %s", s.Format(), got.Format())
	}
	if meta != sampleMeta() {
		t.Errorf("meta round trip: got %+v", meta)
	}
	if args := got.SinkArgsOf("webdb.runquery()"); len(args) != 2 || args[0] != 0 || args[1] != 2 {
		t.Errorf("sink args lost: %v", args)
	}
	if !got.Blacklisted("items.append()") {
		t.Error("blacklist glob lost")
	}
}

func TestByteStableAcrossSaves(t *testing.T) {
	s := sampleSpec()
	var a, b bytes.Buffer
	if err := Encode(&a, s, sampleMeta()); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b, s, sampleMeta()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two consecutive encodes differ")
	}
	// And across a reload: save(load(save(s))) == save(s).
	reloaded, meta, err := Decode(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	if err := Encode(&c, reloaded, meta); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Errorf("encode after reload differs:\n%s\nvs\n%s", a.String(), c.String())
	}
}

func TestGolden(t *testing.T) {
	path := filepath.Join("testdata", "store_v1.json")
	var buf bytes.Buffer
	if err := Encode(&buf, sampleSpec(), sampleMeta()); err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/specio -update` to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("golden mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
	// The golden file must itself load: format changes that break old
	// stores fail here, not in production.
	s, meta, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(s, sampleSpec()) || meta != sampleMeta() {
		t.Error("golden file decodes to a different spec")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "specs.json")
	if err := Save(path, sampleSpec(), sampleMeta()); err != nil {
		t.Fatal(err)
	}
	s, meta, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(s, sampleSpec()) {
		t.Error("file round trip changed the spec")
	}
	if meta.CorpusFiles != 240 {
		t.Errorf("meta lost: %+v", meta)
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"not json":       "o: flask.request.args.get()\n",
		"missing schema": `{"meta":{},"sources":[],"sanitizers":[],"sinks":[],"blacklist":[]}`,
		"future schema":  `{"schema":999,"meta":{},"sources":[],"sanitizers":[],"sinks":[],"blacklist":[]}`,
		"unknown field":  `{"schema":1,"bogus":true,"sources":[],"sanitizers":[],"sinks":[],"blacklist":[]}`,
	}
	for name, in := range cases {
		if _, _, err := Decode(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Decode accepted bad input", name)
		}
	}
}

func TestFingerprint(t *testing.T) {
	a := map[string]string{"a.py": "x = 1\n", "b.py": "y = 2\n"}
	b := map[string]string{"b.py": "y = 2\n", "a.py": "x = 1\n"}
	if Fingerprint(a) != Fingerprint(b) {
		t.Error("fingerprint depends on map order")
	}
	c := map[string]string{"a.py": "x = 1\n", "b.py": "y = 3\n"}
	if Fingerprint(a) == Fingerprint(c) {
		t.Error("fingerprint ignores content")
	}
	// Length prefixing: moving a boundary must change the hash.
	d := map[string]string{"a.pyx": " = 1\n", "b.py": "y = 2\n"}
	if Fingerprint(a) == Fingerprint(d) {
		t.Error("fingerprint is boundary-ambiguous")
	}
	if !strings.HasPrefix(Fingerprint(a), "sha256:") {
		t.Error("fingerprint missing algorithm prefix")
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	base := sampleSpec()
	if !Equal(base, sampleSpec()) {
		t.Fatal("Equal(s, s) = false")
	}
	mutations := []func(*spec.Spec){
		func(s *spec.Spec) { s.Add(propgraph.Source, "extra.source()") },
		func(s *spec.Spec) { s.Add(propgraph.Sink, "extra.sink()") },
		func(s *spec.Spec) { s.RestrictSinkArgs("os.system()", 1) },
		func(s *spec.Spec) { s.AddBlacklist("*.extra()") },
	}
	for i, mutate := range mutations {
		m := sampleSpec()
		mutate(m)
		if Equal(base, m) {
			t.Errorf("mutation %d not detected", i)
		}
	}
}

func TestFingerprintStore(t *testing.T) {
	s := sampleSpec()
	meta := Meta{Generator: "seldon", SeedEntries: 2}
	fp, err := FingerprintStore(s, meta)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(fp, "sha256:") {
		t.Errorf("fingerprint = %q, want sha256: prefix", fp)
	}
	again, err := FingerprintStore(sampleSpec(), meta)
	if err != nil {
		t.Fatal(err)
	}
	if again != fp {
		t.Error("fingerprint is not stable across identical stores")
	}
	changed := sampleSpec()
	changed.Add(propgraph.Source, "extra.source()")
	if cfp, _ := FingerprintStore(changed, meta); cfp == fp {
		t.Error("fingerprint ignores spec entries")
	}
	if mfp, _ := FingerprintStore(s, Meta{Generator: "other"}); mfp == fp {
		t.Error("fingerprint ignores metadata")
	}
}
