// Package core implements Seldon's end-to-end specification-learning
// pipeline (paper Fig. 1): per-program propagation graphs are merged into
// a global graph, the linear constraint system of §4 is built and solved
// with projected Adam, and roles are selected per event with the
// exponentially decaying backoff threshold of §7.1.
package core

import (
	"math"
	"sort"
	"time"

	"seldon/internal/constraints"
	"seldon/internal/fpcache"
	"seldon/internal/lp"
	"seldon/internal/obs"
	"seldon/internal/obs/trace"
	"seldon/internal/propgraph"
	"seldon/internal/spec"
)

// Config collects the tunable parameters; zero values select the paper's
// settings (C = 0.75, λ = 0.1, backoff cutoff 5, threshold 0.1, decay 0.8).
type Config struct {
	Constraints constraints.Options
	Solver      lp.Options
	// Threshold t for selecting roles (§7.2: 0.1).
	Threshold float64
	// BackoffDecay discounts less specific backoff options: option i
	// (0-based) is selected when decay^i * score >= Threshold (§7.1: 0.8).
	BackoffDecay float64
	// Workers bounds the goroutines the corpus front-end uses for
	// per-file parse + dataflow; 0 selects runtime.GOMAXPROCS(0) and 1
	// keeps the sequential path. Results are byte-identical at every
	// worker count (see AnalyzeFiles).
	Workers int
	// Cache, when non-nil, is the persistent per-file analysis cache
	// (internal/fpcache): each front-end worker consults it before
	// parse+dataflow and writes back on miss. Results are byte-identical
	// with or without it, from any mix of hits and misses.
	Cache *fpcache.Cache
	// Scratch, when non-nil, donates reusable per-file parse+dataflow
	// buffers (token slice, analyzer tables) to the front-end. It is
	// consulted only on the sequential path (one worker) — callers that
	// run one file per request (the serving hot path) pool these across
	// requests; the parallel corpus path allocates per worker as before.
	// Results are byte-identical with or without it.
	Scratch *Scratch
	// Metrics, when non-nil, receives stage timers, per-file timings,
	// parse-error counters, and the solver convergence trace. Nil keeps
	// the pipeline on its telemetry-free fast path.
	Metrics *obs.Registry
	// Span, when non-nil, is the parent span the run's stage spans hang
	// off: each pipeline stage becomes a timed child, so the whole run
	// decomposes in the owning trace (obs/trace). Nil disables tracing.
	Span *trace.Span
	// Log, when non-nil, receives one structured line per stage.
	Log *obs.Logger
}

func (c Config) withDefaults() Config {
	if c.Threshold == 0 {
		c.Threshold = 0.1
	}
	if c.BackoffDecay == 0 {
		c.BackoffDecay = 0.8
	}
	return c
}

// Prediction is one selected (event, role) with the representation and
// score that triggered the selection.
type Prediction struct {
	EventID int
	Role    propgraph.Role
	Rep     string  // the triggering (most specific passing) representation
	Score   float64 // raw solver score of that representation
	Backoff int     // index of the triggering backoff option
}

// StageTiming records the wall time of one pipeline stage.
type StageTiming struct {
	Name     string
	Duration time.Duration
}

// Result is the outcome of a learning run.
type Result struct {
	Graph         *propgraph.Graph
	System        *constraints.System
	Solution      []float64
	InferenceTime time.Duration

	// Stages lists per-stage wall times in pipeline order (parse,
	// dataflow, and union appear only for LearnFromSources runs).
	Stages []StageTiming
	// SolverEpochs is the number of epochs the solver ran.
	SolverEpochs int
	// ParseErrors counts files whose parse reported an error (analysis
	// still ran over the recovered AST); ParseErrorFiles names them in
	// sorted order.
	ParseErrors     int
	ParseErrorFiles []string
	// FrontendWall is the elapsed time of the (possibly parallel)
	// parse+dataflow section; Workers is the pool size it used. The
	// parse/dataflow entries of Stages record summed per-file times, so
	// FrontendWall < parse+dataflow signals effective parallelism.
	FrontendWall time.Duration
	Workers      int
	// Cache activity of the front-end (all zero without Config.Cache);
	// see FrontEnd for the field semantics.
	CacheHits   int
	CacheMisses int
	CacheBytes  int64
	CacheSaved  time.Duration

	// InternSymbols and InternBytesSaved summarize the learned-on graph's
	// symbol table: the number of distinct representation strings, and the
	// string bytes interning avoids storing (every occurrence's length
	// minus the store-each-string-once footprint of the table).
	InternSymbols    int
	InternBytesSaved int64

	// Predictions lists every selected (event, role), event-ID order.
	Predictions []Prediction
	// EventRoles aggregates predictions per event.
	EventRoles map[int]propgraph.RoleSet
}

// StageTime returns the recorded duration of a named stage, or 0.
func (r *Result) StageTime(name string) time.Duration {
	for _, st := range r.Stages {
		if st.Name == name {
			return st.Duration
		}
	}
	return 0
}

// runStage times f and records the result in Result.Stages, the metrics
// registry, the stage log, and — when Config.Span is set — as a child
// span of the run's trace.
func (r *Result) runStage(cfg Config, name string, f func()) {
	sp := cfg.Span.StartChild(name)
	t0 := time.Now()
	f()
	d := time.Since(t0)
	sp.End()
	r.Stages = append(r.Stages, StageTiming{Name: name, Duration: d})
	cfg.Metrics.ObserveDuration(name, d)
	cfg.Log.Log(name, "dur", d.Round(time.Microsecond))
}

// Learn runs specification inference over a global propagation graph.
func Learn(g *propgraph.Graph, seed *spec.Spec, cfg Config) *Result {
	cfg = cfg.withDefaults()
	start := time.Now()
	res := &Result{
		Graph:      g,
		EventRoles: make(map[int]propgraph.RoleSet),
	}

	copts := cfg.Constraints
	copts.Metrics = cfg.Metrics
	if copts.Workers == 0 {
		copts.Workers = cfg.Workers
	}
	res.runStage(cfg, obs.StageConstraints, func() {
		res.System = constraints.Build(g, seed, copts)
	})

	res.solveAndSelect(cfg, start)
	return res
}

// LearnPrepared runs the solve + select half of the pipeline over an
// already-built constraint system, skipping constraints.Build. It is the
// entry point for callers that assemble the system some other way — the
// incremental session (internal/incr) rebuilds only the constraint
// blocks whose supporting files changed and hands the spliced system
// here, typically with Config.Solver.WarmStart carrying the previous
// solution. The result is identical to Learn on the same (graph, system)
// pair.
func LearnPrepared(g *propgraph.Graph, sys *constraints.System, cfg Config) *Result {
	cfg = cfg.withDefaults()
	start := time.Now()
	res := &Result{
		Graph:      g,
		System:     sys,
		EventRoles: make(map[int]propgraph.RoleSet),
	}
	res.solveAndSelect(cfg, start)
	return res
}

// solveAndSelect finishes a learning run whose System is already in
// place: interning summary, projected-Adam solve, and role selection.
func (res *Result) solveAndSelect(cfg Config, start time.Time) {
	g := res.Graph
	// Interning summary of the graph just learned on.
	strs := g.Syms.Strings()
	var occBytes int64
	for _, e := range g.Events {
		for _, s := range e.RepIDs {
			occBytes += int64(len(strs[s]))
		}
	}
	res.InternSymbols = len(strs)
	res.InternBytesSaved = occBytes - g.Syms.Bytes()
	cfg.Metrics.Set(obs.GaugeInternSymbols, float64(res.InternSymbols))
	cfg.Metrics.Set(obs.GaugeInternBytesSaved, float64(res.InternBytesSaved))

	solverOpts := cfg.Solver
	if cfg.Metrics != nil {
		user := solverOpts.OnEpoch
		reg := cfg.Metrics
		solverOpts.OnEpoch = func(s lp.EpochStats) {
			reg.AppendTrace(obs.TraceSolver, int64(s.Epoch), map[string]float64{
				"objective": s.Objective,
				"best":      s.Best,
				"violation": s.Violation,
				"l1":        s.L1,
				"grad_norm": s.GradNorm,
				"step_size": s.StepSize,
				"elapsed_s": s.Elapsed.Seconds(),
			})
			if user != nil {
				user(s)
			}
		}
	}
	var sol *lp.Result
	res.runStage(cfg, obs.StageSolve, func() {
		sol = lp.Minimize(res.System.Problem, solverOpts)
	})
	res.Solution = sol.X
	res.SolverEpochs = sol.Iterations
	cfg.Metrics.Set(obs.GaugeSolverEpochs, float64(sol.Iterations))
	cfg.Metrics.Set("solver.objective", sol.Objective)
	cfg.Metrics.Set("solver.violation", sol.Violation)
	cfg.Log.Log("solver.done", "epochs", sol.Iterations,
		"objective", sol.Objective, "violation", sol.Violation)

	res.runStage(cfg, obs.StageSelect, func() {
		res.selectRoles(cfg)
	})
	cfg.Metrics.Set("select.predictions", float64(len(res.Predictions)))
	res.InferenceTime = time.Since(start)
}

// LearnFromSources parses and analyzes a set of Python files (name →
// source text) and learns over their union graph. Per-file work is fanned
// out over Config.Workers goroutines (see AnalyzeFiles); file order is
// made deterministic by sorting names and merging in that order, so the
// result is byte-identical at every worker count. Parse errors are
// tolerated — files contribute whatever was recovered — but they are not
// silent: they are counted in Result.ParseErrors (and Config.Metrics),
// listed in Result.ParseErrorFiles, and logged through Config.Log.
func LearnFromSources(files map[string]string, seed *spec.Spec, cfg Config) *Result {
	feStart := time.Now()
	fe := AnalyzeFiles(files, cfg)
	pre := []StageTiming{
		{Name: obs.StageParse, Duration: fe.ParseTotal},
		{Name: obs.StageDataflow, Duration: fe.AnalyzeTotal},
	}
	if cfg.Cache != nil {
		pre = append(pre, StageTiming{Name: obs.StageCache, Duration: fe.CacheWall})
	}
	// The front-end interleaves per-file parse and dataflow across the
	// pool, so the two stages exist only as summed per-file times; record
	// them as completed spans laid end to end inside the front-end wall.
	cfg.Span.AddChildAt(obs.StageParse, feStart, fe.ParseTotal,
		trace.String("files", len(files)), trace.String("summed", "per-file"))
	cfg.Span.AddChildAt(obs.StageDataflow, feStart.Add(fe.ParseTotal), fe.AnalyzeTotal,
		trace.String("summed", "per-file"))
	t0 := time.Now()
	unionSpan := cfg.Span.StartChild(obs.StageUnion)
	union := propgraph.Union(fe.Graphs...)
	unionSpan.End()
	unionD := time.Since(t0)
	cfg.Metrics.ObserveDuration(obs.StageUnion, unionD)
	cfg.Log.Log(obs.StageUnion, "dur", unionD.Round(time.Microsecond))
	pre = append(pre, StageTiming{Name: obs.StageUnion, Duration: unionD})

	res := Learn(union, seed, cfg)
	res.Stages = append(pre, res.Stages...)
	res.ParseErrors = len(fe.ParseErrorFiles)
	res.ParseErrorFiles = fe.ParseErrorFiles
	res.FrontendWall = fe.Wall
	res.Workers = fe.Workers
	res.CacheHits = fe.CacheHits
	res.CacheMisses = fe.CacheMisses
	res.CacheBytes = fe.CacheBytes
	res.CacheSaved = fe.CacheSaved
	return res
}

// ScoreOf returns the solver score for (rep, role), or 0 when the
// representation has no variable.
func (r *Result) ScoreOf(rep string, role propgraph.Role) float64 {
	id := r.System.VarID(rep, role)
	if id < 0 {
		return 0
	}
	return r.Solution[id]
}

// selectRoles applies §7.1: for each candidate event and allowed role,
// walk the backoff options from most to least specific and select the
// role if decay^i * score_i passes the threshold.
func (r *Result) selectRoles(cfg Config) {
	strs := r.System.Syms.Strings()
	for idx := range r.System.EventInfos {
		info := &r.System.EventInfos[idx]
		for _, role := range propgraph.Roles() {
			if !info.Roles.Has(role) {
				continue
			}
			for i, sym := range info.RepIDs {
				var score float64
				if id := r.System.VarIDSym(sym, role); id >= 0 {
					score = r.Solution[id]
				}
				if math.Pow(cfg.BackoffDecay, float64(i))*score >= cfg.Threshold {
					r.Predictions = append(r.Predictions, Prediction{
						EventID: info.EventID, Role: role, Rep: strs[sym],
						Score: score, Backoff: i,
					})
					r.EventRoles[info.EventID] = r.EventRoles[info.EventID].With(role)
					break
				}
			}
		}
	}
}

// PredictedCounts returns the number of events predicted for each role.
func (r *Result) PredictedCounts() map[propgraph.Role]int {
	out := make(map[propgraph.Role]int)
	for _, p := range r.Predictions {
		out[p.Role]++
	}
	return out
}

// LearnedSpec converts the predictions into a representation-level
// specification usable by the taint analyzer. Each (rep, role) keeps its
// maximal score; seed entries are merged in (they remain authoritative).
func (r *Result) LearnedSpec(seed *spec.Spec) *spec.Spec {
	s := spec.New()
	for _, e := range seed.Entries() {
		s.Add(e.Role, e.Rep)
	}
	s.Blacklist = seed.Blacklist
	for _, p := range r.Predictions {
		s.Add(p.Role, p.Rep)
	}
	return s
}

// LearnedEntries returns the predictions that are NOT in the seed,
// deduplicated by (rep, role) with maximal score, sorted by descending
// score then rep. These are the paper's "inferred specifications".
func (r *Result) LearnedEntries(seed *spec.Spec) []spec.Entry {
	type key struct {
		rep  string
		role propgraph.Role
	}
	best := make(map[key]float64)
	for _, p := range r.Predictions {
		if seed.RolesOf(p.Rep).Has(p.Role) {
			continue
		}
		k := key{p.Rep, p.Role}
		if p.Score > best[k] {
			best[k] = p.Score
		}
	}
	out := make([]spec.Entry, 0, len(best))
	for k, sc := range best {
		out = append(out, spec.Entry{Rep: k.rep, Role: k.role, Score: sc})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Role != out[j].Role {
			return out[i].Role < out[j].Role
		}
		return out[i].Rep < out[j].Rep
	})
	return out
}
