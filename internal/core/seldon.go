// Package core implements Seldon's end-to-end specification-learning
// pipeline (paper Fig. 1): per-program propagation graphs are merged into
// a global graph, the linear constraint system of §4 is built and solved
// with projected Adam, and roles are selected per event with the
// exponentially decaying backoff threshold of §7.1.
package core

import (
	"math"
	"sort"
	"time"

	"seldon/internal/constraints"
	"seldon/internal/dataflow"
	"seldon/internal/lp"
	"seldon/internal/propgraph"
	"seldon/internal/pyparse"
	"seldon/internal/spec"
)

// Config collects the tunable parameters; zero values select the paper's
// settings (C = 0.75, λ = 0.1, backoff cutoff 5, threshold 0.1, decay 0.8).
type Config struct {
	Constraints constraints.Options
	Solver      lp.Options
	// Threshold t for selecting roles (§7.2: 0.1).
	Threshold float64
	// BackoffDecay discounts less specific backoff options: option i
	// (0-based) is selected when decay^i * score >= Threshold (§7.1: 0.8).
	BackoffDecay float64
}

func (c Config) withDefaults() Config {
	if c.Threshold == 0 {
		c.Threshold = 0.1
	}
	if c.BackoffDecay == 0 {
		c.BackoffDecay = 0.8
	}
	return c
}

// Prediction is one selected (event, role) with the representation and
// score that triggered the selection.
type Prediction struct {
	EventID int
	Role    propgraph.Role
	Rep     string  // the triggering (most specific passing) representation
	Score   float64 // raw solver score of that representation
	Backoff int     // index of the triggering backoff option
}

// Result is the outcome of a learning run.
type Result struct {
	Graph         *propgraph.Graph
	System        *constraints.System
	Solution      []float64
	InferenceTime time.Duration

	// Predictions lists every selected (event, role), event-ID order.
	Predictions []Prediction
	// EventRoles aggregates predictions per event.
	EventRoles map[int]propgraph.RoleSet
}

// Learn runs specification inference over a global propagation graph.
func Learn(g *propgraph.Graph, seed *spec.Spec, cfg Config) *Result {
	cfg = cfg.withDefaults()
	start := time.Now()
	sys := constraints.Build(g, seed, cfg.Constraints)
	sol := lp.Minimize(sys.Problem, cfg.Solver)
	res := &Result{
		Graph:         g,
		System:        sys,
		Solution:      sol.X,
		EventRoles:    make(map[int]propgraph.RoleSet),
		InferenceTime: time.Since(start),
	}
	res.selectRoles(cfg)
	return res
}

// LearnFromSources parses and analyzes a set of Python files (name →
// source text) and learns over their union graph. File order is made
// deterministic by sorting names. Parse errors are tolerated: files
// contribute whatever was recovered.
func LearnFromSources(files map[string]string, seed *spec.Spec, cfg Config) *Result {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	graphs := make([]*propgraph.Graph, 0, len(names))
	for _, n := range names {
		mod, _ := pyparse.Parse(n, files[n])
		graphs = append(graphs, dataflow.AnalyzeModule(mod, dataflow.Options{}))
	}
	return Learn(propgraph.Union(graphs...), seed, cfg)
}

// ScoreOf returns the solver score for (rep, role), or 0 when the
// representation has no variable.
func (r *Result) ScoreOf(rep string, role propgraph.Role) float64 {
	id := r.System.VarID(rep, role)
	if id < 0 {
		return 0
	}
	return r.Solution[id]
}

// selectRoles applies §7.1: for each candidate event and allowed role,
// walk the backoff options from most to least specific and select the
// role if decay^i * score_i passes the threshold.
func (r *Result) selectRoles(cfg Config) {
	for idx := range r.System.EventInfos {
		info := &r.System.EventInfos[idx]
		for _, role := range propgraph.Roles() {
			if !info.Roles.Has(role) {
				continue
			}
			for i, rep := range info.Reps {
				score := r.ScoreOf(rep, role)
				if math.Pow(cfg.BackoffDecay, float64(i))*score >= cfg.Threshold {
					r.Predictions = append(r.Predictions, Prediction{
						EventID: info.EventID, Role: role, Rep: rep,
						Score: score, Backoff: i,
					})
					r.EventRoles[info.EventID] = r.EventRoles[info.EventID].With(role)
					break
				}
			}
		}
	}
}

// PredictedCounts returns the number of events predicted for each role.
func (r *Result) PredictedCounts() map[propgraph.Role]int {
	out := make(map[propgraph.Role]int)
	for _, p := range r.Predictions {
		out[p.Role]++
	}
	return out
}

// LearnedSpec converts the predictions into a representation-level
// specification usable by the taint analyzer. Each (rep, role) keeps its
// maximal score; seed entries are merged in (they remain authoritative).
func (r *Result) LearnedSpec(seed *spec.Spec) *spec.Spec {
	s := spec.New()
	for _, e := range seed.Entries() {
		s.Add(e.Role, e.Rep)
	}
	s.Blacklist = seed.Blacklist
	for _, p := range r.Predictions {
		s.Add(p.Role, p.Rep)
	}
	return s
}

// LearnedEntries returns the predictions that are NOT in the seed,
// deduplicated by (rep, role) with maximal score, sorted by descending
// score then rep. These are the paper's "inferred specifications".
func (r *Result) LearnedEntries(seed *spec.Spec) []spec.Entry {
	type key struct {
		rep  string
		role propgraph.Role
	}
	best := make(map[key]float64)
	for _, p := range r.Predictions {
		if seed.RolesOf(p.Rep).Has(p.Role) {
			continue
		}
		k := key{p.Rep, p.Role}
		if p.Score > best[k] {
			best[k] = p.Score
		}
	}
	out := make([]spec.Entry, 0, len(best))
	for k, sc := range best {
		out = append(out, spec.Entry{Rep: k.rep, Role: k.role, Score: sc})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Role != out[j].Role {
			return out[i].Role < out[j].Role
		}
		return out[i].Rep < out[j].Rep
	})
	return out
}
