package core

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"seldon/internal/constraints"
	"seldon/internal/corpus"
	"seldon/internal/fpcache"
	"seldon/internal/obs"
	"seldon/internal/spec"
	"seldon/internal/specio"
)

func openCache(t *testing.T) *fpcache.Cache {
	t.Helper()
	c, err := fpcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// resultFingerprint collapses every semantically observable output of a
// learning run into comparable bytes: the merged graph (event IDs, reps,
// positions, edges), the bitwise solver solution, predictions, parse
// errors, and the merged spec store a run would persist.
func resultFingerprint(t *testing.T, res *Result, seed *spec.Spec) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Graph.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	for _, x := range res.Solution {
		fmt.Fprintf(&buf, "%016x\n", math.Float64bits(x))
	}
	fmt.Fprintf(&buf, "%+v\n%v\n", res.Predictions, res.ParseErrorFiles)
	if err := specio.Encode(&buf, res.LearnedSpec(seed), specio.Meta{}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLearnFromSourcesCacheDeterminism is the tentpole's bitwise
// guarantee: learn-without-cache, learn-with-cold-cache, and
// learn-with-warm-cache produce identical results at workers 1 and 4.
func TestLearnFromSourcesCacheDeterminism(t *testing.T) {
	files := parallelCorpus()
	seed := tinySeed()
	base := LearnFromSources(files, seed, Config{
		Constraints: constraints.Options{BackoffCutoff: 2}, Workers: 1,
	})
	want := resultFingerprint(t, base, seed)

	for _, workers := range []int{1, 4} {
		cache := openCache(t)
		for _, phase := range []string{"cold", "warm"} {
			t.Run(fmt.Sprintf("workers=%d/%s", workers, phase), func(t *testing.T) {
				res := LearnFromSources(files, seed, Config{
					Constraints: constraints.Options{BackoffCutoff: 2},
					Workers:     workers, Cache: cache,
				})
				if got := resultFingerprint(t, res, seed); !bytes.Equal(got, want) {
					t.Error("cached result differs from uncached baseline")
				}
				wantHits := 0
				if phase == "warm" {
					wantHits = len(files)
				}
				if res.CacheHits != wantHits || res.CacheHits+res.CacheMisses != len(files) {
					t.Errorf("hits/misses = %d/%d, want %d/%d",
						res.CacheHits, res.CacheMisses, wantHits, len(files)-wantHits)
				}
				if res.CacheBytes <= 0 {
					t.Errorf("cache bytes = %d, want > 0", res.CacheBytes)
				}
				if phase == "warm" && res.CacheSaved <= 0 {
					t.Errorf("warm run saved %v, want > 0", res.CacheSaved)
				}
			})
		}
	}
}

// TestCorpusEvolution models the deployment loop the cache exists for:
// a corpus is learned once, one file changes, and the re-learn pays for
// exactly that file while matching a cold full re-run bit for bit.
func TestCorpusEvolution(t *testing.T) {
	files := corpus.Generate(corpus.Config{Files: 24}).FileMap()
	seed := corpus.ExperimentSeed()
	cfg := Config{Workers: 4}
	cfg.Solver.Iterations = 40
	cache := openCache(t)

	ccfg := cfg
	ccfg.Cache = cache
	first := LearnFromSources(files, seed, ccfg)
	if first.CacheMisses != len(files) || first.CacheHits != 0 {
		t.Fatalf("cold run: hits/misses = %d/%d, want 0/%d",
			first.CacheHits, first.CacheMisses, len(files))
	}
	replay := LearnFromSources(files, seed, ccfg)
	if replay.CacheHits != len(files) || replay.CacheMisses != 0 {
		t.Fatalf("replay: hits/misses = %d/%d, want %d/0",
			replay.CacheHits, replay.CacheMisses, len(files))
	}

	// Mutate one file: append a statement that adds events.
	var mutated string
	for name := range files {
		mutated = name
		break
	}
	files[mutated] += "\n\ndef evolved(x):\n    return x\n"

	evolved := LearnFromSources(files, seed, ccfg)
	if evolved.CacheMisses != 1 || evolved.CacheHits != len(files)-1 {
		t.Fatalf("after mutation: hits/misses = %d/%d, want %d/1",
			evolved.CacheHits, evolved.CacheMisses, len(files)-1)
	}

	cold := LearnFromSources(files, seed, cfg) // no cache at all
	if !bytes.Equal(resultFingerprint(t, evolved, seed), resultFingerprint(t, cold, seed)) {
		t.Error("incremental re-learn differs from a cold full re-run")
	}

	// The mutated file's entry was written back: everything hits now.
	again := LearnFromSources(files, seed, ccfg)
	if again.CacheHits != len(files) {
		t.Errorf("post-evolution replay hits = %d, want %d", again.CacheHits, len(files))
	}
}

// TestCorruptedEntryFallsBackToAnalysis damages one on-disk entry and
// expects a silent re-analysis (one miss), an identical result, and a
// repaired entry.
func TestCorruptedEntryFallsBackToAnalysis(t *testing.T) {
	files := parallelCorpus()
	cache := openCache(t)
	cfg := Config{Workers: 2, Cache: cache}
	base := AnalyzeFiles(files, Config{Workers: 1})
	AnalyzeFiles(files, cfg) // populate

	paths, err := filepath.Glob(filepath.Join(cache.Dir(), "*.fpc"))
	if err != nil || len(paths) != len(files) {
		t.Fatalf("cache entries = %d (err %v), want %d", len(paths), err, len(files))
	}
	if err := os.WriteFile(paths[0], []byte("scrambled"), 0o644); err != nil {
		t.Fatal(err)
	}

	fe := AnalyzeFiles(files, cfg)
	if fe.CacheMisses != 1 || fe.CacheHits != len(files)-1 {
		t.Fatalf("hits/misses = %d/%d, want %d/1", fe.CacheHits, fe.CacheMisses, len(files)-1)
	}
	if !reflect.DeepEqual(fe.Names, base.Names) {
		t.Fatalf("names = %v, want %v", fe.Names, base.Names)
	}
	for i := range fe.Graphs {
		if !bytes.Equal(fe.Graphs[i].AppendBinary(nil), base.Graphs[i].AppendBinary(nil)) {
			t.Errorf("graph %d differs after corruption fallback", i)
		}
	}
	if !reflect.DeepEqual(fe.ParseErrorFiles, base.ParseErrorFiles) {
		t.Errorf("parse-error files = %v, want %v", fe.ParseErrorFiles, base.ParseErrorFiles)
	}

	repaired := AnalyzeFiles(files, cfg)
	if repaired.CacheMisses != 0 {
		t.Errorf("after repair: %d misses, want 0", repaired.CacheMisses)
	}
}

// TestAnalyzeFilesCacheTelemetry checks the cache.* metric names land in
// the registry with consistent values.
func TestAnalyzeFilesCacheTelemetry(t *testing.T) {
	files := parallelCorpus()
	cache := openCache(t)
	reg := obs.New()
	AnalyzeFiles(files, Config{Workers: 2, Cache: cache, Metrics: reg})
	warmReg := obs.New()
	fe := AnalyzeFiles(files, Config{Workers: 2, Cache: cache, Metrics: warmReg})

	cold := reg.Snapshot()
	if cold.Counters[obs.CounterCacheMisses] != int64(len(files)) ||
		cold.Counters[obs.CounterCacheHits] != 0 {
		t.Errorf("cold counters = %v", cold.Counters)
	}
	warm := warmReg.Snapshot()
	if warm.Counters[obs.CounterCacheHits] != int64(len(files)) ||
		warm.Counters[obs.CounterCacheMisses] != 0 {
		t.Errorf("warm counters = %v", warm.Counters)
	}
	if warm.Counters[obs.CounterCacheBytes] != fe.CacheBytes || fe.CacheBytes <= 0 {
		t.Errorf("%s = %d, want %d > 0", obs.CounterCacheBytes,
			warm.Counters[obs.CounterCacheBytes], fe.CacheBytes)
	}
	if warm.Timers[obs.StageCache].Count != 1 {
		t.Errorf("%s count = %d, want 1", obs.StageCache, warm.Timers[obs.StageCache].Count)
	}
	if _, ok := warm.Gauges[obs.GaugeCacheSpeedup]; !ok {
		t.Errorf("%s gauge missing", obs.GaugeCacheSpeedup)
	}
	// Warm hits skip parse+dataflow entirely: the per-file timers must
	// record zero observations.
	if warm.Timers[obs.FileParse].Count != 0 {
		t.Errorf("warm %s count = %d, want 0", obs.FileParse, warm.Timers[obs.FileParse].Count)
	}
	if fe.CacheSpeedup() < 1 {
		t.Errorf("warm CacheSpeedup = %v, want >= 1", fe.CacheSpeedup())
	}
}
