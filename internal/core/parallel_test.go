package core

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"testing"

	"seldon/internal/constraints"
	"seldon/internal/obs"
	"seldon/internal/spec"
	"seldon/internal/specio"
)

// parallelCorpus is tinyCorpus plus a file that fails to parse, so the
// determinism checks also cover the parse-error path.
func parallelCorpus() map[string]string {
	files := tinyCorpus(8)
	files["broken.py"] = "def broken(:\n    return ???\n"
	return files
}

// TestLearnFromSourcesDeterministicAcrossWorkers is the tentpole's
// determinism guarantee: every observable output of a learning run must be
// byte-identical at any worker count.
func TestLearnFromSourcesDeterministicAcrossWorkers(t *testing.T) {
	files := parallelCorpus()
	cfg := Config{Constraints: constraints.Options{BackoffCutoff: 2}, Workers: 1}
	base := LearnFromSources(files, tinySeed(), cfg)
	if base.Workers != 1 {
		t.Fatalf("base.Workers = %d, want 1", base.Workers)
	}
	var baseGraph bytes.Buffer
	if err := base.Graph.Encode(&baseGraph); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := cfg
			cfg.Workers = workers
			res := LearnFromSources(files, tinySeed(), cfg)
			if !reflect.DeepEqual(res.Predictions, base.Predictions) {
				t.Errorf("predictions differ:\n got %+v\nwant %+v", res.Predictions, base.Predictions)
			}
			if !reflect.DeepEqual(res.ParseErrorFiles, base.ParseErrorFiles) {
				t.Errorf("parse-error files = %v, want %v", res.ParseErrorFiles, base.ParseErrorFiles)
			}
			if res.ParseErrors != base.ParseErrors {
				t.Errorf("parse errors = %d, want %d", res.ParseErrors, base.ParseErrors)
			}
			if res.SolverEpochs != base.SolverEpochs {
				t.Errorf("solver epochs = %d, want %d", res.SolverEpochs, base.SolverEpochs)
			}
			if len(res.Solution) != len(base.Solution) {
				t.Fatalf("solution size = %d, want %d", len(res.Solution), len(base.Solution))
			}
			for i := range res.Solution {
				if math.Float64bits(res.Solution[i]) != math.Float64bits(base.Solution[i]) {
					t.Fatalf("solution[%d] = %v, want %v (bitwise)", i, res.Solution[i], base.Solution[i])
				}
			}
			var g bytes.Buffer
			if err := res.Graph.Encode(&g); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(g.Bytes(), baseGraph.Bytes()) {
				t.Error("graph encodings differ")
			}
		})
	}
}

// TestLearnedStoreGoldenAcrossWorkers pins the end-to-end guarantee the
// interning rewrite must preserve: the learned specification and its
// persisted store encoding are byte-identical whether the pipeline runs
// sequentially or sharded (the golden output the pre-interning string
// path produced).
func TestLearnedStoreGoldenAcrossWorkers(t *testing.T) {
	files := parallelCorpus()
	run := func(workers int) ([]byte, *spec.Spec, *Result) {
		cfg := Config{Constraints: constraints.Options{BackoffCutoff: 2}, Workers: workers}
		res := LearnFromSources(files, tinySeed(), cfg)
		merged := res.LearnedSpec(tinySeed())
		meta := specio.Meta{
			CorpusFingerprint: specio.Fingerprint(files),
			CorpusFiles:       len(files),
			Generator:         "golden-test",
		}
		var buf bytes.Buffer
		if err := specio.Encode(&buf, merged, meta); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), merged, res
	}
	store1, spec1, res1 := run(1)
	store4, spec4, _ := run(4)
	if !specio.Equal(spec1, spec4) {
		t.Error("learned specifications differ between workers 1 and 4")
	}
	if !bytes.Equal(store1, store4) {
		t.Error("persisted store bytes differ between workers 1 and 4")
	}
	if len(spec1.Sources)+len(spec1.Sanitizers)+len(spec1.Sinks) == 0 {
		t.Fatal("golden run learned nothing; fixture too weak to pin anything")
	}
	// The interning telemetry must reflect a real, shared symbol table.
	if res1.InternSymbols <= 0 {
		t.Errorf("InternSymbols = %d, want > 0", res1.InternSymbols)
	}
	if res1.InternBytesSaved < 0 {
		t.Errorf("InternBytesSaved = %d, want >= 0", res1.InternBytesSaved)
	}
}

func TestAnalyzeFilesParallelTelemetry(t *testing.T) {
	reg := obs.New()
	fe := AnalyzeFiles(parallelCorpus(), Config{Workers: 4, Metrics: reg})
	if fe.Workers != 4 {
		t.Fatalf("workers = %d, want 4", fe.Workers)
	}
	if !reflect.DeepEqual(fe.ParseErrorFiles, []string{"broken.py"}) {
		t.Errorf("parse-error files = %v, want [broken.py]", fe.ParseErrorFiles)
	}
	if len(fe.ParseErrs) != 1 || fe.ParseErrs[0] == nil {
		t.Errorf("parse errs = %v, want one non-nil error", fe.ParseErrs)
	}
	if len(fe.Graphs) != len(fe.Names) {
		t.Fatalf("graphs = %d, names = %d", len(fe.Graphs), len(fe.Names))
	}
	snap := reg.Snapshot()
	if got := snap.Counters[obs.CounterParseErrors]; got != 1 {
		t.Errorf("%s = %d, want 1", obs.CounterParseErrors, got)
	}
	if got := snap.Counters[obs.CounterFilesAnalyzed]; got != int64(len(fe.Names)) {
		t.Errorf("%s = %d, want %d", obs.CounterFilesAnalyzed, got, len(fe.Names))
	}
	if got := snap.Gauges[obs.GaugeWorkers]; got != 4 {
		t.Errorf("%s = %v, want 4", obs.GaugeWorkers, got)
	}
	if _, ok := snap.Gauges[obs.GaugeFrontendSpeedup]; !ok {
		t.Errorf("%s gauge missing", obs.GaugeFrontendSpeedup)
	}
	if got := snap.Timers[obs.FileParse].Count; got != int64(len(fe.Names)) {
		t.Errorf("%s count = %d, want %d", obs.FileParse, got, len(fe.Names))
	}
	if got := snap.Timers[obs.StageFrontend].Count; got != 1 {
		t.Errorf("%s count = %d, want 1", obs.StageFrontend, got)
	}
}

func TestWorkerCountResolution(t *testing.T) {
	cases := []struct {
		workers, files, want int
	}{
		{1, 10, 1},
		{4, 10, 4},
		{8, 3, 3},  // never more workers than files
		{-1, 0, 1}, // empty input still resolves to a valid pool
	}
	for _, tc := range cases {
		if got := (Config{Workers: tc.workers}).workerCount(tc.files); got != tc.want {
			t.Errorf("workerCount(workers=%d, files=%d) = %d, want %d",
				tc.workers, tc.files, got, tc.want)
		}
	}
	if got := (Config{}).workerCount(64); got < 1 {
		t.Errorf("default workerCount = %d, want >= 1", got)
	}
}
