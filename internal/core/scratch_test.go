package core

import (
	"testing"

	"seldon/internal/corpus"
	"seldon/internal/obs"
)

// A reused Scratch must never leak state between files: analyzing a
// corpus sequentially through one scratch has to produce graphs
// byte-identical to fresh-allocation runs.
func TestScratchReuseDeterminism(t *testing.T) {
	files := corpus.Generate(corpus.Config{Files: 12}).FileMap()

	fresh := AnalyzeFiles(files, Config{Workers: 1})
	sc := &Scratch{}
	pooled := AnalyzeFiles(files, Config{Workers: 1, Scratch: sc})
	// Run again with the now-dirty scratch: retained buffers from the
	// first pass must not change anything.
	pooled2 := AnalyzeFiles(files, Config{Workers: 1, Scratch: sc})

	for i := range fresh.Graphs {
		want := fresh.Graphs[i].AppendBinary(nil)
		for run, fe := range []*FrontEnd{pooled, pooled2} {
			if got := fe.Graphs[i].AppendBinary(nil); string(got) != string(want) {
				t.Fatalf("scratch run %d: graph %q differs from fresh analysis", run+1, fresh.Names[i])
			}
		}
	}
}

// On a fully warm cache run parse+dataflow never execute and the
// parallel-speedup ratio is unmeasurable: the gauge must be omitted,
// not published as 0 (BENCH_6 regression).
func TestFrontendSpeedupOmittedWhenFullyCached(t *testing.T) {
	files := corpus.Generate(corpus.Config{Files: 6}).FileMap()
	cache := openCache(t)

	reg := obs.New()
	AnalyzeFiles(files, Config{Workers: 2, Cache: cache, Metrics: reg})
	if _, ok := reg.Snapshot().Gauges[obs.GaugeFrontendSpeedup]; !ok {
		t.Fatalf("%s missing on a cold run", obs.GaugeFrontendSpeedup)
	}

	warm := obs.New()
	fe := AnalyzeFiles(files, Config{Workers: 2, Cache: cache, Metrics: warm})
	if fe.CacheHits != len(files) {
		t.Fatalf("warm run: %d/%d hits", fe.CacheHits, len(files))
	}
	if v, ok := warm.Snapshot().Gauges[obs.GaugeFrontendSpeedup]; ok {
		t.Fatalf("%s = %v on a fully warm run, want gauge omitted", obs.GaugeFrontendSpeedup, v)
	}
}
