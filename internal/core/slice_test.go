package core

import (
	"fmt"
	"sort"
	"testing"
)

func TestSliceNamesPartition(t *testing.T) {
	var names []string
	for i := 0; i < 23; i++ {
		names = append(names, fmt.Sprintf("f%02d.py", i))
	}
	for _, n := range []int{1, 2, 4, 7, 23, 30} {
		var concat []string
		for i := 0; i < n; i++ {
			s := SliceNames(names, i, n)
			if !sort.StringsAreSorted(s) {
				t.Errorf("n=%d slice %d not sorted", n, i)
			}
			concat = append(concat, s...)
		}
		if len(concat) != len(names) {
			t.Fatalf("n=%d: concatenated slices have %d names, want %d", n, len(concat), len(names))
		}
		for i := range names {
			if concat[i] != names[i] {
				t.Fatalf("n=%d: concatenation diverges at %d: %q vs %q", n, i, concat[i], names[i])
			}
		}
	}
}

func TestSliceNamesOutOfRange(t *testing.T) {
	names := []string{"a.py", "b.py"}
	for _, tc := range [][2]int{{-1, 2}, {2, 2}, {0, 0}} {
		if s := SliceNames(names, tc[0], tc[1]); s != nil {
			t.Errorf("SliceNames(i=%d, n=%d) = %v, want nil", tc[0], tc[1], s)
		}
	}
}

func TestSliceFiles(t *testing.T) {
	files := map[string]string{"c.py": "3", "a.py": "1", "b.py": "2"}
	union := map[string]string{}
	for i := 0; i < 2; i++ {
		for name, src := range SliceFiles(files, i, 2) {
			union[name] = src
		}
	}
	if len(union) != len(files) {
		t.Fatalf("slice union has %d files, want %d", len(union), len(files))
	}
	for name, src := range files {
		if union[name] != src {
			t.Errorf("file %q missing or altered", name)
		}
	}
}

func TestAnalyzeSliceMatchesSubsetAnalysis(t *testing.T) {
	files := map[string]string{
		"a.py": "import flask\nx = flask.request.args.get('q')\n",
		"b.py": "def f(v):\n    return v\n",
		"c.py": "import os\nos.system('ls')\n",
	}
	fe := AnalyzeSlice(files, 0, 2, Config{Workers: 1})
	want := AnalyzeFiles(SliceFiles(files, 0, 2), Config{Workers: 1})
	if len(fe.Names) != len(want.Names) {
		t.Fatalf("AnalyzeSlice analyzed %d files, want %d", len(fe.Names), len(want.Names))
	}
	for i := range fe.Names {
		if fe.Names[i] != want.Names[i] {
			t.Errorf("name[%d] = %q, want %q", i, fe.Names[i], want.Names[i])
		}
	}
}
