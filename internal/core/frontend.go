package core

import (
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"seldon/internal/dataflow"
	"seldon/internal/fpcache"
	"seldon/internal/obs"
	"seldon/internal/propgraph"
	"seldon/internal/pyparse"
)

// The corpus front-end: per-file parse + dataflow analysis, fanned out
// over a bounded worker pool. Files are independent (the analyzer keeps
// no cross-file state and the metrics registry is concurrency-safe), so
// the only ordering that matters is the merge: results land in a slice
// indexed by sorted file name, which keeps propgraph.Union input order,
// event IDs, and the parse-error list byte-identical to a sequential run
// at every worker count.

// FrontEnd holds per-file parse and dataflow results, ordered by sorted
// file name.
type FrontEnd struct {
	// Names lists the analyzed files in sorted order; Graphs is aligned
	// with it.
	Names  []string
	Graphs []*propgraph.Graph
	// Costs is each file's parse+dataflow cost, aligned with Names. For
	// a cache hit it is the cost recorded when the entry was produced —
	// the number a shard sidecar ships so downstream caches inherit
	// truthful accounting rather than the near-zero hit time.
	Costs []time.Duration
	// ParseErrorFiles names the files whose parse reported an error, in
	// sorted order; ParseErrs is aligned with it. Analysis still ran over
	// the recovered ASTs.
	ParseErrorFiles []string
	ParseErrs       []error
	// ParseTotal and AnalyzeTotal sum the per-file stage times (CPU time,
	// comparable across worker counts); Wall is the elapsed time of the
	// whole front-end section. Files served from the cache contribute
	// nothing to either total — their parse and dataflow never ran.
	ParseTotal   time.Duration
	AnalyzeTotal time.Duration
	Wall         time.Duration
	// Workers is the pool size actually used.
	Workers int

	// Cache activity for this run (all zero when Config.Cache is nil).
	// CacheBytes totals bytes read on hits plus written on misses;
	// CacheSaved sums the recorded analysis cost the hits avoided;
	// CacheWall is the time spent in cache lookups and write-backs.
	CacheHits   int
	CacheMisses int
	CacheBytes  int64
	CacheSaved  time.Duration
	CacheWall   time.Duration
}

// Scratch bundles the reusable per-file front-end state behind one
// Reset seam: the parser's token buffer and the dataflow analyzer's
// tables. One Scratch serves one goroutine at a time; pool them
// (sync.Pool) to cut steady-state allocations on paths that analyze a
// file per request.
type Scratch struct {
	parse pyparse.Scratch
	flow  dataflow.Scratch
}

// Reset scrubs retained references while keeping grown capacity.
func (s *Scratch) Reset() {
	s.parse.Reset()
	s.flow.Reset()
}

// fileOutcome is one worker's result for one file.
type fileOutcome struct {
	graph   *propgraph.Graph
	err     error
	parse   time.Duration
	analyze time.Duration

	hit        bool          // served from the cache
	saved      time.Duration // recorded cost a hit avoided
	cacheBytes int64         // entry bytes read (hit) or written (miss)
	cacheWall  time.Duration // time spent in Get/Put for this file
}

// workerCount resolves Config.Workers: 0 selects GOMAXPROCS, 1 is the
// sequential path, and the pool never exceeds the number of files.
func (c Config) workerCount(files int) int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > files {
		w = files
	}
	if w < 1 {
		w = 1
	}
	return w
}

// AnalyzeFiles parses and dataflow-analyzes every file (name → source
// text), fanning per-file work over cfg.Workers goroutines. Per-file
// timings and parse-error counts stream into cfg.Metrics from the
// workers; everything order-sensitive (graph slice, error list, logs) is
// assembled after the join, so the result is deterministic — and
// byte-identical to Workers: 1 — at any worker count.
func AnalyzeFiles(files map[string]string, cfg Config) *FrontEnd {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)

	fe := &FrontEnd{
		Names:   names,
		Workers: cfg.workerCount(len(names)),
	}
	cfg.Metrics.Add(obs.CounterParseErrors, 0) // materialize the counter
	dopts := dataflow.Options{Metrics: cfg.Metrics}
	// The donated scratch is single-goroutine state: only the sequential
	// path may thread it through parse+dataflow.
	var scratch *Scratch
	if fe.Workers <= 1 && cfg.Scratch != nil {
		scratch = cfg.Scratch
		dopts.Scratch = &scratch.flow
	}
	outcomes := make([]fileOutcome, len(names))
	process := func(i int) {
		name := names[i]
		var o fileOutcome
		if cfg.Cache != nil {
			t0 := time.Now()
			ent, ok := cfg.Cache.Get(name, files[name])
			o.cacheWall = time.Since(t0)
			if ok {
				o.hit = true
				o.graph = ent.Graph
				o.saved = ent.Cost
				o.cacheBytes = ent.Size
				if ent.ParseError != "" {
					o.err = errors.New(ent.ParseError)
					cfg.Metrics.Add(obs.CounterParseErrors, 1)
				}
				outcomes[i] = o
				return
			}
		}
		t0 := time.Now()
		var psc *pyparse.Scratch
		if scratch != nil {
			psc = &scratch.parse
		}
		mod, err := pyparse.ParseWith(psc, name, files[name])
		o.parse = time.Since(t0)
		o.err = err
		cfg.Metrics.ObserveDuration(obs.FileParse, o.parse)
		if err != nil {
			cfg.Metrics.Add(obs.CounterParseErrors, 1)
		}
		t0 = time.Now()
		o.graph = dataflow.AnalyzeModule(mod, dopts)
		o.analyze = time.Since(t0)
		cfg.Metrics.ObserveDuration(obs.FileAnalyze, o.analyze)
		if cfg.Cache != nil {
			t0 = time.Now()
			perr := ""
			if err != nil {
				perr = err.Error()
			}
			written, werr := cfg.Cache.Put(name, files[name], &fpcache.Entry{
				Graph: o.graph, ParseError: perr, Cost: o.parse + o.analyze,
			})
			o.cacheWall += time.Since(t0)
			if werr != nil {
				// A failed write-back costs the next run a re-analysis,
				// nothing more; this run's result is already in hand.
				cfg.Log.Log("cache.put.error", "file", name, "err", werr)
			}
			o.cacheBytes += written
		}
		outcomes[i] = o
	}

	t0 := time.Now()
	if fe.Workers <= 1 {
		for i := range names {
			process(i)
		}
	} else {
		var next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		for w := 0; w < fe.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i >= len(names) {
						return
					}
					process(i)
				}
			}()
		}
		wg.Wait()
	}
	fe.Wall = time.Since(t0)

	fe.Graphs = make([]*propgraph.Graph, len(names))
	fe.Costs = make([]time.Duration, len(names))
	for i := range outcomes {
		o := &outcomes[i]
		fe.Graphs[i] = o.graph
		// Exactly one of (saved) and (parse+analyze) is nonzero: the
		// recorded cost for a hit, the measured cost for a miss.
		fe.Costs[i] = o.saved + o.parse + o.analyze
		fe.ParseTotal += o.parse
		fe.AnalyzeTotal += o.analyze
		if o.hit {
			fe.CacheHits++
		}
		fe.CacheSaved += o.saved
		fe.CacheBytes += o.cacheBytes
		fe.CacheWall += o.cacheWall
		if o.err != nil {
			fe.ParseErrorFiles = append(fe.ParseErrorFiles, names[i])
			fe.ParseErrs = append(fe.ParseErrs, o.err)
			cfg.Log.Log("parse.error", "file", names[i], "err", o.err)
		}
	}

	cfg.Metrics.Add(obs.CounterFilesAnalyzed, int64(len(names)))
	cfg.Metrics.ObserveDuration(obs.StageParse, fe.ParseTotal)
	cfg.Metrics.ObserveDuration(obs.StageDataflow, fe.AnalyzeTotal)
	cfg.Metrics.ObserveDuration(obs.StageFrontend, fe.Wall)
	cfg.Metrics.Set(obs.GaugeWorkers, float64(fe.Workers))
	// frontend.speedup is per-file CPU over wall. On a fully warm cache
	// run parse+dataflow never execute, so that ratio degenerates to 0 —
	// a misleading number for a run that was in fact at its fastest. The
	// gauge is published only when measurable; cache.speedup (derived
	// from the recorded original costs in the fpcache entries) carries
	// the warm-run story.
	if fe.ParseTotal+fe.AnalyzeTotal > 0 {
		cfg.Metrics.Set(obs.GaugeFrontendSpeedup, fe.Speedup())
	}
	cfg.Log.Log(obs.StageParse, "files", len(names),
		"dur", fe.ParseTotal.Round(time.Microsecond), "errors", len(fe.ParseErrorFiles))
	cfg.Log.Log(obs.StageDataflow, "dur", fe.AnalyzeTotal.Round(time.Microsecond))
	cfg.Log.Log(obs.StageFrontend, "workers", fe.Workers,
		"wall", fe.Wall.Round(time.Microsecond), "speedup", fe.Speedup())
	if cfg.Cache != nil {
		fe.CacheMisses = len(names) - fe.CacheHits
		cfg.Metrics.Add(obs.CounterCacheHits, int64(fe.CacheHits))
		cfg.Metrics.Add(obs.CounterCacheMisses, int64(fe.CacheMisses))
		cfg.Metrics.Add(obs.CounterCacheBytes, fe.CacheBytes)
		cfg.Metrics.ObserveDuration(obs.StageCache, fe.CacheWall)
		cfg.Metrics.Set(obs.GaugeCacheSaved, fe.CacheSaved.Seconds())
		cfg.Metrics.Set(obs.GaugeCacheSpeedup, fe.CacheSpeedup())
		cfg.Log.Log(obs.StageCache, "hits", fe.CacheHits, "misses", fe.CacheMisses,
			"bytes", fe.CacheBytes, "saved", fe.CacheSaved.Round(time.Microsecond),
			"dur", fe.CacheWall.Round(time.Microsecond))
	}
	return fe
}

// CacheSpeedup estimates the warm-run win: how much longer the front-end
// wall would have been had the cache hits been analyzed instead —
// (wall + saved) / wall. It is 1 on a fully cold run and grows with the
// hit rate; 0 when the wall is unmeasured.
func (fe *FrontEnd) CacheSpeedup() float64 {
	if fe.Wall <= 0 {
		return 0
	}
	return float64(fe.Wall+fe.CacheSaved) / float64(fe.Wall)
}

// Speedup reports the effective front-end parallelism: per-file CPU time
// over wall time (≈1 sequentially, approaching Workers under ideal
// scaling).
func (fe *FrontEnd) Speedup() float64 {
	if fe.Wall <= 0 {
		return 0
	}
	return float64(fe.ParseTotal+fe.AnalyzeTotal) / float64(fe.Wall)
}
