package core

import (
	"strings"
	"testing"

	"seldon/internal/constraints"
	"seldon/internal/obs"
)

func TestLearnFromSourcesCountsParseErrors(t *testing.T) {
	files := tinyCorpus(3)
	files["broken.py"] = "def f(:\n    return 1\n"
	reg := obs.New()
	var logBuf strings.Builder
	cfg := Config{
		Constraints: constraints.Options{BackoffCutoff: 2},
		Metrics:     reg,
		Log:         obs.NewLogger(&logBuf),
	}
	res := LearnFromSources(files, tinySeed(), cfg)

	if res.ParseErrors != 1 {
		t.Fatalf("ParseErrors = %d, want 1", res.ParseErrors)
	}
	if len(res.ParseErrorFiles) != 1 || res.ParseErrorFiles[0] != "broken.py" {
		t.Fatalf("ParseErrorFiles = %v, want [broken.py]", res.ParseErrorFiles)
	}
	s := reg.Snapshot()
	if got := s.Counters[obs.CounterParseErrors]; got != 1 {
		t.Errorf("metrics %s = %d, want 1", obs.CounterParseErrors, got)
	}
	if got := s.Counters[obs.CounterFilesAnalyzed]; got != int64(len(files)) {
		t.Errorf("metrics %s = %d, want %d", obs.CounterFilesAnalyzed, got, len(files))
	}
	if !strings.Contains(logBuf.String(), "broken.py") {
		t.Errorf("verbose log does not name the failing file:\n%s", logBuf.String())
	}
}

func TestLearnFromSourcesRecordsAllStages(t *testing.T) {
	reg := obs.New()
	cfg := Config{
		Constraints: constraints.Options{BackoffCutoff: 2},
		Metrics:     reg,
	}
	res := LearnFromSources(tinyCorpus(3), tinySeed(), cfg)

	wantStages := []string{
		obs.StageParse, obs.StageDataflow, obs.StageUnion,
		obs.StageConstraints, obs.StageSolve, obs.StageSelect,
	}
	if len(res.Stages) != len(wantStages) {
		t.Fatalf("Stages = %v, want %d entries", res.Stages, len(wantStages))
	}
	s := reg.Snapshot()
	for i, name := range wantStages {
		if res.Stages[i].Name != name {
			t.Errorf("Stages[%d] = %s, want %s", i, res.Stages[i].Name, name)
		}
		if st, ok := s.Timers[name]; !ok || st.Count == 0 {
			t.Errorf("metrics timer %s missing or empty", name)
		}
	}
	if res.SolverEpochs <= 0 {
		t.Errorf("SolverEpochs = %d, want > 0", res.SolverEpochs)
	}
	trace := s.Traces[obs.TraceSolver]
	if len(trace) != res.SolverEpochs {
		t.Fatalf("convergence trace has %d points, solver ran %d epochs",
			len(trace), res.SolverEpochs)
	}
	for _, p := range trace {
		if _, ok := p.Values["objective"]; !ok {
			t.Fatalf("trace point missing objective: %+v", p)
		}
	}
	if _, ok := s.Gauges["constraints.vars"]; !ok {
		t.Errorf("constraint gauges not recorded")
	}
	if got := s.Counters["dataflow.modules"]; got != int64(2*3) {
		t.Errorf("dataflow.modules = %d, want 6", got)
	}
}

func TestNilTelemetryKeepsWorking(t *testing.T) {
	// The default path (no registry, no logger) must behave exactly as
	// before: stages recorded on the Result, nothing else touched.
	res := LearnFromSources(tinyCorpus(3), tinySeed(), Config{
		Constraints: constraints.Options{BackoffCutoff: 2},
	})
	if len(res.Stages) != 6 {
		t.Fatalf("Stages = %v, want 6 entries", res.Stages)
	}
	if res.StageTime(obs.StageSolve) < 0 {
		t.Errorf("negative solve time")
	}
	if res.ParseErrors != 0 {
		t.Errorf("ParseErrors = %d, want 0", res.ParseErrors)
	}
}
