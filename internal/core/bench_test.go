package core

import (
	"fmt"
	"testing"

	"seldon/internal/corpus"
	"seldon/internal/fpcache"
)

// BenchmarkLearnFromSources measures the full pipeline over a generated
// corpus at several front-end worker counts. The solver budget is kept
// small so the per-file parse+dataflow section — the part Workers
// parallelizes — dominates the run.
func BenchmarkLearnFromSources(b *testing.B) {
	files := corpus.Generate(corpus.Config{Files: 120}).FileMap()
	seed := corpus.ExperimentSeed()
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := Config{Workers: workers}
			cfg.Solver.Iterations = 20
			for i := 0; i < b.N; i++ {
				LearnFromSources(files, seed, cfg)
			}
		})
	}
}

// BenchmarkAnalyzeFiles isolates the parallel front-end (parse + dataflow,
// no union/solve) for the raw scaling number.
func BenchmarkAnalyzeFiles(b *testing.B) {
	files := corpus.Generate(corpus.Config{Files: 120}).FileMap()
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				AnalyzeFiles(files, Config{Workers: workers})
			}
		})
	}
}

// BenchmarkAnalyzeFilesCache compares the front-end against the
// persistent analysis cache: cold (every file is a miss and is written
// back) versus warm (every file is a hit, parse+dataflow skipped). The
// warm/cold ratio is the incremental win a clean replay gets.
func BenchmarkAnalyzeFilesCache(b *testing.B) {
	files := corpus.Generate(corpus.Config{Files: 120}).FileMap()
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cache, err := fpcache.Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			AnalyzeFiles(files, Config{Workers: 4, Cache: cache})
		}
	})
	b.Run("warm", func(b *testing.B) {
		cache, err := fpcache.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		AnalyzeFiles(files, Config{Workers: 4, Cache: cache}) // populate
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fe := AnalyzeFiles(files, Config{Workers: 4, Cache: cache})
			if fe.CacheHits != len(files) {
				b.Fatalf("warm hits = %d, want %d", fe.CacheHits, len(files))
			}
		}
	})
}
