package core

import (
	"fmt"
	"testing"

	"seldon/internal/corpus"
)

// BenchmarkLearnFromSources measures the full pipeline over a generated
// corpus at several front-end worker counts. The solver budget is kept
// small so the per-file parse+dataflow section — the part Workers
// parallelizes — dominates the run.
func BenchmarkLearnFromSources(b *testing.B) {
	files := corpus.Generate(corpus.Config{Files: 120}).FileMap()
	seed := corpus.ExperimentSeed()
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := Config{Workers: workers}
			cfg.Solver.Iterations = 20
			for i := 0; i < b.N; i++ {
				LearnFromSources(files, seed, cfg)
			}
		})
	}
}

// BenchmarkAnalyzeFiles isolates the parallel front-end (parse + dataflow,
// no union/solve) for the raw scaling number.
func BenchmarkAnalyzeFiles(b *testing.B) {
	files := corpus.Generate(corpus.Config{Files: 120}).FileMap()
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				AnalyzeFiles(files, Config{Workers: workers})
			}
		})
	}
}
