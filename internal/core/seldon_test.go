package core

import (
	"fmt"
	"testing"

	"seldon/internal/constraints"
	"seldon/internal/propgraph"
	"seldon/internal/pytoken"
	"seldon/internal/spec"
)

// tinyCorpus builds a corpus of n copies of a handler where a seeded
// source flows through an unlabeled cleaner into a seeded sink, so the
// cleaner's sanitizer role must be inferred, plus noise files.
func tinyCorpus(n int) map[string]string {
	files := make(map[string]string)
	for i := 0; i < n; i++ {
		files[fmt.Sprintf("app%d.py", i)] = `from flask import request
import html_tools

def handler():
    q = request.args.get('q')
    safe = html_tools.scrub(q)
    return flask_render(safe)
`
		files[fmt.Sprintf("noise%d.py", i)] = `import math

def area(r):
    return math.pi * r * r
`
	}
	return files
}

func tinySeed() *spec.Spec {
	s := spec.New()
	s.Add(propgraph.Source, "flask.request.args.get()")
	s.Add(propgraph.Source, "request.args.get()")
	s.Add(propgraph.Source, "args.get()")
	s.Add(propgraph.Sink, "flask_render()")
	return s
}

func TestLearnInfersSanitizer(t *testing.T) {
	res := LearnFromSources(tinyCorpus(6), tinySeed(), Config{
		Constraints: constraints.Options{BackoffCutoff: 2},
	})
	score := res.ScoreOf("html_tools.scrub()", propgraph.Sanitizer)
	if score < 0.3 {
		t.Fatalf("scrub() sanitizer score = %v, want >= 0.3", score)
	}
	entries := res.LearnedEntries(tinySeed())
	found := false
	for _, e := range entries {
		if e.Rep == "html_tools.scrub()" && e.Role == propgraph.Sanitizer {
			found = true
		}
	}
	if !found {
		t.Errorf("scrub() not among learned entries: %v", entries)
	}
}

func TestEmptySeedPredictsNothing(t *testing.T) {
	// §7 Q6: with an empty seed the all-zero assignment is optimal, so no
	// specifications can be inferred.
	res := LearnFromSources(tinyCorpus(4), spec.New(), Config{
		Constraints: constraints.Options{BackoffCutoff: 2},
	})
	if len(res.Predictions) != 0 {
		t.Errorf("predictions with empty seed = %d, want 0", len(res.Predictions))
	}
}

func TestBackoffDecaySelection(t *testing.T) {
	// An event whose first backoff option scores below threshold but whose
	// second scores above it must still be selected — discounted by 0.8.
	g := propgraph.New()
	ev := g.AddEvent(propgraph.KindCall, "t.py", pos(), []string{"a.f()", "f()"})
	_ = ev
	res := &Result{
		System:     mustSystem(g),
		EventRoles: map[int]propgraph.RoleSet{},
	}
	res.Solution = make([]float64, len(res.System.Vars))
	res.Solution[res.System.VarID("a.f()", propgraph.Source)] = 0.05
	res.Solution[res.System.VarID("f()", propgraph.Source)] = 0.5
	res.selectRoles(Config{Threshold: 0.1, BackoffDecay: 0.8})
	var sel *Prediction
	for i := range res.Predictions {
		if res.Predictions[i].Role == propgraph.Source {
			sel = &res.Predictions[i]
		}
	}
	if sel == nil {
		t.Fatal("no source prediction")
	}
	if sel.Rep != "f()" || sel.Backoff != 1 {
		t.Errorf("selected %+v, want backoff option 1 (f())", sel)
	}
	// 0.8^1 * 0.5 = 0.4 >= 0.1.
}

func TestBackoffDecayRejectsWeakDeepOptions(t *testing.T) {
	g := propgraph.New()
	g.AddEvent(propgraph.KindCall, "t.py", pos(), []string{"a.f()", "f()"})
	res := &Result{System: mustSystem(g), EventRoles: map[int]propgraph.RoleSet{}}
	res.Solution = make([]float64, len(res.System.Vars))
	res.Solution[res.System.VarID("f()", propgraph.Source)] = 0.12
	// 0.8 * 0.12 = 0.096 < 0.1: not selected.
	res.selectRoles(Config{Threshold: 0.1, BackoffDecay: 0.8})
	for _, p := range res.Predictions {
		if p.Role == propgraph.Source {
			t.Errorf("unexpected selection %+v", p)
		}
	}
}

func TestLearnedSpecMergesSeed(t *testing.T) {
	seed := tinySeed()
	res := LearnFromSources(tinyCorpus(6), seed, Config{
		Constraints: constraints.Options{BackoffCutoff: 2},
	})
	learned := res.LearnedSpec(seed)
	if !learned.RolesOf("flask.request.args.get()").Has(propgraph.Source) {
		t.Error("seed source missing from learned spec")
	}
	if learned.Len() <= seed.Len() {
		t.Errorf("learned spec (%d entries) not larger than seed (%d)", learned.Len(), seed.Len())
	}
}

func TestPredictedCounts(t *testing.T) {
	res := LearnFromSources(tinyCorpus(6), tinySeed(), Config{
		Constraints: constraints.Options{BackoffCutoff: 2},
	})
	counts := res.PredictedCounts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(res.Predictions) {
		t.Errorf("counts %v do not sum to %d", counts, len(res.Predictions))
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := LearnFromSources(tinyCorpus(4), tinySeed(), Config{
		Constraints: constraints.Options{BackoffCutoff: 2},
	})
	b := LearnFromSources(tinyCorpus(4), tinySeed(), Config{
		Constraints: constraints.Options{BackoffCutoff: 2},
	})
	if len(a.Predictions) != len(b.Predictions) {
		t.Fatalf("prediction counts differ: %d vs %d", len(a.Predictions), len(b.Predictions))
	}
	for i := range a.Predictions {
		if a.Predictions[i] != b.Predictions[i] {
			t.Fatalf("prediction %d differs: %+v vs %+v", i, a.Predictions[i], b.Predictions[i])
		}
	}
	for i := range a.Solution {
		if a.Solution[i] != b.Solution[i] {
			t.Fatal("solutions differ")
		}
	}
}

func pos() pytoken.Pos { return pytoken.Pos{Line: 1} }

func mustSystem(g *propgraph.Graph) *constraints.System {
	return constraints.Build(g, spec.New(), constraints.Options{BackoffCutoff: 1})
}
