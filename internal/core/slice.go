package core

import "sort"

// Deterministic corpus slicing for distributed learning (internal/shard):
// a corpus is partitioned into contiguous blocks of its sorted file-name
// order, so the concatenation of slices 0..n-1 is exactly the order a
// single-process run analyzes in. That contiguity — not just disjointness
// — is what makes a coordinator's merged graph byte-identical to the
// one-process union: event IDs and symbol-table order both follow file
// order.

// SliceNames returns slice i of n over names (which must be sorted): the
// contiguous block [i*len/n, (i+1)*len/n). Slices are deterministic,
// disjoint, exhaustive, and balanced to within one element; out-of-range
// or degenerate (i, n) returns nil. The result aliases names.
func SliceNames(names []string, i, n int) []string {
	if n <= 0 || i < 0 || i >= n {
		return nil
	}
	lo := i * len(names) / n
	hi := (i + 1) * len(names) / n
	return names[lo:hi]
}

// SliceFiles restricts a corpus map to slice i of n of its sorted names.
func SliceFiles(files map[string]string, i, n int) map[string]string {
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	part := SliceNames(names, i, n)
	out := make(map[string]string, len(part))
	for _, name := range part {
		out[name] = files[name]
	}
	return out
}

// AnalyzeSlice runs the per-file front-end over slice i of n of the
// corpus — the slice-restricted entry point shard workers build on. It
// is AnalyzeFiles on the restricted map: within the slice the usual
// guarantees hold (sorted-name merge order, byte-identical results at
// any worker count, cache reuse through cfg.Cache).
func AnalyzeSlice(files map[string]string, i, n int, cfg Config) *FrontEnd {
	return AnalyzeFiles(SliceFiles(files, i, n), cfg)
}
