package fpcache

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"seldon/internal/dataflow"
)

const testSrc = `from flask import request
import os

def handler():
    q = request.args.get('q')
    os.system(q)
`

func testEntry(t *testing.T) *Entry {
	t.Helper()
	g, err := dataflow.AnalyzeSource("app.py", testSrc)
	if err != nil {
		t.Fatal(err)
	}
	return &Entry{Graph: g, Cost: 123 * time.Microsecond}
}

func openTemp(t *testing.T) *Cache {
	t.Helper()
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestKeyDerivation(t *testing.T) {
	k := Key("app.py", testSrc)
	if k != Key("app.py", testSrc) {
		t.Error("key is not stable")
	}
	if Key("other.py", testSrc) == k {
		t.Error("key ignores the file name")
	}
	if Key("app.py", testSrc+"\n") == k {
		t.Error("key ignores the content")
	}
	// No length-prefix confusion: moving a byte across the name/content
	// boundary must change the key.
	if Key("app.pyx", testSrc[1:]) == Key("app.py", "x"+testSrc[1:]) {
		t.Error("name/content boundary is ambiguous")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	c := openTemp(t)
	want := testEntry(t)
	want.ParseError = "app.py:3:1: unexpected token"

	if _, ok := c.Get("app.py", testSrc); ok {
		t.Fatal("hit on an empty cache")
	}
	n, err := c.Put("app.py", testSrc, want)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("Put wrote %d bytes", n)
	}

	got, ok := c.Get("app.py", testSrc)
	if !ok {
		t.Fatal("miss after Put")
	}
	if got.ParseError != want.ParseError || got.Cost != want.Cost || got.Size != n {
		t.Errorf("entry = {err:%q cost:%v size:%d}, want {err:%q cost:%v size:%d}",
			got.ParseError, got.Cost, got.Size, want.ParseError, want.Cost, n)
	}
	if !bytes.Equal(got.Graph.AppendBinary(nil), want.Graph.AppendBinary(nil)) {
		t.Error("graph changed through the cache")
	}

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.BytesRead != n || st.BytesWritten != n {
		t.Errorf("stats = %+v", st)
	}
	if entries, err := c.Len(); err != nil || entries != 1 {
		t.Errorf("Len = %d, %v", entries, err)
	}
}

// corrupt applies fn to the single entry file in the cache directory.
func corrupt(t *testing.T, c *Cache, fn func([]byte) []byte) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(c.Dir(), "*"+entrySuffix))
	if err != nil || len(paths) != 1 {
		t.Fatalf("entry files = %v (err %v), want exactly one", paths, err)
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(paths[0], fn(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptionIsAMissNeverAnError(t *testing.T) {
	cases := map[string]func([]byte) []byte{
		"truncated":    func(d []byte) []byte { return d[:len(d)/2] },
		"bit flip":     func(d []byte) []byte { d[len(d)/2] ^= 0xff; return d },
		"empty":        func([]byte) []byte { return nil },
		"garbage":      func([]byte) []byte { return []byte("not a cache entry") },
		"bad checksum": func(d []byte) []byte { d[len(d)-1] ^= 0x01; return d },
		"stale codec version": func(d []byte) []byte {
			d[len(magic)] = codecVersion + 1 // single-byte uvarint
			return d
		},
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			c := openTemp(t)
			if _, err := c.Put("app.py", testSrc, testEntry(t)); err != nil {
				t.Fatal(err)
			}
			corrupt(t, c, fn)
			if _, ok := c.Get("app.py", testSrc); ok {
				t.Fatal("corrupted entry was a hit")
			}
			// The write-back path repairs it.
			if _, err := c.Put("app.py", testSrc, testEntry(t)); err != nil {
				t.Fatal(err)
			}
			if _, ok := c.Get("app.py", testSrc); !ok {
				t.Fatal("repaired entry still misses")
			}
		})
	}
}

func TestEncodeDeterministic(t *testing.T) {
	e := testEntry(t)
	first := e.encode()
	for i := 0; i < 8; i++ {
		if !bytes.Equal(e.encode(), first) {
			t.Fatal("entry encoding is not deterministic")
		}
	}
}

func TestClear(t *testing.T) {
	c := openTemp(t)
	for _, name := range []string{"a.py", "b.py"} {
		if _, err := c.Put(name, testSrc, testEntry(t)); err != nil {
			t.Fatal(err)
		}
	}
	// A stray temp file from a crashed writer is cleaned up too.
	if err := os.WriteFile(filepath.Join(c.Dir(), ".put-stray"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.Clear(); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Len(); err != nil || n != 0 {
		t.Fatalf("Len after Clear = %d, %v", n, err)
	}
	if des, _ := os.ReadDir(c.Dir()); len(des) != 0 {
		t.Errorf("directory not empty after Clear: %v", des)
	}
	if _, ok := c.Get("a.py", testSrc); ok {
		t.Error("hit after Clear")
	}
}

func TestOpenCreatesNestedDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "cache")
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("app.py", testSrc, testEntry(t)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("app.py", testSrc); !ok {
		t.Fatal("miss in freshly created nested dir")
	}
}
