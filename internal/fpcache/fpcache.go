// Package fpcache is the persistent, content-addressed cache of per-file
// front-end results that makes repeated corpus runs incremental: a file
// whose content has not changed skips parse + dataflow entirely and its
// propagation graph is loaded back from disk.
//
// Layout and key derivation: one entry per file under the cache
// directory, named <key>.fpc where key = sha256 over the analyzer
// version constant, the file's corpus path, and the file content (each
// length-prefixed). The path participates in the key because the cached
// result embeds it — event locations and parse-error text both carry the
// file name — so a renamed file re-analyzes once instead of replaying a
// stale name. Invalidation is therefore automatic: editing a file,
// renaming it, or bumping AnalyzerVersion changes the key and the old
// entry is simply never looked up again.
//
// Entry format: magic + codec version + payload (recorded analysis cost,
// parse-error text, propagation graph in propgraph's deterministic
// binary codec) + sha256 checksum of everything before it.
//
// Two properties the rest of the pipeline relies on:
//
//   - Corruption tolerance: a truncated, tampered, or stale-version
//     entry is a cache miss, never an error — the caller re-analyzes and
//     the write-back repairs the entry.
//   - Atomicity: Put writes to a temp file in the cache directory and
//     renames it into place, so concurrent readers (and crashed writers)
//     never observe a half-written entry.
package fpcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"seldon/internal/propgraph"
)

// AnalyzerVersion names the semantics of the per-file front-end
// (pytoken + pyparse + dataflow + the propgraph binary codec). Bump it
// whenever any of those changes observable output: every existing cache
// entry then misses and is rebuilt, instead of replaying stale results.
const AnalyzerVersion = "seldon-frontend-v1"

const (
	magic = "SFPC"
	// codecVersion 2: the embedded propagation graph switched to
	// propgraph's symbol-table binary codec (v2). Version-1 entries fail
	// to decode, which Get reports as a miss — the file re-analyzes once
	// and the write-back overwrites the entry in place (same key), so old
	// caches invalidate by design without leaving orphans.
	codecVersion = 2
	entrySuffix  = ".fpc"
	checksumSize = sha256.Size
)

// Entry is one cached per-file front-end result.
type Entry struct {
	// Graph is the file's propagation graph.
	Graph *propgraph.Graph
	// ParseError is the recovered parse failure's text ("" for a clean
	// parse); analysis ran over the recovered AST either way, matching
	// the live pipeline's contract.
	ParseError string
	// Cost is the parse+dataflow wall time paid when the entry was
	// produced — what a later hit avoids. It is metadata for cache
	// accounting, not part of the analysis result.
	Cost time.Duration
	// Size is the entry's on-disk size in bytes; set by Get.
	Size int64
}

// Stats is a point-in-time snapshot of a Cache's counters.
type Stats struct {
	Hits, Misses            int64
	BytesRead, BytesWritten int64
}

// Cache is a handle on a cache directory. All methods are safe for
// concurrent use; entries for distinct keys never contend, and the
// atomic-rename write makes same-key races benign (last writer wins with
// a complete entry).
type Cache struct {
	dir string

	hits, misses            atomic.Int64
	bytesRead, bytesWritten atomic.Int64
}

// Open prepares dir (creating it if needed) and returns a handle.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fpcache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// KeyBytes derives the content address of a (path, content) pair under
// the current AnalyzerVersion, in raw form — what shard sidecars ship on
// the wire (32 bytes instead of 64 hex digits).
func KeyBytes(name, content string) (out [sha256.Size]byte) {
	h := sha256.New()
	var lenBuf [8]byte
	part := func(s string) {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(s)))
		h.Write(lenBuf[:])
		h.Write([]byte(s))
	}
	part(AnalyzerVersion)
	part(name)
	part(content)
	h.Sum(out[:0])
	return out
}

// Key is KeyBytes in the hex form entries are named by on disk.
func Key(name, content string) string {
	k := KeyBytes(name, content)
	return hex.EncodeToString(k[:])
}

func (c *Cache) entryPath(key string) string {
	return filepath.Join(c.dir, key+entrySuffix)
}

// encode renders an entry in the on-disk format.
func (e *Entry) encode() []byte {
	buf := make([]byte, 0, 512)
	buf = append(buf, magic...)
	buf = binary.AppendUvarint(buf, codecVersion)
	buf = binary.AppendVarint(buf, int64(e.Cost))
	buf = binary.AppendUvarint(buf, uint64(len(e.ParseError)))
	buf = append(buf, e.ParseError...)
	buf = e.Graph.AppendBinary(buf)
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

// EncodeRawEntry renders an entry in the on-disk format from an
// already-encoded graph (propgraph binary bytes) instead of a live
// Graph. It exists for shard-sidecar ingestion, where the coordinator
// holds the worker's verified graph section bytes and re-encoding a
// decoded graph would only burn CPU to produce the identical bytes (the
// codec is deterministic).
func EncodeRawEntry(graphEnc []byte, parseErr string, cost time.Duration) []byte {
	buf := make([]byte, 0, len(magic)+2+16+len(parseErr)+len(graphEnc)+checksumSize)
	buf = append(buf, magic...)
	buf = binary.AppendUvarint(buf, codecVersion)
	buf = binary.AppendVarint(buf, int64(cost))
	buf = binary.AppendUvarint(buf, uint64(len(parseErr)))
	buf = append(buf, parseErr...)
	buf = append(buf, graphEnc...)
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

// PutRawKey stores pre-encoded entry bytes (EncodeRawEntry) under a raw
// key (KeyBytes), atomically like Put. The caller vouches that data is a
// well-formed entry for that key; a wrong claim costs nothing but a
// wasted slot — Get re-validates the checksum and codec on read and
// treats a bad entry as a miss.
func (c *Cache) PutRawKey(key [sha256.Size]byte, data []byte) (int64, error) {
	tmp, err := os.CreateTemp(c.dir, ".put-*")
	if err != nil {
		return 0, fmt.Errorf("fpcache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("fpcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("fpcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.entryPath(hex.EncodeToString(key[:]))); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("fpcache: %w", err)
	}
	c.bytesWritten.Add(int64(len(data)))
	return int64(len(data)), nil
}

// decodeEntry parses and validates an on-disk entry.
func decodeEntry(data []byte) (*Entry, error) {
	if len(data) < len(magic)+1+checksumSize {
		return nil, fmt.Errorf("fpcache: entry too short (%d bytes)", len(data))
	}
	payload, sum := data[:len(data)-checksumSize], data[len(data)-checksumSize:]
	if want := sha256.Sum256(payload); string(want[:]) != string(sum) {
		return nil, fmt.Errorf("fpcache: checksum mismatch")
	}
	if string(payload[:len(magic)]) != magic {
		return nil, fmt.Errorf("fpcache: bad magic")
	}
	rest := payload[len(magic):]
	ver, n := binary.Uvarint(rest)
	if n <= 0 || ver != codecVersion {
		return nil, fmt.Errorf("fpcache: unsupported codec version %d", ver)
	}
	rest = rest[n:]
	cost, n := binary.Varint(rest)
	if n <= 0 || cost < 0 {
		return nil, fmt.Errorf("fpcache: bad cost field")
	}
	rest = rest[n:]
	errLen, n := binary.Uvarint(rest)
	if n <= 0 || errLen > uint64(len(rest)-n) {
		return nil, fmt.Errorf("fpcache: bad parse-error length")
	}
	rest = rest[n:]
	parseErr := string(rest[:errLen])
	g, tail, err := propgraph.DecodeBinary(rest[errLen:])
	if err != nil {
		return nil, err
	}
	if len(tail) != 0 {
		return nil, fmt.Errorf("fpcache: %d trailing bytes after graph", len(tail))
	}
	return &Entry{Graph: g, ParseError: parseErr, Cost: time.Duration(cost), Size: int64(len(data))}, nil
}

// Get looks up the entry for (name, content). Any failure — absent
// entry, unreadable file, corruption, version skew — is reported as a
// miss; Get never errors.
func (c *Cache) Get(name, content string) (*Entry, bool) {
	data, err := os.ReadFile(c.entryPath(Key(name, content)))
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	e, err := decodeEntry(data)
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	c.bytesRead.Add(e.Size)
	return e, true
}

// Put stores the entry for (name, content) atomically (temp file +
// rename) and returns the bytes written.
func (c *Cache) Put(name, content string, e *Entry) (int64, error) {
	data := e.encode()
	tmp, err := os.CreateTemp(c.dir, ".put-*")
	if err != nil {
		return 0, fmt.Errorf("fpcache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("fpcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("fpcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.entryPath(Key(name, content))); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("fpcache: %w", err)
	}
	c.bytesWritten.Add(int64(len(data)))
	return int64(len(data)), nil
}

// Clear removes every cache entry (and any abandoned temp file) from
// the directory, leaving the directory itself in place.
func (c *Cache) Clear() error {
	des, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("fpcache: %w", err)
	}
	for _, de := range des {
		name := de.Name()
		if strings.HasSuffix(name, entrySuffix) || strings.HasPrefix(name, ".put-") {
			if err := os.Remove(filepath.Join(c.dir, name)); err != nil {
				return fmt.Errorf("fpcache: %w", err)
			}
		}
	}
	return nil
}

// Len counts the entries currently on disk.
func (c *Cache) Len() (int, error) {
	des, err := os.ReadDir(c.dir)
	if err != nil {
		return 0, fmt.Errorf("fpcache: %w", err)
	}
	n := 0
	for _, de := range des {
		if strings.HasSuffix(de.Name(), entrySuffix) {
			n++
		}
	}
	return n, nil
}

// Stats snapshots the handle's hit/miss/byte counters (cumulative since
// Open, across every Get/Put through this handle).
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		BytesRead:    c.bytesRead.Load(),
		BytesWritten: c.bytesWritten.Load(),
	}
}
