package checkcache

import (
	"fmt"
	"sync"
	"testing"
)

// keyInShard fabricates distinct keys that all land in one shard, so
// LRU-order assertions are deterministic despite sharding.
func keyInShard(t *testing.T, shard, n int) Key {
	t.Helper()
	for i := 0; ; i++ {
		k := KeyOf("shardkey", fmt.Sprint(shard), fmt.Sprint(n), fmt.Sprint(i))
		if int(k[0]&(numShards-1)) == shard {
			return k
		}
	}
}

func TestKeyOfLengthPrefixing(t *testing.T) {
	if KeyOf("ab", "c") == KeyOf("a", "bc") {
		t.Fatal("length prefixing failed: part boundaries collide")
	}
	if KeyOf("a", "b") != KeyOf("a", "b") {
		t.Fatal("KeyOf not deterministic")
	}
	if KeyOfBytes([]string{"a"}, []byte("b")) != KeyOf("a", "b") {
		t.Fatal("KeyOfBytes disagrees with KeyOf")
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(0, 0)
	k := KeyOf("v1", "store", "f.py", "body")
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, []byte("result"))
	v, ok := c.Get(k)
	if !ok || string(v) != "result" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 6 {
		t.Errorf("stats = %+v", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", got)
	}
}

func TestEntryCapEviction(t *testing.T) {
	// Global cap 16 → one entry per shard. Confine keys to shard 3 so
	// every insert beyond the first must evict the previous one.
	c := New(16, 0)
	k1 := keyInShard(t, 3, 1)
	k2 := keyInShard(t, 3, 2)
	c.Put(k1, []byte("one"))
	c.Put(k2, []byte("two"))
	if _, ok := c.Get(k1); ok {
		t.Error("LRU entry survived entry-cap eviction")
	}
	if _, ok := c.Get(k2); !ok {
		t.Error("most-recent entry evicted")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestByteCapEviction(t *testing.T) {
	// 160 global bytes → 10 per shard. Three 3-byte values fit; the
	// fourth pushes the shard over and the least-recently-used goes.
	c := New(0, 160)
	ks := make([]Key, 4)
	for i := range ks {
		ks[i] = keyInShard(t, 5, i)
	}
	for i := 0; i < 3; i++ {
		c.Put(ks[i], []byte("xxx"))
	}
	// Touch ks[0] so ks[1] is now least recently used.
	if _, ok := c.Get(ks[0]); !ok {
		t.Fatal("resident entry missed")
	}
	c.Put(ks[3], []byte("xxx"))
	if _, ok := c.Get(ks[1]); ok {
		t.Error("LRU entry survived byte-cap eviction")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := c.Get(ks[i]); !ok {
			t.Errorf("entry %d evicted, want resident", i)
		}
	}
	if st := c.Stats(); st.Bytes > 10 || st.Evictions != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOversizeValueNotCached(t *testing.T) {
	c := New(0, 160) // 10 bytes per shard
	k := KeyOf("big")
	c.Put(k, make([]byte, 11))
	if _, ok := c.Get(k); ok {
		t.Error("value larger than the shard byte cap was cached")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPutRefreshSameKey(t *testing.T) {
	c := New(0, 0)
	k := KeyOf("k")
	c.Put(k, []byte("aa"))
	c.Put(k, []byte("bbbb"))
	v, ok := c.Get(k)
	if !ok || string(v) != "bbbb" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if st := c.Stats(); st.Entries != 1 || st.Bytes != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNilCacheIsNoop(t *testing.T) {
	var c *Cache
	if _, ok := c.Get(KeyOf("k")); ok {
		t.Error("nil cache hit")
	}
	c.Put(KeyOf("k"), []byte("v")) // must not panic
	if c.Len() != 0 {
		t.Error("nil cache Len != 0")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil stats = %+v", st)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(256, 1<<20)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := KeyOf("c", fmt.Sprint(i%64))
				if v, ok := c.Get(k); ok && len(v) == 0 {
					t.Error("empty cached value")
					return
				}
				c.Put(k, []byte(fmt.Sprintf("val-%d", i%64)))
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries == 0 || st.Entries > 64 {
		t.Errorf("entries = %d", st.Entries)
	}
}
