// Package checkcache is the in-memory, content-addressed cache of
// encoded check results behind seldond's POST /v1/check hot path. Where
// internal/fpcache makes repeated *corpus* analysis incremental on
// disk, checkcache makes repeated *requests* nearly free in memory: the
// same body, checked against the same specification generation with the
// same options, costs one analysis and one encode — every later
// identical request is a bounded-map lookup.
//
// Key derivation follows the fpcache recipe: sha256 over length-prefixed
// parts. Callers key on (analyzer version, store fingerprint/generation,
// filename, request options, body), so a reload that actually changes
// the specification shifts every key and the old generation's entries
// simply stop being looked up — invalidation is a natural consequence of
// the keying, never an explicit flush. Dead-generation entries age out
// through the LRU.
//
// The cache is sharded to keep lock hold times short under concurrent
// serving traffic: the first key byte selects one of 16 shards, each an
// independent mutex + hash map + intrusive LRU list. Both bounds —
// entry count and total value bytes — are enforced per shard (the
// global caps are split evenly), so one giant response cannot evict the
// whole working set, and an over-cap insert evicts from the tail of the
// same shard only.
package checkcache

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"sync/atomic"
)

const numShards = 16

// Default caps: entries bound the map, bytes bound the resident encoded
// responses. Both are deliberately modest — the cache targets the
// duplicate-heavy head of the traffic distribution, not the long tail.
const (
	DefaultMaxEntries = 8192
	DefaultMaxBytes   = 64 << 20
)

// Key is the content address of one check: sha256 over the
// length-prefixed key parts.
type Key [sha256.Size]byte

// KeyOf derives a Key from its parts. Each part is length-prefixed
// before hashing, so part boundaries are unambiguous ("ab","c" never
// collides with "a","bc").
func KeyOf(parts ...string) Key {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write([]byte(p))
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// KeyOfBytes is KeyOf for callers holding the last part (typically the
// request body) as a byte slice; it avoids the string conversion on the
// hot path.
func KeyOfBytes(parts []string, last []byte) Key {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write([]byte(p))
	}
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(last)))
	h.Write(lenBuf[:])
	h.Write(last)
	var k Key
	h.Sum(k[:0])
	return k
}

// entry is one cached value, threaded on its shard's LRU list.
type entry struct {
	key        Key
	val        []byte
	prev, next *entry // LRU list; head = most recent
}

type shard struct {
	mu    sync.Mutex
	m     map[Key]*entry
	head  *entry // most recently used
	tail  *entry // least recently used
	bytes int64
}

// Stats is a point-in-time snapshot of the cache counters. Hits,
// Misses, and Evictions are cumulative; Entries and Bytes are current
// residency.
type Stats struct {
	Hits, Misses, Evictions int64
	Entries                 int64
	Bytes                   int64
}

// HitRate is hits over lookups, 0 before any lookup.
func (s Stats) HitRate() float64 {
	if n := s.Hits + s.Misses; n > 0 {
		return float64(s.Hits) / float64(n)
	}
	return 0
}

// Cache is a bounded, sharded LRU of encoded check results. All methods
// are safe for concurrent use; a nil *Cache is a valid always-miss
// no-op, so callers serving with the cache disabled need no guards.
type Cache struct {
	shards          [numShards]shard
	maxShardEntries int
	maxShardBytes   int64

	hits, misses, evictions atomic.Int64
	entries, bytes          atomic.Int64
}

// New builds a cache bounded by maxEntries resident values and maxBytes
// total value bytes. Non-positive caps select the defaults; the caps
// are split evenly across the shards (rounded up), so the effective
// global bound is within one shard's rounding of the requested one.
func New(maxEntries int, maxBytes int64) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	c := &Cache{
		maxShardEntries: (maxEntries + numShards - 1) / numShards,
		maxShardBytes:   (maxBytes + numShards - 1) / numShards,
	}
	for i := range c.shards {
		c.shards[i].m = make(map[Key]*entry)
	}
	return c
}

func (c *Cache) shardOf(k Key) *shard { return &c.shards[k[0]&(numShards-1)] }

// Get returns the cached value for k, promoting the entry to
// most-recently-used. The returned slice is the cache's own backing
// array: callers must treat it as immutable.
func (c *Cache) Get(k Key) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	sh := c.shardOf(k)
	sh.mu.Lock()
	e, ok := sh.m[k]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	sh.moveToFront(e)
	v := e.val
	sh.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put inserts (or refreshes) the value for k and evicts
// least-recently-used entries until the shard is back under both caps.
// The cache keeps a reference to val: callers must not mutate it after
// the call. A value that alone exceeds the per-shard byte cap is not
// cached. Nil-safe no-op.
func (c *Cache) Put(k Key, val []byte) {
	if c == nil || int64(len(val)) > c.maxShardBytes {
		return
	}
	sh := c.shardOf(k)
	sh.mu.Lock()
	if e, ok := sh.m[k]; ok {
		// Same content address ⇒ same value bytes in practice, but refresh
		// anyway: last writer wins, accounting follows.
		sh.bytes += int64(len(val)) - int64(len(e.val))
		c.bytes.Add(int64(len(val)) - int64(len(e.val)))
		e.val = val
		sh.moveToFront(e)
		sh.mu.Unlock()
		return
	}
	e := &entry{key: k, val: val}
	sh.m[k] = e
	sh.pushFront(e)
	sh.bytes += int64(len(val))
	c.entries.Add(1)
	c.bytes.Add(int64(len(val)))
	var evicted int64
	for (len(sh.m) > c.maxShardEntries || sh.bytes > c.maxShardBytes) && sh.tail != nil && sh.tail != e {
		t := sh.tail
		sh.unlink(t)
		delete(sh.m, t.key)
		sh.bytes -= int64(len(t.val))
		c.entries.Add(-1)
		c.bytes.Add(-int64(len(t.val)))
		evicted++
	}
	sh.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// Len reports the resident entry count. Nil-safe.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	return int(c.entries.Load())
}

// Stats snapshots the cache counters. Nil-safe (all zero).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.entries.Load(),
		Bytes:     c.bytes.Load(),
	}
}

// --- intrusive LRU list (shard.mu held) ---

func (sh *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *shard) moveToFront(e *entry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}
