package constraints

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"time"

	"seldon/internal/lp"
	"seldon/internal/obs"
	"seldon/internal/propgraph"
	"seldon/internal/spec"
)

// Delta-aware constraint building. A disjoint union assigns each corpus
// file a contiguous event-ID range, and edges never cross files, so
// weakly connected components — the unit pass 4 generates constraints
// over — never cross file spans either. weakComponents discovers
// components in ascending event-ID order, which means the global flow
// pass is exactly the concatenation of per-file flow passes in span
// order. BuildIncremental exploits that: passes 1–3 (linear, cheap) run
// from scratch every time, but the superlinear pass 4 reuses a cached
// constraint block for every file whose support set is unchanged.
//
// A block's support set is everything its constraints can depend on:
// the file's internal graph structure (covered by the span's content
// hash) and, per event, the surviving representations with their global
// variable IDs for every role (covered by the fingerprint below). The
// fingerprint is global-state-aware by construction — a change in one
// file that shifts another file's frequencies past the cutoff, or
// renumbers its variables, changes that file's fingerprint and forces a
// rebuild — so a cache hit is sound, not heuristic. The equivalence
// tests pin the stronger property: the incrementally built system is
// byte-identical to Build on the same graph.

// Span describes the contiguous event range one corpus file contributes
// to a disjoint union. Hash identifies the file's graph content (the
// sha256 of its binary encoding); two spans with equal hashes carry
// structurally identical subgraphs.
type Span struct {
	File   string
	Lo, Hi int // event IDs [Lo, Hi)
	Hash   [32]byte
}

// flowBlock is the cached pass-4 output for one file span: the
// constraints (terms carry global variable IDs), the per-pattern counts,
// and the support fingerprint they are valid under.
type flowBlock struct {
	fp      [32]byte
	cons    []lp.Constraint
	countA  int
	countB  int
	countC  int
	skipped int
}

// FlowCache holds per-file flow-constraint blocks across incremental
// builds. It is not safe for concurrent use; the owning session
// serializes builds.
type FlowCache struct {
	blocks map[string]*flowBlock
}

// NewFlowCache returns an empty cache.
func NewFlowCache() *FlowCache {
	return &FlowCache{blocks: make(map[string]*flowBlock)}
}

// Len returns the number of cached file blocks.
func (c *FlowCache) Len() int {
	if c == nil {
		return 0
	}
	return len(c.blocks)
}

// DeltaStats reports what one BuildIncremental call reused.
type DeltaStats struct {
	// Spans is the number of file spans presented; SpansReused the
	// subset whose cached constraint block was valid, SpansRebuilt the
	// rest. ConstraintsReused counts constraints taken from the cache.
	Spans             int
	SpansReused       int
	SpansRebuilt      int
	ConstraintsReused int
	// FellBack reports that the spans did not cleanly tile the graph
	// (or an edge crossed a span boundary) and the flow pass ran the
	// ordinary full build instead. The result is still correct — the
	// cache just contributed nothing.
	FellBack bool
}

// BuildIncremental constructs the same constraint system Build would,
// byte for byte, reusing cached flow-constraint blocks for files whose
// support set is unchanged since the last build. spans must list the
// union's file spans in event-ID order; cache carries blocks between
// calls and is updated in place (stale files pruned, rebuilt files
// replaced). A nil cache or invalid spans degrade to a full build.
func BuildIncremental(g *propgraph.Graph, seed *spec.Spec, opts Options,
	spans []Span, cache *FlowCache) (*System, DeltaStats) {
	opts = opts.withDefaults()
	s, workers := buildCore(g, seed, opts)
	m := opts.Metrics
	st := DeltaStats{Spans: len(spans)}

	t0 := time.Now()
	if cache == nil || !spansClosed(g, spans) {
		st.FellBack = true
		s.buildFlowConstraints(g)
	} else {
		localOf := make([]int32, len(g.Events))
		var sc flowScratch
		sc.localOf = localOf
		h := sha256.New()
		for i := range spans {
			sp := &spans[i]
			fp := s.spanFingerprint(h, g, sp)
			if b := cache.blocks[sp.File]; b != nil && b.fp == fp {
				s.Problem.Constraints = append(s.Problem.Constraints, b.cons...)
				s.CountA += b.countA
				s.CountB += b.countB
				s.CountC += b.countC
				s.SkippedComponents += b.skipped
				st.SpansReused++
				st.ConstraintsReused += len(b.cons)
				continue
			}
			start := len(s.Problem.Constraints)
			a0, b0, c0, k0 := s.CountA, s.CountB, s.CountC, s.SkippedComponents
			s.buildFlowRange(g, sp.Lo, sp.Hi, &sc)
			cache.blocks[sp.File] = &flowBlock{
				fp:      fp,
				cons:    append([]lp.Constraint(nil), s.Problem.Constraints[start:]...),
				countA:  s.CountA - a0,
				countB:  s.CountB - b0,
				countC:  s.CountC - c0,
				skipped: s.SkippedComponents - k0,
			}
			st.SpansRebuilt++
		}
		// Prune blocks for files no longer in the union.
		if len(cache.blocks) > len(spans) {
			live := make(map[string]bool, len(spans))
			for i := range spans {
				live[spans[i].File] = true
			}
			for f := range cache.blocks {
				if !live[f] {
					delete(cache.blocks, f)
				}
			}
		}
	}
	m.ObserveDuration(obs.StageConstraintsFlow, time.Since(t0))

	s.finishMetrics(workers)
	m.Set(obs.GaugeIncrSpansReused, float64(st.SpansReused))
	m.Set(obs.GaugeIncrConstraintsReused, float64(st.ConstraintsReused))
	if cache != nil {
		// flowcache.{hits,misses} count per-span block reuse whenever a
		// cache is in play; a fallback build consulted the cache for
		// nothing, so every presented span is a miss.
		m.Add(obs.CounterFlowCacheHits, int64(st.SpansReused))
		if st.FellBack {
			m.Add(obs.CounterFlowCacheMisses, int64(len(spans)))
		} else {
			m.Add(obs.CounterFlowCacheMisses, int64(st.SpansRebuilt))
		}
	}
	return s, st
}

// spansClosed validates that spans tile [0, len(Events)) in order and
// that no edge crosses a span boundary — the precondition for per-span
// flow building to reproduce the global pass.
func spansClosed(g *propgraph.Graph, spans []Span) bool {
	n := len(g.Events)
	at := 0
	for i := range spans {
		sp := &spans[i]
		if sp.Lo != at || sp.Hi < sp.Lo {
			return false
		}
		at = sp.Hi
	}
	if at != n {
		return false
	}
	spanOf := make([]int32, n)
	for i := range spans {
		for id := spans[i].Lo; id < spans[i].Hi; id++ {
			spanOf[id] = int32(i)
		}
	}
	for id := 0; id < n; id++ {
		for _, dst := range g.Succs(id) {
			if spanOf[dst] != spanOf[id] {
				return false
			}
		}
	}
	return true
}

// spanFingerprint hashes everything a span's constraint block depends
// on: the file's graph content, the component size bound, and — per
// event in the span — its candidacy, roles, and the global variable ID
// of every (surviving representation, role) pair. Variable IDs are
// global first-seen, so any upstream change that renumbers this file's
// variables (or moves a representation across the frequency cutoff)
// changes the fingerprint.
func (s *System) spanFingerprint(h hash.Hash, g *propgraph.Graph, sp *Span) [32]byte {
	h.Reset()
	h.Write(sp.Hash[:])
	var buf [8]byte
	wInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wInt(int64(s.Opts.MaxComponent))
	for id := sp.Lo; id < sp.Hi; id++ {
		info := s.InfoFor(id)
		if info == nil {
			wInt(-1)
			continue
		}
		wInt(int64(info.Roles))
		wInt(int64(len(info.RepIDs)))
		for _, sym := range info.RepIDs {
			for _, role := range propgraph.Roles() {
				wInt(int64(s.VarIDSym(sym, role)))
			}
		}
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// buildFlowRange runs the pass-4 machinery over events [lo, hi), which
// must be closed under edges (spansClosed). Component discovery,
// bucketing, and per-component generation mirror buildFlowConstraints
// exactly, so concatenating ranges in span order reproduces the global
// constraint stream byte for byte.
func (s *System) buildFlowRange(g *propgraph.Graph, lo, hi int, sc *flowScratch) {
	n := hi - lo
	if n < 2 {
		return
	}
	comp, ncomp := weakComponentsRange(g, lo, hi)
	counts := make([]int, ncomp)
	for _, c := range comp {
		counts[c]++
	}
	starts := make([]int, ncomp+1)
	for c, k := range counts {
		starts[c+1] = starts[c] + k
	}
	copy(counts, starts[:ncomp])
	byComp := make([]int, n)
	for id := lo; id < hi; id++ {
		c := comp[id-lo]
		byComp[counts[c]] = id
		counts[c]++
	}
	for k, id := range byComp {
		sc.localOf[id] = int32(k - starts[comp[id-lo]])
	}
	for c := 0; c < ncomp; c++ {
		events := byComp[starts[c]:starts[c+1]]
		if len(events) < 2 {
			continue
		}
		if len(events) > s.Opts.MaxComponent {
			s.SkippedComponents++
			continue
		}
		s.buildComponent(g, events, sc)
	}
}

// weakComponentsRange is weakComponents restricted to events [lo, hi);
// comp is indexed by id-lo. Neighbors are assumed in-range (the caller
// validated closure).
func weakComponentsRange(g *propgraph.Graph, lo, hi int) ([]int, int) {
	n := hi - lo
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	var stack []int
	for start := lo; start < hi; start++ {
		if comp[start-lo] >= 0 {
			continue
		}
		comp[start-lo] = next
		stack = append(stack[:0], start)
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, nb := range g.Succs(id) {
				if comp[nb-lo] < 0 {
					comp[nb-lo] = next
					stack = append(stack, nb)
				}
			}
			for _, nb := range g.Preds(id) {
				if comp[nb-lo] < 0 {
					comp[nb-lo] = next
					stack = append(stack, nb)
				}
			}
		}
		next++
	}
	return comp, next
}
