package constraints_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"reflect"
	"sort"
	"testing"

	"seldon/internal/constraints"
	"seldon/internal/core"
	"seldon/internal/corpus"
	"seldon/internal/propgraph"
)

// corpusSpans analyzes a corpus and returns the per-file graphs (sorted
// name order), the union, and the file spans the union assigns.
func corpusSpans(t *testing.T, files map[string]string, workers int) ([]string, []*propgraph.Graph, *propgraph.Graph, []constraints.Span) {
	t.Helper()
	fe := core.AnalyzeFiles(files, core.Config{Workers: workers})
	union := propgraph.Union(fe.Graphs...)
	spans := make([]constraints.Span, len(fe.Names))
	at := 0
	for i, g := range fe.Graphs {
		spans[i] = constraints.Span{
			File: fe.Names[i],
			Lo:   at,
			Hi:   at + len(g.Events),
			Hash: sha256.Sum256(g.AppendBinary(nil)),
		}
		at = spans[i].Hi
	}
	return fe.Names, fe.Graphs, union, spans
}

// encodeSystem renders everything observable about a constraint system
// into deterministic bytes — the byte-equality oracle for the
// incremental build.
func encodeSystem(s *constraints.System) []byte {
	var b bytes.Buffer
	w := func(v int64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		b.Write(buf[:])
	}
	w(int64(s.Problem.NumVars))
	w(int64(len(s.Vars)))
	for _, v := range s.Vars {
		b.WriteString(v.Rep)
		w(int64(v.Role))
	}
	w(int64(len(s.EventInfos)))
	for i := range s.EventInfos {
		info := &s.EventInfos[i]
		w(int64(info.EventID))
		w(int64(info.Roles))
		for _, sym := range info.RepIDs {
			w(int64(sym))
		}
	}
	keys := make([]int, 0, len(s.Problem.Known))
	for k := range s.Problem.Known {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		w(int64(k))
		w(int64(s.Problem.Known[k] * 1000))
	}
	w(int64(len(s.Problem.Constraints)))
	for i := range s.Problem.Constraints {
		c := &s.Problem.Constraints[i]
		w(int64(len(c.LHS)))
		for _, tm := range c.LHS {
			w(int64(tm.Var))
			w(int64(tm.Coef * 1e9))
		}
		w(int64(len(c.RHS)))
		for _, tm := range c.RHS {
			w(int64(tm.Var))
			w(int64(tm.Coef * 1e9))
		}
	}
	w(int64(s.CountA))
	w(int64(s.CountB))
	w(int64(s.CountC))
	w(int64(s.SkippedComponents))
	return b.Bytes()
}

// TestBuildIncrementalMatchesBuild: on a fresh cache (every span
// rebuilt) and on a warm cache (every span reused), the incremental
// build is byte-identical to Build, at workers 1 and 4.
func TestBuildIncrementalMatchesBuild(t *testing.T) {
	files := corpus.Generate(corpus.Config{Files: 12, Seed: 7}).FileMap()
	seed := corpus.ExperimentSeed()
	for _, workers := range []int{1, 4} {
		opts := constraints.Options{Workers: workers}
		_, _, union, spans := corpusSpans(t, files, workers)
		full := constraints.Build(union, seed, opts)
		want := encodeSystem(full)

		cache := constraints.NewFlowCache()
		inc, st := constraints.BuildIncremental(union, seed, opts, spans, cache)
		if st.FellBack {
			t.Fatalf("workers=%d: cold incremental build fell back", workers)
		}
		if st.SpansRebuilt != len(spans) || st.SpansReused != 0 {
			t.Fatalf("workers=%d: cold build reused %d/%d spans", workers, st.SpansReused, st.Spans)
		}
		if got := encodeSystem(inc); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: cold incremental system differs from Build", workers)
		}

		// Same graph again: everything must come from the cache.
		inc2, st2 := constraints.BuildIncremental(union, seed, opts, spans, cache)
		if st2.SpansReused != len(spans) || st2.SpansRebuilt != 0 {
			t.Fatalf("workers=%d: warm build reused %d/%d spans, rebuilt %d",
				workers, st2.SpansReused, st2.Spans, st2.SpansRebuilt)
		}
		if st2.ConstraintsReused != len(full.Problem.Constraints) {
			t.Fatalf("workers=%d: warm build reused %d constraints, want %d",
				workers, st2.ConstraintsReused, len(full.Problem.Constraints))
		}
		if got := encodeSystem(inc2); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: warm incremental system differs from Build", workers)
		}
	}
}

// TestBuildIncrementalAfterMutation mutates one corpus file and checks
// the delta build against a from-scratch build of the mutated corpus —
// the equivalence oracle of the incremental subsystem — at workers 1
// and 4.
func TestBuildIncrementalAfterMutation(t *testing.T) {
	files := corpus.Generate(corpus.Config{Files: 12, Seed: 7}).FileMap()
	seed := corpus.ExperimentSeed()
	var names []string
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	victim := names[len(names)-1]

	for _, workers := range []int{1, 4} {
		opts := constraints.Options{Workers: workers}
		_, _, union, spans := corpusSpans(t, files, workers)
		cache := constraints.NewFlowCache()
		constraints.BuildIncremental(union, seed, opts, spans, cache)

		mutated := make(map[string]string, len(files))
		for n, src := range files {
			mutated[n] = src
		}
		mutated[victim] += "\ndef extra(q):\n    y = q.fetch()\n    sys_exec(y)\n"

		_, _, union2, spans2 := corpusSpans(t, mutated, workers)
		inc, st := constraints.BuildIncremental(union2, seed, opts, spans2, cache)
		full := constraints.Build(union2, seed, opts)
		if !bytes.Equal(encodeSystem(inc), encodeSystem(full)) {
			t.Fatalf("workers=%d: incremental system after mutation differs from from-scratch build", workers)
		}
		if st.FellBack {
			t.Fatalf("workers=%d: mutation build fell back", workers)
		}
		if st.SpansReused == 0 {
			t.Fatalf("workers=%d: mutation of one file reused no spans", workers)
		}
		t.Logf("workers=%d: reused %d/%d spans, %d constraints", workers,
			st.SpansReused, st.Spans, st.ConstraintsReused)
	}
}

// TestBuildIncrementalFallback: spans that do not tile the graph (or a
// nil cache) degrade to a full build with identical output.
func TestBuildIncrementalFallback(t *testing.T) {
	files := corpus.Generate(corpus.Config{Files: 6, Seed: 3}).FileMap()
	seed := corpus.ExperimentSeed()
	_, _, union, spans := corpusSpans(t, files, 1)
	opts := constraints.Options{Workers: 1}
	want := encodeSystem(constraints.Build(union, seed, opts))

	inc, st := constraints.BuildIncremental(union, seed, opts, spans[:len(spans)-1], constraints.NewFlowCache())
	if !st.FellBack {
		t.Fatal("non-tiling spans did not fall back")
	}
	if !bytes.Equal(encodeSystem(inc), want) {
		t.Fatal("fallback build differs from Build")
	}

	inc2, st2 := constraints.BuildIncremental(union, seed, opts, spans, nil)
	if !st2.FellBack {
		t.Fatal("nil cache did not fall back")
	}
	if !bytes.Equal(encodeSystem(inc2), want) {
		t.Fatal("nil-cache build differs from Build")
	}
}

// TestSpanFingerprintTracksGlobalState: mutating an early file shifts
// global variable numbering; a later file whose own bytes are unchanged
// must still rebuild when its variable IDs moved, and the result must
// stay correct. (reflect.DeepEqual over the problem double-checks the
// byte oracle on this path.)
func TestSpanFingerprintTracksGlobalState(t *testing.T) {
	files := corpus.Generate(corpus.Config{Files: 8, Seed: 11}).FileMap()
	seed := corpus.ExperimentSeed()
	var names []string
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	victim := names[0] // first file: renumbers everything after it

	opts := constraints.Options{Workers: 1}
	_, _, union, spans := corpusSpans(t, files, 1)
	cache := constraints.NewFlowCache()
	constraints.BuildIncremental(union, seed, opts, spans, cache)

	mutated := make(map[string]string, len(files))
	for n, src := range files {
		mutated[n] = src
	}
	mutated[victim] = "def fresh(a):\n    b = a.read()\n    return b\n"

	_, _, union2, spans2 := corpusSpans(t, mutated, 1)
	inc, _ := constraints.BuildIncremental(union2, seed, opts, spans2, cache)
	full := constraints.Build(union2, seed, opts)
	if !bytes.Equal(encodeSystem(inc), encodeSystem(full)) {
		t.Fatal("incremental system differs after head-file mutation")
	}
	if !reflect.DeepEqual(inc.Problem.Constraints, full.Problem.Constraints) {
		t.Fatal("constraint slices differ after head-file mutation")
	}
	if !reflect.DeepEqual(inc.Problem.Known, full.Problem.Known) {
		t.Fatal("known pins differ after head-file mutation")
	}
}
