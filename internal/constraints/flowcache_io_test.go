package constraints_test

import (
	"bytes"
	"crypto/sha256"
	"os"
	"path/filepath"
	"testing"

	"seldon/internal/constraints"
	"seldon/internal/corpus"
	"seldon/internal/fpcache"
)

// TestFlowCacheSaveLoadRoundTrip: a populated cache persisted and
// reloaded must drive a second incremental build to the byte-identical
// system with every span reused — cross-process warmth, not just
// cross-call warmth.
func TestFlowCacheSaveLoadRoundTrip(t *testing.T) {
	files := corpus.Generate(corpus.Config{Files: 12, Seed: 7}).FileMap()
	seed := corpus.ExperimentSeed()
	opts := constraints.Options{Workers: 1}
	_, _, union, spans := corpusSpans(t, files, 1)

	cache := constraints.NewFlowCache()
	cold, st := constraints.BuildIncremental(union, seed, opts, spans, cache)
	if st.FellBack || st.SpansRebuilt != len(spans) {
		t.Fatalf("cold build: %+v", st)
	}
	want := encodeSystem(cold)

	path := filepath.Join(t.TempDir(), "flowcache.bin")
	if err := cache.Save(path, opts); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, ok := constraints.LoadFlowCache(path, opts)
	if !ok {
		t.Fatal("LoadFlowCache rejected its own Save")
	}
	if loaded.Len() != cache.Len() {
		t.Fatalf("loaded %d blocks, saved %d", loaded.Len(), cache.Len())
	}

	warm, st2 := constraints.BuildIncremental(union, seed, opts, spans, loaded)
	if st2.SpansReused != len(spans) || st2.SpansRebuilt != 0 {
		t.Fatalf("warm-from-disk build reused %d/%d spans, rebuilt %d",
			st2.SpansReused, st2.Spans, st2.SpansRebuilt)
	}
	if !bytes.Equal(encodeSystem(warm), want) {
		t.Fatal("system built from the persisted cache differs from the original")
	}

	// Save is deterministic: same cache, same bytes.
	path2 := filepath.Join(t.TempDir(), "flowcache2.bin")
	if err := loaded.Save(path2, opts); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(path)
	b2, _ := os.ReadFile(path2)
	if !bytes.Equal(b1, b2) {
		t.Error("Save is not deterministic across a load round-trip")
	}
}

// TestLoadFlowCacheRejects mirrors the incr state 4-way rejection: a
// stale analyzer version, skewed knobs, a corrupted trailer, and a
// truncated file must each load as an empty cache (miss) — never an
// error, never a poisoned cache.
func TestLoadFlowCacheRejects(t *testing.T) {
	files := corpus.Generate(corpus.Config{Files: 8, Seed: 3}).FileMap()
	seed := corpus.ExperimentSeed()
	opts := constraints.Options{Workers: 1}
	_, _, union, spans := corpusSpans(t, files, 1)
	cache := constraints.NewFlowCache()
	constraints.BuildIncremental(union, seed, opts, spans, cache)
	if cache.Len() == 0 {
		t.Fatal("fixture cache is empty")
	}

	dir := t.TempDir()
	good := filepath.Join(dir, "flowcache.bin")
	if err := cache.Save(good, opts); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	writeVariant := func(t *testing.T, b []byte) string {
		t.Helper()
		p := filepath.Join(t.TempDir(), "variant.bin")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	expectEmpty := func(t *testing.T, path string, loadOpts constraints.Options) {
		t.Helper()
		c, ok := constraints.LoadFlowCache(path, loadOpts)
		if ok {
			t.Error("LoadFlowCache accepted a skewed file")
		}
		if c == nil || c.Len() != 0 {
			t.Errorf("skewed load returned a non-empty cache (%d blocks)", c.Len())
		}
	}

	t.Run("missing file", func(t *testing.T) {
		expectEmpty(t, filepath.Join(dir, "nope.bin"), opts)
	})
	t.Run("corrupted trailer", func(t *testing.T) {
		b := append([]byte(nil), data...)
		b[len(b)-1] ^= 0x01
		expectEmpty(t, writeVariant(t, b), opts)
	})
	t.Run("corrupted body", func(t *testing.T) {
		b := append([]byte(nil), data...)
		b[len(b)/2] ^= 0x40
		expectEmpty(t, writeVariant(t, b), opts)
	})
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 3, len(data) / 2, len(data) - 1} {
			expectEmpty(t, writeVariant(t, data[:n]), opts)
		}
	})
	t.Run("stale analyzer version", func(t *testing.T) {
		// Patch the embedded analyzer-version bytes in place and re-seal
		// the checksum: only the version check can catch this one.
		av := []byte(fpcache.AnalyzerVersion)
		i := bytes.Index(data, av)
		if i < 0 {
			t.Fatal("analyzer version not found in file")
		}
		b := append([]byte(nil), data...)
		b[i] ^= 0x20
		expectEmpty(t, writeVariant(t, resealFlowCache(b)), opts)
	})
	t.Run("knob mismatch", func(t *testing.T) {
		skew := opts
		skew.MaxComponent = 123
		expectEmpty(t, good, skew)
		skew = opts
		skew.Lambda = 0.5
		expectEmpty(t, good, skew)
	})
	t.Run("good file still loads", func(t *testing.T) {
		if _, ok := constraints.LoadFlowCache(good, opts); !ok {
			t.Fatal("pristine file rejected")
		}
	})
}

// resealFlowCache recomputes the sha256 trailer after an in-place body
// patch, so a test can present an internally-consistent file that is
// wrong about the world (stale analyzer version) rather than corrupt.
func resealFlowCache(b []byte) []byte {
	body := b[:len(b)-sha256.Size]
	sum := sha256.Sum256(body)
	return append(body, sum[:]...)
}
