package constraints

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"seldon/internal/fpcache"
	"seldon/internal/lp"
)

// FlowCache persistence: the per-file flow-constraint blocks survive the
// process, so a fresh coordinator (or a new -session-dir run over the
// same corpus) reuses pass-4 work instead of re-deriving it. The file
// follows the incr state.bin pattern — magic, format version, the
// versions and knobs the contents depend on, deterministic body, sha256
// trailer — and, like fpcache, loading is infallible: a missing,
// truncated, corrupted, stale-version, or knob-skewed file loads as an
// empty cache (every span then misses and rebuilds, and the next Save
// repairs the file). A wrong reuse is impossible even without the
// header checks, because each block is only consulted when its support
// fingerprint matches (spanFingerprint covers the graph content, the
// component bound, and every global variable ID the block's constraints
// embed) — the header checks just turn a guaranteed fingerprint miss
// into a cheap whole-file miss.

const (
	flowCacheMagic   = "SFLC"
	flowCacheVersion = 1
)

// wu64/wf64/wstr append little-endian primitives, the state.bin idiom.
func fcU64(b []byte, v uint64) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return append(b, buf[:]...)
}

func fcF64(b []byte, v float64) []byte {
	return fcU64(b, math.Float64bits(v))
}

func fcStr(b []byte, s string) []byte {
	b = fcU64(b, uint64(len(s)))
	return append(b, s...)
}

// Save writes the cache to path atomically (temp file + rename). The
// body is deterministic: blocks are emitted in sorted file order.
func (c *FlowCache) Save(path string, opts Options) error {
	opts = opts.withDefaults()
	files := make([]string, 0, c.Len())
	for f := range c.blocks {
		files = append(files, f)
	}
	sort.Strings(files)

	b := make([]byte, 0, 4096)
	b = append(b, flowCacheMagic...)
	b = fcU64(b, flowCacheVersion)
	b = fcStr(b, fpcache.AnalyzerVersion)
	b = fcF64(b, opts.C)
	b = fcF64(b, opts.Lambda)
	b = fcU64(b, uint64(opts.BackoffCutoff))
	b = fcU64(b, uint64(opts.MaxComponent))
	b = fcU64(b, uint64(len(files)))
	for _, f := range files {
		blk := c.blocks[f]
		b = fcStr(b, f)
		b = append(b, blk.fp[:]...)
		b = fcU64(b, uint64(blk.countA))
		b = fcU64(b, uint64(blk.countB))
		b = fcU64(b, uint64(blk.countC))
		b = fcU64(b, uint64(blk.skipped))
		b = fcU64(b, uint64(len(blk.cons)))
		for i := range blk.cons {
			con := &blk.cons[i]
			b = fcU64(b, uint64(len(con.LHS)))
			for _, t := range con.LHS {
				b = fcU64(b, uint64(t.Var))
				b = fcF64(b, t.Coef)
			}
			b = fcU64(b, uint64(len(con.RHS)))
			for _, t := range con.RHS {
				b = fcU64(b, uint64(t.Var))
				b = fcF64(b, t.Coef)
			}
		}
	}
	sum := sha256.Sum256(b)
	b = append(b, sum[:]...)

	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return fmt.Errorf("flowcache: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("flowcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("flowcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("flowcache: %w", err)
	}
	return nil
}

// fcReader walks a flow-cache body; any overrun latches bad.
type fcReader struct {
	data []byte
	bad  bool
}

func (r *fcReader) u64() uint64 {
	if r.bad || len(r.data) < 8 {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data)
	r.data = r.data[8:]
	return v
}

func (r *fcReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *fcReader) str() string {
	n := r.u64()
	if r.bad || uint64(len(r.data)) < n {
		r.bad = true
		return ""
	}
	s := string(r.data[:n])
	r.data = r.data[n:]
	return s
}

func (r *fcReader) bytes32() (out [32]byte) {
	if r.bad || len(r.data) < 32 {
		r.bad = true
		return out
	}
	copy(out[:], r.data)
	r.data = r.data[32:]
	return out
}

// LoadFlowCache reads a persisted cache. It never errors: any problem —
// absent file, bad magic or checksum, a format or analyzer version from
// another build, knobs that differ from opts — yields a fresh empty
// cache and ok=false. opts must be the Options the coming builds will
// use; a knob change invalidates the whole file (the conservative
// reading of "the constraints may depend on it").
func LoadFlowCache(path string, opts Options) (*FlowCache, bool) {
	opts = opts.withDefaults()
	data, err := os.ReadFile(path)
	if err != nil {
		return NewFlowCache(), false
	}
	if len(data) < len(flowCacheMagic)+sha256.Size ||
		string(data[:len(flowCacheMagic)]) != flowCacheMagic {
		return NewFlowCache(), false
	}
	body, sum := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if want := sha256.Sum256(body); string(want[:]) != string(sum) {
		return NewFlowCache(), false
	}
	r := &fcReader{data: body[len(flowCacheMagic):]}
	if r.u64() != flowCacheVersion || r.str() != fpcache.AnalyzerVersion {
		return NewFlowCache(), false
	}
	if r.f64() != opts.C || r.f64() != opts.Lambda ||
		r.u64() != uint64(opts.BackoffCutoff) || r.u64() != uint64(opts.MaxComponent) {
		return NewFlowCache(), false
	}
	n := r.u64()
	if r.bad || n > uint64(len(r.data)) {
		return NewFlowCache(), false
	}
	c := NewFlowCache()
	for i := uint64(0); i < n; i++ {
		f := r.str()
		blk := &flowBlock{fp: r.bytes32()}
		blk.countA = int(r.u64())
		blk.countB = int(r.u64())
		blk.countC = int(r.u64())
		blk.skipped = int(r.u64())
		nc := r.u64()
		if r.bad || nc > uint64(len(r.data)) {
			return NewFlowCache(), false
		}
		blk.cons = make([]lp.Constraint, 0, nc)
		for j := uint64(0); j < nc; j++ {
			var con lp.Constraint
			nl := r.u64()
			if r.bad || nl > uint64(len(r.data)) {
				return NewFlowCache(), false
			}
			con.LHS = make([]lp.Term, 0, nl)
			for k := uint64(0); k < nl; k++ {
				con.LHS = append(con.LHS, lp.Term{Var: int(r.u64()), Coef: r.f64()})
			}
			nr := r.u64()
			if r.bad || nr > uint64(len(r.data)) {
				return NewFlowCache(), false
			}
			con.RHS = make([]lp.Term, 0, nr)
			for k := uint64(0); k < nr; k++ {
				con.RHS = append(con.RHS, lp.Term{Var: int(r.u64()), Coef: r.f64()})
			}
			blk.cons = append(blk.cons, con)
		}
		if r.bad {
			return NewFlowCache(), false
		}
		c.blocks[f] = blk
	}
	if r.bad || len(r.data) != 0 {
		return NewFlowCache(), false
	}
	return c, true
}
