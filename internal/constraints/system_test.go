package constraints

import (
	"testing"

	"seldon/internal/dataflow"
	"seldon/internal/lp"
	"seldon/internal/propgraph"
	"seldon/internal/pytoken"
	"seldon/internal/spec"
)

func chainGraph(reps ...string) *propgraph.Graph {
	g := propgraph.New()
	prev := -1
	for _, r := range reps {
		e := g.AddEvent(propgraph.KindCall, "t.py", pytoken.Pos{Line: 1}, []string{r})
		if prev >= 0 {
			g.AddEdge(prev, e.ID)
		}
		prev = e.ID
	}
	return g
}

func TestChainConstraintCounts(t *testing.T) {
	// For a 3-call chain a->b->c where every event is a candidate for
	// every role, the Fig. 4 patterns yield exactly 3 constraints each.
	g := chainGraph("a()", "b()", "c()")
	sys := Build(g, spec.New(), Options{BackoffCutoff: 1})
	if sys.CountA != 3 || sys.CountB != 3 || sys.CountC != 3 {
		t.Errorf("counts = %d/%d/%d, want 3/3/3", sys.CountA, sys.CountB, sys.CountC)
	}
	if len(sys.Problem.Constraints) != 9 {
		t.Errorf("constraints = %d, want 9", len(sys.Problem.Constraints))
	}
	// 3 events x 3 roles = 9 variables.
	if len(sys.Vars) != 9 {
		t.Errorf("vars = %d, want 9", len(sys.Vars))
	}
}

func TestSeedPinsKnownVariables(t *testing.T) {
	g := chainGraph("src()", "mid()", "sink()")
	seed := spec.New()
	seed.Add(propgraph.Source, "src()")
	seed.Add(propgraph.Sink, "sink()")
	sys := Build(g, seed, Options{BackoffCutoff: 1})

	if v := sys.VarID("src()", propgraph.Source); sys.Problem.Known[v] != 1 {
		t.Error("seed source not pinned to 1")
	}
	if v := sys.VarID("src()", propgraph.Sanitizer); sys.Problem.Known[v] != 0 {
		t.Error("seed source's sanitizer score not pinned to 0")
	}
	if v := sys.VarID("src()", propgraph.Sink); sys.Problem.Known[v] != 0 {
		t.Error("seed source's sink score not pinned to 0")
	}
	if v := sys.VarID("mid()", propgraph.Sanitizer); sys.Problem.Known[v] != 0 {
		if _, pinned := sys.Problem.Known[v]; pinned {
			t.Error("unlabeled variable must not be pinned")
		}
	}
}

func TestInferSanitizerBetweenSeededSourceAndSink(t *testing.T) {
	// The core inference behaviour: a known source flowing into a known
	// sink through an unlabeled call forces that call's sanitizer score
	// up (Fig. 4c).
	g := chainGraph("src()", "mid()", "sink()")
	seed := spec.New()
	seed.Add(propgraph.Source, "src()")
	seed.Add(propgraph.Sink, "sink()")
	sys := Build(g, seed, Options{BackoffCutoff: 1})
	res := lp.Minimize(sys.Problem, lp.Options{Iterations: 2000})
	// The score settles at the equilibrium of Fig. 4c (pushing up) and
	// Fig. 4a (capping at src + C), i.e. exactly C = 0.75 — the same
	// score plateau visible throughout the paper's Table 8.
	san := res.X[sys.VarID("mid()", propgraph.Sanitizer)]
	if san < 0.7 {
		t.Errorf("inferred sanitizer score = %v, want ~0.75", san)
	}
}

func TestInferSinkAfterSeededSourceAndSanitizer(t *testing.T) {
	// Fig. 4b: source -> sanitizer -> unlabeled call pushes the sink
	// score of the last call up.
	g := chainGraph("src()", "san()", "mystery()")
	seed := spec.New()
	seed.Add(propgraph.Source, "src()")
	seed.Add(propgraph.Sanitizer, "san()")
	sys := Build(g, seed, Options{BackoffCutoff: 1})
	res := lp.Minimize(sys.Problem, lp.Options{Iterations: 2000})
	snk := res.X[sys.VarID("mystery()", propgraph.Sink)]
	if snk < 0.5 {
		t.Errorf("inferred sink score = %v, want >= 0.5", snk)
	}
}

func TestInferSourceBeforeSanitizerAndSink(t *testing.T) {
	// Fig. 4a: unlabeled -> sanitizer -> sink pushes the first call's
	// source score up.
	g := chainGraph("mystery()", "san()", "sink()")
	seed := spec.New()
	seed.Add(propgraph.Sanitizer, "san()")
	seed.Add(propgraph.Sink, "sink()")
	sys := Build(g, seed, Options{BackoffCutoff: 1})
	res := lp.Minimize(sys.Problem, lp.Options{Iterations: 2000})
	src := res.X[sys.VarID("mystery()", propgraph.Source)]
	if src < 0.5 {
		t.Errorf("inferred source score = %v, want >= 0.5", src)
	}
}

func TestReadEventsOnlySourceCandidates(t *testing.T) {
	g := propgraph.New()
	read := g.AddEvent(propgraph.KindRead, "t.py", pytoken.Pos{}, []string{"x.y"})
	call := g.AddEvent(propgraph.KindCall, "t.py", pytoken.Pos{}, []string{"f()"})
	g.AddEdge(read.ID, call.ID)
	sys := Build(g, spec.New(), Options{BackoffCutoff: 1})
	if sys.VarID("x.y", propgraph.Source) < 0 {
		t.Error("read event must have a source variable")
	}
	if sys.VarID("x.y", propgraph.Sanitizer) >= 0 || sys.VarID("x.y", propgraph.Sink) >= 0 {
		t.Error("read event must not have sanitizer/sink variables")
	}
}

func TestBackoffAveraging(t *testing.T) {
	g := propgraph.New()
	e1 := g.AddEvent(propgraph.KindCall, "t.py", pytoken.Pos{}, []string{"a.b.f()", "b.f()"})
	snk := g.AddEvent(propgraph.KindCall, "t.py", pytoken.Pos{}, []string{"sink()"})
	san := g.AddEvent(propgraph.KindCall, "t.py", pytoken.Pos{}, []string{"san()"})
	g.AddEdge(e1.ID, san.ID)
	g.AddEdge(san.ID, snk.ID)
	sys := Build(g, spec.New(), Options{BackoffCutoff: 1})
	// Find a constraint mentioning e1's source variables; the two backoff
	// options must each carry coefficient 1/2.
	vFull := sys.VarID("a.b.f()", propgraph.Source)
	vShort := sys.VarID("b.f()", propgraph.Source)
	found := false
	for _, c := range sys.Problem.Constraints {
		for _, side := range [][]lp.Term{c.LHS, c.RHS} {
			okFull, okShort := false, false
			for _, term := range side {
				if term.Var == vFull && term.Coef == 0.5 {
					okFull = true
				}
				if term.Var == vShort && term.Coef == 0.5 {
					okShort = true
				}
			}
			if okFull && okShort {
				found = true
			}
		}
	}
	if !found {
		t.Error("no constraint with 1/2-averaged backoff terms")
	}
}

func TestFrequencyCutoff(t *testing.T) {
	g := propgraph.New()
	// "rare()" occurs once, "common()" five times.
	for i := 0; i < 5; i++ {
		g.AddEvent(propgraph.KindCall, "t.py", pytoken.Pos{}, []string{"common()"})
	}
	g.AddEvent(propgraph.KindCall, "t.py", pytoken.Pos{}, []string{"rare()"})
	sys := Build(g, spec.New(), Options{BackoffCutoff: 5})
	if sys.VarID("common()", propgraph.Source) < 0 {
		t.Error("common rep lost")
	}
	if sys.VarID("rare()", propgraph.Source) >= 0 {
		t.Error("rare rep must be cut off")
	}
	// A rare rep that appears in the seed survives.
	seed := spec.New()
	seed.Add(propgraph.Sink, "rare()")
	sys2 := Build(g, seed, Options{BackoffCutoff: 5})
	if sys2.VarID("rare()", propgraph.Sink) < 0 {
		t.Error("seeded rare rep must survive the cutoff")
	}
}

func TestBlacklistRemovesReps(t *testing.T) {
	g := chainGraph("result.append()", "san()", "sink()")
	seed := spec.New()
	seed.AddBlacklist("*.append()")
	sys := Build(g, seed, Options{BackoffCutoff: 1})
	if sys.VarID("result.append()", propgraph.Source) >= 0 {
		t.Error("blacklisted rep must have no variables")
	}
	if sys.InfoFor(0) != nil {
		t.Error("event with only blacklisted reps must not be a candidate")
	}
}

func TestEventsInDifferentComponentsShareVariables(t *testing.T) {
	// Two programs using the same API must map to the same variable —
	// the cross-project learning mechanism (§4.1).
	g1 := chainGraph("src()", "api()", "sink()")
	g2 := chainGraph("src()", "api()", "other()")
	g := propgraph.Union(g1, g2)
	sys := Build(g, spec.New(), Options{BackoffCutoff: 1})
	// api() appears twice but yields one variable per role.
	count := 0
	for _, v := range sys.Vars {
		if v.Rep == "api()" {
			count++
		}
	}
	if count != 3 {
		t.Errorf("api() variables = %d, want 3", count)
	}
}

func TestFigure2EndToEnd(t *testing.T) {
	src := `from yak.web import app
from flask import request
from werkzeug import secure_filename
import os

blog_dir = app.config['PATH']

@app.route('/media/', methods=['POST'])
def media():
    filename = request.files['f'].filename
    filename = secure_filename(filename)
    path = os.path.join(blog_dir, filename)
    if not os.path.exists(path):
        request.files['f'].save(path)
`
	g, err := dataflow.AnalyzeSource("app.py", src)
	if err != nil {
		t.Fatal(err)
	}
	// Seed both the fully qualified and the suffix representations, as the
	// paper's App. B seed does (it lists request.form.get() alongside
	// flask.request.form.get()): with backoff averaging, a seed that pins
	// only one of k options contributes only 1/k to the constraint sums.
	seed := spec.New()
	seed.Add(propgraph.Source, "flask.request.files['f'].filename")
	seed.Add(propgraph.Source, "request.files['f'].filename")
	seed.Add(propgraph.Source, "files['f'].filename")
	seed.Add(propgraph.Sink, "flask.request.files['f'].save()")
	seed.Add(propgraph.Sink, "request.files['f'].save()")
	seed.Add(propgraph.Sink, "files['f'].save()")
	sys := Build(g, seed, Options{BackoffCutoff: 1})
	if len(sys.Problem.Constraints) == 0 {
		t.Fatal("no constraints generated")
	}
	res := lp.Minimize(sys.Problem, lp.Options{Iterations: 2000})
	// secure_filename lies between the seeded source and sink: its
	// sanitizer score must rise (this is exactly Fig. 2c constraint 3).
	id := sys.VarID("werkzeug.secure_filename()", propgraph.Sanitizer)
	if id < 0 {
		t.Fatal("no sanitizer variable for secure_filename")
	}
	if res.X[id] < 0.3 {
		t.Errorf("secure_filename sanitizer score = %v, want >= 0.3", res.X[id])
	}
}

func TestWeakComponents(t *testing.T) {
	g := propgraph.New()
	for i := 0; i < 5; i++ {
		g.AddEvent(propgraph.KindCall, "t.py", pytoken.Pos{}, []string{"e()"})
	}
	g.AddEdge(0, 1)
	g.AddEdge(2, 1) // weakly connects 2 to {0,1}
	g.AddEdge(3, 4)
	comp, ncomp := weakComponents(g)
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Errorf("0,1,2 should share a component: %v", comp)
	}
	if comp[3] != comp[4] || comp[3] == comp[0] {
		t.Errorf("3,4 should form their own component: %v", comp)
	}
	if ncomp != 2 {
		t.Errorf("ncomp = %d, want 2", ncomp)
	}
}

func TestMaxComponentSkip(t *testing.T) {
	g := chainGraph("a()", "b()", "c()", "d()")
	sys := Build(g, spec.New(), Options{BackoffCutoff: 1, MaxComponent: 2})
	if sys.SkippedComponents != 1 {
		t.Errorf("skipped = %d, want 1", sys.SkippedComponents)
	}
	if len(sys.Problem.Constraints) != 0 {
		t.Errorf("constraints = %d, want 0", len(sys.Problem.Constraints))
	}
}

func TestCyclicGraphSupported(t *testing.T) {
	// A cycle src -> mid -> back -> mid ... -> sink: reachability must be
	// computed by the fixpoint fallback, and the Fig. 4c constraint must
	// still let the solver infer the sanitizer between seeded endpoints.
	g := propgraph.New()
	src := g.AddEvent(propgraph.KindCall, "t.py", pytoken.Pos{}, []string{"src()"})
	mid := g.AddEvent(propgraph.KindCall, "t.py", pytoken.Pos{}, []string{"mid()"})
	back := g.AddEvent(propgraph.KindCall, "t.py", pytoken.Pos{}, []string{"back()"})
	snk := g.AddEvent(propgraph.KindCall, "t.py", pytoken.Pos{}, []string{"sink()"})
	g.AddEdge(src.ID, mid.ID)
	g.AddEdge(mid.ID, back.ID)
	g.AddEdge(back.ID, mid.ID) // cycle
	g.AddEdge(mid.ID, snk.ID)

	seed := spec.New()
	seed.Add(propgraph.Source, "src()")
	seed.Add(propgraph.Sink, "sink()")
	sys := Build(g, seed, Options{BackoffCutoff: 1})
	if len(sys.Problem.Constraints) == 0 {
		t.Fatal("no constraints on cyclic graph")
	}
	res := lp.Minimize(sys.Problem, lp.Options{Iterations: 2000})
	best := res.X[sys.VarID("mid()", propgraph.Sanitizer)]
	if b := res.X[sys.VarID("back()", propgraph.Sanitizer)]; b > best {
		best = b
	}
	if best < 0.3 {
		t.Errorf("no sanitizer inferred on cycle: mid/back max = %v", best)
	}
}
