package constraints

import (
	"fmt"
	"reflect"
	"testing"

	"seldon/internal/lp"
	"seldon/internal/propgraph"
	"seldon/internal/pytoken"
	"seldon/internal/spec"
)

// referenceBuild is the original string-keyed constraint build, kept as a
// test oracle and benchmark baseline for the interned path: pass 1 counts
// representation frequencies in a map[string]int, pass 2 filters with
// per-occurrence spec lookups (glob blacklist matched per occurrence),
// pass 3 assigns variables through a map[Variable]int. The flow pass is
// shared — it operates on the assembled System either way. reps and symOf
// stand in for the strings the events used to carry by value; callers
// precompute them (outside the timer in benchmarks).
func referenceBuild(g *propgraph.Graph, reps [][]string, symOf map[string]propgraph.Sym,
	seed *spec.Spec, opts Options) *System {
	opts = opts.withDefaults()
	s := &System{
		Syms:        g.Syms,
		infoByEvent: make([]int, len(g.Events)),
		Opts:        opts,
	}

	// Pass 1: string-keyed rep frequencies, one count per occurrence.
	repCount := make(map[string]int)
	for _, rs := range reps {
		for _, r := range rs {
			repCount[r]++
		}
	}

	// Pass 2: candidate filtering with per-occurrence seed lookups.
	for i := range s.infoByEvent {
		s.infoByEvent[i] = -1
	}
	for id, e := range g.Events {
		var kept []string
		for _, r := range reps[id] {
			if seed.Blacklisted(r) {
				continue
			}
			if repCount[r] >= opts.BackoffCutoff || seed.RolesOf(r) != 0 {
				kept = append(kept, r)
			}
		}
		if len(kept) == 0 {
			continue
		}
		ids := make([]propgraph.Sym, len(kept))
		for i, r := range kept {
			ids[i] = symOf[r]
		}
		s.infoByEvent[id] = len(s.EventInfos)
		s.EventInfos = append(s.EventInfos, EventInfo{EventID: e.ID, RepIDs: ids, Roles: e.Roles})
	}

	// Pass 3: first-seen variable assignment through a string-keyed map.
	varIndex := make(map[Variable]int)
	for i := range s.EventInfos {
		info := &s.EventInfos[i]
		for _, role := range propgraph.Roles() {
			if !info.Roles.Has(role) {
				continue
			}
			for _, sym := range info.RepIDs {
				v := Variable{Rep: g.Syms.Str(sym), Role: role}
				if _, ok := varIndex[v]; !ok {
					varIndex[v] = len(s.Vars)
					s.Vars = append(s.Vars, v)
					s.varSyms = append(s.varSyms, sym)
				}
			}
		}
	}
	// Dense lookup table for the shared flow pass.
	s.varIDs = make([]int32, g.Syms.Len()*int(propgraph.NumRoles))
	for i := range s.varIDs {
		s.varIDs[i] = -1
	}
	for i, v := range s.Vars {
		s.varIDs[int(s.varSyms[i])*int(propgraph.NumRoles)+int(v.Role)] = int32(i)
	}

	known := make(map[int]float64)
	for i, v := range s.Vars {
		roles := seed.RolesOf(v.Rep)
		if roles == 0 {
			continue
		}
		if roles.Has(v.Role) {
			known[i] = 1
		} else {
			known[i] = 0
		}
	}
	s.Problem = &lp.Problem{NumVars: len(s.Vars), C: opts.C, Lambda: opts.Lambda, Known: known}
	s.buildFlowConstraints(g)
	return s
}

// prepReference materializes what the pre-interning events carried by
// value: per-event representation strings and the string → symbol map.
func prepReference(g *propgraph.Graph) ([][]string, map[string]propgraph.Sym) {
	reps := make([][]string, len(g.Events))
	for id, e := range g.Events {
		reps[id] = e.Reps()
	}
	symOf := make(map[string]propgraph.Sym)
	for i, str := range g.Syms.Strings() {
		symOf[str] = propgraph.Sym(i)
	}
	return reps, symOf
}

// corpusGraph unions nFiles synthetic per-file graphs with overlapping
// representations (shared APIs across files, per-file locals below the
// cutoff, blacklisted reps, multi-level backoff chains).
func corpusGraph(nFiles, eventsPerFile int) *propgraph.Graph {
	graphs := make([]*propgraph.Graph, nFiles)
	kinds := []propgraph.EventKind{propgraph.KindCall, propgraph.KindRead, propgraph.KindParam}
	for f := range graphs {
		g := propgraph.New()
		for i := 0; i < eventsPerFile; i++ {
			var reps []string
			switch i % 4 {
			case 0: // shared API with backoff, frequent across files
				reps = []string{fmt.Sprintf("pkg.mod%d.api%d()", i%7, i%11),
					fmt.Sprintf("mod%d.api%d()", i%7, i%11),
					fmt.Sprintf("api%d()", i%11)}
			case 1: // per-file local, below any cutoff > 1
				reps = []string{fmt.Sprintf("file%d.local%d()", f, i)}
			case 2: // blacklist bait
				reps = []string{fmt.Sprintf("obj%d.append()", i%5), "append()"}
			default: // frequent single rep
				reps = []string{fmt.Sprintf("shared.helper%d()", i%3)}
			}
			g.AddEvent(kinds[i%len(kinds)], fmt.Sprintf("f%d.py", f),
				pytoken.Pos{Line: i + 1}, reps)
		}
		// Short flow chains: real corpus graphs decompose into many small
		// weak components (MaxComponent bounds the rest), so the flow pass
		// stays proportionate and the rep-handling passes dominate.
		for i := 0; i+1 < eventsPerFile; i++ {
			if i%16 < 3 {
				g.AddEdge(i, i+1)
			}
		}
		graphs[f] = g
	}
	return propgraph.Union(graphs...)
}

func corpusSeed() *spec.Spec {
	seed := spec.New()
	seed.Add(propgraph.Source, "pkg.mod0.api0()")
	seed.Add(propgraph.Sanitizer, "shared.helper1()")
	seed.Add(propgraph.Sink, "pkg.mod3.api7()")
	seed.Add(propgraph.Sink, "file0.local5()") // seeded rep below the cutoff
	seed.AddBlacklist("*.append()")
	seed.AddBlacklist("append()")
	return seed
}

// assertSystemsEqual compares everything downstream consumers read from a
// System (the Opts field is allowed to differ, e.g. in Workers).
func assertSystemsEqual(t *testing.T, label string, got, want *System) {
	t.Helper()
	if !reflect.DeepEqual(got.Vars, want.Vars) {
		t.Fatalf("%s: Vars differ: %d vs %d entries", label, len(got.Vars), len(want.Vars))
	}
	if !reflect.DeepEqual(got.varSyms, want.varSyms) {
		t.Fatalf("%s: varSyms differ", label)
	}
	if !reflect.DeepEqual(got.varIDs, want.varIDs) {
		t.Fatalf("%s: varIDs differ", label)
	}
	if !reflect.DeepEqual(got.EventInfos, want.EventInfos) {
		t.Fatalf("%s: EventInfos differ: %d vs %d", label, len(got.EventInfos), len(want.EventInfos))
	}
	if !reflect.DeepEqual(got.infoByEvent, want.infoByEvent) {
		t.Fatalf("%s: infoByEvent differs", label)
	}
	if !reflect.DeepEqual(got.Problem, want.Problem) {
		t.Fatalf("%s: Problem differs (constraints %d vs %d)",
			label, len(got.Problem.Constraints), len(want.Problem.Constraints))
	}
	if got.CountA != want.CountA || got.CountB != want.CountB || got.CountC != want.CountC ||
		got.SkippedComponents != want.SkippedComponents {
		t.Fatalf("%s: counts differ: %d/%d/%d/%d vs %d/%d/%d/%d", label,
			got.CountA, got.CountB, got.CountC, got.SkippedComponents,
			want.CountA, want.CountB, want.CountC, want.SkippedComponents)
	}
}

// TestBuildMatchesStringReference pins the tentpole requirement: the
// interned, sharded Build must produce a constraint system identical to
// the original string-keyed implementation, at every worker count.
func TestBuildMatchesStringReference(t *testing.T) {
	g := corpusGraph(6, 40)
	seed := corpusSeed()
	reps, symOf := prepReference(g)
	for _, cutoff := range []int{1, 2, 5} {
		want := referenceBuild(g, reps, symOf, seed, Options{BackoffCutoff: cutoff})
		if cutoff == 1 && len(want.Problem.Constraints) == 0 {
			t.Fatal("fixture generates no flow constraints")
		}
		for _, workers := range []int{1, 4} {
			got := Build(g, seed, Options{BackoffCutoff: cutoff, Workers: workers})
			assertSystemsEqual(t, fmt.Sprintf("cutoff=%d workers=%d", cutoff, workers), got, want)
		}
	}
}

// TestBuildWorkersBitwiseIdentical compares sharded builds against the
// sequential one over a larger graph, including Workers: 0 (GOMAXPROCS).
func TestBuildWorkersBitwiseIdentical(t *testing.T) {
	g := corpusGraph(10, 60)
	seed := corpusSeed()
	want := Build(g, seed, Options{Workers: 1})
	for _, workers := range []int{2, 3, 4, 7, 0} {
		got := Build(g, seed, Options{Workers: workers})
		assertSystemsEqual(t, fmt.Sprintf("workers=%d", workers), got, want)
	}
}

// TestBuildCountsRepOccurrences pins the pass-1 frequency semantics: a
// representation appearing at several backoff levels of ONE event counts
// once per occurrence, not once per event (class base chains can repeat a
// name). With cutoff 2, a single event repeating "dup()" keeps it; a
// single "once()" occurrence is cut.
func TestBuildCountsRepOccurrences(t *testing.T) {
	g := propgraph.New()
	g.AddEvent(propgraph.KindCall, "t.py", pytoken.Pos{Line: 1},
		[]string{"dup()", "dup()"})
	g.AddEvent(propgraph.KindCall, "t.py", pytoken.Pos{Line: 2},
		[]string{"once()"})
	sys := Build(g, spec.New(), Options{BackoffCutoff: 2})
	if sys.VarID("dup()", propgraph.Source) < 0 {
		t.Error("rep repeated within one event must count per occurrence and survive")
	}
	if sys.VarID("once()", propgraph.Source) >= 0 {
		t.Error("single occurrence must be cut off")
	}
	// Both surviving occurrences stay in the backoff list (they average).
	if info := sys.InfoFor(0); info == nil || len(info.RepIDs) != 2 {
		t.Errorf("event 0 info = %+v, want 2 kept occurrences", sys.InfoFor(0))
	}
}

// TestBuildAllocBudget pins the dense-array allocation strategy on a
// ~1k-event corpus graph: the build must not allocate per occurrence.
func TestBuildAllocBudget(t *testing.T) {
	g := corpusGraph(8, 125)
	if len(g.Events) != 1000 {
		t.Fatalf("fixture has %d events", len(g.Events))
	}
	seed := corpusSeed()
	opts := Options{Workers: 1}
	allocs := testing.AllocsPerRun(10, func() { Build(g, seed, opts) })
	// Passes 1-3 contribute only fixed arrays plus the SymIndex, and the
	// flow pass reuses scratch across components, so the total must stay
	// far below the per-occurrence/per-event counts of the string path
	// (referenceBuild measures ~2100 allocs/run on this fixture; the
	// interned build ~600).
	if budget := 1000.0; allocs > budget {
		t.Errorf("Build allocs/run = %.0f, budget %.0f", allocs, budget)
	}
}

func BenchmarkConstraintsBuild(b *testing.B) {
	g := corpusGraph(8, 125)
	seed := corpusSeed()
	opts := Options{Workers: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(g, seed, opts)
	}
}

func BenchmarkConstraintsBuildReference(b *testing.B) {
	g := corpusGraph(8, 125)
	seed := corpusSeed()
	// The string path stored representations by value on the events;
	// materialize them outside the timer so the baseline is not charged
	// for the conversion.
	reps, symOf := prepReference(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		referenceBuild(g, reps, symOf, seed, Options{})
	}
}
