// Package constraints turns a global propagation graph and a seed
// specification into the relaxed linear constraint system of paper §4:
// one variable per (representation, role), information-flow constraints
// following the three patterns of Fig. 4, backoff averaging (§4.3), and
// equality constraints for the hand-labeled seed (§4.1).
//
// The build works on interned symbols throughout: representation
// frequencies and the (representation, role) → variable mapping live in
// dense arrays indexed by propgraph.Sym instead of string-keyed maps,
// and the frequency and candidate-filter passes shard across a worker
// pool. Results are bitwise identical at every worker count — shards are
// contiguous event ranges merged in order, and the frequency merge is an
// integer sum.
package constraints

import (
	"runtime"
	"sync"
	"time"

	"seldon/internal/lp"
	"seldon/internal/obs"
	"seldon/internal/propgraph"
	"seldon/internal/spec"
)

// Options configures constraint generation.
type Options struct {
	// C is the implication-strength constant (paper: 0.75).
	C float64
	// Lambda is the L1 regularization weight (paper: 0.1).
	Lambda float64
	// BackoffCutoff drops representations occurring fewer times in the
	// dataset (paper: 5). Seed representations always survive.
	BackoffCutoff int
	// MaxComponent skips constraint generation inside weakly connected
	// components larger than this bound (guards against pathological
	// generated files). Default 50000.
	MaxComponent int
	// Workers bounds the goroutines used for the frequency and
	// candidate-filter passes (the core.Config.Workers convention:
	// 0 selects GOMAXPROCS, 1 keeps the sequential path). Results are
	// bitwise identical at every count.
	Workers int
	// Metrics, when non-nil, receives constraint-system size gauges
	// (variables, events, per-pattern constraint counts) and the
	// stage.constraints.* sub-timers.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.C == 0 {
		o.C = 0.75
	}
	if o.Lambda == 0 {
		o.Lambda = 0.1
	}
	if o.BackoffCutoff == 0 {
		o.BackoffCutoff = 5
	}
	if o.MaxComponent == 0 {
		o.MaxComponent = 50000
	}
	return o
}

// workerCount resolves Options.Workers against n work items.
func (o Options) workerCount(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// shardRange is one contiguous chunk of work, [Lo, Hi).
type shardRange struct{ lo, hi int }

// shardRanges splits n items into at most w contiguous chunks.
func shardRanges(n, w int) []shardRange {
	if w < 1 {
		w = 1
	}
	per := (n + w - 1) / w
	var out []shardRange
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		out = append(out, shardRange{lo, hi})
	}
	return out
}

// runShards executes f once per shard, concurrently when there is more
// than one shard. Shard contents are fixed by index arithmetic, never by
// scheduling, so per-shard results are deterministic.
func runShards(shards []shardRange, f func(shard int, lo, hi int)) {
	if len(shards) == 1 {
		f(0, shards[0].lo, shards[0].hi)
		return
	}
	var wg sync.WaitGroup
	for i, sr := range shards {
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			f(i, lo, hi)
		}(i, sr.lo, sr.hi)
	}
	wg.Wait()
}

// Variable identifies one score in the system.
type Variable struct {
	Rep  string
	Role propgraph.Role
}

// EventInfo records, per candidate event, the representations that
// survived the frequency cutoff and blacklist (most specific first), as
// symbols in the graph's table.
type EventInfo struct {
	EventID int
	RepIDs  []propgraph.Sym
	Roles   propgraph.RoleSet
}

// System is the constraint system plus the metadata needed to map solver
// scores back to events and representations.
type System struct {
	Problem *lp.Problem
	Vars    []Variable
	// Syms is the graph's symbol table; EventInfo.RepIDs and the
	// variable index are expressed against it.
	Syms *propgraph.Interner
	// varIDs maps sym*NumRoles+role to a variable index, -1 when absent.
	varIDs []int32
	// varSyms records the symbol of each variable, aligned with Vars.
	varSyms []propgraph.Sym
	// EventInfos lists candidate events in event-ID order.
	EventInfos []EventInfo
	// infoByEvent maps event ID to its position in EventInfos (or -1).
	infoByEvent []int
	// Counts of generated constraints by pattern (Fig. 4a, 4b, 4c).
	CountA, CountB, CountC int
	// SkippedComponents counts components over the MaxComponent bound.
	SkippedComponents int
	Opts              Options
}

// VarIDSym returns the variable index for (sym, role), or -1.
func (s *System) VarIDSym(sym propgraph.Sym, role propgraph.Role) int {
	slot := int(sym)*int(propgraph.NumRoles) + int(role)
	if slot < 0 || slot >= len(s.varIDs) {
		return -1
	}
	if id := s.varIDs[slot]; id >= 0 {
		return int(id)
	}
	return -1
}

// VarID returns the variable index for (rep, role), or -1.
func (s *System) VarID(rep string, role propgraph.Role) int {
	sym, ok := s.Syms.Lookup(rep)
	if !ok {
		return -1
	}
	return s.VarIDSym(sym, role)
}

// InfoFor returns the EventInfo for an event ID, or nil if the event is
// not a candidate.
func (s *System) InfoFor(eventID int) *EventInfo {
	if eventID < 0 || eventID >= len(s.infoByEvent) || s.infoByEvent[eventID] < 0 {
		return nil
	}
	return &s.EventInfos[s.infoByEvent[eventID]]
}

// Build constructs the constraint system for a global propagation graph.
func Build(g *propgraph.Graph, seed *spec.Spec, opts Options) *System {
	opts = opts.withDefaults()
	s, workers := buildCore(g, seed, opts)
	m := opts.Metrics

	// Pass 4: flow constraints per weakly connected component.
	t0 := time.Now()
	s.buildFlowConstraints(g)
	m.ObserveDuration(obs.StageConstraintsFlow, time.Since(t0))

	s.finishMetrics(workers)
	return s
}

// buildCore runs passes 1–3 (frequencies, candidate filter, variables +
// seed pins) and returns the system ready for flow-constraint
// generation, plus the resolved worker count. It is shared by Build and
// BuildIncremental so both produce bit-identical variable tables.
func buildCore(g *propgraph.Graph, seed *spec.Spec, opts Options) (*System, int) {
	s := &System{
		Syms:        g.Syms,
		infoByEvent: make([]int, len(g.Events)),
		Opts:        opts,
	}
	m := opts.Metrics
	strs := g.Syms.Strings()
	nsyms := len(strs)
	workers := opts.workerCount(len(g.Events))
	shards := shardRanges(len(g.Events), workers)

	// Pass 1: representation frequencies across the dataset, sharded over
	// contiguous event ranges and merged by integer sum (order-free, so
	// identical at every worker count).
	//
	// Frequency semantics, pinned by TestBuildCountsRepOccurrences: a
	// representation counts once per occurrence in an event's backoff
	// chain, NOT once per event. If the same representation appears at
	// several backoff levels of one event (class base chains can repeat a
	// name), every slot contributes to the count that BackoffCutoff is
	// compared against — exactly what the original string-keyed
	// implementation did.
	t0 := time.Now()
	repCount := make([]int32, nsyms)
	if len(shards) == 1 {
		for _, e := range g.Events {
			for _, sym := range e.RepIDs {
				repCount[sym]++
			}
		}
	} else {
		shardCounts := make([][]int32, len(shards))
		runShards(shards, func(shard, lo, hi int) {
			cnt := make([]int32, nsyms)
			for _, e := range g.Events[lo:hi] {
				for _, sym := range e.RepIDs {
					cnt[sym]++
				}
			}
			shardCounts[shard] = cnt
		})
		for _, cnt := range shardCounts {
			for i, c := range cnt {
				repCount[i] += c
			}
		}
	}
	m.ObserveDuration(obs.StageConstraintsFreq, time.Since(t0))

	// Pass 2: candidate events and their surviving representations. Seed
	// roles and the glob blacklist are evaluated once per distinct symbol
	// (spec.SymIndex), then each shard filters its contiguous event range
	// into a local arena; shard outputs concatenate in range order, which
	// is exactly the sequential order.
	t0 = time.Now()
	ix := seed.IndexStrings(strs)
	cutoff := int32(opts.BackoffCutoff)
	type filtered struct {
		infos  []EventInfo
		starts []int
		arena  []propgraph.Sym
	}
	shardOut := make([]filtered, len(shards))
	runShards(shards, func(shard, lo, hi int) {
		// Pre-size to upper bounds (every event kept, every occurrence
		// surviving) so the filter loop never reallocates.
		occ := 0
		for _, e := range g.Events[lo:hi] {
			occ += len(e.RepIDs)
		}
		out := filtered{
			infos:  make([]EventInfo, 0, hi-lo),
			starts: make([]int, 0, hi-lo),
			arena:  make([]propgraph.Sym, 0, occ),
		}
		for _, e := range g.Events[lo:hi] {
			start := len(out.arena)
			for _, sym := range e.RepIDs {
				if ix.Blacklisted(sym) {
					continue
				}
				if repCount[sym] >= cutoff || ix.Roles(sym) != 0 {
					out.arena = append(out.arena, sym)
				}
			}
			if len(out.arena) == start {
				continue
			}
			out.infos = append(out.infos, EventInfo{EventID: e.ID, Roles: e.Roles})
			out.starts = append(out.starts, start)
		}
		// The arena no longer grows; carve the per-event slices.
		for i := range out.infos {
			end := len(out.arena)
			if i+1 < len(out.infos) {
				end = out.starts[i+1]
			}
			out.infos[i].RepIDs = out.arena[out.starts[i]:end:end]
		}
		shardOut[shard] = out
	})
	if len(shardOut) == 1 {
		s.EventInfos = shardOut[0].infos
	} else {
		total := 0
		for i := range shardOut {
			total += len(shardOut[i].infos)
		}
		s.EventInfos = make([]EventInfo, 0, total)
		for i := range shardOut {
			s.EventInfos = append(s.EventInfos, shardOut[i].infos...)
		}
	}
	for i := range s.infoByEvent {
		s.infoByEvent[i] = -1
	}
	for i := range s.EventInfos {
		s.infoByEvent[s.EventInfos[i].EventID] = i
	}
	m.ObserveDuration(obs.StageConstraintsFilter, time.Since(t0))

	// Pass 3: variables, one per surviving (rep, role), assigned in
	// first-seen order over (event, role, backoff) — the same order the
	// string-keyed implementation produced.
	t0 = time.Now()
	s.varIDs = make([]int32, nsyms*int(propgraph.NumRoles))
	for i := range s.varIDs {
		s.varIDs[i] = -1
	}
	for i := range s.EventInfos {
		info := &s.EventInfos[i]
		for _, role := range propgraph.Roles() {
			if !info.Roles.Has(role) {
				continue
			}
			for _, sym := range info.RepIDs {
				slot := int(sym)*int(propgraph.NumRoles) + int(role)
				if s.varIDs[slot] < 0 {
					s.varIDs[slot] = int32(len(s.Vars))
					s.Vars = append(s.Vars, Variable{Rep: strs[sym], Role: role})
					s.varSyms = append(s.varSyms, sym)
				}
			}
		}
	}

	// Known variables from the seed: an entry pins its role to 1 and the
	// rep's other roles to 0 (§4.1). Seed entries are fully qualified
	// names, i.e. longest backoff options.
	known := make(map[int]float64)
	for i, v := range s.Vars {
		roles := ix.Roles(s.varSyms[i])
		if roles == 0 {
			continue
		}
		if roles.Has(v.Role) {
			known[i] = 1
		} else {
			known[i] = 0
		}
	}

	s.Problem = &lp.Problem{
		NumVars: len(s.Vars),
		C:       opts.C,
		Lambda:  opts.Lambda,
		Known:   known,
	}
	m.ObserveDuration(obs.StageConstraintsVars, time.Since(t0))
	return s, workers
}

// finishMetrics publishes the constraint-system size gauges once the
// flow pass has run.
func (s *System) finishMetrics(workers int) {
	m := s.Opts.Metrics
	m.Set("constraints.vars", float64(len(s.Vars)))
	m.Set("constraints.known_vars", float64(len(s.Problem.Known)))
	m.Set("constraints.events", float64(len(s.EventInfos)))
	m.Set("constraints.total", float64(len(s.Problem.Constraints)))
	m.Set("constraints.pattern_a", float64(s.CountA))
	m.Set("constraints.pattern_b", float64(s.CountB))
	m.Set("constraints.pattern_c", float64(s.CountC))
	m.Set("constraints.skipped_components", float64(s.SkippedComponents))
	m.Set("constraints.workers", float64(workers))
}

// terms builds the backoff-averaged linear terms for an event playing a
// role: the average of its surviving representations' variables (§4.3).
func (s *System) terms(info *EventInfo, role propgraph.Role) []lp.Term {
	if info == nil || !info.Roles.Has(role) {
		return nil
	}
	coef := 1.0 / float64(len(info.RepIDs))
	out := make([]lp.Term, 0, len(info.RepIDs))
	for _, sym := range info.RepIDs {
		if id := s.VarIDSym(sym, role); id >= 0 {
			out = append(out, lp.Term{Var: id, Coef: coef})
		}
	}
	return out
}

// candidate role tests over EventInfo.
func (s *System) isCand(id int, role propgraph.Role) bool {
	info := s.InfoFor(id)
	return info != nil && info.Roles.Has(role)
}

// buildFlowConstraints enumerates the Fig. 4 patterns using per-component
// forward reachability over the (acyclic) propagation graph.
func (s *System) buildFlowConstraints(g *propgraph.Graph) {
	n := len(g.Events)
	comp, ncomp := weakComponents(g)
	// Bucket events by component with a counting sort. Component IDs are
	// assigned in increasing discovery order and events are scanned in
	// increasing ID order, so both the component iteration order and the
	// event order inside each bucket match the previous sorted-map walk.
	counts := make([]int, ncomp)
	for _, c := range comp {
		counts[c]++
	}
	starts := make([]int, ncomp+1)
	for c, k := range counts {
		starts[c+1] = starts[c] + k
	}
	copy(counts, starts[:ncomp]) // reuse as per-component cursors
	byComp := make([]int, n)
	for id := 0; id < n; id++ {
		c := comp[id]
		byComp[counts[c]] = id
		counts[c]++
	}
	// Each event's index inside its component bucket. Edges never cross
	// weak components, so buildComponent can translate any neighbor through
	// this array instead of a per-component map.
	localOf := make([]int32, n)
	for k, id := range byComp {
		localOf[id] = int32(k - starts[comp[id]])
	}
	var sc flowScratch
	sc.localOf = localOf
	for c := 0; c < ncomp; c++ {
		events := byComp[starts[c]:starts[c+1]]
		if len(events) < 2 {
			continue
		}
		if len(events) > s.Opts.MaxComponent {
			s.SkippedComponents++
			continue
		}
		s.buildComponent(g, events, &sc)
	}
}

// flowScratch holds buffers reused across buildComponent calls so the
// per-component bookkeeping (degrees, topological order, reachability
// bitsets) does not allocate once the largest component has been seen.
type flowScratch struct {
	localOf []int32 // event ID -> index within its component bucket
	indeg   []int
	queue   []int
	order   []int
	fwd     []bitset
	words   []uint64 // backing arena for fwd
}

// prep resizes the scratch for a component of m events and returns the
// zeroed indeg slice and bitsets.
func (sc *flowScratch) prep(m int) ([]int, []bitset) {
	if cap(sc.indeg) < m {
		sc.indeg = make([]int, m)
		sc.queue = make([]int, 0, m)
		sc.order = make([]int, 0, m)
		sc.fwd = make([]bitset, m)
	}
	indeg := sc.indeg[:m]
	for i := range indeg {
		indeg[i] = 0
	}
	wpb := (m + 63) / 64
	if cap(sc.words) < m*wpb {
		sc.words = make([]uint64, m*wpb)
	}
	words := sc.words[:m*wpb]
	for i := range words {
		words[i] = 0
	}
	fwd := sc.fwd[:m]
	for i := range fwd {
		fwd[i] = bitset(words[i*wpb : (i+1)*wpb])
	}
	return indeg, fwd
}

// buildComponent generates constraints inside one component. Neighbor IDs
// translate through sc.localOf: successors and predecessors of a component
// member are, by definition of weak connectivity, members themselves.
func (s *System) buildComponent(g *propgraph.Graph, events []int, sc *flowScratch) {
	m := len(events)
	indeg, fwd := sc.prep(m)
	// Topological order. Analyzer-built graphs are DAGs; hand-built
	// graphs may contain cycles, in which case the sort is incomplete and
	// reachability falls back to a fixpoint iteration below.
	for _, id := range events {
		for _, dst := range g.Succs(id) {
			indeg[sc.localOf[dst]]++
		}
	}
	queue := sc.queue[:0]
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	order := sc.order[:0]
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, i)
		for _, dst := range g.Succs(events[i]) {
			j := sc.localOf[dst]
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, int(j))
			}
		}
	}

	// Forward reachability bitsets: one reverse-topological pass for DAGs,
	// fixpoint iteration when the component is cyclic (the paper notes the
	// method supports cycles in principle, §5.2).
	if len(order) == m {
		for k := len(order) - 1; k >= 0; k-- {
			i := order[k]
			for _, dst := range g.Succs(events[i]) {
				j := sc.localOf[dst]
				fwd[i].set(int(j))
				fwd[i].or(fwd[j])
			}
		}
	} else {
		for changed := true; changed; {
			changed = false
			for i := 0; i < m; i++ {
				for _, dst := range g.Succs(events[i]) {
					j := sc.localOf[dst]
					if fwd[i].setChanged(int(j)) {
						changed = true
					}
					if fwd[i].orChanged(fwd[j]) {
						changed = true
					}
				}
			}
		}
	}

	// Sources flowing into each sanitizer candidate.
	srcsOf := make(map[int][]int) // local sanitizer index -> local source indices
	for i := 0; i < m; i++ {
		if !s.isCand(events[i], propgraph.Source) {
			continue
		}
		fwd[i].forEach(func(j int) {
			if s.isCand(events[j], propgraph.Sanitizer) {
				srcsOf[j] = append(srcsOf[j], i)
			}
		})
	}

	addConstraint := func(lhs, rhs []lp.Term, kind *int) {
		if len(lhs) == 0 {
			return
		}
		s.Problem.Constraints = append(s.Problem.Constraints, lp.Constraint{LHS: lhs, RHS: rhs})
		*kind++
	}

	for i := 0; i < m; i++ {
		ei := events[i]
		switch {
		case s.isCand(ei, propgraph.Sanitizer):
			sanTerms := s.terms(s.InfoFor(ei), propgraph.Sanitizer)
			// Sinks reachable from this sanitizer.
			var sinks []int
			fwd[i].forEach(func(j int) {
				if s.isCand(events[j], propgraph.Sink) {
					sinks = append(sinks, j)
				}
			})
			srcs := srcsOf[i]

			// Fig. 4a: san(i) + snk(t) <= Σ src(u) + C, per sink t.
			var srcSum []lp.Term
			for _, u := range srcs {
				srcSum = append(srcSum, s.terms(s.InfoFor(events[u]), propgraph.Source)...)
			}
			for _, t := range sinks {
				lhs := append(append([]lp.Term(nil), sanTerms...),
					s.terms(s.InfoFor(events[t]), propgraph.Sink)...)
				addConstraint(lhs, srcSum, &s.CountA)
			}

			// Fig. 4b: src(u) + san(i) <= Σ snk(t) + C, per source u.
			var snkSum []lp.Term
			for _, t := range sinks {
				snkSum = append(snkSum, s.terms(s.InfoFor(events[t]), propgraph.Sink)...)
			}
			for _, u := range srcs {
				lhs := append(append([]lp.Term(nil),
					s.terms(s.InfoFor(events[u]), propgraph.Source)...), sanTerms...)
				addConstraint(lhs, snkSum, &s.CountB)
			}
		}

		// Fig. 4c: src(i) + snk(t) <= Σ san(s on some i→t path) + C.
		if s.isCand(ei, propgraph.Source) {
			srcTerms := s.terms(s.InfoFor(ei), propgraph.Source)
			var sanMid []int
			fwd[i].forEach(func(j int) {
				if s.isCand(events[j], propgraph.Sanitizer) {
					sanMid = append(sanMid, j)
				}
			})
			fwd[i].forEach(func(t int) {
				if !s.isCand(events[t], propgraph.Sink) {
					return
				}
				var sanSum []lp.Term
				for _, sMid := range sanMid {
					if fwd[sMid].has(t) {
						sanSum = append(sanSum,
							s.terms(s.InfoFor(events[sMid]), propgraph.Sanitizer)...)
					}
				}
				lhs := append(append([]lp.Term(nil), srcTerms...),
					s.terms(s.InfoFor(events[t]), propgraph.Sink)...)
				addConstraint(lhs, sanSum, &s.CountC)
			})
		}
	}
}

// weakComponents labels each event with a weakly-connected-component ID,
// returning the labels and the number of components.
func weakComponents(g *propgraph.Graph) ([]int, int) {
	n := len(g.Events)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	var stack []int
	for start := 0; start < n; start++ {
		if comp[start] >= 0 {
			continue
		}
		comp[start] = next
		stack = append(stack[:0], start)
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, nb := range g.Succs(id) {
				if comp[nb] < 0 {
					comp[nb] = next
					stack = append(stack, nb)
				}
			}
			for _, nb := range g.Preds(id) {
				if comp[nb] < 0 {
					comp[nb] = next
					stack = append(stack, nb)
				}
			}
		}
		next++
	}
	return comp, next
}
