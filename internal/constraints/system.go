// Package constraints turns a global propagation graph and a seed
// specification into the relaxed linear constraint system of paper §4:
// one variable per (representation, role), information-flow constraints
// following the three patterns of Fig. 4, backoff averaging (§4.3), and
// equality constraints for the hand-labeled seed (§4.1).
package constraints

import (
	"sort"

	"seldon/internal/lp"
	"seldon/internal/obs"
	"seldon/internal/propgraph"
	"seldon/internal/spec"
)

// Options configures constraint generation.
type Options struct {
	// C is the implication-strength constant (paper: 0.75).
	C float64
	// Lambda is the L1 regularization weight (paper: 0.1).
	Lambda float64
	// BackoffCutoff drops representations occurring fewer times in the
	// dataset (paper: 5). Seed representations always survive.
	BackoffCutoff int
	// MaxComponent skips constraint generation inside weakly connected
	// components larger than this bound (guards against pathological
	// generated files). Default 50000.
	MaxComponent int
	// Metrics, when non-nil, receives constraint-system size gauges
	// (variables, events, per-pattern constraint counts).
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.C == 0 {
		o.C = 0.75
	}
	if o.Lambda == 0 {
		o.Lambda = 0.1
	}
	if o.BackoffCutoff == 0 {
		o.BackoffCutoff = 5
	}
	if o.MaxComponent == 0 {
		o.MaxComponent = 50000
	}
	return o
}

// Variable identifies one score in the system.
type Variable struct {
	Rep  string
	Role propgraph.Role
}

// EventInfo records, per candidate event, the representations that
// survived the frequency cutoff and blacklist (most specific first).
type EventInfo struct {
	EventID int
	Reps    []string
	Roles   propgraph.RoleSet
}

// System is the constraint system plus the metadata needed to map solver
// scores back to events and representations.
type System struct {
	Problem *lp.Problem
	Vars    []Variable
	// varIndex maps (rep, role) to a variable index.
	varIndex map[Variable]int
	// EventInfos lists candidate events in event-ID order.
	EventInfos []EventInfo
	// infoByEvent maps event ID to its position in EventInfos (or -1).
	infoByEvent []int
	// Counts of generated constraints by pattern (Fig. 4a, 4b, 4c).
	CountA, CountB, CountC int
	// SkippedComponents counts components over the MaxComponent bound.
	SkippedComponents int
	Opts              Options
}

// VarID returns the variable index for (rep, role), or -1.
func (s *System) VarID(rep string, role propgraph.Role) int {
	id, ok := s.varIndex[Variable{Rep: rep, Role: role}]
	if !ok {
		return -1
	}
	return id
}

// InfoFor returns the EventInfo for an event ID, or nil if the event is
// not a candidate.
func (s *System) InfoFor(eventID int) *EventInfo {
	if eventID < 0 || eventID >= len(s.infoByEvent) || s.infoByEvent[eventID] < 0 {
		return nil
	}
	return &s.EventInfos[s.infoByEvent[eventID]]
}

// Build constructs the constraint system for a global propagation graph.
func Build(g *propgraph.Graph, seed *spec.Spec, opts Options) *System {
	opts = opts.withDefaults()
	s := &System{
		varIndex:    make(map[Variable]int),
		infoByEvent: make([]int, len(g.Events)),
		Opts:        opts,
	}

	// Pass 1: representation frequencies across the dataset.
	repCount := make(map[string]int)
	for _, e := range g.Events {
		for _, r := range e.Reps {
			repCount[r]++
		}
	}

	// Pass 2: candidate events and their surviving representations.
	for i := range s.infoByEvent {
		s.infoByEvent[i] = -1
	}
	for _, e := range g.Events {
		var reps []string
		for _, r := range e.Reps {
			if seed.Blacklisted(r) {
				continue
			}
			if repCount[r] >= opts.BackoffCutoff || seed.RolesOf(r) != 0 {
				reps = append(reps, r)
			}
		}
		if len(reps) == 0 {
			continue
		}
		s.infoByEvent[e.ID] = len(s.EventInfos)
		s.EventInfos = append(s.EventInfos, EventInfo{EventID: e.ID, Reps: reps, Roles: e.Roles})
	}

	// Pass 3: variables, one per surviving (rep, role).
	for i := range s.EventInfos {
		info := &s.EventInfos[i]
		for _, role := range propgraph.Roles() {
			if !info.Roles.Has(role) {
				continue
			}
			for _, rep := range info.Reps {
				key := Variable{Rep: rep, Role: role}
				if _, ok := s.varIndex[key]; !ok {
					s.varIndex[key] = len(s.Vars)
					s.Vars = append(s.Vars, key)
				}
			}
		}
	}

	// Known variables from the seed: an entry pins its role to 1 and the
	// rep's other roles to 0 (§4.1). Seed entries are fully qualified
	// names, i.e. longest backoff options.
	known := make(map[int]float64)
	for _, v := range s.Vars {
		roles := seed.RolesOf(v.Rep)
		if roles == 0 {
			continue
		}
		if roles.Has(v.Role) {
			known[s.varIndex[v]] = 1
		} else {
			known[s.varIndex[v]] = 0
		}
	}

	s.Problem = &lp.Problem{
		NumVars: len(s.Vars),
		C:       opts.C,
		Lambda:  opts.Lambda,
		Known:   known,
	}

	// Pass 4: flow constraints per weakly connected component.
	s.buildFlowConstraints(g)

	m := opts.Metrics
	m.Set("constraints.vars", float64(len(s.Vars)))
	m.Set("constraints.known_vars", float64(len(known)))
	m.Set("constraints.events", float64(len(s.EventInfos)))
	m.Set("constraints.total", float64(len(s.Problem.Constraints)))
	m.Set("constraints.pattern_a", float64(s.CountA))
	m.Set("constraints.pattern_b", float64(s.CountB))
	m.Set("constraints.pattern_c", float64(s.CountC))
	m.Set("constraints.skipped_components", float64(s.SkippedComponents))
	return s
}

// terms builds the backoff-averaged linear terms for an event playing a
// role: the average of its surviving representations' variables (§4.3).
func (s *System) terms(info *EventInfo, role propgraph.Role) []lp.Term {
	if info == nil || !info.Roles.Has(role) {
		return nil
	}
	coef := 1.0 / float64(len(info.Reps))
	out := make([]lp.Term, 0, len(info.Reps))
	for _, rep := range info.Reps {
		if id := s.VarID(rep, role); id >= 0 {
			out = append(out, lp.Term{Var: id, Coef: coef})
		}
	}
	return out
}

// candidate role tests over EventInfo.
func (s *System) isCand(id int, role propgraph.Role) bool {
	info := s.InfoFor(id)
	return info != nil && info.Roles.Has(role)
}

// buildFlowConstraints enumerates the Fig. 4 patterns using per-component
// forward reachability over the (acyclic) propagation graph.
func (s *System) buildFlowConstraints(g *propgraph.Graph) {
	n := len(g.Events)
	comp := weakComponents(g)
	// Group events by component.
	byComp := make(map[int][]int)
	for id := 0; id < n; id++ {
		byComp[comp[id]] = append(byComp[comp[id]], id)
	}
	compIDs := make([]int, 0, len(byComp))
	for c := range byComp {
		compIDs = append(compIDs, c)
	}
	sort.Ints(compIDs)
	for _, c := range compIDs {
		events := byComp[c]
		if len(events) < 2 {
			continue
		}
		if len(events) > s.Opts.MaxComponent {
			s.SkippedComponents++
			continue
		}
		s.buildComponent(g, events)
	}
}

// buildComponent generates constraints inside one component.
func (s *System) buildComponent(g *propgraph.Graph, events []int) {
	m := len(events)
	local := make(map[int]int, m)
	for i, id := range events {
		local[id] = i
	}
	// Topological order. Analyzer-built graphs are DAGs; hand-built
	// graphs may contain cycles, in which case the sort is incomplete and
	// reachability falls back to a fixpoint iteration below.
	indeg := make([]int, m)
	for _, id := range events {
		for _, dst := range g.Succs(id) {
			if j, ok := local[dst]; ok {
				indeg[j]++
			}
		}
	}
	queue := make([]int, 0, m)
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, m)
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, i)
		for _, dst := range g.Succs(events[i]) {
			if j, ok := local[dst]; ok {
				indeg[j]--
				if indeg[j] == 0 {
					queue = append(queue, j)
				}
			}
		}
	}

	// Forward reachability bitsets: one reverse-topological pass for DAGs,
	// fixpoint iteration when the component is cyclic (the paper notes the
	// method supports cycles in principle, §5.2).
	fwd := make([]bitset, m)
	for i := range fwd {
		fwd[i] = newBitset(m)
	}
	if len(order) == m {
		for k := len(order) - 1; k >= 0; k-- {
			i := order[k]
			for _, dst := range g.Succs(events[i]) {
				if j, ok := local[dst]; ok {
					fwd[i].set(j)
					fwd[i].or(fwd[j])
				}
			}
		}
	} else {
		for changed := true; changed; {
			changed = false
			for i := 0; i < m; i++ {
				for _, dst := range g.Succs(events[i]) {
					if j, ok := local[dst]; ok {
						if fwd[i].setChanged(j) {
							changed = true
						}
						if fwd[i].orChanged(fwd[j]) {
							changed = true
						}
					}
				}
			}
		}
	}

	// Sources flowing into each sanitizer candidate.
	srcsOf := make(map[int][]int) // local sanitizer index -> local source indices
	for i := 0; i < m; i++ {
		if !s.isCand(events[i], propgraph.Source) {
			continue
		}
		fwd[i].forEach(func(j int) {
			if s.isCand(events[j], propgraph.Sanitizer) {
				srcsOf[j] = append(srcsOf[j], i)
			}
		})
	}

	addConstraint := func(lhs, rhs []lp.Term, kind *int) {
		if len(lhs) == 0 {
			return
		}
		s.Problem.Constraints = append(s.Problem.Constraints, lp.Constraint{LHS: lhs, RHS: rhs})
		*kind++
	}

	for i := 0; i < m; i++ {
		ei := events[i]
		switch {
		case s.isCand(ei, propgraph.Sanitizer):
			sanTerms := s.terms(s.InfoFor(ei), propgraph.Sanitizer)
			// Sinks reachable from this sanitizer.
			var sinks []int
			fwd[i].forEach(func(j int) {
				if s.isCand(events[j], propgraph.Sink) {
					sinks = append(sinks, j)
				}
			})
			srcs := srcsOf[i]

			// Fig. 4a: san(i) + snk(t) <= Σ src(u) + C, per sink t.
			var srcSum []lp.Term
			for _, u := range srcs {
				srcSum = append(srcSum, s.terms(s.InfoFor(events[u]), propgraph.Source)...)
			}
			for _, t := range sinks {
				lhs := append(append([]lp.Term(nil), sanTerms...),
					s.terms(s.InfoFor(events[t]), propgraph.Sink)...)
				addConstraint(lhs, srcSum, &s.CountA)
			}

			// Fig. 4b: src(u) + san(i) <= Σ snk(t) + C, per source u.
			var snkSum []lp.Term
			for _, t := range sinks {
				snkSum = append(snkSum, s.terms(s.InfoFor(events[t]), propgraph.Sink)...)
			}
			for _, u := range srcs {
				lhs := append(append([]lp.Term(nil),
					s.terms(s.InfoFor(events[u]), propgraph.Source)...), sanTerms...)
				addConstraint(lhs, snkSum, &s.CountB)
			}
		}

		// Fig. 4c: src(i) + snk(t) <= Σ san(s on some i→t path) + C.
		if s.isCand(ei, propgraph.Source) {
			srcTerms := s.terms(s.InfoFor(ei), propgraph.Source)
			var sanMid []int
			fwd[i].forEach(func(j int) {
				if s.isCand(events[j], propgraph.Sanitizer) {
					sanMid = append(sanMid, j)
				}
			})
			fwd[i].forEach(func(t int) {
				if !s.isCand(events[t], propgraph.Sink) {
					return
				}
				var sanSum []lp.Term
				for _, sMid := range sanMid {
					if fwd[sMid].has(t) {
						sanSum = append(sanSum,
							s.terms(s.InfoFor(events[sMid]), propgraph.Sanitizer)...)
					}
				}
				lhs := append(append([]lp.Term(nil), srcTerms...),
					s.terms(s.InfoFor(events[t]), propgraph.Sink)...)
				addConstraint(lhs, sanSum, &s.CountC)
			})
		}
	}
}

// weakComponents labels each event with a weakly-connected-component ID.
func weakComponents(g *propgraph.Graph) []int {
	n := len(g.Events)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	var stack []int
	for start := 0; start < n; start++ {
		if comp[start] >= 0 {
			continue
		}
		comp[start] = next
		stack = append(stack[:0], start)
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, nb := range g.Succs(id) {
				if comp[nb] < 0 {
					comp[nb] = next
					stack = append(stack, nb)
				}
			}
			for _, nb := range g.Preds(id) {
				if comp[nb] < 0 {
					comp[nb] = next
					stack = append(stack, nb)
				}
			}
		}
		next++
	}
	return comp
}
