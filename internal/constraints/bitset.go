package constraints

import "math/bits"

// bitset is a fixed-size bit vector used for per-component reachability.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

func (b bitset) or(other bitset) {
	for i := range b {
		b[i] |= other[i]
	}
}

// orChanged is or() that reports whether any bit was newly set, used by
// the fixpoint fallback for cyclic graphs.
func (b bitset) orChanged(other bitset) bool {
	changed := false
	for i := range b {
		if next := b[i] | other[i]; next != b[i] {
			b[i] = next
			changed = true
		}
	}
	return changed
}

// setChanged sets bit i and reports whether it was previously clear.
func (b bitset) setChanged(i int) bool {
	word, mask := i/64, uint64(1)<<(i%64)
	if b[word]&mask != 0 {
		return false
	}
	b[word] |= mask
	return true
}

// forEach calls f with every set bit index, ascending.
func (b bitset) forEach(f func(i int)) {
	for w, word := range b {
		for word != 0 {
			bit := word & (-word)
			f(w*64 + bits.TrailingZeros64(bit))
			word ^= bit
		}
	}
}
