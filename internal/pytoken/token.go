// Package pytoken implements a lexical scanner for Python source code.
//
// The scanner follows the CPython tokenizer's observable behaviour for the
// language subset Seldon analyzes: it is indentation-aware (emitting INDENT
// and DEDENT tokens), joins lines implicitly inside bracket pairs and
// explicitly after a trailing backslash, and recognizes the full set of
// Python 3 operators, keywords, string prefixes, and numeric literal forms.
package pytoken

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Keyword kinds are a contiguous range so IsKeyword can test
// membership with two comparisons.
const (
	EOF Kind = iota
	ILLEGAL
	NEWLINE // logical end of statement
	INDENT
	DEDENT

	NAME
	NUMBER
	STRING // includes byte strings and f-strings; prefix preserved in Lit

	// Operators and delimiters.
	LPAREN        // (
	RPAREN        // )
	LBRACKET      // [
	RBRACKET      // ]
	LBRACE        // {
	RBRACE        // }
	COMMA         // ,
	COLON         // :
	SEMI          // ;
	DOT           // .
	ELLIPSIS      // ...
	ARROW         // ->
	AT            // @
	ASSIGN        // =
	WALRUS        // :=
	PLUS          // +
	MINUS         // -
	STAR          // *
	DOUBLESTAR    // **
	SLASH         // /
	DOUBLESLASH   // //
	PERCENT       // %
	AMPER         // &
	PIPE          // |
	CARET         // ^
	TILDE         // ~
	LSHIFT        // <<
	RSHIFT        // >>
	LT            // <
	GT            // >
	LE            // <=
	GE            // >=
	EQ            // ==
	NE            // !=
	PLUSEQ        // +=
	MINUSEQ       // -=
	STAREQ        // *=
	SLASHEQ       // /=
	DOUBLESLASHEQ // //=
	PERCENTEQ     // %=
	AMPEREQ       // &=
	PIPEEQ        // |=
	CARETEQ       // ^=
	LSHIFTEQ      // <<=
	RSHIFTEQ      // >>=
	DOUBLESTAREQ  // **=
	ATEQ          // @=

	keywordBeg
	KwFalse
	KwNone
	KwTrue
	KwAnd
	KwAs
	KwAssert
	KwAsync
	KwAwait
	KwBreak
	KwClass
	KwContinue
	KwDef
	KwDel
	KwElif
	KwElse
	KwExcept
	KwFinally
	KwFor
	KwFrom
	KwGlobal
	KwIf
	KwImport
	KwIn
	KwIs
	KwLambda
	KwNonlocal
	KwNot
	KwOr
	KwPass
	KwRaise
	KwReturn
	KwTry
	KwWhile
	KwWith
	KwYield
	keywordEnd
)

var kindNames = map[Kind]string{
	EOF: "EOF", ILLEGAL: "ILLEGAL", NEWLINE: "NEWLINE", INDENT: "INDENT",
	DEDENT: "DEDENT", NAME: "NAME", NUMBER: "NUMBER", STRING: "STRING",
	LPAREN: "(", RPAREN: ")", LBRACKET: "[", RBRACKET: "]", LBRACE: "{",
	RBRACE: "}", COMMA: ",", COLON: ":", SEMI: ";", DOT: ".",
	ELLIPSIS: "...", ARROW: "->", AT: "@", ASSIGN: "=", WALRUS: ":=",
	PLUS: "+", MINUS: "-", STAR: "*", DOUBLESTAR: "**", SLASH: "/",
	DOUBLESLASH: "//", PERCENT: "%", AMPER: "&", PIPE: "|", CARET: "^",
	TILDE: "~", LSHIFT: "<<", RSHIFT: ">>", LT: "<", GT: ">", LE: "<=",
	GE: ">=", EQ: "==", NE: "!=", PLUSEQ: "+=", MINUSEQ: "-=",
	STAREQ: "*=", SLASHEQ: "/=", DOUBLESLASHEQ: "//=", PERCENTEQ: "%=",
	AMPEREQ: "&=", PIPEEQ: "|=", CARETEQ: "^=", LSHIFTEQ: "<<=",
	RSHIFTEQ: ">>=", DOUBLESTAREQ: "**=", ATEQ: "@=",
	KwFalse: "False", KwNone: "None", KwTrue: "True", KwAnd: "and",
	KwAs: "as", KwAssert: "assert", KwAsync: "async", KwAwait: "await",
	KwBreak: "break", KwClass: "class", KwContinue: "continue",
	KwDef: "def", KwDel: "del", KwElif: "elif", KwElse: "else",
	KwExcept: "except", KwFinally: "finally", KwFor: "for", KwFrom: "from",
	KwGlobal: "global", KwIf: "if", KwImport: "import", KwIn: "in",
	KwIs: "is", KwLambda: "lambda", KwNonlocal: "nonlocal", KwNot: "not",
	KwOr: "or", KwPass: "pass", KwRaise: "raise", KwReturn: "return",
	KwTry: "try", KwWhile: "while", KwWith: "with", KwYield: "yield",
}

// String returns a human-readable name for the kind: the literal spelling
// for operators and keywords, an upper-case class name otherwise.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsKeyword reports whether k is a reserved word.
func (k Kind) IsKeyword() bool { return k > keywordBeg && k < keywordEnd }

// keywords maps reserved-word spellings to their kinds.
var keywords = func() map[string]Kind {
	m := make(map[string]Kind)
	for k := keywordBeg + 1; k < keywordEnd; k++ {
		m[kindNames[k]] = k
	}
	return m
}()

// Lookup returns the keyword kind for an identifier spelling, or NAME.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return NAME
}

// Pos is a source position (1-based line, 0-based column in bytes).
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col+1) }

// Token is a single lexical token with its source position.
type Token struct {
	Kind Kind
	Lit  string // literal text for NAME, NUMBER, STRING; empty otherwise
	Pos  Pos
}

func (t Token) String() string {
	if t.Lit != "" {
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	}
	return t.Kind.String()
}
