package pytoken

import (
	"strings"
	"testing"
	"testing/quick"
)

// kinds collects the token kinds for src, excluding the trailing EOF.
func kinds(t *testing.T, src string) []Kind {
	t.Helper()
	toks, err := ScanAll("test.py", src)
	if err != nil {
		t.Fatalf("ScanAll(%q): %v", src, err)
	}
	var ks []Kind
	for _, tok := range toks {
		if tok.Kind == EOF {
			break
		}
		ks = append(ks, tok.Kind)
	}
	return ks
}

func kindsEqual(a, b []Kind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSimpleStatement(t *testing.T) {
	got := kinds(t, "x = 1\n")
	want := []Kind{NAME, ASSIGN, NUMBER, NEWLINE}
	if !kindsEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestIndentDedent(t *testing.T) {
	src := "def f():\n    x = 1\n    return x\ny = 2\n"
	got := kinds(t, src)
	want := []Kind{
		KwDef, NAME, LPAREN, RPAREN, COLON, NEWLINE,
		INDENT, NAME, ASSIGN, NUMBER, NEWLINE,
		KwReturn, NAME, NEWLINE,
		DEDENT, NAME, ASSIGN, NUMBER, NEWLINE,
	}
	if !kindsEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestNestedIndentationDedentsAtEOF(t *testing.T) {
	src := "if a:\n  if b:\n    c"
	got := kinds(t, src)
	want := []Kind{
		KwIf, NAME, COLON, NEWLINE,
		INDENT, KwIf, NAME, COLON, NEWLINE,
		INDENT, NAME, NEWLINE,
		DEDENT, DEDENT,
	}
	if !kindsEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestBlankAndCommentLinesIgnored(t *testing.T) {
	src := "x = 1\n\n# comment\n   \ny = 2\n"
	got := kinds(t, src)
	want := []Kind{NAME, ASSIGN, NUMBER, NEWLINE, NAME, ASSIGN, NUMBER, NEWLINE}
	if !kindsEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestImplicitLineJoining(t *testing.T) {
	src := "f(a,\n  b,\n  c)\n"
	got := kinds(t, src)
	want := []Kind{NAME, LPAREN, NAME, COMMA, NAME, COMMA, NAME, RPAREN, NEWLINE}
	if !kindsEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestExplicitLineJoining(t *testing.T) {
	src := "x = 1 + \\\n    2\n"
	got := kinds(t, src)
	want := []Kind{NAME, ASSIGN, NUMBER, PLUS, NUMBER, NEWLINE}
	if !kindsEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestStringLiterals(t *testing.T) {
	cases := []struct {
		src string
		lit string
	}{
		{`s = 'abc'` + "\n", `'abc'`},
		{`s = "a\"b"` + "\n", `"a\"b"`},
		{"s = '''multi\nline'''\n", "'''multi\nline'''"},
		{`s = r'\d+'` + "\n", `r'\d+'`},
		{`s = f"hello {name}"` + "\n", `f"hello {name}"`},
		{`s = b'bytes'` + "\n", `b'bytes'`},
		{`s = rb'\x00'` + "\n", `rb'\x00'`},
	}
	for _, c := range cases {
		toks, err := ScanAll("test.py", c.src)
		if err != nil {
			t.Errorf("ScanAll(%q): %v", c.src, err)
			continue
		}
		if toks[2].Kind != STRING || toks[2].Lit != c.lit {
			t.Errorf("src %q: got %v, want STRING(%q)", c.src, toks[2], c.lit)
		}
	}
}

func TestNumberLiterals(t *testing.T) {
	for _, lit := range []string{
		"0", "42", "1_000_000", "3.14", "10.", "1e5", "2.5e-3", "0x1F",
		"0o755", "0b1010", "3j", "2.5J",
	} {
		toks, err := ScanAll("test.py", "x = "+lit+"\n")
		if err != nil {
			t.Fatalf("ScanAll(%q): %v", lit, err)
		}
		if toks[2].Kind != NUMBER || toks[2].Lit != lit {
			t.Errorf("literal %q: got %v", lit, toks[2])
		}
	}
}

func TestOperators(t *testing.T) {
	src := "a **= b // c << d != e := f -> g ... @ h\n"
	got := kinds(t, src)
	want := []Kind{
		NAME, DOUBLESTAREQ, NAME, DOUBLESLASH, NAME, LSHIFT, NAME, NE,
		NAME, WALRUS, NAME, ARROW, NAME, ELLIPSIS, AT, NAME, NEWLINE,
	}
	if !kindsEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestKeywordsRecognized(t *testing.T) {
	for word, kind := range keywords {
		toks, err := ScanAll("test.py", word+"\n")
		if err != nil {
			t.Fatalf("ScanAll(%q): %v", word, err)
		}
		if toks[0].Kind != kind {
			t.Errorf("keyword %q: got kind %v, want %v", word, toks[0].Kind, kind)
		}
	}
}

func TestKeywordPrefixIsName(t *testing.T) {
	// Identifiers that merely start with a keyword must stay NAMEs.
	for _, w := range []string{"iffy", "format", "classes", "delta", "delete", "inner"} {
		toks, _ := ScanAll("test.py", w+"\n")
		if toks[0].Kind != NAME || toks[0].Lit != w {
			t.Errorf("%q: got %v, want NAME(%q)", w, toks[0], w)
		}
	}
}

func TestPositions(t *testing.T) {
	toks, err := ScanAll("test.py", "x = 1\ny = 2\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{Line: 1, Col: 0}) {
		t.Errorf("x at %v, want 1:1", toks[0].Pos)
	}
	if toks[4].Pos != (Pos{Line: 2, Col: 0}) {
		t.Errorf("y at %v, want 2:1", toks[4].Pos)
	}
	if toks[6].Pos != (Pos{Line: 2, Col: 4}) {
		t.Errorf("2 at %v, want 2:5", toks[6].Pos)
	}
}

func TestTabIndentation(t *testing.T) {
	src := "if a:\n\tb = 1\n\tc = 2\nd = 3\n"
	got := kinds(t, src)
	want := []Kind{
		KwIf, NAME, COLON, NEWLINE,
		INDENT, NAME, ASSIGN, NUMBER, NEWLINE,
		NAME, ASSIGN, NUMBER, NEWLINE,
		DEDENT, NAME, ASSIGN, NUMBER, NEWLINE,
	}
	if !kindsEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestUnterminatedStringIsError(t *testing.T) {
	_, err := ScanAll("test.py", "s = 'oops\n")
	if err == nil {
		t.Error("expected error for unterminated string")
	}
}

func TestBadDedentIsError(t *testing.T) {
	_, err := ScanAll("test.py", "if a:\n    b\n  c\n")
	if err == nil {
		t.Error("expected error for inconsistent dedent")
	}
}

func TestUnexpectedCharacterIsError(t *testing.T) {
	toks, err := ScanAll("test.py", "a ? b\n")
	if err == nil {
		t.Error("expected error for '?'")
	}
	found := false
	for _, tok := range toks {
		if tok.Kind == ILLEGAL {
			found = true
		}
	}
	if !found {
		t.Error("expected an ILLEGAL token")
	}
}

func TestCRLFInput(t *testing.T) {
	got := kinds(t, "x = 1\r\ny = 2\r\n")
	want := []Kind{NAME, ASSIGN, NUMBER, NEWLINE, NAME, ASSIGN, NUMBER, NEWLINE}
	if !kindsEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestDecoratorLine(t *testing.T) {
	src := "@app.route('/x')\ndef f():\n    pass\n"
	got := kinds(t, src)
	want := []Kind{
		AT, NAME, DOT, NAME, LPAREN, STRING, RPAREN, NEWLINE,
		KwDef, NAME, LPAREN, RPAREN, COLON, NEWLINE,
		INDENT, KwPass, NEWLINE, DEDENT,
	}
	if !kindsEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

// TestScanTerminates is a property test: the scanner must reach EOF in a
// bounded number of steps for arbitrary input, never looping forever.
func TestScanTerminates(t *testing.T) {
	f := func(src string) bool {
		sc := NewScanner("fuzz.py", src)
		for i := 0; i < 4*len(src)+64; i++ {
			if sc.Scan().Kind == EOF {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestBalancedIndents is a property test: across any input built of valid
// lines, the number of INDENT tokens equals the number of DEDENT tokens by
// the time EOF is reached.
func TestBalancedIndents(t *testing.T) {
	f := func(depths []uint8) bool {
		var b strings.Builder
		for i, d := range depths {
			b.WriteString(strings.Repeat(" ", int(d%8)))
			if i%3 == 0 {
				b.WriteString("if x:\n")
			} else {
				b.WriteString("y = 1\n")
			}
		}
		toks, _ := ScanAll("fuzz.py", b.String())
		bal := 0
		for _, tok := range toks {
			switch tok.Kind {
			case INDENT:
				bal++
			case DEDENT:
				bal--
			}
		}
		return bal == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEmptyAndWhitespaceOnlyInputs(t *testing.T) {
	for _, src := range []string{"", "\n", "   \n\t\n", "# just a comment\n"} {
		toks, err := ScanAll("test.py", src)
		if err != nil {
			t.Errorf("ScanAll(%q): %v", src, err)
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != EOF {
			t.Errorf("ScanAll(%q): missing EOF, got %v", src, toks)
		}
	}
}
