package pytoken

import "testing"

func TestTripleQuotedWithEmbeddedQuotes(t *testing.T) {
	src := `s = """she said "hi" to me"""` + "\n"
	toks, err := ScanAll("t.py", src)
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != STRING || toks[2].Lit != `"""she said "hi" to me"""` {
		t.Errorf("got %v", toks[2])
	}
}

func TestTripleQuotedDocstringSpansLines(t *testing.T) {
	src := "def f():\n    \"\"\"doc\n    more doc\n    \"\"\"\n    return 1\n"
	toks, err := ScanAll("t.py", src)
	if err != nil {
		t.Fatal(err)
	}
	// The docstring must be one STRING token and the function body must
	// still parse (NEWLINE after the string, return afterwards).
	sawString, sawReturn := false, false
	for _, tok := range toks {
		if tok.Kind == STRING {
			sawString = true
		}
		if tok.Kind == KwReturn {
			sawReturn = true
		}
	}
	if !sawString || !sawReturn {
		t.Errorf("string=%v return=%v", sawString, sawReturn)
	}
}

func TestEscapedQuoteInsideString(t *testing.T) {
	toks, err := ScanAll("t.py", `x = 'don\'t'`+"\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Lit != `'don\'t'` {
		t.Errorf("lit = %q", toks[2].Lit)
	}
}

func TestRawStringBackslashes(t *testing.T) {
	toks, err := ScanAll("t.py", `p = r'C:\new\folder'`+"\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Lit != `r'C:\new\folder'` {
		t.Errorf("lit = %q", toks[2].Lit)
	}
}

func TestCommentAtEndOfCodeLine(t *testing.T) {
	toks, err := ScanAll("t.py", "x = 1  # trailing comment\ny = 2\n")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []Kind{}
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	want := []Kind{NAME, ASSIGN, NUMBER, NEWLINE, NAME, ASSIGN, NUMBER, NEWLINE, EOF}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("kind[%d] = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestIndentInsideBracketsIgnored(t *testing.T) {
	src := "x = [\n        1,\n2,\n    3]\ny = 4\n"
	toks, err := ScanAll("t.py", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks {
		if tok.Kind == INDENT || tok.Kind == DEDENT {
			t.Fatalf("indentation token inside brackets: %v", tok)
		}
	}
}

func TestSemicolonSeparatedStatements(t *testing.T) {
	toks, _ := ScanAll("t.py", "a = 1; b = 2\n")
	semi := 0
	for _, tok := range toks {
		if tok.Kind == SEMI {
			semi++
		}
	}
	if semi != 1 {
		t.Errorf("semicolons = %d", semi)
	}
}

func TestUnicodeIdentifiers(t *testing.T) {
	toks, err := ScanAll("t.py", "naïve = 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != NAME || toks[0].Lit != "naïve" {
		t.Errorf("got %v", toks[0])
	}
}

func TestFStringWithBraces(t *testing.T) {
	toks, err := ScanAll("t.py", `m = f"rows: {len(rows)} of {total}"`+"\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != STRING {
		t.Errorf("f-string not a single STRING token: %v", toks[2])
	}
}

func TestMixedOperatorsNoSpaces(t *testing.T) {
	toks, _ := ScanAll("t.py", "x=-1\ny=a<=b\nz=c//d\n")
	var kinds []Kind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	want := []Kind{
		NAME, ASSIGN, MINUS, NUMBER, NEWLINE,
		NAME, ASSIGN, NAME, LE, NAME, NEWLINE,
		NAME, ASSIGN, NAME, DOUBLESLASH, NAME, NEWLINE, EOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("kind[%d] = %v, want %v", i, kinds[i], want[i])
		}
	}
}
