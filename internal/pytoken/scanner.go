package pytoken

import (
	"fmt"
	"strings"
)

// ScanError describes a lexical error with its source position.
type ScanError struct {
	File string
	Pos  Pos
	Msg  string
}

func (e *ScanError) Error() string {
	return fmt.Sprintf("%s:%s: %s", e.File, e.Pos, e.Msg)
}

// Scanner converts Python source text into a stream of tokens.
//
// A zero Scanner is not usable; call NewScanner. Scan returns EOF forever
// once the input is exhausted. Lexical errors are reported both via an
// ILLEGAL token and through Err, and the scanner recovers by skipping the
// offending byte so a parse can proceed for error reporting.
type Scanner struct {
	file string
	src  string

	off   int // byte offset of next unread byte
	line  int // 1-based current line
	bol   int // offset of beginning of current line
	paren int // depth of open (, [, {

	indents     []int   // indentation stack; always starts with 0
	pending     []Token // queued INDENT/DEDENT/NEWLINE tokens
	atLineStart bool    // true when the next scan must measure indentation
	errs        []error
	sawToken    bool // a non-NEWLINE token was produced on the current logical line
}

// NewScanner returns a Scanner over src. file is used in error messages only.
func NewScanner(file, src string) *Scanner {
	// Normalize CRLF so column bookkeeping stays simple.
	src = strings.ReplaceAll(src, "\r\n", "\n")
	src = strings.ReplaceAll(src, "\r", "\n")
	return &Scanner{
		file:        file,
		src:         src,
		line:        1,
		indents:     []int{0},
		atLineStart: true,
	}
}

// Err returns the accumulated lexical errors, if any.
func (s *Scanner) Err() error {
	if len(s.errs) == 0 {
		return nil
	}
	msgs := make([]string, len(s.errs))
	for i, e := range s.errs {
		msgs[i] = e.Error()
	}
	return fmt.Errorf("%s", strings.Join(msgs, "\n"))
}

func (s *Scanner) errorf(p Pos, format string, args ...any) {
	s.errs = append(s.errs, &ScanError{File: s.file, Pos: p, Msg: fmt.Sprintf(format, args...)})
}

func (s *Scanner) pos() Pos { return Pos{Line: s.line, Col: s.off - s.bol} }

func (s *Scanner) peek() byte {
	if s.off < len(s.src) {
		return s.src[s.off]
	}
	return 0
}

func (s *Scanner) peekAt(n int) byte {
	if s.off+n < len(s.src) {
		return s.src[s.off+n]
	}
	return 0
}

func (s *Scanner) advance() byte {
	c := s.src[s.off]
	s.off++
	if c == '\n' {
		s.line++
		s.bol = s.off
	}
	return c
}

// Scan returns the next token. At end of input it first drains pending
// DEDENTs (and a final NEWLINE if the last line lacked one), then returns EOF.
func (s *Scanner) Scan() Token {
	for {
		if len(s.pending) > 0 {
			t := s.pending[0]
			s.pending = s.pending[1:]
			return t
		}
		if s.atLineStart && s.paren == 0 {
			if done := s.handleIndentation(); done {
				continue // pending tokens were queued
			}
		}
		s.skipSpacesAndComments()
		if s.off >= len(s.src) {
			return s.finish()
		}
		c := s.peek()
		switch {
		case c == '\n':
			s.advance()
			if s.paren > 0 {
				continue // implicit line joining
			}
			s.atLineStart = true
			if s.sawToken {
				s.sawToken = false
				return Token{Kind: NEWLINE, Pos: Pos{Line: s.line - 1, Col: 0}}
			}
			continue // blank line: no NEWLINE token
		case c == '\\' && s.peekAt(1) == '\n':
			s.advance()
			s.advance()
			continue // explicit line joining
		case isIdentStart(c):
			return s.scanNameOrString()
		case isDigit(c) || (c == '.' && isDigit(s.peekAt(1))):
			return s.scanNumber()
		case c == '\'' || c == '"':
			return s.scanString("")
		default:
			return s.scanOperator()
		}
	}
}

// finish emits the shutdown sequence: NEWLINE (if a statement is open),
// all outstanding DEDENTs, then EOF.
func (s *Scanner) finish() Token {
	if s.sawToken {
		s.sawToken = false
		return Token{Kind: NEWLINE, Pos: s.pos()}
	}
	if len(s.indents) > 1 {
		s.indents = s.indents[:len(s.indents)-1]
		return Token{Kind: DEDENT, Pos: s.pos()}
	}
	return Token{Kind: EOF, Pos: s.pos()}
}

// handleIndentation measures leading whitespace on a fresh logical line and
// queues INDENT/DEDENT tokens. It returns true if tokens were queued (the
// caller should loop to deliver them). Blank and comment-only lines are
// skipped without affecting the indentation stack, per the Python grammar.
func (s *Scanner) handleIndentation() bool {
	for {
		col := 0
		i := s.off
		for i < len(s.src) {
			switch s.src[i] {
			case ' ':
				col++
			case '\t':
				col += 8 - col%8
			case '\f':
				col = 0
			default:
				goto measured
			}
			i++
		}
	measured:
		if i >= len(s.src) || s.src[i] == '\n' || s.src[i] == '#' {
			// Blank or comment-only line: consume it and re-measure.
			for s.off < len(s.src) && s.src[s.off] != '\n' {
				s.advance()
			}
			if s.off < len(s.src) {
				s.advance() // the newline
				continue
			}
			s.atLineStart = false
			return false
		}
		// Position at first non-whitespace byte.
		for s.off < i {
			s.advance()
		}
		s.atLineStart = false
		cur := s.indents[len(s.indents)-1]
		switch {
		case col > cur:
			s.indents = append(s.indents, col)
			s.pending = append(s.pending, Token{Kind: INDENT, Pos: s.pos()})
			return true
		case col < cur:
			for len(s.indents) > 1 && s.indents[len(s.indents)-1] > col {
				s.indents = s.indents[:len(s.indents)-1]
				s.pending = append(s.pending, Token{Kind: DEDENT, Pos: s.pos()})
			}
			if s.indents[len(s.indents)-1] != col {
				s.errorf(s.pos(), "unindent does not match any outer indentation level")
			}
			return true
		default:
			return false
		}
	}
}

func (s *Scanner) skipSpacesAndComments() {
	for s.off < len(s.src) {
		switch s.peek() {
		case ' ', '\t', '\f':
			s.advance()
		case '#':
			for s.off < len(s.src) && s.peek() != '\n' {
				s.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || c >= 0x80
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// scanNameOrString scans an identifier, a keyword, or a prefixed string
// literal such as r"..." or f'...'.
func (s *Scanner) scanNameOrString() Token {
	start := s.off
	pos := s.pos()
	for s.off < len(s.src) && isIdentCont(s.peek()) {
		s.advance()
	}
	word := s.src[start:s.off]
	if len(word) <= 2 && (s.peek() == '\'' || s.peek() == '"') && isStringPrefix(word) {
		return s.scanString(word)
	}
	s.sawToken = true
	if k := Lookup(word); k != NAME {
		return Token{Kind: k, Lit: word, Pos: pos}
	}
	return Token{Kind: NAME, Lit: word, Pos: pos}
}

func isStringPrefix(w string) bool {
	switch strings.ToLower(w) {
	case "r", "b", "u", "f", "rb", "br", "rf", "fr":
		return true
	}
	return false
}

// scanString scans a single- or triple-quoted string literal. The returned
// Lit includes the prefix and quotes verbatim.
func (s *Scanner) scanString(prefix string) Token {
	pos := s.pos()
	pos.Col -= len(prefix)
	s.sawToken = true
	quote := s.advance()
	triple := false
	if s.peek() == quote && s.peekAt(1) == quote {
		s.advance()
		s.advance()
		triple = true
	}
	start := s.off
	raw := strings.ContainsAny(strings.ToLower(prefix), "r")
	for s.off < len(s.src) {
		c := s.peek()
		if c == '\\' && !raw && s.off+1 < len(s.src) {
			s.advance()
			s.advance()
			continue
		}
		if c == '\\' && raw && s.off+1 < len(s.src) {
			// In raw strings a backslash still escapes the quote for
			// the purpose of finding the literal's end.
			s.advance()
			s.advance()
			continue
		}
		if c == quote {
			if !triple {
				s.advance()
				lit := prefix + string(quote) + s.src[start:s.off-1] + string(quote)
				return Token{Kind: STRING, Lit: lit, Pos: pos}
			}
			if s.peekAt(1) == quote && s.peekAt(2) == quote {
				body := s.src[start:s.off]
				s.advance()
				s.advance()
				s.advance()
				q3 := strings.Repeat(string(quote), 3)
				return Token{Kind: STRING, Lit: prefix + q3 + body + q3, Pos: pos}
			}
			s.advance()
			continue
		}
		if c == '\n' && !triple {
			s.errorf(pos, "unterminated string literal")
			lit := prefix + string(quote) + s.src[start:s.off]
			return Token{Kind: STRING, Lit: lit, Pos: pos}
		}
		s.advance()
	}
	s.errorf(pos, "unterminated string literal at end of file")
	return Token{Kind: STRING, Lit: prefix + string(quote) + s.src[start:], Pos: pos}
}

// scanNumber scans integer, float, imaginary, hex, octal, and binary
// literals, including underscores as digit separators.
func (s *Scanner) scanNumber() Token {
	pos := s.pos()
	start := s.off
	s.sawToken = true
	if s.peek() == '0' && (s.peekAt(1) == 'x' || s.peekAt(1) == 'X' ||
		s.peekAt(1) == 'o' || s.peekAt(1) == 'O' ||
		s.peekAt(1) == 'b' || s.peekAt(1) == 'B') {
		s.advance()
		s.advance()
		for isHexDigit(s.peek()) || s.peek() == '_' {
			s.advance()
		}
		return Token{Kind: NUMBER, Lit: s.src[start:s.off], Pos: pos}
	}
	digits := func() {
		for isDigit(s.peek()) || s.peek() == '_' {
			s.advance()
		}
	}
	digits()
	if s.peek() == '.' && isDigit(s.peekAt(1)) || s.peek() == '.' && !isIdentStart(s.peekAt(1)) && s.peekAt(1) != '.' {
		s.advance()
		digits()
	}
	if s.peek() == 'e' || s.peek() == 'E' {
		if n := s.peekAt(1); isDigit(n) || (n == '+' || n == '-') && isDigit(s.peekAt(2)) {
			s.advance()
			if s.peek() == '+' || s.peek() == '-' {
				s.advance()
			}
			digits()
		}
	}
	if s.peek() == 'j' || s.peek() == 'J' {
		s.advance()
	}
	return Token{Kind: NUMBER, Lit: s.src[start:s.off], Pos: pos}
}

func isHexDigit(c byte) bool {
	return isDigit(c) || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F'
}

// operator tables, longest match first.
var op3 = map[string]Kind{
	"**=": DOUBLESTAREQ, "//=": DOUBLESLASHEQ, "<<=": LSHIFTEQ,
	">>=": RSHIFTEQ, "...": ELLIPSIS,
}

var op2 = map[string]Kind{
	"**": DOUBLESTAR, "//": DOUBLESLASH, "<<": LSHIFT, ">>": RSHIFT,
	"<=": LE, ">=": GE, "==": EQ, "!=": NE, "->": ARROW, ":=": WALRUS,
	"+=": PLUSEQ, "-=": MINUSEQ, "*=": STAREQ, "/=": SLASHEQ,
	"%=": PERCENTEQ, "&=": AMPEREQ, "|=": PIPEEQ, "^=": CARETEQ,
	"@=": ATEQ,
}

var op1 = map[byte]Kind{
	'(': LPAREN, ')': RPAREN, '[': LBRACKET, ']': RBRACKET, '{': LBRACE,
	'}': RBRACE, ',': COMMA, ':': COLON, ';': SEMI, '.': DOT, '@': AT,
	'=': ASSIGN, '+': PLUS, '-': MINUS, '*': STAR, '/': SLASH,
	'%': PERCENT, '&': AMPER, '|': PIPE, '^': CARET, '~': TILDE,
	'<': LT, '>': GT,
}

func (s *Scanner) scanOperator() Token {
	pos := s.pos()
	s.sawToken = true
	if s.off+3 <= len(s.src) {
		if k, ok := op3[s.src[s.off:s.off+3]]; ok {
			s.advance()
			s.advance()
			s.advance()
			return Token{Kind: k, Pos: pos}
		}
	}
	if s.off+2 <= len(s.src) {
		if k, ok := op2[s.src[s.off:s.off+2]]; ok {
			s.advance()
			s.advance()
			return Token{Kind: k, Pos: pos}
		}
	}
	c := s.advance()
	if k, ok := op1[c]; ok {
		switch k {
		case LPAREN, LBRACKET, LBRACE:
			s.paren++
		case RPAREN, RBRACKET, RBRACE:
			if s.paren > 0 {
				s.paren--
			}
		}
		return Token{Kind: k, Pos: pos}
	}
	s.errorf(pos, "unexpected character %q", c)
	return Token{Kind: ILLEGAL, Lit: string(c), Pos: pos}
}

// ScanAll tokenizes the entire input and returns the tokens up to and
// including EOF, plus any lexical errors encountered.
func ScanAll(file, src string) ([]Token, error) {
	return ScanAllInto(file, src, nil)
}

// ScanAllInto is ScanAll appending into buf[:0], reusing its capacity —
// the pooled-scratch path of callers that tokenize in a hot loop. The
// returned slice aliases buf when it fits; tokens from a previous scan
// into the same buffer are overwritten.
func ScanAllInto(file, src string, buf []Token) ([]Token, error) {
	sc := NewScanner(file, src)
	toks := buf[:0]
	for {
		t := sc.Scan()
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, sc.Err()
		}
	}
}
