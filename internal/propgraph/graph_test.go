package propgraph

import (
	"reflect"
	"testing"
	"testing/quick"

	"seldon/internal/pytoken"
)

func addEv(g *Graph, kind EventKind, reps ...string) *Event {
	return g.AddEvent(kind, "t.py", pytoken.Pos{Line: 1}, reps)
}

func TestAddEdgeDeduplicatesAndRejectsSelfLoops(t *testing.T) {
	g := New()
	a := addEv(g, KindCall, "a()")
	b := addEv(g, KindCall, "b()")
	g.AddEdge(a.ID, b.ID)
	g.AddEdge(a.ID, b.ID)
	g.AddEdge(a.ID, a.ID)
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d, want 1", g.NumEdges())
	}
	if !reflect.DeepEqual(g.Succs(a.ID), []int{b.ID}) {
		t.Errorf("succs = %v", g.Succs(a.ID))
	}
	if !reflect.DeepEqual(g.Preds(b.ID), []int{a.ID}) {
		t.Errorf("preds = %v", g.Preds(b.ID))
	}
}

func TestCandidateRoles(t *testing.T) {
	if got := CandidateRoles(KindCall); got != AllRoles {
		t.Errorf("call roles = %b", got)
	}
	for _, k := range []EventKind{KindRead, KindParam} {
		got := CandidateRoles(k)
		if !got.Has(Source) || got.Has(Sanitizer) || got.Has(Sink) {
			t.Errorf("%v roles = %b, want source-only", k, got)
		}
	}
}

func TestUnionDisjoint(t *testing.T) {
	g1 := New()
	a := addEv(g1, KindCall, "a()")
	b := addEv(g1, KindCall, "b()")
	g1.AddEdge(a.ID, b.ID)

	g2 := New()
	c := addEv(g2, KindRead, "x.y")
	d := addEv(g2, KindCall, "b()") // same rep as b, different program
	g2.AddEdge(c.ID, d.ID)

	u := Union(g1, g2)
	if len(u.Events) != 4 {
		t.Fatalf("events = %d", len(u.Events))
	}
	if u.NumEdges() != 2 {
		t.Errorf("edges = %d", u.NumEdges())
	}
	// No cross-program edges may appear.
	for _, s := range u.Succs(1) {
		if s >= 2 {
			t.Errorf("cross-program edge 1 -> %d", s)
		}
	}
	// Union must not mutate inputs.
	if g1.Events[0].ID != 0 || g2.Events[0].ID != 0 {
		t.Error("Union renumbered input events")
	}
}

func TestCollapseMergesEqualReps(t *testing.T) {
	// Paper Fig. 8: two san() events with the same representation merge,
	// creating a spurious source -> sink path in the collapsed graph.
	g := New()
	src := addEv(g, KindCall, "src()")
	san1 := addEv(g, KindCall, "san()")
	san2 := addEv(g, KindCall, "san()")
	sink := addEv(g, KindCall, "sink()")
	g.AddEdge(src.ID, san1.ID)
	g.AddEdge(san2.ID, sink.ID)

	c := g.Collapse()
	if len(c.Events) != 3 {
		t.Fatalf("collapsed events = %d, want 3", len(c.Events))
	}
	// In the collapsed graph a path src -> san -> sink must exist.
	reach := c.ForwardReachable(0)
	found := false
	for _, id := range reach {
		if c.Events[id].NumReps() > 0 && c.Events[id].Rep(0) == "sink()" {
			found = true
		}
	}
	if !found {
		t.Error("collapsed graph lost the contracted path")
	}
	// The uncollapsed graph must NOT have that path.
	for _, id := range g.ForwardReachable(src.ID) {
		if g.Events[id].Rep(0) == "sink()" {
			t.Error("uncollapsed graph has spurious path")
		}
	}
}

func TestCollapseKeepsKindsSeparate(t *testing.T) {
	g := New()
	addEv(g, KindCall, "x.y")
	addEv(g, KindRead, "x.y")
	c := g.Collapse()
	if len(c.Events) != 2 {
		t.Errorf("a read and a call with equal reps merged: %d events", len(c.Events))
	}
}

func TestReachability(t *testing.T) {
	g := New()
	var ids []int
	for i := 0; i < 5; i++ {
		ids = append(ids, addEv(g, KindCall, "e()").ID)
	}
	// 0 -> 1 -> 2, 0 -> 3; 4 isolated
	g.AddEdge(ids[0], ids[1])
	g.AddEdge(ids[1], ids[2])
	g.AddEdge(ids[0], ids[3])
	if got := g.ForwardReachable(ids[0]); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("forward = %v", got)
	}
	if got := g.BackwardReachable(ids[2]); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("backward = %v", got)
	}
	if got := g.ForwardReachable(ids[4]); len(got) != 0 {
		t.Errorf("isolated = %v", got)
	}
}

func TestComputeStats(t *testing.T) {
	g := New()
	addEv(g, KindCall, "a()", "b()")
	addEv(g, KindRead, "x.y")
	addEv(g, KindParam, "f(param x)")
	g.AddEvent(KindCall, "t.py", pytoken.Pos{}, nil) // no reps: not a candidate
	g.AddEdge(0, 3)
	st := g.ComputeStats()
	if st.Events != 4 || st.Candidates != 3 || st.Edges != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.AvgBackoff != 4.0/3.0 {
		t.Errorf("avg backoff = %v", st.AvgBackoff)
	}
	if st.CallEvents != 2 || st.ReadEvents != 1 || st.ParamEvents != 1 {
		t.Errorf("kind counts = %+v", st)
	}
}

// Property: collapsing preserves path existence between representation
// classes (contraction can only add connectivity, never remove it).
func TestCollapsePreservesReachabilityProperty(t *testing.T) {
	f := func(edges []uint8, nEvents uint8) bool {
		n := int(nEvents%12) + 2
		g := New()
		for i := 0; i < n; i++ {
			// Reps chosen from a small pool to force merges.
			addEv(g, KindCall, []string{"a()", "b()", "c()", "d()"}[i%4])
		}
		for i := 0; i+1 < len(edges); i += 2 {
			src, dst := int(edges[i])%n, int(edges[i+1])%n
			if src < dst { // keep acyclic, like real propagation graphs
				g.AddEdge(src, dst)
			}
		}
		c := g.Collapse()
		classOf := make(map[string]int)
		for _, e := range c.Events {
			classOf[e.Rep(0)] = e.ID
		}
		for src := range g.Events {
			for _, dst := range g.ForwardReachable(src) {
				cs := classOf[g.Events[src].Rep(0)]
				cd := classOf[g.Events[dst].Rep(0)]
				if cs == cd {
					continue
				}
				ok := false
				for _, r := range c.ForwardReachable(cs) {
					if r == cd {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPaperExampleReps(t *testing.T) {
	// §3.2: self.receipt() inside ESCPOSDriver::status(self, eprint),
	// where ESCPOSDriver extends base_driver.ThreadDriver.
	ctx := RepContext{
		Function:   "status",
		Class:      "ESCPOSDriver",
		ClassBases: []string{"base_driver.ThreadDriver"},
	}
	got := ctx.ParamRootedReps("self", []string{"receipt()"})
	want := []string{
		"ESCPOSDriver::status(param self).receipt()",
		"base_driver.ThreadDriver::status(param self).receipt()",
		"status(param self).receipt()",
		"self.receipt()",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v\nwant %v", got, want)
	}
}

func TestParamEventReps(t *testing.T) {
	ctx := RepContext{Function: "media"}
	if got := ctx.ParamEventReps("f"); !reflect.DeepEqual(got, []string{"media(param f)"}) {
		t.Errorf("got %v", got)
	}
	// The bare parameter name must not be a representation of the event.
	ctx2 := RepContext{Function: "get", Class: "MethodView", ClassBases: []string{"flask.views.MethodView"}}
	got := ctx2.ParamEventReps("filename")
	want := []string{
		"MethodView::get(param filename)",
		"flask.views.MethodView::get(param filename)",
		"get(param filename)",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v\nwant %v", got, want)
	}
}

func TestSuffixReps(t *testing.T) {
	got := SuffixReps([]string{"flask", "request", "form", "get()"})
	want := []string{"flask.request.form.get()", "request.form.get()", "form.get()"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v\nwant %v", got, want)
	}
	if got := SuffixReps([]string{"markdown()"}); !reflect.DeepEqual(got, []string{"markdown()"}) {
		t.Errorf("single segment: %v", got)
	}
	if got := SuffixReps(nil); got != nil {
		t.Errorf("empty path: %v", got)
	}
}

func TestSubscriptSegment(t *testing.T) {
	if got := SubscriptSegment("files", "'f'", true); got != "files['f']" {
		t.Errorf("got %q", got)
	}
	if got := SubscriptSegment("_hash()", "k", false); got != "_hash()[]" {
		t.Errorf("got %q", got)
	}
}

func TestRoleSetOps(t *testing.T) {
	var s RoleSet
	if s.Has(Source) {
		t.Error("empty set has source")
	}
	s = s.With(Sink)
	if !s.Has(Sink) || s.Has(Source) {
		t.Errorf("set = %b", s)
	}
	if len(Roles()) != int(NumRoles) {
		t.Error("Roles() incomplete")
	}
}
