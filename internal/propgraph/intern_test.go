package propgraph

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"seldon/internal/pytoken"
)

func TestInternerAssignsDenseFirstSeenIDs(t *testing.T) {
	in := NewInterner()
	ids := []Sym{
		in.Intern("a()"),
		in.Intern("b()"),
		in.Intern("a()"), // repeat: same ID
		in.Intern("c()"),
	}
	if want := []Sym{0, 1, 0, 2}; !reflect.DeepEqual(ids, want) {
		t.Errorf("ids = %v, want %v", ids, want)
	}
	if in.Len() != 3 {
		t.Errorf("len = %d, want 3", in.Len())
	}
	if in.Bytes() != int64(len("a()")+len("b()")+len("c()")) {
		t.Errorf("bytes = %d", in.Bytes())
	}
	if s := in.Str(1); s != "b()" {
		t.Errorf("Str(1) = %q", s)
	}
	if s := in.Str(99); s != "" {
		t.Errorf("out-of-range Str = %q", s)
	}
	if id, ok := in.Lookup("c()"); !ok || id != 2 {
		t.Errorf("Lookup(c) = %d,%v", id, ok)
	}
	if _, ok := in.Lookup("absent"); ok {
		t.Error("Lookup found an absent string")
	}
}

func TestInternerStringsIsStableSnapshot(t *testing.T) {
	in := NewInterner()
	in.Intern("x")
	in.Intern("y")
	snap := in.Strings()
	if want := []string{"x", "y"}; !reflect.DeepEqual(snap, want) {
		t.Fatalf("snapshot = %v", snap)
	}
	// Later interning must not grow or disturb the snapshot (its capacity
	// is capped, so appends by the table cannot alias into it).
	for i := 0; i < 100; i++ {
		in.Intern(fmt.Sprintf("later%d", i))
	}
	if len(snap) != 2 || snap[0] != "x" || snap[1] != "y" {
		t.Errorf("snapshot changed after interning: %v", snap[:2])
	}
	if got := in.Strings(); len(got) != 102 {
		t.Errorf("new snapshot length = %d, want 102", len(got))
	}
}

func TestInternerNilSafety(t *testing.T) {
	var in *Interner
	if in.Len() != 0 || in.Bytes() != 0 || in.Str(0) != "" || in.Strings() != nil {
		t.Error("nil interner accessors must return zero values")
	}
	if _, ok := in.Lookup("x"); ok {
		t.Error("nil interner Lookup must miss")
	}
}

func TestTranslateFrom(t *testing.T) {
	src := NewInterner()
	src.Intern("a")
	src.Intern("b")
	src.Intern("c")

	dst := NewInterner()
	dst.Intern("b") // pre-existing entry: translation must reuse it
	xlat := dst.TranslateFrom(src)
	if want := []Sym{1, 0, 2}; !reflect.DeepEqual(xlat, want) {
		t.Errorf("xlat = %v, want %v", xlat, want)
	}
	if dst.Str(2) != "c" {
		t.Errorf("dst table = %v", dst.Strings())
	}
	if got := dst.TranslateFrom(NewInterner()); got != nil {
		t.Errorf("empty source translation = %v", got)
	}
}

// TestInternerConcurrentIntern exercises the double-checked locking under
// the race detector: concurrent Intern calls over overlapping strings must
// agree on one ID per string and keep the table consistent.
func TestInternerConcurrentIntern(t *testing.T) {
	in := NewInterner()
	const workers, strings = 8, 200
	var wg sync.WaitGroup
	got := make([][]Sym, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := make([]Sym, strings)
			for i := range ids {
				ids[i] = in.Intern(fmt.Sprintf("rep%d", i))
			}
			got[w] = ids
		}(w)
	}
	wg.Wait()
	if in.Len() != strings {
		t.Fatalf("len = %d, want %d", in.Len(), strings)
	}
	for w := 1; w < workers; w++ {
		if !reflect.DeepEqual(got[w], got[0]) {
			t.Fatalf("worker %d saw different IDs", w)
		}
	}
	// Every ID resolves back to the string that produced it.
	for i, id := range got[0] {
		if in.Str(id) != fmt.Sprintf("rep%d", i) {
			t.Fatalf("Str(%d) = %q", id, in.Str(id))
		}
	}
}

func TestEventRepAccessors(t *testing.T) {
	g := New()
	e := g.AddEvent(KindCall, "t.py", pytoken.Pos{Line: 1},
		[]string{"a.b.f()", "b.f()", "f()"})
	if e.NumReps() != 3 {
		t.Fatalf("NumReps = %d", e.NumReps())
	}
	if e.Rep(0) != "a.b.f()" || e.Rep(2) != "f()" {
		t.Errorf("Rep() = %q, %q", e.Rep(0), e.Rep(2))
	}
	if want := []string{"a.b.f()", "b.f()", "f()"}; !reflect.DeepEqual(e.Reps(), want) {
		t.Errorf("Reps() = %v", e.Reps())
	}
	bare := g.AddEvent(KindCall, "t.py", pytoken.Pos{Line: 2}, nil)
	if bare.NumReps() != 0 || bare.Reps() != nil {
		t.Errorf("rep-less event: NumReps=%d Reps=%v", bare.NumReps(), bare.Reps())
	}
	// Shared strings share symbols.
	e2 := g.AddEvent(KindCall, "t.py", pytoken.Pos{Line: 3}, []string{"f()"})
	if e2.RepIDs[0] != e.RepIDs[2] {
		t.Errorf("equal reps got distinct symbols: %d vs %d", e2.RepIDs[0], e.RepIDs[2])
	}
}

// TestAddEdgeDedupEquivalence drives one source across the dedupDegree
// threshold and checks that the hash-set path preserves exactly the
// behavior of a pure linear scan: duplicates dropped wherever they occur,
// successor order = first-add order.
func TestAddEdgeDedupEquivalence(t *testing.T) {
	const n = 3*dedupDegree + 5
	g := New()
	src := addEv(g, KindCall, "hub()")
	var want []int
	for i := 0; i < n; i++ {
		dst := addEv(g, KindCall, fmt.Sprintf("t%d()", i)).ID
		g.AddEdge(src.ID, dst)
		want = append(want, dst)
		// Re-add every edge so far: all duplicates, below and above the
		// threshold, must be dropped.
		for _, d := range want {
			g.AddEdge(src.ID, d)
		}
		g.AddEdge(src.ID, src.ID) // self-loop never inserts
	}
	if !reflect.DeepEqual(g.Succs(src.ID), want) {
		t.Fatalf("succs = %v\nwant %v", g.Succs(src.ID), want)
	}
	if g.NumEdges() != n {
		t.Errorf("edges = %d, want %d", g.NumEdges(), n)
	}
	// Preds stay deduplicated too.
	last := want[len(want)-1]
	if !reflect.DeepEqual(g.Preds(last), []int{src.ID}) {
		t.Errorf("preds(last) = %v", g.Preds(last))
	}
}
