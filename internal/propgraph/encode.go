package propgraph

import (
	"encoding/json"
	"fmt"
	"io"

	"seldon/internal/pytoken"
)

// The JSON encoding lets the extraction and learning phases run as
// separate processes (the paper's pipeline parses tens of thousands of
// repositories once and learns over the union many times).

// jsonGraph is the wire format.
type jsonGraph struct {
	Version int         `json:"version"`
	Events  []jsonEvent `json:"events"`
	Edges   []jsonEdge  `json:"edges"`
}

type jsonEvent struct {
	Kind  int      `json:"kind"`
	File  string   `json:"file,omitempty"`
	Line  int      `json:"line,omitempty"`
	Col   int      `json:"col,omitempty"`
	Reps  []string `json:"reps,omitempty"`
	Roles uint8    `json:"roles"`
}

type jsonEdge struct {
	Src  int   `json:"s"`
	Dst  int   `json:"d"`
	Args []int `json:"a,omitempty"`
}

const encodingVersion = 1

// Encode writes the graph as JSON.
func (g *Graph) Encode(w io.Writer) error {
	jg := jsonGraph{Version: encodingVersion}
	for _, e := range g.Events {
		jg.Events = append(jg.Events, jsonEvent{
			Kind: int(e.Kind), File: e.File,
			Line: e.Pos.Line, Col: e.Pos.Col,
			Reps: e.Reps(), Roles: uint8(e.Roles),
		})
	}
	for src := range g.Events {
		for _, dst := range g.Succs(src) {
			jg.Edges = append(jg.Edges, jsonEdge{
				Src: src, Dst: dst, Args: g.EdgeArgs(src, dst),
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(jg)
}

// Decode reads a graph written by Encode.
func Decode(r io.Reader) (*Graph, error) {
	var jg jsonGraph
	if err := json.NewDecoder(r).Decode(&jg); err != nil {
		return nil, fmt.Errorf("propgraph: decode: %w", err)
	}
	if jg.Version != encodingVersion {
		return nil, fmt.Errorf("propgraph: unsupported encoding version %d", jg.Version)
	}
	g := New()
	for _, je := range jg.Events {
		ev := g.AddEvent(EventKind(je.Kind), je.File,
			pytoken.Pos{Line: je.Line, Col: je.Col}, je.Reps)
		ev.Roles = RoleSet(je.Roles)
	}
	for _, je := range jg.Edges {
		if je.Src < 0 || je.Src >= len(g.Events) || je.Dst < 0 || je.Dst >= len(g.Events) {
			return nil, fmt.Errorf("propgraph: edge %d->%d out of range", je.Src, je.Dst)
		}
		if len(je.Args) == 0 {
			g.AddEdge(je.Src, je.Dst)
			continue
		}
		for _, a := range je.Args {
			g.AddEdgeArg(je.Src, je.Dst, a)
		}
	}
	return g, nil
}
