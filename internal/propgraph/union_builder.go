package propgraph

// UnionBuilder is the incremental form of Union: graphs are appended one
// at a time and the running disjoint union is available at every step.
// It exists for streaming consumers — a coordinator folding shard slices
// into the global graph as each one arrives — where Union's
// all-inputs-up-front contract would force a barrier.
//
// Equivalence contract: after Add(g1), Add(g2), ..., Add(gN) the built
// graph is byte-identical (AppendBinary) to Union(g1, ..., gN). Symbols
// are remapped through the same first-seen TranslateFrom order, event
// IDs are offset by the running total, and predecessor lists are filled
// in ascending-source order — edges never cross inputs in a disjoint
// union, so per-input filling produces the same order Union's global
// pass does. The only difference is allocation: Union carves one arena
// per field from exact totals, the builder carves one per Add.
type UnionBuilder struct {
	g *Graph
}

// NewUnionBuilder returns a builder holding an empty union.
func NewUnionBuilder() *UnionBuilder {
	return &UnionBuilder{g: &Graph{Syms: NewInterner()}}
}

// Add appends src to the union. src is not modified and must not change
// afterwards (its adjacency is copied, its symbol table only read).
func (b *UnionBuilder) Add(src *Graph) {
	g := b.g
	base := len(g.Events)
	xlat := g.Syms.TranslateFrom(src.Syms)

	totalReps := 0
	for _, e := range src.Events {
		totalReps += len(e.RepIDs)
	}
	evArena := make([]Event, len(src.Events))
	repArena := make([]Sym, 0, totalReps)
	for _, e := range src.Events {
		ne := &evArena[e.ID]
		*ne = *e
		ne.ID = base + e.ID
		ne.syms = g.Syms
		if len(e.RepIDs) > 0 {
			start := len(repArena)
			for _, s := range e.RepIDs {
				repArena = append(repArena, xlat[s])
			}
			ne.RepIDs = repArena[start:len(repArena):len(repArena)]
		}
		g.Events = append(g.Events, ne)
	}

	g.succs = append(g.succs, make([][]int, len(src.Events))...)
	g.preds = append(g.preds, make([][]int, len(src.Events))...)
	succArena := make([]int, 0, src.NumEdges())
	predLen := make([]int, len(src.Events))
	for s, ss := range src.succs {
		if len(ss) == 0 {
			continue
		}
		start := len(succArena)
		for _, dst := range ss {
			succArena = append(succArena, base+dst)
			predLen[dst]++
		}
		g.succs[base+s] = succArena[start:len(succArena):len(succArena)]
	}
	totalPreds := 0
	for _, n := range predLen {
		totalPreds += n
	}
	predArena := make([]int, totalPreds)
	off := 0
	for i, n := range predLen {
		if n > 0 {
			g.preds[base+i] = predArena[off : off : off+n]
			off += n
		}
	}
	for s, ss := range src.succs {
		for _, dst := range ss {
			g.preds[base+dst] = append(g.preds[base+dst], base+s)
		}
	}
	g.copyEdgeArgs(src, base)
}

// Graph returns the union built so far. The builder retains it; calling
// Add again grows the same graph.
func (b *UnionBuilder) Graph() *Graph { return b.g }
