package propgraph

import (
	"encoding/binary"
	"fmt"
	"sort"

	"seldon/internal/pytoken"
)

// The binary codec is the persistence format of the incremental
// front-end (internal/fpcache): a compact, self-delimiting encoding of a
// propagation graph whose bytes are a pure function of the graph — no
// map is iterated unordered, so identical graphs always encode to
// identical bytes and can be content-addressed. It captures everything
// AnalyzeModule produces: events (kind, file, position, representations,
// candidate roles), the successor adjacency in insertion order, and the
// argument-position edge labels in packed-key order.
//
// Version 2 writes strings once: the graph's symbol table and a
// first-seen table of file names lead the encoding, and each event then
// references representations and its file by integer index. A corpus
// file's graph repeats its own name in every event and shares
// representation strings across events, so entries shrink and decoding
// rebuilds each string exactly once. Version-1 entries fail to decode,
// which the cache treats as a miss (re-analyze + overwrite), never an
// error.
//
// Predecessor lists are not stored: they are rebuilt in ascending-source
// order on decode, the same normal form propgraph.Union re-establishes
// for every downstream consumer, so a decoded graph is indistinguishable
// from a fresh one after the union every pipeline takes.

const (
	binaryTag     = 0x47 // 'G', leading byte of a graph section
	binaryVersion = 2
)

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBinary appends the graph's binary encoding to dst and returns
// the extended slice. The encoding is deterministic and self-delimiting
// (DecodeBinary knows where it ends).
func (g *Graph) AppendBinary(dst []byte) []byte {
	dst = append(dst, binaryTag, binaryVersion)

	// Symbol table, in table order (RepIDs index it directly).
	syms := g.Syms.Strings()
	dst = binary.AppendUvarint(dst, uint64(len(syms)))
	for _, s := range syms {
		dst = appendString(dst, s)
	}

	// File-name table, first-seen order over events.
	fileIdx := make(map[string]int)
	var files []string
	for _, e := range g.Events {
		if _, ok := fileIdx[e.File]; !ok {
			fileIdx[e.File] = len(files)
			files = append(files, e.File)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(files)))
	for _, f := range files {
		dst = appendString(dst, f)
	}

	dst = binary.AppendUvarint(dst, uint64(len(g.Events)))
	for _, e := range g.Events {
		dst = binary.AppendUvarint(dst, uint64(e.Kind))
		dst = binary.AppendUvarint(dst, uint64(fileIdx[e.File]))
		dst = binary.AppendVarint(dst, int64(e.Pos.Line))
		dst = binary.AppendVarint(dst, int64(e.Pos.Col))
		dst = binary.AppendUvarint(dst, uint64(len(e.RepIDs)))
		for _, r := range e.RepIDs {
			dst = binary.AppendUvarint(dst, uint64(r))
		}
		dst = append(dst, byte(e.Roles))
	}
	for src := range g.Events {
		ss := g.succs[src]
		dst = binary.AppendUvarint(dst, uint64(len(ss)))
		for _, d := range ss {
			dst = binary.AppendUvarint(dst, uint64(d))
		}
	}
	keys := make([]int64, 0, len(g.edgeArgs))
	for k := range g.edgeArgs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		args := g.edgeArgs[k]
		dst = binary.AppendUvarint(dst, uint64(k>>32))
		dst = binary.AppendUvarint(dst, uint64(uint32(k)))
		dst = binary.AppendUvarint(dst, uint64(len(args)))
		for _, a := range args {
			dst = binary.AppendVarint(dst, int64(a))
		}
	}
	return dst
}

// binReader is a cursor over an encoded graph; the first failed read
// latches err and turns every later read into a no-op returning zero.
type binReader struct {
	data []byte
	err  error
}

func (r *binReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("propgraph: binary: "+format, args...)
	}
}

func (r *binReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.data) == 0 {
		r.fail("truncated input")
		return 0
	}
	b := r.data[0]
	r.data = r.data[1:]
	return b
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *binReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data)
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *binReader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.data)) {
		r.fail("string length %d exceeds remaining %d bytes", n, len(r.data))
		return ""
	}
	s := string(r.data[:n])
	r.data = r.data[n:]
	return s
}

// count validates an element count against the bytes that remain, so a
// corrupted length cannot drive allocation beyond the input size (every
// element costs at least one byte).
func (r *binReader) count(what string) int {
	n := r.uvarint()
	if r.err == nil && n > uint64(len(r.data)) {
		r.fail("%s count %d exceeds remaining %d bytes", what, n, len(r.data))
	}
	if r.err != nil {
		return 0
	}
	return int(n)
}

// DecodeBinary decodes a graph encoded by AppendBinary from the front of
// data, returning the graph and the unconsumed remainder. Malformed
// input — truncation, version mismatch, out-of-range edges or symbols —
// yields an error, never a partial graph.
func DecodeBinary(data []byte) (*Graph, []byte, error) {
	r := &binReader{data: data}
	if tag := r.byte(); r.err == nil && tag != binaryTag {
		return nil, nil, fmt.Errorf("propgraph: binary: bad tag 0x%02x", tag)
	}
	if v := r.byte(); r.err == nil && v != binaryVersion {
		return nil, nil, fmt.Errorf("propgraph: binary: unsupported version %d", v)
	}

	// Symbol table. Interning in stored order reproduces the IDs the
	// encoder wrote; a duplicate would silently shift every later ID, so
	// it is rejected as corruption.
	syms := NewInterner()
	numSyms := r.count("symbol")
	for i := 0; i < numSyms && r.err == nil; i++ {
		s := r.string()
		if r.err == nil && int(syms.Intern(s)) != i {
			r.fail("duplicate symbol %q in table", s)
		}
	}

	// File-name table.
	var files []string
	if numFiles := r.count("file"); numFiles > 0 {
		files = make([]string, 0, numFiles)
		for i := 0; i < numFiles && r.err == nil; i++ {
			files = append(files, r.string())
		}
	}

	numEvents := r.count("event")
	g := &Graph{
		Syms:   syms,
		Events: make([]*Event, 0, numEvents),
		succs:  make([][]int, numEvents),
		preds:  make([][]int, numEvents),
	}
	evArena := make([]Event, numEvents)
	for i := 0; i < numEvents && r.err == nil; i++ {
		kind := r.uvarint()
		if r.err == nil && kind > uint64(KindParam) {
			r.fail("event %d: bad kind %d", i, kind)
		}
		fileIdx := r.uvarint()
		file := ""
		if r.err == nil {
			if fileIdx >= uint64(len(files)) {
				r.fail("event %d: file index %d out of range", i, fileIdx)
			} else {
				file = files[fileIdx]
			}
		}
		e := &evArena[i]
		*e = Event{
			ID:   i,
			Kind: EventKind(kind),
			File: file,
			Pos:  pytoken.Pos{Line: int(r.varint()), Col: int(r.varint())},
			syms: syms,
		}
		if nreps := r.count("rep"); nreps > 0 {
			e.RepIDs = make([]Sym, nreps)
			for j := range e.RepIDs {
				s := r.uvarint()
				if r.err == nil && s >= uint64(numSyms) {
					r.fail("event %d: symbol %d out of range", i, s)
				}
				e.RepIDs[j] = Sym(s)
			}
		}
		e.Roles = RoleSet(r.byte())
		g.Events = append(g.Events, e)
	}

	// Successors in stored (insertion) order; predecessors rebuilt in
	// ascending-source order, Union's normal form.
	for src := 0; src < numEvents && r.err == nil; src++ {
		if n := r.count("edge"); n > 0 {
			ss := make([]int, n)
			for j := range ss {
				dst := r.uvarint()
				if r.err == nil && (dst >= uint64(numEvents) || int(dst) == src) {
					r.fail("edge %d->%d out of range", src, dst)
				}
				ss[j] = int(dst)
			}
			g.succs[src] = ss
			for _, dst := range ss {
				if r.err == nil {
					g.preds[dst] = append(g.preds[dst], src)
				}
			}
		}
	}

	if nargs := r.count("edge-arg"); nargs > 0 {
		g.edgeArgs = make(map[int64][]int, nargs)
		for i := 0; i < nargs && r.err == nil; i++ {
			src, dst := r.uvarint(), r.uvarint()
			if r.err == nil && (src >= uint64(numEvents) || dst >= uint64(numEvents)) {
				r.fail("edge-arg %d->%d out of range", src, dst)
			}
			n := r.count("arg")
			args := make([]int, n)
			for j := range args {
				args[j] = int(r.varint())
			}
			if r.err == nil {
				g.edgeArgs[edgeKey(int(src), int(dst))] = args
			}
		}
	}
	if r.err != nil {
		return nil, nil, r.err
	}
	return g, r.data, nil
}
