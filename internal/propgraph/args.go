package propgraph

import "sort"

// Argument-position labels on flow edges. The paper (§3.3) notes that "a
// function may act as a source or a sink depending on its arguments" and
// leaves the differentiation to future work; these labels implement it.
// An edge may carry several labels (the same value passed twice); an edge
// with no label means the position is unknown and matches any restriction.
const (
	// ArgReceiver marks flow through a method receiver (obj.m(...)).
	ArgReceiver = -1
	// ArgKeyword marks flow through a keyword argument whose positional
	// index is unknown to the analyzer.
	ArgKeyword = -2
)

// edgeKey packs an edge for the label map.
func edgeKey(src, dst int) int64 { return int64(src)<<32 | int64(uint32(dst)) }

// AddEdgeArg records information flow from src to dst entering through
// argument position arg (0-based; ArgReceiver/ArgKeyword for non-positional
// flow). The edge itself is created as by AddEdge.
func (g *Graph) AddEdgeArg(src, dst, arg int) {
	if src == dst || src < 0 || dst < 0 || src >= len(g.Events) || dst >= len(g.Events) {
		return
	}
	g.AddEdge(src, dst)
	if g.edgeArgs == nil {
		g.edgeArgs = make(map[int64][]int)
	}
	key := edgeKey(src, dst)
	for _, a := range g.edgeArgs[key] {
		if a == arg {
			return
		}
	}
	g.edgeArgs[key] = append(g.edgeArgs[key], arg)
	sort.Ints(g.edgeArgs[key])
}

// EdgeArgs returns the argument positions labeling the edge src→dst, or
// nil when the edge is unlabeled (meaning: position unknown, matches any).
func (g *Graph) EdgeArgs(src, dst int) []int {
	if g.edgeArgs == nil {
		return nil
	}
	return g.edgeArgs[edgeKey(src, dst)]
}

// copyEdgeArgs transfers labels from g with both endpoints offset, used by
// Union.
func (out *Graph) copyEdgeArgs(g *Graph, offset int) {
	for key, args := range g.edgeArgs {
		src := int(key >> 32)
		dst := int(uint32(key))
		for _, a := range args {
			out.AddEdgeArg(src+offset, dst+offset, a)
		}
	}
}

// copyEdgeArgsMapped transfers labels through a vertex-contraction map,
// used by Collapse.
func (out *Graph) copyEdgeArgsMapped(g *Graph, classOf []int) {
	for key, args := range g.edgeArgs {
		src := classOf[int(key>>32)]
		dst := classOf[int(uint32(key))]
		for _, a := range args {
			out.AddEdgeArg(src, dst, a)
		}
	}
}
