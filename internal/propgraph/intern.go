package propgraph

import "sync"

// Sym is a dense index into an Interner's symbol table. Representation
// strings are interned once per table; everything downstream of the
// front-end (graph union, constraint generation, seed matching) works on
// these integers instead of hashing and copying the strings themselves.
type Sym uint32

// Interner is an append-only string ↔ Sym table. IDs are assigned in
// first-seen order, so a table populated by a deterministic sequence of
// Intern calls always assigns the same IDs — the property the pipeline
// relies on for bitwise-reproducible results at any worker count.
//
// All methods are safe for concurrent use. Because the table is
// append-only, a snapshot taken with Strings stays valid (and immutable)
// while other goroutines keep interning.
type Interner struct {
	mu    sync.RWMutex
	index map[string]Sym
	strs  []string
	bytes int64
}

// NewInterner returns an empty symbol table.
func NewInterner() *Interner {
	return &Interner{index: make(map[string]Sym)}
}

// Intern returns the symbol for s, assigning the next dense ID on first
// sight.
func (t *Interner) Intern(s string) Sym {
	t.mu.RLock()
	id, ok := t.index[s]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.index[s]; ok {
		return id
	}
	id = Sym(len(t.strs))
	t.strs = append(t.strs, s)
	t.index[s] = id
	t.bytes += int64(len(s))
	return id
}

// Lookup returns the symbol for s without interning it.
func (t *Interner) Lookup(s string) (Sym, bool) {
	if t == nil {
		return 0, false
	}
	t.mu.RLock()
	id, ok := t.index[s]
	t.mu.RUnlock()
	return id, ok
}

// Str returns the string of a symbol. Out-of-range symbols (from a
// foreign table) return "".
func (t *Interner) Str(id Sym) string {
	if t == nil {
		return ""
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(id) >= len(t.strs) {
		return ""
	}
	return t.strs[id]
}

// Len returns the number of distinct symbols.
func (t *Interner) Len() int {
	if t == nil {
		return 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.strs)
}

// Bytes returns the total length of the distinct strings in the table —
// the footprint of storing each representation exactly once.
func (t *Interner) Bytes() int64 {
	if t == nil {
		return 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.bytes
}

// Strings returns the table in symbol order: Strings()[sym] is the
// string of sym. The returned slice is a stable snapshot — the table is
// append-only, so entries below its length never change — and must not
// be modified by the caller. Hot loops index it directly instead of
// taking the table lock per lookup.
func (t *Interner) Strings() []string {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.strs[:len(t.strs):len(t.strs)]
}

// TranslateFrom interns every symbol of src into t and returns the
// translation array: xlat[localSym] is t's symbol for src's localSym.
// Each distinct string is hashed once per source table, not once per
// occurrence — Union remaps per-event symbols through the array with
// pure integer indexing.
func (t *Interner) TranslateFrom(src *Interner) []Sym {
	strs := src.Strings()
	if len(strs) == 0 {
		return nil
	}
	xlat := make([]Sym, len(strs))
	for i, s := range strs {
		xlat[i] = t.Intern(s)
	}
	return xlat
}
