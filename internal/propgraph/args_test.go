package propgraph

import (
	"reflect"
	"testing"
)

func TestAddEdgeArgLabels(t *testing.T) {
	g := New()
	a := addEv(g, KindCall, "a()")
	b := addEv(g, KindCall, "b()")
	g.AddEdgeArg(a.ID, b.ID, 1)
	g.AddEdgeArg(a.ID, b.ID, 0)
	g.AddEdgeArg(a.ID, b.ID, 1) // duplicate label
	if got := g.EdgeArgs(a.ID, b.ID); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("labels = %v", got)
	}
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d", g.NumEdges())
	}
	if g.EdgeArgs(b.ID, a.ID) != nil {
		t.Error("reverse edge has labels")
	}
}

func TestPlainAddEdgeIsUnlabeled(t *testing.T) {
	g := New()
	a := addEv(g, KindCall, "a()")
	b := addEv(g, KindCall, "b()")
	g.AddEdge(a.ID, b.ID)
	if g.EdgeArgs(a.ID, b.ID) != nil {
		t.Error("plain edge must be unlabeled")
	}
}

func TestUnionPreservesLabels(t *testing.T) {
	g1 := New()
	a := addEv(g1, KindCall, "a()")
	b := addEv(g1, KindCall, "b()")
	g1.AddEdgeArg(a.ID, b.ID, 2)

	g2 := New()
	c := addEv(g2, KindCall, "c()")
	d := addEv(g2, KindCall, "d()")
	g2.AddEdgeArg(c.ID, d.ID, ArgReceiver)

	u := Union(g1, g2)
	if got := u.EdgeArgs(0, 1); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("first graph labels = %v", got)
	}
	if got := u.EdgeArgs(2, 3); !reflect.DeepEqual(got, []int{ArgReceiver}) {
		t.Errorf("second graph labels = %v", got)
	}
}

func TestCollapsePreservesLabels(t *testing.T) {
	g := New()
	a1 := addEv(g, KindCall, "a()")
	a2 := addEv(g, KindCall, "a()")
	s := addEv(g, KindCall, "sink()")
	g.AddEdgeArg(a1.ID, s.ID, 0)
	g.AddEdgeArg(a2.ID, s.ID, 1)
	c := g.Collapse()
	if len(c.Events) != 2 {
		t.Fatalf("collapsed events = %d", len(c.Events))
	}
	// Both labels land on the contracted edge.
	var got []int
	for src := range c.Events {
		if labels := c.EdgeArgs(src, 1-src); labels != nil {
			got = labels
		}
	}
	if !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("contracted labels = %v", got)
	}
}

func TestAddEdgeArgRejectsBadEndpoints(t *testing.T) {
	g := New()
	a := addEv(g, KindCall, "a()")
	g.AddEdgeArg(a.ID, a.ID, 0) // self loop
	g.AddEdgeArg(a.ID, 99, 0)   // out of range
	g.AddEdgeArg(-1, a.ID, 0)   // negative
	if g.NumEdges() != 0 {
		t.Errorf("edges = %d, want 0", g.NumEdges())
	}
}
