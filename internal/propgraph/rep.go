package propgraph

import "strings"

// RepContext describes where an event occurs, which determines the backoff
// chain of its representations (§3.2). For the paper's running example —
// a call self.receipt() inside method status of class
// ESCPOSDriver(base_driver.ThreadDriver) — the chain is:
//
//	ESCPOSDriver::status(param self).receipt()
//	base_driver.ThreadDriver::status(param self).receipt()
//	status(param self).receipt()
//	self.receipt()
type RepContext struct {
	Function   string   // enclosing function name, "" at module level
	Class      string   // enclosing class name, "" if none
	ClassBases []string // qualified base-class names, preferred first
}

// paramRoots returns the context-qualified roots for a path anchored at
// parameter param, ordered most to least specific. includeBare controls
// whether the bare variable name itself is a valid final fallback (it is
// for call/read chains, but not for the parameter event itself, whose bare
// name would carry no information).
func (c RepContext) paramRoots(param string, includeBare bool) []string {
	var roots []string
	suffix := "(param " + param + ")"
	if c.Function != "" {
		if c.Class != "" {
			roots = append(roots, c.Class+"::"+c.Function+suffix)
			for _, base := range c.ClassBases {
				roots = append(roots, base+"::"+c.Function+suffix)
			}
		}
		roots = append(roots, c.Function+suffix)
	}
	if includeBare {
		roots = append(roots, param)
	}
	return roots
}

// ParamEventReps builds the representations of a formal-parameter event,
// e.g. ["media(param f)"] or ["MethodView::get(param filename)", ...].
func (c RepContext) ParamEventReps(param string) []string {
	return c.paramRoots(param, false)
}

// ParamRootedReps builds representations for a call or read chain whose
// root is parameter param, with rest holding the remaining path segments
// (e.g. ["receipt()"] for self.receipt()).
func (c RepContext) ParamRootedReps(param string, rest []string) []string {
	if len(rest) == 0 {
		return c.ParamEventReps(param)
	}
	tail := strings.Join(rest, ".")
	roots := c.paramRoots(param, true)
	reps := make([]string, 0, len(roots))
	for _, r := range roots {
		reps = append(reps, r+"."+tail)
	}
	return reps
}

// SuffixReps builds the dotted-suffix backoff chain for a path not rooted
// at a parameter, e.g. ["flask", "request", "form", "get()"] yields
//
//	flask.request.form.get()
//	request.form.get()
//	form.get()
//
// At least two segments are kept, so an overly general single-segment
// representation (such as a bare method name) never becomes a backoff
// target of a longer chain; a path that is itself a single segment yields
// that one representation.
func SuffixReps(path []string) []string {
	if len(path) == 0 {
		return nil
	}
	if len(path) == 1 {
		return []string{path[0]}
	}
	reps := make([]string, 0, len(path)-1)
	for i := 0; i+2 <= len(path); i++ {
		reps = append(reps, strings.Join(path[i:], "."))
	}
	return reps
}

// SubscriptSegment renders an indexing step for inclusion in a path
// segment: literal string and number keys are kept verbatim (the paper's
// request.files['f']), everything else degrades to "[]" (the paper's
// _hash()[]).
func SubscriptSegment(base, key string, literal bool) string {
	if literal {
		return base + "[" + key + "]"
	}
	return base + "[]"
}
