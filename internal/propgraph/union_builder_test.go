package propgraph

import (
	"bytes"
	"testing"
)

// TestUnionBuilderMatchesUnion pins the builder's contract: adding
// graphs one at a time produces a graph byte-identical to Union over
// the same inputs — at every prefix, not just the end.
func TestUnionBuilderMatchesUnion(t *testing.T) {
	inputs := []*Graph{
		pseudoGraph(1, 12),
		New(), // empty input mid-sequence
		pseudoGraph(2, 25),
		pseudoGraph(3, 1),
		pseudoGraph(1, 7), // repeated symbols translate to existing IDs
	}
	b := NewUnionBuilder()
	for i, in := range inputs {
		b.Add(in)
		want := Union(inputs[:i+1]...).AppendBinary(nil)
		got := b.Graph().AppendBinary(nil)
		if !bytes.Equal(got, want) {
			t.Fatalf("after %d adds: builder graph differs from Union (%d vs %d bytes)",
				i+1, len(got), len(want))
		}
	}
}

// TestUnionBuilderEmpty: a builder with no adds is the empty union.
func TestUnionBuilderEmpty(t *testing.T) {
	got := NewUnionBuilder().Graph()
	if len(got.Events) != 0 {
		t.Fatalf("empty builder has %d events", len(got.Events))
	}
	want := Union().AppendBinary(nil)
	if !bytes.Equal(got.AppendBinary(nil), want) {
		t.Fatal("empty builder graph differs from Union()")
	}
}
